// Ablation (DESIGN.md substitution #6): Ladder triangle counts with the
// exact max-common-neighbor base vs the degree-bound fallback, across
// epsilon. Quantifies how much accuracy the cheap base costs.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/dp/ladder_mechanism.h"
#include "src/graph/triangle_count.h"
#include "src/stats/metrics.h"
#include "src/util/rng.h"

int main(int argc, char** argv) {
  using namespace agmdp;
  util::Flags flags = util::Flags::Parse(argc, argv);
  const int trials = static_cast<int>(flags.GetInt("trials", 30));
  std::vector<double> epsilons =
      flags.GetDoubleList("eps", {0.05, 0.1, 0.25, 0.5, 1.0});

  std::printf("# Ablation: ladder base exact vs degree bound (triangle MRE)\n");
  std::printf("%-10s %6s %10s %10s %12s %12s\n", "dataset", "eps",
              "base_exact", "base_deg", "mre_exact", "mre_deg");
  bench::PrintRule();

  for (datasets::DatasetId id : bench::SelectedDatasets(flags)) {
    graph::AttributedGraph g = bench::LoadDataset(id, flags);
    const auto truth =
        static_cast<double>(graph::CountTriangles(g.structure()));
    util::Rng rng(flags.GetInt("seed", 9) + static_cast<int>(id));

    for (double eps : epsilons) {
      double mre_exact = 0.0, mre_deg = 0.0;
      uint32_t base_exact = 0, base_deg = 0;
      for (int t = 0; t < trials; ++t) {
        dp::LadderOptions exact;
        dp::LadderDiagnostics diag_exact;
        auto r1 = dp::DpTriangleCount(g.structure(), eps, rng, exact,
                                      &diag_exact);
        AGMDP_CHECK(r1.ok());
        base_exact = diag_exact.ladder_base;
        mre_exact +=
            stats::RelativeError(static_cast<double>(r1.value()), truth);

        dp::LadderOptions degree;
        degree.force_degree_bound = true;
        dp::LadderDiagnostics diag_deg;
        auto r2 = dp::DpTriangleCount(g.structure(), eps, rng, degree,
                                      &diag_deg);
        AGMDP_CHECK(r2.ok());
        base_deg = diag_deg.ladder_base;
        mre_deg +=
            stats::RelativeError(static_cast<double>(r2.value()), truth);
      }
      std::printf("%-10s %6.2f %10u %10u %12.5f %12.5f\n",
                  datasets::PaperSpec(id).name.c_str(), eps, base_exact,
                  base_deg, mre_exact / trials, mre_deg / trials);
    }
  }
  return 0;
}

// Appendix C.4 timing analysis, emitting machine-readable BENCH_perf.json:
// per-component costs (truncation, Q_F counting, triangle counting, the
// Ladder mechanism, degree-sequence noising, structural sampling), the
// stage timings of a full pipeline::RunPrivateRelease, and a sampler
// thread sweep (1/2/4 workers over the same seed) with its wall-clock
// speedup — the determinism contract is asserted on the way.
//
// The csr_analytics_seconds section compares the immutable CsrGraph
// snapshot kernels (1/2/4 analytics threads) against the adjacency-list
// path on the same graph, asserting the determinism contract (results
// bitwise-identical to the legacy path at every thread count).
// hardware_concurrency is recorded so speedup numbers from 1-core
// containers are interpretable.
//
// The sampler_hotpath_seconds section measures the flat-memory generation
// hot path: FlatEdgeSet vs std::unordered_set on realistic packed-edge
// workloads, filtered vs unfiltered proposal throughput through the dense
// acceptance table, and the same filtered proposal loop driven by the
// legacy-equivalent mechanics (std::unordered_set dedup + std::function
// filter + per-proposal EncodeEdgeConfig) — both sides timed in-process,
// so the resulting sampler_hotpath_speedup gates machine-independently.
//
// The server_seconds section drives a live `agmdp serve` daemon (real TCP
// sockets, ephemeral port) with 4 concurrent clients streaming sample
// requests: sustained samples/sec, per-request p50/p99 latency, and the
// server_deterministic flag (every checksum served under concurrency must
// match a sequential in-process SampleMany oracle bit for bit).
//
//   ./bench_perf [--scale=0.2] [--trials=3] [--out=BENCH_perf.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "src/agm/agm_dp.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/agm/theta_f.h"
#include "src/datasets/datasets.h"
#include "src/dp/edge_truncation.h"
#include "src/dp/ladder_mechanism.h"
#include "src/dp/constrained_inference.h"
#include "src/eval/utility_report.h"
#include "src/graph/clustering.h"
#include "src/graph/csr.h"
#include "src/graph/degree.h"
#include "src/graph/graph_container.h"
#include "src/graph/graph_io.h"
#include "src/graph/graph_source.h"
#include "src/graph/triangle_count.h"
#include "src/models/chung_lu.h"
#include "src/models/edge_filter.h"
#include "src/models/tricycle.h"
#include "src/pipeline/release_artifact.h"
#include "src/pipeline/release_engine.h"
#include "src/pipeline/release_pipeline.h"
#include "src/registry/artifact_registry.h"
#include "src/util/alias_sampler.h"
#include "src/util/flat_edge_set.h"
#include "src/util/json.h"
#include "src/util/rng.h"
#include "src/util/simd.h"

namespace {

using namespace agmdp;
using Clock = std::chrono::steady_clock;

// Best-of-`trials` wall-clock seconds of fn().
template <typename Fn>
double TimeBest(int trials, Fn&& fn) {
  double best = 1e300;
  for (int t = 0; t < trials; ++t) {
    const Clock::time_point start = Clock::now();
    fn();
    best = std::min(best,
                    std::chrono::duration<double>(Clock::now() - start).count());
  }
  return best;
}

bool SameGraph(const graph::AttributedGraph& a,
               const graph::AttributedGraph& b) {
  return a.num_nodes() == b.num_nodes() &&
         a.attributes() == b.attributes() &&
         a.structure().CanonicalEdges() == b.structure().CanonicalEdges();
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags = util::Flags::Parse(argc, argv);
  const int trials = static_cast<int>(flags.GetInt("trials", 3));
  const std::string out_path = flags.GetString("out", "BENCH_perf.json");

  const auto id = datasets::DatasetId::kEpinions;
  graph::AttributedGraph input = bench::LoadDataset(id, flags);
  const std::vector<uint32_t> degrees = graph::DegreeSequence(input.structure());
  const uint64_t triangles = graph::CountTriangles(input.structure());

  util::JsonWriter json;
  json.BeginObject();
  json.Key("dataset").Value(datasets::PaperSpec(id).name);
  json.Key("scale").Value(bench::ScaleFor(id, flags));
  json.Key("n").Value(static_cast<uint64_t>(input.num_nodes()));
  json.Key("m").Value(input.num_edges());
  json.Key("hardware_concurrency")
      .Value(static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.Key("simd_isa").Value(util::SimdIsaName(util::ActiveSimdIsa()));
  std::printf("simd dispatch                 %10s\n",
              util::SimdIsaName(util::ActiveSimdIsa()));

  // ------------------------------------------------------------ components
  json.Key("components_seconds").BeginObject();
  auto component = [&](const std::string& name, double seconds) {
    json.Key(name).Value(seconds);
    std::printf("%-28s %10.3f ms\n", name.c_str(), 1e3 * seconds);
  };
  component("edge_truncation_k17", TimeBest(trials, [&] {
    dp::TruncateEdges(input.structure(), 17);
  }));
  component("connection_counts", TimeBest(trials, [&] {
    agm::ComputeConnectionCounts(input);
  }));
  component("theta_f_parallel_measure", TimeBest(trials, [&] {
    agm::MeasureThetaF(input, /*threads=*/0);
  }));
  component("triangle_count", TimeBest(trials, [&] {
    graph::CountTriangles(input.structure());
  }));
  {
    util::Rng rng(1);
    component("ladder_mechanism", TimeBest(trials, [&] {
      dp::DpTriangleCount(input.structure(), 0.25, rng).value();
    }));
  }
  {
    util::Rng rng(2);
    component("dp_degree_sequence", TimeBest(trials, [&] {
      dp::DpDegreeSequence(degrees, 0.25, rng);
    }));
  }
  {
    util::Rng rng(3);
    component("fcl_generation", TimeBest(trials, [&] {
      models::FastChungLu(degrees, rng).value();
    }));
  }
  {
    util::Rng rng(4);
    component("tricycle_generation", TimeBest(trials, [&] {
      models::GenerateTriCycLe(degrees, triangles, rng).value();
    }));
  }
  json.EndObject();

  // ------------------------------------------- CSR snapshot analytics path
  // The immutable snapshot vs the mutable adjacency-list representation on
  // the same graph: snapshot construction, then triangle counting + local
  // clustering (the dominant eval kernels) and the full EvaluateRelease
  // metric suite. CSR kernels run at 1/2/4 analytics threads; the
  // determinism contract — bitwise-identical to the legacy path at every
  // thread count — is asserted on the way.
  {
    json.Key("csr_analytics_seconds").BeginObject();
    auto entry = [&](const std::string& name, double seconds) {
      json.Key(name).Value(seconds);
      std::printf("%-28s %10.3f ms\n", ("csr/" + name).c_str(),
                  1e3 * seconds);
    };

    graph::AttributedCsrGraph snapshot;
    entry("from_graph", TimeBest(trials, [&] {
      snapshot = graph::AttributedCsrGraph::FromGraph(input);
    }));

    const uint64_t triangles_legacy = graph::CountTriangles(input.structure());
    const std::vector<double> clustering_legacy =
        graph::LocalClusteringCoefficients(input.structure());
    const double adjacency_triangles_seconds = TimeBest(trials, [&] {
      graph::CountTriangles(input.structure());
    });
    const double adjacency_clustering_seconds = TimeBest(trials, [&] {
      graph::LocalClusteringCoefficients(input.structure());
    });
    entry("adjacency_triangles", adjacency_triangles_seconds);
    entry("adjacency_clustering", adjacency_clustering_seconds);

    bool deterministic = true;
    double csr_triangles_1t = 0.0, csr_clustering_1t = 0.0;
    for (int threads : {1, 2, 4}) {
      uint64_t triangles_csr = 0;
      const double tri_seconds = TimeBest(trials, [&] {
        triangles_csr = graph::CountTriangles(snapshot.structure, threads);
      });
      std::vector<double> clustering_csr;
      const double cc_seconds = TimeBest(trials, [&] {
        clustering_csr =
            graph::LocalClusteringCoefficients(snapshot.structure, threads);
      });
      deterministic = deterministic && triangles_csr == triangles_legacy &&
                      clustering_csr == clustering_legacy;
      if (threads == 1) {
        csr_triangles_1t = tri_seconds;
        csr_clustering_1t = cc_seconds;
      }
      entry("triangles_" + std::to_string(threads) + "t", tri_seconds);
      entry("clustering_" + std::to_string(threads) + "t", cc_seconds);
    }

    // The sweep engine's per-release workload: the full metric suite, with
    // the CSR side paying for its snapshot build (the AttributedGraph
    // overload builds one internally, exactly like a sweep cell does).
    const eval::ReferenceProfile reference =
        eval::ProfileReference(snapshot, /*analytics_threads=*/1);
    eval::UtilityReport report_legacy, report_csr;
    entry("evaluate_adjacency", TimeBest(trials, [&] {
      report_legacy = eval::EvaluateReleaseLegacy(reference, input);
    }));
    entry("evaluate_csr_1t", TimeBest(trials, [&] {
      report_csr = eval::EvaluateRelease(reference, input,
                                         /*analytics_threads=*/1);
    }));
    deterministic =
        deterministic && report_csr.Flatten() == report_legacy.Flatten();
    json.EndObject();

    const double adjacency_total =
        adjacency_triangles_seconds + adjacency_clustering_seconds;
    const double csr_total = csr_triangles_1t + csr_clustering_1t;
    json.Key("csr_triangle_clustering_speedup_1t")
        .Value(csr_total > 0.0 ? adjacency_total / csr_total : 0.0);
    json.Key("csr_deterministic_1_2_4").Value(deterministic);
    std::printf("csr tri+clustering speedup    %10.2fx (deterministic: %s)\n",
                csr_total > 0.0 ? adjacency_total / csr_total : 0.0,
                deterministic ? "yes" : "NO");
    AGMDP_CHECK_MSG(deterministic,
                    "CSR analytics differ from the adjacency-list path");

    // ------------------------------------------- fused evaluation kernel
    // The production EvaluateRelease (fused two-sweep kernel) vs the
    // pre-fusion one-pass-per-metric CSR path, on the SAME prebuilt
    // snapshot and reference profile, so fused_eval_speedup isolates the
    // kernel fusion itself. Both dispatch arms and 1/2/4 threads must all
    // flatten to the multipass report bit for bit.
    {
      json.Key("fused_eval_seconds").BeginObject();
      auto fused_entry = [&](const std::string& name, double seconds) {
        json.Key(name).Value(seconds);
        std::printf("%-28s %10.3f ms\n", ("fused/" + name).c_str(),
                    1e3 * seconds);
      };

      eval::UtilityReport report_multipass;
      const double multipass_1t = TimeBest(trials, [&] {
        report_multipass = eval::EvaluateReleaseMultipassCsr(
            reference, snapshot, /*analytics_threads=*/1);
      });
      fused_entry("multipass_1t", multipass_1t);
      const auto flat_multipass = report_multipass.Flatten();

      bool fused_deterministic = true;
      double fused_1t = 0.0, fused_4t = 0.0;
      for (int threads : {1, 2, 4}) {
        eval::UtilityReport report_fused;
        const double seconds = TimeBest(trials, [&] {
          report_fused = eval::EvaluateRelease(reference, snapshot, threads);
        });
        fused_deterministic = fused_deterministic &&
                              report_fused.Flatten() == flat_multipass;
        if (threads == 1) fused_1t = seconds;
        if (threads == 4) fused_4t = seconds;
        fused_entry("fused_" + std::to_string(threads) + "t", seconds);
      }

      // Each arm pinned explicitly (the loop above ran auto dispatch); an
      // unavailable AVX2 arm is skipped, not silently re-run as scalar.
      std::vector<util::SimdIsa> arms = {util::SimdIsa::kScalar};
      if (util::ResolveSimdIsa(util::SimdIsa::kAvx2) ==
          util::SimdIsa::kAvx2) {
        arms.push_back(util::SimdIsa::kAvx2);
      }
      for (util::SimdIsa arm : arms) {
        util::SetSimdIsaOverride(arm);
        eval::UtilityReport report_arm;
        const double seconds = TimeBest(trials, [&] {
          report_arm = eval::EvaluateRelease(reference, snapshot,
                                             /*analytics_threads=*/1);
        });
        util::SetSimdIsaOverride(util::SimdIsa::kAuto);
        fused_deterministic = fused_deterministic &&
                              report_arm.Flatten() == flat_multipass;
        fused_entry(std::string("fused_") + util::SimdIsaName(arm) + "_1t",
                    seconds);
      }
      json.EndObject();

      const double fused_speedup =
          fused_1t > 0.0 ? multipass_1t / fused_1t : 0.0;
      json.Key("fused_eval_speedup").Value(fused_speedup);
      json.Key("fused_eval_parallel_speedup_4t")
          .Value(fused_4t > 0.0 ? fused_1t / fused_4t : 0.0);
      json.Key("fused_deterministic").Value(fused_deterministic);
      std::printf("fused eval speedup            %10.2fx (deterministic: %s)\n",
                  fused_speedup, fused_deterministic ? "yes" : "NO");
      AGMDP_CHECK_MSG(fused_deterministic,
                      "fused evaluation differs from the multipass CSR path");
    }
  }

  // ---------------------------------------------- sampler hot-path micro
  // The mechanics the PR-4 rewrite replaced, vs their replacements, on the
  // same workload and the same runner. Edge-set ops use the input graph's
  // real packed-edge keys; the proposal loops draw endpoints from the real
  // degree-proportional alias table, so collision and acceptance rates
  // match what SampleAgmGraph actually sees.
  {
    json.Key("sampler_hotpath_seconds").BeginObject();
    auto entry = [&](const std::string& name, double seconds) {
      json.Key(name).Value(seconds);
      std::printf("%-28s %10.3f ms\n", ("hotpath/" + name).c_str(),
                  1e3 * seconds);
    };

    std::vector<uint64_t> keys;
    keys.reserve(input.num_edges());
    for (const graph::Edge& e : input.structure().CanonicalEdges()) {
      keys.push_back(graph::PackEdge(e.u, e.v));
    }

    // Edge-set ops: insert every edge, then four membership sweeps (hit,
    // miss, hit, miss) — the HasEdge-dominated shape of the proposal loop.
    uint64_t sink = 0;
    const double flat_set_seconds = TimeBest(trials, [&] {
      util::FlatEdgeSet set(keys.size());
      for (uint64_t k : keys) set.Insert(k);
      for (int sweep = 0; sweep < 2; ++sweep) {
        for (uint64_t k : keys) sink += set.Contains(k) ? 1 : 0;
        for (uint64_t k : keys) sink += set.Contains(k + 1) ? 1 : 0;
      }
    });
    const double unordered_set_seconds = TimeBest(trials, [&] {
      std::unordered_set<uint64_t> set;
      set.reserve(keys.size());
      for (uint64_t k : keys) set.insert(k);
      for (int sweep = 0; sweep < 2; ++sweep) {
        for (uint64_t k : keys) sink += set.count(k);
        for (uint64_t k : keys) sink += set.count(k + 1);
      }
    });
    entry("flat_edge_set_ops", flat_set_seconds);
    entry("unordered_set_ops", unordered_set_seconds);

    // Proposal throughput: a fixed number of FCL-style proposals (alias
    // draws + dedup + acceptance), unfiltered and through the dense
    // acceptance table; then the identical filtered workload driven by the
    // legacy-equivalent mechanics. Acceptance probabilities stay strictly
    // inside (0, 1) so both filter implementations consume identical draws.
    const std::vector<uint32_t> prop_degrees = degrees;
    std::vector<double> weights(prop_degrees.begin(), prop_degrees.end());
    auto alias = util::AliasSampler::Build(weights);
    AGMDP_CHECK_MSG(alias.ok(), alias.status().ToString().c_str());
    const int w = input.num_attributes();
    const std::vector<graph::AttrConfig>& attrs = input.attributes();
    std::vector<double> acceptance(graph::NumEdgeConfigs(w), 0.0);
    for (size_t y = 0; y < acceptance.size(); ++y) {
      acceptance[y] = (y % 2 == 0) ? 0.9 : 0.35;
    }
    const models::EdgeFilter table_filter =
        models::EdgeFilter::FromAcceptanceTable(attrs, acceptance, w);
    const uint64_t proposals = 4 * input.num_edges();

    auto run_flat = [&](const models::EdgeFilter* filter) {
      util::Rng rng(8);
      util::FlatEdgeSet seen(input.num_edges());
      uint64_t accepted = 0;
      for (uint64_t p = 0; p < proposals; ++p) {
        const auto u = static_cast<graph::NodeId>(alias.value().Sample(rng));
        const auto v = static_cast<graph::NodeId>(alias.value().Sample(rng));
        if (u == v || seen.Contains(graph::PackEdge(u, v))) continue;
        if (filter != nullptr && !filter->Accept(u, v, rng)) continue;
        seen.Insert(graph::PackEdge(u, v));
        ++accepted;
      }
      return accepted;
    };
    uint64_t accepted_flat = 0;
    entry("proposals_unfiltered", TimeBest(trials, [&] {
      accepted_flat = run_flat(nullptr);
    }));
    uint64_t accepted_filtered = 0;
    const double flat_filtered_seconds = TimeBest(trials, [&] {
      accepted_filtered = run_flat(&table_filter);
    });
    entry("proposals_filtered", flat_filtered_seconds);
    sink += accepted_flat + accepted_filtered;

    // Legacy-equivalent mechanics: hash-set dedup with per-bucket nodes and
    // a type-erased filter that re-derives the triangular config index per
    // proposal — the exact pre-rewrite inner-loop shape.
    const std::function<bool(graph::NodeId, graph::NodeId, util::Rng&)>
        legacy_filter = [&attrs, &acceptance, w](
                            graph::NodeId u, graph::NodeId v, util::Rng& r) {
          const uint32_t y =
              graph::EncodeEdgeConfig(attrs[u], attrs[v], w);
          return r.Bernoulli(acceptance[y]);
        };
    uint64_t accepted_legacy = 0;
    const double legacy_filtered_seconds = TimeBest(trials, [&] {
      util::Rng rng(8);
      std::unordered_set<uint64_t> seen;
      uint64_t accepted = 0;
      for (uint64_t p = 0; p < proposals; ++p) {
        const auto u = static_cast<graph::NodeId>(alias.value().Sample(rng));
        const auto v = static_cast<graph::NodeId>(alias.value().Sample(rng));
        if (u == v || seen.count(graph::PackEdge(u, v)) > 0) continue;
        if (!legacy_filter(u, v, rng)) continue;
        seen.insert(graph::PackEdge(u, v));
        ++accepted;
      }
      accepted_legacy = accepted;
    });
    entry("proposals_filtered_legacy_equiv", legacy_filtered_seconds);
    AGMDP_CHECK_MSG(accepted_legacy == accepted_filtered,
                    "legacy-equivalent loop diverged from the flat loop");

    // The sample stage itself, FCL model (the TriCycLe-model stage timing
    // already lands in pipeline_stages_seconds.sample below).
    {
      const agm::AgmParams params = agm::LearnAgmParams(input);
      pipeline::PipelineConfig config;
      config.model = "fcl";
      config.sample.acceptance_iterations = 2;
      entry("sample_stage_fcl", TimeBest(trials, [&] {
        util::Rng rng(9);
        auto g = pipeline::SampleRelease(params, config, rng);
        AGMDP_CHECK_MSG(g.ok(), g.status().ToString().c_str());
      }));
    }
    json.EndObject();
    if (sink == 0) std::printf(" ");  // keep the membership sweeps live

    const double edge_set_speedup = flat_set_seconds > 0.0
                                        ? unordered_set_seconds /
                                              flat_set_seconds
                                        : 0.0;
    const double hotpath_speedup = flat_filtered_seconds > 0.0
                                       ? legacy_filtered_seconds /
                                             flat_filtered_seconds
                                       : 0.0;
    json.Key("edge_set_speedup").Value(edge_set_speedup);
    json.Key("sampler_hotpath_speedup").Value(hotpath_speedup);
    std::printf("edge set speedup              %10.2fx\n", edge_set_speedup);
    std::printf("hot-path proposal speedup     %10.2fx\n", hotpath_speedup);
  }

  // ------------------------------------- pipeline end-to-end stage timings
  {
    pipeline::PipelineConfig config;
    config.epsilon = std::log(2.0);
    config.sample.acceptance_iterations = 2;
    util::Rng rng(5);
    auto release = pipeline::RunPrivateRelease(input, config, rng);
    AGMDP_CHECK_MSG(release.ok(), release.status().ToString().c_str());
    json.Key("pipeline_model").Value(config.model);
    json.Key("pipeline_epsilon").Value(config.epsilon);
    json.Key("pipeline_stages_seconds").BeginObject();
    for (const auto& stage : release.value().stage_seconds) {
      json.Key(stage.stage).Value(stage.seconds);
      std::printf("pipeline stage %-13s %10.3f ms\n", stage.stage.c_str(),
                  1e3 * stage.seconds);
    }
    json.EndObject();
    json.Key("pipeline_total_seconds").Value(release.value().total_seconds);
  }

  // -------------------------------------------------- sampler thread sweep
  // Same parameters, same seed, 1/2/4 worker threads: the outputs must be
  // bitwise-identical (the sharded sampler's determinism contract) and the
  // wall-clock ratio is the parallel speedup of the hot path.
  {
    const agm::AgmParams params = agm::LearnAgmParams(input);
    bool deterministic = true;
    double seconds_1t = 0.0, seconds_4t = 0.0;
    graph::AttributedGraph reference;
    json.Key("sampler_threads_seconds").BeginObject();
    for (int threads : {1, 2, 4}) {
      pipeline::PipelineConfig config;
      config.model = "fcl";
      config.sample.acceptance_iterations = 2;
      config.sample.threads = threads;
      graph::AttributedGraph sampled;
      const double seconds = TimeBest(trials, [&] {
        util::Rng rng(6);
        auto g = pipeline::SampleRelease(params, config, rng);
        AGMDP_CHECK_MSG(g.ok(), g.status().ToString().c_str());
        sampled = std::move(g).value();
      });
      if (threads == 1) {
        seconds_1t = seconds;
        reference = sampled;
      } else {
        deterministic = deterministic && SameGraph(reference, sampled);
      }
      if (threads == 4) seconds_4t = seconds;
      json.Key(std::to_string(threads)).Value(seconds);
      std::printf("sampler threads=%d            %10.3f ms\n", threads,
                  1e3 * seconds);
    }
    json.EndObject();
    json.Key("sampler_speedup_4t")
        .Value(seconds_4t > 0.0 ? seconds_1t / seconds_4t : 0.0);
    json.Key("sampler_deterministic_1_2_4").Value(deterministic);
    std::printf("sampler 4-thread speedup      %10.2fx (deterministic: %s)\n",
                seconds_4t > 0.0 ? seconds_1t / seconds_4t : 0.0,
                deterministic ? "yes" : "NO");
    AGMDP_CHECK_MSG(deterministic,
                    "sampler output differs across thread counts");
  }

  // -------------------------------------------------------------- serving
  // The fit-once / sample-many serving layer vs the pre-serving protocol
  // (one full RunPrivateRelease per synthetic graph). The baseline refits —
  // and re-converges the acceptance loop — per release; the ReleaseEngine
  // pays fit + calibration once and serves each release as one filtered
  // generation from the calibrated acceptance vector. Both sides run
  // single-threaded in this process, so serving_throughput_speedup gates
  // machine-independently; the 2t/4t SampleMany rows show the additional
  // cross-sample parallelism on multi-core hosts (bitwise-identical output,
  // asserted here).
  {
    pipeline::PipelineConfig config;
    config.epsilon = std::log(2.0);
    config.model = "fcl";
    config.sample.acceptance_iterations = 2;
    constexpr int kReleases = 8;

    json.Key("serving_seconds").BeginObject();
    auto entry = [&](const std::string& name, double seconds) {
      json.Key(name).Value(seconds);
      std::printf("%-28s %10.3f ms\n", ("serving/" + name).c_str(),
                  1e3 * seconds);
    };

    // Baseline: every release pays the full fit + cold sample.
    const double baseline_seconds = TimeBest(trials, [&] {
      util::Rng rng(31);
      for (int i = 0; i < kReleases; ++i) {
        auto release = pipeline::RunPrivateRelease(input, config, rng);
        AGMDP_CHECK_MSG(release.ok(), release.status().ToString().c_str());
      }
    });
    entry("repeated_release_" + std::to_string(kReleases) + "x",
          baseline_seconds);

    // The artifact exchange `agmdp fit` / `agmdp sample` perform.
    util::Rng fit_rng(32);
    auto fitted = pipeline::FitReleaseArtifact(input, config, fit_rng);
    AGMDP_CHECK_MSG(fitted.ok(), fitted.status().ToString().c_str());
    const std::string artifact_path = out_path + ".artifact";
    entry("artifact_write", TimeBest(trials, [&] {
      auto st = pipeline::WriteReleaseArtifact(fitted.value(), artifact_path);
      AGMDP_CHECK_MSG(st.ok(), st.ToString().c_str());
    }));
    pipeline::ReleaseArtifact artifact;
    entry("artifact_load", TimeBest(trials, [&] {
      auto loaded = pipeline::ReadReleaseArtifact(artifact_path);
      AGMDP_CHECK_MSG(loaded.ok(), loaded.status().ToString().c_str());
      artifact = std::move(loaded).value();
    }));
    std::remove(artifact_path.c_str());

    // Engine construction, calibration sample included.
    std::unique_ptr<pipeline::ReleaseEngine> engine;
    entry("engine_create_calibrated", TimeBest(trials, [&] {
      pipeline::EngineOptions options;
      options.threads = 1;
      options.sample = config.sample;
      auto created = pipeline::ReleaseEngine::Create(artifact, options);
      AGMDP_CHECK_MSG(created.ok(), created.status().ToString().c_str());
      engine = std::move(created).value();
    }));

    // Single-request latency (the per-request cost an online server pays).
    pipeline::SampleRequest base;
    base.seed = 33;
    entry("sample_single", TimeBest(trials, [&] {
      auto g = engine->Sample(base);
      AGMDP_CHECK_MSG(g.ok(), g.status().ToString().c_str());
    }));

    // Batched serving at 1/2/4 pool workers: identical bits at every pool
    // size, and identical to a sequential Sample loop over the same
    // requests.
    std::vector<graph::AttributedGraph> sequential;
    for (int i = 0; i < kReleases; ++i) {
      pipeline::SampleRequest request = base;
      request.sequence = static_cast<uint64_t>(i);
      auto g = engine->Sample(request);
      AGMDP_CHECK_MSG(g.ok(), g.status().ToString().c_str());
      sequential.push_back(std::move(g).value());
    }
    bool deterministic = true;
    double many_1t = 0.0;
    for (int threads : {1, 2, 4}) {
      pipeline::EngineOptions options;
      options.threads = threads;
      options.sample = config.sample;
      auto created = pipeline::ReleaseEngine::Create(artifact, options);
      AGMDP_CHECK_MSG(created.ok(), created.status().ToString().c_str());
      std::vector<graph::AttributedGraph> served;
      const double seconds = TimeBest(trials, [&] {
        auto graphs = created.value()->SampleMany(kReleases, base);
        AGMDP_CHECK_MSG(graphs.ok(), graphs.status().ToString().c_str());
        served = std::move(graphs).value();
      });
      for (int i = 0; i < kReleases; ++i) {
        deterministic = deterministic &&
                        SameGraph(sequential[static_cast<size_t>(i)],
                                  served[static_cast<size_t>(i)]);
      }
      if (threads == 1) many_1t = seconds;
      entry("sample_many_" + std::to_string(kReleases) + "x_" +
                std::to_string(threads) + "t",
            seconds);
      std::printf("serving releases/sec @%dt     %10.1f\n", threads,
                  seconds > 0.0 ? kReleases / seconds : 0.0);
    }

    json.EndObject();
    const double speedup =
        many_1t > 0.0 ? baseline_seconds / many_1t : 0.0;
    json.Key("serving_throughput_speedup").Value(speedup);
    json.Key("serving_deterministic_1_2_4").Value(deterministic);
    std::printf("serving throughput speedup    %10.2fx (deterministic: %s)\n",
                speedup, deterministic ? "yes" : "NO");
    AGMDP_CHECK_MSG(deterministic,
                    "served samples differ across pool sizes or from "
                    "sequential serving");
  }

  // ----------------------------------------------------- serving daemon
  // The full `agmdp serve` request path under concurrent load: a live
  // daemon on an ephemeral TCP port, 4 client threads each streaming
  // lock-step sample requests over its own connection. Sustained
  // samples/sec and per-request p50/p99 latency measure the socket +
  // parse + queue + batch + sample + serialize path end to end; every
  // checksum served under concurrency must match a sequential in-process
  // SampleMany oracle (the batched-determinism contract on the wire).
  {
    constexpr int kClients = 4;
    constexpr int kPerClient = 8;
    constexpr uint64_t kServeSeed = 77;

    pipeline::PipelineConfig config;
    config.epsilon = std::log(2.0);
    config.model = "fcl";
    config.sample.acceptance_iterations = 2;
    util::Rng fit_rng(41);
    auto fitted = pipeline::FitReleaseArtifact(input, config, fit_rng);
    AGMDP_CHECK_MSG(fitted.ok(), fitted.status().ToString().c_str());
    const std::string artifact_path = out_path + ".server_artifact";
    {
      auto st = pipeline::WriteReleaseArtifact(fitted.value(), artifact_path);
      AGMDP_CHECK_MSG(st.ok(), st.ToString().c_str());
    }

    // Sequential oracle: one in-process engine, one SampleMany sweep over
    // the exact sequence range the clients will request.
    std::vector<uint64_t> oracle(kClients * kPerClient, 0);
    {
      pipeline::EngineOptions options;
      options.threads = 1;
      options.sample = config.sample;
      auto engine = pipeline::ReleaseEngine::Create(fitted.value(), options);
      AGMDP_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());
      pipeline::SampleRequest base;
      base.seed = kServeSeed;
      base.sequence = 0;
      auto graphs = engine.value()->SampleMany(kClients * kPerClient, base);
      AGMDP_CHECK_MSG(graphs.ok(), graphs.status().ToString().c_str());
      for (size_t i = 0; i < graphs.value().size(); ++i) {
        oracle[i] = server::GraphChecksum(graphs.value()[i]);
      }
    }

    server::ServerOptions server_options;
    server_options.port = 0;
    server_options.worker_threads = 2;
    server_options.engine_threads = 1;
    server_options.max_queue = 256;
    server_options.default_tenant_budget = 100.0;
    auto daemon = server::Server::Start(server_options);
    AGMDP_CHECK_MSG(daemon.ok(), daemon.status().ToString().c_str());
    const int port = daemon.value()->port();

    json.Key("server_seconds").BeginObject();
    auto entry = [&](const std::string& name, double seconds) {
      json.Key(name).Value(seconds);
      std::printf("%-28s %10.3f ms\n", ("server/" + name).c_str(),
                  1e3 * seconds);
    };

    // Admit the engine through the wire (the cold path a tenant pays).
    {
      auto loader = server::Client::Connect("127.0.0.1", port);
      AGMDP_CHECK_MSG(loader.ok(), loader.status().ToString().c_str());
      server::Request load;
      load.op = server::RequestOp::kLoad;
      load.id = 1;
      load.tenant = "bench";
      load.name = "bench";
      load.artifact = artifact_path;
      const Clock::time_point start = Clock::now();
      auto response = loader.value().Call(load);
      const double seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      AGMDP_CHECK_MSG(response.ok(), response.status().ToString().c_str());
      AGMDP_CHECK_MSG(response.value().status.ok(),
                      response.value().status.ToString().c_str());
      entry("daemon_load", seconds);
    }

    // Concurrent sustained load, best-of-trials wall clock; latencies are
    // pooled across trials for stable percentiles.
    std::vector<double> latencies;
    std::atomic<bool> deterministic{true};
    double best_wall = 1e300;
    for (int t = 0; t < trials; ++t) {
      std::vector<std::vector<double>> per_client(kClients);
      std::vector<std::thread> threads;
      const Clock::time_point start = Clock::now();
      for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
          auto client = server::Client::Connect("127.0.0.1", port);
          AGMDP_CHECK_MSG(client.ok(), client.status().ToString().c_str());
          for (int i = 0; i < kPerClient; ++i) {
            server::Request request;
            request.op = server::RequestOp::kSample;
            request.id = static_cast<uint64_t>(c * kPerClient + i);
            request.tenant = "bench";
            request.name = "bench";
            request.seed = kServeSeed;
            request.sequence = static_cast<uint64_t>(c * kPerClient + i);
            request.count = 1;
            const Clock::time_point sent = Clock::now();
            auto response = client.value().Call(request);
            per_client[static_cast<size_t>(c)].push_back(
                std::chrono::duration<double>(Clock::now() - sent).count());
            AGMDP_CHECK_MSG(response.ok(),
                            response.status().ToString().c_str());
            AGMDP_CHECK_MSG(response.value().status.ok(),
                            response.value().status.ToString().c_str());
            if (response.value().graphs.size() != 1 ||
                response.value().graphs[0].checksum !=
                    oracle[request.sequence]) {
              deterministic = false;
            }
          }
        });
      }
      for (std::thread& thread : threads) thread.join();
      best_wall = std::min(
          best_wall,
          std::chrono::duration<double>(Clock::now() - start).count());
      for (const std::vector<double>& lats : per_client) {
        latencies.insert(latencies.end(), lats.begin(), lats.end());
      }
    }
    std::sort(latencies.begin(), latencies.end());
    auto percentile = [&](double p) {
      const size_t idx = static_cast<size_t>(
          p * static_cast<double>(latencies.size() - 1));
      return latencies[idx];
    };
    entry("wall_4_clients", best_wall);
    entry("latency_p50", percentile(0.50));
    entry("latency_p99", percentile(0.99));
    json.EndObject();

    const double samples_per_sec =
        best_wall > 0.0 ? kClients * kPerClient / best_wall : 0.0;
    json.Key("server_samples_per_sec").Value(samples_per_sec);
    json.Key("server_deterministic").Value(deterministic.load());
    std::printf("server samples/sec @4 clients %10.1f (deterministic: %s)\n",
                samples_per_sec, deterministic ? "yes" : "NO");
    AGMDP_CHECK_MSG(deterministic,
                    "daemon-served checksums differ from the sequential "
                    "oracle");

    daemon.value()->Stop();
    daemon.value()->Wait();
    std::remove(artifact_path.c_str());
  }

  // ------------------------------------------------------------- storage
  // Text loader vs the paged binary container (graph/graph_container.h):
  // convert throughput, verified/unverified mmap open latency, and the
  // headline text->binary load ratio. The mmap snapshot must evaluate
  // bitwise-identically to the in-RAM snapshot at every thread count.
  {
    const std::string text_prefix = out_path + ".storage_tmp";
    const std::string bin_path = text_prefix + ".agmbin";
    AGMDP_CHECK_MSG(graph::WriteAttributedGraph(input, text_prefix).ok(),
                    "cannot write storage bench text pair");

    json.Key("storage_seconds").BeginObject();
    auto entry = [&](const std::string& name, double seconds) {
      json.Key(name).Value(seconds);
      std::printf("storage %-20s %10.3f ms\n", name.c_str(), 1e3 * seconds);
    };
    const double text_load = TimeBest(trials, [&] {
      auto g = graph::ReadAttributedGraph(text_prefix);
      AGMDP_CHECK_MSG(g.ok(), "storage bench text load failed");
    });
    entry("text_load", text_load);
    entry("convert_text_to_binary", TimeBest(trials, [&] {
            auto info = graph::ConvertTextToBinary(text_prefix, bin_path);
            AGMDP_CHECK_MSG(info.ok(), "storage bench convert failed");
          }));
    const double binary_open = TimeBest(trials, [&] {
      auto snapshot = graph::OpenBinarySnapshot(bin_path);
      AGMDP_CHECK_MSG(snapshot.ok(), "storage bench verified open failed");
    });
    entry("binary_open_verified", binary_open);
    graph::OpenOptions unverified;
    unverified.verify_checksums = false;
    unverified.validate = false;
    entry("binary_open_unverified", TimeBest(trials, [&] {
            auto snapshot = graph::OpenBinarySnapshot(bin_path, unverified);
            AGMDP_CHECK_MSG(snapshot.ok(),
                            "storage bench unverified open failed");
          }));
    json.EndObject();

    const double binary_load_speedup =
        binary_open > 0.0 ? text_load / binary_open : 0.0;
    json.Key("binary_load_speedup").Value(binary_load_speedup);

    auto mapped = graph::OpenBinarySnapshot(bin_path);
    AGMDP_CHECK_MSG(mapped.ok(), "storage bench reopen failed");
    const graph::AttributedCsrGraph ram_snapshot =
        graph::AttributedCsrGraph::FromGraph(input);
    bool storage_deterministic = true;
    for (int eval_threads : {1, 2, 4}) {
      const eval::UtilityReport ram_report = eval::EvaluateRelease(
          eval::ProfileReference(ram_snapshot, eval_threads), ram_snapshot,
          eval_threads);
      const eval::UtilityReport mmap_report = eval::EvaluateRelease(
          eval::ProfileReference(mapped.value(), eval_threads), mapped.value(),
          eval_threads);
      storage_deterministic = storage_deterministic &&
                              ram_report.Flatten() == mmap_report.Flatten();
    }
    json.Key("storage_deterministic").Value(storage_deterministic);
    std::printf("binary load speedup           %10.2fx (deterministic: %s)\n",
                binary_load_speedup, storage_deterministic ? "yes" : "NO");
    AGMDP_CHECK_MSG(storage_deterministic,
                    "mmap-backed evaluation differs from the in-RAM snapshot");

    std::remove((text_prefix + ".edges").c_str());
    std::remove((text_prefix + ".attrs").c_str());
    std::remove(bin_path.c_str());
  }

  // ------------------------------------------------------------- registry
  // The durable artifact registry on its hot paths: journaled puts with
  // and without fsync (their difference isolates the durability cost per
  // release), recovery replay at Open, checkpoint compaction, and
  // in-memory resolves. registry_deterministic asserts the contract crash
  // recovery leans on: two registries fed the identical history compact to
  // byte-identical files — recovered state is a pure function of history,
  // with no timestamps or randomness in the journal.
  {
    constexpr int kRegArtifacts = 16;
    const agm::AgmParams reg_params = agm::LearnAgmParams(input);
    std::vector<pipeline::ReleaseArtifact> artifacts;
    for (int i = 0; i < kRegArtifacts; ++i) {
      pipeline::PipelineConfig config;
      config.model = "fcl";
      // Distinct epsilons give distinct config fingerprints and release
      // keys, so every put is a fresh charge rather than an idempotent hit.
      config.epsilon = 0.05 + 0.01 * i;
      pipeline::ReleaseArtifact artifact =
          pipeline::MakeReleaseArtifact(reg_params, config);
      artifact.epsilon_budget = config.epsilon;
      artifact.epsilon_spent = config.epsilon;
      artifact.ledger.emplace_back("fit", config.epsilon);
      artifacts.push_back(std::move(artifact));
    }

    const std::string reg_path = out_path + ".registry_tmp";
    const std::string reg_path_b = out_path + ".registry_tmp_b";
    auto wipe = [](const std::string& path) {
      std::remove(path.c_str());
      std::remove((path + ".tmp").c_str());
    };
    auto run_history = [&](const std::string& path, bool fsync) {
      registry::RegistryOptions options;
      options.fsync = fsync;
      auto reg = registry::ArtifactRegistry::Open(path, options);
      AGMDP_CHECK_MSG(reg.ok(), reg.status().ToString().c_str());
      for (int i = 0; i < kRegArtifacts; ++i) {
        auto st = reg.value()->Put("bench", "r" + std::to_string(i),
                                   artifacts[static_cast<size_t>(i)]);
        AGMDP_CHECK_MSG(st.ok(), st.ToString().c_str());
        st = reg.value()->ChargeTenant(
            "tenant", static_cast<uint64_t>(i),
            artifacts[static_cast<size_t>(i)].epsilon_spent);
        AGMDP_CHECK_MSG(st.ok(), st.ToString().c_str());
      }
      return std::move(reg).value();
    };
    auto read_file = [](const std::string& path) {
      FILE* f = std::fopen(path.c_str(), "rb");
      AGMDP_CHECK_MSG(f != nullptr, "cannot read registry bench file");
      std::string bytes;
      char buf[4096];
      size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
      std::fclose(f);
      return bytes;
    };

    json.Key("registry_seconds").BeginObject();
    auto entry = [&](const std::string& name, double seconds) {
      json.Key(name).Value(seconds);
      std::printf("%-28s %10.3f ms\n", ("registry/" + name).c_str(),
                  1e3 * seconds);
    };

    const std::string puts_name =
        "put_charge_" + std::to_string(kRegArtifacts) + "x";
    entry(puts_name + "_fsync", TimeBest(trials, [&] {
            wipe(reg_path);
            run_history(reg_path, /*fsync=*/true);
          }));
    entry(puts_name + "_no_fsync", TimeBest(trials, [&] {
            wipe(reg_path);
            run_history(reg_path, /*fsync=*/false);
          }));

    // The file left behind holds 2 * kRegArtifacts journal records; Open
    // replays them all (recovery is the startup cost a daemon restart pays).
    entry("reopen_replay", TimeBest(trials, [&] {
      auto reg = registry::ArtifactRegistry::Open(reg_path, {});
      AGMDP_CHECK_MSG(reg.ok(), reg.status().ToString().c_str());
    }));
    {
      auto reg = registry::ArtifactRegistry::Open(reg_path, {});
      AGMDP_CHECK_MSG(reg.ok(), reg.status().ToString().c_str());
      entry("checkpoint", TimeBest(trials, [&] {
        auto st = reg.value()->Checkpoint();
        AGMDP_CHECK_MSG(st.ok(), st.ToString().c_str());
      }));
      entry("resolve_" + std::to_string(kRegArtifacts) + "x",
            TimeBest(trials, [&] {
              for (int i = 0; i < kRegArtifacts; ++i) {
                auto artifact =
                    reg.value()->Resolve("bench", "r" + std::to_string(i));
                AGMDP_CHECK_MSG(artifact.ok(),
                                artifact.status().ToString().c_str());
              }
            }));
    }
    json.EndObject();

    // Identical histories, independently journaled and compacted, must be
    // byte-identical files — and replay to the same spend.
    bool registry_deterministic = true;
    wipe(reg_path);
    wipe(reg_path_b);
    for (const std::string& path : {reg_path, reg_path_b}) {
      auto reg = run_history(path, /*fsync=*/false);
      auto st = reg->Checkpoint();
      AGMDP_CHECK_MSG(st.ok(), st.ToString().c_str());
    }
    registry_deterministic = read_file(reg_path) == read_file(reg_path_b);
    {
      auto reg = registry::ArtifactRegistry::Open(reg_path, {});
      AGMDP_CHECK_MSG(reg.ok(), reg.status().ToString().c_str());
      double expected = 0.0;
      for (const auto& artifact : artifacts) expected += artifact.epsilon_spent;
      registry_deterministic =
          registry_deterministic &&
          std::abs(reg.value()->Spent("bench") - expected) < 1e-9 &&
          reg.value()->Stats().recovered_records == 1;
    }
    json.Key("registry_deterministic").Value(registry_deterministic);
    std::printf("registry checkpoint           %10s (deterministic: %s)\n", "",
                registry_deterministic ? "yes" : "NO");
    AGMDP_CHECK_MSG(registry_deterministic,
                    "identical registry histories produced different files "
                    "or recovered different spend");
    wipe(reg_path);
    wipe(reg_path_b);
  }

  // ------------------------------------------------------------ mechanisms
  // The non-AGM release mechanisms (PR 10) through the same fit-once /
  // sample-many contract: fit cost on the bench input, an 8-sample batch
  // through the engine, and the determinism flag — refitting from the same
  // substream must reproduce the artifact byte for byte, and a second
  // engine at a different pool size must serve bitwise-identical samples.
  {
    json.Key("mechanisms_seconds").BeginObject();
    auto entry = [&](const std::string& name, double seconds) {
      json.Key(name).Value(seconds);
      std::printf("%-28s %10.3f ms\n", ("mechanisms/" + name).c_str(),
                  1e3 * seconds);
    };
    bool mechanisms_deterministic = true;
    constexpr int kMechBatch = 8;
    for (const char* mechanism : {"community_dp", "kanon_baseline"}) {
      pipeline::PipelineConfig config;
      config.mechanism = mechanism;
      config.epsilon = 1.0;
      pipeline::ReleaseArtifact artifact;
      entry(std::string(mechanism) + "_fit", TimeBest(trials, [&] {
        util::Rng rng = util::Rng::Substream(2026, 8);
        auto fit = pipeline::FitReleaseArtifact(input, config, rng);
        AGMDP_CHECK_MSG(fit.ok(), fit.status().ToString().c_str());
        artifact = std::move(fit).value();
      }));
      auto engine = pipeline::ReleaseEngine::Create(artifact);
      AGMDP_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());
      pipeline::SampleRequest base;
      base.seed = 7;
      std::vector<graph::AttributedGraph> batch;
      entry(std::string(mechanism) + "_sample_many_8x",
            TimeBest(trials, [&] {
              auto graphs = engine.value()->SampleMany(kMechBatch, base);
              AGMDP_CHECK_MSG(graphs.ok(), graphs.status().ToString().c_str());
              batch = std::move(graphs).value();
            }));

      util::Rng rng = util::Rng::Substream(2026, 8);
      auto refit = pipeline::FitReleaseArtifact(input, config, rng);
      AGMDP_CHECK_MSG(refit.ok(), refit.status().ToString().c_str());
      mechanisms_deterministic =
          mechanisms_deterministic &&
          pipeline::ReleaseArtifactToJson(artifact) ==
              pipeline::ReleaseArtifactToJson(refit.value());
      pipeline::EngineOptions pooled;
      pooled.threads = 2;
      auto other = pipeline::ReleaseEngine::Create(refit.value(), pooled);
      AGMDP_CHECK_MSG(other.ok(), other.status().ToString().c_str());
      for (int i = 0; i < kMechBatch; ++i) {
        pipeline::SampleRequest request = base;
        request.sequence = base.sequence + static_cast<uint64_t>(i);
        auto sample = other.value()->Sample(request);
        AGMDP_CHECK_MSG(sample.ok(), sample.status().ToString().c_str());
        mechanisms_deterministic = mechanisms_deterministic &&
                                   SameGraph(batch[static_cast<size_t>(i)],
                                             sample.value());
      }
    }
    json.EndObject();
    json.Key("mechanisms_deterministic").Value(mechanisms_deterministic);
    std::printf("mechanisms                    %10s (deterministic: %s)\n", "",
                mechanisms_deterministic ? "yes" : "NO");
    AGMDP_CHECK_MSG(mechanisms_deterministic,
                    "a release mechanism refit or resample diverged from the "
                    "substream contract");
  }

  json.EndObject();
  FILE* f = std::fopen(out_path.c_str(), "w");
  AGMDP_CHECK_MSG(f != nullptr, "cannot open output file");
  const std::string body = json.Finish();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

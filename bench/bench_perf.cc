// Appendix C.4 timing analysis as a google-benchmark suite: the cost of the
// individual AGM-DP components (truncation, Q_F counting, constrained
// inference, triangle counting, the Ladder mechanism, structural sampling
// and the end-to-end pipeline) on a mid-size stand-in.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "src/agm/agm_dp.h"
#include "src/agm/theta_f.h"
#include "src/datasets/datasets.h"
#include "src/dp/constrained_inference.h"
#include "src/dp/edge_truncation.h"
#include "src/dp/ladder_mechanism.h"
#include "src/graph/degree.h"
#include "src/graph/triangle_count.h"
#include "src/models/chung_lu.h"
#include "src/models/tricycle.h"
#include "src/util/rng.h"

namespace {

using namespace agmdp;

const graph::AttributedGraph& Input() {
  static const graph::AttributedGraph* g = [] {
    auto made =
        datasets::GenerateDataset(datasets::DatasetId::kEpinions, 0.2, 1);
    AGMDP_CHECK(made.ok());
    return new graph::AttributedGraph(std::move(made).value());
  }();
  return *g;
}

void BM_EdgeTruncation(benchmark::State& state) {
  const graph::AttributedGraph& g = Input();
  const auto k = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::TruncateEdges(g.structure(), k));
  }
}
BENCHMARK(BM_EdgeTruncation)->Arg(4)->Arg(17)->Arg(64);

void BM_ConnectionCounts(benchmark::State& state) {
  const graph::AttributedGraph& g = Input();
  for (auto _ : state) {
    benchmark::DoNotOptimize(agm::ComputeConnectionCounts(g));
  }
}
BENCHMARK(BM_ConnectionCounts);

void BM_TriangleCount(benchmark::State& state) {
  const graph::AttributedGraph& g = Input();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::CountTriangles(g.structure()));
  }
}
BENCHMARK(BM_TriangleCount);

void BM_LadderMechanism(benchmark::State& state) {
  const graph::AttributedGraph& g = Input();
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dp::DpTriangleCount(g.structure(), 0.25, rng).value());
  }
}
BENCHMARK(BM_LadderMechanism);

void BM_DpDegreeSequence(benchmark::State& state) {
  const graph::AttributedGraph& g = Input();
  std::vector<uint32_t> degrees = graph::DegreeSequence(g.structure());
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::DpDegreeSequence(degrees, 0.25, rng));
  }
}
BENCHMARK(BM_DpDegreeSequence);

void BM_FclGeneration(benchmark::State& state) {
  const graph::AttributedGraph& g = Input();
  std::vector<uint32_t> degrees = graph::DegreeSequence(g.structure());
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::FastChungLu(degrees, rng).value());
  }
}
BENCHMARK(BM_FclGeneration);

void BM_TriCycLeGeneration(benchmark::State& state) {
  const graph::AttributedGraph& g = Input();
  std::vector<uint32_t> degrees = graph::DegreeSequence(g.structure());
  const uint64_t triangles = graph::CountTriangles(g.structure());
  util::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        models::GenerateTriCycLe(degrees, triangles, rng).value());
  }
}
BENCHMARK(BM_TriCycLeGeneration);

void BM_AgmDpEndToEnd(benchmark::State& state) {
  const graph::AttributedGraph& g = Input();
  util::Rng rng(5);
  agm::AgmDpOptions options;
  options.epsilon = std::log(2.0);
  options.sample.acceptance_iterations = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agm::SynthesizeAgmDp(g, options, rng).value());
  }
}
BENCHMARK(BM_AgmDpEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

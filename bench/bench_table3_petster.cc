// Table 3: AGM(DP) models on the Petster stand-in, via the shared harness
// and the release pipeline.
#include "bench/table_harness.h"

int main(int argc, char** argv) {
  return agmdp::bench::TableMain(agmdp::datasets::DatasetId::kPetster, argc,
                                 argv);
}

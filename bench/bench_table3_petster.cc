// Table 3: AGM(DP)-FCL vs AGM(DP)-TriCL on the Petster stand-in.
#include "bench/table_harness.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  return agmdp::bench::RunAgmDpTable(
      agmdp::datasets::DatasetId::kPetster,
      agmdp::util::Flags::Parse(argc, argv));
}

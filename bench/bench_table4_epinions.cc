// Table 4: AGM(DP) models on the Epinions stand-in, via the shared harness
// and the release pipeline.
#include "bench/table_harness.h"

int main(int argc, char** argv) {
  return agmdp::bench::TableMain(agmdp::datasets::DatasetId::kEpinions, argc,
                                 argv);
}

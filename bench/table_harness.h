// Shared harness for Tables 2-5: run AGM(DP) on one dataset across its
// epsilon grid and print the paper's error columns. All private rows route
// through pipeline::RunPrivateRelease, so each cell is a fully accounted
// release; --model=NAME adds any registry model as an extra row family.
#pragma once

#include "src/datasets/datasets.h"
#include "src/util/flags.h"

namespace agmdp::bench {

/// Prints the table for `id` (dataset scale/trials/seed/model from flags).
/// Returns the process exit code.
int RunAgmDpTable(datasets::DatasetId id, const util::Flags& flags);

/// The whole main() of a one-table bench binary: parse flags, run the
/// table. The per-table sources reduce to a single call of this.
int TableMain(datasets::DatasetId id, int argc, char** argv);

}  // namespace agmdp::bench

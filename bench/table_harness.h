// Shared harness for Tables 2-5: run AGM(DP)-FCL and AGM(DP)-TriCL on one
// dataset across its epsilon grid and print the paper's error columns.
#pragma once

#include "src/datasets/datasets.h"
#include "src/util/flags.h"

namespace agmdp::bench {

/// Prints the table for `id` (dataset scale/trials/seed from flags).
/// Returns the process exit code.
int RunAgmDpTable(datasets::DatasetId id, const util::Flags& flags);

}  // namespace agmdp::bench

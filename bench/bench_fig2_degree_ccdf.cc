// Figure 2 (a-d): degree-distribution CCDF of the original graph vs
// synthetic graphs from the three (non-private) structural models:
// FCL, TCL and TriCycLe.
//
// Paper shape to reproduce: all three models track the degree CCDF closely;
// TriCycLe slightly over-produces high-degree nodes.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/utility_report.h"
#include "src/graph/csr.h"
#include "src/graph/degree.h"
#include "src/graph/triangle_count.h"
#include "src/models/bter.h"
#include "src/models/chung_lu.h"
#include "src/models/tcl.h"
#include "src/models/tricycle.h"
#include "src/util/rng.h"

namespace {

using namespace agmdp;

// One immutable CSR snapshot per generated graph; the mutable Graph is only
// the generation-side representation.
void PrintSeries(const char* dataset, const char* model,
                 const graph::Graph& g, size_t points) {
  const graph::CsrGraph snapshot = graph::CsrGraph::FromGraph(g);
  for (const auto& [x, y] : eval::DegreeCcdfSeries(snapshot, points)) {
    std::printf("%s %s %.0f %.6f\n", dataset, model, x, y);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agmdp;
  util::Flags flags = util::Flags::Parse(argc, argv);
  const auto points = static_cast<size_t>(flags.GetInt("points", 30));

  std::printf("# Figure 2: degree CCDF series (dataset model degree ccdf)\n");
  for (datasets::DatasetId id : bench::SelectedDatasets(flags)) {
    graph::AttributedGraph g = bench::LoadDataset(id, flags);
    const char* name = datasets::PaperSpec(id).name.c_str();
    util::Rng rng(flags.GetInt("seed", 2) + static_cast<int>(id));
    const std::vector<uint32_t> degrees =
        graph::DegreeSequence(g.structure());
    const uint64_t triangles = graph::CountTriangles(g.structure());

    PrintSeries(name, "original", g.structure(), points);

    auto fcl = models::FastChungLu(degrees, rng);
    AGMDP_CHECK(fcl.ok());
    PrintSeries(name, "FCL", fcl.value(), points);

    const double rho = models::FitTclRho(g.structure(), rng);
    auto tcl = models::GenerateTcl(degrees, rho, rng);
    AGMDP_CHECK(tcl.ok());
    PrintSeries(name, "TCL", tcl.value(), points);

    auto tricycle = models::GenerateTriCycLe(degrees, triangles, rng);
    AGMDP_CHECK(tricycle.ok());
    PrintSeries(name, "TriCycLe", tricycle.value().graph, points);

    // BTER (Section 3.3's other candidate; non-private comparison only).
    auto bter = models::GenerateBter(models::FitBter(g.structure()), rng);
    AGMDP_CHECK(bter.ok());
    PrintSeries(name, "BTER", bter.value(), points);
  }
  return 0;
}

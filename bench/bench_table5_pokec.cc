// Table 5: AGM(DP)-FCL vs AGM(DP)-TriCL on the Pokec stand-in (the paper
// uses smaller epsilons here; the large graph is robust to the noise).
#include "bench/table_harness.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  return agmdp::bench::RunAgmDpTable(
      agmdp::datasets::DatasetId::kPokec,
      agmdp::util::Flags::Parse(argc, argv));
}

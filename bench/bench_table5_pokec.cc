// Table 5: AGM(DP) models on the Pokec stand-in, via the shared harness and
// the release pipeline (the paper uses smaller epsilons here; the large
// graph is robust to the noise).
#include "bench/table_harness.h"

int main(int argc, char** argv) {
  return agmdp::bench::TableMain(agmdp::datasets::DatasetId::kPokec, argc,
                                 argv);
}

// Figure 3 (a-d): local-clustering-coefficient CCDF of the original graph
// vs synthetic graphs from FCL, TCL and TriCycLe (non-private fits).
//
// Paper shape to reproduce: FCL's clustering collapses toward zero; TCL and
// TriCycLe track the original distribution, with TriCycLe at least as close
// on most datasets.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/utility_report.h"
#include "src/graph/clustering.h"
#include "src/graph/csr.h"
#include "src/graph/degree.h"
#include "src/graph/triangle_count.h"
#include "src/models/bter.h"
#include "src/models/chung_lu.h"
#include "src/models/tcl.h"
#include "src/models/tricycle.h"
#include "src/util/rng.h"

namespace {

using namespace agmdp;

// One immutable CSR snapshot per generated graph, reused for the average
// and the CCDF series; the mutable Graph is only the generation-side
// representation.
void PrintSeries(const char* dataset, const char* model,
                 const graph::Graph& g, size_t points) {
  const graph::CsrGraph snapshot = graph::CsrGraph::FromGraph(g);
  std::printf("# %s %s avg_local_cc=%.4f\n", dataset, model,
              graph::AverageLocalClustering(snapshot));
  for (const auto& [x, y] : eval::ClusteringCcdfSeries(snapshot, points)) {
    std::printf("%s %s %.5f %.6f\n", dataset, model, x, y);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agmdp;
  util::Flags flags = util::Flags::Parse(argc, argv);
  const auto points = static_cast<size_t>(flags.GetInt("points", 30));

  std::printf("# Figure 3: local clustering CCDF (dataset model cc ccdf)\n");
  for (datasets::DatasetId id : bench::SelectedDatasets(flags)) {
    graph::AttributedGraph g = bench::LoadDataset(id, flags);
    const char* name = datasets::PaperSpec(id).name.c_str();
    util::Rng rng(flags.GetInt("seed", 3) + static_cast<int>(id));
    const std::vector<uint32_t> degrees =
        graph::DegreeSequence(g.structure());
    const uint64_t triangles = graph::CountTriangles(g.structure());

    PrintSeries(name, "original", g.structure(), points);

    auto fcl = models::FastChungLu(degrees, rng);
    AGMDP_CHECK(fcl.ok());
    PrintSeries(name, "FCL", fcl.value(), points);

    const double rho = models::FitTclRho(g.structure(), rng);
    std::printf("# %s TCL fitted rho=%.3f\n", name, rho);
    auto tcl = models::GenerateTcl(degrees, rho, rng);
    AGMDP_CHECK(tcl.ok());
    PrintSeries(name, "TCL", tcl.value(), points);

    auto tricycle = models::GenerateTriCycLe(degrees, triangles, rng);
    AGMDP_CHECK(tricycle.ok());
    PrintSeries(name, "TriCycLe", tricycle.value().graph, points);

    // BTER (Section 3.3's other candidate; non-private comparison only).
    auto bter = models::GenerateBter(models::FitBter(g.structure()), rng);
    AGMDP_CHECK(bter.ok());
    PrintSeries(name, "BTER", bter.value(), points);
  }
  return 0;
}

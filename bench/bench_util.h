// Shared plumbing for the paper-artifact bench binaries: flag conventions,
// dataset instantiation with default scales, and tiny table formatting.
//
// Common flags (all binaries):
//   --scale=F    node-count scale for every dataset (default: per-dataset,
//                chosen so the whole suite runs in minutes)
//   --full       paper-scale datasets (scale = 1.0)
//   --trials=N   trials per cell (default varies per bench)
//   --seed=S     base RNG seed
//   --dataset=D  restrict to one dataset (lastfm|petster|epinions|pokec)
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/datasets/datasets.h"
#include "src/graph/attributed_graph.h"
#include "src/util/check.h"
#include "src/util/flags.h"

namespace agmdp::bench {

/// Default scales keep the suite laptop-fast while preserving each
/// dataset's relative size ordering (the size -> robustness trend of the
/// paper's Tables 2-5 depends only on that ordering).
inline double DefaultScale(datasets::DatasetId id) {
  switch (id) {
    case datasets::DatasetId::kLastFm:
    case datasets::DatasetId::kPetster:
      return 1.0;
    case datasets::DatasetId::kEpinions:
      return 0.2;
    case datasets::DatasetId::kPokec:
      return 0.02;
  }
  return 1.0;
}

inline double ScaleFor(datasets::DatasetId id, const util::Flags& flags) {
  if (flags.GetBool("full", false)) return 1.0;
  return flags.GetDouble("scale", DefaultScale(id));
}

inline std::vector<datasets::DatasetId> SelectedDatasets(
    const util::Flags& flags) {
  if (flags.Has("dataset")) {
    return {datasets::DatasetByName(flags.GetString("dataset", "lastfm"))};
  }
  return datasets::AllDatasets();
}

/// Typed variant of SelectedDatasets: an unknown --dataset name is an
/// InvalidArgument listing the registry, not an abort.
inline util::Result<std::vector<datasets::DatasetId>> TrySelectedDatasets(
    const util::Flags& flags) {
  if (!flags.Has("dataset")) return datasets::AllDatasets();
  const std::string name = flags.GetString("dataset", "");
  std::string known;
  for (datasets::DatasetId id : datasets::AllDatasets()) {
    if (datasets::PaperSpec(id).name == name) {
      return std::vector<datasets::DatasetId>{id};
    }
    if (!known.empty()) known += "|";
    known += datasets::PaperSpec(id).name;
  }
  return util::Status::InvalidArgument("--dataset='" + name +
                                       "' is not one of " + known);
}

/// Typed variant of LoadDataset: generation failures (absent dataset, bad
/// scale) surface as the generator's Status instead of aborting the bench.
inline util::Result<graph::AttributedGraph> TryLoadDataset(
    datasets::DatasetId id, const util::Flags& flags) {
  const double scale = ScaleFor(id, flags);
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 20160626));
  auto g = datasets::GenerateDataset(id, scale, seed);
  if (!g.ok()) return g.status();
  std::printf("# dataset %s scale=%.3g: n=%u m=%llu\n",
              datasets::PaperSpec(id).name.c_str(), scale,
              g.value().num_nodes(),
              static_cast<unsigned long long>(g.value().num_edges()));
  return g;
}

inline graph::AttributedGraph LoadDataset(datasets::DatasetId id,
                                          const util::Flags& flags) {
  const double scale = ScaleFor(id, flags);
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 20160626));
  auto g = datasets::GenerateDataset(id, scale, seed);
  AGMDP_CHECK_MSG(g.ok(), g.status().ToString().c_str());
  std::printf("# dataset %s scale=%.3g: n=%u m=%llu\n",
              datasets::PaperSpec(id).name.c_str(), scale,
              g.value().num_nodes(),
              static_cast<unsigned long long>(g.value().num_edges()));
  return std::move(g).value();
}

inline void PrintRule() {
  std::printf(
      "#-----------------------------------------------------------------"
      "---------\n");
}

}  // namespace agmdp::bench

// Ablation for Section 5.3 / Section 7 ("Non-Binary Attributes"): the paper
// predicts that error rates increase with the number of attributes w, since
// the number of ΘX / ΘF counts grows exponentially while the noise per
// count is w-independent. Sweep w on a fixed structure and measure.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/agm/theta_f.h"
#include "src/agm/theta_x.h"
#include "src/datasets/homophily.h"
#include "src/graph/attribute_encoding.h"
#include "src/stats/metrics.h"
#include "src/util/rng.h"

int main(int argc, char** argv) {
  using namespace agmdp;
  util::Flags flags = util::Flags::Parse(argc, argv);
  const int trials = static_cast<int>(flags.GetInt("trials", 20));
  const double eps = flags.GetDouble("epsilon", std::log(2.0) / 4.0);
  const auto dataset =
      datasets::DatasetByName(flags.GetString("dataset", "lastfm"));

  std::printf("# Ablation: attribute dimension w at eps=%.3f per parameter\n",
              eps);
  std::printf("%3s %8s %8s %14s %14s %14s\n", "w", "|Y_w|", "|YF_w|",
              "thetaX_MAE", "thetaF_MAE", "thetaF_Hell");
  bench::PrintRule();

  graph::AttributedGraph base = bench::LoadDataset(dataset, flags);
  util::Rng rng(flags.GetInt("seed", 12));

  for (int w = 1; w <= 5; ++w) {
    // Rebuild the same structure with w homophilous attributes; uniform
    // marginal keeps per-config mass comparable across w.
    graph::AttributedGraph g(base.structure(), w);
    const uint32_t configs = graph::NumNodeConfigs(w);
    std::vector<double> theta_x(configs, 1.0 / configs);
    datasets::HomophilyOptions homophily;
    homophily.target_same_fraction =
        std::min(0.9, 2.0 / configs + 0.3);  // achievable homophily per w
    AGMDP_CHECK_OK(
        datasets::AssignHomophilousAttributes(&g, theta_x, homophily, rng));

    const std::vector<double> exact_x = agm::ComputeThetaX(g);
    const std::vector<double> exact_f = agm::ComputeThetaF(g);
    double mae_x = 0.0, mae_f = 0.0, hell_f = 0.0;
    for (int t = 0; t < trials; ++t) {
      mae_x += stats::MeanAbsoluteError(agm::LearnAttributesDp(g, eps, rng),
                                        exact_x);
      std::vector<double> theta_f = agm::LearnCorrelationsDp(g, eps, 0, rng);
      mae_f += stats::MeanAbsoluteError(theta_f, exact_f);
      hell_f += stats::HellingerDistance(theta_f, exact_f);
    }
    std::printf("%3d %8u %8u %14.5f %14.5f %14.5f\n", w, configs,
                graph::NumEdgeConfigs(w), mae_x / trials, mae_f / trials,
                hell_f / trials);
  }
  return 0;
}

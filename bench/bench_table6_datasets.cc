// Table 6: dataset properties (n, m, dmax, davg, n∆, C̄) — printed for the
// synthetic stand-ins next to the paper's published numbers so the
// calibration quality is visible.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/graph/csr.h"
#include "src/stats/summary.h"

int main(int argc, char** argv) {
  using namespace agmdp;
  util::Flags flags = util::Flags::Parse(argc, argv);

  std::printf("# Table 6: dataset properties (stand-in vs paper)\n");
  std::printf("%-10s %-8s %9s %10s %7s %6s %10s %7s\n", "dataset", "source",
              "n", "m", "dmax", "davg", "triangles", "avgCC");
  bench::PrintRule();
  for (datasets::DatasetId id : bench::SelectedDatasets(flags)) {
    const datasets::DatasetSpec& spec = datasets::PaperSpec(id);
    graph::AttributedGraph g = bench::LoadDataset(id, flags);
    stats::GraphSummary s =
        stats::Summarize(graph::CsrGraph::FromGraph(g.structure()));
    const double scale = bench::ScaleFor(id, flags);
    // Table 6's davg column is m/n (its m and davg agree only under that
    // convention); print the stand-in the same way.
    const double davg_mn =
        static_cast<double>(s.num_edges) / static_cast<double>(s.num_nodes);
    std::printf("%-10s %-8s %9llu %10llu %7u %6.2f %10llu %7.3f\n",
                spec.name.c_str(), "standin",
                static_cast<unsigned long long>(s.num_nodes),
                static_cast<unsigned long long>(s.num_edges), s.max_degree,
                davg_mn, static_cast<unsigned long long>(s.triangles),
                s.avg_local_clustering);
    std::printf("%-10s %-8s %9u %10llu %7u %6.2f %10llu %7.3f  (x%.3g)\n",
                spec.name.c_str(), "paper", spec.nodes,
                static_cast<unsigned long long>(spec.edges), spec.max_degree,
                spec.avg_degree,
                static_cast<unsigned long long>(spec.triangles),
                spec.avg_clustering, scale);
  }
  return 0;
}

// Section 7 preliminary node-DP experiment: Hellinger distance between the
// exact ΘF and the node-DP estimate (edge truncation + smooth-sensitivity
// noise in the node-adjacency model, delta = 0.01), compared to the uniform
// baseline, across epsilon.
//
// Paper shape to reproduce: the node-DP estimate beats the baseline once
// epsilon is moderately large, with the break-even epsilon shrinking as the
// dataset grows (ln2 on Last.fm down to 0.05 on Pokec).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/agm/theta_f.h"
#include "src/graph/attribute_encoding.h"
#include "src/stats/metrics.h"
#include "src/util/rng.h"

int main(int argc, char** argv) {
  using namespace agmdp;
  util::Flags flags = util::Flags::Parse(argc, argv);
  const int trials = static_cast<int>(flags.GetInt("trials", 20));
  const double delta = flags.GetDouble("delta", 0.01);
  std::vector<double> epsilons = flags.GetDoubleList(
      "eps", {0.05, 0.1, 0.2, 0.3, std::log(2.0), 1.0, std::log(3.0)});

  std::printf("# Section 7: node-DP Theta_F (Hellinger), delta=%.3g\n",
              delta);
  std::printf("%-10s %6s %12s %12s %8s\n", "dataset", "eps", "node_dp",
              "baseline", "beats");
  bench::PrintRule();

  for (datasets::DatasetId id : bench::SelectedDatasets(flags)) {
    graph::AttributedGraph g = bench::LoadDataset(id, flags);
    const std::vector<double> exact = agm::ComputeThetaF(g);
    std::vector<double> uniform(
        graph::NumEdgeConfigs(g.num_attributes()),
        1.0 / graph::NumEdgeConfigs(g.num_attributes()));
    const double baseline = stats::HellingerDistance(uniform, exact);
    util::Rng rng(flags.GetInt("seed", 8) + static_cast<int>(id));

    for (double eps : epsilons) {
      double total = 0.0;
      for (int t = 0; t < trials; ++t) {
        total += stats::HellingerDistance(
            agm::LearnCorrelationsNodeDp(g, eps, delta, /*k=*/0, rng), exact);
      }
      const double mean = total / trials;
      std::printf("%-10s %6.2f %12.5f %12.5f %8s\n",
                  datasets::PaperSpec(id).name.c_str(), eps, mean, baseline,
                  mean < baseline ? "yes" : "no");
    }
  }
  return 0;
}

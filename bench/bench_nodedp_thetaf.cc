// Section 7 preliminary node-DP experiment: Hellinger distance between the
// exact ΘF and the node-DP estimate (edge truncation + smooth-sensitivity
// noise in the node-adjacency model, delta = 0.01), compared to the uniform
// baseline, across epsilon — then the break-even table the section is
// about: the smallest epsilon at which the node-DP estimate beats the
// baseline, per dataset.
//
// Paper shape to reproduce: the node-DP estimate beats the baseline once
// epsilon is moderately large, with the break-even epsilon shrinking as the
// dataset grows (ln2 on Last.fm down to 0.05 on Pokec).
//
// All failures (unknown --dataset, dataset generation errors) are typed
// Status values printed to stderr with exit 1 — the bench never aborts.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/agm/theta_f.h"
#include "src/graph/attribute_encoding.h"
#include "src/stats/metrics.h"
#include "src/util/rng.h"

int main(int argc, char** argv) {
  using namespace agmdp;
  util::Flags flags = util::Flags::Parse(argc, argv);
  auto trials_flag = flags.GetCheckedInt("trials", 20);
  if (!trials_flag.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 trials_flag.status().ToString().c_str());
    return 1;
  }
  const int trials = static_cast<int>(trials_flag.value());
  if (trials < 1) {
    std::fprintf(stderr, "error: InvalidArgument: --trials must be >= 1\n");
    return 1;
  }
  auto delta_flag = flags.GetCheckedDouble("delta", 0.01);
  if (!delta_flag.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 delta_flag.status().ToString().c_str());
    return 1;
  }
  const double delta = delta_flag.value();
  std::vector<double> epsilons = flags.GetDoubleList(
      "eps", {0.05, 0.1, 0.2, 0.3, std::log(2.0), 1.0, std::log(3.0)});

  auto selected = bench::TrySelectedDatasets(flags);
  if (!selected.ok()) {
    std::fprintf(stderr, "error: %s\n", selected.status().ToString().c_str());
    return 1;
  }

  std::printf("# Section 7: node-DP Theta_F (Hellinger), delta=%.3g\n",
              delta);
  std::printf("%-10s %6s %12s %12s %8s\n", "dataset", "eps", "node_dp",
              "baseline", "beats");
  bench::PrintRule();

  struct BreakEven {
    std::string dataset;
    uint32_t nodes = 0;
    double epsilon = -1.0;  // < 0: never beat the baseline in the sweep
  };
  std::vector<BreakEven> break_evens;

  for (datasets::DatasetId id : selected.value()) {
    auto loaded = bench::TryLoadDataset(id, flags);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: dataset %s: %s\n",
                   datasets::PaperSpec(id).name.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    const graph::AttributedGraph& g = loaded.value();
    const std::vector<double> exact = agm::ComputeThetaF(g);
    std::vector<double> uniform(
        graph::NumEdgeConfigs(g.num_attributes()),
        1.0 / graph::NumEdgeConfigs(g.num_attributes()));
    const double baseline = stats::HellingerDistance(uniform, exact);
    util::Rng rng(flags.GetInt("seed", 8) + static_cast<int>(id));

    BreakEven row;
    row.dataset = datasets::PaperSpec(id).name;
    row.nodes = g.num_nodes();
    for (double eps : epsilons) {
      double total = 0.0;
      for (int t = 0; t < trials; ++t) {
        total += stats::HellingerDistance(
            agm::LearnCorrelationsNodeDp(g, eps, delta, /*k=*/0, rng), exact);
      }
      const double mean = total / trials;
      const bool beats = mean < baseline;
      if (beats && row.epsilon < 0) row.epsilon = eps;
      std::printf("%-10s %6.2f %12.5f %12.5f %8s\n", row.dataset.c_str(),
                  eps, mean, baseline, beats ? "yes" : "no");
    }
    break_evens.push_back(std::move(row));
  }

  // The headline table: break-even epsilon per dataset. The paper's claim
  // is the monotone trend — larger datasets break even at smaller epsilon.
  std::printf("\n# break-even: smallest epsilon where node-DP beats the "
              "uniform baseline\n");
  std::printf("%-10s %10s %12s\n", "dataset", "nodes", "break_even");
  bench::PrintRule();
  for (const BreakEven& row : break_evens) {
    if (row.epsilon < 0) {
      std::printf("%-10s %10u %12s\n", row.dataset.c_str(), row.nodes,
                  "none");
    } else {
      std::printf("%-10s %10u %12.3f\n", row.dataset.c_str(), row.nodes,
                  row.epsilon);
    }
  }
  return 0;
}

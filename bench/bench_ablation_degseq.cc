// Ablation for Appendix C.3.1: how much does constrained inference (the
// sort + isotonic-projection post-processing of Hay et al.) buy over raw
// Laplace noise on the degree sequence? Reported as the degree-sequence L1
// error per node and the KS/Hellinger of an FCL graph generated from each
// estimate.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/dp/constrained_inference.h"
#include "src/graph/degree.h"
#include "src/models/chung_lu.h"
#include "src/stats/metrics.h"
#include "src/util/rng.h"

namespace {

using namespace agmdp;

// Raw-noise baseline: Laplace(2/eps) per degree, rounded and clamped, then
// sorted (no isotonic projection).
std::vector<uint32_t> RawNoisyDegrees(const std::vector<uint32_t>& degrees,
                                      double eps, util::Rng& rng) {
  std::vector<uint32_t> out(degrees.size());
  const double max_degree = static_cast<double>(degrees.size() - 1);
  for (size_t i = 0; i < degrees.size(); ++i) {
    double d = static_cast<double>(degrees[i]) + rng.Laplace(2.0 / eps);
    out[i] = static_cast<uint32_t>(
        std::clamp(std::round(d), 0.0, max_degree));
  }
  std::sort(out.begin(), out.end());
  return out;
}

double L1PerNode(const std::vector<uint32_t>& a,
                 const std::vector<uint32_t>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return sum / static_cast<double>(a.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agmdp;
  util::Flags flags = util::Flags::Parse(argc, argv);
  const int trials = static_cast<int>(flags.GetInt("trials", 10));
  std::vector<double> epsilons =
      flags.GetDoubleList("eps", {0.05, 0.1, 0.25, 0.5});

  std::printf("# Ablation: degree sequence, constrained inference (CI) vs "
              "raw Laplace\n");
  std::printf("%-10s %6s %10s %10s %10s %10s\n", "dataset", "eps", "L1_CI",
              "L1_raw", "KS_CI", "KS_raw");
  bench::PrintRule();

  for (datasets::DatasetId id : bench::SelectedDatasets(flags)) {
    graph::AttributedGraph g = bench::LoadDataset(id, flags);
    const std::vector<uint32_t> degrees =
        graph::DegreeSequence(g.structure());
    const std::vector<uint32_t> truth =
        graph::SortedDegreeSequence(g.structure());
    util::Rng rng(flags.GetInt("seed", 15) + static_cast<int>(id));

    for (double eps : epsilons) {
      double l1_ci = 0.0, l1_raw = 0.0, ks_ci = 0.0, ks_raw = 0.0;
      for (int t = 0; t < trials; ++t) {
        std::vector<uint32_t> ci = dp::DpDegreeSequence(degrees, eps, rng);
        std::vector<uint32_t> raw = RawNoisyDegrees(degrees, eps, rng);
        l1_ci += L1PerNode(ci, truth);
        l1_raw += L1PerNode(raw, truth);
        ks_ci += stats::KsStatistic(ci, truth);
        ks_raw += stats::KsStatistic(raw, truth);
      }
      std::printf("%-10s %6.2f %10.3f %10.3f %10.4f %10.4f\n",
                  datasets::PaperSpec(id).name.c_str(), eps, l1_ci / trials,
                  l1_raw / trials, ks_ci / trials, ks_raw / trials);
    }
  }
  return 0;
}

// Extension experiment: held-out structural statistics. AGM-DP's models
// only target degrees, triangles and ΘF; this bench checks how well the
// synthetic graphs preserve statistics the pipeline never optimizes —
// average path length, effective diameter, degree assortativity and
// attribute assortativity (homophily).
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/graph/paths.h"
#include "src/pipeline/release_pipeline.h"
#include "src/stats/assortativity.h"
#include "src/util/rng.h"

namespace {

using namespace agmdp;

struct ExtendedStats {
  double avg_path = 0.0;
  double eff_diameter = 0.0;
  double degree_assort = 0.0;
  double attr_assort = 0.0;
};

ExtendedStats Measure(const graph::AttributedGraph& g, util::Rng& rng) {
  ExtendedStats s;
  graph::PathStats paths = graph::EstimatePathStats(g.structure(), 48, rng);
  s.avg_path = paths.avg_path_length;
  s.eff_diameter = paths.effective_diameter;
  s.degree_assort = stats::DegreeAssortativity(g.structure());
  s.attr_assort = stats::AttributeAssortativity(g);
  return s;
}

void PrintRow(const char* dataset, const char* which,
              const ExtendedStats& s) {
  std::printf("%-10s %-14s %10.3f %10.3f %+10.4f %+10.4f\n", dataset, which,
              s.avg_path, s.eff_diameter, s.degree_assort, s.attr_assort);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agmdp;
  util::Flags flags = util::Flags::Parse(argc, argv);
  const double eps = flags.GetDouble("epsilon", std::log(3.0));
  const int trials = static_cast<int>(flags.GetInt("trials", 3));

  std::printf("# Extension: held-out statistics at eps=%.3f (averaged over "
              "%d syntheses)\n",
              eps, trials);
  std::printf("%-10s %-14s %10s %10s %10s %10s\n", "dataset", "graph",
              "avg_path", "eff_diam", "deg_assort", "attr_assort");
  bench::PrintRule();

  for (datasets::DatasetId id : bench::SelectedDatasets(flags)) {
    graph::AttributedGraph input = bench::LoadDataset(id, flags);
    const char* name = datasets::PaperSpec(id).name.c_str();
    util::Rng rng(flags.GetInt("seed", 14) + static_cast<int>(id));
    PrintRow(name, "input", Measure(input, rng));

    for (bool tricycle : {true, false}) {
      pipeline::PipelineConfig options;
      options.epsilon = eps;
      options.model = tricycle ? "tricycle" : "fcl";
      options.sample.acceptance_iterations = 2;
      ExtendedStats mean;
      for (int t = 0; t < trials; ++t) {
        auto result = pipeline::RunPrivateRelease(input, options, rng);
        AGMDP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
        ExtendedStats s = Measure(result.value().graph, rng);
        mean.avg_path += s.avg_path / trials;
        mean.eff_diameter += s.eff_diameter / trials;
        mean.degree_assort += s.degree_assort / trials;
        mean.attr_assort += s.attr_assort / trials;
      }
      PrintRow(name, tricycle ? "AGMDP-TriCL" : "AGMDP-FCL", mean);
    }
  }
  return 0;
}

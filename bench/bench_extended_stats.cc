// Extension experiment: held-out structural statistics. AGM-DP's models
// only target degrees, triangles and ΘF; this bench checks how well the
// synthetic graphs preserve statistics the pipeline never optimizes —
// average path length, effective diameter, degree assortativity and
// attribute assortativity (homophily). All measurement routes through
// eval::ProfileGraph.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/eval/utility_report.h"
#include "src/pipeline/release_pipeline.h"
#include "src/util/rng.h"

namespace {

using namespace agmdp;

constexpr uint32_t kPathSamples = 48;

void PrintRow(const char* dataset, const char* which,
              const eval::StructuralProfile& s) {
  std::printf("%-10s %-14s %10.3f %10.3f %+10.4f %+10.4f\n", dataset, which,
              s.avg_path_length, s.effective_diameter, s.degree_assortativity,
              s.attribute_assortativity);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agmdp;
  util::Flags flags = util::Flags::Parse(argc, argv);
  const double eps = flags.GetDouble("epsilon", std::log(3.0));
  const int trials = static_cast<int>(flags.GetInt("trials", 3));

  std::printf("# Extension: held-out statistics at eps=%.3f (averaged over "
              "%d syntheses)\n",
              eps, trials);
  std::printf("%-10s %-14s %10s %10s %10s %10s\n", "dataset", "graph",
              "avg_path", "eff_diam", "deg_assort", "attr_assort");
  bench::PrintRule();

  for (datasets::DatasetId id : bench::SelectedDatasets(flags)) {
    graph::AttributedGraph input = bench::LoadDataset(id, flags);
    const char* name = datasets::PaperSpec(id).name.c_str();
    util::Rng rng(flags.GetInt("seed", 14) + static_cast<int>(id));
    PrintRow(name, "input", eval::ProfileGraph(input, kPathSamples, rng));

    for (bool tricycle : {true, false}) {
      pipeline::PipelineConfig options;
      options.epsilon = eps;
      options.model = tricycle ? "tricycle" : "fcl";
      options.sample.acceptance_iterations = 2;
      eval::StructuralProfile mean;
      for (int t = 0; t < trials; ++t) {
        auto result = pipeline::RunPrivateRelease(input, options, rng);
        AGMDP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
        const eval::StructuralProfile s =
            eval::ProfileGraph(result.value().graph, kPathSamples, rng);
        mean.avg_path_length += s.avg_path_length / trials;
        mean.effective_diameter += s.effective_diameter / trials;
        mean.degree_assortativity += s.degree_assortativity / trials;
        mean.attribute_assortativity += s.attribute_assortativity / trials;
      }
      PrintRow(name, tricycle ? "AGMDP-TriCL" : "AGMDP-FCL", mean);
    }
  }
  return 0;
}

// Table 2: AGM(DP)-FCL vs AGM(DP)-TriCL on the Last.fm stand-in.
#include "bench/table_harness.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  return agmdp::bench::RunAgmDpTable(
      agmdp::datasets::DatasetId::kLastFm,
      agmdp::util::Flags::Parse(argc, argv));
}

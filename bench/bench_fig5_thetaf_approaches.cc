// Figure 5 (a-d): MAE of the four Θ̃F estimators — EdgeTruncation, Smooth
// (smooth sensitivity), S&A (sample-and-aggregate) and the naive Laplace
// baseline — across epsilon, per dataset.
//
// Paper shape to reproduce: every approach beats the baseline; EdgeTrunc is
// best across datasets and epsilons; errors fall as graphs grow.
// As in the paper, the truncation k and the S&A group size are tuned per
// (dataset, epsilon) over a small grid (the paper notes such tuning should
// be charged to the budget in a real deployment; it is discounted here to
// compare the approaches' potential).
#include <cstdio>
#include <limits>
#include <vector>

#include "bench/bench_util.h"
#include "src/agm/theta_f.h"
#include "src/dp/edge_truncation.h"
#include "src/eval/utility_report.h"
#include "src/util/rng.h"

namespace {

using namespace agmdp;

template <typename LearnFn>
double MeanMae(const std::vector<double>& exact, int trials, util::Rng& rng,
               LearnFn&& learn) {
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    total += eval::CompareThetaF(learn(rng), exact).mae;
  }
  return total / trials;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agmdp;
  util::Flags flags = util::Flags::Parse(argc, argv);
  const int trials = static_cast<int>(flags.GetInt("trials", 20));
  const double delta = flags.GetDouble("delta", 1e-6);
  std::vector<double> epsilons =
      flags.GetDoubleList("eps", {0.1, 0.2, 0.3, 0.5, 1.0});

  std::printf("# Figure 5: Theta_F estimator comparison (MAE)\n");
  std::printf("%-10s %6s %12s %12s %12s %12s\n", "dataset", "eps",
              "EdgeTrunc", "Smooth", "S&A", "Laplace");
  bench::PrintRule();

  for (datasets::DatasetId id : bench::SelectedDatasets(flags)) {
    graph::AttributedGraph g = bench::LoadDataset(id, flags);
    const std::vector<double> exact = agm::ComputeThetaF(g);
    util::Rng rng(flags.GetInt("seed", 6) + static_cast<int>(id));
    const graph::NodeId n = g.num_nodes();
    const uint32_t dmax = g.structure().MaxDegree();

    // Tuning grids.
    std::vector<uint32_t> k_grid;
    for (uint32_t k = 2; k < dmax; k = k * 2) k_grid.push_back(k);
    k_grid.push_back(dp::HeuristicTruncationK(n));
    std::vector<uint32_t> group_grid;
    for (uint32_t s = 8; s < n / 2; s *= 4) group_grid.push_back(s);
    if (group_grid.empty()) group_grid.push_back(n / 2);

    for (double eps : epsilons) {
      double best_trunc = std::numeric_limits<double>::infinity();
      for (uint32_t k : k_grid) {
        best_trunc = std::min(
            best_trunc, MeanMae(exact, trials, rng, [&](util::Rng& r) {
              return agm::LearnCorrelationsDp(g, eps, k, r);
            }));
      }
      const double smooth =
          MeanMae(exact, trials, rng, [&](util::Rng& r) {
            return agm::LearnCorrelationsSmooth(g, eps, delta, r);
          });
      double best_sa = std::numeric_limits<double>::infinity();
      for (uint32_t group : group_grid) {
        best_sa = std::min(
            best_sa, MeanMae(exact, trials, rng, [&](util::Rng& r) {
              return agm::LearnCorrelationsSampleAggregate(g, eps, group, r);
            }));
      }
      const double naive =
          MeanMae(exact, trials, rng, [&](util::Rng& r) {
            return agm::LearnCorrelationsNaive(g, eps, r);
          });
      std::printf("%-10s %6.2f %12.5f %12.5f %12.5f %12.5f\n",
                  datasets::PaperSpec(id).name.c_str(), eps, best_trunc,
                  smooth, best_sa, naive);
    }
  }
  return 0;
}

// Figure 1: MAE of the edge-truncation Θ̃F estimator with the best
// truncation parameter k (found by sweeping) vs the data-independent
// heuristic k = n^(1/3), across epsilon, per dataset.
//
// Paper shape to reproduce: the heuristic's curve hugs the best-k curve,
// with the gap shrinking as graphs grow (negligible for Pokec).
#include <cstdio>
#include <limits>
#include <vector>

#include "bench/bench_util.h"
#include "src/agm/theta_f.h"
#include "src/dp/edge_truncation.h"
#include "src/eval/utility_report.h"
#include "src/util/rng.h"

namespace {

using namespace agmdp;

double MaeAtK(const graph::AttributedGraph& g,
              const std::vector<double>& exact, double eps, uint32_t k,
              int trials, util::Rng& rng) {
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    total +=
        eval::CompareThetaF(agm::LearnCorrelationsDp(g, eps, k, rng), exact)
            .mae;
  }
  return total / trials;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agmdp;
  util::Flags flags = util::Flags::Parse(argc, argv);
  const int trials = static_cast<int>(flags.GetInt("trials", 20));
  std::vector<double> epsilons =
      flags.GetDoubleList("eps", {0.1, 0.2, 0.3, 0.5, 1.0});

  std::printf("# Figure 1: MAE of truncation Theta_F, best k vs k=n^(1/3)\n");
  std::printf("%-10s %6s %8s %12s %12s %8s\n", "dataset", "eps", "k_heur",
              "mae_heur", "mae_best", "best_k");
  bench::PrintRule();

  for (datasets::DatasetId id : bench::SelectedDatasets(flags)) {
    graph::AttributedGraph g = bench::LoadDataset(id, flags);
    const std::vector<double> exact = agm::ComputeThetaF(g);
    const uint32_t k_heur = dp::HeuristicTruncationK(g.num_nodes());
    const uint32_t dmax = g.structure().MaxDegree();
    util::Rng rng(flags.GetInt("seed", 1) + static_cast<int>(id));

    // Candidate grid for the "best k" sweep: geometric between 2 and dmax.
    std::vector<uint32_t> candidates;
    for (uint32_t k = 2; k < dmax; k = k * 3 / 2 + 1) candidates.push_back(k);
    candidates.push_back(dmax);

    for (double eps : epsilons) {
      const double mae_heur = MaeAtK(g, exact, eps, k_heur, trials, rng);
      double mae_best = std::numeric_limits<double>::infinity();
      uint32_t best_k = 0;
      for (uint32_t k : candidates) {
        const double mae = MaeAtK(g, exact, eps, k, trials, rng);
        if (mae < mae_best) {
          mae_best = mae;
          best_k = k;
        }
      }
      std::printf("%-10s %6.2f %8u %12.5f %12.5f %8u\n",
                  datasets::PaperSpec(id).name.c_str(), eps, k_heur, mae_heur,
                  mae_best, best_k);
    }
  }
  return 0;
}

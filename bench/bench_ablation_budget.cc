// Ablation (Section 5 "other strategies could also be used"): how the
// epsilon split among (ΘX, ΘF, S, n∆) affects AGMDP-TriCL utility.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/aggregate.h"
#include "src/eval/utility_report.h"
#include "src/pipeline/release_pipeline.h"
#include "src/util/rng.h"

namespace {

using namespace agmdp;

struct SplitSpec {
  const char* name;
  double x, f, s, t;  // fractions of epsilon
};

}  // namespace

int main(int argc, char** argv) {
  using namespace agmdp;
  util::Flags flags = util::Flags::Parse(argc, argv);
  const int trials = static_cast<int>(flags.GetInt("trials", 5));
  const double eps = flags.GetDouble("epsilon", std::log(2.0));

  const SplitSpec splits[] = {
      {"even", 0.25, 0.25, 0.25, 0.25},
      {"structure-heavy", 0.15, 0.15, 0.35, 0.35},
      {"correlation-heavy", 0.15, 0.45, 0.20, 0.20},
      {"degree-heavy", 0.15, 0.15, 0.55, 0.15},
  };

  std::printf("# Ablation: budget split for AGMDP-TriCL at eps=%.3f\n", eps);
  std::printf("%-10s %-18s %8s %8s %8s %8s %8s\n", "dataset", "split",
              "H_ThetaF", "KS_S", "n_tri", "avgC", "m");
  bench::PrintRule();

  for (datasets::DatasetId id : bench::SelectedDatasets(flags)) {
    graph::AttributedGraph input = bench::LoadDataset(id, flags);
    const eval::ReferenceProfile reference = eval::ProfileReference(input);
    util::Rng rng(flags.GetInt("seed", 10) + static_cast<int>(id));
    for (const SplitSpec& split : splits) {
      pipeline::PipelineConfig options;
      options.epsilon = eps;
      options.model = "tricycle";
      options.split.theta_x = split.x * eps;
      options.split.theta_f = split.f * eps;
      options.split.degree_seq = split.s * eps;
      options.split.triangles = split.t * eps;
      options.sample.acceptance_iterations = 2;
      eval::ReportAccumulator accumulator;
      for (int t = 0; t < trials; ++t) {
        auto result = pipeline::RunPrivateRelease(input, options, rng);
        AGMDP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
        accumulator.Add(
            eval::EvaluateRelease(reference, result.value().graph));
      }
      std::printf("%-10s %-18s %8.4f %8.4f %8.4f %8.4f %8.4f\n",
                  datasets::PaperSpec(id).name.c_str(), split.name,
                  accumulator.Mean("theta_f_hellinger"),
                  accumulator.Mean("degree_ks"),
                  accumulator.Mean("triangles_re"),
                  accumulator.Mean("avg_clustering_re"),
                  accumulator.Mean("edges_re"));
    }
  }
  return 0;
}

#include "bench/table_harness.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/agm/agm_dp.h"
#include "src/agm/theta_f.h"
#include "src/graph/degree.h"
#include "src/pipeline/release_pipeline.h"
#include "src/stats/metrics.h"
#include "src/stats/summary.h"
#include "src/util/rng.h"

namespace agmdp::bench {

namespace {

void PrintHeader() {
  std::printf("%-8s %-14s %8s %8s %8s %8s %8s %8s %8s %8s\n", "eps", "model",
              "ThetaF", "H_ThetaF", "KS_S", "H_S", "n_tri", "avgC", "globC",
              "m");
}

void PrintRow(const std::string& eps_label, const std::string& model,
              const stats::UtilityErrors& e) {
  std::printf("%-8s %-14s %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f\n",
              eps_label.c_str(), model.c_str(), e.theta_f_mae,
              e.theta_f_hellinger, e.degree_ks, e.degree_hellinger,
              e.triangles_re, e.avg_clustering_re, e.global_clustering_re,
              e.edges_re);
}

std::string EpsLabel(double eps) {
  if (std::fabs(eps - std::log(3.0)) < 1e-9) return "ln3";
  if (std::fabs(eps - std::log(2.0)) < 1e-9) return "ln2";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", eps);
  return buffer;
}

// The models compared in a table: the paper's pair (FCL, TriCycLe), plus
// any registry model requested via --model.
std::vector<std::string> TableModels(const util::Flags& flags) {
  std::vector<std::string> models = {"fcl", "tricycle"};
  if (flags.Has("model")) {
    const std::string extra = flags.GetString("model", "");
    bool known = pipeline::FindStructuralModel(extra) != nullptr;
    AGMDP_CHECK_MSG(known, ("unknown --model; registered: " +
                            pipeline::StructuralModelNameList())
                               .c_str());
    for (const std::string& m : models) {
      if (m == extra) return models;
    }
    models.push_back(extra);
  }
  return models;
}

}  // namespace

int RunAgmDpTable(datasets::DatasetId id, const util::Flags& flags) {
  const datasets::DatasetSpec& spec = datasets::PaperSpec(id);
  const int trials = static_cast<int>(flags.GetInt("trials", 5));
  const int iters = static_cast<int>(flags.GetInt("accept_iters", 2));
  const int threads = static_cast<int>(flags.GetInt("threads", 1));
  std::vector<double> epsilons =
      flags.GetDoubleList("eps", spec.table_epsilons);
  const std::vector<std::string> models = TableModels(flags);

  std::printf("# Tables 2-5 harness: dataset=%s trials=%d\n",
              spec.name.c_str(), trials);
  graph::AttributedGraph input = LoadDataset(id, flags);

  // Text baselines from Section 5.2: uniform correlations and uniform edge
  // assignment.
  {
    std::vector<double> uniform(
        graph::NumEdgeConfigs(input.num_attributes()),
        1.0 / graph::NumEdgeConfigs(input.num_attributes()));
    const std::vector<double> theta_f = agm::ComputeThetaF(input);
    std::printf("# baseline uniform-ThetaF: MAE=%.4f Hellinger=%.4f\n",
                stats::MeanAbsoluteError(uniform, theta_f),
                stats::HellingerDistance(uniform, theta_f));
    util::Rng rng(flags.GetInt("seed", 4));
    graph::Graph random(input.num_nodes());
    while (random.num_edges() < input.num_edges()) {
      auto u = static_cast<graph::NodeId>(rng.UniformIndex(input.num_nodes()));
      auto v = static_cast<graph::NodeId>(rng.UniformIndex(input.num_nodes()));
      random.AddEdge(u, v);
    }
    std::printf("# baseline uniform-edges: KS=%.4f Hellinger=%.4f\n",
                stats::KsStatistic(graph::SortedDegreeSequence(random),
                                   graph::SortedDegreeSequence(
                                       input.structure())),
                stats::DegreeHellinger(random, input.structure()));
  }

  PrintHeader();
  PrintRule();

  util::Rng rng(flags.GetInt("seed", 5) + 17 * static_cast<int>(id));

  // Non-private reference rows (AGM-FCL / AGM-TriCL).
  for (bool tricycle : {false, true}) {
    agm::AgmSampleOptions options;
    options.model = tricycle ? agm::StructuralModelKind::kTriCycLe
                             : agm::StructuralModelKind::kFcl;
    options.acceptance_iterations = iters;
    options.threads = threads;
    stats::UtilityErrors sum;
    for (int t = 0; t < trials; ++t) {
      auto synthetic = agm::SynthesizeAgmNonPrivate(input, options, rng);
      AGMDP_CHECK_MSG(synthetic.ok(), synthetic.status().ToString().c_str());
      sum += stats::CompareGraphs(input, synthetic.value());
    }
    PrintRow("nonpriv", tricycle ? "AGM-TriCL" : "AGM-FCL", sum / trials);
  }

  // Private rows: one fully accounted pipeline release per cell.
  for (double eps : epsilons) {
    for (const std::string& model : models) {
      pipeline::PipelineConfig config;
      config.epsilon = eps;
      config.model = model;
      config.sample.acceptance_iterations = iters;
      config.sample.threads = threads;
      stats::UtilityErrors sum;
      for (int t = 0; t < trials; ++t) {
        auto result = pipeline::RunPrivateRelease(input, config, rng);
        AGMDP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
        sum += stats::CompareGraphs(input, result.value().graph);
      }
      PrintRow(EpsLabel(eps), "AGMDP-" + model, sum / trials);
    }
  }
  return 0;
}

int TableMain(datasets::DatasetId id, int argc, char** argv) {
  return RunAgmDpTable(id, util::Flags::Parse(argc, argv));
}

}  // namespace agmdp::bench

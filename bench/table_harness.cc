#include "bench/table_harness.h"

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/agm/agm_sampler.h"
#include "src/agm/theta_f.h"
#include "src/eval/aggregate.h"
#include "src/eval/sweep_engine.h"
#include "src/eval/utility_report.h"
#include "src/pipeline/release_engine.h"
#include "src/pipeline/release_pipeline.h"
#include "src/util/rng.h"

namespace agmdp::bench {

namespace {

void PrintHeader() {
  std::printf("%-8s %-14s %8s %8s %8s %8s %8s %8s %8s %8s\n", "eps", "model",
              "ThetaF", "H_ThetaF", "KS_S", "H_S", "n_tri", "avgC", "globC",
              "m");
}

// One table row from the aggregated per-cell metrics (works for both the
// sweep cells and the manually accumulated non-private reference rows).
void PrintRow(const std::string& eps_label, const std::string& model,
              const std::vector<eval::MetricStats>& metrics) {
  std::printf("%-8s %-14s %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f\n",
              eps_label.c_str(), model.c_str(),
              eval::MetricMean(metrics, "theta_f_mae"),
              eval::MetricMean(metrics, "theta_f_hellinger"),
              eval::MetricMean(metrics, "degree_ks"),
              eval::MetricMean(metrics, "degree_hellinger"),
              eval::MetricMean(metrics, "triangles_re"),
              eval::MetricMean(metrics, "avg_clustering_re"),
              eval::MetricMean(metrics, "global_clustering_re"),
              eval::MetricMean(metrics, "edges_re"));
}

std::string EpsLabel(double eps) {
  if (std::fabs(eps - std::log(3.0)) < 1e-9) return "ln3";
  if (std::fabs(eps - std::log(2.0)) < 1e-9) return "ln2";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", eps);
  return buffer;
}

// The models compared in a table: the paper's pair (FCL, TriCycLe), plus
// any registry model requested via --model.
std::vector<std::string> TableModels(const util::Flags& flags) {
  std::vector<std::string> models = {"fcl", "tricycle"};
  if (flags.Has("model")) {
    const std::string extra = flags.GetString("model", "");
    bool known = pipeline::FindStructuralModel(extra) != nullptr;
    AGMDP_CHECK_MSG(known, ("unknown --model; registered: " +
                            pipeline::StructuralModelNameList())
                               .c_str());
    for (const std::string& m : models) {
      if (m == extra) return models;
    }
    models.push_back(extra);
  }
  return models;
}

// Section 5.2's text baselines, routed through the eval metric suite:
// a uniform ΘF vector and a uniform-random edge assignment with the
// original attributes.
void PrintBaselines(const graph::AttributedGraph& input,
                    const eval::ReferenceProfile& reference,
                    const util::Flags& flags) {
  std::vector<double> uniform(
      graph::NumEdgeConfigs(input.num_attributes()),
      1.0 / graph::NumEdgeConfigs(input.num_attributes()));
  const eval::ThetaFError uniform_error =
      eval::CompareThetaF(uniform, reference.theta_f);
  std::printf("# baseline uniform-ThetaF: MAE=%.4f Hellinger=%.4f\n",
              uniform_error.mae, uniform_error.hellinger);

  util::Rng rng(flags.GetInt("seed", 4));
  graph::AttributedGraph random(input.num_nodes(), input.num_attributes());
  AGMDP_CHECK(random.SetAttributes(input.attributes()).ok());
  while (random.num_edges() < input.num_edges()) {
    auto u = static_cast<graph::NodeId>(rng.UniformIndex(input.num_nodes()));
    auto v = static_cast<graph::NodeId>(rng.UniformIndex(input.num_nodes()));
    random.structure().AddEdge(u, v);
  }
  const eval::UtilityReport report = eval::EvaluateRelease(reference, random);
  std::printf("# baseline uniform-edges: KS=%.4f Hellinger=%.4f\n",
              report.errors.degree_ks, report.errors.degree_hellinger);
}

}  // namespace

int RunAgmDpTable(datasets::DatasetId id, const util::Flags& flags) {
  const datasets::DatasetSpec& spec = datasets::PaperSpec(id);
  const int trials = static_cast<int>(flags.GetInt("trials", 5));
  const int iters = static_cast<int>(flags.GetInt("accept_iters", 2));
  const int threads = static_cast<int>(flags.GetInt("threads", 1));
  const int analytics_threads =
      static_cast<int>(flags.GetInt("analytics_threads", 1));
  std::vector<double> epsilons =
      flags.GetDoubleList("eps", spec.table_epsilons);
  const std::vector<std::string> models = TableModels(flags);

  std::printf("# Tables 2-5 harness: dataset=%s trials=%d\n",
              spec.name.c_str(), trials);
  graph::AttributedGraph input = LoadDataset(id, flags);

  // One profile of the original (computed on one CsrGraph snapshot) serves
  // the baselines, the non-private reference rows and — handed to RunSweep
  // via SweepInput::reference — every private cell.
  const auto reference_ptr = std::make_shared<const eval::ReferenceProfile>(
      eval::ProfileReference(input, analytics_threads));
  const eval::ReferenceProfile& reference = *reference_ptr;
  PrintBaselines(input, reference, flags);

  PrintHeader();
  PrintRule();

  // Non-private reference rows (AGM-FCL / AGM-TriCL): the exact parameters
  // are learned once and all trials are served from one ReleaseEngine per
  // model — the same fit-once / sample-many path the private cells use,
  // instead of the old per-trial refit loop. Per-trial acceptance
  // refinement is kept at --accept_iters for paper fidelity; only the fit
  // is amortized.
  const agm::AgmParams exact = agm::LearnAgmParams(input);
  // XOR-distinguished from sweep.seed below: the private cells draw from
  // Substream(sweep.seed, c*repeats + r), and without the constant the
  // nonpriv trial streams would coincide with cell 0's repeats —
  // RNG-correlating the baseline rows with the first private column.
  const uint64_t nonpriv_seed =
      (static_cast<uint64_t>(flags.GetInt("seed", 5)) +
       17 * static_cast<uint64_t>(id)) ^
      0x6e6f6e7072697621ULL;  // "nonpriv!"
  for (bool tricycle : {false, true}) {
    pipeline::PipelineConfig config;
    config.model = tricycle ? "tricycle" : "fcl";
    config.sample.acceptance_iterations = iters;
    config.sample.threads = threads;
    pipeline::EngineOptions engine_options;
    engine_options.threads = threads;
    // No calibration warm start: each trial runs the same cold acceptance
    // loop SynthesizeAgmNonPrivate did — only the exact-parameter fit is
    // amortized across trials.
    engine_options.calibrate = false;
    engine_options.sample = config.sample;
    auto engine = pipeline::ReleaseEngine::Create(
        pipeline::MakeReleaseArtifact(exact, config), engine_options);
    AGMDP_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());
    pipeline::SampleRequest base;
    base.seed = nonpriv_seed + (tricycle ? 1 : 0);
    auto graphs = engine.value()->SampleMany(trials, base);
    AGMDP_CHECK_MSG(graphs.ok(), graphs.status().ToString().c_str());
    eval::ReportAccumulator accumulator;
    for (const graph::AttributedGraph& synthetic : graphs.value()) {
      accumulator.Add(
          eval::EvaluateRelease(reference, synthetic, analytics_threads));
    }
    PrintRow("nonpriv", tricycle ? "AGM-TriCL" : "AGM-FCL",
             accumulator.Stats());
  }

  // Private rows: the whole epsilon × model grid is one sweep — every cell
  // a fully accounted pipeline release on a deterministic substream.
  // --reuse_fit switches the sweep (and therefore the table) to the
  // serving path: one fit per cell, repeats drawn from a ReleaseEngine.
  eval::SweepSpec sweep;
  sweep.models = models;
  sweep.epsilons = epsilons;
  sweep.repeats = trials;
  // Both spellings accepted so the CLI's --reuse-fit habit carries over.
  sweep.reuse_fit =
      flags.GetBool("reuse_fit", flags.GetBool("reuse-fit", false));
  sweep.seed = static_cast<uint64_t>(flags.GetInt("seed", 5)) +
               17 * static_cast<uint64_t>(id);
  sweep.threads = static_cast<int>(flags.GetInt("sweep_threads", 1));
  sweep.sampler_threads = threads;
  sweep.acceptance_iterations = iters;
  sweep.analytics_threads = analytics_threads;

  std::vector<eval::SweepInput> inputs;
  inputs.push_back(
      eval::SweepInput{spec.name, std::move(input), reference_ptr});
  auto result = eval::RunSweep(inputs, sweep);
  AGMDP_CHECK_MSG(result.ok(), result.status().ToString().c_str());

  // The sweep iterates models then epsilons; the table prints epsilons
  // outermost, so look cells up by (model, epsilon).
  for (double eps : epsilons) {
    for (const std::string& model : models) {
      for (const eval::SweepCell& cell : result.value().cells) {
        if (cell.model != model || cell.epsilon != eps) continue;
        AGMDP_CHECK_MSG(cell.error.empty(), cell.error.c_str());
        PrintRow(EpsLabel(eps), "AGMDP-" + model, cell.metrics);
      }
    }
  }
  return 0;
}

int TableMain(datasets::DatasetId id, int argc, char** argv) {
  return RunAgmDpTable(id, util::Flags::Parse(argc, argv));
}

}  // namespace agmdp::bench

#!/usr/bin/env python3
"""Compare a fresh BENCH_perf.json against the committed baseline.

Usage: check_perf_regression.py FRESH BASELINE [--tolerance=3.0]

Fails (exit 1) when any timing shared by both documents blew up by more
than the tolerance factor, or when a correctness flag regressed. The
tolerance is deliberately generous: the baseline is recorded on whatever
machine cut the commit, CI runs on whatever runner GitHub hands out, and
only order-of-magnitude blowups are actionable from CI. Timings are every
numeric leaf under a key containing "seconds"; near-zero baselines
(< 0.5 ms) are skipped as pure noise. hardware_concurrency is echoed from
both documents so speedup numbers are interpretable (a 1-core container
cannot show parallel speedup).

Only the Python standard library is used.
"""

import json
import sys

# Timings faster than this are dominated by scheduler noise, not work.
MIN_BASELINE_SECONDS = 5e-4

REQUIRED_TRUE_FLAGS = [
    "sampler_deterministic_1_2_4",
    "csr_deterministic_1_2_4",
    "serving_deterministic_1_2_4",
    "fused_deterministic",
    # The daemon path (PR 7): every checksum served over TCP under 4
    # concurrent clients must match the sequential in-process oracle.
    "server_deterministic",
    # Binary container (PR 8): the mmap-backed snapshot must evaluate
    # bitwise-identically to the in-RAM snapshot at 1/2/4 threads.
    "storage_deterministic",
    # Artifact registry (PR 9): identical journaled histories must compact
    # to byte-identical files and recover identical spend — the contract
    # crash recovery depends on.
    "registry_deterministic",
    # Release-mechanism registry (PR 10): refitting community_dp /
    # kanon_baseline from the same substream must reproduce the artifact
    # byte for byte, and engines at different pool sizes must serve
    # bitwise-identical samples.
    "mechanisms_deterministic",
]
REQUIRED_KEYS = [
    "hardware_concurrency",
    "csr_analytics_seconds",
    "sampler_hotpath_seconds",
    "serving_seconds",
    "fused_eval_seconds",
    # `agmdp serve` under concurrent TCP load: wall clock, p50/p99 latency.
    "server_seconds",
    "server_samples_per_sec",
    # Binary container (PR 8): text load vs convert vs verified/unverified
    # mmap open on the same graph.
    "storage_seconds",
    # Artifact registry (PR 9): journaled puts (fsync on/off), recovery
    # replay at Open, checkpoint compaction, resolves.
    "registry_seconds",
    # Release mechanisms (PR 10): fit + 8-sample batch per non-AGM scheme.
    "mechanisms_seconds",
]

# The headline properties, gated machine-independently: each ratio compares
# two implementations timed on the same runner in the same process, so it
# must hold regardless of runner hardware. Margins below the real ratios
# absorb scheduling noise on shared runners (CSR is ~2x, the flat hot path
# ~1.5-2x; a genuine regression lands far below these floors).
MIN_CSR_SPEEDUP = 0.8
# Flat-memory sampler hot path (PR 4): FlatEdgeSet dedup + dense acceptance
# table vs std::unordered_set + std::function on the same proposal stream.
MIN_HOTPATH_SPEEDUP = 1.0
MIN_EDGE_SET_SPEEDUP = 1.0
# Fit-once / sample-many serving (PR 5): a calibrated ReleaseEngine's
# single-threaded SampleMany vs the same number of full RunPrivateRelease
# calls, both in this process. The engine amortizes the fit and the
# acceptance-loop calibration, so the floor is a genuine 2x even on one
# core (measured ~3-4x); cross-sample pool parallelism on multi-core
# runners only adds to it.
MIN_SERVING_SPEEDUP = 2.0
# Fused evaluation kernel (PR 6): the two-sweep fused EvaluateRelease vs
# the pre-fusion one-pass-per-metric CSR path, same snapshot, same
# reference profile, 1 thread, both in this process (measured ~2x).
MIN_FUSED_SPEEDUP = 1.5
# Binary graph container (PR 8): a verified mmap open (header CRC + page
# CRC sweep + semantic validation) vs parsing the same graph from the text
# pair, same process, same runner. Measured well over an order of
# magnitude; 5x leaves headroom for slow CI disks.
MIN_BINARY_LOAD_SPEEDUP = 5.0

# Parallel wall-clock speedups, by contrast, are NOT machine-independent:
# a 1-core container runs every "thread count" on the same core and can
# only show overhead. These gates apply when both documents were recorded
# with enough cores to make the ratio meaningful; otherwise they are
# skipped with a printed note.
MIN_CORES_FOR_PARALLEL_GATES = 4
PARALLEL_SPEEDUP_GATES = [
    ("sampler_speedup_4t", 1.2,
     "the sharded sampler must scale on a 4-core runner"),
    ("fused_eval_parallel_speedup_4t", 1.2,
     "the fused evaluation kernel must scale on a 4-core runner"),
]


def timing_leaves(doc, prefix="", in_seconds=False):
    """Yields (path, value) for numeric leaves under *seconds* keys."""
    if isinstance(doc, dict):
        for key, value in doc.items():
            inside = in_seconds or "seconds" in key
            yield from timing_leaves(value, f"{prefix}{key}.", inside)
    elif in_seconds and isinstance(doc, (int, float)) and not isinstance(doc, bool):
        yield prefix.rstrip("."), float(doc)


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    tolerance = 3.0
    for a in argv[1:]:
        if a.startswith("--tolerance="):
            tolerance = float(a.split("=", 1)[1])

    with open(args[0]) as f:
        fresh = json.load(f)
    with open(args[1]) as f:
        baseline = json.load(f)

    failures = []
    for key in REQUIRED_KEYS:
        if key not in fresh:
            failures.append(f"fresh document is missing required key '{key}'")
    for flag in REQUIRED_TRUE_FLAGS:
        if fresh.get(flag) is not True:
            failures.append(f"correctness flag '{flag}' is not true: "
                            f"{fresh.get(flag)!r}")

    speedup_gates = [
        ("csr_triangle_clustering_speedup_1t", MIN_CSR_SPEEDUP,
         "the CSR snapshot kernels must beat the adjacency-list path"),
        ("sampler_hotpath_speedup", MIN_HOTPATH_SPEEDUP,
         "the flat proposal loop must beat the legacy-equivalent mechanics"),
        ("edge_set_speedup", MIN_EDGE_SET_SPEEDUP,
         "FlatEdgeSet must beat std::unordered_set on the edge workload"),
        ("serving_throughput_speedup", MIN_SERVING_SPEEDUP,
         "ReleaseEngine.SampleMany must serve releases at least 2x faster "
         "than repeated RunPrivateRelease (fit amortized away)"),
        ("fused_eval_speedup", MIN_FUSED_SPEEDUP,
         "the fused evaluation kernel must beat the one-pass-per-metric "
         "CSR path"),
        ("binary_load_speedup", MIN_BINARY_LOAD_SPEEDUP,
         "a verified mmap open of the binary container must beat parsing "
         "the text pair"),
    ]
    for key, floor, why in speedup_gates:
        speedup = fresh.get(key)
        if not isinstance(speedup, (int, float)) or speedup <= floor:
            failures.append(
                f"{key} = {speedup!r}: {why} "
                f"(> {floor:.1f}x; both sides timed on this runner)")
        else:
            print(f"{key}: {speedup:.2f}x (must exceed {floor:.1f}x)")

    cores = [doc.get("hardware_concurrency") for doc in (fresh, baseline)]
    if all(isinstance(c, int) and c >= MIN_CORES_FOR_PARALLEL_GATES
           for c in cores):
        for key, floor, why in PARALLEL_SPEEDUP_GATES:
            speedup = fresh.get(key)
            if not isinstance(speedup, (int, float)) or speedup <= floor:
                failures.append(
                    f"{key} = {speedup!r}: {why} (> {floor:.1f}x)")
            else:
                print(f"{key}: {speedup:.2f}x (must exceed {floor:.1f}x)")
    else:
        print(f"note: skipping parallel speedup gates "
              f"({', '.join(key for key, _, _ in PARALLEL_SPEEDUP_GATES)}): "
              f"fresh/baseline cores = {cores[0]!r}/{cores[1]!r}, "
              f"need >= {MIN_CORES_FOR_PARALLEL_GATES} on both")

    if fresh.get("scale") != baseline.get("scale"):
        failures.append(
            f"scale mismatch: fresh {fresh.get('scale')!r} vs baseline "
            f"{baseline.get('scale')!r} — timings are not comparable")

    base_timings = dict(timing_leaves(baseline))
    compared = 0
    for path, value in timing_leaves(fresh):
        base = base_timings.get(path)
        if base is None or base < MIN_BASELINE_SECONDS:
            continue
        compared += 1
        ratio = value / base
        marker = "FAIL" if ratio > tolerance else "ok"
        print(f"  {marker:4} {path:55} {base*1e3:9.2f} ms -> {value*1e3:9.2f} ms"
              f"  ({ratio:.2f}x)")
        if ratio > tolerance:
            failures.append(
                f"{path}: {value:.4f}s vs baseline {base:.4f}s "
                f"({ratio:.2f}x > {tolerance:.2f}x tolerance)")

    print(f"compared {compared} timings "
          f"(baseline cores={baseline.get('hardware_concurrency')}, "
          f"fresh cores={fresh.get('hardware_concurrency')}, "
          f"tolerance {tolerance:.1f}x)")
    if failures:
        print("\nPERF REGRESSION CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("perf regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

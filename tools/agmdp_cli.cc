// agmdp — command-line front end for the library.
//
// All private-release subcommands route through pipeline::RunPrivateRelease
// and friends, so every epsilon spend is recorded in one PrivacyAccountant
// ledger (printed after each fit).
//
// Subcommands:
//   generate   --dataset=lastfm --scale=1.0 --seed=7 --out=PREFIX
//              Generate a synthetic stand-in dataset (writes PREFIX.edges /
//              PREFIX.attrs).
//   fit        --in=PREFIX --epsilon=0.69 [--model=NAME] --params-out=FILE
//              Learn the differentially private AGM parameters and store
//              them. This is the only step that touches the sensitive data.
//   sample     --params=FILE --out=PREFIX [--seed=1] [--model=NAME]
//              [--threads=T]
//              Sample a synthetic graph from stored parameters (pure
//              post-processing; repeatable at no extra privacy cost).
//   synthesize --in=PREFIX --epsilon=0.69 --out=PREFIX2 [--model=NAME]
//              [--threads=T]
//              fit + sample in one step, with stage timings.
//   models     List the registered structural models.
//   stats      --in=PREFIX
//              Structural summary, assortativity and path statistics.
//   evaluate   --in=PREFIX --synthetic=PREFIX2
//              The paper's utility error columns between two graphs.
//   export     --in=PREFIX --out=FILE.graphml
//              GraphML export for external tools.
//
// --model accepts any registry name (see `agmdp models`); --threads sets
// the sampler worker count (0 = hardware concurrency) — output is
// identical for a given seed at any thread count.
#include <cmath>
#include <cstdio>
#include <string>

#include "src/agm/params_io.h"
#include "src/datasets/datasets.h"
#include "src/graph/graph_io.h"
#include "src/graph/paths.h"
#include "src/pipeline/release_pipeline.h"
#include "src/stats/assortativity.h"
#include "src/stats/joint_degree.h"
#include "src/stats/summary.h"
#include "src/util/flags.h"
#include "src/util/rng.h"

namespace {

using namespace agmdp;

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: agmdp <generate|fit|sample|synthesize|models|stats|"
               "evaluate|export> [--flags]\n"
               "see the header of tools/agmdp_cli.cc for details\n");
  return 2;
}

pipeline::PipelineConfig ConfigFromFlags(const util::Flags& flags) {
  pipeline::PipelineConfig config;
  config.epsilon = flags.GetDouble("epsilon", std::log(2.0));
  config.model = flags.GetString("model", "tricycle");
  config.sample.threads = static_cast<int>(flags.GetInt("threads", 1));
  config.sample.acceptance_iterations =
      static_cast<int>(flags.GetInt("accept_iters", 3));
  config.truncation_k = static_cast<uint32_t>(flags.GetInt("truncation_k", 0));
  return config;
}

void PrintLedger(const pipeline::BudgetLedger& ledger, double budget) {
  double spent = 0.0;
  for (const auto& [label, eps] : ledger) {
    std::printf("  %-16s eps = %.4f\n", label.c_str(), eps);
    spent += eps;
  }
  std::printf("  %-16s eps = %.4f / %.4f\n", "total", spent, budget);
}

void PrintStageTimings(const std::vector<agm::StageSeconds>& stages) {
  for (const auto& stage : stages) {
    std::printf("  %-16s %8.3f ms\n", stage.stage.c_str(),
                1e3 * stage.seconds);
  }
}

util::Result<graph::AttributedGraph> LoadInput(const util::Flags& flags,
                                               const std::string& flag_name) {
  const std::string prefix = flags.GetString(flag_name, "");
  if (prefix.empty()) {
    return util::Status::InvalidArgument("missing --" + flag_name + "=PREFIX");
  }
  return graph::ReadAttributedGraph(prefix);
}

int CmdGenerate(const util::Flags& flags) {
  const auto id =
      datasets::DatasetByName(flags.GetString("dataset", "lastfm"));
  auto g = datasets::GenerateDataset(id, flags.GetDouble("scale", 1.0),
                                     flags.GetInt("seed", 7));
  if (!g.ok()) return Fail(g.status());
  const std::string out = flags.GetString("out", "dataset");
  if (auto st = graph::WriteAttributedGraph(g.value(), out); !st.ok()) {
    return Fail(st);
  }
  std::printf("%s\n",
              stats::FormatSummary(out, stats::Summarize(
                                            g.value().structure()))
                  .c_str());
  return 0;
}

int CmdFit(const util::Flags& flags) {
  auto input = LoadInput(flags, "in");
  if (!input.ok()) return Fail(input.status());
  const pipeline::PipelineConfig config = ConfigFromFlags(flags);
  util::Rng rng(flags.GetInt("seed", 1));

  auto fit = pipeline::FitPrivateParams(input.value(), config, rng);
  if (!fit.ok()) return Fail(fit.status());
  const std::string out = flags.GetString("params-out", "agm.params");
  if (auto st = agm::WriteAgmParams(fit.value().params, out); !st.ok()) {
    return Fail(st);
  }
  std::printf("learned eps=%.4f params (model=%s) -> %s\n", config.epsilon,
              config.model.c_str(), out.c_str());
  PrintLedger(fit.value().ledger, fit.value().epsilon_budget);
  return 0;
}

int CmdSample(const util::Flags& flags) {
  auto params = agm::ReadAgmParams(flags.GetString("params", "agm.params"));
  if (!params.ok()) return Fail(params.status());
  const pipeline::PipelineConfig config = ConfigFromFlags(flags);
  util::Rng rng(flags.GetInt("seed", 1));
  auto g = pipeline::SampleRelease(params.value(), config, rng);
  if (!g.ok()) return Fail(g.status());
  const std::string out = flags.GetString("out", "synthetic");
  if (auto st = graph::WriteAttributedGraph(g.value(), out); !st.ok()) {
    return Fail(st);
  }
  std::printf("%s\n",
              stats::FormatSummary(out, stats::Summarize(
                                            g.value().structure()))
                  .c_str());
  return 0;
}

int CmdSynthesize(const util::Flags& flags) {
  auto input = LoadInput(flags, "in");
  if (!input.ok()) return Fail(input.status());
  const pipeline::PipelineConfig config = ConfigFromFlags(flags);
  util::Rng rng(flags.GetInt("seed", 1));
  auto result = pipeline::RunPrivateRelease(input.value(), config, rng);
  if (!result.ok()) return Fail(result.status());
  const std::string out = flags.GetString("out", "synthetic");
  if (auto st = graph::WriteAttributedGraph(result.value().graph, out);
      !st.ok()) {
    return Fail(st);
  }
  std::printf("%s\n",
              stats::FormatSummary(
                  out, stats::Summarize(result.value().graph.structure()))
                  .c_str());
  std::printf("budget ledger:\n");
  PrintLedger(result.value().ledger, result.value().epsilon_budget);
  std::printf("stage timings (total %.3f s):\n", result.value().total_seconds);
  PrintStageTimings(result.value().stage_seconds);
  return 0;
}

int CmdModels(const util::Flags&) {
  for (const std::string& name : pipeline::StructuralModelNames()) {
    const pipeline::StructuralModelSpec* spec =
        pipeline::FindStructuralModel(name);
    std::printf("%-12s %s%s\n", name.c_str(), spec->description.c_str(),
                spec->needs_triangles ? " [learns triangle target]" : "");
  }
  return 0;
}

int CmdStats(const util::Flags& flags) {
  auto input = LoadInput(flags, "in");
  if (!input.ok()) return Fail(input.status());
  const graph::AttributedGraph& g = input.value();
  std::printf("%s\n", stats::FormatSummary(
                          flags.GetString("in", ""),
                          stats::Summarize(g.structure()))
                          .c_str());
  std::printf("degree assortativity:    %+.4f\n",
              stats::DegreeAssortativity(g.structure()));
  std::printf("attribute assortativity: %+.4f\n",
              stats::AttributeAssortativity(g));
  util::Rng rng(flags.GetInt("seed", 1));
  graph::PathStats paths = graph::EstimatePathStats(
      g.structure(), static_cast<uint32_t>(flags.GetInt("bfs_samples", 64)),
      rng);
  std::printf("avg path length (est):   %.3f\n", paths.avg_path_length);
  std::printf("effective diameter:      %.2f\n", paths.effective_diameter);
  std::printf("diameter lower bound:    %u\n", paths.diameter_lower_bound);
  return 0;
}

int CmdEvaluate(const util::Flags& flags) {
  auto input = LoadInput(flags, "in");
  if (!input.ok()) return Fail(input.status());
  auto synthetic = LoadInput(flags, "synthetic");
  if (!synthetic.ok()) return Fail(synthetic.status());
  stats::UtilityErrors e =
      stats::CompareGraphs(input.value(), synthetic.value());
  std::printf("dK-2 Hellinger    %.4f\n",
              stats::JointDegreeDistance(input.value().structure(),
                                         synthetic.value().structure()));
  std::printf("ThetaF MAE        %.4f\n", e.theta_f_mae);
  std::printf("ThetaF Hellinger  %.4f\n", e.theta_f_hellinger);
  std::printf("degree KS         %.4f\n", e.degree_ks);
  std::printf("degree Hellinger  %.4f\n", e.degree_hellinger);
  std::printf("triangles rel.err %.4f\n", e.triangles_re);
  std::printf("avg-CC rel.err    %.4f\n", e.avg_clustering_re);
  std::printf("global-CC rel.err %.4f\n", e.global_clustering_re);
  std::printf("edges rel.err     %.4f\n", e.edges_re);
  return 0;
}

int CmdExport(const util::Flags& flags) {
  auto input = LoadInput(flags, "in");
  if (!input.ok()) return Fail(input.status());
  const std::string out = flags.GetString("out", "graph.graphml");
  if (auto st = graph::WriteGraphMl(input.value(), out); !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  util::Flags flags = util::Flags::Parse(argc - 1, argv + 1);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "fit") return CmdFit(flags);
  if (command == "sample") return CmdSample(flags);
  if (command == "synthesize") return CmdSynthesize(flags);
  if (command == "models") return CmdModels(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "export") return CmdExport(flags);
  return Usage();
}

// agmdp — command-line front end for the library.
//
// All private-release subcommands route through pipeline::RunPrivateRelease
// and friends, so every epsilon spend is recorded in one PrivacyAccountant
// ledger (printed after each fit).
//
// Subcommands:
//   generate   --dataset=lastfm --scale=1.0 --seed=7 --out=PREFIX
//              Generate a synthetic stand-in dataset (writes PREFIX.edges /
//              PREFIX.attrs).
//   fit        --in=PREFIX --epsilon=0.69 [--mechanism=NAME] [--model=NAME]
//              [--k-anonymity=K] [--t-closeness=T] [--community-blocks=B]
//              [--artifact-out=FILE] [--params-out=FILE]
//              Fit a private release under the named mechanism (default
//              agm; see `agmdp models` for the registry) and write it as a
//              mechanism-tagged release artifact (JSON: parameters + budget
//              ledger + config fingerprint; see release_artifact.h). This
//              is the only step that touches the sensitive data.
//              --k-anonymity/--t-closeness tune kanon_baseline,
//              --community-blocks tunes community_dp (0 = auto).
//   sample     --artifact=FILE --out=PREFIX [--samples=N] [--seed=1]
//              [--serve-threads=T] [--refine_iters=R] [--cold]
//              Serve synthetic graphs from a stored artifact through a
//              ReleaseEngine (pure post-processing; repeatable at no extra
//              privacy cost). N > 1 writes PREFIX_0 .. PREFIX_<N-1> via
//              the engine's batched SampleMany, parallelized across
//              samples by --serve-threads; with N = 1, --threads still
//              sets the intra-sample sampler workers. --cold disables the
//              calibrated warm start (full per-sample acceptance loop).
//              --params=FILE consumes a legacy raw-params file instead.
//   synthesize --in=PREFIX --epsilon=0.69 --out=PREFIX2 [--model=NAME]
//              [--threads=T]
//              fit + sample in one step, with stage timings.
//   models     List the registered release mechanisms and structural
//              models.
//   stats      --in=PREFIX [--analytics-threads=T]
//              Structural summary, assortativity and path statistics,
//              computed on an immutable CsrGraph snapshot.
//   evaluate   --in=PREFIX --synthetic=PREFIX2 [--analytics-threads=T]
//              The full utility metric suite (src/eval) between two graphs
//              (one CsrGraph snapshot per side, reused by every metric).
//   sweep      --datasets=lastfm,petster --models=fcl,tricycle
//              --eps=0.2,0.69,1.1 [--mechanisms=agm,community_dp,...]
//              [--repeats=3] [--scale=0.1] [--seed=1]
//              [--threads=1] [--sampler-threads=1] [--accept_iters=2]
//              [--analytics-threads=1] [--reuse-fit]
//              [--out=BENCH_sweep.json] [--no-timing]
//              Run the multi-scenario sweep engine over the dataset ×
//              mechanism × model × epsilon grid (repeats fully accounted
//              releases per cell, deterministic per-cell RNG substreams,
//              cells parallelized over --threads workers) and write
//              per-cell mean/stddev of every utility metric plus a
//              cross-mechanism utility ranking as BENCH_sweep.json
//              (schema agmdp.sweep.v4). --mechanisms ranks competing
//              publication schemes on the same grid ("agm" expands over
//              --models; other mechanisms ignore it). With a fixed seed
//              the JSON is byte-identical across runs (timing fields aside;
//              --no-timing omits them entirely).
//   serve      [--port=0] [--host=127.0.0.1] [--workers=2]
//              [--engine-threads=1] [--queue=64] [--cache-mb=256]
//              [--tenant-budget=EPS] [--budgets=alice:1.5,bob:0.7]
//              [--no-batching] [--port-file=FILE] [--registry=FILE]
//              [--dataset-cap=EPS] [--dataset-caps=lastfm:2.0]
//              [--no-registry-fsync] [--read-timeout-ms=30000]
//              [--idle-timeout-ms=300000] [--write-timeout-ms=30000]
//              Run the multi-tenant sampling daemon (src/server): engines
//              behind a byte-budgeted LRU cache, per-tenant epsilon
//              ledger, bounded admission queue, batched SampleMany
//              serving. --port=0 picks an ephemeral port; --port-file
//              writes the bound port for scripts. With --registry every
//              tenant charge is journaled durably before the load is
//              acknowledged and the ledger is rebuilt from the journal on
//              restart; clients can then load by --dataset/--name instead
//              of a file path. The timeout flags bound slow or idle
//              connections (slow-loris defense). Blocks until a client
//              sends the shutdown op; SIGTERM/SIGINT drain gracefully
//              (stop accepting, flush queued responses, checkpoint the
//              registry).
//   client     --port=P --op=load|sample|pin|unpin|unload|stats|shutdown
//              [--host=127.0.0.1] [--tenant=T] [--name=M] [--artifact=F]
//              [--dataset=D] [--samples=N] [--seed=1] [--sequence=0]
//              [--refine_iters=-1] [--out=PREFIX] [--timeout-ms=30000]
//              [--retries=1]
//              One request against a running daemon; prints the response
//              and exits 0 on success, 1 when the server answers an error.
//              --dataset makes `load` resolve (dataset, name) from the
//              daemon's registry instead of reading --artifact. All ops
//              are idempotent, so --retries=N>1 turns transport failures
//              (Unavailable / DeadlineExceeded) into jittered-backoff
//              reconnect attempts.
//   registry   agmdp registry <put|list|show|gc|checkpoint>
//              --registry=FILE [--artifact=F --dataset=D --name=M]
//              [--dataset-cap=EPS] [--dataset-caps=lastfm:2.0]
//              Operate on the durable artifact registry offline: `put`
//              registers a fitted artifact under (dataset, name) and
//              charges its epsilon against the dataset's lifetime cap
//              (idempotent per release key), `list` prints artifacts
//              (with their mechanism tags), per-dataset budget posture,
//              and the per-config fingerprint history — every release ever
//              bound to each (dataset, name), superseded ones included —
//              `show` prints one artifact's JSON, `gc` drops an artifact
//              (the charge remains — privacy loss is not refundable),
//              `checkpoint` compacts the journal.
//   convert    agmdp convert <text> <bin.agmbin>   (or --in= / --out=)
//              Streaming text -> binary container conversion (constant
//              heap in the edge count; see graph/graph_container.h).
//   info       agmdp info <bin.agmbin>
//              Print container header facts (version, page size/count,
//              nodes/edges/attribute width) and verify every checksum;
//              exits 1 when the file is damaged.
//   export     --in=PREFIX --out=FILE.graphml
//              GraphML export for external tools.
//   help       List every subcommand with a one-line example.
//
// Every --in/--synthetic input goes through graph::GraphSource::Open, so
// a text `PREFIX` and a binary `FILE.agmbin` are interchangeable
// everywhere; --out paths ending in ".agmbin" write binary containers.
//
// --model accepts any registry name (see `agmdp models`); --threads sets
// the sampler worker count (0 = hardware concurrency) — output is
// identical for a given seed at any thread count. An unknown subcommand
// exits non-zero with the closest-matching suggestion.
//
// Exit codes: 0 success, 1 runtime failure (a fit/sample/serve step
// returned an error), 2 usage error (unknown subcommand, malformed or
// out-of-range flag value, unreadable input named on the command line).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/agm/params_io.h"
#include "src/datasets/datasets.h"
#include "src/eval/sweep_engine.h"
#include "src/eval/utility_report.h"
#include "src/graph/csr.h"
#include "src/graph/graph_container.h"
#include "src/graph/graph_io.h"
#include "src/graph/graph_source.h"
#include "src/graph/paths.h"
#include "src/mechanisms/release_mechanism.h"
#include "src/pipeline/release_engine.h"
#include "src/pipeline/release_pipeline.h"
#include "src/registry/artifact_registry.h"
#include "src/util/fault_injector.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/stats/joint_degree.h"
#include "src/stats/summary.h"
#include "src/util/flags.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace {

using namespace agmdp;

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Usage errors — malformed flags, unreadable inputs named on the command
/// line — exit 2 (like unknown subcommands), so scripts can tell "you
/// called me wrong" from "the pipeline failed".
int FailUsage(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 2;
}

/// (name, one-line example, summary) for help and suggestions.
struct SubcommandDoc {
  const char* name;
  const char* example;
  const char* summary;
};

const std::vector<SubcommandDoc>& Subcommands() {
  static const std::vector<SubcommandDoc> docs = {
      {"generate", "agmdp generate --dataset=lastfm --scale=0.1 --out=data",
       "generate a synthetic stand-in dataset"},
      {"fit",
       "agmdp fit --in=data --epsilon=0.69 --model=fcl "
       "--artifact-out=release.artifact.json",
       "learn DP parameters, write a release artifact (the only step that "
       "reads the data)"},
      {"sample",
       "agmdp sample --artifact=release.artifact.json --samples=4 "
       "--out=synthetic",
       "serve synthetic graphs from an artifact (free post-processing)"},
      {"synthesize", "agmdp synthesize --in=data --epsilon=0.69 --out=syn",
       "fit + sample in one step, with stage timings"},
      {"models", "agmdp models",
       "list the registered release mechanisms and structural models"},
      {"stats", "agmdp stats --in=data",
       "structural summary and assortativity/path statistics"},
      {"evaluate", "agmdp evaluate --in=data --synthetic=syn",
       "the full utility metric suite between two graphs"},
      {"sweep",
       "agmdp sweep --datasets=lastfm --mechanisms=agm,community_dp "
       "--eps=0.3,0.69 --repeats=3 [--reuse-fit]",
       "dataset x mechanism x epsilon utility grid -> BENCH_sweep.json"},
      {"serve",
       "agmdp serve --port=7411 --cache-mb=256 --tenant-budget=2.0",
       "multi-tenant sampling daemon (engine cache + epsilon ledger)"},
      {"client",
       "agmdp client --port=7411 --op=sample --name=m --samples=4 "
       "--out=syn",
       "one request against a running daemon"},
      {"registry",
       "agmdp registry put --registry=spend.reg "
       "--artifact=release.artifact.json --dataset=lastfm --name=m",
       "inspect or mutate the durable artifact registry offline"},
      {"convert", "agmdp convert data data.agmbin",
       "streaming text -> checksummed binary container conversion"},
      {"info", "agmdp info data.agmbin",
       "container header summary + full checksum verification"},
      {"export", "agmdp export --in=data --out=graph.graphml",
       "GraphML export for external tools"},
      {"help", "agmdp help", "this overview"},
  };
  return docs;
}

int CmdHelp() {
  std::printf("usage: agmdp <subcommand> [--flags]\n\n");
  for (const SubcommandDoc& doc : Subcommands()) {
    std::printf("  %-10s %s\n  %-10s   %s\n", doc.name, doc.summary, "",
                doc.example);
  }
  std::printf(
      "\nThe full flag reference lives in the header of "
      "tools/agmdp_cli.cc.\n");
  return 0;
}

size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

int UnknownCommand(const std::string& command) {
  const SubcommandDoc* closest = nullptr;
  size_t best = ~size_t{0};
  for (const SubcommandDoc& doc : Subcommands()) {
    const size_t distance = EditDistance(command, doc.name);
    if (distance < best) {
      best = distance;
      closest = &doc;
    }
  }
  std::fprintf(stderr, "error: unknown subcommand '%s'", command.c_str());
  if (closest != nullptr && best <= 3) {
    std::fprintf(stderr, " — did you mean '%s'?", closest->name);
  }
  std::fprintf(stderr, "\nrun 'agmdp help' for the subcommand list\n");
  return 2;
}

int Usage() {
  std::fprintf(stderr, "usage: agmdp <subcommand> [--flags]\n");
  for (const SubcommandDoc& doc : Subcommands()) {
    std::fprintf(stderr, "  %s\n", doc.example);
  }
  return 2;
}

util::Result<pipeline::PipelineConfig> ConfigFromFlags(
    const util::Flags& flags) {
  pipeline::PipelineConfig config;
  // Checked getters: a present-but-malformed value ("--threads=abc") is a
  // typed InvalidArgument naming the flag, never silently 0.
  auto epsilon = flags.GetCheckedDouble("epsilon", std::log(2.0));
  if (!epsilon.ok()) return epsilon.status();
  config.epsilon = epsilon.value();
  config.mechanism = flags.GetString("mechanism", "agm");
  config.model = flags.GetString("model", "tricycle");
  auto k_anonymity = flags.GetCheckedInt("k-anonymity", 0);
  if (!k_anonymity.ok()) return k_anonymity.status();
  if (k_anonymity.value() < 0) {
    return util::Status::InvalidArgument("--k-anonymity must be >= 0");
  }
  config.k_anonymity = static_cast<uint32_t>(k_anonymity.value());
  auto t_closeness = flags.GetCheckedDouble("t-closeness", 0.2);
  if (!t_closeness.ok()) return t_closeness.status();
  config.t_closeness = t_closeness.value();
  auto community_blocks = flags.GetCheckedInt("community-blocks", 0);
  if (!community_blocks.ok()) return community_blocks.status();
  if (community_blocks.value() < 0) {
    return util::Status::InvalidArgument("--community-blocks must be >= 0");
  }
  config.community_blocks = static_cast<uint32_t>(community_blocks.value());
  auto threads = flags.GetCheckedInt("threads", 1);
  if (!threads.ok()) return threads.status();
  if (threads.value() < 0) {
    return util::Status::InvalidArgument("--threads must be >= 0");
  }
  config.sample.threads = static_cast<int>(threads.value());
  auto accept_iters = flags.GetCheckedInt("accept_iters", 3);
  if (!accept_iters.ok()) return accept_iters.status();
  config.sample.acceptance_iterations = static_cast<int>(accept_iters.value());
  auto truncation_k = flags.GetCheckedInt("truncation_k", 0);
  if (!truncation_k.ok()) return truncation_k.status();
  if (truncation_k.value() < 0) {
    return util::Status::InvalidArgument("--truncation_k must be >= 0");
  }
  config.truncation_k = static_cast<uint32_t>(truncation_k.value());
  return config;
}

void PrintLedger(const pipeline::BudgetLedger& ledger, double budget) {
  double spent = 0.0;
  for (const auto& [label, eps] : ledger) {
    std::printf("  %-16s eps = %.4f\n", label.c_str(), eps);
    spent += eps;
  }
  std::printf("  %-16s eps = %.4f / %.4f\n", "total", spent, budget);
}

void PrintStageTimings(const std::vector<agm::StageSeconds>& stages) {
  for (const auto& stage : stages) {
    std::printf("  %-16s %8.3f ms\n", stage.stage.c_str(),
                1e3 * stage.seconds);
  }
}

/// All graph inputs come through GraphSource: `--in=` accepts a text
/// PREFIX or a binary .agmbin container interchangeably.
util::Result<graph::GraphSource> LoadSource(const util::Flags& flags,
                                            const std::string& flag_name) {
  const std::string path = flags.GetString(flag_name, "");
  if (path.empty()) {
    return util::Status::InvalidArgument("missing --" + flag_name + "=PATH");
  }
  return graph::GraphSource::Open(path);
}

/// Materialized variant for subcommands that need a mutable graph
/// (fit/synthesize read adjacency lists; export walks canonical edges).
util::Result<graph::AttributedGraph> LoadInput(const util::Flags& flags,
                                               const std::string& flag_name) {
  auto source = LoadSource(flags, flag_name);
  if (!source.ok()) return source.status();
  return source.value().Materialize();
}

int CmdGenerate(const util::Flags& flags) {
  const auto id =
      datasets::DatasetByName(flags.GetString("dataset", "lastfm"));
  auto g = datasets::GenerateDataset(id, flags.GetDouble("scale", 1.0),
                                     flags.GetInt("seed", 7));
  if (!g.ok()) return Fail(g.status());
  const std::string out = flags.GetString("out", "dataset");
  if (auto st = graph::WriteGraph(g.value(), out); !st.ok()) {
    return Fail(st);
  }
  std::printf("%s\n",
              stats::FormatSummary(
                  out, stats::Summarize(graph::CsrGraph::FromGraph(
                           g.value().structure())))
                  .c_str());
  return 0;
}

int CmdFit(const util::Flags& flags) {
  auto parsed = ConfigFromFlags(flags);
  if (!parsed.ok()) return FailUsage(parsed.status());
  const pipeline::PipelineConfig config = parsed.value();
  auto input = LoadInput(flags, "in");
  if (!input.ok()) return FailUsage(input.status());
  auto seed = flags.GetCheckedInt("seed", 1);
  if (!seed.ok()) return FailUsage(seed.status());
  util::Rng rng(static_cast<uint64_t>(seed.value()));

  auto artifact = pipeline::FitReleaseArtifact(input.value(), config, rng);
  if (!artifact.ok()) return Fail(artifact.status());
  // A purely legacy invocation (--params-out given, no --artifact-out)
  // writes only the raw params — no surprise release.artifact.json
  // clobbered in the working directory. Everyone else gets the artifact,
  // at --artifact-out or the default that `agmdp sample` reads flaglessly.
  const bool legacy_only =
      flags.Has("params-out") && !flags.Has("artifact-out");
  if (!legacy_only) {
    const std::string out =
        flags.GetString("artifact-out", "release.artifact.json");
    if (auto st = pipeline::WriteReleaseArtifact(artifact.value(), out);
        !st.ok()) {
      return Fail(st);
    }
    std::printf("fitted eps=%.4f release artifact (mechanism=%s, model=%s, "
                "fingerprint=%llu) -> %s\n",
                config.epsilon, artifact.value().mechanism.c_str(),
                artifact.value().model.c_str(),
                static_cast<unsigned long long>(
                    artifact.value().config_fingerprint),
                out.c_str());
  }
  if (flags.Has("params-out")) {
    // Legacy raw-params sidecar for tools that predate artifacts.
    const std::string params_out = flags.GetString("params-out", "");
    if (auto st =
            agm::WriteAgmParams(artifact.value().params, params_out);
        !st.ok()) {
      return Fail(st);
    }
    std::printf("fitted eps=%.4f params (model=%s) -> %s\n", config.epsilon,
                config.model.c_str(), params_out.c_str());
  }
  PrintLedger(artifact.value().ledger, artifact.value().epsilon_budget);
  return 0;
}

int CmdSample(const util::Flags& flags) {
  auto parsed = ConfigFromFlags(flags);
  if (!parsed.ok()) return FailUsage(parsed.status());
  const pipeline::PipelineConfig config = parsed.value();
  auto samples_flag = flags.GetCheckedInt("samples", 1);
  if (!samples_flag.ok()) return FailUsage(samples_flag.status());
  if (samples_flag.value() < 1) {
    return FailUsage(util::Status::InvalidArgument(
        "--samples=" + std::to_string(samples_flag.value()) +
        " must be >= 1"));
  }
  const int samples = static_cast<int>(samples_flag.value());

  pipeline::ReleaseArtifact artifact;
  if (flags.Has("params")) {
    // Legacy path: raw params + the model named on the command line.
    auto params = agm::ReadAgmParams(flags.GetString("params", "agm.params"));
    if (!params.ok()) return FailUsage(params.status());
    artifact = pipeline::MakeReleaseArtifact(params.value(), config);
  } else {
    // Default matches fit's --artifact-out, so the flagless
    // `agmdp fit` -> `agmdp sample` round trip works out of the box.
    // A nonexistent or unparseable artifact is a usage error: the caller
    // named the wrong file, the pipeline never ran.
    auto loaded = pipeline::ReadReleaseArtifact(
        flags.GetString("artifact", "release.artifact.json"));
    if (!loaded.ok()) return FailUsage(loaded.status());
    artifact = std::move(loaded).value();
    if (flags.Has("model")) artifact.model = config.model;
  }
  if (flags.Has("accept_iters")) {
    artifact.acceptance_iterations = config.sample.acceptance_iterations;
  }

  auto serve_threads =
      flags.GetCheckedInt("serve-threads", config.sample.threads);
  if (!serve_threads.ok()) return FailUsage(serve_threads.status());
  auto refine_iters = flags.GetCheckedInt("refine_iters", 0);
  if (!refine_iters.ok()) return FailUsage(refine_iters.status());
  pipeline::EngineOptions options;
  options.threads = static_cast<int>(serve_threads.value());
  options.calibrate = !flags.GetBool("cold", false);
  options.default_refine_iterations = static_cast<int>(
      flags.Has("refine_iters") ? refine_iters.value()
                                : flags.GetInt("refine-iters", 0));
  options.sample = config.sample;
  auto engine = pipeline::ReleaseEngine::Create(std::move(artifact), options);
  if (!engine.ok()) return Fail(engine.status());

  auto seed = flags.GetCheckedInt("seed", 1);
  if (!seed.ok()) return FailUsage(seed.status());
  pipeline::SampleRequest base;
  base.seed = static_cast<uint64_t>(seed.value());
  util::Result<std::vector<graph::AttributedGraph>> graphs =
      std::vector<graph::AttributedGraph>{};
  if (samples == 1) {
    // A single request keeps --threads as *intra-sample* sampler workers
    // (the pre-serving behavior, 0 = hardware concurrency); batches
    // parallelize across samples instead. The bits are identical either
    // way.
    pipeline::SampleRequest request = base;
    request.threads = util::ResolveThreadCount(config.sample.threads);
    auto g = engine.value()->Sample(request);
    if (!g.ok()) return Fail(g.status());
    graphs.value().push_back(std::move(g).value());
  } else {
    graphs = engine.value()->SampleMany(samples, base);
    if (!graphs.ok()) return Fail(graphs.status());
  }

  const std::string out = flags.GetString("out", "synthetic");
  for (int i = 0; i < samples; ++i) {
    const std::string prefix =
        samples == 1 ? out
                     : graph::NumberedGraphPath(out, static_cast<uint64_t>(i));
    const graph::AttributedGraph& g = graphs.value()[static_cast<size_t>(i)];
    if (auto st = graph::WriteGraph(g, prefix); !st.ok()) {
      return Fail(st);
    }
    std::printf("%s\n",
                stats::FormatSummary(
                    prefix,
                    stats::Summarize(graph::CsrGraph::FromGraph(g.structure())))
                    .c_str());
  }
  return 0;
}

int CmdSynthesize(const util::Flags& flags) {
  auto parsed = ConfigFromFlags(flags);
  if (!parsed.ok()) return FailUsage(parsed.status());
  const pipeline::PipelineConfig config = parsed.value();
  auto input = LoadInput(flags, "in");
  if (!input.ok()) return FailUsage(input.status());
  auto seed = flags.GetCheckedInt("seed", 1);
  if (!seed.ok()) return FailUsage(seed.status());
  util::Rng rng(static_cast<uint64_t>(seed.value()));
  auto result = pipeline::RunPrivateRelease(input.value(), config, rng);
  if (!result.ok()) return Fail(result.status());
  const std::string out = flags.GetString("out", "synthetic");
  if (auto st = graph::WriteGraph(result.value().graph, out); !st.ok()) {
    return Fail(st);
  }
  std::printf("%s\n",
              stats::FormatSummary(
                  out, stats::Summarize(graph::CsrGraph::FromGraph(
                           result.value().graph.structure())))
                  .c_str());
  std::printf("budget ledger:\n");
  PrintLedger(result.value().ledger, result.value().epsilon_budget);
  std::printf("stage timings (total %.3f s):\n", result.value().total_seconds);
  PrintStageTimings(result.value().stage_seconds);
  return 0;
}

int CmdModels(const util::Flags&) {
  std::printf("release mechanisms (--mechanism= / --mechanisms=):\n");
  for (const std::string& name : mechanisms::MechanismNames()) {
    const mechanisms::MechanismSpec* spec = mechanisms::FindMechanism(name);
    std::printf("  %-16s [%s] %s\n", name.c_str(),
                mechanisms::PrivacyModelName(spec->privacy_model),
                spec->description.c_str());
  }
  std::printf("structural models (--model=, agm mechanism only):\n");
  for (const std::string& name : pipeline::StructuralModelNames()) {
    const pipeline::StructuralModelSpec* spec =
        pipeline::FindStructuralModel(name);
    std::printf("  %-16s %s%s\n", name.c_str(), spec->description.c_str(),
                spec->needs_triangles ? " [learns triangle target]" : "");
  }
  return 0;
}

int CmdStats(const util::Flags& flags) {
  auto input = LoadSource(flags, "in");
  if (!input.ok()) return Fail(input.status());
  const int analytics_threads =
      static_cast<int>(flags.GetInt("analytics-threads", 1));
  // One immutable snapshot serves the summary and the structural profile
  // (for a binary container this aliases the mapping — no copy).
  const graph::AttributedCsrGraph& snapshot = input.value().snapshot();
  std::printf("%s\n",
              stats::FormatSummary(
                  flags.GetString("in", ""),
                  stats::Summarize(snapshot.structure, analytics_threads))
                  .c_str());
  util::Rng rng(flags.GetInt("seed", 1));
  const eval::StructuralProfile profile = eval::ProfileGraph(
      snapshot, static_cast<uint32_t>(flags.GetInt("bfs_samples", 64)), rng,
      analytics_threads);
  std::printf("degree assortativity:    %+.4f\n",
              profile.degree_assortativity);
  std::printf("attribute assortativity: %+.4f\n",
              profile.attribute_assortativity);
  for (size_t a = 0; a < profile.homophily.size(); ++a) {
    std::printf("homophily attr %zu:        %.4f\n", a, profile.homophily[a]);
  }
  std::printf("avg path length (est):   %.3f\n", profile.avg_path_length);
  std::printf("effective diameter:      %.2f\n", profile.effective_diameter);
  std::printf("diameter lower bound:    %u\n", profile.diameter_lower_bound);
  return 0;
}

int CmdEvaluate(const util::Flags& flags) {
  auto input = LoadSource(flags, "in");
  if (!input.ok()) return Fail(input.status());
  auto synthetic = LoadSource(flags, "synthetic");
  if (!synthetic.ok()) return Fail(synthetic.status());
  const int analytics_threads =
      static_cast<int>(flags.GetInt("analytics-threads", 1));
  // One immutable snapshot per side, reused across every metric (binary
  // inputs evaluate straight off the mapping).
  const graph::AttributedCsrGraph& original = input.value().snapshot();
  const graph::AttributedCsrGraph& released = synthetic.value().snapshot();
  const eval::UtilityReport report =
      eval::EvaluateRelease(eval::ProfileReference(original, analytics_threads),
                            released, analytics_threads);
  std::printf("dK-2 Hellinger    %.4f\n",
              stats::JointDegreeDistance(original.structure,
                                         released.structure,
                                         analytics_threads));
  for (const auto& [name, value] : report.Flatten()) {
    std::printf("%-28s %+.4f\n", name.c_str(), value);
  }
  return 0;
}

int CmdSweep(const util::Flags& flags) {
  eval::SweepSpec spec;
  spec.datasets = flags.GetStringList("datasets", {"lastfm"});
  spec.dataset_scale = flags.GetDouble("scale", 0.1);
  spec.mechanisms = flags.GetStringList("mechanisms", {"agm"});
  spec.models = flags.GetStringList("models", {"fcl", "tricycle"});
  spec.epsilons =
      flags.GetDoubleList("eps", {0.2, std::log(2.0), std::log(3.0)});
  spec.repeats = static_cast<int>(flags.GetInt("repeats", 3));
  spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  spec.threads = static_cast<int>(flags.GetInt("threads", 1));
  spec.sampler_threads =
      static_cast<int>(flags.GetInt("sampler-threads", 1));
  spec.acceptance_iterations =
      static_cast<int>(flags.GetInt("accept_iters", 2));
  spec.analytics_threads =
      static_cast<int>(flags.GetInt("analytics-threads", 1));
  // Both spellings accepted (the table harness flags use underscores).
  spec.reuse_fit =
      flags.GetBool("reuse-fit", flags.GetBool("reuse_fit", false));

  auto result = eval::RunSweepOnDatasets(spec);
  if (!result.ok()) return Fail(result.status());

  std::printf("# sweep: %zu cells (%zu datasets x %zu mechanisms x "
              "%zu epsilons), %d repeats, %.2fs\n",
              result.value().cells.size(), spec.datasets.size(),
              spec.mechanisms.size(), spec.epsilons.size(), spec.repeats,
              result.value().total_seconds);
  int failed_cells = 0;
  for (const eval::SweepCell& cell : result.value().cells) {
    if (!cell.error.empty()) {
      ++failed_cells;
      std::printf("%-10s %-14s %-12s eps=%-6.3f FAILED: %s\n",
                  cell.dataset.c_str(), cell.mechanism.c_str(),
                  cell.model.c_str(), cell.epsilon, cell.error.c_str());
      continue;
    }
    std::printf("%-10s %-14s %-12s eps=%-6.3f KS_S=%.4f H_ThetaF=%.4f "
                "n_tri=%.4f homo=%+.4f\n",
                cell.dataset.c_str(), cell.mechanism.c_str(),
                cell.model.c_str(), cell.epsilon,
                eval::MetricMean(cell.metrics, "degree_ks"),
                eval::MetricMean(cell.metrics, "theta_f_hellinger"),
                eval::MetricMean(cell.metrics, "triangles_re"),
                eval::MetricMean(cell.metrics, "homophily_delta_mean_abs"));
  }

  const std::string out = flags.GetString("out", "BENCH_sweep.json");
  const bool include_timing = !flags.GetBool("no-timing", false);
  const std::string body =
      eval::SweepResultToJson(result.value(), include_timing);
  FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    return Fail(util::Status::IoError("cannot open for writing: " + out));
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  if (failed_cells > 0) {
    std::fprintf(stderr, "error: %d sweep cell(s) failed (see output and %s)\n",
                 failed_cells, out.c_str());
    return 1;
  }
  return 0;
}

/// Parses --<flag>=alice:1.5,bob:0.7 into (name, epsilon) pairs — used for
/// per-tenant budgets and per-dataset lifetime caps alike.
util::Result<std::vector<std::pair<std::string, double>>> ParseNamedEpsilons(
    const util::Flags& flags, const std::string& flag_name) {
  std::vector<std::pair<std::string, double>> pairs;
  for (const std::string& entry : flags.GetStringList(flag_name, {})) {
    const size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0) {
      return util::Status::InvalidArgument(
          "--" + flag_name + " entry '" + entry + "' is not NAME:EPSILON");
    }
    const std::string text = entry.substr(colon + 1);
    char* end = nullptr;
    const double epsilon = std::strtod(text.c_str(), &end);
    if (text.empty() || end == nullptr || *end != '\0' || epsilon <= 0.0) {
      return util::Status::InvalidArgument(
          "--" + flag_name + " entry '" + entry +
          "' needs a positive epsilon");
    }
    pairs.emplace_back(entry.substr(0, colon), epsilon);
  }
  return pairs;
}

/// The registry cap flags shared by `serve --registry` and
/// `agmdp registry`: --dataset-cap (the default) and --dataset-caps
/// (per-dataset overrides).
util::Result<registry::RegistryOptions> RegistryOptionsFromFlags(
    const util::Flags& flags) {
  registry::RegistryOptions options;
  auto cap = flags.GetCheckedDouble("dataset-cap", 0.0);
  if (!cap.ok()) return cap.status();
  options.default_dataset_cap = cap.value();
  auto caps = ParseNamedEpsilons(flags, "dataset-caps");
  if (!caps.ok()) return caps.status();
  options.dataset_caps = std::move(caps).value();
  options.fsync = !flags.GetBool("no-registry-fsync", false);
  return options;
}

int CmdRegistry(const util::Flags& flags) {
  if (flags.positional().empty()) {
    return FailUsage(util::Status::InvalidArgument(
        "usage: agmdp registry <put|list|show|gc|checkpoint> "
        "--registry=FILE"));
  }
  const std::string action = flags.positional().front();
  const std::string path = flags.GetString("registry", "");
  if (path.empty()) {
    return FailUsage(
        util::Status::InvalidArgument("registry needs --registry=FILE"));
  }
  auto options = RegistryOptionsFromFlags(flags);
  if (!options.ok()) return FailUsage(options.status());
  auto opened = registry::ArtifactRegistry::Open(path, options.value());
  if (!opened.ok()) return Fail(opened.status());
  registry::ArtifactRegistry& reg = *opened.value();

  const std::string dataset = flags.GetString("dataset", "");
  const std::string name = flags.GetString("name", "");
  if (action == "put") {
    if (dataset.empty() || name.empty()) {
      return FailUsage(util::Status::InvalidArgument(
          "registry put needs --dataset=D and --name=M"));
    }
    auto artifact = pipeline::ReadReleaseArtifact(
        flags.GetString("artifact", "release.artifact.json"));
    if (!artifact.ok()) return FailUsage(artifact.status());
    if (auto st = reg.Put(dataset, name, artifact.value()); !st.ok()) {
      return Fail(st);
    }
    std::printf("registered %s/%s (eps=%.4f); dataset spent %.4f",
                dataset.c_str(), name.c_str(),
                artifact.value().epsilon_spent, reg.Spent(dataset));
    const double cap = reg.Cap(dataset);
    if (cap > 0.0) std::printf(" / cap %.4f", cap);
    std::printf("\n");
    return 0;
  }
  if (action == "list") {
    for (const registry::DatasetRow& row : reg.Datasets()) {
      std::printf("dataset %-16s spent=%.4f", row.dataset.c_str(), row.spent);
      if (row.cap > 0.0) std::printf(" cap=%.4f", row.cap);
      std::printf(" artifacts=%llu\n",
                  static_cast<unsigned long long>(row.artifacts));
    }
    for (const registry::ArtifactRow& row : reg.List()) {
      std::printf("%-16s %-16s mechanism=%-14s model=%-10s eps=%.4f "
                  "key=%llu\n",
                  row.dataset.c_str(), row.name.c_str(),
                  row.mechanism.c_str(), row.model.c_str(), row.epsilon,
                  static_cast<unsigned long long>(row.release_key));
    }
    // Per-config fingerprint history: every release ever bound, in bind
    // order, so superseded (gc'd) lineage stays visible.
    for (const registry::HistoryRow& row : reg.History()) {
      std::printf("history %-16s %-16s mechanism=%-14s fingerprint=%llu "
                  "eps=%.4f %s\n",
                  row.dataset.c_str(), row.name.c_str(),
                  row.mechanism.c_str(),
                  static_cast<unsigned long long>(row.config_fingerprint),
                  row.epsilon, row.live ? "live" : "superseded");
    }
    const registry::RegistryStats stats = reg.Stats();
    std::printf("journal: %llu bytes, %llu records replayed",
                static_cast<unsigned long long>(stats.journal_bytes),
                static_cast<unsigned long long>(stats.recovered_records));
    if (stats.discarded_tail_bytes > 0) {
      std::printf(" (%llu torn tail bytes discarded)",
                  static_cast<unsigned long long>(stats.discarded_tail_bytes));
    }
    std::printf("\n");
    return 0;
  }
  if (action == "show") {
    if (dataset.empty() || name.empty()) {
      return FailUsage(util::Status::InvalidArgument(
          "registry show needs --dataset=D and --name=M"));
    }
    auto artifact = reg.Resolve(dataset, name);
    if (!artifact.ok()) return Fail(artifact.status());
    std::printf("%s\n",
                pipeline::ReleaseArtifactToJson(artifact.value()).c_str());
    return 0;
  }
  if (action == "gc") {
    if (dataset.empty() || name.empty()) {
      return FailUsage(util::Status::InvalidArgument(
          "registry gc needs --dataset=D and --name=M"));
    }
    if (auto st = reg.Gc(dataset, name); !st.ok()) return Fail(st);
    std::printf("dropped %s/%s (its epsilon charge remains: spent %.4f)\n",
                dataset.c_str(), name.c_str(), reg.Spent(dataset));
    return 0;
  }
  if (action == "checkpoint") {
    if (auto st = reg.Checkpoint(); !st.ok()) return Fail(st);
    std::printf("checkpointed %s (%llu bytes)\n", path.c_str(),
                static_cast<unsigned long long>(reg.Stats().journal_bytes));
    return 0;
  }
  return FailUsage(util::Status::InvalidArgument(
      "registry action '" + action +
      "' is not one of put|list|show|gc|checkpoint"));
}

/// Self-pipe for the serve signal handlers: sigaction handlers may only
/// call async-signal-safe functions, so the handler writes one byte and a
/// watcher thread does the actual Drain().
int g_signal_pipe[2] = {-1, -1};

extern "C" void ServeSignalHandler(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

int CmdServe(const util::Flags& flags) {
  server::ServerOptions options;
  options.host = flags.GetString("host", "127.0.0.1");
  auto port = flags.GetCheckedInt("port", 0);
  if (!port.ok()) return FailUsage(port.status());
  options.port = static_cast<int>(port.value());
  auto workers = flags.GetCheckedInt("workers", 2);
  if (!workers.ok()) return FailUsage(workers.status());
  options.worker_threads = static_cast<int>(workers.value());
  auto engine_threads = flags.GetCheckedInt("engine-threads", 1);
  if (!engine_threads.ok()) return FailUsage(engine_threads.status());
  options.engine_threads = static_cast<int>(engine_threads.value());
  auto queue = flags.GetCheckedInt("queue", 64);
  if (!queue.ok()) return FailUsage(queue.status());
  if (queue.value() < 1) {
    return FailUsage(util::Status::InvalidArgument("--queue must be >= 1"));
  }
  options.max_queue = static_cast<size_t>(queue.value());
  auto cache_mb = flags.GetCheckedInt("cache-mb", 256);
  if (!cache_mb.ok()) return FailUsage(cache_mb.status());
  if (cache_mb.value() < 0) {
    return FailUsage(
        util::Status::InvalidArgument("--cache-mb must be >= 0 (0 = no cap)"));
  }
  options.cache_bytes =
      static_cast<uint64_t>(cache_mb.value()) * 1024 * 1024;
  auto tenant_budget = flags.GetCheckedDouble("tenant-budget", 0.0);
  if (!tenant_budget.ok()) return FailUsage(tenant_budget.status());
  options.default_tenant_budget = tenant_budget.value();
  auto budgets = ParseNamedEpsilons(flags, "budgets");
  if (!budgets.ok()) return FailUsage(budgets.status());
  options.tenant_budgets = std::move(budgets).value();
  options.batching = !flags.GetBool("no-batching", false);

  options.registry_path = flags.GetString("registry", "");
  auto registry_options = RegistryOptionsFromFlags(flags);
  if (!registry_options.ok()) return FailUsage(registry_options.status());
  options.default_dataset_cap = registry_options.value().default_dataset_cap;
  options.dataset_caps = std::move(registry_options.value().dataset_caps);
  options.registry_fsync = registry_options.value().fsync;
  auto read_timeout = flags.GetCheckedInt("read-timeout-ms", 30'000);
  if (!read_timeout.ok()) return FailUsage(read_timeout.status());
  options.read_timeout_ms = static_cast<int>(read_timeout.value());
  auto idle_timeout = flags.GetCheckedInt("idle-timeout-ms", 300'000);
  if (!idle_timeout.ok()) return FailUsage(idle_timeout.status());
  options.idle_timeout_ms = static_cast<int>(idle_timeout.value());
  auto write_timeout = flags.GetCheckedInt("write-timeout-ms", 30'000);
  if (!write_timeout.ok()) return FailUsage(write_timeout.status());
  options.write_timeout_ms = static_cast<int>(write_timeout.value());

  auto started = server::Server::Start(options);
  if (!started.ok()) return Fail(started.status());
  server::Server& daemon = *started.value();
  std::printf("agmdp serve: listening on %s:%d (%d workers, queue %zu, "
              "cache %llu MiB%s%s)\n",
              options.host.c_str(), daemon.port(), options.worker_threads,
              options.max_queue,
              static_cast<unsigned long long>(options.cache_bytes >> 20),
              options.registry_path.empty() ? "" : ", registry ",
              options.registry_path.c_str());
  std::fflush(stdout);
  if (flags.Has("port-file")) {
    const std::string path = flags.GetString("port-file", "");
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return Fail(util::Status::IoError("cannot write --port-file=" + path));
    }
    std::fprintf(f, "%d\n", daemon.port());
    std::fclose(f);
  }

  // SIGTERM/SIGINT -> graceful drain: finish queued work, flush responses,
  // checkpoint the registry. The handler only writes to the self-pipe; the
  // watcher thread calls Drain(). A second signal falls through to the
  // default disposition (SA_RESETHAND), so a stuck drain can still be
  // killed the normal way.
  std::atomic<bool> serving{true};
  std::thread signal_watcher;
  if (::pipe(g_signal_pipe) == 0) {
    struct sigaction action = {};
    action.sa_handler = ServeSignalHandler;
    ::sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESETHAND;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    signal_watcher = std::thread([&daemon, &serving] {
      char byte = 0;
      while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
      }
      if (serving.load()) daemon.Drain();
    });
  }

  daemon.Wait();
  serving.store(false);
  if (signal_watcher.joinable()) {
    // Unblock the watcher in case the daemon stopped via the shutdown op
    // rather than a signal.
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
    signal_watcher.join();
    ::close(g_signal_pipe[0]);
    ::close(g_signal_pipe[1]);
  }
  const server::ServerStats stats = daemon.Stats();
  const server::EngineCacheStats cache = daemon.CacheStats();
  std::printf("agmdp serve: shut down after %llu requests "
              "(%llu graphs, %llu batches, %llu queue rejections; cache "
              "%llu hits / %llu misses / %llu evictions)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.graphs_served),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.rejected_queue_full),
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.evictions));
  if (daemon.registry() != nullptr) {
    const registry::RegistryStats rstats = daemon.registry()->Stats();
    std::printf("agmdp serve: registry %s holds %llu artifacts, "
                "%llu tenant charges (%llu journal appends this run)\n",
                options.registry_path.c_str(),
                static_cast<unsigned long long>(rstats.artifacts),
                static_cast<unsigned long long>(rstats.tenant_charges),
                static_cast<unsigned long long>(rstats.appends));
  }
  return 0;
}

int CmdClient(const util::Flags& flags) {
  auto port = flags.GetCheckedInt("port", 0);
  if (!port.ok()) return FailUsage(port.status());
  if (port.value() <= 0) {
    return FailUsage(
        util::Status::InvalidArgument("client needs --port=PORT (> 0)"));
  }
  const std::string op_name = flags.GetString("op", "");
  server::Request request;
  if (op_name == "load") {
    request.op = server::RequestOp::kLoad;
  } else if (op_name == "sample") {
    request.op = server::RequestOp::kSample;
  } else if (op_name == "pin") {
    request.op = server::RequestOp::kPin;
  } else if (op_name == "unpin") {
    request.op = server::RequestOp::kUnpin;
  } else if (op_name == "unload") {
    request.op = server::RequestOp::kUnload;
  } else if (op_name == "stats") {
    request.op = server::RequestOp::kStats;
  } else if (op_name == "shutdown") {
    request.op = server::RequestOp::kShutdown;
  } else {
    return FailUsage(util::Status::InvalidArgument(
        "--op='" + op_name +
        "' is not one of load|sample|pin|unpin|unload|stats|shutdown"));
  }
  request.id = 1;
  request.tenant = flags.GetString("tenant", "cli");
  request.name = flags.GetString("name", "default");
  request.dataset = flags.GetString("dataset", "");
  // With --dataset the load resolves from the daemon's registry, so the
  // artifact path must stay empty (a load wants exactly one of the two);
  // without it the default matches fit's --artifact-out.
  request.artifact =
      request.dataset.empty()
          ? flags.GetString("artifact", "release.artifact.json")
          : flags.GetString("artifact", "");
  auto seed = flags.GetCheckedInt("seed", 1);
  if (!seed.ok()) return FailUsage(seed.status());
  request.seed = static_cast<uint64_t>(seed.value());
  auto sequence = flags.GetCheckedInt("sequence", 0);
  if (!sequence.ok()) return FailUsage(sequence.status());
  request.sequence = static_cast<uint64_t>(sequence.value());
  auto samples = flags.GetCheckedInt("samples", 1);
  if (!samples.ok()) return FailUsage(samples.status());
  if (samples.value() < 1) {
    return FailUsage(util::Status::InvalidArgument(
        "--samples=" + std::to_string(samples.value()) + " must be >= 1"));
  }
  request.count = static_cast<int>(samples.value());
  auto refine = flags.GetCheckedInt("refine_iters", -1);
  if (!refine.ok()) return FailUsage(refine.status());
  request.refine_iterations = static_cast<int>(refine.value());
  request.out = flags.GetString("out", "");

  auto timeout_ms = flags.GetCheckedInt("timeout-ms", 30'000);
  if (!timeout_ms.ok()) return FailUsage(timeout_ms.status());
  auto retries = flags.GetCheckedInt("retries", 1);
  if (!retries.ok()) return FailUsage(retries.status());
  if (retries.value() < 1) {
    return FailUsage(
        util::Status::InvalidArgument("--retries must be >= 1"));
  }
  server::ClientOptions client_options;
  client_options.io_timeout_ms = static_cast<int>(timeout_ms.value());
  server::RetryPolicy retry_policy;
  retry_policy.max_attempts = static_cast<int>(retries.value());
  auto response = server::CallWithRetry(
      flags.GetString("host", "127.0.0.1"), static_cast<int>(port.value()),
      request, client_options, retry_policy);
  if (!response.ok()) return Fail(response.status());
  if (!response.value().status.ok()) return Fail(response.value().status);
  for (const server::GraphSummary& g : response.value().graphs) {
    std::printf("graph nodes=%u edges=%llu checksum=%llu%s%s\n", g.nodes,
                static_cast<unsigned long long>(g.edges),
                static_cast<unsigned long long>(g.checksum),
                g.path.empty() ? "" : " path=", g.path.c_str());
  }
  for (const auto& [key, value] : response.value().stats) {
    std::printf("%-24s %.6g\n", key.c_str(), value);
  }
  if (request.op == server::RequestOp::kShutdown ||
      (response.value().graphs.empty() && response.value().stats.empty())) {
    std::printf("ok\n");
  }
  return 0;
}

int CmdConvert(const util::Flags& flags) {
  // Positional form `agmdp convert <text> <bin>` and the --in/--out flag
  // form are equivalent; mixing fills whichever side is missing.
  std::string in = flags.GetString("in", "");
  std::string out = flags.GetString("out", "");
  size_t next_positional = 0;
  if (in.empty() && next_positional < flags.positional().size()) {
    in = flags.positional()[next_positional++];
  }
  if (out.empty() && next_positional < flags.positional().size()) {
    out = flags.positional()[next_positional++];
  }
  if (in.empty() || out.empty()) {
    return FailUsage(util::Status::InvalidArgument(
        "usage: agmdp convert <text-prefix-or-edges> <out.agmbin>"));
  }
  graph::ConvertOptions options;
  auto page_size = flags.GetCheckedInt("page-size", options.binary.page_size);
  if (!page_size.ok()) return FailUsage(page_size.status());
  if (page_size.value() < 4096 ||
      page_size.value() > std::numeric_limits<uint32_t>::max()) {
    return FailUsage(util::Status::InvalidArgument(
        "--page-size out of range: " + std::to_string(page_size.value())));
  }
  options.binary.page_size = static_cast<uint32_t>(page_size.value());
  auto info = graph::ConvertTextToBinary(in, out, options);
  if (!info.ok()) {
    // A missing input named on the command line is a usage error (exit
    // 2); a malformed input file is a runtime failure (exit 1).
    return info.status().code() == util::StatusCode::kNotFound
               ? FailUsage(info.status())
               : Fail(info.status());
  }
  std::printf(
      "converted %s -> %s (nodes=%llu edges=%llu attrs=%u, %llu bytes in "
      "%llu pages of %u)\n",
      in.c_str(), out.c_str(),
      static_cast<unsigned long long>(info.value().num_nodes),
      static_cast<unsigned long long>(info.value().num_edges),
      info.value().num_attributes,
      static_cast<unsigned long long>(info.value().file_bytes),
      static_cast<unsigned long long>(info.value().num_data_pages),
      info.value().page_size);
  return 0;
}

int CmdInfo(const util::Flags& flags) {
  std::string path = flags.GetString("in", "");
  if (path.empty() && !flags.positional().empty()) {
    path = flags.positional().front();
  }
  if (path.empty()) {
    return FailUsage(
        util::Status::InvalidArgument("usage: agmdp info <file.agmbin>"));
  }
  auto info = graph::ReadBinaryGraphInfo(path);
  if (!info.ok()) {
    return info.status().code() == util::StatusCode::kIoError
               ? FailUsage(info.status())
               : Fail(info.status());
  }
  const graph::BinaryGraphInfo& i = info.value();
  std::printf("container:  %s\n", path.c_str());
  std::printf("version:    %u\n", i.format_version);
  std::printf("page size:  %u\n", i.page_size);
  std::printf("data pages: %llu\n",
              static_cast<unsigned long long>(i.num_data_pages));
  std::printf("file bytes: %llu\n",
              static_cast<unsigned long long>(i.file_bytes));
  std::printf("nodes:      %llu\n",
              static_cast<unsigned long long>(i.num_nodes));
  std::printf("edges:      %llu\n",
              static_cast<unsigned long long>(i.num_edges));
  std::printf("attr width: %u\n", i.num_attributes);
  std::printf("checksums:  %s\n", i.checksums_ok ? "OK" : "FAILED");
  if (!i.checksums_ok) {
    std::fprintf(stderr, "error: %s\n", i.checksum_error.c_str());
    return 1;
  }
  return 0;
}

int CmdExport(const util::Flags& flags) {
  auto input = LoadInput(flags, "in");
  if (!input.ok()) return Fail(input.status());
  const std::string out = flags.GetString("out", "graph.graphml");
  if (auto st = graph::WriteGraphMl(input.value(), out); !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Touching the injector arms any points named in $AGMDP_FAULTS; without
  // this the disarmed fast path would never read the spec (crash smokes
  // arm "registry.*.fsync=1:exit" against a live daemon this way).
  agmdp::util::FaultInjector::Global();
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  util::Flags flags = util::Flags::Parse(argc - 1, argv + 1);
  if (command == "help" || command == "--help" || command == "-h") {
    return CmdHelp();
  }
  if (command == "generate") return CmdGenerate(flags);
  if (command == "fit") return CmdFit(flags);
  if (command == "sample") return CmdSample(flags);
  if (command == "synthesize") return CmdSynthesize(flags);
  if (command == "models") return CmdModels(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "sweep") return CmdSweep(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "client") return CmdClient(flags);
  if (command == "registry") return CmdRegistry(flags);
  if (command == "convert") return CmdConvert(flags);
  if (command == "info") return CmdInfo(flags);
  if (command == "export") return CmdExport(flags);
  return UnknownCommand(command);
}

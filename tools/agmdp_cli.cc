// agmdp — command-line front end for the library.
//
// All private-release subcommands route through pipeline::RunPrivateRelease
// and friends, so every epsilon spend is recorded in one PrivacyAccountant
// ledger (printed after each fit).
//
// Subcommands:
//   generate   --dataset=lastfm --scale=1.0 --seed=7 --out=PREFIX
//              Generate a synthetic stand-in dataset (writes PREFIX.edges /
//              PREFIX.attrs).
//   fit        --in=PREFIX --epsilon=0.69 [--model=NAME]
//              [--artifact-out=FILE] [--params-out=FILE]
//              Learn the differentially private AGM parameters and write
//              them as a release artifact (JSON: parameters + budget
//              ledger + config fingerprint; see release_artifact.h). This
//              is the only step that touches the sensitive data.
//   sample     --artifact=FILE --out=PREFIX [--samples=N] [--seed=1]
//              [--serve-threads=T] [--refine_iters=R] [--cold]
//              Serve synthetic graphs from a stored artifact through a
//              ReleaseEngine (pure post-processing; repeatable at no extra
//              privacy cost). N > 1 writes PREFIX_0 .. PREFIX_<N-1> via
//              the engine's batched SampleMany, parallelized across
//              samples by --serve-threads; with N = 1, --threads still
//              sets the intra-sample sampler workers. --cold disables the
//              calibrated warm start (full per-sample acceptance loop).
//              --params=FILE consumes a legacy raw-params file instead.
//   synthesize --in=PREFIX --epsilon=0.69 --out=PREFIX2 [--model=NAME]
//              [--threads=T]
//              fit + sample in one step, with stage timings.
//   models     List the registered structural models.
//   stats      --in=PREFIX [--analytics-threads=T]
//              Structural summary, assortativity and path statistics,
//              computed on an immutable CsrGraph snapshot.
//   evaluate   --in=PREFIX --synthetic=PREFIX2 [--analytics-threads=T]
//              The full utility metric suite (src/eval) between two graphs
//              (one CsrGraph snapshot per side, reused by every metric).
//   sweep      --datasets=lastfm,petster --models=fcl,tricycle
//              --eps=0.2,0.69,1.1 [--repeats=3] [--scale=0.1] [--seed=1]
//              [--threads=1] [--sampler-threads=1] [--accept_iters=2]
//              [--analytics-threads=1] [--reuse-fit]
//              [--out=BENCH_sweep.json] [--no-timing]
//              Run the multi-scenario sweep engine over the dataset × model
//              × epsilon grid (repeats fully accounted releases per cell,
//              deterministic per-cell RNG substreams, cells parallelized
//              over --threads workers) and write per-cell mean/stddev of
//              every utility metric as BENCH_sweep.json. With a fixed seed
//              the JSON is byte-identical across runs (timing fields aside;
//              --no-timing omits them entirely).
//   export     --in=PREFIX --out=FILE.graphml
//              GraphML export for external tools.
//   help       List every subcommand with a one-line example.
//
// --model accepts any registry name (see `agmdp models`); --threads sets
// the sampler worker count (0 = hardware concurrency) — output is
// identical for a given seed at any thread count. An unknown subcommand
// exits non-zero with the closest-matching suggestion.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/agm/params_io.h"
#include "src/datasets/datasets.h"
#include "src/eval/sweep_engine.h"
#include "src/eval/utility_report.h"
#include "src/graph/csr.h"
#include "src/graph/graph_io.h"
#include "src/graph/paths.h"
#include "src/pipeline/release_engine.h"
#include "src/pipeline/release_pipeline.h"
#include "src/stats/joint_degree.h"
#include "src/stats/summary.h"
#include "src/util/flags.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace {

using namespace agmdp;

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// (name, one-line example, summary) for help and suggestions.
struct SubcommandDoc {
  const char* name;
  const char* example;
  const char* summary;
};

const std::vector<SubcommandDoc>& Subcommands() {
  static const std::vector<SubcommandDoc> docs = {
      {"generate", "agmdp generate --dataset=lastfm --scale=0.1 --out=data",
       "generate a synthetic stand-in dataset"},
      {"fit",
       "agmdp fit --in=data --epsilon=0.69 --model=fcl "
       "--artifact-out=release.artifact.json",
       "learn DP parameters, write a release artifact (the only step that "
       "reads the data)"},
      {"sample",
       "agmdp sample --artifact=release.artifact.json --samples=4 "
       "--out=synthetic",
       "serve synthetic graphs from an artifact (free post-processing)"},
      {"synthesize", "agmdp synthesize --in=data --epsilon=0.69 --out=syn",
       "fit + sample in one step, with stage timings"},
      {"models", "agmdp models", "list the registered structural models"},
      {"stats", "agmdp stats --in=data",
       "structural summary and assortativity/path statistics"},
      {"evaluate", "agmdp evaluate --in=data --synthetic=syn",
       "the full utility metric suite between two graphs"},
      {"sweep",
       "agmdp sweep --datasets=lastfm --models=fcl,tricycle --eps=0.3,0.69 "
       "--repeats=3 [--reuse-fit]",
       "dataset x model x epsilon utility grid -> BENCH_sweep.json"},
      {"export", "agmdp export --in=data --out=graph.graphml",
       "GraphML export for external tools"},
      {"help", "agmdp help", "this overview"},
  };
  return docs;
}

int CmdHelp() {
  std::printf("usage: agmdp <subcommand> [--flags]\n\n");
  for (const SubcommandDoc& doc : Subcommands()) {
    std::printf("  %-10s %s\n  %-10s   %s\n", doc.name, doc.summary, "",
                doc.example);
  }
  std::printf(
      "\nThe full flag reference lives in the header of "
      "tools/agmdp_cli.cc.\n");
  return 0;
}

size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

int UnknownCommand(const std::string& command) {
  const SubcommandDoc* closest = nullptr;
  size_t best = ~size_t{0};
  for (const SubcommandDoc& doc : Subcommands()) {
    const size_t distance = EditDistance(command, doc.name);
    if (distance < best) {
      best = distance;
      closest = &doc;
    }
  }
  std::fprintf(stderr, "error: unknown subcommand '%s'", command.c_str());
  if (closest != nullptr && best <= 3) {
    std::fprintf(stderr, " — did you mean '%s'?", closest->name);
  }
  std::fprintf(stderr, "\nrun 'agmdp help' for the subcommand list\n");
  return 2;
}

int Usage() {
  std::fprintf(stderr, "usage: agmdp <subcommand> [--flags]\n");
  for (const SubcommandDoc& doc : Subcommands()) {
    std::fprintf(stderr, "  %s\n", doc.example);
  }
  return 2;
}

pipeline::PipelineConfig ConfigFromFlags(const util::Flags& flags) {
  pipeline::PipelineConfig config;
  config.epsilon = flags.GetDouble("epsilon", std::log(2.0));
  config.model = flags.GetString("model", "tricycle");
  config.sample.threads = static_cast<int>(flags.GetInt("threads", 1));
  config.sample.acceptance_iterations =
      static_cast<int>(flags.GetInt("accept_iters", 3));
  config.truncation_k = static_cast<uint32_t>(flags.GetInt("truncation_k", 0));
  return config;
}

void PrintLedger(const pipeline::BudgetLedger& ledger, double budget) {
  double spent = 0.0;
  for (const auto& [label, eps] : ledger) {
    std::printf("  %-16s eps = %.4f\n", label.c_str(), eps);
    spent += eps;
  }
  std::printf("  %-16s eps = %.4f / %.4f\n", "total", spent, budget);
}

void PrintStageTimings(const std::vector<agm::StageSeconds>& stages) {
  for (const auto& stage : stages) {
    std::printf("  %-16s %8.3f ms\n", stage.stage.c_str(),
                1e3 * stage.seconds);
  }
}

util::Result<graph::AttributedGraph> LoadInput(const util::Flags& flags,
                                               const std::string& flag_name) {
  const std::string prefix = flags.GetString(flag_name, "");
  if (prefix.empty()) {
    return util::Status::InvalidArgument("missing --" + flag_name + "=PREFIX");
  }
  return graph::ReadAttributedGraph(prefix);
}

int CmdGenerate(const util::Flags& flags) {
  const auto id =
      datasets::DatasetByName(flags.GetString("dataset", "lastfm"));
  auto g = datasets::GenerateDataset(id, flags.GetDouble("scale", 1.0),
                                     flags.GetInt("seed", 7));
  if (!g.ok()) return Fail(g.status());
  const std::string out = flags.GetString("out", "dataset");
  if (auto st = graph::WriteAttributedGraph(g.value(), out); !st.ok()) {
    return Fail(st);
  }
  std::printf("%s\n",
              stats::FormatSummary(
                  out, stats::Summarize(graph::CsrGraph::FromGraph(
                           g.value().structure())))
                  .c_str());
  return 0;
}

int CmdFit(const util::Flags& flags) {
  auto input = LoadInput(flags, "in");
  if (!input.ok()) return Fail(input.status());
  const pipeline::PipelineConfig config = ConfigFromFlags(flags);
  util::Rng rng(flags.GetInt("seed", 1));

  auto artifact = pipeline::FitReleaseArtifact(input.value(), config, rng);
  if (!artifact.ok()) return Fail(artifact.status());
  // A purely legacy invocation (--params-out given, no --artifact-out)
  // writes only the raw params — no surprise release.artifact.json
  // clobbered in the working directory. Everyone else gets the artifact,
  // at --artifact-out or the default that `agmdp sample` reads flaglessly.
  const bool legacy_only =
      flags.Has("params-out") && !flags.Has("artifact-out");
  if (!legacy_only) {
    const std::string out =
        flags.GetString("artifact-out", "release.artifact.json");
    if (auto st = pipeline::WriteReleaseArtifact(artifact.value(), out);
        !st.ok()) {
      return Fail(st);
    }
    std::printf("fitted eps=%.4f release artifact (model=%s, "
                "fingerprint=%llu) -> %s\n",
                config.epsilon, config.model.c_str(),
                static_cast<unsigned long long>(
                    artifact.value().config_fingerprint),
                out.c_str());
  }
  if (flags.Has("params-out")) {
    // Legacy raw-params sidecar for tools that predate artifacts.
    const std::string params_out = flags.GetString("params-out", "");
    if (auto st =
            agm::WriteAgmParams(artifact.value().params, params_out);
        !st.ok()) {
      return Fail(st);
    }
    std::printf("fitted eps=%.4f params (model=%s) -> %s\n", config.epsilon,
                config.model.c_str(), params_out.c_str());
  }
  PrintLedger(artifact.value().ledger, artifact.value().epsilon_budget);
  return 0;
}

int CmdSample(const util::Flags& flags) {
  const pipeline::PipelineConfig config = ConfigFromFlags(flags);
  const int samples = static_cast<int>(flags.GetInt("samples", 1));
  if (samples < 1) {
    return Fail(util::Status::InvalidArgument("--samples must be >= 1"));
  }

  pipeline::ReleaseArtifact artifact;
  if (flags.Has("params")) {
    // Legacy path: raw params + the model named on the command line.
    auto params = agm::ReadAgmParams(flags.GetString("params", "agm.params"));
    if (!params.ok()) return Fail(params.status());
    artifact = pipeline::MakeReleaseArtifact(params.value(), config);
  } else {
    // Default matches fit's --artifact-out, so the flagless
    // `agmdp fit` -> `agmdp sample` round trip works out of the box.
    auto loaded = pipeline::ReadReleaseArtifact(
        flags.GetString("artifact", "release.artifact.json"));
    if (!loaded.ok()) return Fail(loaded.status());
    artifact = std::move(loaded).value();
    if (flags.Has("model")) artifact.model = config.model;
  }
  if (flags.Has("accept_iters")) {
    artifact.acceptance_iterations = config.sample.acceptance_iterations;
  }

  pipeline::EngineOptions options;
  options.threads =
      static_cast<int>(flags.GetInt("serve-threads", config.sample.threads));
  options.calibrate = !flags.GetBool("cold", false);
  options.default_refine_iterations = static_cast<int>(
      flags.GetInt("refine_iters", flags.GetInt("refine-iters", 0)));
  options.sample = config.sample;
  auto engine = pipeline::ReleaseEngine::Create(std::move(artifact), options);
  if (!engine.ok()) return Fail(engine.status());

  pipeline::SampleRequest base;
  base.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  util::Result<std::vector<graph::AttributedGraph>> graphs =
      std::vector<graph::AttributedGraph>{};
  if (samples == 1) {
    // A single request keeps --threads as *intra-sample* sampler workers
    // (the pre-serving behavior, 0 = hardware concurrency); batches
    // parallelize across samples instead. The bits are identical either
    // way.
    pipeline::SampleRequest request = base;
    request.threads = util::ResolveThreadCount(config.sample.threads);
    auto g = engine.value()->Sample(request);
    if (!g.ok()) return Fail(g.status());
    graphs.value().push_back(std::move(g).value());
  } else {
    graphs = engine.value()->SampleMany(samples, base);
    if (!graphs.ok()) return Fail(graphs.status());
  }

  const std::string out = flags.GetString("out", "synthetic");
  for (int i = 0; i < samples; ++i) {
    const std::string prefix =
        samples == 1 ? out : out + "_" + std::to_string(i);
    const graph::AttributedGraph& g = graphs.value()[static_cast<size_t>(i)];
    if (auto st = graph::WriteAttributedGraph(g, prefix); !st.ok()) {
      return Fail(st);
    }
    std::printf("%s\n",
                stats::FormatSummary(
                    prefix,
                    stats::Summarize(graph::CsrGraph::FromGraph(g.structure())))
                    .c_str());
  }
  return 0;
}

int CmdSynthesize(const util::Flags& flags) {
  auto input = LoadInput(flags, "in");
  if (!input.ok()) return Fail(input.status());
  const pipeline::PipelineConfig config = ConfigFromFlags(flags);
  util::Rng rng(flags.GetInt("seed", 1));
  auto result = pipeline::RunPrivateRelease(input.value(), config, rng);
  if (!result.ok()) return Fail(result.status());
  const std::string out = flags.GetString("out", "synthetic");
  if (auto st = graph::WriteAttributedGraph(result.value().graph, out);
      !st.ok()) {
    return Fail(st);
  }
  std::printf("%s\n",
              stats::FormatSummary(
                  out, stats::Summarize(graph::CsrGraph::FromGraph(
                           result.value().graph.structure())))
                  .c_str());
  std::printf("budget ledger:\n");
  PrintLedger(result.value().ledger, result.value().epsilon_budget);
  std::printf("stage timings (total %.3f s):\n", result.value().total_seconds);
  PrintStageTimings(result.value().stage_seconds);
  return 0;
}

int CmdModels(const util::Flags&) {
  for (const std::string& name : pipeline::StructuralModelNames()) {
    const pipeline::StructuralModelSpec* spec =
        pipeline::FindStructuralModel(name);
    std::printf("%-12s %s%s\n", name.c_str(), spec->description.c_str(),
                spec->needs_triangles ? " [learns triangle target]" : "");
  }
  return 0;
}

int CmdStats(const util::Flags& flags) {
  auto input = LoadInput(flags, "in");
  if (!input.ok()) return Fail(input.status());
  const graph::AttributedGraph& g = input.value();
  const int analytics_threads =
      static_cast<int>(flags.GetInt("analytics-threads", 1));
  // One immutable snapshot serves the summary and the structural profile.
  const graph::AttributedCsrGraph snapshot =
      graph::AttributedCsrGraph::FromGraph(g);
  std::printf("%s\n",
              stats::FormatSummary(
                  flags.GetString("in", ""),
                  stats::Summarize(snapshot.structure, analytics_threads))
                  .c_str());
  util::Rng rng(flags.GetInt("seed", 1));
  const eval::StructuralProfile profile = eval::ProfileGraph(
      snapshot, static_cast<uint32_t>(flags.GetInt("bfs_samples", 64)), rng,
      analytics_threads);
  std::printf("degree assortativity:    %+.4f\n",
              profile.degree_assortativity);
  std::printf("attribute assortativity: %+.4f\n",
              profile.attribute_assortativity);
  for (size_t a = 0; a < profile.homophily.size(); ++a) {
    std::printf("homophily attr %zu:        %.4f\n", a, profile.homophily[a]);
  }
  std::printf("avg path length (est):   %.3f\n", profile.avg_path_length);
  std::printf("effective diameter:      %.2f\n", profile.effective_diameter);
  std::printf("diameter lower bound:    %u\n", profile.diameter_lower_bound);
  return 0;
}

int CmdEvaluate(const util::Flags& flags) {
  auto input = LoadInput(flags, "in");
  if (!input.ok()) return Fail(input.status());
  auto synthetic = LoadInput(flags, "synthetic");
  if (!synthetic.ok()) return Fail(synthetic.status());
  const int analytics_threads =
      static_cast<int>(flags.GetInt("analytics-threads", 1));
  // One immutable snapshot per side, reused across every metric.
  const graph::AttributedCsrGraph original =
      graph::AttributedCsrGraph::FromGraph(input.value());
  const graph::AttributedCsrGraph released =
      graph::AttributedCsrGraph::FromGraph(synthetic.value());
  const eval::UtilityReport report =
      eval::EvaluateRelease(eval::ProfileReference(original, analytics_threads),
                            released, analytics_threads);
  std::printf("dK-2 Hellinger    %.4f\n",
              stats::JointDegreeDistance(original.structure,
                                         released.structure,
                                         analytics_threads));
  for (const auto& [name, value] : report.Flatten()) {
    std::printf("%-28s %+.4f\n", name.c_str(), value);
  }
  return 0;
}

int CmdSweep(const util::Flags& flags) {
  eval::SweepSpec spec;
  spec.datasets = flags.GetStringList("datasets", {"lastfm"});
  spec.dataset_scale = flags.GetDouble("scale", 0.1);
  spec.models = flags.GetStringList("models", {"fcl", "tricycle"});
  spec.epsilons =
      flags.GetDoubleList("eps", {0.2, std::log(2.0), std::log(3.0)});
  spec.repeats = static_cast<int>(flags.GetInt("repeats", 3));
  spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  spec.threads = static_cast<int>(flags.GetInt("threads", 1));
  spec.sampler_threads =
      static_cast<int>(flags.GetInt("sampler-threads", 1));
  spec.acceptance_iterations =
      static_cast<int>(flags.GetInt("accept_iters", 2));
  spec.analytics_threads =
      static_cast<int>(flags.GetInt("analytics-threads", 1));
  // Both spellings accepted (the table harness flags use underscores).
  spec.reuse_fit =
      flags.GetBool("reuse-fit", flags.GetBool("reuse_fit", false));

  auto result = eval::RunSweepOnDatasets(spec);
  if (!result.ok()) return Fail(result.status());

  std::printf("# sweep: %zu cells (%zu datasets x %zu models x %zu epsilons)"
              ", %d repeats, %.2fs\n",
              result.value().cells.size(), spec.datasets.size(),
              spec.models.size(), spec.epsilons.size(), spec.repeats,
              result.value().total_seconds);
  int failed_cells = 0;
  for (const eval::SweepCell& cell : result.value().cells) {
    if (!cell.error.empty()) {
      ++failed_cells;
      std::printf("%-10s %-12s eps=%-6.3f FAILED: %s\n", cell.dataset.c_str(),
                  cell.model.c_str(), cell.epsilon, cell.error.c_str());
      continue;
    }
    std::printf("%-10s %-12s eps=%-6.3f KS_S=%.4f H_ThetaF=%.4f n_tri=%.4f "
                "homo=%+.4f\n",
                cell.dataset.c_str(), cell.model.c_str(), cell.epsilon,
                eval::MetricMean(cell.metrics, "degree_ks"),
                eval::MetricMean(cell.metrics, "theta_f_hellinger"),
                eval::MetricMean(cell.metrics, "triangles_re"),
                eval::MetricMean(cell.metrics, "homophily_delta_mean_abs"));
  }

  const std::string out = flags.GetString("out", "BENCH_sweep.json");
  const bool include_timing = !flags.GetBool("no-timing", false);
  const std::string body =
      eval::SweepResultToJson(result.value(), include_timing);
  FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    return Fail(util::Status::IoError("cannot open for writing: " + out));
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  if (failed_cells > 0) {
    std::fprintf(stderr, "error: %d sweep cell(s) failed (see output and %s)\n",
                 failed_cells, out.c_str());
    return 1;
  }
  return 0;
}

int CmdExport(const util::Flags& flags) {
  auto input = LoadInput(flags, "in");
  if (!input.ok()) return Fail(input.status());
  const std::string out = flags.GetString("out", "graph.graphml");
  if (auto st = graph::WriteGraphMl(input.value(), out); !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  util::Flags flags = util::Flags::Parse(argc - 1, argv + 1);
  if (command == "help" || command == "--help" || command == "-h") {
    return CmdHelp();
  }
  if (command == "generate") return CmdGenerate(flags);
  if (command == "fit") return CmdFit(flags);
  if (command == "sample") return CmdSample(flags);
  if (command == "synthesize") return CmdSynthesize(flags);
  if (command == "models") return CmdModels(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "sweep") return CmdSweep(flags);
  if (command == "export") return CmdExport(flags);
  return UnknownCommand(command);
}

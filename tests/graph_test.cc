#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "src/graph/attribute_encoding.h"
#include "src/graph/attributed_graph.h"
#include "src/graph/graph.h"
#include "src/graph/graph_io.h"

namespace agmdp::graph {
namespace {

// ------------------------------------------------------------------ Graph --

TEST(GraphTest, StartsEmpty) {
  Graph g(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.Degree(v), 0u);
}

TEST(GraphTest, AddEdgeIsUndirected) {
  Graph g(4);
  EXPECT_TRUE(g.AddEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_EQ(g.Degree(2), 1u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphTest, RejectsSelfLoopsDuplicatesAndOutOfRange) {
  Graph g(3);
  EXPECT_FALSE(g.AddEdge(1, 1));
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(1, 0));  // duplicate, reversed
  EXPECT_FALSE(g.AddEdge(0, 3));  // out of range
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphTest, RemoveEdge) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_TRUE(g.RemoveEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.RemoveEdge(0, 1));  // already gone
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Degree(1), 1u);
}

TEST(GraphTest, CommonNeighborCountsTrianglesAtEdge) {
  // 0-1 share neighbors 2 and 3; node 4 dangles.
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  g.AddEdge(0, 3);
  g.AddEdge(1, 3);
  g.AddEdge(0, 4);
  EXPECT_EQ(g.CommonNeighborCount(0, 1), 2u);
  EXPECT_EQ(g.CommonNeighborCount(2, 3), 2u);  // non-adjacent pair
  EXPECT_EQ(g.CommonNeighborCount(4, 1), 1u);  // via node 0
}

TEST(GraphTest, CanonicalEdgesSortedAndComplete) {
  Graph g(5);
  g.AddEdge(3, 1);
  g.AddEdge(4, 0);
  g.AddEdge(2, 1);
  std::vector<Edge> edges = g.CanonicalEdges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_TRUE(edges[0] == Edge(0, 4));
  EXPECT_TRUE(edges[1] == Edge(1, 2));
  EXPECT_TRUE(edges[2] == Edge(1, 3));
}

TEST(GraphTest, MaxDegree) {
  Graph g(5);
  EXPECT_EQ(g.MaxDegree(), 0u);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  EXPECT_EQ(g.MaxDegree(), 3u);
}

TEST(GraphTest, ClearEdgesKeepsNodes) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  g.ClearEdges();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.AddEdge(0, 1));  // usable after clear
}

TEST(GraphTest, ForEachEdgeVisitsEachOnce) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(4, 5);
  std::set<std::pair<NodeId, NodeId>> seen;
  g.ForEachEdge([&](NodeId u, NodeId v) {
    EXPECT_LT(u, v);
    EXPECT_TRUE(seen.emplace(u, v).second) << "duplicate visit";
  });
  EXPECT_EQ(seen.size(), 3u);
}

TEST(GraphTest, PackEdgeSymmetric) {
  EXPECT_EQ(PackEdge(3, 9), PackEdge(9, 3));
  EXPECT_NE(PackEdge(3, 9), PackEdge(3, 8));
}

// ------------------------------------------------------ AttributeEncoding --

TEST(AttributeEncodingTest, ConfigCounts) {
  EXPECT_EQ(NumNodeConfigs(0), 1u);
  EXPECT_EQ(NumNodeConfigs(1), 2u);
  EXPECT_EQ(NumNodeConfigs(2), 4u);
  EXPECT_EQ(NumEdgeConfigs(1), 3u);   // C(3,2)
  EXPECT_EQ(NumEdgeConfigs(2), 10u);  // C(5,2) — the paper's w=2 case
  EXPECT_EQ(NumEdgeConfigs(3), 36u);
}

TEST(AttributeEncodingTest, EncodeIsSymmetric) {
  for (int w = 1; w <= 3; ++w) {
    const uint32_t k = NumNodeConfigs(w);
    for (AttrConfig a = 0; a < k; ++a) {
      for (AttrConfig b = 0; b < k; ++b) {
        EXPECT_EQ(EncodeEdgeConfig(a, b, w), EncodeEdgeConfig(b, a, w));
      }
    }
  }
}

TEST(AttributeEncodingTest, EncodeIsBijectiveOnUnorderedPairs) {
  for (int w = 1; w <= 4; ++w) {
    const uint32_t k = NumNodeConfigs(w);
    std::set<uint32_t> indices;
    for (AttrConfig a = 0; a < k; ++a) {
      for (AttrConfig b = a; b < k; ++b) {
        uint32_t y = EncodeEdgeConfig(a, b, w);
        EXPECT_LT(y, NumEdgeConfigs(w));
        EXPECT_TRUE(indices.insert(y).second) << "collision at w=" << w;
      }
    }
    EXPECT_EQ(indices.size(), NumEdgeConfigs(w));
  }
}

TEST(AttributeEncodingTest, DecodeInvertsEncode) {
  for (int w = 1; w <= 3; ++w) {
    const uint32_t k = NumNodeConfigs(w);
    for (AttrConfig a = 0; a < k; ++a) {
      for (AttrConfig b = a; b < k; ++b) {
        auto [da, db] = DecodeEdgeConfig(EncodeEdgeConfig(a, b, w), w);
        EXPECT_EQ(da, a);
        EXPECT_EQ(db, b);
      }
    }
  }
}

// ------------------------------------------------------- AttributedGraph --

TEST(AttributedGraphTest, AttributesDefaultZero) {
  AttributedGraph g(4, 2);
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(g.attribute(v), 0u);
  EXPECT_EQ(g.num_attributes(), 2);
}

TEST(AttributedGraphTest, SetAttributeAndBulkSet) {
  AttributedGraph g(3, 2);
  g.set_attribute(1, 3);
  EXPECT_EQ(g.attribute(1), 3u);
  EXPECT_TRUE(g.SetAttributes({0, 1, 2}).ok());
  EXPECT_EQ(g.attribute(2), 2u);
}

TEST(AttributedGraphTest, SetAttributesValidates) {
  AttributedGraph g(3, 1);
  EXPECT_FALSE(g.SetAttributes({0, 1}).ok());        // wrong size
  EXPECT_FALSE(g.SetAttributes({0, 1, 2}).ok());     // 2 out of range for w=1
  EXPECT_TRUE(g.SetAttributes({0, 1, 1}).ok());
}

TEST(AttributedGraphTest, WrapsExistingStructure) {
  Graph structure(3);
  structure.AddEdge(0, 1);
  AttributedGraph g(std::move(structure), 2);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.structure().HasEdge(0, 1));
}

// ---------------------------------------------------------------- GraphIo --

class GraphIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }
};

TEST_F(GraphIoTest, EdgeListRoundTrip) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(2, 5);
  g.AddEdge(3, 4);
  const std::string path = TempPath("roundtrip.edges");
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  auto back = ReadEdgeList(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_nodes(), 6u);
  EXPECT_EQ(back.value().num_edges(), 3u);
  EXPECT_TRUE(back.value().HasEdge(2, 5));
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, ReadRejectsMissingFile) {
  EXPECT_FALSE(ReadEdgeList("/nonexistent/path.edges").ok());
}

TEST_F(GraphIoTest, ReadRejectsMalformedEdges) {
  const std::string path = TempPath("bad.edges");
  FILE* f = fopen(path.c_str(), "w");
  fputs("n 3\n0 7\n", f);  // node 7 out of range
  fclose(f);
  EXPECT_FALSE(ReadEdgeList(path).ok());
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, AttributedRoundTrip) {
  AttributedGraph g(4, 2);
  g.structure().AddEdge(0, 1);
  g.structure().AddEdge(1, 2);
  ASSERT_TRUE(g.SetAttributes({3, 0, 1, 2}).ok());
  const std::string prefix = TempPath("attr_roundtrip");
  ASSERT_TRUE(WriteAttributedGraph(g, prefix).ok());
  auto back = ReadAttributedGraph(prefix);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_attributes(), 2);
  EXPECT_EQ(back.value().attribute(0), 3u);
  EXPECT_EQ(back.value().attribute(3), 2u);
  EXPECT_TRUE(back.value().structure().HasEdge(1, 2));
  std::remove((prefix + ".edges").c_str());
  std::remove((prefix + ".attrs").c_str());
}

}  // namespace
}  // namespace agmdp::graph

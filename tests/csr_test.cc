// CsrGraph snapshot layer: FromGraph round-trip equivalence against the
// mutable Graph, edge cases (empty / star / complete), and the determinism
// contract of the parallel analytics kernels — every metric computed via
// the snapshot must be bitwise-identical to the legacy adjacency-list path,
// and identical across 1/2/4 analytics threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/agm/theta_f.h"
#include "src/eval/utility_report.h"
#include "src/graph/attributed_graph.h"
#include "src/graph/clustering.h"
#include "src/graph/csr.h"
#include "src/graph/degree.h"
#include "src/graph/graph.h"
#include "src/graph/paths.h"
#include "src/graph/triangle_count.h"
#include "src/stats/assortativity.h"
#include "src/stats/joint_degree.h"
#include "src/stats/metrics.h"
#include "src/util/rng.h"

namespace agmdp::graph {
namespace {

Graph RandomGraph(NodeId n, double p, uint64_t seed) {
  util::Rng rng(seed);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.Bernoulli(p)) g.AddEdge(u, v);
    }
  }
  return g;
}

AttributedGraph RandomAttributed(NodeId n, double p, int w, uint64_t seed) {
  AttributedGraph g(RandomGraph(n, p, seed), w);
  util::Rng rng(seed + 1);
  for (NodeId v = 0; v < n; ++v) {
    g.set_attribute(v, static_cast<AttrConfig>(rng.UniformIndex(1u << w)));
  }
  return g;
}

std::vector<NodeId> SortedNeighbors(const Graph& g, NodeId v) {
  std::vector<NodeId> out = g.Neighbors(v);
  std::sort(out.begin(), out.end());
  return out;
}

// --------------------------------------------------------- structure --

TEST(CsrGraphTest, EmptyGraph) {
  const CsrGraph csr = CsrGraph::FromGraph(Graph());
  EXPECT_EQ(csr.num_nodes(), 0u);
  EXPECT_EQ(csr.num_edges(), 0u);
  EXPECT_EQ(csr.MaxDegree(), 0u);
  EXPECT_EQ(CountTriangles(csr), 0u);
  EXPECT_EQ(CountWedges(csr), 0u);
  EXPECT_TRUE(PerNodeTriangles(csr).empty());
  EXPECT_TRUE(LocalClusteringCoefficients(csr).empty());
  EXPECT_EQ(AverageLocalClustering(csr), 0.0);
}

TEST(CsrGraphTest, EdgelessGraph) {
  const CsrGraph csr = CsrGraph::FromGraph(Graph(7));
  EXPECT_EQ(csr.num_nodes(), 7u);
  EXPECT_EQ(csr.num_edges(), 0u);
  for (NodeId v = 0; v < 7; ++v) {
    EXPECT_EQ(csr.Degree(v), 0u);
    EXPECT_TRUE(csr.Neighbors(v).empty());
  }
  EXPECT_FALSE(csr.HasEdge(0, 1));
}

TEST(CsrGraphTest, StarGraph) {
  Graph g(6);  // center 0, leaves 1..5
  for (NodeId v = 1; v < 6; ++v) g.AddEdge(0, v);
  const CsrGraph csr = CsrGraph::FromGraph(g);
  EXPECT_EQ(csr.Degree(0), 5u);
  EXPECT_EQ(csr.MaxDegree(), 5u);
  for (NodeId v = 1; v < 6; ++v) {
    EXPECT_EQ(csr.Degree(v), 1u);
    EXPECT_TRUE(csr.HasEdge(0, v));
    EXPECT_TRUE(csr.HasEdge(v, 0));
  }
  EXPECT_FALSE(csr.HasEdge(1, 2));
  EXPECT_EQ(CountTriangles(csr), 0u);
  EXPECT_EQ(CountWedges(csr), 10u);  // C(5, 2) at the center
  EXPECT_EQ(csr.CommonNeighborCount(1, 2), 1u);  // the center
  EXPECT_EQ(csr.CommonNeighborCount(0, 1), 0u);
}

TEST(CsrGraphTest, CompleteGraph) {
  const NodeId n = 6;
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.AddEdge(u, v);
  }
  const CsrGraph csr = CsrGraph::FromGraph(g);
  EXPECT_EQ(csr.num_edges(), 15u);
  EXPECT_EQ(CountTriangles(csr), 20u);  // C(6, 3)
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(csr.Degree(u), n - 1);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(csr.HasEdge(u, v), u != v);
    }
  }
  const std::vector<double> cc = LocalClusteringCoefficients(csr);
  for (double c : cc) EXPECT_EQ(c, 1.0);
}

TEST(CsrGraphTest, RoundTripMatchesGraph) {
  const Graph g = RandomGraph(40, 0.15, 11);
  const CsrGraph csr = CsrGraph::FromGraph(g);
  ASSERT_EQ(csr.num_nodes(), g.num_nodes());
  EXPECT_EQ(csr.num_edges(), g.num_edges());
  EXPECT_EQ(csr.MaxDegree(), g.MaxDegree());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(csr.Degree(v), g.Degree(v));
    const std::vector<NodeId> expected = SortedNeighbors(g, v);
    const NeighborRange range = csr.Neighbors(v);
    ASSERT_EQ(range.size(), expected.size());
    EXPECT_TRUE(std::equal(range.begin(), range.end(), expected.begin()));
    EXPECT_TRUE(std::is_sorted(range.begin(), range.end()));
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(csr.HasEdge(u, v), g.HasEdge(u, v)) << u << "," << v;
      if (u != v) {
        EXPECT_EQ(csr.CommonNeighborCount(u, v), g.CommonNeighborCount(u, v));
      }
    }
  }
  EXPECT_EQ(DegreeSequence(csr), DegreeSequence(g));
  EXPECT_EQ(SortedDegreeSequence(csr), SortedDegreeSequence(g));
  EXPECT_EQ(DegreeHistogram(csr), DegreeHistogram(g));
  EXPECT_EQ(AverageDegree(csr), AverageDegree(g));
}

TEST(CsrGraphTest, ForEachEdgeIsCanonicalOrder) {
  const Graph g = RandomGraph(30, 0.2, 12);
  const CsrGraph csr = CsrGraph::FromGraph(g);
  std::vector<Edge> seen;
  csr.ForEachEdge([&](NodeId u, NodeId v) { seen.emplace_back(u, v); });
  EXPECT_EQ(seen, g.CanonicalEdges());
}

// ----------------------------------------------------------- kernels --

TEST(CsrKernelsTest, TriangleKernelsMatchLegacyAtEveryThreadCount) {
  const Graph g = RandomGraph(60, 0.12, 13);
  const CsrGraph csr = CsrGraph::FromGraph(g);
  const uint64_t brute = CountTrianglesBrute(g);
  EXPECT_EQ(CountTriangles(g), brute);
  const std::vector<uint64_t> per_node = PerNodeTriangles(g);
  EXPECT_EQ(CountWedges(csr), CountWedges(g));
  for (int threads : {1, 2, 4}) {
    EXPECT_EQ(CountTriangles(csr, threads), brute);
    EXPECT_EQ(PerNodeTriangles(csr, threads), per_node);
  }
}

TEST(CsrKernelsTest, ClusteringBitwiseEqualAtEveryThreadCount) {
  const Graph g = RandomGraph(60, 0.12, 14);
  const CsrGraph csr = CsrGraph::FromGraph(g);
  const std::vector<double> cc = LocalClusteringCoefficients(g);
  for (int threads : {1, 2, 4}) {
    EXPECT_EQ(LocalClusteringCoefficients(csr, threads), cc);
    EXPECT_EQ(AverageLocalClustering(csr, threads),
              AverageLocalClustering(g));
    EXPECT_EQ(GlobalClusteringCoefficient(csr, threads),
              GlobalClusteringCoefficient(g));
    EXPECT_EQ(DegreeWiseClustering(csr, threads), DegreeWiseClustering(g));
  }
}

TEST(CsrKernelsTest, ClusteringStatsBundleMatchesStandaloneKernels) {
  const Graph g = RandomGraph(60, 0.12, 18);
  const CsrGraph csr = CsrGraph::FromGraph(g);
  for (int threads : {1, 2, 4}) {
    const ClusteringStats stats = ComputeClusteringStats(csr, threads);
    EXPECT_EQ(stats.per_node_triangles, PerNodeTriangles(g));
    EXPECT_EQ(stats.local_coefficients, LocalClusteringCoefficients(g));
    EXPECT_EQ(stats.triangles, CountTriangles(g));
    EXPECT_EQ(stats.wedges, CountWedges(g));
    EXPECT_EQ(stats.global_clustering, GlobalClusteringCoefficient(g));
  }
}

TEST(CsrKernelsTest, StatsBitwiseEqualAtEveryThreadCount) {
  const AttributedGraph g = RandomAttributed(70, 0.1, 3, 15);
  const AttributedCsrGraph snapshot = AttributedCsrGraph::FromGraph(g);
  const Graph& s = g.structure();
  const CsrGraph& csr = snapshot.structure;
  for (int threads : {1, 2, 4}) {
    EXPECT_EQ(stats::DegreeAssortativity(csr, threads),
              stats::DegreeAssortativity(s));
    EXPECT_EQ(stats::AttributeAssortativity(snapshot, threads),
              stats::AttributeAssortativity(g));
    EXPECT_EQ(stats::PerAttributeHomophily(snapshot, threads),
              stats::PerAttributeHomophily(g));
    EXPECT_EQ(stats::JointDegreeDistribution(csr, threads),
              stats::JointDegreeDistribution(s));
    EXPECT_EQ(agm::ComputeConnectionCounts(snapshot, threads),
              agm::ComputeConnectionCounts(g));
    EXPECT_EQ(agm::ComputeThetaF(snapshot, threads), agm::ComputeThetaF(g));
  }
  EXPECT_EQ(stats::DegreeDistribution(csr), stats::DegreeDistribution(s));
  EXPECT_EQ(stats::JointDegreeDistance(csr, csr),
            stats::JointDegreeDistance(s, s));
}

TEST(CsrKernelsTest, BfsAndPathStatsMatchLegacy) {
  const Graph g = RandomGraph(50, 0.08, 16);
  const CsrGraph csr = CsrGraph::FromGraph(g);
  for (NodeId s : {NodeId{0}, NodeId{17}, NodeId{49}}) {
    EXPECT_EQ(BfsDistances(csr, s), BfsDistances(g, s));
  }
  util::Rng rng_legacy(99), rng_csr(99);
  const PathStats legacy = EstimatePathStats(g, 16, rng_legacy);
  const PathStats snapshot = EstimatePathStats(csr, 16, rng_csr);
  EXPECT_EQ(snapshot.avg_path_length, legacy.avg_path_length);
  EXPECT_EQ(snapshot.effective_diameter, legacy.effective_diameter);
  EXPECT_EQ(snapshot.diameter_lower_bound, legacy.diameter_lower_bound);
}

// -------------------------------------------------------------- eval --

TEST(CsrEvalTest, EvaluateReleaseBitwiseEqualsLegacyAtEveryThreadCount) {
  // A random "original" and a random "released" graph, with different
  // attribute dimensions to exercise the common-prefix homophily path.
  const AttributedGraph original = RandomAttributed(80, 0.08, 3, 21);
  const AttributedGraph released = RandomAttributed(70, 0.1, 2, 22);

  const eval::ReferenceProfile ref_legacy =
      eval::ProfileReferenceLegacy(original);
  const eval::UtilityReport report_legacy =
      eval::EvaluateReleaseLegacy(ref_legacy, released);
  const auto flat_legacy = report_legacy.Flatten();

  for (int threads : {1, 2, 4}) {
    const eval::ReferenceProfile ref = eval::ProfileReference(original, threads);
    EXPECT_EQ(ref.theta_f, ref_legacy.theta_f);
    EXPECT_EQ(ref.sorted_degrees, ref_legacy.sorted_degrees);
    EXPECT_EQ(ref.degree_distribution, ref_legacy.degree_distribution);
    EXPECT_EQ(ref.local_clustering, ref_legacy.local_clustering);
    EXPECT_EQ(ref.avg_clustering, ref_legacy.avg_clustering);
    EXPECT_EQ(ref.global_clustering, ref_legacy.global_clustering);
    EXPECT_EQ(ref.triangles, ref_legacy.triangles);
    EXPECT_EQ(ref.degree_assortativity, ref_legacy.degree_assortativity);
    EXPECT_EQ(ref.attribute_assortativity, ref_legacy.attribute_assortativity);
    EXPECT_EQ(ref.homophily, ref_legacy.homophily);

    // Both entry points: the AttributedGraph wrapper (one snapshot built
    // internally) and a caller-built snapshot.
    const auto flat_wrapped =
        eval::EvaluateRelease(ref, released, threads).Flatten();
    const auto flat_snapshot =
        eval::EvaluateRelease(ref, graph::AttributedCsrGraph::FromGraph(released),
                              threads)
            .Flatten();
    EXPECT_EQ(flat_wrapped, flat_legacy);
    EXPECT_EQ(flat_snapshot, flat_legacy);
  }
}

TEST(CsrEvalTest, CcdfSeriesMatchLegacy) {
  const Graph g = RandomGraph(60, 0.1, 23);
  const CsrGraph csr = CsrGraph::FromGraph(g);
  EXPECT_EQ(eval::DegreeCcdfSeries(csr, 30), eval::DegreeCcdfSeries(g, 30));
  for (int threads : {1, 2, 4}) {
    EXPECT_EQ(eval::ClusteringCcdfSeries(csr, 30, threads),
              eval::ClusteringCcdfSeries(g, 30));
  }
}

TEST(CsrEvalTest, ProfileGraphMatchesAcrossThreadCounts) {
  const AttributedGraph g = RandomAttributed(60, 0.1, 2, 24);
  util::Rng rng1(7), rng2(7);
  const eval::StructuralProfile p1 = eval::ProfileGraph(g, 16, rng1, 1);
  const eval::StructuralProfile p4 = eval::ProfileGraph(g, 16, rng2, 4);
  EXPECT_EQ(p1.avg_path_length, p4.avg_path_length);
  EXPECT_EQ(p1.degree_assortativity, p4.degree_assortativity);
  EXPECT_EQ(p1.attribute_assortativity, p4.attribute_assortativity);
  EXPECT_EQ(p1.homophily, p4.homophily);
}

}  // namespace
}  // namespace agmdp::graph

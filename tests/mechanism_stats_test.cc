// Statistical tests for the DP mechanisms: with a fixed seed and ~100k
// draws, the empirical moments / selection frequencies must land within
// analytic tolerances.
//
// Tolerances are set at ~5 standard errors of the corresponding estimator,
// so the assertions hold comfortably for the pinned seeds while remaining
// tight enough to catch a mis-calibrated mechanism (e.g. a wrong scale or a
// swapped epsilon/sensitivity). These run under the `statistical` ctest
// label so any tolerance failure is visible in isolation in CI.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/dp/exponential_mechanism.h"
#include "src/dp/geometric_mechanism.h"
#include "src/dp/laplace_mechanism.h"
#include "src/util/rng.h"

namespace agmdp::dp {
namespace {

constexpr int kDraws = 100000;

struct Moments {
  double mean = 0.0;
  double variance = 0.0;  // population variance of the sample
};

template <typename DrawFn>
Moments EmpiricalMoments(int draws, DrawFn&& draw) {
  // Welford, to keep the variance numerically clean over 100k samples.
  Moments m;
  double m2 = 0.0;
  for (int i = 1; i <= draws; ++i) {
    const double x = draw();
    const double delta = x - m.mean;
    m.mean += delta / i;
    m2 += delta * (x - m.mean);
  }
  m.variance = m2 / draws;
  return m;
}

// ------------------------------------------------------------- Laplace --

TEST(MechanismStatsTest, LaplaceMechanismMatchesAnalyticMoments) {
  // Laplace(b) with b = sensitivity / epsilon = 2: mean = value,
  // variance = 2 b^2 = 8.
  const double value = 3.0;
  const double sensitivity = 1.0;
  const double epsilon = 0.5;
  const double b = sensitivity / epsilon;
  util::Rng rng(20260101);
  const Moments m = EmpiricalMoments(kDraws, [&] {
    return LaplaceMechanism(value, sensitivity, epsilon, rng);
  });

  // Standard errors: sd(mean) = sqrt(2 b^2 / N); sd(variance estimate) =
  // sqrt((mu4 - sigma^4) / N) with mu4 = 24 b^4 for Laplace.
  const double mean_se = std::sqrt(2.0 * b * b / kDraws);
  const double var_se = std::sqrt(20.0 * b * b * b * b / kDraws);
  EXPECT_NEAR(m.mean, value, 5.0 * mean_se);
  EXPECT_NEAR(m.variance, 2.0 * b * b, 5.0 * var_se);
}

TEST(MechanismStatsTest, LaplaceScaleTracksEpsilon) {
  // Doubling epsilon must halve the noise scale: compare empirical mean
  // absolute deviations (E|X| = b for Laplace(b)).
  auto mean_abs = [&](double epsilon, uint64_t seed) {
    util::Rng rng(seed);
    double sum = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      sum += std::fabs(LaplaceMechanism(0.0, 1.0, epsilon, rng));
    }
    return sum / kDraws;
  };
  const double b_eps1 = mean_abs(1.0, 11);   // b = 1
  const double b_eps2 = mean_abs(2.0, 12);   // b = 1/2
  EXPECT_NEAR(b_eps1, 1.0, 0.02);
  EXPECT_NEAR(b_eps2, 0.5, 0.01);
  EXPECT_NEAR(b_eps1 / b_eps2, 2.0, 0.1);
}

// ----------------------------------------------------------- geometric --

TEST(MechanismStatsTest, GeometricMechanismMatchesAnalyticMoments) {
  // Two-sided geometric with alpha = exp(-epsilon / sensitivity):
  // mean 0, variance 2 alpha / (1 - alpha)^2.
  const double epsilon = 1.0;
  const double sensitivity = 1.0;
  const double alpha = std::exp(-epsilon / sensitivity);
  const double variance = 2.0 * alpha / ((1.0 - alpha) * (1.0 - alpha));
  util::Rng rng(20260202);
  const Moments m = EmpiricalMoments(kDraws, [&] {
    return static_cast<double>(
        TwoSidedGeometricNoise(epsilon, sensitivity, rng));
  });

  const double mean_se = std::sqrt(variance / kDraws);
  EXPECT_NEAR(m.mean, 0.0, 5.0 * mean_se);
  // mu4 of the two-sided geometric is bounded well under 10 sigma^4 at this
  // alpha; 5 * sqrt(9 sigma^4 / N) is a safely generous band.
  const double var_se = 3.0 * variance / std::sqrt(kDraws);
  EXPECT_NEAR(m.variance, variance, 5.0 * var_se);
}

TEST(MechanismStatsTest, GeometricMechanismCentersOnValue) {
  const int64_t value = 1000;
  util::Rng rng(20260303);
  const Moments m = EmpiricalMoments(kDraws, [&] {
    return static_cast<double>(GeometricMechanism(value, 1.0, 1.0, rng));
  });
  EXPECT_NEAR(m.mean, static_cast<double>(value), 0.05);
}

// --------------------------------------------------------- exponential --

TEST(MechanismStatsTest, ExponentialMechanismSelectionFrequencies) {
  // Scores {0, 1, 2}, sensitivity 1, epsilon 2: P[i] proportional to
  // exp(epsilon * score / 2) = exp(score), the softmax of {0, 1, 2}.
  const std::vector<double> scores = {0.0, 1.0, 2.0};
  const double epsilon = 2.0;
  double z = 0.0;
  std::vector<double> expected(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    expected[i] = std::exp(epsilon * scores[i] / 2.0);
    z += expected[i];
  }
  for (double& p : expected) p /= z;

  util::Rng rng(20260404);
  std::vector<int> counts(scores.size(), 0);
  for (int i = 0; i < kDraws; ++i) {
    auto pick = ExponentialMechanism(scores, 1.0, epsilon, rng);
    ASSERT_TRUE(pick.ok());
    ASSERT_LT(pick.value(), counts.size());
    ++counts[pick.value()];
  }
  for (size_t i = 0; i < scores.size(); ++i) {
    const double freq = static_cast<double>(counts[i]) / kDraws;
    const double se = std::sqrt(expected[i] * (1.0 - expected[i]) / kDraws);
    EXPECT_NEAR(freq, expected[i], 5.0 * se) << "candidate " << i;
  }
}

TEST(MechanismStatsTest, ExponentialMechanismIsUniformOnEqualScores) {
  const std::vector<double> scores(4, 1.0);
  util::Rng rng(20260505);
  std::vector<int> counts(scores.size(), 0);
  for (int i = 0; i < kDraws; ++i) {
    auto pick = ExponentialMechanism(scores, 1.0, 0.5, rng);
    ASSERT_TRUE(pick.ok());
    ++counts[pick.value()];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.25, 0.01);
  }
}

}  // namespace
}  // namespace agmdp::dp

// Unit tests for the eval layer on hand-built toy graphs where every
// metric has a closed-form value.
#include <gtest/gtest.h>

#include <cmath>

#include "src/eval/aggregate.h"
#include "src/eval/utility_report.h"
#include "src/stats/assortativity.h"
#include "src/stats/metrics.h"
#include "src/util/rng.h"

namespace agmdp::eval {
namespace {

// K3 (triangle) over 3 nodes with one binary attribute: bits 0, 1, 0.
graph::AttributedGraph Triangle() {
  graph::AttributedGraph g(3, 1);
  g.structure().AddEdge(0, 1);
  g.structure().AddEdge(0, 2);
  g.structure().AddEdge(1, 2);
  g.set_attribute(1, 1);
  return g;
}

// P3 (path 0-1-2) over 3 nodes, same attributes.
graph::AttributedGraph Path() {
  graph::AttributedGraph g(3, 1);
  g.structure().AddEdge(0, 1);
  g.structure().AddEdge(1, 2);
  g.set_attribute(1, 1);
  return g;
}

// --------------------------------------------------- stats primitives --

TEST(MetricPrimitivesTest, KsDistanceClosedForms) {
  EXPECT_DOUBLE_EQ(stats::KsDistance({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(stats::KsDistance({}, {1.0}), 1.0);
  EXPECT_DOUBLE_EQ(stats::KsDistance({1.0, 2.0}, {2.0, 1.0}), 0.0);
  // Disjoint supports: distance 1.
  EXPECT_DOUBLE_EQ(stats::KsDistance({0.0, 0.0}, {1.0, 1.0}), 1.0);
  // {1,2,3} vs {2,2,2}: F1(1)=1/3 vs 0, F1(2)=2/3 vs 1 -> sup = 1/3.
  EXPECT_NEAR(stats::KsDistance({1.0, 2.0, 3.0}, {2.0, 2.0, 2.0}), 1.0 / 3.0,
              1e-12);
}

TEST(MetricPrimitivesTest, KlDivergenceClosedForms) {
  EXPECT_DOUBLE_EQ(stats::KlDivergence({0.5, 0.5}, {0.5, 0.5}), 0.0);
  // KL({1, 0} || {1/2, 1/2}) = ln 2.
  EXPECT_NEAR(stats::KlDivergence({1.0, 0.0}, {0.5, 0.5}), std::log(2.0),
              1e-12);
  // Mass outside q's support is floored, not infinite.
  const double kl = stats::KlDivergence({0.5, 0.5}, {1.0, 0.0});
  EXPECT_TRUE(std::isfinite(kl));
  EXPECT_GT(kl, 1.0);
  // Ragged lengths are zero-padded.
  EXPECT_NEAR(stats::KlDivergence({1.0}, {0.5, 0.5}), std::log(2.0), 1e-12);
}

TEST(MetricPrimitivesTest, PerAttributeHomophilyClosedForms) {
  // Triangle with bits 0,1,0: edges (0,1) differ, (0,2) agree, (1,2) differ.
  const std::vector<double> h = stats::PerAttributeHomophily(Triangle());
  ASSERT_EQ(h.size(), 1u);
  EXPECT_NEAR(h[0], 1.0 / 3.0, 1e-12);

  // Edgeless graph: all zeros.
  graph::AttributedGraph empty(3, 2);
  const std::vector<double> h0 = stats::PerAttributeHomophily(empty);
  ASSERT_EQ(h0.size(), 2u);
  EXPECT_DOUBLE_EQ(h0[0], 0.0);
  EXPECT_DOUBLE_EQ(h0[1], 0.0);

  // Two attributes, perfect agreement on bit 0, none on bit 1.
  graph::AttributedGraph two(2, 2);
  two.structure().AddEdge(0, 1);
  two.set_attribute(0, 0b01);
  two.set_attribute(1, 0b11);
  const std::vector<double> h2 = stats::PerAttributeHomophily(two);
  ASSERT_EQ(h2.size(), 2u);
  EXPECT_DOUBLE_EQ(h2[0], 1.0);  // both have bit 0 set
  EXPECT_DOUBLE_EQ(h2[1], 0.0);  // bit 1 differs
}

// ----------------------------------------------------- EvaluateRelease --

TEST(EvaluateReleaseTest, IdenticalGraphsScoreZeroEverywhere) {
  const graph::AttributedGraph g = Triangle();
  const UtilityReport report = EvaluateRelease(g, g);
  for (const auto& [name, value] : report.Flatten()) {
    EXPECT_DOUBLE_EQ(value, 0.0) << name;
  }
}

TEST(EvaluateReleaseTest, TriangleVsPathClosedForms) {
  const UtilityReport report = EvaluateRelease(Triangle(), Path());

  // Degrees: K3 = {2,2,2}, P3 = {1,2,1}. KS/CCDF sup distance = 2/3.
  EXPECT_NEAR(report.errors.degree_ks, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(report.degree_ccdf_distance, 2.0 / 3.0, 1e-12);
  // KL(orig || rel): orig P(2)=1; rel P(2)=1/3 -> ln 3.
  EXPECT_NEAR(report.degree_kl, std::log(3.0), 1e-12);

  // Clustering coefficients: K3 all 1, P3 all 0 -> sup distance 1; the
  // relative errors of the means are 1 as well.
  EXPECT_NEAR(report.clustering_ccdf_distance, 1.0, 1e-12);
  EXPECT_NEAR(report.errors.avg_clustering_re, 1.0, 1e-12);
  EXPECT_NEAR(report.errors.global_clustering_re, 1.0, 1e-12);

  // Triangles: 1 -> 0, relative error 1. Edges: 3 -> 2, RE = 1/3.
  EXPECT_NEAR(report.errors.triangles_re, 1.0, 1e-12);
  EXPECT_NEAR(report.errors.edges_re, 1.0 / 3.0, 1e-12);

  // Degree assortativity: K3 has constant degrees (convention 0); P3's
  // endpoint degrees are perfectly anti-correlated (-1). Delta = -1.
  EXPECT_NEAR(report.degree_assortativity_delta, -1.0, 1e-12);

  // Homophily on the single bit: 1/3 of K3 edges agree, 0 of P3 edges.
  ASSERT_EQ(report.homophily_delta.size(), 1u);
  EXPECT_NEAR(report.homophily_delta[0], -1.0 / 3.0, 1e-12);
}

TEST(EvaluateReleaseTest, FlattenHasStableNamesAndHomophilySummary) {
  const UtilityReport report = EvaluateRelease(Triangle(), Path());
  const auto flat = report.Flatten();
  ASSERT_FALSE(flat.empty());
  EXPECT_EQ(flat.front().first, "theta_f_mae");
  EXPECT_EQ(flat.back().first, "homophily_delta_mean_abs");
  EXPECT_NEAR(flat.back().second, 1.0 / 3.0, 1e-12);
  bool has_per_attr = false;
  for (const auto& [name, value] : flat) {
    (void)value;
    if (name == "homophily_delta_a0") has_per_attr = true;
  }
  EXPECT_TRUE(has_per_attr);
}

TEST(CompareThetaFTest, ExactEstimateIsZeroUniformIsNot) {
  const std::vector<double> exact = {0.5, 0.25, 0.25};
  const ThetaFError zero = CompareThetaF(exact, exact);
  EXPECT_DOUBLE_EQ(zero.mae, 0.0);
  EXPECT_DOUBLE_EQ(zero.hellinger, 0.0);

  const std::vector<double> uniform(3, 1.0 / 3.0);
  const ThetaFError off = CompareThetaF(uniform, exact);
  // MAE = (|1/3-1/2| + |1/3-1/4| + |1/3-1/4|) / 3 = 1/9.
  EXPECT_NEAR(off.mae, 1.0 / 9.0, 1e-12);
  EXPECT_GT(off.hellinger, 0.0);
}

TEST(ProfileGraphTest, MatchesDirectStatistics) {
  const graph::AttributedGraph g = Triangle();
  util::Rng rng(3);
  const StructuralProfile profile = ProfileGraph(g, 8, rng);
  EXPECT_DOUBLE_EQ(profile.degree_assortativity,
                   stats::DegreeAssortativity(g.structure()));
  EXPECT_DOUBLE_EQ(profile.attribute_assortativity,
                   stats::AttributeAssortativity(g));
  ASSERT_EQ(profile.homophily.size(), 1u);
  EXPECT_NEAR(profile.homophily[0], 1.0 / 3.0, 1e-12);
  // K3: every pair at distance 1.
  EXPECT_NEAR(profile.avg_path_length, 1.0, 1e-9);

  // path_samples = 0 skips BFS and leaves rng untouched.
  util::Rng a(7), b(7);
  const StructuralProfile skipped = ProfileGraph(g, 0, a);
  EXPECT_DOUBLE_EQ(skipped.avg_path_length, 0.0);
  EXPECT_EQ(a.Next(), b.Next());
}

TEST(CcdfSeriesTest, DegreeAndClusteringSeriesAreCcdfs) {
  const graph::AttributedGraph g = Path();
  // Degrees {1, 2, 1}: CCDF points (1, 1/3), (2, 0).
  const auto series = DegreeCcdfSeries(g.structure(), 30);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].first, 1.0);
  EXPECT_NEAR(series[0].second, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(series[1].first, 2.0);
  EXPECT_DOUBLE_EQ(series[1].second, 0.0);

  // All clustering coefficients are 0: a single point (0, 0).
  const auto cc = ClusteringCcdfSeries(g.structure(), 30);
  ASSERT_EQ(cc.size(), 1u);
  EXPECT_DOUBLE_EQ(cc[0].first, 0.0);
  EXPECT_DOUBLE_EQ(cc[0].second, 0.0);
}

// --------------------------------------------------------- aggregation --

TEST(ReportAccumulatorTest, MeanAndStddevOverReports) {
  // Two reports: identical-graphs (all zeros) and triangle-vs-path.
  ReportAccumulator acc;
  const graph::AttributedGraph tri = Triangle();
  acc.Add(EvaluateRelease(tri, tri));
  acc.Add(EvaluateRelease(tri, Path()));
  EXPECT_EQ(acc.count(), 2);

  const std::vector<MetricStats> stats = acc.Stats();
  // triangles_re values are {0, 1}: mean 1/2, sample stddev 1/sqrt(2).
  EXPECT_NEAR(MetricMean(stats, "triangles_re"), 0.5, 1e-12);
  for (const MetricStats& s : stats) {
    if (s.name == "triangles_re") {
      EXPECT_NEAR(s.stddev, 1.0 / std::sqrt(2.0), 1e-12);
    }
    EXPECT_GE(s.stddev, 0.0) << s.name;
  }
  EXPECT_DOUBLE_EQ(acc.Mean("no_such_metric"), 0.0);
}

TEST(ReportAccumulatorTest, SingleReportHasZeroStddev) {
  ReportAccumulator acc;
  acc.Add(EvaluateRelease(Triangle(), Path()));
  for (const MetricStats& s : acc.Stats()) {
    EXPECT_DOUBLE_EQ(s.stddev, 0.0) << s.name;
  }
}

}  // namespace
}  // namespace agmdp::eval

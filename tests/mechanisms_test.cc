// Cross-mechanism contract tests for the release-mechanism registry:
// every DP mechanism's ledger sums back to the global epsilon, the
// syntactic baseline provably spends nothing, mechanism-tagged artifacts
// round-trip bit-exactly through JSON while unknown tags are rejected at
// the read boundary, and every mechanism's serving path honours the
// engine's Substream(seed, sequence) determinism contract — including the
// comparative sweep that ranks all registered mechanisms side by side.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/datasets/datasets.h"
#include "src/eval/sweep_engine.h"
#include "src/graph/attributed_graph.h"
#include "src/mechanisms/mechanism_tags.h"
#include "src/mechanisms/release_mechanism.h"
#include "src/pipeline/release_artifact.h"
#include "src/pipeline/release_engine.h"
#include "src/pipeline/release_pipeline.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp {
namespace {

const graph::AttributedGraph& Input() {
  static const graph::AttributedGraph* input = [] {
    auto g = datasets::GenerateDataset(datasets::DatasetId::kPetster, 0.1, 3);
    AGMDP_CHECK_MSG(g.ok(), g.status().ToString().c_str());
    return new graph::AttributedGraph(std::move(g).value());
  }();
  return *input;
}

pipeline::PipelineConfig Config(const std::string& mechanism, double epsilon) {
  pipeline::PipelineConfig config;
  config.mechanism = mechanism;
  config.epsilon = epsilon;
  config.sample.acceptance_iterations = 1;
  return config;
}

util::Result<pipeline::ReleaseArtifact> Fit(const std::string& mechanism,
                                            double epsilon, uint64_t seed) {
  util::Rng rng = util::Rng::Substream(seed, 0);
  return pipeline::FitReleaseArtifact(Input(), Config(mechanism, epsilon),
                                      rng);
}

bool GraphsEqual(const graph::AttributedGraph& a,
                 const graph::AttributedGraph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  if (a.structure().CanonicalEdges() != b.structure().CanonicalEdges()) {
    return false;
  }
  for (graph::NodeId v = 0; v < a.num_nodes(); ++v) {
    if (a.attribute(v) != b.attribute(v)) return false;
  }
  return true;
}

TEST(MechanismRegistryTest, ListsEveryKnownTagWithItsPrivacyModel) {
  const std::vector<std::string> names = mechanisms::MechanismNames();
  ASSERT_EQ(names.size(), mechanisms::KnownMechanismTags().size());
  for (const std::string& tag : mechanisms::KnownMechanismTags()) {
    EXPECT_TRUE(mechanisms::IsKnownMechanismTag(tag)) << tag;
    const mechanisms::MechanismSpec* spec = mechanisms::FindMechanism(tag);
    ASSERT_NE(spec, nullptr) << tag;
    EXPECT_EQ(spec->name, tag);
    EXPECT_TRUE(spec->fit != nullptr) << tag;
    // AGM keeps its dedicated engine path; every other mechanism must
    // provide the sampler the engine delegates to.
    EXPECT_EQ(spec->make_sampler == nullptr, spec->builtin_agm) << tag;
  }
  EXPECT_EQ(mechanisms::FindMechanism("agm")->privacy_model,
            mechanisms::PrivacyModel::kEdgeDp);
  EXPECT_EQ(mechanisms::FindMechanism("community_dp")->privacy_model,
            mechanisms::PrivacyModel::kEdgeDp);
  EXPECT_EQ(mechanisms::FindMechanism("kanon_baseline")->privacy_model,
            mechanisms::PrivacyModel::kSyntactic);
  EXPECT_EQ(mechanisms::FindMechanism("no_such_mechanism"), nullptr);
  const std::string list = mechanisms::MechanismNameList();
  for (const std::string& tag : names) {
    EXPECT_NE(list.find(tag), std::string::npos) << tag;
  }
}

TEST(MechanismLedgerTest, CommunityDpLedgerSumsToTheGlobalEpsilon) {
  for (double epsilon : {0.3, 0.6931471805599453, 1.0, 1.1}) {
    auto artifact = Fit("community_dp", epsilon, 11);
    ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
    EXPECT_EQ(artifact.value().mechanism, "community_dp");
    EXPECT_EQ(artifact.value().epsilon_budget, epsilon);

    const pipeline::BudgetLedger& ledger = artifact.value().ledger;
    ASSERT_EQ(ledger.size(), 4u);
    EXPECT_EQ(ledger[0].first, "partition_pass_0");
    EXPECT_EQ(ledger[1].first, "partition_pass_1");
    EXPECT_EQ(ledger[2].first, "block_edges");
    EXPECT_EQ(ledger[3].first, "block_attributes");

    double sum = 0.0;
    for (const auto& [label, spend] : ledger) {
      EXPECT_GT(spend, 0.0) << label;
      sum += spend;
    }
    // Shares are epsilon / 4 — exact in binary floating point — so the
    // in-order ledger sum reproduces the accountant's spent total exactly,
    // and both land on the global epsilon to the last ulp.
    EXPECT_EQ(sum, artifact.value().epsilon_spent);
    EXPECT_DOUBLE_EQ(artifact.value().epsilon_spent, epsilon);
  }
}

TEST(MechanismLedgerTest, KanonBaselineAssertsZeroSpend) {
  auto artifact = Fit("kanon_baseline", 0.5, 11);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_EQ(artifact.value().mechanism, "kanon_baseline");
  EXPECT_EQ(artifact.value().epsilon_budget, 0.0);
  EXPECT_EQ(artifact.value().epsilon_spent, 0.0);
  EXPECT_TRUE(artifact.value().ledger.empty());
  // k = max(2, round(2 / eps)) under the zero-knob default.
  EXPECT_EQ(artifact.value().payload.k_anonymity, 4u);
  EXPECT_GE(artifact.value().payload.num_blocks, 1u);

  // The zero-spend invariant is enforced at the artifact boundary, not
  // just produced by the fit: a doctored spend must not validate.
  pipeline::ReleaseArtifact doctored = artifact.value();
  doctored.epsilon_spent = 0.25;
  doctored.ledger.push_back({"sneaky", 0.25});
  EXPECT_FALSE(pipeline::ValidateReleaseArtifact(doctored).ok());
}

TEST(MechanismArtifactTest, TaggedRoundTripIsBitExact) {
  for (const char* mechanism : {"community_dp", "kanon_baseline"}) {
    auto artifact = Fit(mechanism, 0.7, 21);
    ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();

    const std::string once = pipeline::ReleaseArtifactToJson(artifact.value());
    auto parsed = pipeline::ReleaseArtifactFromJson(once);
    ASSERT_TRUE(parsed.ok()) << mechanism << ": "
                             << parsed.status().ToString();
    EXPECT_EQ(parsed.value().mechanism, mechanism);
    const std::string twice = pipeline::ReleaseArtifactToJson(parsed.value());
    EXPECT_EQ(once, twice) << mechanism;
    EXPECT_EQ(pipeline::ReleaseArtifactReleaseKey(artifact.value()),
              pipeline::ReleaseArtifactReleaseKey(parsed.value()));
  }
}

TEST(MechanismArtifactTest, UnknownTagIsRejectedAtRead) {
  auto artifact = Fit("community_dp", 0.7, 21);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  std::string json = pipeline::ReleaseArtifactToJson(artifact.value());
  const std::string needle = "\"mechanism\": \"community_dp\"";
  const size_t at = json.find(needle);
  ASSERT_NE(at, std::string::npos);
  json.replace(at, needle.size(), "\"mechanism\": \"zkp_wizardry\"");

  auto parsed = pipeline::ReleaseArtifactFromJson(json);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument);
  // The error names the registered tags so a typo is self-diagnosing.
  EXPECT_NE(parsed.status().message().find("zkp_wizardry"),
            std::string::npos);
  EXPECT_NE(parsed.status().message().find("community_dp"),
            std::string::npos);
}

TEST(MechanismArtifactTest, AgmArtifactsMustNotCarryAPayload) {
  auto artifact = Fit("community_dp", 0.7, 21);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  pipeline::ReleaseArtifact doctored = artifact.value();
  doctored.mechanism = "agm";
  doctored.model = "tricycle";
  EXPECT_FALSE(pipeline::ValidateReleaseArtifact(doctored).ok());
}

TEST(MechanismEngineTest, SampleManyMatchesSequentialSamplesForEveryTag) {
  for (const char* mechanism : {"community_dp", "kanon_baseline"}) {
    auto artifact = Fit(mechanism, 0.7, 33);
    ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
    auto engine = pipeline::ReleaseEngine::Create(artifact.value());
    ASSERT_TRUE(engine.ok()) << mechanism << ": "
                             << engine.status().ToString();
    EXPECT_GT(engine.value()->ApproxBytes(),
              pipeline::EstimateArtifactBytes(artifact.value()));

    pipeline::SampleRequest base;
    base.seed = 9;
    base.sequence = 5;
    auto batch = engine.value()->SampleMany(3, base);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch.value().size(), 3u);
    for (int i = 0; i < 3; ++i) {
      pipeline::SampleRequest request = base;
      request.sequence = base.sequence + static_cast<uint64_t>(i);
      auto single = engine.value()->Sample(request);
      ASSERT_TRUE(single.ok()) << single.status().ToString();
      EXPECT_TRUE(GraphsEqual(batch.value()[i], single.value()))
          << mechanism << " sample " << i;
      EXPECT_GT(single.value().num_edges(), 0u) << mechanism;
    }
  }
}

TEST(MechanismSweepTest, ComparativeSweepIsShapedAndByteStable) {
  eval::SweepSpec spec;
  spec.mechanisms = {"agm", "community_dp", "kanon_baseline"};
  spec.models = {"fcl"};
  spec.epsilons = {0.5, 1.0};
  spec.repeats = 2;
  spec.seed = 77;
  spec.acceptance_iterations = 1;
  const std::vector<eval::SweepInput> inputs = {
      eval::SweepInput{"petster", Input(), nullptr}};

  auto first = eval::RunSweep(inputs, spec);
  auto second = eval::RunSweep(inputs, spec);
  eval::SweepSpec parallel = spec;
  parallel.threads = 4;
  auto third = eval::RunSweep(inputs, parallel);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok() && third.ok());

  // agm expands over the model list; the other mechanisms contribute one
  // row each, every row crossed with the epsilon grid.
  const eval::SweepResult& sweep = first.value();
  ASSERT_EQ(sweep.cells.size(), 6u);
  const std::vector<std::string> expected = {
      "agm",            "agm",           "community_dp",
      "community_dp",   "kanon_baseline", "kanon_baseline"};
  for (size_t i = 0; i < sweep.cells.size(); ++i) {
    const eval::SweepCell& cell = sweep.cells[i];
    EXPECT_EQ(cell.mechanism, expected[i]) << i;
    ASSERT_TRUE(cell.error.empty()) << cell.mechanism << ": " << cell.error;
    ASSERT_FALSE(cell.metrics.empty()) << cell.mechanism;
    if (cell.mechanism == "kanon_baseline") {
      EXPECT_EQ(cell.epsilon_spent, 0.0);
    } else {
      EXPECT_DOUBLE_EQ(cell.epsilon_spent, cell.epsilon) << cell.mechanism;
    }
  }

  const std::string a = eval::SweepResultToJson(first.value(), false);
  EXPECT_EQ(a, eval::SweepResultToJson(second.value(), false));
  EXPECT_EQ(a, eval::SweepResultToJson(third.value(), false));
  EXPECT_NE(a.find("\"schema\": \"agmdp.sweep.v4\""), std::string::npos);
  EXPECT_NE(a.find("\"mechanism_summary\": ["), std::string::npos);
  for (const char* tag : {"agm", "community_dp", "kanon_baseline"}) {
    EXPECT_NE(a.find("\"mechanism\": \"" + std::string(tag) + "\""),
              std::string::npos)
        << tag;
  }

  auto unknown = spec;
  unknown.mechanisms = {"agm", "no_such_mechanism"};
  auto rejected = eval::RunSweep(inputs, unknown);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace agmdp

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/graph/clustering.h"
#include "src/graph/components.h"
#include "src/graph/degree.h"
#include "src/graph/triangle_count.h"
#include "src/models/chung_lu.h"
#include "src/models/edge_age_queue.h"
#include "src/models/erdos_renyi.h"
#include "src/models/holme_kim.h"
#include "src/models/post_process.h"
#include "src/models/tcl.h"
#include "src/models/tricycle.h"
#include "src/util/rng.h"

namespace agmdp::models {
namespace {

// ------------------------------------------------------------ ErdosRenyi --

TEST(ErdosRenyiTest, GnpEdgeCountNearExpectation) {
  util::Rng rng(1);
  const graph::NodeId n = 200;
  const double p = 0.1;
  double total = 0.0;
  for (int i = 0; i < 10; ++i) {
    total += static_cast<double>(ErdosRenyiGnp(n, p, rng).num_edges());
  }
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(total / 10.0, expected, expected * 0.05);
}

TEST(ErdosRenyiTest, GnpExtremes) {
  util::Rng rng(2);
  EXPECT_EQ(ErdosRenyiGnp(50, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(ErdosRenyiGnp(10, 1.0, rng).num_edges(), 45u);
}

TEST(ErdosRenyiTest, GnmExactEdgeCount) {
  util::Rng rng(3);
  graph::Graph g = ErdosRenyiGnm(50, 100, rng);
  EXPECT_EQ(g.num_edges(), 100u);
  // capped at C(n,2)
  EXPECT_EQ(ErdosRenyiGnm(5, 1000, rng).num_edges(), 10u);
}

// ----------------------------------------------------------- EdgeAgeQueue --

TEST(EdgeAgeQueueTest, FifoOrder) {
  EdgeAgeQueue q;
  q.Push(graph::Edge(0, 1));
  q.Push(graph::Edge(1, 2));
  graph::Edge e;
  ASSERT_TRUE(q.PopOldest(&e));
  EXPECT_TRUE(e == graph::Edge(0, 1));
  ASSERT_TRUE(q.PopOldest(&e));
  EXPECT_TRUE(e == graph::Edge(1, 2));
  EXPECT_FALSE(q.PopOldest(&e));
}

TEST(EdgeAgeQueueTest, RePushMakesYoungest) {
  // The paper's undo step: a re-inserted edge must become the youngest.
  EdgeAgeQueue q;
  q.Push(graph::Edge(0, 1));
  q.Push(graph::Edge(1, 2));
  graph::Edge e;
  ASSERT_TRUE(q.PopOldest(&e));          // 0-1 out
  q.Push(e);                             // undo: 0-1 back as youngest
  ASSERT_TRUE(q.PopOldest(&e));
  EXPECT_TRUE(e == graph::Edge(1, 2));   // 1-2 now oldest
  ASSERT_TRUE(q.PopOldest(&e));
  EXPECT_TRUE(e == graph::Edge(0, 1));
}

TEST(EdgeAgeQueueTest, InvalidateSkipsEntry) {
  EdgeAgeQueue q;
  q.Push(graph::Edge(0, 1));
  q.Push(graph::Edge(1, 2));
  q.Invalidate(graph::Edge(0, 1));
  graph::Edge e;
  ASSERT_TRUE(q.PopOldest(&e));
  EXPECT_TRUE(e == graph::Edge(1, 2));
  EXPECT_EQ(q.live_size(), 0u);
}

TEST(EdgeAgeQueueTest, StaleDuplicateEntriesResolved) {
  EdgeAgeQueue q;
  q.Push(graph::Edge(0, 1));
  q.Push(graph::Edge(0, 1));  // re-push same edge: older entry is stale
  graph::Edge e;
  ASSERT_TRUE(q.PopOldest(&e));
  EXPECT_TRUE(e == graph::Edge(0, 1));
  EXPECT_FALSE(q.PopOldest(&e));  // only one live entry existed
}

// --------------------------------------------------------------- ChungLu --

TEST(ChungLuTest, PiSamplerProportionalToDegree) {
  auto pi = BuildPiSampler({1, 2, 3, 0}, false);
  ASSERT_TRUE(pi.ok());
  util::Rng rng(4);
  std::vector<int> counts(4, 0);
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) ++counts[pi.value().Sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 1.0 / 6, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(trials), 3.0 / 6, 0.01);
  EXPECT_EQ(counts[3], 0);
}

TEST(ChungLuTest, PiSamplerExcludesDegreeOne) {
  auto pi = BuildPiSampler({1, 2, 1, 3}, true);
  ASSERT_TRUE(pi.ok());
  util::Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    size_t s = pi.value().Sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(ChungLuTest, PiSamplerFailsOnAllZero) {
  EXPECT_FALSE(BuildPiSampler({1, 1, 1}, true).ok());
  EXPECT_FALSE(BuildPiSampler({0, 0}, false).ok());
}

TEST(ChungLuTest, MatchesEdgeCount) {
  util::Rng rng(6);
  std::vector<uint32_t> degrees(100, 4);
  auto g = FastChungLu(degrees, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_edges(), 200u);  // sum/2
}

TEST(ChungLuTest, ExpectedDegreesTrackTargets) {
  util::Rng rng(7);
  // Heterogeneous targets; average realized degree over repeats should land
  // near the target. Hubs stay a little short even with cFCL (duplicate
  // collisions are inherent to the proposal scheme), hence the asymmetric
  // tolerances.
  std::vector<uint32_t> degrees(60, 2);
  degrees[0] = 30;
  degrees[1] = 15;
  double d0 = 0.0, d1 = 0.0, drest = 0.0;
  const int reps = 60;
  for (int r = 0; r < reps; ++r) {
    auto g = FastChungLu(degrees, rng);
    ASSERT_TRUE(g.ok());
    d0 += g.value().Degree(0);
    d1 += g.value().Degree(1);
    drest += g.value().Degree(30);
  }
  EXPECT_NEAR(d0 / reps, 30.0, 6.0);
  EXPECT_NEAR(d1 / reps, 15.0, 3.0);
  EXPECT_NEAR(drest / reps, 2.0, 0.6);
}

TEST(ChungLuTest, BiasCorrectionHelpsHighDegreeNodes) {
  util::Rng rng(8);
  // A very heavy hub suffers many proposal collisions; cFCL should realize
  // more of its target degree than plain FCL.
  std::vector<uint32_t> degrees(120, 2);
  degrees[0] = 80;
  ChungLuOptions plain;
  plain.bias_correction = false;
  ChungLuOptions corrected;
  corrected.bias_correction = true;
  double hub_plain = 0.0, hub_corrected = 0.0;
  const int reps = 40;
  for (int r = 0; r < reps; ++r) {
    hub_plain += FastChungLu(degrees, rng, plain).value().Degree(0);
    hub_corrected += FastChungLu(degrees, rng, corrected).value().Degree(0);
  }
  EXPECT_GT(hub_corrected, hub_plain);
}

TEST(ChungLuTest, FilterSuppressesEdges) {
  util::Rng rng(9);
  std::vector<uint32_t> degrees(50, 4);
  ChungLuOptions options;
  options.max_proposals_per_edge = 20;
  options.filter = [](graph::NodeId, graph::NodeId, util::Rng&) {
    return false;  // reject everything
  };
  auto g = FastChungLu(degrees, rng, options);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_edges(), 0u);  // budget exhausted, no stall
}

TEST(ChungLuTest, ExtremeProposalBudgetSaturatesInsteadOfWrapping) {
  util::Rng rng(91);
  std::vector<uint32_t> degrees(50, 4);  // target = 100 edges (even)
  ChungLuOptions options;
  // 2^63 per edge: an even target wraps the product to exactly 0, which
  // used to exhaust the "budget" before the first proposal.
  options.max_proposals_per_edge = 1ULL << 63;
  auto g = FastChungLu(degrees, rng, options);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g.value().num_edges(), 0u);
}

TEST(ChungLuTest, InsertionOrderRecorded) {
  util::Rng rng(10);
  std::vector<uint32_t> degrees(30, 3);
  std::vector<graph::Edge> order;
  ChungLuOptions options;
  options.insertion_order = &order;
  auto g = FastChungLu(degrees, rng, options);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(order.size(), g.value().num_edges());
  for (const graph::Edge& e : order) {
    EXPECT_TRUE(g.value().HasEdge(e.u, e.v));
  }
}

// ------------------------------------------------------------ PostProcess --

TEST(PostProcessTest, ConnectsOrphans) {
  util::Rng rng(11);
  // Main component of 20 nodes + 5 isolated nodes.
  graph::Graph g(25);
  for (graph::NodeId v = 1; v < 20; ++v) g.AddEdge(0, v);
  std::vector<uint32_t> desired(25, 2);
  desired[0] = 19;
  auto pi = BuildPiSampler(desired, false);
  ASSERT_TRUE(pi.ok());
  PostProcessGraph(&g, desired, pi.value(), rng);
  EXPECT_TRUE(graph::IsConnected(g));
}

TEST(PostProcessTest, ReportsAddedEdges) {
  util::Rng rng(12);
  graph::Graph g(10);
  for (graph::NodeId v = 1; v < 8; ++v) g.AddEdge(0, v);
  std::vector<uint32_t> desired(10, 2);
  desired[0] = 7;
  auto pi = BuildPiSampler(desired, false);
  ASSERT_TRUE(pi.ok());
  std::vector<graph::Edge> added;
  PostProcessGraph(&g, desired, pi.value(), rng, PostProcessOptions{}, &added);
  EXPECT_FALSE(added.empty());
  for (const graph::Edge& e : added) {
    // Post-processing may later delete an added edge while balancing the
    // edge budget; the ones still present must be real edges.
    if (g.HasEdge(e.u, e.v)) {
      EXPECT_NE(e.u, e.v);
    }
  }
  EXPECT_TRUE(graph::IsConnected(g));
}

TEST(PostProcessTest, KeepsEdgeCountNearTarget) {
  util::Rng rng(13);
  graph::Graph g(40);
  for (graph::NodeId v = 1; v < 30; ++v) g.AddEdge(0, v);
  std::vector<uint32_t> desired(40, 2);
  desired[0] = 29;
  const uint64_t target = (29 + 39 * 2) / 2;
  auto pi = BuildPiSampler(desired, false);
  ASSERT_TRUE(pi.ok());
  PostProcessGraph(&g, desired, pi.value(), rng);
  EXPECT_TRUE(graph::IsConnected(g));
  EXPECT_NEAR(static_cast<double>(g.num_edges()), static_cast<double>(target),
              static_cast<double>(target) * 0.35);
}

TEST(PostProcessTest, NoopOnConnectedGraph) {
  util::Rng rng(14);
  graph::Graph g = ErdosRenyiGnm(30, 100, rng);
  // Densify until connected for a stable premise.
  while (!graph::IsConnected(g)) g = ErdosRenyiGnm(30, 150, rng);
  graph::Graph before = g;
  std::vector<uint32_t> desired = graph::DegreeSequence(g);
  auto pi = BuildPiSampler(desired, false);
  ASSERT_TRUE(pi.ok());
  PostProcessGraph(&g, desired, pi.value(), rng);
  EXPECT_EQ(g.CanonicalEdges(), before.CanonicalEdges());
}

// --------------------------------------------------------------- TriCycLe --

TEST(TriCycLeTest, RejectsEmptyInput) {
  util::Rng rng(15);
  EXPECT_FALSE(GenerateTriCycLe({}, 10, rng).ok());
}

TEST(TriCycLeTest, ReachesTriangleTarget) {
  util::Rng rng(16);
  std::vector<uint32_t> degrees(150, 6);
  const uint64_t target = 120;
  auto result = GenerateTriCycLe(degrees, target, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().reached_target);
  // Post-processing may destroy a few triangles; allow modest slack.
  EXPECT_GE(result.value().achieved_triangles, target * 8 / 10);
}

TEST(TriCycLeTest, TriangleCountGrowsWithTarget) {
  util::Rng rng(17);
  std::vector<uint32_t> degrees(200, 6);
  auto lo = GenerateTriCycLe(degrees, 20, rng);
  auto hi = GenerateTriCycLe(degrees, 250, rng);
  ASSERT_TRUE(lo.ok());
  ASSERT_TRUE(hi.ok());
  EXPECT_GT(hi.value().achieved_triangles, lo.value().achieved_triangles);
}

TEST(TriCycLeTest, PreservesEdgeCountApproximately) {
  util::Rng rng(18);
  std::vector<uint32_t> degrees(200, 6);
  auto result = GenerateTriCycLe(degrees, 150, rng);
  ASSERT_TRUE(result.ok());
  const uint64_t m_target = 200 * 6 / 2;
  EXPECT_NEAR(static_cast<double>(result.value().graph.num_edges()),
              static_cast<double>(m_target), m_target * 0.1);
}

TEST(TriCycLeTest, OutputConnectedWithPostProcessing) {
  util::Rng rng(19);
  // Plenty of degree-one nodes, the orphan-prone case.
  std::vector<uint32_t> degrees(150, 1);
  for (size_t i = 0; i < 50; ++i) degrees[i] = 5;
  auto result = GenerateTriCycLe(degrees, 50, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(graph::IsConnected(result.value().graph));
}

TEST(TriCycLeTest, StallGuardTerminates) {
  util::Rng rng(20);
  std::vector<uint32_t> degrees(30, 2);  // a 2-regular target: few triangles
  TriCycLeOptions options;
  options.max_proposals = 500;
  // Unreachable target; must stop at the proposal budget.
  auto result = GenerateTriCycLe(degrees, 1'000'000, rng, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().reached_target);
  EXPECT_LE(result.value().proposals, 500u);
}

TEST(TriCycLeTest, FilterIsRespected) {
  util::Rng rng(21);
  std::vector<uint32_t> degrees(100, 4);
  // Forbid any edge touching node 0.
  TriCycLeOptions options;
  options.post_process = false;  // post-processing ignores the filter
  options.filter = [](graph::NodeId u, graph::NodeId v, util::Rng&) {
    return u != 0 && v != 0;
  };
  auto result = GenerateTriCycLe(degrees, 60, rng, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().graph.Degree(0), 0u);
}

// -------------------------------------------------------------------- TCL --

TEST(TclTest, ValidatesRho) {
  util::Rng rng(22);
  std::vector<uint32_t> degrees(10, 2);
  EXPECT_FALSE(GenerateTcl(degrees, -0.1, rng).ok());
  EXPECT_FALSE(GenerateTcl(degrees, 1.1, rng).ok());
}

TEST(TclTest, KeepsEdgeCount) {
  util::Rng rng(23);
  std::vector<uint32_t> degrees(150, 6);
  auto g = GenerateTcl(degrees, 0.4, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(static_cast<double>(g.value().num_edges()), 450.0, 45.0);
}

TEST(TclTest, HigherRhoMoreTriangles) {
  util::Rng rng(24);
  std::vector<uint32_t> degrees(300, 8);
  double tri_lo = 0.0, tri_hi = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    tri_lo += static_cast<double>(
        graph::CountTriangles(GenerateTcl(degrees, 0.05, rng).value()));
    tri_hi += static_cast<double>(
        graph::CountTriangles(GenerateTcl(degrees, 0.9, rng).value()));
  }
  EXPECT_GT(tri_hi, tri_lo * 1.5);
}

TEST(TclTest, FitRhoRecoversOrdering) {
  // Graphs generated with high rho must fit a larger rho than low-rho
  // graphs (exact recovery is not expected from EM on samples).
  util::Rng rng(25);
  std::vector<uint32_t> degrees(400, 8);
  auto g_low = GenerateTcl(degrees, 0.1, rng);
  auto g_high = GenerateTcl(degrees, 0.9, rng);
  ASSERT_TRUE(g_low.ok());
  ASSERT_TRUE(g_high.ok());
  const double rho_low = FitTclRho(g_low.value(), rng);
  const double rho_high = FitTclRho(g_high.value(), rng);
  EXPECT_GT(rho_high, rho_low);
}

TEST(TclTest, FitRhoInUnitInterval) {
  util::Rng rng(26);
  graph::Graph g = ErdosRenyiGnp(100, 0.08, rng);
  const double rho = FitTclRho(g, rng);
  EXPECT_GE(rho, 0.0);
  EXPECT_LE(rho, 1.0);
}

// --------------------------------------------------------------- HolmeKim --

TEST(HolmeKimTest, ValidatesOptions) {
  util::Rng rng(27);
  HolmeKimOptions options;
  options.edges_per_node = 0.5;
  EXPECT_FALSE(HolmeKim(100, options, rng).ok());
  options.edges_per_node = 3;
  options.triad_probability = 1.5;
  EXPECT_FALSE(HolmeKim(100, options, rng).ok());
  EXPECT_FALSE(HolmeKim(3, HolmeKimOptions{}, rng).ok());
}

TEST(HolmeKimTest, ConnectedByConstruction) {
  util::Rng rng(28);
  HolmeKimOptions options;
  options.edges_per_node = 2.5;
  options.triad_probability = 0.6;
  auto g = HolmeKim(500, options, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(graph::IsConnected(g.value()));
}

TEST(HolmeKimTest, AverageDegreeTracksTwiceEdgesPerNode) {
  util::Rng rng(29);
  HolmeKimOptions options;
  options.edges_per_node = 3.45;
  auto g = HolmeKim(2000, options, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(graph::AverageDegree(g.value()), 2.0 * 3.45, 0.5);
}

TEST(HolmeKimTest, HeavyTailedDegrees) {
  util::Rng rng(30);
  HolmeKimOptions options;
  options.edges_per_node = 3;
  auto g = HolmeKim(3000, options, rng);
  ASSERT_TRUE(g.ok());
  // Preferential attachment: the max degree should far exceed the mean.
  EXPECT_GT(g.value().MaxDegree(), 8 * graph::AverageDegree(g.value()));
}

TEST(HolmeKimTest, TriadProbabilityRaisesClustering) {
  util::Rng rng(31);
  HolmeKimOptions flat;
  flat.edges_per_node = 3;
  flat.triad_probability = 0.0;
  HolmeKimOptions clustered = flat;
  clustered.triad_probability = 0.9;
  const double c_flat =
      graph::AverageLocalClustering(HolmeKim(1500, flat, rng).value());
  const double c_clustered =
      graph::AverageLocalClustering(HolmeKim(1500, clustered, rng).value());
  EXPECT_GT(c_clustered, c_flat * 2.0);
}

TEST(HolmeKimTest, CalibrationApproachesTarget) {
  util::Rng rng(32);
  const double target = 0.15;
  HolmeKimOptions options;
  options.edges_per_node = 3.0;
  options.triad_probability =
      CalibrateTriadProbability(options, target, 1500, rng);
  const double achieved =
      graph::AverageLocalClustering(HolmeKim(1500, options, rng).value());
  EXPECT_NEAR(achieved, target, 0.06);
}

TEST(HolmeKimTest, MaxDegreeCapHolds) {
  util::Rng rng(33);
  HolmeKimOptions options;
  options.edges_per_node = 4;
  options.max_degree = 25;
  auto g = HolmeKim(2000, options, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_LE(g.value().MaxDegree(), 25u);
  EXPECT_TRUE(graph::IsConnected(g.value()));
}

}  // namespace
}  // namespace agmdp::models

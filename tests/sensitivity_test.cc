// Empirical verification of the sensitivity claims the privacy proofs rest
// on. For randomly generated graphs and random neighboring perturbations
// (Definition 1: one edge, or one node's attribute vector), the L1 change of
// each query must stay within the bound used to calibrate its noise:
//
//   * Q_X under attribute change:              <= 2        (Theorem 8)
//   * Q_F ∘ µ(·, k) under edge change:         <= 3        (Proposition 1)
//   * Q_F ∘ µ(·, k) under attribute change:    <= 2k       (Proposition 1)
//   * triangle count under edge change:        <= ladder I_0 per graph
//   * sorted degree sequence under edge change: <= 2       (Theorem 9)
//
// These are necessary conditions, not proofs — but they catch any
// implementation drift (e.g. a wrong truncation order) that would silently
// void the guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/agm/theta_f.h"
#include "src/agm/theta_x.h"
#include "src/dp/edge_truncation.h"
#include "src/graph/degree.h"
#include "src/graph/triangle_count.h"
#include "src/models/erdos_renyi.h"
#include "src/util/rng.h"

namespace agmdp {
namespace {

double L1Diff(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

graph::AttributedGraph RandomInput(graph::NodeId n, double p, int w,
                                   util::Rng& rng) {
  graph::AttributedGraph g(models::ErdosRenyiGnp(n, p, rng), w);
  std::vector<graph::AttrConfig> attrs(n);
  for (auto& a : attrs) {
    a = static_cast<graph::AttrConfig>(
        rng.UniformIndex(graph::NumNodeConfigs(w)));
  }
  EXPECT_TRUE(g.SetAttributes(attrs).ok());
  return g;
}

// Flips one random node to a different random attribute configuration.
graph::AttributedGraph FlipOneAttribute(const graph::AttributedGraph& g,
                                        util::Rng& rng) {
  graph::AttributedGraph h = g;
  const auto v = static_cast<graph::NodeId>(rng.UniformIndex(g.num_nodes()));
  const uint32_t configs = graph::NumNodeConfigs(g.num_attributes());
  graph::AttrConfig next = g.attribute(v);
  while (next == g.attribute(v)) {
    next = static_cast<graph::AttrConfig>(rng.UniformIndex(configs));
  }
  h.set_attribute(v, next);
  return h;
}

// Toggles one random node pair (add if absent, remove if present).
graph::AttributedGraph ToggleOneEdge(const graph::AttributedGraph& g,
                                     util::Rng& rng) {
  graph::AttributedGraph h = g;
  for (;;) {
    const auto u = static_cast<graph::NodeId>(rng.UniformIndex(g.num_nodes()));
    const auto v = static_cast<graph::NodeId>(rng.UniformIndex(g.num_nodes()));
    if (u == v) continue;
    if (h.structure().HasEdge(u, v)) {
      h.structure().RemoveEdge(u, v);
    } else {
      h.structure().AddEdge(u, v);
    }
    return h;
  }
}

class SensitivityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SensitivityTest, QxAttributeChangeBoundedByTwo) {
  util::Rng rng(GetParam());
  graph::AttributedGraph g = RandomInput(60, 0.1, 2, rng);
  for (int trial = 0; trial < 30; ++trial) {
    graph::AttributedGraph h = FlipOneAttribute(g, rng);
    EXPECT_LE(L1Diff(agm::ComputeAttributeCounts(g),
                     agm::ComputeAttributeCounts(h)),
              2.0 + 1e-9);
  }
}

TEST_P(SensitivityTest, QxEdgeChangeHasNoEffect) {
  util::Rng rng(GetParam() + 100);
  graph::AttributedGraph g = RandomInput(60, 0.1, 2, rng);
  graph::AttributedGraph h = ToggleOneEdge(g, rng);
  EXPECT_DOUBLE_EQ(L1Diff(agm::ComputeAttributeCounts(g),
                          agm::ComputeAttributeCounts(h)),
                   0.0);
}

TEST_P(SensitivityTest, TruncatedQfEdgeChangeBoundedByThree) {
  util::Rng rng(GetParam() + 200);
  graph::AttributedGraph g = RandomInput(50, 0.15, 2, rng);
  for (uint32_t k : {3u, 5u, 9u}) {
    for (int trial = 0; trial < 15; ++trial) {
      graph::AttributedGraph h = ToggleOneEdge(g, rng);
      const double diff = L1Diff(
          agm::ComputeConnectionCounts(dp::TruncateEdges(g, k)),
          agm::ComputeConnectionCounts(dp::TruncateEdges(h, k)));
      EXPECT_LE(diff, 3.0 + 1e-9) << "k=" << k;
    }
  }
}

TEST_P(SensitivityTest, TruncatedQfAttributeChangeBoundedByTwoK) {
  util::Rng rng(GetParam() + 300);
  graph::AttributedGraph g = RandomInput(50, 0.15, 2, rng);
  for (uint32_t k : {2u, 4u, 8u}) {
    const graph::AttributedGraph truncated_g = dp::TruncateEdges(g, k);
    for (int trial = 0; trial < 15; ++trial) {
      graph::AttributedGraph h = FlipOneAttribute(g, rng);
      // Attribute changes do not move edges, so truncation commutes and the
      // count shift is bounded by the changed node's (truncated) degree,
      // twice.
      const double diff = L1Diff(
          agm::ComputeConnectionCounts(truncated_g),
          agm::ComputeConnectionCounts(dp::TruncateEdges(h, k)));
      EXPECT_LE(diff, 2.0 * k + 1e-9) << "k=" << k;
    }
  }
}

TEST_P(SensitivityTest, UntruncatedQfAttributeChangeCanExceedTwoK) {
  // Sanity check that truncation is actually load-bearing: without it, a
  // high-degree node's attribute flip moves the counts by ~2 * degree.
  util::Rng rng(GetParam() + 400);
  graph::AttributedGraph g(graph::Graph(30), 1);
  for (graph::NodeId v = 1; v < 30; ++v) g.structure().AddEdge(0, v);
  ASSERT_TRUE(g.SetAttributes(std::vector<graph::AttrConfig>(30, 0)).ok());
  graph::AttributedGraph h = g;
  h.set_attribute(0, 1);  // flip the hub
  const double diff = L1Diff(agm::ComputeConnectionCounts(g),
                             agm::ComputeConnectionCounts(h));
  EXPECT_DOUBLE_EQ(diff, 2.0 * 29);  // full hub degree, both directions
}

TEST_P(SensitivityTest, TriangleCountEdgeChangeWithinLadderBase) {
  util::Rng rng(GetParam() + 500);
  graph::AttributedGraph g = RandomInput(40, 0.2, 1, rng);
  auto base = graph::MaxCommonNeighborCount(g.structure(), 1u << 30);
  ASSERT_TRUE(base.ok());
  const auto before =
      static_cast<int64_t>(graph::CountTriangles(g.structure()));
  for (int trial = 0; trial < 30; ++trial) {
    graph::AttributedGraph h = ToggleOneEdge(g, rng);
    const auto after =
        static_cast<int64_t>(graph::CountTriangles(h.structure()));
    EXPECT_LE(std::llabs(after - before),
              static_cast<int64_t>(base.value()));
  }
}

TEST_P(SensitivityTest, SortedDegreeSequenceEdgeChangeBoundedByTwo) {
  util::Rng rng(GetParam() + 600);
  graph::AttributedGraph g = RandomInput(60, 0.1, 1, rng);
  std::vector<uint32_t> s1 = graph::SortedDegreeSequence(g.structure());
  for (int trial = 0; trial < 30; ++trial) {
    graph::AttributedGraph h = ToggleOneEdge(g, rng);
    std::vector<uint32_t> s2 = graph::SortedDegreeSequence(h.structure());
    double diff = 0.0;
    for (size_t i = 0; i < s1.size(); ++i) {
      diff += std::fabs(static_cast<double>(s1[i]) -
                        static_cast<double>(s2[i]));
    }
    EXPECT_LE(diff, 2.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SensitivityTest,
                         ::testing::Values(7u, 77u, 777u, 7777u));

}  // namespace
}  // namespace agmdp

// Contract tests for the unified release pipeline: budget-ledger exactness
// across every registered structural model, thread-count invariance of the
// sampler (the determinism contract of DESIGN.md), and registry behavior.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/agm/agm_sampler.h"
#include "src/agm/theta_f.h"
#include "src/datasets/datasets.h"
#include "src/pipeline/release_pipeline.h"
#include "src/util/rng.h"

namespace agmdp {
namespace {

const graph::AttributedGraph& Input() {
  static const graph::AttributedGraph* input = [] {
    auto g = datasets::GenerateDataset(datasets::DatasetId::kPetster, 0.2, 3);
    AGMDP_CHECK_MSG(g.ok(), g.status().ToString().c_str());
    return new graph::AttributedGraph(std::move(g).value());
  }();
  return *input;
}

bool SameGraph(const graph::AttributedGraph& a,
               const graph::AttributedGraph& b) {
  return a.num_nodes() == b.num_nodes() &&
         a.attributes() == b.attributes() &&
         a.structure().CanonicalEdges() == b.structure().CanonicalEdges();
}

// ------------------------------------------------------------- registry --

TEST(ModelRegistryTest, AllModelsRegisteredAndResolvable) {
  const std::vector<std::string> names = pipeline::StructuralModelNames();
  for (const char* expected :
       {"tricycle", "fcl", "bter", "holme_kim", "erdos_renyi"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
    EXPECT_NE(pipeline::FindStructuralModel(expected), nullptr) << expected;
  }
  EXPECT_EQ(pipeline::FindStructuralModel("no_such_model"), nullptr);
}

TEST(ModelRegistryTest, UnknownModelFailsCleanly) {
  pipeline::PipelineConfig config;
  config.model = "no_such_model";
  util::Rng rng(1);
  auto result = pipeline::RunPrivateRelease(Input(), config, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  // The error lists the registered names to guide the caller.
  EXPECT_NE(result.status().message().find("tricycle"), std::string::npos);
}

// ------------------------------------------------------- budget ledgers --

// The tentpole invariant: for every registered model, the spends recorded
// by RunPrivateRelease sum to exactly the configured global epsilon.
TEST(ReleasePipelineTest, LedgerSumsExactlyToEpsilonForEveryModel) {
  for (const std::string& model : pipeline::StructuralModelNames()) {
    pipeline::PipelineConfig config;
    config.epsilon = std::log(2.0);
    config.model = model;
    config.sample.acceptance_iterations = 1;
    util::Rng rng(7);
    auto result = pipeline::RunPrivateRelease(Input(), config, rng);
    ASSERT_TRUE(result.ok()) << model << ": " << result.status().ToString();

    double sum = 0.0;
    for (const auto& [label, eps] : result.value().ledger) {
      EXPECT_GT(eps, 0.0) << model << "/" << label;
      sum += eps;
    }
    EXPECT_DOUBLE_EQ(sum, config.epsilon) << model;
    EXPECT_DOUBLE_EQ(result.value().epsilon_spent, config.epsilon) << model;
    EXPECT_DOUBLE_EQ(result.value().epsilon_budget, config.epsilon) << model;

    // Models with a triangle target spend on four stages, the rest on three.
    const bool triangles =
        pipeline::FindStructuralModel(model)->needs_triangles;
    EXPECT_EQ(result.value().ledger.size(), triangles ? 4u : 3u) << model;

    // Well-formed release.
    EXPECT_EQ(result.value().graph.num_nodes(), Input().num_nodes());
    EXPECT_GT(result.value().graph.num_edges(), 0u) << model;
    EXPECT_EQ(result.value().model, model);
  }
}

TEST(ReleasePipelineTest, FitAloneCarriesFullLedgerAndStageTimings) {
  pipeline::PipelineConfig config;
  config.epsilon = 1.0;
  config.model = "tricycle";
  util::Rng rng(11);
  auto fit = pipeline::FitPrivateParams(Input(), config, rng);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();

  double sum = 0.0;
  for (const auto& [label, eps] : fit.value().ledger) sum += eps;
  EXPECT_DOUBLE_EQ(sum, config.epsilon);
  ASSERT_EQ(fit.value().stage_seconds.size(), 4u);
  EXPECT_EQ(fit.value().stage_seconds[0].stage, "theta_x");
  EXPECT_EQ(fit.value().stage_seconds[3].stage, "triangles");
  EXPECT_EQ(fit.value().params.degree_sequence.size(), Input().num_nodes());
}

TEST(ReleasePipelineTest, ReleaseRecordsSampleStageAndTotalTime) {
  pipeline::PipelineConfig config;
  config.model = "fcl";
  config.sample.acceptance_iterations = 1;
  util::Rng rng(13);
  auto result = pipeline::RunPrivateRelease(Input(), config, rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result.value().stage_seconds.empty());
  EXPECT_EQ(result.value().stage_seconds.back().stage, "sample");
  EXPECT_GE(result.value().total_seconds, 0.0);
}

TEST(ReleasePipelineTest, OverdrawnSplitIsRejected) {
  pipeline::PipelineConfig config;
  config.epsilon = 0.5;
  config.split.theta_x = 0.4;
  config.split.theta_f = 0.4;
  config.split.degree_seq = 0.4;
  util::Rng rng(17);
  auto result = pipeline::RunPrivateRelease(Input(), config, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------- determinism --

// Same seed => identical synthetic graph at 1, 2 and 4 sampler threads,
// for both the sharded-FCL hot path and the TriCycLe path (whose Θ'F
// measurement is the parallel part).
TEST(SamplerDeterminismTest, IdenticalGraphAcross124Threads) {
  for (const std::string& model : {std::string("fcl"), std::string("tricycle")}) {
    pipeline::PipelineConfig fit_config;
    fit_config.model = model;
    util::Rng fit_rng(23);
    auto fit = pipeline::FitPrivateParams(Input(), fit_config, fit_rng);
    ASSERT_TRUE(fit.ok()) << fit.status().ToString();

    graph::AttributedGraph reference;
    for (int threads : {1, 2, 4}) {
      pipeline::PipelineConfig config;
      config.model = model;
      config.sample.acceptance_iterations = 2;
      config.sample.threads = threads;
      util::Rng rng(42);
      auto sampled = pipeline::SampleRelease(fit.value().params, config, rng);
      ASSERT_TRUE(sampled.ok()) << sampled.status().ToString();
      if (threads == 1) {
        reference = std::move(sampled).value();
      } else {
        EXPECT_TRUE(SameGraph(reference, sampled.value()))
            << model << " diverged at " << threads << " threads";
      }
    }
    EXPECT_GT(reference.num_edges(), 0u);
  }
}

TEST(SamplerDeterminismTest, EndToEndReleaseIsThreadCountInvariant) {
  graph::AttributedGraph reference;
  for (int threads : {1, 4}) {
    pipeline::PipelineConfig config;
    config.model = "fcl";
    config.sample.acceptance_iterations = 2;
    config.sample.threads = threads;
    util::Rng rng(29);
    auto result = pipeline::RunPrivateRelease(Input(), config, rng);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (threads == 1) {
      reference = std::move(result).value().graph;
    } else {
      EXPECT_TRUE(SameGraph(reference, result.value().graph));
    }
  }
}

TEST(SamplerDeterminismTest, ParallelThetaFMatchesSequential) {
  const std::vector<double> expected = agm::ComputeThetaF(Input());
  for (int threads : {1, 2, 4, 0}) {
    const std::vector<double> measured = agm::MeasureThetaF(Input(), threads);
    ASSERT_EQ(measured.size(), expected.size());
    for (size_t y = 0; y < expected.size(); ++y) {
      EXPECT_DOUBLE_EQ(measured[y], expected[y]) << "threads=" << threads;
    }
  }
}

// FNV-1a over the canonical edge list, the attribute vector and the graph
// dimensions — a stable fingerprint of a released graph.
uint64_t GraphChecksum(const graph::AttributedGraph& g) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xffu;
      h *= 1099511628211ULL;
    }
  };
  mix(g.num_nodes());
  mix(static_cast<uint64_t>(g.num_attributes()));
  for (const graph::Edge& e : g.structure().CanonicalEdges()) {
    mix(e.u);
    mix(e.v);
  }
  for (graph::AttrConfig a : g.attributes()) mix(a);
  return h;
}

// Golden-release regression: a fixed seed and a fixed PipelineConfig must
// reproduce the same checksummed released edge list at 1, 2 and 4 sampler
// threads and across repeated runs, with a ledger that sums exactly to the
// configured epsilon every time.
TEST(GoldenReleaseTest, ChecksummedReleaseAndLedgerReproduceAcrossThreads) {
  constexpr uint64_t kSeed = 20260730;
  for (const std::string& model :
       {std::string("fcl"), std::string("tricycle")}) {
    uint64_t golden = 0;
    for (int threads : {1, 2, 4, /*rerun at 1:*/ 1}) {
      pipeline::PipelineConfig config;
      config.epsilon = std::log(2.0);
      config.model = model;
      config.sample.acceptance_iterations = 2;
      config.sample.threads = threads;
      util::Rng rng(kSeed);
      auto result = pipeline::RunPrivateRelease(Input(), config, rng);
      ASSERT_TRUE(result.ok()) << model << ": " << result.status().ToString();

      const uint64_t checksum = GraphChecksum(result.value().graph);
      if (golden == 0) {
        golden = checksum;
      } else {
        EXPECT_EQ(checksum, golden)
            << model << " diverged at threads=" << threads;
      }

      // The epsilon ledger must sum exactly (not approximately) to the
      // budget on every run.
      double sum = 0.0;
      for (const auto& [label, eps] : result.value().ledger) sum += eps;
      EXPECT_DOUBLE_EQ(sum, config.epsilon) << model;
      EXPECT_DOUBLE_EQ(result.value().epsilon_spent, config.epsilon) << model;
    }
    EXPECT_NE(golden, 0u) << model;
  }
}

TEST(SamplerDeterminismTest, SubstreamIsPureAndDistinct) {
  util::Rng a = util::Rng::Substream(123, 0);
  util::Rng b = util::Rng::Substream(123, 0);
  util::Rng c = util::Rng::Substream(123, 1);
  bool differs = false;
  for (int i = 0; i < 16; ++i) {
    const uint64_t x = a.Next();
    EXPECT_EQ(x, b.Next());
    if (x != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace agmdp

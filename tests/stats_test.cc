#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/graph.h"
#include "src/models/erdos_renyi.h"
#include "src/stats/ccdf.h"
#include "src/stats/metrics.h"
#include "src/stats/summary.h"
#include "src/util/rng.h"

namespace agmdp::stats {
namespace {

// ----------------------------------------------------------------- Metrics --

TEST(MetricsTest, RelativeError) {
  EXPECT_DOUBLE_EQ(RelativeError(11.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(9.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(5.0, 0.0, 1.0), 5.0);  // floor applies
}

TEST(MetricsTest, MaeAndMre) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(a, b), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(MeanRelativeError(a, b), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({}, {}), 0.0);
}

TEST(MetricsTest, HellingerKnownValues) {
  EXPECT_DOUBLE_EQ(HellingerDistance({1.0, 0.0}, {1.0, 0.0}), 0.0);
  // Disjoint distributions have distance 1.
  EXPECT_NEAR(HellingerDistance({1.0, 0.0}, {0.0, 1.0}), 1.0, 1e-12);
  // Pads shorter vector with zeros.
  EXPECT_NEAR(HellingerDistance({1.0}, {0.0, 1.0}), 1.0, 1e-12);
}

TEST(MetricsTest, HellingerSymmetric) {
  std::vector<double> p = {0.2, 0.3, 0.5};
  std::vector<double> q = {0.5, 0.25, 0.25};
  EXPECT_DOUBLE_EQ(HellingerDistance(p, q), HellingerDistance(q, p));
  EXPECT_GT(HellingerDistance(p, q), 0.0);
  EXPECT_LT(HellingerDistance(p, q), 1.0);
}

TEST(MetricsTest, KsIdenticalSequencesIsZero) {
  std::vector<uint32_t> s = {1, 2, 2, 3, 10};
  EXPECT_DOUBLE_EQ(KsStatistic(s, s), 0.0);
}

TEST(MetricsTest, KsDisjointSupportsIsOne) {
  EXPECT_DOUBLE_EQ(KsStatistic({1, 1, 1}, {5, 5, 5}), 1.0);
}

TEST(MetricsTest, KsKnownValue) {
  // F1 jumps to 1 at 1; F2 has 0.5 at 1 and 1 at 2; max gap is 0.5.
  EXPECT_DOUBLE_EQ(KsStatistic({1, 1}, {1, 2}), 0.5);
}

TEST(MetricsTest, KsHandlesDifferentLengths) {
  std::vector<uint32_t> s1 = {1, 2, 3, 4, 5, 6};
  std::vector<uint32_t> s2 = {1, 2, 3};
  const double ks = KsStatistic(s1, s2);
  EXPECT_GE(ks, 0.0);
  EXPECT_LE(ks, 1.0);
}

TEST(MetricsTest, DegreeDistributionSumsToOne) {
  util::Rng rng(1);
  graph::Graph g = models::ErdosRenyiGnp(100, 0.05, rng);
  std::vector<double> dist = DegreeDistribution(g);
  double sum = 0.0;
  for (double x : dist) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(MetricsTest, DegreeHellingerZeroForSameGraph) {
  util::Rng rng(2);
  graph::Graph g = models::ErdosRenyiGnp(80, 0.05, rng);
  EXPECT_DOUBLE_EQ(DegreeHellinger(g, g), 0.0);
}

// -------------------------------------------------------------------- CCDF --

TEST(CcdfTest, SimpleSeries) {
  auto series = Ccdf({1.0, 2.0, 2.0, 3.0});
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].first, 1.0);
  EXPECT_DOUBLE_EQ(series[0].second, 0.75);  // 3 of 4 exceed 1
  EXPECT_DOUBLE_EQ(series[1].second, 0.25);  // 1 of 4 exceeds 2
  EXPECT_DOUBLE_EQ(series[2].second, 0.0);   // none exceed 3
}

TEST(CcdfTest, EmptyInput) { EXPECT_TRUE(Ccdf({}).empty()); }

TEST(CcdfTest, MonotoneNonIncreasing) {
  util::Rng rng(3);
  std::vector<double> values(500);
  for (double& v : values) v = rng.UniformDouble() * 10;
  auto series = Ccdf(values);
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_LT(series[i - 1].first, series[i].first);
    EXPECT_GE(series[i - 1].second, series[i].second);
  }
}

TEST(CcdfTest, DownsampleKeepsEndpoints) {
  std::vector<double> values(1000);
  for (size_t i = 0; i < values.size(); ++i) values[i] = static_cast<double>(i);
  auto series = Ccdf(values);
  auto thin = DownsampleCcdf(series, 20);
  ASSERT_LE(thin.size(), 20u);
  EXPECT_DOUBLE_EQ(thin.front().first, series.front().first);
  EXPECT_DOUBLE_EQ(thin.back().first, series.back().first);
}

TEST(CcdfTest, DownsampleNoopWhenSmall) {
  auto series = Ccdf({1.0, 2.0});
  EXPECT_EQ(DownsampleCcdf(series, 10).size(), series.size());
}

// ----------------------------------------------------------------- Summary --

TEST(SummaryTest, TriangleGraph) {
  graph::Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  GraphSummary s = Summarize(g);
  EXPECT_EQ(s.num_nodes, 3u);
  EXPECT_EQ(s.num_edges, 3u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0);
  EXPECT_EQ(s.triangles, 1u);
  EXPECT_DOUBLE_EQ(s.avg_local_clustering, 1.0);
  EXPECT_DOUBLE_EQ(s.global_clustering, 1.0);
}

TEST(SummaryTest, FormatContainsName) {
  GraphSummary s;
  s.num_nodes = 5;
  std::string line = FormatSummary("lastfm", s);
  EXPECT_NE(line.find("lastfm"), std::string::npos);
  EXPECT_NE(line.find("n=5"), std::string::npos);
}

TEST(UtilityErrorsTest, AccumulateAndAverage) {
  UtilityErrors a;
  a.degree_ks = 0.2;
  a.edges_re = 0.1;
  UtilityErrors b;
  b.degree_ks = 0.4;
  b.edges_re = 0.3;
  a += b;
  UtilityErrors mean = a / 2.0;
  EXPECT_DOUBLE_EQ(mean.degree_ks, 0.3);
  EXPECT_DOUBLE_EQ(mean.edges_re, 0.2);
}

TEST(CompareGraphsTest, IdenticalGraphsHaveZeroError) {
  util::Rng rng(4);
  graph::AttributedGraph g(models::ErdosRenyiGnp(60, 0.1, rng), 2);
  std::vector<graph::AttrConfig> attrs(60);
  for (auto& a : attrs) a = static_cast<graph::AttrConfig>(rng.UniformIndex(4));
  ASSERT_TRUE(g.SetAttributes(attrs).ok());
  UtilityErrors e = CompareGraphs(g, g);
  EXPECT_DOUBLE_EQ(e.theta_f_mae, 0.0);
  EXPECT_DOUBLE_EQ(e.theta_f_hellinger, 0.0);
  EXPECT_DOUBLE_EQ(e.degree_ks, 0.0);
  EXPECT_DOUBLE_EQ(e.degree_hellinger, 0.0);
  EXPECT_DOUBLE_EQ(e.triangles_re, 0.0);
  EXPECT_DOUBLE_EQ(e.edges_re, 0.0);
}

TEST(CompareGraphsTest, DetectsStructuralDifferences) {
  util::Rng rng(5);
  graph::AttributedGraph a(models::ErdosRenyiGnp(60, 0.05, rng), 1);
  graph::AttributedGraph b(models::ErdosRenyiGnp(60, 0.2, rng), 1);
  UtilityErrors e = CompareGraphs(a, b);
  EXPECT_GT(e.degree_ks, 0.0);
  EXPECT_GT(e.edges_re, 0.0);
}

}  // namespace
}  // namespace agmdp::stats

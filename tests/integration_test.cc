// End-to-end integration tests: dataset generation -> AGM-DP synthesis ->
// utility evaluation -> persistence, i.e. the full workflow of Figure 4.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "src/agm/agm_dp.h"
#include "src/agm/theta_f.h"
#include "src/datasets/datasets.h"
#include "src/graph/graph_io.h"
#include "src/stats/metrics.h"
#include "src/stats/summary.h"
#include "src/util/rng.h"

namespace agmdp {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Half-scale Last.fm: large enough that Ladder noise on the triangle
    // count stays well below the FCL-vs-TriCycLe clustering gap.
    auto g = datasets::GenerateDataset(datasets::DatasetId::kLastFm, 0.5, 7);
    ASSERT_TRUE(g.ok());
    input_ = new graph::AttributedGraph(std::move(g).value());
  }
  static void TearDownTestSuite() {
    delete input_;
    input_ = nullptr;
  }

  static graph::AttributedGraph* input_;
};

graph::AttributedGraph* EndToEndTest::input_ = nullptr;

TEST_F(EndToEndTest, TriCycLePipelinePreservesUtility) {
  util::Rng rng(101);
  agm::AgmDpOptions options;
  options.epsilon = std::log(3.0);
  options.sample.acceptance_iterations = 2;
  auto result = agm::SynthesizeAgmDp(*input_, options, rng);
  ASSERT_TRUE(result.ok());

  stats::UtilityErrors errors =
      stats::CompareGraphs(*input_, result.value().graph);
  // Coarse utility gates mirroring the shape of Table 2 at eps = ln 3 (wide
  // tolerances: a single trial on a quarter-scale stand-in).
  EXPECT_LT(errors.theta_f_hellinger, 0.45);
  EXPECT_LT(errors.degree_ks, 0.35);
  EXPECT_LT(errors.edges_re, 0.30);
  // The uniform-ΘF baseline should be beaten.
  std::vector<double> uniform(10, 0.1);
  const double baseline = stats::HellingerDistance(
      uniform, agm::ComputeThetaF(*input_));
  EXPECT_LT(errors.theta_f_hellinger, baseline + 0.05);
}

TEST_F(EndToEndTest, TriCycLeBeatsFclOnClustering) {
  // The paper's headline: TriCycLe reproduces clustering, FCL cannot.
  util::Rng rng(103);
  agm::AgmDpOptions tri;
  tri.epsilon = std::log(3.0);
  tri.sample.acceptance_iterations = 2;
  agm::AgmDpOptions fcl = tri;
  fcl.model = agm::StructuralModelKind::kFcl;

  double tri_err = 0.0, fcl_err = 0.0;
  for (int trial = 0; trial < 3; ++trial) {
    auto rt = agm::SynthesizeAgmDp(*input_, tri, rng);
    auto rf = agm::SynthesizeAgmDp(*input_, fcl, rng);
    ASSERT_TRUE(rt.ok());
    ASSERT_TRUE(rf.ok());
    tri_err += stats::CompareGraphs(*input_, rt.value().graph).triangles_re;
    fcl_err += stats::CompareGraphs(*input_, rf.value().graph).triangles_re;
  }
  EXPECT_LT(tri_err, fcl_err);
}

TEST_F(EndToEndTest, SyntheticGraphRoundTripsThroughDisk) {
  util::Rng rng(105);
  agm::AgmDpOptions options;
  options.epsilon = 1.0;
  options.sample.acceptance_iterations = 1;
  auto result = agm::SynthesizeAgmDp(*input_, options, rng);
  ASSERT_TRUE(result.ok());

  const std::string prefix = testing::TempDir() + "/synthetic_release";
  ASSERT_TRUE(graph::WriteAttributedGraph(result.value().graph, prefix).ok());
  auto back = graph::ReadAttributedGraph(prefix);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_edges(), result.value().graph.num_edges());
  EXPECT_EQ(back.value().attributes(), result.value().graph.attributes());
  std::remove((prefix + ".edges").c_str());
  std::remove((prefix + ".attrs").c_str());
}

TEST_F(EndToEndTest, StrongerPrivacyDegradesGracefully) {
  // Across a 50x epsilon range the error should not blow up catastrophically
  // and should generally grow as epsilon shrinks.
  double err_weak = 0.0, err_strong = 0.0;
  for (int trial = 0; trial < 3; ++trial) {
    util::Rng rng(200 + trial);
    agm::AgmDpOptions weak;
    weak.epsilon = 5.0;
    weak.sample.acceptance_iterations = 1;
    agm::AgmDpOptions strong = weak;
    strong.epsilon = 0.1;
    auto rw = agm::SynthesizeAgmDp(*input_, weak, rng);
    auto rs = agm::SynthesizeAgmDp(*input_, strong, rng);
    ASSERT_TRUE(rw.ok());
    ASSERT_TRUE(rs.ok());
    err_weak +=
        stats::CompareGraphs(*input_, rw.value().graph).theta_f_hellinger;
    err_strong +=
        stats::CompareGraphs(*input_, rs.value().graph).theta_f_hellinger;
  }
  EXPECT_LT(err_weak, err_strong);
}

TEST(IntegrationSmokeTest, AllDatasetsGenerateAtSmallScale) {
  for (datasets::DatasetId id : datasets::AllDatasets()) {
    const double scale =
        id == datasets::DatasetId::kPokec ? 0.004 : 0.15;
    auto g = datasets::GenerateDataset(id, scale, 3);
    ASSERT_TRUE(g.ok()) << datasets::PaperSpec(id).name;
    EXPECT_GT(g.value().num_edges(), 0u);
  }
}

}  // namespace
}  // namespace agmdp

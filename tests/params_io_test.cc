// Regression tests for the hardened params reader/writer: NaN, negative
// and wrapped-negative values, truncated files, and absurd length fields
// must come back as util::Status errors — never as garbage AgmParams.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include "src/agm/params_io.h"

namespace agmdp::agm {
namespace {

AgmParams ValidParams() {
  AgmParams params;
  params.w = 2;
  params.theta_x = {0.4, 0.3, 0.2, 0.1};
  params.theta_f.assign(10, 0.1);
  params.degree_sequence = {1, 2, 2, 3, 7};
  params.target_triangles = 9;
  return params;
}

std::string WriteFile(const std::string& name, const std::string& body) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::trunc);
  out << body;
  return path;
}

TEST(ParamsValidationTest, AcceptsValidParams) {
  EXPECT_TRUE(ValidateAgmParams(ValidParams()).ok());
}

TEST(ParamsValidationTest, RejectsNanNegativeAndMismatchedParams) {
  AgmParams params = ValidParams();
  params.theta_x[1] = std::nan("");
  EXPECT_FALSE(ValidateAgmParams(params).ok());

  params = ValidParams();
  params.theta_f[3] = -0.5;
  EXPECT_FALSE(ValidateAgmParams(params).ok());

  params = ValidParams();
  params.theta_x[0] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ValidateAgmParams(params).ok());

  params = ValidParams();
  params.w = 21;
  EXPECT_FALSE(ValidateAgmParams(params).ok());

  // Regression: at w = 17 the true edge-config count (8,590,000,128)
  // overflows NumEdgeConfigs's uint32 range and truncates to 65,536. A
  // crafted parameter set sized to the *truncated* dimensions used to pass
  // validation and drive out-of-bounds theta_f reads in the sampler; the
  // w <= 16 cap must reject it outright.
  params = ValidParams();
  params.w = 17;
  params.theta_x.assign(131072, 1.0 / 131072);  // NumNodeConfigs(17)
  params.theta_f.assign(65536, 1.0 / 65536);    // truncated NumEdgeConfigs
  EXPECT_FALSE(ValidateAgmParams(params).ok());

  params = ValidParams();
  params.degree_sequence.clear();
  EXPECT_FALSE(ValidateAgmParams(params).ok());
}

TEST(ParamsIoHardeningTest, WriteRejectsGarbageParams) {
  AgmParams params = ValidParams();
  params.theta_x[0] = std::nan("");
  const std::string path = testing::TempDir() + "/params_nan_write.txt";
  auto status = WriteAgmParams(params, path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
}

TEST(ParamsIoHardeningTest, ReadRejectsNanTheta) {
  // istream extraction happily parses "nan" into a double; the validator
  // must catch it.
  const std::string path = WriteFile(
      "params_nan.txt",
      "agmdp-params v1\nw 1\ntheta_x 2 nan 0.5\ntheta_f 3 0.3 0.3 0.4\n"
      "degrees 2 1 1\ntriangles 0\n");
  auto result = ReadAgmParams(path);
  ASSERT_FALSE(result.ok());
  std::remove(path.c_str());
}

TEST(ParamsIoHardeningTest, ReadRejectsNegativeTheta) {
  const std::string path = WriteFile(
      "params_neg.txt",
      "agmdp-params v1\nw 1\ntheta_x 2 -0.5 1.5\ntheta_f 3 0.3 0.3 0.4\n"
      "degrees 2 1 1\ntriangles 0\n");
  EXPECT_FALSE(ReadAgmParams(path).ok());
  std::remove(path.c_str());
}

TEST(ParamsIoHardeningTest, ReadRejectsNegativeDegreesInsteadOfWrapping) {
  // "-3" read into uint32_t wraps to 4294967293 on most stdlibs; the
  // reader must reject it, not store a four-billion degree.
  const std::string path = WriteFile(
      "params_negdeg.txt",
      "agmdp-params v1\nw 1\ntheta_x 2 0.5 0.5\ntheta_f 3 0.3 0.3 0.4\n"
      "degrees 2 -3 1\ntriangles 0\n");
  EXPECT_FALSE(ReadAgmParams(path).ok());
  std::remove(path.c_str());
}

TEST(ParamsIoHardeningTest, ReadRejectsTruncatedFiles) {
  const char* bodies[] = {
      // Cut mid-theta.
      "agmdp-params v1\nw 1\ntheta_x 2 0.5\n",
      // Cut before degrees.
      "agmdp-params v1\nw 1\ntheta_x 2 0.5 0.5\ntheta_f 3 0.3 0.3 0.4\n",
      // Cut mid-degrees.
      "agmdp-params v1\nw 1\ntheta_x 2 0.5 0.5\ntheta_f 3 0.3 0.3 0.4\n"
      "degrees 5 1 2\n",
      // Missing the triangles value.
      "agmdp-params v1\nw 1\ntheta_x 2 0.5 0.5\ntheta_f 3 0.3 0.3 0.4\n"
      "degrees 2 1 1\ntriangles\n",
      // Empty file.
      "",
  };
  int index = 0;
  for (const char* body : bodies) {
    const std::string path =
        WriteFile("params_trunc_" + std::to_string(index++) + ".txt", body);
    EXPECT_FALSE(ReadAgmParams(path).ok()) << body;
    std::remove(path.c_str());
  }
}

TEST(ParamsIoHardeningTest, ReadRejectsAbsurdLengthFieldsWithoutAllocating) {
  // A corrupted count must fail fast instead of resize()-ing to petabytes.
  const std::string path = WriteFile(
      "params_hugecount.txt",
      "agmdp-params v1\nw 1\ntheta_x 99999999999999 0.5 0.5\n");
  EXPECT_FALSE(ReadAgmParams(path).ok());
  std::remove(path.c_str());

  const std::string negative_count = WriteFile(
      "params_negcount.txt",
      "agmdp-params v1\nw 1\ntheta_x -2 0.5 0.5\n");
  EXPECT_FALSE(ReadAgmParams(negative_count).ok());
  std::remove(negative_count.c_str());
}

TEST(ParamsIoHardeningTest, ValidRoundTripStillWorks) {
  const AgmParams params = ValidParams();
  const std::string path = testing::TempDir() + "/params_ok.txt";
  ASSERT_TRUE(WriteAgmParams(params, path).ok());
  auto back = ReadAgmParams(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().theta_x, params.theta_x);
  EXPECT_EQ(back.value().theta_f, params.theta_f);
  EXPECT_EQ(back.value().degree_sequence, params.degree_sequence);
  EXPECT_EQ(back.value().target_triangles, params.target_triangles);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace agmdp::agm

// Tests for the extension modules: geometric mechanism, k-star ladder,
// BTER, AGM parameter persistence, GraphML export.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "src/agm/agm_sampler.h"
#include "src/agm/params_io.h"
#include "src/dp/geometric_mechanism.h"
#include "src/dp/ladder_mechanism.h"
#include "src/graph/clustering.h"
#include "src/graph/degree.h"
#include "src/graph/graph_io.h"
#include "src/graph/subgraph_counts.h"
#include "src/graph/triangle_count.h"
#include "src/models/bter.h"
#include "src/models/chung_lu.h"
#include "src/models/erdos_renyi.h"
#include "src/models/holme_kim.h"
#include "src/stats/metrics.h"
#include "src/util/rng.h"

namespace agmdp {
namespace {

// ---------------------------------------------------- GeometricMechanism --

TEST(GeometricMechanismTest, ZeroNoiseProbabilityMatchesTheory) {
  util::Rng rng(1);
  const double eps = 1.0, sens = 1.0;
  const double alpha = std::exp(-eps / sens);
  const double p_zero = (1.0 - alpha) / (1.0 + alpha);
  int zeros = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    zeros += dp::TwoSidedGeometricNoise(eps, sens, rng) == 0;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / trials, p_zero, 0.01);
}

TEST(GeometricMechanismTest, SymmetricAroundZero) {
  util::Rng rng(2);
  double sum = 0.0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(dp::TwoSidedGeometricNoise(0.5, 1.0, rng));
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.05);
}

TEST(GeometricMechanismTest, NoiseShrinksWithEpsilon) {
  util::Rng rng(3);
  auto mean_abs = [&](double eps) {
    double total = 0.0;
    const int trials = 50000;
    for (int i = 0; i < trials; ++i) {
      total += std::llabs(dp::TwoSidedGeometricNoise(eps, 1.0, rng));
    }
    return total / trials;
  };
  EXPECT_LT(mean_abs(2.0), mean_abs(0.2));
}

TEST(GeometricMechanismTest, IntegerOutput) {
  util::Rng rng(4);
  const int64_t value = 42;
  for (int i = 0; i < 100; ++i) {
    int64_t out = dp::GeometricMechanism(value, 1.0, 100.0, rng);
    EXPECT_NEAR(static_cast<double>(out), 42.0, 5.0);
  }
}

// ------------------------------------------------------------ KStarLadder --

TEST(DpKStarCountTest, ValidatesInput) {
  util::Rng rng(5);
  graph::Graph g(10);
  EXPECT_FALSE(dp::DpKStarCount(g, 2, 0.0, rng).ok());
  EXPECT_FALSE(dp::DpKStarCount(g, 1, 1.0, rng).ok());
}

TEST(DpKStarCountTest, TinyGraphReturnsZero) {
  util::Rng rng(6);
  auto r = dp::DpKStarCount(graph::Graph(3), 3, 1.0, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
}

TEST(DpKStarCountTest, NonNegativeAndBounded) {
  util::Rng rng(7);
  graph::Graph g = models::ErdosRenyiGnp(50, 0.2, rng);
  const double max_stars =
      50.0 * static_cast<double>(graph::BinomialOrSaturate(49, 3));
  for (double eps : {0.05, 0.5, 5.0}) {
    for (int i = 0; i < 100; ++i) {
      auto r = dp::DpKStarCount(g, 3, eps, rng);
      ASSERT_TRUE(r.ok());
      EXPECT_GE(r.value(), 0.0);
      EXPECT_LE(r.value(), max_stars);
    }
  }
}

TEST(DpKStarCountTest, ConcentratesAtLargeEpsilon) {
  util::Rng rng(8);
  graph::Graph g = models::ErdosRenyiGnp(80, 0.1, rng);
  const auto truth = static_cast<double>(graph::CountKStars(g, 2));
  double sum = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    sum += dp::DpKStarCount(g, 2, 20.0, rng).value();
  }
  EXPECT_NEAR(sum / trials, truth, truth * 0.05);
}

TEST(DpKStarCountTest, ErrorShrinksWithEpsilon) {
  util::Rng rng(9);
  graph::Graph g = models::ErdosRenyiGnp(100, 0.08, rng);
  const auto truth = static_cast<double>(graph::CountKStars(g, 3));
  auto mean_err = [&](double eps) {
    double total = 0.0;
    const int trials = 100;
    for (int i = 0; i < trials; ++i) {
      total += std::fabs(dp::DpKStarCount(g, 3, eps, rng).value() - truth);
    }
    return total / trials;
  };
  EXPECT_LT(mean_err(2.0), mean_err(0.05));
}

// ------------------------------------------------------------------- BTER --

TEST(BterTest, RejectsEmpty) {
  util::Rng rng(10);
  EXPECT_FALSE(models::GenerateBter(models::BterParams{}, rng).ok());
}

TEST(BterTest, FitMeasuresProfiles) {
  util::Rng rng(11);
  models::HolmeKimOptions options;
  options.edges_per_node = 4;
  options.triad_probability = 0.7;
  auto g = models::HolmeKim(500, options, rng);
  ASSERT_TRUE(g.ok());
  models::BterParams params = models::FitBter(g.value());
  EXPECT_EQ(params.degrees.size(), 500u);
  EXPECT_EQ(params.clustering_by_degree.size(),
            g.value().MaxDegree() + 1);
}

TEST(BterTest, ReproducesEdgeCountApproximately) {
  util::Rng rng(12);
  models::HolmeKimOptions options;
  options.edges_per_node = 4;
  auto input = models::HolmeKim(800, options, rng);
  ASSERT_TRUE(input.ok());
  auto g = models::GenerateBter(models::FitBter(input.value()), rng);
  ASSERT_TRUE(g.ok());
  const double m_in = static_cast<double>(input.value().num_edges());
  EXPECT_NEAR(static_cast<double>(g.value().num_edges()), m_in, m_in * 0.25);
}

TEST(BterTest, ReproducesClusteringBetterThanFcl) {
  util::Rng rng(13);
  models::HolmeKimOptions options;
  options.edges_per_node = 4;
  options.triad_probability = 0.8;
  auto input = models::HolmeKim(1200, options, rng);
  ASSERT_TRUE(input.ok());
  const double target = graph::AverageLocalClustering(input.value());

  auto bter = models::GenerateBter(models::FitBter(input.value()), rng);
  ASSERT_TRUE(bter.ok());
  auto fcl =
      models::FastChungLu(graph::DegreeSequence(input.value()), rng);
  ASSERT_TRUE(fcl.ok());

  const double err_bter =
      std::fabs(graph::AverageLocalClustering(bter.value()) - target);
  const double err_fcl =
      std::fabs(graph::AverageLocalClustering(fcl.value()) - target);
  EXPECT_LT(err_bter, err_fcl);
}

TEST(BterTest, DegreeDistributionTracked) {
  util::Rng rng(14);
  models::HolmeKimOptions options;
  options.edges_per_node = 4;
  auto input = models::HolmeKim(1000, options, rng);
  ASSERT_TRUE(input.ok());
  auto g = models::GenerateBter(models::FitBter(input.value()), rng);
  ASSERT_TRUE(g.ok());
  EXPECT_LT(stats::KsStatistic(graph::SortedDegreeSequence(g.value()),
                               graph::SortedDegreeSequence(input.value())),
            0.25);
}

// --------------------------------------------------------------- ParamsIo --

TEST(ParamsIoTest, RoundTrip) {
  agm::AgmParams params;
  params.w = 2;
  params.theta_x = {0.4, 0.3, 0.2, 0.1};
  params.theta_f.assign(10, 0.1);
  params.degree_sequence = {1, 2, 2, 3, 7};
  params.target_triangles = 1234;

  const std::string path = testing::TempDir() + "/params_roundtrip.txt";
  ASSERT_TRUE(agm::WriteAgmParams(params, path).ok());
  auto back = agm::ReadAgmParams(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().w, 2);
  EXPECT_EQ(back.value().theta_x, params.theta_x);
  EXPECT_EQ(back.value().theta_f, params.theta_f);
  EXPECT_EQ(back.value().degree_sequence, params.degree_sequence);
  EXPECT_EQ(back.value().target_triangles, 1234u);
  std::remove(path.c_str());
}

TEST(ParamsIoTest, RejectsCorruptFiles) {
  const std::string path = testing::TempDir() + "/params_bad.txt";
  {
    std::ofstream out(path);
    out << "agmdp-params v1\nw 2\ntheta_x 4 0.4 0.3\n";  // truncated
  }
  EXPECT_FALSE(agm::ReadAgmParams(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(agm::ReadAgmParams("/nonexistent/params").ok());
}

TEST(ParamsIoTest, RejectsDimensionMismatch) {
  const std::string path = testing::TempDir() + "/params_dim.txt";
  {
    std::ofstream out(path);
    // theta_f should have 10 entries for w=2, not 3.
    out << "agmdp-params v1\nw 2\ntheta_x 4 0.25 0.25 0.25 0.25\n"
        << "theta_f 3 0.3 0.3 0.4\ndegrees 2 1 1\ntriangles 0\n";
  }
  EXPECT_FALSE(agm::ReadAgmParams(path).ok());
  std::remove(path.c_str());
}

TEST(ParamsIoTest, SampledGraphFromStoredParamsMatchesDirect) {
  // fit -> save -> load -> sample must equal fit -> sample with equal seeds.
  agm::AgmParams params;
  params.w = 1;
  params.theta_x = {0.6, 0.4};
  params.theta_f = {0.5, 0.2, 0.3};
  params.degree_sequence.assign(60, 3);
  params.target_triangles = 20;

  const std::string path = testing::TempDir() + "/params_sample.txt";
  ASSERT_TRUE(agm::WriteAgmParams(params, path).ok());
  auto loaded = agm::ReadAgmParams(path);
  ASSERT_TRUE(loaded.ok());

  agm::AgmSampleOptions options;
  options.acceptance_iterations = 1;
  util::Rng rng1(77), rng2(77);
  auto direct = agm::SampleAgmGraph(params, options, rng1);
  auto via_disk = agm::SampleAgmGraph(loaded.value(), options, rng2);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_disk.ok());
  EXPECT_EQ(direct.value().structure().CanonicalEdges(),
            via_disk.value().structure().CanonicalEdges());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- GraphMl --

TEST(GraphMlTest, WritesWellFormedDocument) {
  graph::AttributedGraph g(3, 2);
  g.structure().AddEdge(0, 1);
  g.structure().AddEdge(1, 2);
  ASSERT_TRUE(g.SetAttributes({3, 0, 1}).ok());
  const std::string path = testing::TempDir() + "/export.graphml";
  ASSERT_TRUE(graph::WriteGraphMl(g, path).ok());

  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("<graphml"), std::string::npos);
  EXPECT_NE(content.find("</graphml>"), std::string::npos);
  EXPECT_NE(content.find("edgedefault=\"undirected\""), std::string::npos);
  // Node 0 has config 3 = bits 11 -> both attributes 1.
  EXPECT_NE(content.find("<node id=\"n0\"><data key=\"a0\">1</data>"
                         "<data key=\"a1\">1</data></node>"),
            std::string::npos);
  // Two edges.
  EXPECT_NE(content.find("source=\"n0\" target=\"n1\""), std::string::npos);
  EXPECT_NE(content.find("source=\"n1\" target=\"n2\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace agmdp

#include <gtest/gtest.h>

#include <numeric>

#include "src/agm/theta_x.h"
#include "src/datasets/datasets.h"
#include "src/datasets/homophily.h"
#include "src/graph/clustering.h"
#include "src/graph/components.h"
#include "src/graph/degree.h"
#include "src/graph/triangle_count.h"
#include "src/models/erdos_renyi.h"
#include "src/util/rng.h"

namespace agmdp::datasets {
namespace {

// ------------------------------------------------------------------ Specs --

TEST(DatasetSpecTest, Table6NumbersPresent) {
  const DatasetSpec& lastfm = PaperSpec(DatasetId::kLastFm);
  EXPECT_EQ(lastfm.nodes, 1843u);
  EXPECT_EQ(lastfm.edges, 12668u);
  EXPECT_EQ(lastfm.max_degree, 119u);
  EXPECT_EQ(lastfm.triangles, 19651u);

  const DatasetSpec& pokec = PaperSpec(DatasetId::kPokec);
  EXPECT_EQ(pokec.nodes, 592627u);
  EXPECT_EQ(pokec.edges, 3725424u);
  EXPECT_DOUBLE_EQ(pokec.avg_clustering, 0.104);
}

TEST(DatasetSpecTest, ThetaXMarginalsAreDistributions) {
  for (DatasetId id : AllDatasets()) {
    const DatasetSpec& spec = PaperSpec(id);
    ASSERT_EQ(spec.theta_x.size(), 4u) << spec.name;  // w=2
    double sum = std::accumulate(spec.theta_x.begin(), spec.theta_x.end(),
                                 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9) << spec.name;
  }
}

TEST(DatasetSpecTest, EpsilonGridsMatchPaper) {
  EXPECT_EQ(PaperSpec(DatasetId::kLastFm).table_epsilons.size(), 4u);
  EXPECT_DOUBLE_EQ(PaperSpec(DatasetId::kPokec).table_epsilons[3], 0.01);
}

TEST(DatasetSpecTest, LookupByName) {
  EXPECT_EQ(static_cast<int>(DatasetByName("epinions")),
            static_cast<int>(DatasetId::kEpinions));
}

// ------------------------------------------------------------- Generation --

TEST(GenerateDatasetTest, RejectsBadScale) {
  EXPECT_FALSE(GenerateDataset(DatasetId::kLastFm, 0.0, 1).ok());
  EXPECT_FALSE(GenerateDataset(DatasetId::kLastFm, 1.5, 1).ok());
}

TEST(GenerateDatasetTest, DeterministicInSeed) {
  auto a = GenerateDataset(DatasetId::kLastFm, 0.2, 42);
  auto b = GenerateDataset(DatasetId::kLastFm, 0.2, 42);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().structure().CanonicalEdges(),
            b.value().structure().CanonicalEdges());
  EXPECT_EQ(a.value().attributes(), b.value().attributes());
}

TEST(GenerateDatasetTest, DifferentSeedsDiffer) {
  auto a = GenerateDataset(DatasetId::kLastFm, 0.2, 1);
  auto b = GenerateDataset(DatasetId::kLastFm, 0.2, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().structure().CanonicalEdges(),
            b.value().structure().CanonicalEdges());
}

TEST(GenerateDatasetTest, LandsNearSpecTargets) {
  auto g = GenerateDataset(DatasetId::kLastFm, 1.0, 7);
  ASSERT_TRUE(g.ok());
  const DatasetSpec& spec = PaperSpec(DatasetId::kLastFm);
  EXPECT_EQ(g.value().num_nodes(), spec.nodes);
  // Edge count within 15% of Table 6's m (whose davg column is m/n).
  EXPECT_NEAR(static_cast<double>(g.value().num_edges()),
              static_cast<double>(spec.edges),
              static_cast<double>(spec.edges) * 0.15);
  // Triangle density is the calibration target (DESIGN.md substitution #1);
  // within 40% of Table 6's triangles-per-node.
  const double tri_per_node =
      static_cast<double>(graph::CountTriangles(g.value().structure())) /
      static_cast<double>(spec.nodes);
  const double target_tri =
      static_cast<double>(spec.triangles) / static_cast<double>(spec.nodes);
  EXPECT_NEAR(tri_per_node, target_tri, target_tri * 0.4);
  // Local clustering is only clamped (Holme-Kim concentrates triads on
  // incoming nodes): must stay within ~2.3x of the published value.
  EXPECT_LT(graph::AverageLocalClustering(g.value().structure()),
            spec.avg_clustering * 2.3);
  // The published max degree caps the hubs.
  EXPECT_LE(g.value().structure().MaxDegree(), spec.max_degree);
  EXPECT_TRUE(graph::IsConnected(g.value().structure()));
}

TEST(GenerateDatasetTest, ScaleShrinksNodeCount) {
  auto g = GenerateDataset(DatasetId::kPetster, 0.25, 3);
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(static_cast<double>(g.value().num_nodes()), 1788 * 0.25, 2.0);
}

TEST(GenerateDatasetTest, AttributeMarginalsMatchSpec) {
  auto g = GenerateDataset(DatasetId::kEpinions, 0.1, 11);
  ASSERT_TRUE(g.ok());
  std::vector<double> theta = agm::ComputeThetaX(g.value());
  const DatasetSpec& spec = PaperSpec(DatasetId::kEpinions);
  for (size_t i = 0; i < theta.size(); ++i) {
    EXPECT_NEAR(theta[i], spec.theta_x[i], 0.01) << "config " << i;
  }
}

TEST(GenerateDatasetTest, ExhibitsHomophily) {
  auto g = GenerateDataset(DatasetId::kLastFm, 0.5, 13);
  ASSERT_TRUE(g.ok());
  // Baseline same-config rate for random assignment is sum of theta^2.
  const DatasetSpec& spec = PaperSpec(DatasetId::kLastFm);
  double random_rate = 0.0;
  for (double p : spec.theta_x) random_rate += p * p;
  EXPECT_GT(SameConfigEdgeFraction(g.value()), random_rate * 1.3);
}

// -------------------------------------------------------------- Homophily --

TEST(HomophilyTest, PreservesMarginalExactly) {
  util::Rng rng(1);
  graph::AttributedGraph g(models::ErdosRenyiGnp(200, 0.05, rng), 2);
  std::vector<double> theta = {0.5, 0.25, 0.15, 0.10};
  HomophilyOptions options;
  ASSERT_TRUE(AssignHomophilousAttributes(&g, theta, options, rng).ok());
  std::vector<int> counts(4, 0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) ++counts[g.attribute(v)];
  EXPECT_EQ(counts[0], 100);
  EXPECT_EQ(counts[1], 50);
  EXPECT_EQ(counts[2], 30);
  EXPECT_EQ(counts[3], 20);
}

TEST(HomophilyTest, IncreasesSameConfigFraction) {
  util::Rng rng(2);
  graph::AttributedGraph g(models::ErdosRenyiGnp(300, 0.04, rng), 1);
  std::vector<double> theta = {0.5, 0.5};
  // First assign without swaps to measure the baseline.
  HomophilyOptions no_swaps;
  no_swaps.max_swaps = 1;
  ASSERT_TRUE(AssignHomophilousAttributes(&g, theta, no_swaps, rng).ok());
  const double before = SameConfigEdgeFraction(g);
  HomophilyOptions options;
  options.target_same_fraction = 0.8;
  ASSERT_TRUE(AssignHomophilousAttributes(&g, theta, options, rng).ok());
  EXPECT_GT(SameConfigEdgeFraction(g), before);
}

TEST(HomophilyTest, ValidatesThetaDimension) {
  util::Rng rng(3);
  graph::AttributedGraph g(models::ErdosRenyiGnp(50, 0.1, rng), 2);
  EXPECT_FALSE(
      AssignHomophilousAttributes(&g, {0.5, 0.5}, HomophilyOptions{}, rng)
          .ok());
}

TEST(HomophilyTest, SameConfigFractionBounds) {
  util::Rng rng(4);
  graph::AttributedGraph g(models::ErdosRenyiGnp(100, 0.05, rng), 1);
  ASSERT_TRUE(AssignHomophilousAttributes(&g, {0.6, 0.4}, HomophilyOptions{},
                                          rng)
                  .ok());
  const double f = SameConfigEdgeFraction(g);
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
}

}  // namespace
}  // namespace agmdp::datasets

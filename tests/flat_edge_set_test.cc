// util::FlatEdgeSet / FlatEdgeMap contract tests: randomized oracle checks
// against the std containers they replaced, collision/growth edge cases,
// Graph behavioral equivalence under mixed mutation, and the 1/2/4-thread
// bitwise-determinism contract of the rewritten sampler hot path (FCL and
// TriCycLe, with and without acceptance filtering).
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/agm/agm_sampler.h"
#include "src/agm/theta_f.h"
#include "src/agm/theta_x.h"
#include "src/graph/graph.h"
#include "src/util/flat_edge_set.h"
#include "src/util/math_util.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace agmdp {
namespace {

// ---------------------------------------------------------- FlatEdgeSet --

TEST(FlatEdgeSetTest, BasicInsertContainsErase) {
  util::FlatEdgeSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.Contains(42));
  EXPECT_TRUE(set.Insert(42));
  EXPECT_FALSE(set.Insert(42));  // duplicate
  EXPECT_TRUE(set.Contains(42));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.Erase(42));
  EXPECT_FALSE(set.Erase(42));  // already gone
  EXPECT_FALSE(set.Contains(42));
  EXPECT_TRUE(set.empty());
}

TEST(FlatEdgeSetTest, RandomizedOracleAgainstUnorderedSet) {
  // Small key space so inserts collide with prior inserts, erases hit, and
  // probe chains shift repeatedly through the same table region.
  util::Rng rng(101);
  util::FlatEdgeSet set;
  std::unordered_set<uint64_t> oracle;
  for (int op = 0; op < 200000; ++op) {
    const uint64_t key = 1 + rng.UniformIndex(4096);
    switch (rng.UniformIndex(3)) {
      case 0:
        EXPECT_EQ(set.Insert(key), oracle.insert(key).second);
        break;
      case 1:
        EXPECT_EQ(set.Erase(key), oracle.erase(key) > 0);
        break;
      default:
        EXPECT_EQ(set.Contains(key), oracle.count(key) > 0);
        break;
    }
    ASSERT_EQ(set.size(), oracle.size());
  }
  // Full-membership sweep at the end.
  for (uint64_t key = 1; key <= 4096; ++key) {
    EXPECT_EQ(set.Contains(key), oracle.count(key) > 0) << key;
  }
  size_t seen = 0;
  set.ForEach([&](uint64_t key) {
    ++seen;
    EXPECT_TRUE(oracle.count(key) > 0) << key;
  });
  EXPECT_EQ(seen, oracle.size());
}

TEST(FlatEdgeSetTest, GrowthPreservesMembership) {
  util::FlatEdgeSet set;
  // Push far past the initial capacity so the table rehashes many times.
  for (uint64_t key = 1; key <= 100000; ++key) {
    ASSERT_TRUE(set.Insert(key * 2654435761ULL));
  }
  EXPECT_EQ(set.size(), 100000u);
  for (uint64_t key = 1; key <= 100000; ++key) {
    ASSERT_TRUE(set.Contains(key * 2654435761ULL));
    ASSERT_FALSE(set.Contains(key * 2654435761ULL + 1));
  }
}

TEST(FlatEdgeSetTest, BackwardShiftEraseKeepsChainsReachable) {
  // Insert a batch, erase every other key, and verify the survivors stay
  // findable — the case tombstone-free deletion gets wrong if the shift
  // condition is off by one.
  for (uint64_t trial = 0; trial < 32; ++trial) {
    util::FlatEdgeSet set;
    std::set<uint64_t> survivors;
    for (uint64_t i = 1; i <= 200; ++i) {
      const uint64_t key = trial * 1000003ULL + i;
      set.Insert(key);
      if (i % 2 == 0) {
        survivors.insert(key);
      }
    }
    for (uint64_t i = 1; i <= 200; i += 2) {
      ASSERT_TRUE(set.Erase(trial * 1000003ULL + i));
    }
    for (uint64_t key : survivors) {
      ASSERT_TRUE(set.Contains(key)) << "trial " << trial << " key " << key;
    }
    ASSERT_EQ(set.size(), survivors.size());
  }
}

TEST(FlatEdgeSetTest, AbsurdReserveHintTerminatesViaGraphClamp) {
  // Regression: an unclamped Reserve hint used to overflow the sizing loop
  // (`expected * 8` wraps; `want *= 2` wraps to 0) and hang forever.
  // Graph::ReserveEdges clamps the hint by the maximum possible edge count
  // of its node set, so absurd caller knobs stay cheap.
  graph::Graph g(100);
  g.ReserveEdges(UINT64_MAX);  // clamped to C(100, 2) = 4950
  EXPECT_TRUE(g.AddEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(FlatEdgeSetTest, ReserveAvoidsGrowthAndClearKeepsCapacity) {
  util::FlatEdgeSet set(1000);
  const size_t reserved = set.capacity();
  for (uint64_t key = 1; key <= 1000; ++key) set.Insert(key);
  EXPECT_EQ(set.capacity(), reserved);  // no rehash under the reserved load
  set.Clear();
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.capacity(), reserved);
  EXPECT_FALSE(set.Contains(1));
}

// ---------------------------------------------------------- FlatEdgeMap --

TEST(FlatEdgeMapTest, RandomizedOracleAgainstUnorderedMap) {
  util::Rng rng(202);
  util::FlatEdgeMap map;
  std::unordered_map<uint64_t, uint64_t> oracle;
  for (int op = 0; op < 200000; ++op) {
    const uint64_t key = 1 + rng.UniformIndex(2048);
    switch (rng.UniformIndex(3)) {
      case 0: {
        const uint64_t value = rng.Next();
        map.Put(key, value);
        oracle[key] = value;
        break;
      }
      case 1:
        EXPECT_EQ(map.Erase(key), oracle.erase(key) > 0);
        break;
      default: {
        const uint64_t* found = map.Find(key);
        auto it = oracle.find(key);
        ASSERT_EQ(found != nullptr, it != oracle.end());
        if (found != nullptr) EXPECT_EQ(*found, it->second);
        break;
      }
    }
    ASSERT_EQ(map.size(), oracle.size());
  }
}

// ------------------------------------------------- Graph equivalence ----

// The Graph facade over FlatEdgeSet must behave exactly like a reference
// implementation over std::set under arbitrary add/remove/query mixes.
TEST(FlatEdgeSetTest, GraphMutationEquivalence) {
  constexpr graph::NodeId kNodes = 64;
  util::Rng rng(303);
  graph::Graph g(kNodes);
  std::set<std::pair<graph::NodeId, graph::NodeId>> oracle;
  for (int op = 0; op < 50000; ++op) {
    const auto u = static_cast<graph::NodeId>(rng.UniformIndex(kNodes));
    const auto v = static_cast<graph::NodeId>(rng.UniformIndex(kNodes));
    const auto key = std::make_pair(std::min(u, v), std::max(u, v));
    switch (rng.UniformIndex(3)) {
      case 0: {
        const bool inserted = u != v && oracle.insert(key).second;
        EXPECT_EQ(g.AddEdge(u, v), inserted);
        break;
      }
      case 1: {
        const bool erased = u != v && oracle.erase(key) > 0;
        EXPECT_EQ(g.RemoveEdge(u, v), erased);
        break;
      }
      default:
        EXPECT_EQ(g.HasEdge(u, v), oracle.count(key) > 0);
        break;
    }
    ASSERT_EQ(g.num_edges(), oracle.size());
  }
  // Canonical edge lists agree exactly.
  std::vector<graph::Edge> expected;
  for (const auto& [u, v] : oracle) expected.emplace_back(u, v);
  EXPECT_EQ(g.CanonicalEdges(), expected);
  // Degrees agree with the oracle's incidence counts.
  for (graph::NodeId v = 0; v < kNodes; ++v) {
    uint32_t degree = 0;
    for (const auto& [a, b] : oracle) degree += (a == v || b == v) ? 1 : 0;
    EXPECT_EQ(g.Degree(v), degree) << v;
  }
}

// ------------------------------------------------------- SaturatingMul --

TEST(MathUtilTest, SaturatingArithmetic) {
  EXPECT_EQ(util::SaturatingMul(3, 7), 21u);
  EXPECT_EQ(util::SaturatingMul(0, UINT64_MAX), 0u);
  EXPECT_EQ(util::SaturatingMul(UINT64_MAX, 2), UINT64_MAX);
  EXPECT_EQ(util::SaturatingMul(1ULL << 63, 2), UINT64_MAX);
  EXPECT_EQ(util::SaturatingMul(1ULL << 32, 1ULL << 32), UINT64_MAX);
  EXPECT_EQ(util::SaturatingAdd(1, 2), 3u);
  EXPECT_EQ(util::SaturatingAdd(UINT64_MAX, 1), UINT64_MAX);
}

// ---------------------------------------------------------- WorkerPool --

TEST(WorkerPoolTest, RunsEveryTaskExactlyOnce) {
  util::WorkerPool pool(4);
  for (int batch = 0; batch < 50; ++batch) {
    std::vector<int> hits(97, 0);
    pool.Run(97, [&](int i) { ++hits[i]; });
    for (int i = 0; i < 97; ++i) ASSERT_EQ(hits[i], 1) << "batch " << batch;
  }
}

TEST(WorkerPoolTest, SingleWorkerRunsInline) {
  util::WorkerPool pool(1);
  EXPECT_EQ(pool.num_workers(), 1);
  std::vector<int> order;
  pool.Run(8, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

// --------------------------------------- sampler determinism contract --

agm::AgmParams SmallParams(int w, util::Rng& rng) {
  // A synthetic parameter set with enough structure for filtering to bite:
  // skewed degrees and a non-uniform attribute mix.
  agm::AgmParams params;
  params.w = w;
  const uint32_t node_dim = graph::NumNodeConfigs(w);
  const uint32_t edge_dim = graph::NumEdgeConfigs(w);
  params.theta_x.assign(node_dim, 0.0);
  for (uint32_t y = 0; y < node_dim; ++y) {
    params.theta_x[y] = 1.0 + static_cast<double>(y % 3);
  }
  double sum_x = 0.0;
  for (double p : params.theta_x) sum_x += p;
  for (double& p : params.theta_x) p /= sum_x;
  params.theta_f.assign(edge_dim, 0.0);
  for (uint32_t y = 0; y < edge_dim; ++y) {
    params.theta_f[y] = (y % 2 == 0) ? 2.0 : 0.5;
  }
  double sum_f = 0.0;
  for (double p : params.theta_f) sum_f += p;
  for (double& p : params.theta_f) p /= sum_f;
  params.degree_sequence.resize(400);
  uint64_t triangles_proxy = 0;
  for (size_t i = 0; i < params.degree_sequence.size(); ++i) {
    params.degree_sequence[i] =
        static_cast<uint32_t>(1 + rng.UniformIndex(8) + (i % 50 == 0 ? 20 : 0));
    triangles_proxy += params.degree_sequence[i];
  }
  params.target_triangles = triangles_proxy / 10;
  return params;
}

// The rewritten hot path must stay bitwise-identical at 1/2/4 threads for
// both builtin models, both with acceptance filtering (iterations > 0) and
// without (iterations == 0 leaves the initial unfiltered structure).
TEST(SamplerHotPathDeterminismTest, BitwiseIdenticalAcrossThreads) {
  util::Rng setup_rng(7);
  for (int w : {1, 2}) {
    const agm::AgmParams params = SmallParams(w, setup_rng);
    for (auto model :
         {agm::StructuralModelKind::kFcl, agm::StructuralModelKind::kTriCycLe}) {
      for (int iterations : {0, 2}) {
        graph::AttributedGraph reference;
        for (int threads : {1, 2, 4}) {
          agm::AgmSampleOptions options;
          options.model = model;
          options.threads = threads;
          options.acceptance_iterations = iterations;
          util::Rng rng(99);
          auto sampled = agm::SampleAgmGraph(params, options, rng);
          ASSERT_TRUE(sampled.ok()) << sampled.status().ToString();
          if (threads == 1) {
            reference = std::move(sampled).value();
          } else {
            EXPECT_EQ(reference.attributes(), sampled.value().attributes())
                << "w=" << w << " iterations=" << iterations
                << " threads=" << threads;
            EXPECT_EQ(reference.structure().CanonicalEdges(),
                      sampled.value().structure().CanonicalEdges())
                << "w=" << w << " iterations=" << iterations
                << " threads=" << threads;
          }
        }
        EXPECT_GT(reference.num_edges(), 0u);
      }
    }
  }
}

// Extreme per-edge proposal budgets must saturate, not wrap: a wrapped
// product used to shrink the budget to ~0 proposals and silently return a
// graph with no (or far too few) edges.
TEST(SamplerHotPathDeterminismTest, ExtremeProposalBudgetSaturates) {
  util::Rng setup_rng(11);
  const agm::AgmParams params = SmallParams(1, setup_rng);

  agm::AgmSampleOptions options;
  options.model = agm::StructuralModelKind::kFcl;
  options.acceptance_iterations = 1;
  // 2^63 per edge: any even quota wraps the product to exactly 0.
  options.fcl.max_proposals_per_edge = 1ULL << 63;
  util::Rng rng(5);
  auto sampled = agm::SampleAgmGraph(params, options, rng);
  ASSERT_TRUE(sampled.ok()) << sampled.status().ToString();
  EXPECT_GT(sampled.value().num_edges(), 100u);
}

}  // namespace
}  // namespace agmdp

#include <gtest/gtest.h>

#include <limits>

#include "src/datasets/homophily.h"
#include "src/graph/clustering.h"
#include "src/graph/paths.h"
#include "src/graph/subgraph_counts.h"
#include "src/graph/triangle_count.h"
#include "src/models/erdos_renyi.h"
#include "src/models/holme_kim.h"
#include "src/stats/assortativity.h"
#include "src/stats/joint_degree.h"
#include "src/util/rng.h"

namespace agmdp {
namespace {

graph::Graph PathGraph(graph::NodeId n) {
  graph::Graph g(n);
  for (graph::NodeId v = 0; v + 1 < n; ++v) g.AddEdge(v, v + 1);
  return g;
}

graph::Graph StarGraph(graph::NodeId n) {
  graph::Graph g(n);
  for (graph::NodeId v = 1; v < n; ++v) g.AddEdge(0, v);
  return g;
}

// ------------------------------------------------------------------ Paths --

TEST(PathsTest, BfsDistancesOnPath) {
  graph::Graph g = PathGraph(5);
  std::vector<uint32_t> dist = graph::BfsDistances(g, 0);
  for (graph::NodeId v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(PathsTest, UnreachableMarked) {
  graph::Graph g(4);
  g.AddEdge(0, 1);
  std::vector<uint32_t> dist = graph::BfsDistances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], std::numeric_limits<uint32_t>::max());
}

TEST(PathsTest, EccentricityOfPathEnds) {
  graph::Graph g = PathGraph(7);
  EXPECT_EQ(graph::Eccentricity(g, 0), 6u);
  EXPECT_EQ(graph::Eccentricity(g, 3), 3u);
}

TEST(PathsTest, PathStatsOnStar) {
  util::Rng rng(1);
  graph::Graph g = StarGraph(11);
  graph::PathStats stats = graph::EstimatePathStats(g, 11, rng);
  // Star: 10 pairs at distance 1 from hub; leaf-to-leaf distance 2.
  EXPECT_EQ(stats.diameter_lower_bound, 2u);
  EXPECT_GT(stats.avg_path_length, 1.0);
  EXPECT_LT(stats.avg_path_length, 2.0);
}

TEST(PathsTest, SampledStatsApproximateFull) {
  util::Rng rng(2);
  graph::Graph g = models::ErdosRenyiGnp(300, 0.03, rng);
  graph::PathStats full = graph::EstimatePathStats(g, 300, rng);
  graph::PathStats sampled = graph::EstimatePathStats(g, 60, rng);
  EXPECT_NEAR(sampled.avg_path_length, full.avg_path_length,
              full.avg_path_length * 0.1);
}

TEST(PathsTest, SmallWorldDiameter) {
  util::Rng rng(3);
  models::HolmeKimOptions options;
  options.edges_per_node = 4;
  auto g = models::HolmeKim(2000, options, rng);
  ASSERT_TRUE(g.ok());
  graph::PathStats stats = graph::EstimatePathStats(g.value(), 50, rng);
  EXPECT_LT(stats.avg_path_length, 6.0);  // small world
  EXPECT_GT(stats.avg_path_length, 1.5);
}

// ---------------------------------------------------------- Assortativity --

TEST(AssortativityTest, StarIsDisassortative) {
  EXPECT_LT(stats::DegreeAssortativity(StarGraph(10)), -0.99);
}

TEST(AssortativityTest, RegularGraphIsDegenerate) {
  // A cycle: constant degrees, zero variance -> defined as 0.
  graph::Graph g(6);
  for (graph::NodeId v = 0; v < 6; ++v) g.AddEdge(v, (v + 1) % 6);
  EXPECT_DOUBLE_EQ(stats::DegreeAssortativity(g), 0.0);
}

TEST(AssortativityTest, ErdosRenyiNearZero) {
  util::Rng rng(4);
  graph::Graph g = models::ErdosRenyiGnp(800, 0.02, rng);
  EXPECT_NEAR(stats::DegreeAssortativity(g), 0.0, 0.08);
}

TEST(AssortativityTest, PerfectAttributeHomophily) {
  // Two disconnected cliques with distinct configs: assortativity 1.
  graph::AttributedGraph g(6, 1);
  g.structure().AddEdge(0, 1);
  g.structure().AddEdge(1, 2);
  g.structure().AddEdge(0, 2);
  g.structure().AddEdge(3, 4);
  g.structure().AddEdge(4, 5);
  g.structure().AddEdge(3, 5);
  ASSERT_TRUE(g.SetAttributes({0, 0, 0, 1, 1, 1}).ok());
  EXPECT_NEAR(stats::AttributeAssortativity(g), 1.0, 1e-9);
}

TEST(AssortativityTest, PerfectHeterophilyIsNegative) {
  // Bipartite matching between configs.
  graph::AttributedGraph g(4, 1);
  g.structure().AddEdge(0, 2);
  g.structure().AddEdge(1, 3);
  ASSERT_TRUE(g.SetAttributes({0, 0, 1, 1}).ok());
  EXPECT_LT(stats::AttributeAssortativity(g), -0.99);
}

TEST(AssortativityTest, HomophilySwapsRaiseAssortativity) {
  util::Rng rng(5);
  graph::AttributedGraph g(models::ErdosRenyiGnp(400, 0.03, rng), 2);
  std::vector<double> theta = {0.25, 0.25, 0.25, 0.25};
  datasets::HomophilyOptions weak;
  weak.max_swaps = 1;
  ASSERT_TRUE(
      datasets::AssignHomophilousAttributes(&g, theta, weak, rng).ok());
  const double before = stats::AttributeAssortativity(g);
  datasets::HomophilyOptions strong;
  strong.target_same_fraction = 0.7;
  ASSERT_TRUE(
      datasets::AssignHomophilousAttributes(&g, theta, strong, rng).ok());
  EXPECT_GT(stats::AttributeAssortativity(g), before + 0.1);
}

TEST(AssortativityTest, SingleConfigIsDegenerate) {
  graph::AttributedGraph g(3, 1);
  g.structure().AddEdge(0, 1);
  EXPECT_DOUBLE_EQ(stats::AttributeAssortativity(g), 0.0);
}

// --------------------------------------------------------- SubgraphCounts --

TEST(SubgraphCountsTest, BinomialValues) {
  EXPECT_EQ(graph::BinomialOrSaturate(5, 2), 10u);
  EXPECT_EQ(graph::BinomialOrSaturate(10, 0), 1u);
  EXPECT_EQ(graph::BinomialOrSaturate(4, 5), 0u);
  EXPECT_EQ(graph::BinomialOrSaturate(52, 5), 2598960u);
}

TEST(SubgraphCountsTest, BinomialSaturatesInsteadOfOverflowing) {
  EXPECT_EQ(graph::BinomialOrSaturate(10000, 5000),
            std::numeric_limits<uint64_t>::max());
}

TEST(SubgraphCountsTest, TwoStarsAreWedges) {
  util::Rng rng(6);
  graph::Graph g = models::ErdosRenyiGnp(100, 0.05, rng);
  EXPECT_EQ(graph::CountKStars(g, 2), graph::CountWedges(g));
}

TEST(SubgraphCountsTest, StarGraphKStars) {
  graph::Graph g = StarGraph(6);  // hub degree 5
  EXPECT_EQ(graph::CountKStars(g, 3), 10u);  // C(5,3); leaves contribute 0
  EXPECT_EQ(graph::CountKStars(g, 5), 1u);
  EXPECT_EQ(graph::CountKStars(g, 6), 0u);
}

TEST(SubgraphCountsTest, OneStarsAreEdgeEndpoints) {
  graph::Graph g = PathGraph(4);
  EXPECT_EQ(graph::CountKStars(g, 1), 2 * g.num_edges());
}

// ------------------------------------------------------------ JointDegree --

TEST(JointDegreeTest, PathGraphDistribution) {
  graph::Graph g = PathGraph(4);  // degrees 1,2,2,1; edges (1,2),(2,2),(2,1)
  auto dist = stats::JointDegreeDistribution(g);
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_NEAR((dist[{1, 2}]), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR((dist[{2, 2}]), 1.0 / 3.0, 1e-12);
}

TEST(JointDegreeTest, MassSumsToOne) {
  util::Rng rng(20);
  graph::Graph g = models::ErdosRenyiGnp(100, 0.06, rng);
  double total = 0.0;
  for (const auto& [key, mass] : stats::JointDegreeDistribution(g)) {
    total += mass;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(JointDegreeTest, DistanceZeroForSameGraph) {
  util::Rng rng(21);
  graph::Graph g = models::ErdosRenyiGnp(80, 0.08, rng);
  EXPECT_DOUBLE_EQ(stats::JointDegreeDistance(g, g), 0.0);
}

TEST(JointDegreeTest, DisjointSupportsHaveDistanceOne) {
  // 2-regular cycle vs star: no common degree pair.
  graph::Graph cycle(6);
  for (graph::NodeId v = 0; v < 6; ++v) cycle.AddEdge(v, (v + 1) % 6);
  graph::Graph star = StarGraph(6);
  EXPECT_NEAR(stats::JointDegreeDistance(cycle, star), 1.0, 1e-12);
}

TEST(JointDegreeTest, SeparatesAssortativeFromRandom) {
  util::Rng rng(22);
  graph::Graph er = models::ErdosRenyiGnp(500, 0.02, rng);
  models::HolmeKimOptions options;
  options.edges_per_node = 5;
  auto hk = models::HolmeKim(500, options, rng);
  ASSERT_TRUE(hk.ok());
  // Same graph family is closer to itself than to a different family.
  graph::Graph er2 = models::ErdosRenyiGnp(500, 0.02, rng);
  EXPECT_LT(stats::JointDegreeDistance(er, er2),
            stats::JointDegreeDistance(er, hk.value()));
}

// --------------------------------------------------- DegreeWiseClustering --

TEST(DegreeWiseClusteringTest, TriangleWithPendant) {
  graph::Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  std::vector<double> profile = graph::DegreeWiseClustering(g);
  ASSERT_EQ(profile.size(), 4u);
  EXPECT_DOUBLE_EQ(profile[1], 0.0);          // pendant node
  EXPECT_DOUBLE_EQ(profile[2], 1.0);          // nodes 1, 2
  EXPECT_DOUBLE_EQ(profile[3], 1.0 / 3.0);    // node 0
}

TEST(DegreeWiseClusteringTest, DecaysWithDegreeOnClusteredGraphs) {
  util::Rng rng(7);
  models::HolmeKimOptions options;
  options.edges_per_node = 4;
  options.triad_probability = 0.8;
  auto g = models::HolmeKim(3000, options, rng);
  ASSERT_TRUE(g.ok());
  std::vector<double> profile = graph::DegreeWiseClustering(g.value());
  // Low-degree clustering should exceed hub clustering (standard social-
  // network shape).
  const uint32_t dmax = g.value().MaxDegree();
  EXPECT_GT(profile[4], profile[dmax]);
}

}  // namespace
}  // namespace agmdp

// Parameterized invariant sweep over the full AGM-DP pipeline: every
// (structural model, ΘF method, epsilon) combination must produce a
// well-formed release and an exact budget ledger. These are the invariants
// a downstream consumer of the library relies on unconditionally.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>

#include "src/agm/agm_dp.h"
#include "src/agm/theta_f.h"
#include "src/agm/theta_x.h"
#include "src/datasets/datasets.h"
#include "src/graph/attribute_encoding.h"
#include "src/graph/components.h"
#include "src/util/rng.h"

namespace agmdp {
namespace {

using SweepParam = std::tuple<int /*model*/, int /*theta_f method*/,
                              double /*epsilon*/>;

class PipelineSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  static void SetUpTestSuite() {
    auto g = datasets::GenerateDataset(datasets::DatasetId::kPetster, 0.2, 3);
    ASSERT_TRUE(g.ok());
    input_ = new graph::AttributedGraph(std::move(g).value());
  }
  static void TearDownTestSuite() {
    delete input_;
    input_ = nullptr;
  }
  static graph::AttributedGraph* input_;
};

graph::AttributedGraph* PipelineSweepTest::input_ = nullptr;

TEST_P(PipelineSweepTest, ReleaseIsWellFormedAndBudgetExact) {
  const auto [model, method, epsilon] = GetParam();
  agm::AgmDpOptions options;
  options.epsilon = epsilon;
  options.model = model == 0 ? agm::StructuralModelKind::kFcl
                             : agm::StructuralModelKind::kTriCycLe;
  options.theta_f_method = static_cast<agm::ThetaFMethod>(method);
  options.sample.acceptance_iterations = 1;
  util::Rng rng(1000 + model * 100 + method * 10 +
                static_cast<uint64_t>(epsilon * 7));

  auto result = agm::SynthesizeAgmDp(*input_, options, rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const graph::AttributedGraph& out = result.value().graph;

  // Node set and attribute dimension are preserved.
  EXPECT_EQ(out.num_nodes(), input_->num_nodes());
  EXPECT_EQ(out.num_attributes(), input_->num_attributes());

  // Simple graph: no self-loops / duplicates by construction; verify the
  // degree-sum identity as a structural checksum.
  uint64_t degree_sum = 0;
  for (graph::NodeId v = 0; v < out.num_nodes(); ++v) {
    degree_sum += out.structure().Degree(v);
  }
  EXPECT_EQ(degree_sum, 2 * out.num_edges());
  EXPECT_GT(out.num_edges(), 0u);

  // Attributes are valid configurations.
  const uint32_t configs = graph::NumNodeConfigs(out.num_attributes());
  for (graph::NodeId v = 0; v < out.num_nodes(); ++v) {
    EXPECT_LT(out.attribute(v), configs);
  }

  // The learned parameters are valid distributions.
  const auto& params = result.value().params;
  auto sums_to_one = [](const std::vector<double>& p) {
    double sum = std::accumulate(p.begin(), p.end(), 0.0);
    for (double x : p) {
      if (x < 0.0) return false;
    }
    return std::fabs(sum - 1.0) < 1e-6;
  };
  EXPECT_TRUE(sums_to_one(params.theta_x));
  EXPECT_TRUE(sums_to_one(params.theta_f));
  EXPECT_EQ(params.degree_sequence.size(), input_->num_nodes());

  // Budget ledger: spends are positive and total exactly epsilon.
  double spent = 0.0;
  for (const auto& [label, eps] : result.value().budget_ledger) {
    EXPECT_GT(eps, 0.0) << label;
    spent += eps;
  }
  EXPECT_NEAR(spent, epsilon, 1e-9);

  // TriCycLe keeps the synthetic graph connected (orphan post-processing).
  if (options.model == agm::StructuralModelKind::kTriCycLe) {
    EXPECT_TRUE(graph::IsConnected(out.structure()));
  }
}

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  static const char* kModels[] = {"Fcl", "TriCycLe"};
  static const char* kMethods[] = {"Trunc", "Smooth", "SA", "Naive"};
  const auto [model, method, epsilon] = info.param;
  return std::string(kModels[model]) + kMethods[method] + "Eps" +
         std::to_string(static_cast<int>(epsilon * 100));
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, PipelineSweepTest,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0.2, 1.0, 5.0)),
    SweepName);

}  // namespace
}  // namespace agmdp

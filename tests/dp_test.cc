#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/dp/constrained_inference.h"
#include "src/dp/edge_truncation.h"
#include "src/dp/exponential_mechanism.h"
#include "src/dp/laplace_mechanism.h"
#include "src/dp/privacy_budget.h"
#include "src/dp/sample_aggregate.h"
#include "src/dp/smooth_sensitivity.h"
#include "src/graph/degree.h"
#include "src/models/erdos_renyi.h"
#include "src/util/rng.h"

namespace agmdp::dp {
namespace {

// ------------------------------------------------------- PrivacyAccountant --

TEST(PrivacyAccountantTest, TracksSpends) {
  PrivacyAccountant acc(1.0);
  EXPECT_TRUE(acc.Spend(0.25, "theta_x").ok());
  EXPECT_TRUE(acc.Spend(0.25, "theta_f").ok());
  EXPECT_DOUBLE_EQ(acc.spent(), 0.5);
  EXPECT_DOUBLE_EQ(acc.remaining(), 0.5);
  ASSERT_EQ(acc.ledger().size(), 2u);
  EXPECT_EQ(acc.ledger()[0].first, "theta_x");
}

TEST(PrivacyAccountantTest, RejectsOverspend) {
  PrivacyAccountant acc(0.5);
  EXPECT_TRUE(acc.Spend(0.5, "all").ok());
  EXPECT_FALSE(acc.Spend(0.01, "extra").ok());
  EXPECT_DOUBLE_EQ(acc.spent(), 0.5);  // failed spend not recorded
}

TEST(PrivacyAccountantTest, RejectsNonPositive) {
  PrivacyAccountant acc(1.0);
  EXPECT_FALSE(acc.Spend(0.0, "zero").ok());
  EXPECT_FALSE(acc.Spend(-0.1, "negative").ok());
}

TEST(PrivacyAccountantTest, ExactFourWaySplitFits) {
  // The paper's even split must consume exactly the whole budget despite
  // floating-point division.
  const double eps = std::log(3.0);
  BudgetSplit split = BudgetSplit::EvenFourWay(eps);
  PrivacyAccountant acc(eps);
  EXPECT_TRUE(acc.Spend(split.theta_x, "x").ok());
  EXPECT_TRUE(acc.Spend(split.theta_f, "f").ok());
  EXPECT_TRUE(acc.Spend(split.degree_seq, "s").ok());
  EXPECT_TRUE(acc.Spend(split.triangles, "t").ok());
  EXPECT_NEAR(acc.remaining(), 0.0, 1e-12);
}

TEST(BudgetSplitTest, FclGivesHalfToDegrees) {
  BudgetSplit split = BudgetSplit::FclThreeWay(0.8);
  EXPECT_DOUBLE_EQ(split.degree_seq, 0.4);
  EXPECT_DOUBLE_EQ(split.theta_x, 0.2);
  EXPECT_DOUBLE_EQ(split.theta_f, 0.2);
  EXPECT_DOUBLE_EQ(split.triangles, 0.0);
  EXPECT_NEAR(split.total(), 0.8, 1e-12);
}

// -------------------------------------------------------- LaplaceMechanism --

TEST(LaplaceMechanismTest, NoiseScaleMatchesSensitivityOverEpsilon) {
  util::Rng rng(5);
  const double sensitivity = 2.0, epsilon = 0.5;
  const int trials = 100000;
  double abs_sum = 0.0;
  for (int i = 0; i < trials; ++i) {
    abs_sum += std::fabs(LaplaceMechanism(0.0, sensitivity, epsilon, rng));
  }
  // E|Lap(b)| = b = sensitivity / epsilon = 4.
  EXPECT_NEAR(abs_sum / trials, 4.0, 0.1);
}

TEST(LaplaceMechanismTest, NoisyCountsPreservesLength) {
  util::Rng rng(6);
  std::vector<double> counts = {10, 20, 30};
  std::vector<double> noisy = NoisyCounts(counts, 1.0, 10.0, rng);
  ASSERT_EQ(noisy.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(noisy[i], counts[i], 5.0);
}

TEST(ClampAndNormalizeTest, ProducesDistribution) {
  std::vector<double> p = ClampAndNormalize({5.0, -3.0, 10.0}, 0.0, 100.0);
  EXPECT_DOUBLE_EQ(p[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(p[1], 0.0);  // clamped up to 0
  EXPECT_DOUBLE_EQ(p[2], 2.0 / 3.0);
  EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-12);
}

TEST(ClampAndNormalizeTest, AllZeroFallsBackToUniform) {
  std::vector<double> p = ClampAndNormalize({-1.0, -2.0, -3.0, -4.0}, 0.0, 9.0);
  for (double x : p) EXPECT_DOUBLE_EQ(x, 0.25);
}

TEST(ClampAndNormalizeTest, UpperClampApplies) {
  std::vector<double> p = ClampAndNormalize({50.0, 10.0}, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
}

// ---------------------------------------------------- ExponentialMechanism --

TEST(ExponentialMechanismTest, ValidatesInput) {
  util::Rng rng(7);
  EXPECT_FALSE(ExponentialMechanism({}, 1.0, 1.0, rng).ok());
  EXPECT_FALSE(ExponentialMechanism({1.0}, 0.0, 1.0, rng).ok());
  EXPECT_FALSE(ExponentialMechanism({1.0}, 1.0, -1.0, rng).ok());
}

TEST(ExponentialMechanismTest, PrefersHighScores) {
  util::Rng rng(8);
  std::vector<double> scores = {0.0, 0.0, 10.0, 0.0};
  int best = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    auto r = ExponentialMechanism(scores, 1.0, 5.0, rng);
    ASSERT_TRUE(r.ok());
    best += r.value() == 2;
  }
  EXPECT_GT(best, trials * 0.99);  // margin e^{25} dominates
}

TEST(ExponentialMechanismTest, NearUniformAtTinyEpsilon) {
  util::Rng rng(9);
  std::vector<double> scores = {0.0, 100.0};
  int hi = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    auto r = ExponentialMechanism(scores, 100.0, 1e-6, rng);
    hi += r.value() == 1;
  }
  EXPECT_NEAR(static_cast<double>(hi) / trials, 0.5, 0.02);
}

// ----------------------------------------------------------- EdgeTruncation --

TEST(EdgeTruncationTest, BoundsAllDegrees) {
  util::Rng rng(10);
  graph::Graph g = models::ErdosRenyiGnp(60, 0.3, rng);
  for (uint32_t k : {2u, 5u, 10u}) {
    graph::Graph t = TruncateEdges(g, k);
    EXPECT_LE(t.MaxDegree(), k) << "k=" << k;
  }
}

TEST(EdgeTruncationTest, IdentityWhenKAtLeastMaxDegree) {
  util::Rng rng(11);
  graph::Graph g = models::ErdosRenyiGnp(40, 0.2, rng);
  graph::Graph t = TruncateEdges(g, g.MaxDegree());
  EXPECT_EQ(t.num_edges(), g.num_edges());
}

TEST(EdgeTruncationTest, Deterministic) {
  util::Rng rng(12);
  graph::Graph g = models::ErdosRenyiGnp(50, 0.3, rng);
  graph::Graph t1 = TruncateEdges(g, 4);
  graph::Graph t2 = TruncateEdges(g, 4);
  EXPECT_EQ(t1.CanonicalEdges(), t2.CanonicalEdges());
}

TEST(EdgeTruncationTest, OnlyRemovesEdges) {
  util::Rng rng(13);
  graph::Graph g = models::ErdosRenyiGnp(50, 0.3, rng);
  graph::Graph t = TruncateEdges(g, 3);
  for (const graph::Edge& e : t.CanonicalEdges()) {
    EXPECT_TRUE(g.HasEdge(e.u, e.v));
  }
}

TEST(EdgeTruncationTest, StarTruncatesToKEdges) {
  graph::Graph star(10);
  for (graph::NodeId v = 1; v < 10; ++v) star.AddEdge(0, v);
  graph::Graph t = TruncateEdges(star, 3);
  // Hub degree shrinks as edges are deleted; once it reaches k the
  // remaining edges survive.
  EXPECT_EQ(t.num_edges(), 3u);
  EXPECT_EQ(t.Degree(0), 3u);
}

TEST(EdgeTruncationTest, EdgeAdditionPerturbsAtMostThreeEdges) {
  // Proposition 1's structural step: neighboring inputs (one extra edge)
  // yield truncated graphs differing in at most 3 edges.
  util::Rng rng(14);
  for (int trial = 0; trial < 20; ++trial) {
    graph::Graph g = models::ErdosRenyiGnp(30, 0.25, rng);
    graph::Graph g2 = g;
    // add one random absent edge
    for (;;) {
      auto u = static_cast<graph::NodeId>(rng.UniformIndex(30));
      auto v = static_cast<graph::NodeId>(rng.UniformIndex(30));
      if (u != v && !g2.HasEdge(u, v)) {
        g2.AddEdge(u, v);
        break;
      }
    }
    const uint32_t k = 5;
    auto t1 = TruncateEdges(g, k).CanonicalEdges();
    auto t2 = TruncateEdges(g2, k).CanonicalEdges();
    std::vector<graph::Edge> diff;
    std::set_symmetric_difference(t1.begin(), t1.end(), t2.begin(), t2.end(),
                                  std::back_inserter(diff));
    EXPECT_LE(diff.size(), 3u);
  }
}

TEST(EdgeTruncationTest, HeuristicKIsCubeRoot) {
  EXPECT_EQ(HeuristicTruncationK(1843), 12u);   // Last.fm in the paper
  EXPECT_EQ(HeuristicTruncationK(26427), 30u);  // Epinions
  EXPECT_EQ(HeuristicTruncationK(592627), 84u); // Pokec
  EXPECT_GE(HeuristicTruncationK(1), 2u);       // floor at 2
}

TEST(EdgeTruncationTest, AttributedVariantKeepsAttributes) {
  graph::AttributedGraph g(5, 2);
  for (graph::NodeId v = 1; v < 5; ++v) g.structure().AddEdge(0, v);
  ASSERT_TRUE(g.SetAttributes({0, 1, 2, 3, 1}).ok());
  graph::AttributedGraph t = TruncateEdges(g, 2);
  EXPECT_LE(t.structure().MaxDegree(), 2u);
  for (graph::NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(t.attribute(v), g.attribute(v));
  }
}

// ----------------------------------------------------- ConstrainedInference --

TEST(IsotonicRegressionTest, AlreadyMonotoneIsIdentity) {
  std::vector<double> v = {1, 2, 3, 4.5};
  EXPECT_EQ(IsotonicRegressionL2(v), v);
}

TEST(IsotonicRegressionTest, PoolsViolators) {
  std::vector<double> fit = IsotonicRegressionL2({3.0, 1.0});
  EXPECT_DOUBLE_EQ(fit[0], 2.0);
  EXPECT_DOUBLE_EQ(fit[1], 2.0);
}

TEST(IsotonicRegressionTest, OutputIsMonotone) {
  util::Rng rng(15);
  std::vector<double> v(200);
  for (double& x : v) x = rng.Gaussian() * 10.0;
  std::vector<double> fit = IsotonicRegressionL2(v);
  for (size_t i = 1; i < fit.size(); ++i) EXPECT_LE(fit[i - 1], fit[i]);
}

TEST(IsotonicRegressionTest, IsL2Projection) {
  // The PAVA fit must be at least as close (in L2) as any other monotone
  // candidate; check against simple competitors.
  std::vector<double> v = {5.0, 1.0, 4.0, 2.0, 8.0};
  std::vector<double> fit = IsotonicRegressionL2(v);
  auto l2 = [&](const std::vector<double>& w) {
    double s = 0;
    for (size_t i = 0; i < v.size(); ++i) s += (v[i] - w[i]) * (v[i] - w[i]);
    return s;
  };
  std::vector<std::vector<double>> competitors = {
      {1, 1, 4, 4, 8}, {3, 3, 3, 3, 8}, {2, 2, 3, 3, 8}, {4, 4, 4, 4, 8},
      fit};
  for (const auto& c : competitors) {
    for (size_t i = 1; i < c.size(); ++i) ASSERT_LE(c[i - 1], c[i]);
    EXPECT_LE(l2(fit), l2(c) + 1e-9);
  }
}

TEST(IsotonicRegressionTest, PreservesMean) {
  // Pooling replaces blocks by their means, so the total is invariant.
  std::vector<double> v = {9, 2, 7, 3, 5, 5, 1};
  std::vector<double> fit = IsotonicRegressionL2(v);
  const double sum_v = std::accumulate(v.begin(), v.end(), 0.0);
  const double sum_f = std::accumulate(fit.begin(), fit.end(), 0.0);
  EXPECT_NEAR(sum_v, sum_f, 1e-9);
}

TEST(DpDegreeSequenceTest, OutputSortedAndInRange) {
  util::Rng rng(16);
  graph::Graph g = models::ErdosRenyiGnp(100, 0.1, rng);
  std::vector<uint32_t> s =
      DpDegreeSequence(graph::DegreeSequence(g), 0.5, rng);
  ASSERT_EQ(s.size(), 100u);
  for (size_t i = 1; i < s.size(); ++i) EXPECT_LE(s[i - 1], s[i]);
  for (uint32_t d : s) EXPECT_LE(d, 99u);
}

TEST(DpDegreeSequenceTest, ConstrainedInferenceBeatsRawNoise) {
  // The whole point of Hay et al.: the isotonic projection cancels most of
  // the Laplace noise. Compare L1 errors against the sorted true sequence.
  util::Rng rng(17);
  graph::Graph g = models::ErdosRenyiGnp(400, 0.02, rng);
  std::vector<uint32_t> truth = graph::SortedDegreeSequence(g);
  const double eps = 0.1;
  double err_ci = 0.0, err_raw = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<uint32_t> private_seq =
        DpDegreeSequence(graph::DegreeSequence(g), eps, rng);
    for (size_t i = 0; i < truth.size(); ++i) {
      err_ci += std::fabs(static_cast<double>(private_seq[i]) - truth[i]);
      err_raw += std::fabs(rng.Laplace(2.0 / eps));
    }
  }
  EXPECT_LT(err_ci, 0.5 * err_raw);
}

TEST(DpDegreeSequenceTest, AccurateAtLargeEpsilon) {
  util::Rng rng(18);
  graph::Graph g = models::ErdosRenyiGnp(200, 0.05, rng);
  std::vector<uint32_t> truth = graph::SortedDegreeSequence(g);
  std::vector<uint32_t> s =
      DpDegreeSequence(graph::DegreeSequence(g), 1000.0, rng);
  EXPECT_EQ(s, truth);
}

// ------------------------------------------------------- SmoothSensitivity --

TEST(SmoothSensitivityTest, BetaFormula) {
  EXPECT_NEAR(SmoothSensitivityBeta(1.0, 0.01),
              1.0 / (2.0 * std::log(100.0)), 1e-12);
}

TEST(SmoothSensitivityTest, LargeDmaxHitsLocalSensitivity) {
  // Corollary 5: when 1/beta <= 2 dmax the max is at t = 0, i.e. 2 dmax.
  const double beta = 0.5;  // 1/beta = 2 <= 2 * dmax for dmax >= 1
  EXPECT_NEAR(SmoothSensitivityQF(10, 1000, beta), 20.0, 1e-9);
}

TEST(SmoothSensitivityTest, SmallDmaxUsesExponentialForm) {
  // Otherwise S = (2 / beta) e^{beta dmax - 1}.
  const double beta = 0.01;
  const uint32_t dmax = 5;
  const double expected = (2.0 / beta) * std::exp(beta * dmax - 1.0);
  EXPECT_NEAR(SmoothSensitivityQF(dmax, 100000, beta), expected, 1e-6);
}

TEST(SmoothSensitivityTest, NeverBelowLocalAndNeverAboveGlobal) {
  for (uint32_t dmax : {1u, 10u, 100u}) {
    for (double beta : {0.001, 0.01, 0.1, 1.0}) {
      const double s = SmoothSensitivityQF(dmax, 500, beta);
      EXPECT_GE(s, 2.0 * dmax);
      EXPECT_LE(s, 2.0 * 500 - 2.0 + 1e-9);
    }
  }
}

TEST(SmoothSensitivityTest, ScaleDecreasesWithEpsilon) {
  util::Rng rng(19);
  graph::Graph g = models::ErdosRenyiGnp(100, 0.1, rng);
  const double s1 = SmoothLaplaceScaleQF(g, 0.1, 1e-6);
  const double s2 = SmoothLaplaceScaleQF(g, 1.0, 1e-6);
  EXPECT_GT(s1, s2);
}

TEST(SmoothSensitivityTest, NodeDpScaleExceedsEdgeDpScale) {
  util::Rng rng(20);
  graph::Graph g = models::ErdosRenyiGnp(100, 0.1, rng);
  const uint32_t k = 5;
  const double node_scale =
      NodeDpSmoothLaplaceScaleQF(g.MaxDegree(), k, g.num_nodes(), 0.5, 0.01);
  // Edge-DP truncation scale at the same epsilon is 2k / eps.
  EXPECT_GT(node_scale, 2.0 * k / 0.5);
}

// --------------------------------------------------------- SampleAggregate --

TEST(RandomNodePartitionTest, CoversAllNodesDisjointly) {
  util::Rng rng(21);
  auto groups = RandomNodePartition(103, 10, rng);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups.value().size(), 10u);  // 103 / 10, remainder absorbed
  std::vector<bool> seen(103, false);
  size_t total = 0;
  for (const auto& group : groups.value()) {
    for (graph::NodeId v : group) {
      EXPECT_FALSE(seen[v]);
      seen[v] = true;
      ++total;
    }
  }
  EXPECT_EQ(total, 103u);
}

TEST(RandomNodePartitionTest, ValidatesGroupSize) {
  util::Rng rng(22);
  EXPECT_FALSE(RandomNodePartition(10, 0, rng).ok());
  EXPECT_FALSE(RandomNodePartition(10, 11, rng).ok());
  EXPECT_TRUE(RandomNodePartition(10, 10, rng).ok());
}

TEST(AverageVectorsTest, ComputesMean) {
  auto mean = AverageVectors({{1, 2}, {3, 4}});
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ(mean.value()[0], 2.0);
  EXPECT_DOUBLE_EQ(mean.value()[1], 3.0);
}

TEST(AverageVectorsTest, RejectsRaggedOrEmpty) {
  EXPECT_FALSE(AverageVectors({}).ok());
  EXPECT_FALSE(AverageVectors({{1.0}, {1.0, 2.0}}).ok());
}

}  // namespace
}  // namespace agmdp::dp

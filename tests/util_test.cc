#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "src/util/alias_sampler.h"
#include "src/util/flags.h"
#include "src/util/json.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::util {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("k must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "k must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be positive");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= 7; ++code) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(code)), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, OkStatusNormalizedToInternalError) {
  Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIndexCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.UniformIndex(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, trials / 10, 500);  // ~5 sigma
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, LaplaceMeanAndScale) {
  Rng rng(19);
  const double scale = 2.5;
  const int trials = 200000;
  double sum = 0.0, abs_sum = 0.0;
  for (int i = 0; i < trials; ++i) {
    double x = rng.Laplace(scale);
    sum += x;
    abs_sum += std::fabs(x);
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.05);          // mean 0
  EXPECT_NEAR(abs_sum / trials, scale, 0.05);    // E|X| = b
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  const double rate = 4.0;
  const int trials = 200000;
  double sum = 0.0;
  for (int i = 0; i < trials; ++i) sum += rng.Exponential(rate);
  EXPECT_NEAR(sum / trials, 1.0 / rate, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(29);
  const int trials = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < trials; ++i) {
    double x = rng.Gaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.02);
  EXPECT_NEAR(sq / trials, 1.0, 0.03);
}

TEST(RngTest, GeometricMean) {
  Rng rng(31);
  const double p = 0.25;
  const int trials = 200000;
  double sum = 0.0;
  for (int i = 0; i < trials; ++i) sum += static_cast<double>(rng.Geometric(p));
  // E[X] = (1 - p) / p = 3.
  EXPECT_NEAR(sum / trials, 3.0, 0.1);
  EXPECT_EQ(rng.Geometric(1.0), 0u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += parent.Next() == child.Next();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(41);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ---------------------------------------------------------- AliasSampler --

TEST(AliasSamplerTest, RejectsBadWeights) {
  EXPECT_FALSE(AliasSampler::Build({}).ok());
  EXPECT_FALSE(AliasSampler::Build({0.0, 0.0}).ok());
  EXPECT_FALSE(AliasSampler::Build({1.0, -0.5}).ok());
}

TEST(AliasSamplerTest, MatchesTargetDistribution) {
  std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  auto sampler = AliasSampler::Build(weights);
  ASSERT_TRUE(sampler.ok());
  Rng rng(43);
  std::vector<int> counts(4, 0);
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) ++counts[sampler.value().Sample(rng)];
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / 10.0;
    EXPECT_NEAR(static_cast<double>(counts[i]) / trials, expected, 0.01)
        << "category " << i;
  }
}

TEST(AliasSamplerTest, ZeroWeightCategoriesNeverSampled) {
  auto sampler = AliasSampler::Build({0.0, 1.0, 0.0, 1.0});
  ASSERT_TRUE(sampler.ok());
  Rng rng(47);
  for (int i = 0; i < 10000; ++i) {
    size_t s = sampler.value().Sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasSamplerTest, SingleCategory) {
  auto sampler = AliasSampler::Build({5.0});
  ASSERT_TRUE(sampler.ok());
  Rng rng(53);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.value().Sample(rng), 0u);
}

TEST(AliasSamplerTest, MassOfReportsNormalizedInput) {
  auto sampler = AliasSampler::Build({1.0, 3.0});
  ASSERT_TRUE(sampler.ok());
  EXPECT_DOUBLE_EQ(sampler.value().MassOf(0), 0.25);
  EXPECT_DOUBLE_EQ(sampler.value().MassOf(1), 0.75);
}

// ------------------------------------------------------------------ Flags --

TEST(FlagsTest, ParsesEqualsAndBooleanForms) {
  const char* argv[] = {"prog", "--trials=5", "--eps=0.3", "--full", "pos"};
  Flags flags = Flags::Parse(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("trials", 0), 5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", 0.0), 0.3);
  EXPECT_TRUE(flags.GetBool("full", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos");
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags = Flags::Parse(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("trials", 42), 42);
  EXPECT_EQ(flags.GetString("name", "x"), "x");
  EXPECT_FALSE(flags.Has("anything"));
}

TEST(FlagsTest, DoubleListParsing) {
  const char* argv[] = {"prog", "--eps=0.1,0.2,0.5"};
  Flags flags = Flags::Parse(2, const_cast<char**>(argv));
  std::vector<double> eps = flags.GetDoubleList("eps", {1.0});
  ASSERT_EQ(eps.size(), 3u);
  EXPECT_DOUBLE_EQ(eps[0], 0.1);
  EXPECT_DOUBLE_EQ(eps[2], 0.5);
  EXPECT_EQ(flags.GetDoubleList("other", {1.0, 2.0}).size(), 2u);
}

// ------------------------------------------------------------ JsonValue --
// Direct exercises of the reader's hostile-input defenses — the paths the
// artifact round-trip tests never hit because JsonWriter output is tame.

TEST(JsonValueTest, ParsesScalarsObjectsAndArrays) {
  auto doc = JsonValue::Parse(
      "{\"a\": 1.5, \"b\": [true, false, null, -2e3], \"c\": \"hi\"}");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc.value().is_object());
  ASSERT_EQ(doc.value().members().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.value().Find("a")->number_value(), 1.5);
  const JsonValue* b = doc.value().Find("b");
  ASSERT_TRUE(b != nullptr && b->is_array());
  ASSERT_EQ(b->array_items().size(), 4u);
  EXPECT_TRUE(b->array_items()[0].bool_value());
  EXPECT_EQ(b->array_items()[2].kind(), JsonValue::Kind::kNull);
  EXPECT_DOUBLE_EQ(b->array_items()[3].number_value(), -2000.0);
  EXPECT_EQ(doc.value().Find("c")->string_value(), "hi");
  EXPECT_EQ(doc.value().Find("missing"), nullptr);
}

TEST(JsonValueTest, DecodesEscapesIncludingUnicode) {
  auto doc = JsonValue::Parse(
      "\"a\\\"b\\\\c\\/d\\n\\t\\u0041\\u00e9\\u20ac\"");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  // \u0041 = 'A'; \u00e9 = e-acute (2-byte UTF-8); \u20ac = euro (3-byte).
  EXPECT_EQ(doc.value().string_value(),
            "a\"b\\c/d\n\tA\xc3\xa9\xe2\x82\xac");

  EXPECT_FALSE(JsonValue::Parse("\"\\u12\"").ok());      // truncated hex
  EXPECT_FALSE(JsonValue::Parse("\"\\ud800\"").ok());    // surrogate
  EXPECT_FALSE(JsonValue::Parse("\"\\q\"").ok());        // unknown escape
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("\"ctrl\x01char\"").ok());
}

TEST(JsonValueTest, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\" 1}", "{\"a\": }", "tru", "nul", "01x",
        "1.5.5", "--3", "{} trailing", "[1 2]", "{\"a\":1,}"}) {
    EXPECT_FALSE(JsonValue::Parse(bad).ok()) << bad;
  }
  // Non-finite numbers are not JSON.
  EXPECT_FALSE(JsonValue::Parse("1e999").ok());
}

TEST(JsonValueTest, RejectsDuplicateKeysAndDeepNesting) {
  EXPECT_FALSE(JsonValue::Parse("{\"k\": 1, \"k\": 2}").ok());

  std::string deep;
  for (int i = 0; i < 80; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 80; ++i) deep += "]";
  auto result = JsonValue::Parse(deep);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("nesting"), std::string::npos);

  // Just inside the bound parses fine.
  std::string shallow;
  for (int i = 0; i < 30; ++i) shallow += "[";
  shallow += "1";
  for (int i = 0; i < 30; ++i) shallow += "]";
  EXPECT_TRUE(JsonValue::Parse(shallow).ok());
}

TEST(JsonValueTest, ExactNumbersRoundTripBitwise) {
  const double values[] = {0.6931471805599453, 1e-300, 1.7976931348623157e308,
                           -0.1, 3.0000000000000004};
  for (double v : values) {
    auto doc = JsonValue::Parse(JsonNumberExact(v));
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc.value().number_value(), v);
  }
}

// ---------------------------------------------------- JsonValue hardening --
//
// The limits overload is the server's request parser: everything arriving
// on the socket goes through it, so every violation must be a typed
// InvalidArgument — never a crash, never an accepted document.

TEST(JsonHardeningTest, DepthCapIsConfigurable) {
  JsonLimits limits;
  limits.max_depth = 4;
  std::string nested = "[[[[1]]]]";  // depth 4: allowed
  EXPECT_TRUE(JsonValue::Parse(nested, limits).ok());
  std::string deeper = "[[[[[1]]]]]";  // depth 5: rejected
  auto result = JsonValue::Parse(deeper, limits);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("nesting"), std::string::npos);
}

TEST(JsonHardeningTest, AdversarialDeepNestingIsTypedNotFatal) {
  JsonLimits limits;
  limits.max_depth = 8;
  std::string bomb;
  for (int i = 0; i < 100000; ++i) bomb += "[";
  auto result = JsonValue::Parse(bomb, limits);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(JsonHardeningTest, ByteCapRejectsHugeInput) {
  JsonLimits limits;
  limits.max_bytes = 64;
  EXPECT_TRUE(JsonValue::Parse("{\"k\": 1}", limits).ok());
  std::string huge = "\"" + std::string(200, 'x') + "\"";
  auto result = JsonValue::Parse(huge, limits);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("64"), std::string::npos);
  // 0 = unlimited (the default): the same document parses.
  EXPECT_TRUE(JsonValue::Parse(huge).ok());
}

TEST(JsonHardeningTest, TruncatedAndMalformedUtf8IsRejected) {
  // Truncated multi-byte sequences (lead byte, then EOF or a non-
  // continuation byte).
  EXPECT_FALSE(JsonValue::Parse("\"\xc3\"").ok());          // 2-byte, cut
  EXPECT_FALSE(JsonValue::Parse("\"\xe2\x82\"").ok());      // 3-byte, cut
  EXPECT_FALSE(JsonValue::Parse("\"\xf0\x9f\x98\"").ok());  // 4-byte, cut
  EXPECT_FALSE(JsonValue::Parse("\"\xc3(\"").ok());   // bad continuation
  // Illegal lead bytes: bare continuation, overlong prefix, > U+10FFFF.
  EXPECT_FALSE(JsonValue::Parse("\"\x80\"").ok());
  EXPECT_FALSE(JsonValue::Parse("\"\xc0\xaf\"").ok());
  EXPECT_FALSE(JsonValue::Parse("\"\xf5\x80\x80\x80\"").ok());
  // All rejections are typed.
  auto result = JsonValue::Parse("\"\xc3\"");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  // Well-formed UTF-8 passes through byte-exact.
  auto ok = JsonValue::Parse("\"caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80\"");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().string_value(),
            "caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80");
}

// ---------------------------------------------------------- Checked flags --

TEST(FlagsTest, CheckedGettersAcceptWellFormedValues) {
  const char* argv[] = {"prog", "--threads=8", "--epsilon=0.69"};
  Flags flags = Flags::Parse(3, const_cast<char**>(argv));
  auto threads = flags.GetCheckedInt("threads", 1);
  ASSERT_TRUE(threads.ok());
  EXPECT_EQ(threads.value(), 8);
  auto epsilon = flags.GetCheckedDouble("epsilon", 0.0);
  ASSERT_TRUE(epsilon.ok());
  EXPECT_DOUBLE_EQ(epsilon.value(), 0.69);
  // Absent flags fall back, exactly like the unchecked getters.
  EXPECT_EQ(flags.GetCheckedInt("absent", 42).value(), 42);
  EXPECT_DOUBLE_EQ(flags.GetCheckedDouble("absent", 2.5).value(), 2.5);
}

TEST(FlagsTest, CheckedGettersRejectMalformedValues) {
  const char* argv[] = {"prog", "--threads=abc", "--epsilon=0.5x",
                        "--samples="};
  Flags flags = Flags::Parse(4, const_cast<char**>(argv));
  auto threads = flags.GetCheckedInt("threads", 1);
  ASSERT_FALSE(threads.ok());
  EXPECT_EQ(threads.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(threads.status().message().find("--threads"), std::string::npos);
  auto epsilon = flags.GetCheckedDouble("epsilon", 0.0);
  ASSERT_FALSE(epsilon.ok());
  EXPECT_EQ(epsilon.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(flags.GetCheckedInt("samples", 1).ok());
}

// ------------------------------------------------------ New status codes --

TEST(StatusTest, ResourceExhaustedAndUnavailableRoundTrip) {
  const Status exhausted = Status::ResourceExhausted("over budget");
  EXPECT_EQ(exhausted.code(), StatusCode::kResourceExhausted);
  const Status unavailable = Status::Unavailable("shutting down");
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);

  // Name round trip — the wire protocol ships codes by name.
  for (const Status& status : {exhausted, unavailable,
                               Status::InvalidArgument("x"),
                               Status::NotFound("y")}) {
    const StatusCode code =
        StatusCodeFromString(StatusCodeToString(status.code()));
    EXPECT_EQ(code, status.code());
    const Status rebuilt =
        Status::FromCodeMessage(code, std::string(status.message()));
    EXPECT_EQ(rebuilt, status);
  }
  EXPECT_EQ(StatusCodeFromString("NoSuchCode"), StatusCode::kInternal);
}

}  // namespace
}  // namespace agmdp::util

// Contract tests for the serving layer: release-artifact JSON round trips
// (including schema-version rejection), ReleaseEngine determinism —
// concurrent and batched serving bitwise-identical to sequential at 1/2/4
// pool threads — config validation before any budget is spent, and the
// SweepEngine reuse_fit ledger invariant (budget spent exactly once per
// cell).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/datasets/datasets.h"
#include "src/eval/sweep_engine.h"
#include "src/pipeline/release_engine.h"
#include "src/pipeline/release_pipeline.h"
#include "src/util/rng.h"

namespace agmdp {
namespace {

const graph::AttributedGraph& Input() {
  static const graph::AttributedGraph* input = [] {
    auto g = datasets::GenerateDataset(datasets::DatasetId::kPetster, 0.2, 3);
    AGMDP_CHECK_MSG(g.ok(), g.status().ToString().c_str());
    return new graph::AttributedGraph(std::move(g).value());
  }();
  return *input;
}

bool SameGraph(const graph::AttributedGraph& a,
               const graph::AttributedGraph& b) {
  return a.num_nodes() == b.num_nodes() &&
         a.attributes() == b.attributes() &&
         a.structure().CanonicalEdges() == b.structure().CanonicalEdges();
}

pipeline::PipelineConfig TestConfig(const std::string& model) {
  pipeline::PipelineConfig config;
  config.epsilon = std::log(2.0);
  config.model = model;
  config.sample.acceptance_iterations = 2;
  return config;
}

pipeline::ReleaseArtifact FitArtifact(const std::string& model,
                                      uint64_t seed = 5) {
  util::Rng rng(seed);
  auto artifact =
      pipeline::FitReleaseArtifact(Input(), TestConfig(model), rng);
  AGMDP_CHECK_MSG(artifact.ok(), artifact.status().ToString().c_str());
  return std::move(artifact).value();
}

// ------------------------------------------------------------- artifact --

TEST(ReleaseArtifactTest, JsonRoundTripIsBitExact) {
  const pipeline::ReleaseArtifact artifact = FitArtifact("tricycle");
  const std::string json = pipeline::ReleaseArtifactToJson(artifact);
  auto back = pipeline::ReleaseArtifactFromJson(json);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  EXPECT_EQ(back.value().schema_version, artifact.schema_version);
  EXPECT_EQ(back.value().model, artifact.model);
  EXPECT_EQ(back.value().config_fingerprint, artifact.config_fingerprint);
  // Bitwise double equality — the artifact serializes with 17 significant
  // digits exactly so a stored release resamples identically.
  EXPECT_EQ(back.value().epsilon_budget, artifact.epsilon_budget);
  EXPECT_EQ(back.value().epsilon_spent, artifact.epsilon_spent);
  EXPECT_EQ(back.value().ledger, artifact.ledger);
  EXPECT_EQ(back.value().params.w, artifact.params.w);
  EXPECT_EQ(back.value().params.theta_x, artifact.params.theta_x);
  EXPECT_EQ(back.value().params.theta_f, artifact.params.theta_f);
  EXPECT_EQ(back.value().params.degree_sequence,
            artifact.params.degree_sequence);
  EXPECT_EQ(back.value().params.target_triangles,
            artifact.params.target_triangles);
  EXPECT_EQ(back.value().acceptance_iterations,
            artifact.acceptance_iterations);
  EXPECT_EQ(back.value().acceptance_tolerance,
            artifact.acceptance_tolerance);
  EXPECT_EQ(back.value().min_acceptance, artifact.min_acceptance);

  // And the round trip is a fixed point: serializing again is
  // byte-identical.
  EXPECT_EQ(pipeline::ReleaseArtifactToJson(back.value()), json);
}

TEST(ReleaseArtifactTest, FileRoundTrip) {
  const pipeline::ReleaseArtifact artifact = FitArtifact("fcl");
  const std::string path = testing::TempDir() + "/artifact_roundtrip.json";
  ASSERT_TRUE(pipeline::WriteReleaseArtifact(artifact, path).ok());
  auto back = pipeline::ReadReleaseArtifact(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(pipeline::ReleaseArtifactToJson(back.value()),
            pipeline::ReleaseArtifactToJson(artifact));
  std::remove(path.c_str());

  EXPECT_FALSE(pipeline::ReadReleaseArtifact("/nonexistent/artifact").ok());
}

TEST(ReleaseArtifactTest, RejectsBumpedSchemaVersion) {
  pipeline::ReleaseArtifact artifact = FitArtifact("fcl");
  artifact.schema_version = pipeline::kReleaseArtifactSchemaVersion + 1;
  const std::string json = pipeline::ReleaseArtifactToJson(artifact);
  auto back = pipeline::ReleaseArtifactFromJson(json);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(back.status().message().find("schema version"),
            std::string::npos);
  // A bumped artifact is also rejected at the write boundary.
  EXPECT_FALSE(
      pipeline::WriteReleaseArtifact(artifact, testing::TempDir() + "/x.json")
          .ok());
}

TEST(ReleaseArtifactTest, RejectsGarbageDocumentsAndValues) {
  EXPECT_FALSE(pipeline::ReleaseArtifactFromJson("").ok());
  EXPECT_FALSE(pipeline::ReleaseArtifactFromJson("{").ok());
  EXPECT_FALSE(pipeline::ReleaseArtifactFromJson("{}").ok());
  EXPECT_FALSE(pipeline::ReleaseArtifactFromJson("[1, 2]").ok());

  // NaN serializes as null, which the reader rejects as a theta entry.
  pipeline::ReleaseArtifact artifact = FitArtifact("fcl");
  artifact.params.theta_x[0] = std::nan("");
  EXPECT_FALSE(
      pipeline::ReleaseArtifactFromJson(pipeline::ReleaseArtifactToJson(artifact))
          .ok());

  // Negative mass fails validation even though it parses as a number.
  artifact = FitArtifact("fcl");
  artifact.params.theta_f[0] = -0.25;
  EXPECT_FALSE(
      pipeline::ReleaseArtifactFromJson(pipeline::ReleaseArtifactToJson(artifact))
          .ok());

  // Truncated document.
  const std::string json =
      pipeline::ReleaseArtifactToJson(FitArtifact("fcl"));
  EXPECT_FALSE(
      pipeline::ReleaseArtifactFromJson(json.substr(0, json.size() / 2)).ok());
}

TEST(ReleaseArtifactTest, RejectsInconsistentPrivacyAccounting) {
  // The audit fields must agree with each other: a doctored epsilon_spent
  // that contradicts the ledger (or overdraws the budget) is a tampered
  // artifact, not a loadable release.
  pipeline::ReleaseArtifact artifact = FitArtifact("fcl");
  artifact.epsilon_spent = 0.1;  // ledger still sums to ~ln 2
  EXPECT_FALSE(pipeline::ValidateReleaseArtifact(artifact).ok());
  EXPECT_FALSE(
      pipeline::ReleaseArtifactFromJson(pipeline::ReleaseArtifactToJson(artifact))
          .ok());

  artifact = FitArtifact("fcl");
  artifact.epsilon_budget = artifact.epsilon_spent / 2.0;
  EXPECT_FALSE(pipeline::ValidateReleaseArtifact(artifact).ok());

  // Non-private artifacts (no ledger, zero budget) remain valid.
  pipeline::PipelineConfig config;
  config.model = "fcl";
  const pipeline::ReleaseArtifact non_private =
      pipeline::MakeReleaseArtifact(FitArtifact("fcl").params, config);
  EXPECT_TRUE(pipeline::ValidateReleaseArtifact(non_private).ok());
}

// --------------------------------------------------------------- engine --

TEST(ReleaseEngineTest, BatchedServingMatchesSequentialAt124PoolThreads) {
  const pipeline::ReleaseArtifact artifact = FitArtifact("fcl");
  constexpr int kSamples = 6;
  pipeline::SampleRequest base;
  base.seed = 99;

  // Sequential reference: one Sample call per request on a 1-thread engine.
  pipeline::EngineOptions options;
  options.threads = 1;
  auto reference_engine = pipeline::ReleaseEngine::Create(artifact, options);
  ASSERT_TRUE(reference_engine.ok())
      << reference_engine.status().ToString();
  std::vector<graph::AttributedGraph> sequential;
  for (int i = 0; i < kSamples; ++i) {
    pipeline::SampleRequest request = base;
    request.sequence = static_cast<uint64_t>(i);
    auto g = reference_engine.value()->Sample(request);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    sequential.push_back(std::move(g).value());
  }
  EXPECT_GT(sequential[0].num_edges(), 0u);

  for (int threads : {1, 2, 4}) {
    pipeline::EngineOptions pool_options;
    pool_options.threads = threads;
    auto engine = pipeline::ReleaseEngine::Create(artifact, pool_options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    auto graphs = engine.value()->SampleMany(kSamples, base);
    ASSERT_TRUE(graphs.ok()) << graphs.status().ToString();
    ASSERT_EQ(graphs.value().size(), static_cast<size_t>(kSamples));
    for (int i = 0; i < kSamples; ++i) {
      EXPECT_TRUE(SameGraph(sequential[static_cast<size_t>(i)],
                            graphs.value()[static_cast<size_t>(i)]))
          << "diverged at request " << i << " with " << threads
          << " pool threads";
    }
  }
}

TEST(ReleaseEngineTest, ConcurrentSampleCallsMatchSequential) {
  const pipeline::ReleaseArtifact artifact = FitArtifact("fcl");
  constexpr int kSamples = 8;
  auto engine = pipeline::ReleaseEngine::Create(artifact);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  std::vector<graph::AttributedGraph> sequential(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    pipeline::SampleRequest request;
    request.seed = 123;
    request.sequence = static_cast<uint64_t>(i);
    auto g = engine.value()->Sample(request);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    sequential[static_cast<size_t>(i)] = std::move(g).value();
  }

  // The same requests issued from concurrent caller threads against the
  // same engine handle must produce the same bits.
  std::vector<graph::AttributedGraph> concurrent(kSamples);
  std::vector<util::Status> statuses(kSamples);
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&, t] {
      for (int i = t; i < kSamples; i += 4) {
        pipeline::SampleRequest request;
        request.seed = 123;
        request.sequence = static_cast<uint64_t>(i);
        auto g = engine.value()->Sample(request);
        if (g.ok()) {
          concurrent[static_cast<size_t>(i)] = std::move(g).value();
        } else {
          statuses[static_cast<size_t>(i)] = g.status();
        }
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  for (int i = 0; i < kSamples; ++i) {
    ASSERT_TRUE(statuses[static_cast<size_t>(i)].ok())
        << statuses[static_cast<size_t>(i)].ToString();
    EXPECT_TRUE(SameGraph(sequential[static_cast<size_t>(i)],
                          concurrent[static_cast<size_t>(i)]))
        << "request " << i;
  }
}

TEST(ReleaseEngineTest, CalibrationIsAPureFunctionOfTheArtifact) {
  const pipeline::ReleaseArtifact artifact = FitArtifact("fcl");
  pipeline::EngineOptions one;
  one.threads = 1;
  pipeline::EngineOptions four;
  four.threads = 4;
  auto a = pipeline::ReleaseEngine::Create(artifact, one);
  auto b = pipeline::ReleaseEngine::Create(artifact, four);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a.value()->calibrated());
  EXPECT_EQ(a.value()->calibrated_acceptance(),
            b.value()->calibrated_acceptance());
}

TEST(ReleaseEngineTest, TriangleModelServesWellFormedGraphs) {
  const pipeline::ReleaseArtifact artifact = FitArtifact("tricycle");
  auto engine = pipeline::ReleaseEngine::Create(artifact);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto graphs = engine.value()->SampleMany(2, pipeline::SampleRequest{});
  ASSERT_TRUE(graphs.ok()) << graphs.status().ToString();
  for (const graph::AttributedGraph& g : graphs.value()) {
    EXPECT_EQ(g.num_nodes(), Input().num_nodes());
    EXPECT_GT(g.num_edges(), 0u);
    EXPECT_EQ(g.num_attributes(), Input().num_attributes());
  }
}

TEST(ReleaseEngineTest, RejectsTamperedArtifacts) {
  pipeline::ReleaseArtifact artifact = FitArtifact("fcl");
  artifact.model = "no_such_model";
  EXPECT_FALSE(pipeline::ReleaseEngine::Create(artifact).ok());

  artifact = FitArtifact("fcl");
  artifact.params.theta_x[0] = -1.0;
  EXPECT_FALSE(pipeline::ReleaseEngine::Create(artifact).ok());

  artifact = FitArtifact("fcl");
  artifact.schema_version = pipeline::kReleaseArtifactSchemaVersion + 1;
  EXPECT_FALSE(pipeline::ReleaseEngine::Create(artifact).ok());
}

// ------------------------------------------------------------- validate --

TEST(PipelineConfigValidateTest, CatchesBadConfigsBeforeAnyBudgetIsSpent) {
  pipeline::PipelineConfig config;
  EXPECT_TRUE(config.Validate().ok());

  config = pipeline::PipelineConfig();
  config.model = "no_such_model";
  auto st = config.Validate();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("tricycle"), std::string::npos);

  config = pipeline::PipelineConfig();
  config.epsilon = -1.0;
  EXPECT_FALSE(config.Validate().ok());

  config = pipeline::PipelineConfig();
  config.epsilon = 0.5;
  config.split.theta_x = 0.4;
  config.split.theta_f = 0.4;
  config.split.degree_seq = 0.4;
  EXPECT_FALSE(config.Validate().ok());

  config = pipeline::PipelineConfig();
  config.split.theta_x = -0.1;
  EXPECT_FALSE(config.Validate().ok());

  // A custom split must fund every stage the model spends: the default
  // tricycle model learns a triangle target, so a zero triangles share
  // would abort mid-fit after the other stages already spent — Validate
  // has to reject it up front.
  config = pipeline::PipelineConfig();
  config.split.theta_x = 0.2;
  config.split.theta_f = 0.2;
  config.split.degree_seq = 0.2;
  auto zero_triangles = config.Validate();
  ASSERT_FALSE(zero_triangles.ok());
  EXPECT_NE(zero_triangles.message().find("triangle"), std::string::npos);
  // The same split is fine for a model without a triangle target.
  config.model = "fcl";
  EXPECT_TRUE(config.Validate().ok());

  config = pipeline::PipelineConfig();
  config.sample.acceptance_iterations = -1;
  EXPECT_FALSE(config.Validate().ok());

  config = pipeline::PipelineConfig();
  config.sample.min_acceptance = 1.5;
  EXPECT_FALSE(config.Validate().ok());

  // The pipeline entry points surface the same typed error.
  config = pipeline::PipelineConfig();
  config.model = "no_such_model";
  util::Rng rng(1);
  auto fit = pipeline::FitPrivateParams(Input(), config, rng);
  ASSERT_FALSE(fit.ok());
  EXPECT_EQ(fit.status().code(), util::StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------- sweep reuse --

TEST(SweepReuseFitTest, BudgetSpentExactlyOncePerCell) {
  std::vector<eval::SweepInput> inputs = {
      eval::SweepInput{"petster", Input(), nullptr}};
  eval::SweepSpec spec;
  spec.models = {"fcl", "tricycle"};
  spec.epsilons = {std::log(2.0)};
  spec.repeats = 3;
  spec.seed = 11;
  spec.acceptance_iterations = 1;
  spec.reuse_fit = true;

  auto result = eval::RunSweep(inputs, spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().cells.size(), 2u);
  for (const eval::SweepCell& cell : result.value().cells) {
    ASSERT_TRUE(cell.error.empty()) << cell.error;
    // The ledger invariant: one fit per cell, spending the full epsilon
    // exactly once — not repeats * epsilon.
    EXPECT_EQ(cell.fits, 1);
    EXPECT_DOUBLE_EQ(cell.epsilon_spent, cell.epsilon);
    EXPECT_EQ(cell.repeats, spec.repeats);
    ASSERT_FALSE(cell.metrics.empty());
    for (const eval::MetricStats& metric : cell.metrics) {
      EXPECT_TRUE(std::isfinite(metric.mean)) << metric.name;
    }
  }

  // The default protocol still refits per repeat.
  spec.reuse_fit = false;
  auto refit = eval::RunSweep(inputs, spec);
  ASSERT_TRUE(refit.ok());
  for (const eval::SweepCell& cell : refit.value().cells) {
    EXPECT_EQ(cell.fits, spec.repeats);
  }
}

TEST(SweepReuseFitTest, DeterministicAcrossWorkerCounts) {
  std::vector<eval::SweepInput> inputs = {
      eval::SweepInput{"petster", Input(), nullptr}};
  eval::SweepSpec spec;
  spec.models = {"fcl"};
  spec.epsilons = {0.5, 1.0};
  spec.repeats = 2;
  spec.seed = 21;
  spec.acceptance_iterations = 1;
  spec.reuse_fit = true;

  auto serial = eval::RunSweep(inputs, spec);
  eval::SweepSpec parallel = spec;
  parallel.threads = 4;
  auto threaded = eval::RunSweep(inputs, parallel);
  ASSERT_TRUE(serial.ok() && threaded.ok());
  EXPECT_EQ(eval::SweepResultToJson(serial.value(), false),
            eval::SweepResultToJson(threaded.value(), false));
  EXPECT_NE(eval::SweepResultToJson(serial.value(), false)
                .find("\"fits\": 1"),
            std::string::npos);
}

}  // namespace
}  // namespace agmdp

// Contract tests for the multi-scenario sweep engine: grid shape, exact
// budget accounting per cell, graceful per-cell failure, and the
// determinism contract — byte-identical JSON across runs and across worker
// thread counts (per-cell RNG substreams are pure functions of the spec).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "src/datasets/datasets.h"
#include "src/eval/sweep_engine.h"
#include "src/util/status.h"

namespace agmdp::eval {
namespace {

const graph::AttributedGraph& Input() {
  static const graph::AttributedGraph* input = [] {
    auto g = datasets::GenerateDataset(datasets::DatasetId::kPetster, 0.1, 3);
    AGMDP_CHECK_MSG(g.ok(), g.status().ToString().c_str());
    return new graph::AttributedGraph(std::move(g).value());
  }();
  return *input;
}

std::vector<SweepInput> Inputs() {
  return {SweepInput{"petster", Input(), nullptr}};
}

SweepSpec SmallSpec() {
  SweepSpec spec;
  spec.models = {"fcl", "erdos_renyi"};
  spec.epsilons = {0.5, 1.0};
  spec.repeats = 2;
  spec.seed = 77;
  spec.acceptance_iterations = 1;
  return spec;
}

TEST(SweepEngineTest, RejectsInvalidSpecs) {
  const SweepSpec base = SmallSpec();
  EXPECT_FALSE(RunSweep({}, base).ok());

  SweepSpec bad = base;
  bad.models = {"no_such_model"};
  auto r = RunSweep(Inputs(), bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("tricycle"), std::string::npos);

  bad = base;
  bad.models.clear();
  EXPECT_FALSE(RunSweep(Inputs(), bad).ok());

  bad = base;
  bad.epsilons = {0.5, -1.0};
  EXPECT_FALSE(RunSweep(Inputs(), bad).ok());

  bad = base;
  bad.epsilons.clear();
  EXPECT_FALSE(RunSweep(Inputs(), bad).ok());

  bad = base;
  bad.repeats = 0;
  EXPECT_FALSE(RunSweep(Inputs(), bad).ok());

  SweepSpec unknown_dataset = base;
  unknown_dataset.datasets = {"no_such_dataset"};
  EXPECT_FALSE(RunSweepOnDatasets(unknown_dataset).ok());
}

TEST(SweepEngineTest, GridShapeBudgetAndMetrics) {
  auto result = RunSweep(Inputs(), SmallSpec());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const SweepResult& sweep = result.value();

  // models outer, epsilons inner, one input.
  ASSERT_EQ(sweep.cells.size(), 4u);
  EXPECT_EQ(sweep.cells[0].model, "fcl");
  EXPECT_DOUBLE_EQ(sweep.cells[0].epsilon, 0.5);
  EXPECT_EQ(sweep.cells[1].model, "fcl");
  EXPECT_DOUBLE_EQ(sweep.cells[1].epsilon, 1.0);
  EXPECT_EQ(sweep.cells[3].model, "erdos_renyi");

  for (const SweepCell& cell : sweep.cells) {
    ASSERT_TRUE(cell.error.empty()) << cell.error;
    EXPECT_EQ(cell.dataset, "petster");
    EXPECT_EQ(cell.repeats, 2);
    // Exact budget accounting surfaces in the sweep aggregate.
    EXPECT_DOUBLE_EQ(cell.epsilon_spent, cell.epsilon);
    // All five metric families are present with sane aggregates.
    ASSERT_FALSE(cell.metrics.empty());
    for (const char* name :
         {"degree_ks", "degree_kl", "degree_ccdf_distance",
          "clustering_ccdf_distance", "triangles_re", "theta_f_mae",
          "degree_assortativity_delta", "attribute_assortativity_delta",
          "homophily_delta_a0", "homophily_delta_mean_abs"}) {
      bool found = false;
      for (const MetricStats& metric : cell.metrics) {
        if (metric.name != name) continue;
        found = true;
        EXPECT_TRUE(std::isfinite(metric.mean)) << name;
        EXPECT_GE(metric.stddev, 0.0) << name;
      }
      EXPECT_TRUE(found) << "missing metric " << name;
    }
  }
}

TEST(SweepEngineTest, JsonIsByteIdenticalAcrossRunsAndThreadCounts) {
  auto first = RunSweep(Inputs(), SmallSpec());
  auto second = RunSweep(Inputs(), SmallSpec());
  SweepSpec parallel = SmallSpec();
  parallel.threads = 4;
  auto third = RunSweep(Inputs(), parallel);
  ASSERT_TRUE(first.ok() && second.ok() && third.ok());

  const std::string a = SweepResultToJson(first.value(), false);
  const std::string b = SweepResultToJson(second.value(), false);
  const std::string c = SweepResultToJson(third.value(), false);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);

  // Schema markers and balanced structure.
  EXPECT_NE(a.find("\"schema\": \"agmdp.sweep.v4\""), std::string::npos);
  EXPECT_NE(a.find("\"mechanism_summary\": ["), std::string::npos);
  EXPECT_NE(a.find("\"cells\": ["), std::string::npos);
  EXPECT_NE(a.find("\"metrics\": {"), std::string::npos);
  EXPECT_NE(a.find("\"stddev\":"), std::string::npos);
  EXPECT_EQ(std::count(a.begin(), a.end(), '{'),
            std::count(a.begin(), a.end(), '}'));
  EXPECT_EQ(std::count(a.begin(), a.end(), '['),
            std::count(a.begin(), a.end(), ']'));
  // No timing fields in the deterministic serialization.
  EXPECT_EQ(a.find("seconds"), std::string::npos);

  // With timing enabled the fields appear (values may differ run to run).
  const std::string timed = SweepResultToJson(first.value(), true);
  EXPECT_NE(timed.find("\"total_seconds\":"), std::string::npos);
  EXPECT_NE(timed.find("\"seconds_mean\":"), std::string::npos);
}

TEST(SweepEngineTest, ChangingTheSeedChangesTheResults) {
  auto a = RunSweep(Inputs(), SmallSpec());
  SweepSpec other = SmallSpec();
  other.seed = 78;
  auto b = RunSweep(Inputs(), other);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(SweepResultToJson(a.value(), false),
            SweepResultToJson(b.value(), false));
}

TEST(SweepEngineTest, FailingCellIsRecordedNotFatal) {
  SweepSpec spec = SmallSpec();
  // An overdrawn absolute split: every cell must fail gracefully.
  spec.split.theta_x = 0.4;
  spec.split.theta_f = 0.4;
  spec.split.degree_seq = 0.4;
  spec.epsilons = {0.5};
  auto result = RunSweep(Inputs(), spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const SweepCell& cell : result.value().cells) {
    EXPECT_FALSE(cell.error.empty());
    EXPECT_TRUE(cell.metrics.empty());
  }
  // The failure is carried into the JSON rather than aborting it.
  const std::string json = SweepResultToJson(result.value(), false);
  EXPECT_NE(json.find("\"error\":"), std::string::npos);
}

TEST(SweepEngineTest, RunSweepOnDatasetsGeneratesStandIns) {
  SweepSpec spec;
  spec.datasets = {"lastfm"};
  spec.dataset_scale = 0.02;
  spec.models = {"fcl"};
  spec.epsilons = {1.0};
  spec.repeats = 1;
  spec.seed = 5;
  spec.acceptance_iterations = 1;
  auto result = RunSweepOnDatasets(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().cells.size(), 1u);
  EXPECT_EQ(result.value().cells[0].dataset, "lastfm");
  EXPECT_TRUE(result.value().cells[0].error.empty())
      << result.value().cells[0].error;
}

}  // namespace
}  // namespace agmdp::eval

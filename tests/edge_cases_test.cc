// Boundary-condition and robustness tests: degenerate graphs, extreme
// parameters and hostile-but-legal inputs must produce defined behaviour
// (a Status, a sensible default, or a clamped value — never UB or a hang).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/agm/agm_dp.h"
#include "src/agm/theta_f.h"
#include "src/agm/theta_x.h"
#include "src/dp/constrained_inference.h"
#include "src/dp/edge_truncation.h"
#include "src/dp/ladder_mechanism.h"
#include "src/graph/clustering.h"
#include "src/graph/components.h"
#include "src/graph/degree.h"
#include "src/graph/paths.h"
#include "src/graph/triangle_count.h"
#include "src/models/chung_lu.h"
#include "src/models/tricycle.h"
#include "src/stats/ccdf.h"
#include "src/stats/metrics.h"
#include "src/util/rng.h"

namespace agmdp {
namespace {

// ----------------------------------------------------- degenerate graphs --

TEST(EdgeCasesTest, EmptyGraphAlgorithms) {
  graph::Graph g(0);
  EXPECT_EQ(graph::CountTriangles(g), 0u);
  EXPECT_EQ(graph::CountWedges(g), 0u);
  EXPECT_DOUBLE_EQ(graph::AverageLocalClustering(g), 0.0);
  EXPECT_DOUBLE_EQ(graph::GlobalClusteringCoefficient(g), 0.0);
  EXPECT_DOUBLE_EQ(graph::AverageDegree(g), 0.0);
  uint32_t components = 99;
  graph::ConnectedComponents(g, &components);
  EXPECT_EQ(components, 0u);
  EXPECT_TRUE(graph::IsConnected(g));  // vacuously
  EXPECT_TRUE(graph::LargestComponent(g).empty());
}

TEST(EdgeCasesTest, SingleNodeGraph) {
  graph::Graph g(1);
  EXPECT_EQ(g.MaxDegree(), 0u);
  EXPECT_FALSE(g.AddEdge(0, 0));
  util::Rng rng(1);
  graph::PathStats stats = graph::EstimatePathStats(g, 10, rng);
  EXPECT_DOUBLE_EQ(stats.avg_path_length, 0.0);
}

TEST(EdgeCasesTest, TruncationOnEdgelessGraph) {
  graph::Graph g(10);
  graph::Graph t = dp::TruncateEdges(g, 3);
  EXPECT_EQ(t.num_edges(), 0u);
  EXPECT_EQ(t.num_nodes(), 10u);
}

TEST(EdgeCasesTest, AttributedGraphWithZeroAttributes) {
  graph::AttributedGraph g(5, 0);
  EXPECT_EQ(graph::NumNodeConfigs(0), 1u);
  EXPECT_EQ(graph::NumEdgeConfigs(0), 1u);
  g.structure().AddEdge(0, 1);
  std::vector<double> theta_f = agm::ComputeThetaF(g);
  ASSERT_EQ(theta_f.size(), 1u);
  EXPECT_DOUBLE_EQ(theta_f[0], 1.0);
}

// --------------------------------------------------------- DP mechanisms --

TEST(EdgeCasesTest, DpDegreeSequenceEmptyInput) {
  util::Rng rng(2);
  EXPECT_TRUE(dp::DpDegreeSequence({}, 1.0, rng).empty());
}

TEST(EdgeCasesTest, IsotonicRegressionSingletonAndEmpty) {
  EXPECT_TRUE(dp::IsotonicRegressionL2({}).empty());
  std::vector<double> one = dp::IsotonicRegressionL2({3.5});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 3.5);
}

TEST(EdgeCasesTest, LadderOnTriangleFreeGraph) {
  // base a_max can be 0 (no wedges at all): rung widths grow from zero.
  graph::Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  g.AddEdge(4, 5);  // perfect matching: no two-hop pairs
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    auto r = dp::DpTriangleCount(g, 0.5, rng);
    ASSERT_TRUE(r.ok());
    EXPECT_GE(r.value(), 0);
  }
}

TEST(EdgeCasesTest, LadderAtExtremeEpsilons) {
  util::Rng rng(4);
  graph::Graph g(10);
  for (graph::NodeId v = 1; v < 10; ++v) g.AddEdge(0, v);
  // Very small epsilon must terminate and stay in range.
  auto tiny = dp::DpTriangleCount(g, 1e-4, rng);
  ASSERT_TRUE(tiny.ok());
  EXPECT_GE(tiny.value(), 0);
  EXPECT_LE(tiny.value(), 120);  // C(10,3)
  // Very large epsilon returns the exact count (0 for a star).
  auto huge = dp::DpTriangleCount(g, 1e6, rng);
  ASSERT_TRUE(huge.ok());
  EXPECT_EQ(huge.value(), 0);
}

TEST(EdgeCasesTest, TruncationWithKOne) {
  // k = 1 is legal for the operator itself (the 2k sensitivity bound of
  // Proposition 1 needs k > 1, which LearnCorrelationsDp's heuristic
  // respects); every node ends with degree <= 1.
  util::Rng rng(5);
  graph::Graph g(20);
  for (graph::NodeId v = 1; v < 20; ++v) g.AddEdge(0, v);
  graph::Graph t = dp::TruncateEdges(g, 1);
  EXPECT_LE(t.MaxDegree(), 1u);
}

// -------------------------------------------------------------- sampling --

TEST(EdgeCasesTest, FclWithZeroTotalDegree) {
  util::Rng rng(6);
  std::vector<uint32_t> degrees(10, 0);
  auto g = models::FastChungLu(degrees, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_edges(), 0u);
}

TEST(EdgeCasesTest, TriCycLeWithZeroTriangleTarget) {
  util::Rng rng(7);
  std::vector<uint32_t> degrees(50, 3);
  auto result = models::GenerateTriCycLe(degrees, 0, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().reached_target);
  EXPECT_EQ(result.value().proposals, 0u);  // no rewiring needed
}

TEST(EdgeCasesTest, SampleAttributesWithPointMass) {
  util::Rng rng(8);
  std::vector<double> theta = {0.0, 1.0, 0.0, 0.0};
  auto attrs = agm::SampleAttributes(theta, 100, rng);
  ASSERT_TRUE(attrs.ok());
  for (auto a : attrs.value()) EXPECT_EQ(a, 1u);
}

TEST(EdgeCasesTest, AgmDpOnMinimalGraph) {
  // Two nodes, one edge: the smallest legal input must run end to end.
  graph::AttributedGraph g(2, 1);
  g.structure().AddEdge(0, 1);
  ASSERT_TRUE(g.SetAttributes({0, 1}).ok());
  util::Rng rng(9);
  agm::AgmDpOptions options;
  options.epsilon = 1.0;
  options.sample.acceptance_iterations = 1;
  auto result = agm::SynthesizeAgmDp(g, options, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().graph.num_nodes(), 2u);
}

TEST(EdgeCasesTest, AgmDpRejectsSingleNode) {
  graph::AttributedGraph g(1, 1);
  util::Rng rng(10);
  agm::AgmDpOptions options;
  EXPECT_FALSE(agm::SynthesizeAgmDp(g, options, rng).ok());
}

// ------------------------------------------------------------- statistics --

TEST(EdgeCasesTest, MetricsOnConstantInputs) {
  EXPECT_DOUBLE_EQ(stats::HellingerDistance({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(stats::KsStatistic({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(stats::KsStatistic({1}, {}), 1.0);
  auto ccdf = stats::Ccdf({5.0});
  ASSERT_EQ(ccdf.size(), 1u);
  EXPECT_DOUBLE_EQ(ccdf[0].second, 0.0);
}

TEST(EdgeCasesTest, RelativeErrorAgainstZeroTruth) {
  // Guarded by the floor; never divides by zero.
  const double e = stats::RelativeError(0.5, 0.0);
  EXPECT_TRUE(std::isfinite(e));
}

}  // namespace
}  // namespace agmdp

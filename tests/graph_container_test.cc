// Binary graph container: round-trip fidelity, byte-identical writer
// paths, typed corruption errors (never a crash), and bitwise equality of
// the full fused evaluation suite between the mmap-backed and in-RAM
// snapshots at several thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/datasets/datasets.h"
#include "src/eval/utility_report.h"
#include "src/graph/csr.h"
#include "src/graph/graph_container.h"
#include "src/graph/graph_io.h"

namespace agmdp::graph {
namespace {

AttributedGraph TestGraph() {
  auto g = datasets::GenerateDataset(datasets::DatasetId::kLastFm,
                                     /*scale=*/0.05, /*seed=*/7);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

// Small page size keeps test files tiny while still exercising multiple
// pages and the alignment logic.
BinaryGraphOptions SmallPages() {
  BinaryGraphOptions options;
  options.page_size = 4096;
  return options;
}

class GraphContainerTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    const std::string path =
        ::testing::TempDir() + "graph_container_test_" + name;
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& path : paths_) std::remove(path.c_str());
  }

  // Flips one bit at `offset` in an existing file.
  void FlipByte(const std::string& path, uint64_t offset) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
  }

  std::vector<uint8_t> ReadAll(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    EXPECT_TRUE(f.is_open()) << path;
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(f), {});
  }

  std::vector<std::string> paths_;
};

void ExpectSnapshotsEqual(const AttributedCsrGraph& a,
                          const AttributedCsrGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_attributes, b.num_attributes);
  EXPECT_EQ(a.structure.MaxDegree(), b.structure.MaxDegree());
  EXPECT_EQ(a.structure.degrees(), b.structure.degrees());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    const NeighborRange ra = a.structure.Neighbors(v);
    const NeighborRange rb = b.structure.Neighbors(v);
    ASSERT_EQ(ra.size(), rb.size()) << "node " << v;
    EXPECT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin()))
        << "neighbor range differs at node " << v;
    EXPECT_EQ(a.attribute(v), b.attribute(v)) << "node " << v;
  }
}

TEST_F(GraphContainerTest, RoundTripMatchesInRamSnapshot) {
  const AttributedGraph g = TestGraph();
  const std::string path = TempPath("roundtrip.agmbin");
  ASSERT_TRUE(WriteBinaryGraph(g, path, SmallPages()).ok());

  auto opened = OpenBinarySnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE(opened.value().structure.is_external());
  ExpectSnapshotsEqual(AttributedCsrGraph::FromGraph(g), opened.value());
}

TEST_F(GraphContainerTest, SnapshotCopiesShareTheMapping) {
  const AttributedGraph g = TestGraph();
  const std::string path = TempPath("copies.agmbin");
  ASSERT_TRUE(WriteBinaryGraph(g, path, SmallPages()).ok());
  AttributedCsrGraph copy;
  {
    auto opened = OpenBinarySnapshot(path);
    ASSERT_TRUE(opened.ok());
    copy = opened.value();  // copy of an external snapshot
  }
  // The original Result (and its snapshot) is gone; the copy must keep
  // the mapping alive on its own.
  ExpectSnapshotsEqual(AttributedCsrGraph::FromGraph(g), copy);
}

TEST_F(GraphContainerTest, ConverterProducesSameBytesAsMemoryWriter) {
  const AttributedGraph g = TestGraph();
  const std::string prefix = TempPath("textpair");
  paths_.push_back(prefix + ".edges");
  paths_.push_back(prefix + ".attrs");
  ASSERT_TRUE(WriteAttributedGraph(g, prefix).ok());

  const std::string from_ram = TempPath("from_ram.agmbin");
  const std::string from_text = TempPath("from_text.agmbin");
  ASSERT_TRUE(WriteBinaryGraph(g, from_ram, SmallPages()).ok());
  ConvertOptions options;
  options.binary = SmallPages();
  auto info = ConvertTextToBinary(prefix, from_text, options);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().num_nodes, g.num_nodes());
  EXPECT_EQ(info.value().num_edges, g.num_edges());
  EXPECT_TRUE(info.value().checksums_ok);

  EXPECT_EQ(ReadAll(from_ram), ReadAll(from_text))
      << "streaming converter and in-RAM writer must emit identical files";
}

TEST_F(GraphContainerTest, MmapEvalBitwiseIdenticalToInRamAcrossThreads) {
  const AttributedGraph original = TestGraph();
  auto released_r = datasets::GenerateDataset(datasets::DatasetId::kLastFm,
                                              /*scale=*/0.05, /*seed=*/11);
  ASSERT_TRUE(released_r.ok());
  const AttributedGraph released = std::move(released_r).value();

  const std::string orig_path = TempPath("orig.agmbin");
  const std::string rel_path = TempPath("rel.agmbin");
  ASSERT_TRUE(WriteBinaryGraph(original, orig_path, SmallPages()).ok());
  ASSERT_TRUE(WriteBinaryGraph(released, rel_path, SmallPages()).ok());
  auto orig_mmap = OpenBinarySnapshot(orig_path);
  auto rel_mmap = OpenBinarySnapshot(rel_path);
  ASSERT_TRUE(orig_mmap.ok() && rel_mmap.ok());

  const AttributedCsrGraph orig_ram = AttributedCsrGraph::FromGraph(original);
  const AttributedCsrGraph rel_ram = AttributedCsrGraph::FromGraph(released);

  for (int threads : {1, 2, 4}) {
    const auto ram = eval::EvaluateRelease(
        eval::ProfileReference(orig_ram, threads), rel_ram, threads);
    const auto mmap = eval::EvaluateRelease(
        eval::ProfileReference(orig_mmap.value(), threads), rel_mmap.value(),
        threads);
    const auto ram_flat = ram.Flatten();
    const auto mmap_flat = mmap.Flatten();
    ASSERT_EQ(ram_flat.size(), mmap_flat.size());
    for (size_t i = 0; i < ram_flat.size(); ++i) {
      EXPECT_EQ(ram_flat[i].first, mmap_flat[i].first);
      // Exact (bitwise) equality, not approximate: the mmap snapshot
      // feeds the very same kernels the in-RAM arrays do.
      EXPECT_EQ(ram_flat[i].second, mmap_flat[i].second)
          << ram_flat[i].first << " at " << threads << " threads";
    }
  }
}

// ------------------------------------------------ corruption handling --

TEST_F(GraphContainerTest, TruncatedFileIsCorruption) {
  const AttributedGraph g = TestGraph();
  const std::string path = TempPath("trunc.agmbin");
  ASSERT_TRUE(WriteBinaryGraph(g, path, SmallPages()).ok());
  const uint64_t full = ReadAll(path).size();
  for (const uint64_t keep : {full - 1, full / 2, uint64_t{100}, uint64_t{0}}) {
    ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(keep)), 0);
    auto r = OpenBinarySnapshot(path);
    ASSERT_FALSE(r.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(r.status().code(), util::StatusCode::kCorruption)
        << r.status().ToString();
    EXPECT_NE(r.status().message().find("truncated"), std::string::npos);
  }
}

TEST_F(GraphContainerTest, FlippedDataByteIsChecksumMismatch) {
  const AttributedGraph g = TestGraph();
  const std::string path = TempPath("flip.agmbin");
  ASSERT_TRUE(WriteBinaryGraph(g, path, SmallPages()).ok());
  // Offset 4096 + 16: inside the first data page (the offsets array).
  FlipByte(path, 4096 + 16);
  auto r = OpenBinarySnapshot(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kChecksumMismatch)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("page"), std::string::npos);

  // `info` still reads the header but reports the failed sweep.
  auto info = ReadBinaryGraphInfo(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_FALSE(info.value().checksums_ok);
  EXPECT_FALSE(info.value().checksum_error.empty());
  EXPECT_EQ(info.value().num_nodes, g.num_nodes());
}

TEST_F(GraphContainerTest, WrongVersionIsVersionMismatch) {
  const AttributedGraph g = TestGraph();
  const std::string path = TempPath("version.agmbin");
  ASSERT_TRUE(WriteBinaryGraph(g, path, SmallPages()).ok());
  // Version field lives at byte 8. The header checksum is now stale too,
  // but the version check must win (deliberate ordering).
  FlipByte(path, 8);
  auto r = OpenBinarySnapshot(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kVersionMismatch)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
}

TEST_F(GraphContainerTest, WrongMagicIsCorruption) {
  const AttributedGraph g = TestGraph();
  const std::string path = TempPath("magic.agmbin");
  ASSERT_TRUE(WriteBinaryGraph(g, path, SmallPages()).ok());
  FlipByte(path, 0);
  auto r = OpenBinarySnapshot(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kCorruption)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("magic"), std::string::npos);
  EXPECT_FALSE(IsBinaryGraphFile(path));
}

TEST_F(GraphContainerTest, TamperedHeaderIsChecksumMismatch) {
  const AttributedGraph g = TestGraph();
  const std::string path = TempPath("header.agmbin");
  ASSERT_TRUE(WriteBinaryGraph(g, path, SmallPages()).ok());
  FlipByte(path, 24);  // num_nodes field
  auto r = OpenBinarySnapshot(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kChecksumMismatch)
      << r.status().ToString();
}

TEST_F(GraphContainerTest, SemanticTamperSurvivingRechecksumIsCorruption) {
  const AttributedGraph g = TestGraph();
  ASSERT_GT(g.num_edges(), 0u);
  const std::string path = TempPath("tamper.agmbin");
  ASSERT_TRUE(WriteBinaryGraph(g, path, SmallPages()).ok());

  // Plant a self-loop: the first node with nonzero degree gets itself as
  // its first neighbor. The neighbors section starts at the first page
  // boundary after the offsets array.
  const CsrGraph csr = CsrGraph::FromGraph(g.structure());
  NodeId victim = 0;
  while (csr.Degree(victim) == 0) ++victim;
  const uint64_t offsets_bytes = (uint64_t{csr.num_nodes()} + 1) * 8;
  const uint64_t neighbors_off = (4096 + offsets_bytes + 4095) / 4096 * 4096;
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    // First neighbor slot of `victim` (its range starts at offsets[v]).
    const uint64_t slot = neighbors_off;  // victim is the first nonzero range
    const uint32_t self = victim;
    f.seekp(static_cast<std::streamoff>(slot));
    f.write(reinterpret_cast<const char*>(&self), sizeof(self));
  }
  // With stale checksums this reads as bit rot...
  auto stale = OpenBinarySnapshot(path);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), util::StatusCode::kChecksumMismatch);
  // ...after repair the CRCs are consistent, so only the semantic
  // validation pass stands between the kernels and a bogus graph.
  ASSERT_TRUE(RecomputeBinaryGraphChecksums(path).ok());
  auto validated = OpenBinarySnapshot(path);
  ASSERT_FALSE(validated.ok());
  EXPECT_EQ(validated.status().code(), util::StatusCode::kCorruption)
      << validated.status().ToString();
}

// -------------------------------------------------- converter errors --

TEST_F(GraphContainerTest, ConverterReportsDuplicateEdgeWithLineNumber) {
  const std::string prefix = TempPath("dup");
  paths_.push_back(prefix + ".edges");
  {
    std::ofstream out(prefix + ".edges");
    out << "n 4\n0 1\n2 3\n1 0\n";  // line 4 repeats {0,1}
  }
  auto r = ConvertTextToBinary(prefix, TempPath("dup.agmbin"));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("duplicate edge"), std::string::npos);
  EXPECT_NE(r.status().message().find(":4"), std::string::npos)
      << r.status().ToString();
}

TEST_F(GraphContainerTest, ConverterReportsSelfLoopWithLineNumber) {
  const std::string prefix = TempPath("loop");
  paths_.push_back(prefix + ".edges");
  {
    std::ofstream out(prefix + ".edges");
    out << "n 3\n0 1\n2 2\n";
  }
  auto r = ConvertTextToBinary(prefix, TempPath("loop.agmbin"));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("self-loop"), std::string::npos);
  EXPECT_NE(r.status().message().find(":3"), std::string::npos)
      << r.status().ToString();
}

TEST_F(GraphContainerTest, ConverterMissingInputIsNotFound) {
  auto r = ConvertTextToBinary(::testing::TempDir() + "nonexistent_prefix",
                               TempPath("missing.agmbin"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kNotFound);
}

TEST_F(GraphContainerTest, ConverterWithoutAttrsFileYieldsZeroWidth) {
  const std::string prefix = TempPath("noattrs");
  paths_.push_back(prefix + ".edges");
  {
    std::ofstream out(prefix + ".edges");
    out << "n 3\n0 1\n1 2\n";
  }
  const std::string bin = TempPath("noattrs.agmbin");
  auto info = ConvertTextToBinary(prefix, bin);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().num_attributes, 0u);
  auto opened = OpenBinarySnapshot(bin);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value().num_attributes, 0);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(opened.value().attribute(v), 0u);
}

TEST_F(GraphContainerTest, EmptyGraphRoundTrips) {
  const AttributedGraph g(NodeId{0}, 0);
  const std::string path = TempPath("empty.agmbin");
  ASSERT_TRUE(WriteBinaryGraph(g, path, SmallPages()).ok());
  auto opened = OpenBinarySnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value().num_nodes(), 0u);
  EXPECT_EQ(opened.value().num_edges(), 0u);
}

TEST_F(GraphContainerTest, MaterializeSnapshotInvertsWrite) {
  const AttributedGraph g = TestGraph();
  const std::string path = TempPath("materialize.agmbin");
  ASSERT_TRUE(WriteBinaryGraph(g, path, SmallPages()).ok());
  auto opened = OpenBinarySnapshot(path);
  ASSERT_TRUE(opened.ok());
  const AttributedGraph back = MaterializeSnapshot(opened.value());
  EXPECT_EQ(back.attributes(), g.attributes());
  EXPECT_EQ(back.structure().CanonicalEdges(), g.structure().CanonicalEdges());
}

}  // namespace
}  // namespace agmdp::graph

// Fused evaluation kernel (graph/fused_eval.h): randomized differential
// tests against the per-metric CSR kernels and the legacy adjacency-list
// kernels. Every FusedStats field must be bitwise-identical to its
// standalone counterpart across 1/2/4 analytics threads and on BOTH
// dispatch arms (scalar and, where the host supports it, AVX2) — the
// determinism contract DESIGN.md promises for the production eval path.
// Also covers the histogram-based finalizers (KS / CCDF / degree
// distribution) and the vectorized Hellinger primitive against their
// expanded scalar forms.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/agm/theta_f.h"
#include "src/eval/utility_report.h"
#include "src/graph/attributed_graph.h"
#include "src/graph/clustering.h"
#include "src/graph/csr.h"
#include "src/graph/degree.h"
#include "src/graph/fused_eval.h"
#include "src/graph/graph.h"
#include "src/graph/triangle_count.h"
#include "src/stats/assortativity.h"
#include "src/stats/ccdf.h"
#include "src/stats/joint_degree.h"
#include "src/stats/metrics.h"
#include "src/util/rng.h"
#include "src/util/simd.h"

namespace agmdp::graph {
namespace {

Graph RandomGraph(NodeId n, double p, uint64_t seed) {
  util::Rng rng(seed);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.Bernoulli(p)) g.AddEdge(u, v);
    }
  }
  return g;
}

AttributedGraph RandomAttributed(NodeId n, double p, int w, uint64_t seed) {
  AttributedGraph g(RandomGraph(n, p, seed), w);
  util::Rng rng(seed + 1);
  for (NodeId v = 0; v < n; ++v) {
    g.set_attribute(v, static_cast<AttrConfig>(rng.UniformIndex(1u << w)));
  }
  return g;
}

// The dispatch arms this host can actually run: scalar always; AVX2 when
// compiled in, supported by the CPU and not disabled by env. Explicitly
// requesting an unavailable arm resolves to scalar, so skipping it here
// (rather than testing a silently-degraded arm twice) keeps intent clear.
std::vector<util::SimdIsa> TestableArms() {
  std::vector<util::SimdIsa> arms = {util::SimdIsa::kScalar};
  if (util::ResolveSimdIsa(util::SimdIsa::kAvx2) == util::SimdIsa::kAvx2) {
    arms.push_back(util::SimdIsa::kAvx2);
  }
  return arms;
}

// Pins ActiveSimdIsa() for the scope (drives the whole EvaluateRelease
// stack down one arm), restoring auto dispatch on exit.
class ScopedIsa {
 public:
  explicit ScopedIsa(util::SimdIsa isa) { util::SetSimdIsaOverride(isa); }
  ~ScopedIsa() { util::SetSimdIsaOverride(util::SimdIsa::kAuto); }
};

std::vector<uint32_t> ExpandHistogram(const std::vector<uint64_t>& hist) {
  std::vector<uint32_t> values;
  for (uint32_t d = 0; d < hist.size(); ++d) {
    for (uint64_t i = 0; i < hist[d]; ++i) values.push_back(d);
  }
  return values;
}

// The (n, p, w) grid every differential test sweeps: empty, singleton,
// attribute-free, and ER graphs of growing size and attribute dimension.
struct GridCase {
  NodeId n;
  double p;
  int w;
};
const GridCase kGrid[] = {
    {0, 0.0, 2},  {1, 0.0, 1},   {12, 0.3, 0},
    {40, 0.15, 1}, {80, 0.08, 3}, {120, 0.05, 5},
};

// ------------------------------------------- fused vs per-metric kernels --

TEST(FusedEvalTest, MatchesPerMetricKernelsOnEveryArmAndThreadCount) {
  for (const GridCase& c : kGrid) {
    const AttributedGraph legacy = RandomAttributed(c.n, c.p, c.w, 31 + c.n);
    const AttributedCsrGraph g = AttributedCsrGraph::FromGraph(legacy);
    const CsrGraph& csr = g.structure;

    // Per-metric oracles (computed once; all deterministic).
    const std::vector<uint64_t> hist = DegreeHistogram(csr);
    const ClusteringStats clustering = ComputeClusteringStats(csr);
    const std::vector<double> degree_wise = DegreeWiseClustering(csr);
    const double degree_assort = stats::DegreeAssortativity(legacy.structure());
    const double attr_assort = stats::AttributeAssortativity(legacy);
    const std::vector<double> homophily = stats::PerAttributeHomophily(legacy);
    const std::vector<double> connection = agm::ComputeConnectionCounts(legacy);
    const auto joint = stats::JointDegreeDistribution(csr);

    for (util::SimdIsa isa : TestableArms()) {
      for (int threads : {1, 2, 4}) {
        SCOPED_TRACE(testing::Message()
                     << "n=" << c.n << " w=" << c.w << " threads=" << threads
                     << " isa=" << util::SimdIsaName(isa));
        FusedOptions opts;
        opts.threads = threads;
        opts.isa = isa;
        opts.degree_wise_clustering = true;
        opts.joint_degree = true;
        const FusedStats fused = FusedEvaluate(g, opts);

        EXPECT_EQ(fused.num_nodes, csr.num_nodes());
        EXPECT_EQ(fused.num_edges, csr.num_edges());
        EXPECT_EQ(fused.degree_histogram, hist);

        EXPECT_EQ(fused.clustering.per_node_triangles,
                  clustering.per_node_triangles);
        EXPECT_EQ(fused.clustering.local_coefficients,
                  clustering.local_coefficients);
        EXPECT_EQ(fused.clustering.triangles, clustering.triangles);
        EXPECT_EQ(fused.clustering.wedges, clustering.wedges);
        EXPECT_EQ(fused.clustering.avg_local_clustering,
                  clustering.avg_local_clustering);
        EXPECT_EQ(fused.clustering.global_clustering,
                  clustering.global_clustering);
        EXPECT_EQ(fused.degree_wise_clustering, degree_wise);

        EXPECT_EQ(stats::DegreeAssortativityFromSums(
                      fused.assort_sum_xy, fused.assort_sum_x,
                      fused.assort_sum_x2, fused.num_edges),
                  degree_assort);
        EXPECT_EQ(stats::AttributeAssortativityFromMixingCounts(
                      fused.mixing_counts, fused.num_configs, fused.num_edges),
                  attr_assort);
        EXPECT_EQ(stats::PerAttributeHomophilyFromCounts(fused.homophily_counts,
                                                         fused.num_edges),
                  homophily);

        ASSERT_EQ(fused.connection_counts.size(), connection.size());
        for (size_t i = 0; i < connection.size(); ++i) {
          EXPECT_EQ(static_cast<double>(fused.connection_counts[i]),
                    connection[i]);
        }
        EXPECT_EQ(agm::ThetaFFromConnectionCounts(fused.connection_counts,
                                                  fused.num_edges),
                  agm::ComputeThetaF(legacy));

        // Joint-degree tallies normalize to the dK-2 mass map exactly.
        std::map<std::pair<uint32_t, uint32_t>, double> fused_joint;
        const double m = static_cast<double>(fused.num_edges);
        for (const auto& [key, count] : fused.joint_degree_counts) {
          fused_joint[key] = static_cast<double>(count) / m;
        }
        EXPECT_EQ(fused_joint, joint);
      }
    }
  }
}

TEST(FusedEvalTest, StructureOverloadSkipsAttributeFamilies) {
  const CsrGraph csr = CsrGraph::FromGraph(RandomGraph(60, 0.1, 77));
  const FusedStats fused = FusedEvaluate(csr);
  EXPECT_EQ(fused.num_configs, 0u);
  EXPECT_TRUE(fused.mixing_counts.empty());
  EXPECT_TRUE(fused.homophily_counts.empty());
  EXPECT_TRUE(fused.connection_counts.empty());
  EXPECT_EQ(fused.degree_histogram, DegreeHistogram(csr));
  EXPECT_EQ(fused.clustering.triangles, CountTriangles(csr));
}

TEST(FusedEvalTest, TrianglesOffLeavesClusteringEmpty) {
  const CsrGraph csr = CsrGraph::FromGraph(RandomGraph(50, 0.12, 78));
  FusedOptions opts;
  opts.triangles = false;
  const FusedStats fused = FusedEvaluate(csr, opts);
  EXPECT_TRUE(fused.clustering.per_node_triangles.empty());
  EXPECT_TRUE(fused.clustering.local_coefficients.empty());
  EXPECT_EQ(fused.clustering.triangles, 0u);
  // Sweep-A families are still produced.
  EXPECT_EQ(fused.degree_histogram, DegreeHistogram(csr));
  EXPECT_EQ(stats::DegreeAssortativityFromSums(
                fused.assort_sum_xy, fused.assort_sum_x, fused.assort_sum_x2,
                fused.num_edges),
            stats::DegreeAssortativity(csr));
}

// Direct arm-vs-arm comparison of the whole struct on a denser graph (the
// oracle loop above already pins each arm to the scalar kernels; this one
// fails loudly if the arms ever diverge from EACH OTHER).
TEST(FusedEvalTest, DispatchArmsProduceIdenticalStats) {
  const std::vector<util::SimdIsa> arms = TestableArms();
  if (arms.size() < 2) {
    GTEST_SKIP() << "AVX2 arm unavailable on this host/build";
  }
  const AttributedCsrGraph g =
      AttributedCsrGraph::FromGraph(RandomAttributed(150, 0.08, 4, 91));
  FusedOptions opts;
  opts.degree_wise_clustering = true;
  opts.joint_degree = true;
  opts.isa = arms[0];
  const FusedStats a = FusedEvaluate(g, opts);
  opts.isa = arms[1];
  const FusedStats b = FusedEvaluate(g, opts);
  EXPECT_EQ(a.degree_histogram, b.degree_histogram);
  EXPECT_EQ(a.assort_sum_xy, b.assort_sum_xy);
  EXPECT_EQ(a.assort_sum_x, b.assort_sum_x);
  EXPECT_EQ(a.assort_sum_x2, b.assort_sum_x2);
  EXPECT_EQ(a.clustering.per_node_triangles, b.clustering.per_node_triangles);
  EXPECT_EQ(a.clustering.local_coefficients, b.clustering.local_coefficients);
  EXPECT_EQ(a.clustering.wedges, b.clustering.wedges);
  EXPECT_EQ(a.clustering.avg_local_clustering, b.clustering.avg_local_clustering);
  EXPECT_EQ(a.clustering.global_clustering, b.clustering.global_clustering);
  EXPECT_EQ(a.degree_wise_clustering, b.degree_wise_clustering);
  EXPECT_EQ(a.mixing_counts, b.mixing_counts);
  EXPECT_EQ(a.homophily_counts, b.homophily_counts);
  EXPECT_EQ(a.connection_counts, b.connection_counts);
  EXPECT_EQ(a.joint_degree_counts, b.joint_degree_counts);
}

// ------------------------------------------------- full evaluation stack --

TEST(FusedEvalTest, EvaluateReleaseAgreesWithBothOraclesOnEveryArm) {
  const AttributedGraph original = RandomAttributed(80, 0.08, 3, 51);
  const AttributedGraph released = RandomAttributed(70, 0.1, 2, 52);
  const AttributedCsrGraph released_csr =
      AttributedCsrGraph::FromGraph(released);

  const eval::ReferenceProfile ref_legacy =
      eval::ProfileReferenceLegacy(original);
  const auto flat_legacy =
      eval::EvaluateReleaseLegacy(ref_legacy, released).Flatten();

  for (util::SimdIsa isa : TestableArms()) {
    ScopedIsa scoped(isa);
    for (int threads : {1, 2, 4}) {
      SCOPED_TRACE(testing::Message() << "threads=" << threads << " isa="
                                      << util::SimdIsaName(isa));
      const eval::ReferenceProfile ref =
          eval::ProfileReference(original, threads);
      EXPECT_EQ(ref.degree_histogram, ref_legacy.degree_histogram);
      EXPECT_EQ(ref.sorted_local_clustering,
                ref_legacy.sorted_local_clustering);
      EXPECT_EQ(ref.sorted_degrees, ref_legacy.sorted_degrees);
      EXPECT_EQ(ref.theta_f, ref_legacy.theta_f);

      const auto flat_fused =
          eval::EvaluateRelease(ref, released_csr, threads).Flatten();
      const auto flat_multipass =
          eval::EvaluateReleaseMultipassCsr(ref, released_csr, threads)
              .Flatten();
      EXPECT_EQ(flat_fused, flat_legacy);
      EXPECT_EQ(flat_multipass, flat_legacy);
    }
  }
}

// ------------------------------------------------- histogram finalizers --

TEST(FusedEvalTest, KsStatisticFromHistogramsMatchesExpandedForm) {
  const std::vector<std::vector<uint64_t>> hists = {
      {},
      {0, 0, 0},
      {3},
      {0, 4, 0, 1},
      DegreeHistogram(CsrGraph::FromGraph(RandomGraph(90, 0.07, 61))),
      DegreeHistogram(CsrGraph::FromGraph(RandomGraph(50, 0.2, 62))),
  };
  for (const auto& h1 : hists) {
    for (const auto& h2 : hists) {
      EXPECT_EQ(stats::KsStatisticFromHistograms(h1, h2),
                stats::KsStatistic(ExpandHistogram(h1), ExpandHistogram(h2)));
    }
  }
}

TEST(FusedEvalTest, CcdfFromHistogramMatchesExpandedForm) {
  const std::vector<std::vector<uint64_t>> hists = {
      {},
      {0, 0},
      {2, 0, 5, 0, 0, 1},
      DegreeHistogram(CsrGraph::FromGraph(RandomGraph(90, 0.07, 63))),
  };
  for (const auto& h : hists) {
    const std::vector<uint32_t> values = ExpandHistogram(h);
    std::vector<double> as_doubles(values.begin(), values.end());
    EXPECT_EQ(stats::CcdfFromHistogram(h), stats::Ccdf(std::move(as_doubles)));
  }
}

TEST(FusedEvalTest, DegreeDistributionFromHistogramMatchesGraphPath) {
  const CsrGraph csr = CsrGraph::FromGraph(RandomGraph(70, 0.1, 64));
  EXPECT_EQ(stats::DegreeDistributionFromHistogram(DegreeHistogram(csr),
                                                   csr.num_nodes()),
            stats::DegreeDistribution(csr));
}

TEST(FusedEvalTest, KsDistanceSortedMatchesUnsortedEntryPoint) {
  util::Rng rng(65);
  std::vector<double> a, b;
  for (int i = 0; i < 200; ++i) a.push_back(rng.UniformDouble());
  for (int i = 0; i < 150; ++i) b.push_back(rng.UniformDouble());
  const double expected = stats::KsDistance(a, b);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(stats::KsDistanceSorted(a, b), expected);
  EXPECT_EQ(stats::KsDistanceSorted(a, {}), 1.0);
  EXPECT_EQ(stats::KsDistanceSorted({}, {}), 0.0);
}

// --------------------------------------------------- SIMD primitives --

TEST(SimdTest, SquaredSqrtDiffArmsBitwiseIdentical) {
  util::Rng rng(66);
  // Lengths straddling the 4-lane width, plus values that exercise the
  // max(0, x) clamp (negatives, exact zeros).
  for (size_t len : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{7},
                     size_t{257}}) {
    std::vector<double> p(len), q(len);
    for (size_t i = 0; i < len; ++i) {
      p[i] = rng.UniformDouble() - 0.25;
      q[i] = (i % 5 == 0) ? 0.0 : rng.UniformDouble() - 0.25;
    }
    std::vector<double> expected(len);
    for (size_t i = 0; i < len; ++i) {
      const double d =
          std::sqrt(std::max(0.0, p[i])) - std::sqrt(std::max(0.0, q[i]));
      expected[i] = d * d;
    }
    for (util::SimdIsa isa : TestableArms()) {
      ScopedIsa scoped(isa);
      std::vector<double> out(len, -1.0);
      util::SquaredSqrtDiff(p.data(), q.data(), len, out.data());
      EXPECT_EQ(out, expected) << "len=" << len << " isa="
                               << util::SimdIsaName(isa);
    }
  }
}

TEST(SimdTest, HellingerDistanceUnchangedByVectorization) {
  // The vectorized HellingerDistance must equal the textbook scalar loop.
  util::Rng rng(67);
  std::vector<double> p(37), q(41);
  for (auto& x : p) x = rng.UniformDouble();
  for (auto& x : q) x = rng.UniformDouble();
  const size_t len = std::max(p.size(), q.size());
  double sum = 0.0;
  for (size_t i = 0; i < len; ++i) {
    const double pi = i < p.size() ? p[i] : 0.0;
    const double qi = i < q.size() ? q[i] : 0.0;
    const double d = std::sqrt(std::max(0.0, pi)) - std::sqrt(std::max(0.0, qi));
    sum += d * d;
  }
  const double expected = std::sqrt(sum) / std::sqrt(2.0);
  for (util::SimdIsa isa : TestableArms()) {
    ScopedIsa scoped(isa);
    EXPECT_EQ(stats::HellingerDistance(p, q), expected);
  }
}

TEST(SimdTest, ResolveClampsUnavailableArms) {
  EXPECT_EQ(util::ResolveSimdIsa(util::SimdIsa::kScalar),
            util::SimdIsa::kScalar);
  // kAuto resolves to SOME concrete arm.
  const util::SimdIsa active = util::ActiveSimdIsa();
  EXPECT_NE(active, util::SimdIsa::kAuto);
  // Pinning scalar drives auto dispatch scalar; clearing restores it.
  {
    ScopedIsa scoped(util::SimdIsa::kScalar);
    EXPECT_EQ(util::ActiveSimdIsa(), util::SimdIsa::kScalar);
  }
  EXPECT_EQ(util::ActiveSimdIsa(), active);
}

}  // namespace
}  // namespace agmdp::graph

// GraphSource: one Open() entry point for text and binary graphs, with
// format auto-detection, a faithful Materialize(), and extension-routed
// writing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/datasets/datasets.h"
#include "src/graph/graph_container.h"
#include "src/graph/graph_io.h"
#include "src/graph/graph_source.h"

namespace agmdp::graph {
namespace {

class GraphSourceTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    const std::string path = ::testing::TempDir() + "graph_source_test_" + name;
    paths_.push_back(path);
    return path;
  }

  AttributedGraph TestGraph() {
    auto g = datasets::GenerateDataset(datasets::DatasetId::kLastFm,
                                       /*scale=*/0.05, /*seed=*/3);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    return std::move(g).value();
  }

  void TearDown() override {
    for (const std::string& path : paths_) std::remove(path.c_str());
  }

  std::vector<std::string> paths_;
};

TEST_F(GraphSourceTest, OpensTextPrefixAndEdgesFileAlike) {
  const AttributedGraph g = TestGraph();
  const std::string prefix = TempPath("text");
  paths_.push_back(prefix + ".edges");
  paths_.push_back(prefix + ".attrs");
  ASSERT_TRUE(WriteGraph(g, prefix).ok());

  for (const std::string& path : {prefix, prefix + ".edges"}) {
    auto source = GraphSource::Open(path);
    ASSERT_TRUE(source.ok()) << path << ": " << source.status().ToString();
    EXPECT_EQ(source.value().format(), GraphSource::Format::kText);
    EXPECT_FALSE(source.value().snapshot().structure.is_external());
    EXPECT_EQ(source.value().snapshot().num_nodes(), g.num_nodes());
    EXPECT_EQ(source.value().snapshot().num_edges(), g.num_edges());
  }
}

TEST_F(GraphSourceTest, AutoDetectsBinaryByMagic) {
  const AttributedGraph g = TestGraph();
  const std::string path = TempPath("auto.agmbin");
  ASSERT_TRUE(WriteGraph(g, path).ok());
  ASSERT_TRUE(IsBinaryGraphFile(path));

  auto source = GraphSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ(source.value().format(), GraphSource::Format::kBinary);
  // Zero-copy: the snapshot aliases the mapping.
  EXPECT_TRUE(source.value().snapshot().structure.is_external());
  EXPECT_EQ(source.value().snapshot().num_edges(), g.num_edges());
}

TEST_F(GraphSourceTest, MaterializeEqualsOriginalForBothFormats) {
  const AttributedGraph g = TestGraph();
  const std::string prefix = TempPath("mat");
  paths_.push_back(prefix + ".edges");
  paths_.push_back(prefix + ".attrs");
  const std::string bin = TempPath("mat.agmbin");
  ASSERT_TRUE(WriteGraph(g, prefix).ok());
  ASSERT_TRUE(WriteGraph(g, bin).ok());

  for (const std::string& path : {prefix, bin}) {
    auto source = GraphSource::Open(path);
    ASSERT_TRUE(source.ok()) << source.status().ToString();
    const AttributedGraph back = source.value().Materialize();
    EXPECT_EQ(back.attributes(), g.attributes()) << path;
    EXPECT_EQ(back.structure().CanonicalEdges(),
              g.structure().CanonicalEdges())
        << path;
  }
}

TEST_F(GraphSourceTest, TextWithoutAttrsOpensAsZeroWidth) {
  const std::string prefix = TempPath("bare");
  paths_.push_back(prefix + ".edges");
  {
    std::ofstream out(prefix + ".edges");
    out << "n 3\n0 1\n1 2\n";
  }
  auto source = GraphSource::Open(prefix);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ(source.value().snapshot().num_attributes, 0);
  EXPECT_EQ(source.value().snapshot().num_edges(), 2u);
}

TEST_F(GraphSourceTest, MissingPathIsNotFound) {
  auto source = GraphSource::Open(::testing::TempDir() + "no_such_graph");
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), util::StatusCode::kNotFound);
}

TEST_F(GraphSourceTest, CorruptBinarySurfacesTypedError) {
  const AttributedGraph g = TestGraph();
  const std::string path = TempPath("corrupt.agmbin");
  ASSERT_TRUE(WriteGraph(g, path).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(70000);  // inside the data region (64 KiB pages)
    f.put('\x7f');
  }
  auto source = GraphSource::Open(path);
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), util::StatusCode::kChecksumMismatch)
      << source.status().ToString();
}

TEST_F(GraphSourceTest, WriteGraphRoutesOnExtension) {
  const AttributedGraph g = TestGraph();
  const std::string text = TempPath("route_text");
  paths_.push_back(text + ".edges");
  paths_.push_back(text + ".attrs");
  const std::string bin = TempPath("route.agmbin");
  ASSERT_TRUE(WriteGraph(g, text).ok());
  ASSERT_TRUE(WriteGraph(g, bin).ok());
  EXPECT_TRUE(std::ifstream(text + ".edges").good());
  EXPECT_FALSE(IsBinaryGraphFile(text + ".edges"));
  EXPECT_TRUE(IsBinaryGraphFile(bin));
}

TEST(NumberedGraphPathTest, InsertsIndexBeforeBinaryExtension) {
  EXPECT_EQ(NumberedGraphPath("syn", 3), "syn_3");
  EXPECT_EQ(NumberedGraphPath("syn.agmbin", 3), "syn_3.agmbin");
  EXPECT_EQ(NumberedGraphPath("dir/out.agmbin", 0), "dir/out_0.agmbin");
}

}  // namespace
}  // namespace agmdp::graph

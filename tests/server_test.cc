// Concurrency suite for the serving daemon (ctest label: concurrency — the
// set the TSan CI job runs).
//
// Covers the server's three contracts end to end:
//   * resource control — LRU cache hit/evict/pin behaviour under a byte
//     budget, bounded-queue backpressure with typed rejection;
//   * privacy control — the tenant ledger never lets a tenant overdraw
//     its epsilon cap, idempotently per release, under >= 4 concurrent
//     client threads, while other tenants proceed;
//   * determinism — graphs served concurrently (and coalesced into
//     batches) are byte-identical to a sequential oracle sampling the
//     same (seed, sequence) requests from the engine directly.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/datasets/datasets.h"
#include "src/pipeline/release_engine.h"
#include "src/pipeline/release_pipeline.h"
#include "src/registry/artifact_registry.h"
#include "src/server/client.h"
#include "src/server/engine_cache.h"
#include "src/server/protocol.h"
#include "src/server/server.h"
#include "src/server/tenant_ledger.h"
#include "src/util/rng.h"

namespace agmdp {
namespace {

const graph::AttributedGraph& Input() {
  static const graph::AttributedGraph* input = [] {
    auto g = datasets::GenerateDataset(datasets::DatasetId::kPetster, 0.2, 3);
    AGMDP_CHECK_MSG(g.ok(), g.status().ToString().c_str());
    return new graph::AttributedGraph(std::move(g).value());
  }();
  return *input;
}

pipeline::PipelineConfig TestConfig() {
  pipeline::PipelineConfig config;
  config.epsilon = std::log(2.0);
  config.model = "fcl";
  config.sample.acceptance_iterations = 2;
  return config;
}

/// Distinct seeds give distinct noise draws, hence distinct releases with
/// distinct release keys but equal epsilon_spent.
const pipeline::ReleaseArtifact& FittedArtifact(uint64_t seed) {
  static std::map<uint64_t, pipeline::ReleaseArtifact>* cache =
      new std::map<uint64_t, pipeline::ReleaseArtifact>();
  auto it = cache->find(seed);
  if (it == cache->end()) {
    util::Rng rng(seed);
    auto artifact = pipeline::FitReleaseArtifact(Input(), TestConfig(), rng);
    AGMDP_CHECK_MSG(artifact.ok(), artifact.status().ToString().c_str());
    it = cache->emplace(seed, std::move(artifact).value()).first;
  }
  return it->second;
}

/// Writes the artifact next to the test binary and returns the path.
std::string ArtifactFile(uint64_t seed) {
  const std::string path =
      "server_test_artifact_" + std::to_string(seed) + ".json";
  auto st = pipeline::WriteReleaseArtifact(FittedArtifact(seed), path);
  AGMDP_CHECK_MSG(st.ok(), st.ToString().c_str());
  return path;
}

std::shared_ptr<pipeline::ReleaseEngine> MakeEngine(uint64_t seed) {
  pipeline::EngineOptions options;
  options.threads = 1;
  auto engine =
      pipeline::ReleaseEngine::Create(FittedArtifact(seed), options);
  AGMDP_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());
  return std::move(engine).value();
}

/// The sequential oracle: checksums of Sample({seed, sequence}) for
/// sequence 0 .. n-1, straight from an engine with no server around it.
std::vector<uint64_t> OracleChecksums(uint64_t artifact_seed,
                                      uint64_t sample_seed, uint64_t first,
                                      int n) {
  auto engine = MakeEngine(artifact_seed);
  pipeline::SampleRequest base;
  base.seed = sample_seed;
  base.sequence = first;
  auto graphs = engine->SampleMany(n, base);
  AGMDP_CHECK_MSG(graphs.ok(), graphs.status().ToString().c_str());
  std::vector<uint64_t> sums;
  sums.reserve(graphs.value().size());
  for (const auto& g : graphs.value()) sums.push_back(server::GraphChecksum(g));
  return sums;
}

// -------------------------------------------------------------- protocol --

TEST(ProtocolTest, RequestRoundTripsEveryOp) {
  server::Request request;
  request.op = server::RequestOp::kSample;
  request.id = 42;
  request.tenant = "alice";
  request.name = "model-a";
  request.seed = 0xdeadbeefcafef00dULL;  // > 2^53: must survive as a string
  request.sequence = 7;
  request.count = 3;
  request.refine_iterations = 2;
  request.out = "prefix with spaces/\"quotes\"";
  auto back = server::ParseRequest(server::SerializeRequest(request));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().op, request.op);
  EXPECT_EQ(back.value().id, request.id);
  EXPECT_EQ(back.value().tenant, request.tenant);
  EXPECT_EQ(back.value().name, request.name);
  EXPECT_EQ(back.value().seed, request.seed);
  EXPECT_EQ(back.value().sequence, request.sequence);
  EXPECT_EQ(back.value().count, request.count);
  EXPECT_EQ(back.value().refine_iterations, request.refine_iterations);
  EXPECT_EQ(back.value().out, request.out);

  for (server::RequestOp op :
       {server::RequestOp::kLoad, server::RequestOp::kPin,
        server::RequestOp::kUnpin, server::RequestOp::kUnload,
        server::RequestOp::kStats, server::RequestOp::kShutdown}) {
    server::Request r;
    r.op = op;
    r.id = 1;
    r.name = "m";
    r.artifact = "a.json";
    auto rt = server::ParseRequest(server::SerializeRequest(r));
    ASSERT_TRUE(rt.ok()) << server::RequestOpName(op) << ": "
                         << rt.status().ToString();
    EXPECT_EQ(rt.value().op, op);
  }
}

TEST(ProtocolTest, MalformedRequestsAreTypedErrors) {
  const char* bad[] = {
      "not json at all",
      "{\"op\":\"sample\"",                       // truncated
      "{\"op\":\"explode\",\"id\":1}",            // unknown op
      "{\"id\":1}",                               // missing op
      "{\"op\":\"sample\",\"id\":1,\"name\":\"m\",\"count\":0}",
      "{\"op\":\"sample\",\"id\":1,\"count\":1}",   // missing name
      "{\"op\":\"load\",\"id\":1,\"name\":\"m\"}",  // missing artifact
      "{\"op\":\"sample\",\"id\":\"x\",\"name\":\"m\"}",  // id not a number
      "[1,2,3]",                                  // not an object
  };
  for (const char* line : bad) {
    auto parsed = server::ParseRequest(line);
    ASSERT_FALSE(parsed.ok()) << line;
    EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument)
        << line;
  }
  // Oversized and adversarially nested lines are rejected by the parser
  // caps, not by running out of stack.
  std::string huge = "{\"op\":\"stats\",\"id\":1,\"name\":\"" +
                     std::string(server::kMaxRequestBytes, 'x') + "\"}";
  EXPECT_FALSE(server::ParseRequest(huge).ok());
  std::string deep = "{\"op\":\"stats\",\"id\":";
  for (int i = 0; i < 64; ++i) deep += "[";
  EXPECT_FALSE(server::ParseRequest(deep).ok());
}

TEST(ProtocolTest, ResponseRoundTripsStatusGraphsAndStats) {
  server::Response response;
  response.id = 9;
  server::GraphSummary graph;
  graph.nodes = 1234;
  graph.edges = 99999;
  graph.checksum = 0xffffffffffffffffULL;  // needs string transport
  graph.path = "out_0";
  response.graphs.push_back(graph);
  response.stats.emplace_back("cache_hits", 3.0);
  auto back = server::ParseResponse(server::SerializeResponse(response));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value().status.ok());
  EXPECT_EQ(back.value().id, 9u);
  ASSERT_EQ(back.value().graphs.size(), 1u);
  EXPECT_EQ(back.value().graphs[0].nodes, 1234u);
  EXPECT_EQ(back.value().graphs[0].edges, 99999u);
  EXPECT_EQ(back.value().graphs[0].checksum, 0xffffffffffffffffULL);
  EXPECT_EQ(back.value().graphs[0].path, "out_0");
  ASSERT_EQ(back.value().stats.size(), 1u);
  EXPECT_EQ(back.value().stats[0].first, "cache_hits");

  server::Response error;
  error.id = 10;
  error.status = util::Status::ResourceExhausted("queue full");
  auto eback = server::ParseResponse(server::SerializeResponse(error));
  ASSERT_TRUE(eback.ok());
  EXPECT_EQ(eback.value().status.code(),
            util::StatusCode::kResourceExhausted);
  EXPECT_EQ(eback.value().status.message(), "queue full");
}

// ---------------------------------------------------------------- ledger --

TEST(TenantLedgerTest, ChargesOncePerReleaseAndEnforcesCaps) {
  server::TenantLedgerOptions options;
  options.budgets = {{"alice", 1.0}, {"bob", 2.0}};
  server::TenantLedger ledger(std::move(options));

  // First charge debits; repeating the same release is free.
  EXPECT_TRUE(ledger.Charge("alice", /*release_key=*/111, 0.7).ok());
  EXPECT_TRUE(ledger.Charge("alice", 111, 0.7).ok());
  EXPECT_DOUBLE_EQ(ledger.Spent("alice"), 0.7);

  // A different release that would overdraw is a typed rejection and
  // leaves the ledger unchanged.
  auto st = ledger.Charge("alice", 222, 0.7);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kResourceExhausted);
  EXPECT_DOUBLE_EQ(ledger.Spent("alice"), 0.7);

  // Other tenants are unaffected.
  EXPECT_TRUE(ledger.Charge("bob", 222, 0.7).ok());
  EXPECT_TRUE(ledger.Charge("bob", 333, 0.7).ok());
  EXPECT_DOUBLE_EQ(ledger.Spent("bob"), 1.4);

  // Unknown tenants are rejected when there is no default budget...
  EXPECT_EQ(ledger.Charge("mallory", 111, 0.1).code(),
            util::StatusCode::kResourceExhausted);
  // ...and an empty tenant is a usage error, not a free ride.
  EXPECT_EQ(ledger.Charge("", 111, 0.1).code(),
            util::StatusCode::kInvalidArgument);

  server::TenantLedgerOptions with_default;
  with_default.default_budget = 0.5;
  server::TenantLedger open_ledger(std::move(with_default));
  EXPECT_TRUE(open_ledger.Charge("anyone", 1, 0.4).ok());
  EXPECT_FALSE(open_ledger.Charge("anyone", 2, 0.4).ok());
}

TEST(TenantLedgerTest, ConcurrentChargesNeverOverdraw) {
  // 8 threads race 400 distinct releases at 0.1 each against a cap of
  // 1.05: exactly 10 may succeed, no interleaving may exceed the cap.
  server::TenantLedgerOptions options;
  options.budgets = {{"alice", 1.05}};
  server::TenantLedger ledger(std::move(options));

  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 50;
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &ledger, &successes] {
      for (int k = 0; k < kKeysPerThread; ++k) {
        const uint64_t key =
            static_cast<uint64_t>(t) * kKeysPerThread + k + 1;
        if (ledger.Charge("alice", key, 0.1).ok()) {
          successes.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(successes.load(), 10);
  EXPECT_LE(ledger.Spent("alice"), 1.05 + 1e-9);
  EXPECT_NEAR(ledger.Spent("alice"), 1.0, 1e-9);
}

// ----------------------------------------------------------------- cache --

TEST(EngineCacheTest, LruEvictionUnderByteBudget) {
  auto a = MakeEngine(5);
  const uint64_t each = a->ApproxBytes();
  // Room for two engines of this size, not three.
  server::EngineCache cache(2 * each + each / 2);

  ASSERT_TRUE(cache.Insert("a", a).ok());
  ASSERT_TRUE(cache.Insert("b", MakeEngine(5)).ok());
  // Touch a so b is the LRU entry.
  ASSERT_TRUE(cache.Lookup("a").ok());
  ASSERT_TRUE(cache.Insert("c", MakeEngine(5)).ok());

  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));  // evicted as LRU
  EXPECT_TRUE(cache.Contains("c"));

  auto miss = cache.Lookup("b");
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), util::StatusCode::kNotFound);

  const server::EngineCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes_in_use, 2 * each);

  // An engine that cannot fit even an empty cache is a typed rejection.
  server::EngineCache tiny(16);
  auto st = tiny.Insert("x", MakeEngine(5));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(tiny.Stats().rejections, 1u);
}

TEST(EngineCacheTest, PinningBlocksEvictionAndErase) {
  auto a = MakeEngine(5);
  const uint64_t each = a->ApproxBytes();
  server::EngineCache cache(2 * each + each / 2);
  ASSERT_TRUE(cache.Insert("a", a).ok());
  ASSERT_TRUE(cache.Insert("b", MakeEngine(5)).ok());
  ASSERT_TRUE(cache.Pin("a").ok());
  ASSERT_TRUE(cache.Pin("b").ok());

  // Everything resident is pinned: admission must fail, not evict.
  auto st = cache.Insert("c", MakeEngine(5));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kResourceExhausted);
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_TRUE(cache.Contains("b"));

  EXPECT_EQ(cache.Erase("a").code(), util::StatusCode::kFailedPrecondition);
  ASSERT_TRUE(cache.Unpin("a").ok());
  EXPECT_TRUE(cache.Erase("a").ok());
  // With a unpinned away, c fits.
  EXPECT_TRUE(cache.Insert("c", MakeEngine(5)).ok());
  EXPECT_EQ(cache.Stats().pinned_entries, 1u);  // b

  EXPECT_EQ(cache.Pin("ghost").code(), util::StatusCode::kNotFound);
}

TEST(EngineCacheTest, LeaseKeepsEvictedEngineAlive) {
  server::EngineCache cache(0);  // unlimited
  ASSERT_TRUE(cache.Insert("a", MakeEngine(5)).ok());
  auto lease = cache.Lookup("a");
  ASSERT_TRUE(lease.ok());
  ASSERT_TRUE(cache.Erase("a").ok());
  // The lease still serves — eviction only drops the cache's reference.
  pipeline::SampleRequest request;
  request.seed = 9;
  EXPECT_TRUE(lease.value()->Sample(request).ok());
}

// ------------------------------------------------------ in-process server --

server::ServerOptions TestServerOptions() {
  server::ServerOptions options;
  options.port = 0;
  options.worker_threads = 4;
  options.default_tenant_budget = 10.0;
  return options;
}

TEST(ServerTest, LoadSampleUnloadLifecycle) {
  auto started = server::Server::Start(TestServerOptions());
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  server::Server& daemon = *started.value();

  server::Request load;
  load.op = server::RequestOp::kLoad;
  load.id = 1;
  load.tenant = "alice";
  load.name = "m";
  load.artifact = ArtifactFile(5);
  EXPECT_TRUE(daemon.Handle(load).status.ok());

  server::Request sample;
  sample.op = server::RequestOp::kSample;
  sample.id = 2;
  sample.tenant = "alice";
  sample.name = "m";
  sample.seed = 77;
  sample.count = 3;
  const server::Response response = daemon.Handle(sample);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ASSERT_EQ(response.graphs.size(), 3u);
  const std::vector<uint64_t> oracle = OracleChecksums(5, 77, 0, 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(response.graphs[static_cast<size_t>(i)].checksum,
              oracle[static_cast<size_t>(i)])
        << "sequence " << i;
  }

  server::Request unload;
  unload.op = server::RequestOp::kUnload;
  unload.id = 3;
  unload.name = "m";
  EXPECT_TRUE(daemon.Handle(unload).status.ok());
  EXPECT_EQ(daemon.Handle(sample).status.code(),
            util::StatusCode::kNotFound);

  daemon.Stop();
  daemon.Wait();
}

TEST(ServerTest, TenantCannotOverspendWhileOthersProceed) {
  server::ServerOptions options = TestServerOptions();
  const double eps = FittedArtifact(5).epsilon_spent;
  options.default_tenant_budget = 0.0;
  // alice can afford one release; bob can afford both.
  options.tenant_budgets = {{"alice", 1.5 * eps}, {"bob", 2.5 * eps}};
  auto started = server::Server::Start(options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  server::Server& daemon = *started.value();

  auto load = [&](const std::string& tenant, const std::string& name,
                  uint64_t seed) {
    server::Request request;
    request.op = server::RequestOp::kLoad;
    request.id = 1;
    request.tenant = tenant;
    request.name = name;
    request.artifact = ArtifactFile(seed);
    return daemon.Handle(request).status;
  };

  EXPECT_TRUE(load("alice", "r1", 5).ok());
  // Re-loading the same release (even under another name) is idempotent.
  EXPECT_TRUE(load("alice", "r1-again", 5).ok());
  // A second distinct release would overdraw alice: typed rejection.
  const util::Status overdraw = load("alice", "r2", 11);
  ASSERT_FALSE(overdraw.ok());
  EXPECT_EQ(overdraw.code(), util::StatusCode::kResourceExhausted);
  // bob is unaffected by alice's exhaustion.
  EXPECT_TRUE(load("bob", "r2", 11).ok());
  // alice can still *sample* the release she already paid for...
  server::Request sample;
  sample.op = server::RequestOp::kSample;
  sample.id = 2;
  sample.tenant = "alice";
  sample.name = "r1";
  EXPECT_TRUE(daemon.Handle(sample).status.ok());
  // ...but not the one she was refused.
  sample.name = "r2";
  EXPECT_EQ(daemon.Handle(sample).status.code(),
            util::StatusCode::kResourceExhausted);

  daemon.Stop();
  daemon.Wait();
}

// ------------------------------------------------------------ TCP serving --

TEST(ServerTcpTest, ConcurrentClientsMatchSequentialOracle) {
  server::ServerOptions options = TestServerOptions();
  auto started = server::Server::Start(options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  server::Server& daemon = *started.value();

  {
    server::Request load;
    load.op = server::RequestOp::kLoad;
    load.id = 1;
    load.tenant = "alice";
    load.name = "m";
    load.artifact = ArtifactFile(5);
    ASSERT_TRUE(daemon.Handle(load).status.ok());
  }

  // 6 clients, each two graphs of a 12-sequence block; every interleaving
  // (and any server-side batching) must reproduce the oracle bit for bit.
  constexpr int kClients = 6;
  constexpr int kPerClient = 2;
  const std::vector<uint64_t> oracle =
      OracleChecksums(5, 99, 0, kClients * kPerClient);
  std::vector<std::vector<uint64_t>> got(kClients);
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([c, &daemon, &got, &errors] {
      auto client = server::Client::Connect("127.0.0.1", daemon.port());
      if (!client.ok()) {
        errors[static_cast<size_t>(c)] = client.status().ToString();
        return;
      }
      server::Request request;
      request.op = server::RequestOp::kSample;
      request.id = static_cast<uint64_t>(c) + 100;
      request.tenant = "alice";
      request.name = "m";
      request.seed = 99;
      request.sequence = static_cast<uint64_t>(c) * kPerClient;
      request.count = kPerClient;
      auto response = client.value().Call(request);
      if (!response.ok()) {
        errors[static_cast<size_t>(c)] = response.status().ToString();
        return;
      }
      if (!response.value().status.ok()) {
        errors[static_cast<size_t>(c)] =
            response.value().status.ToString();
        return;
      }
      for (const server::GraphSummary& g : response.value().graphs) {
        got[static_cast<size_t>(c)].push_back(g.checksum);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(errors[static_cast<size_t>(c)].empty())
        << "client " << c << ": " << errors[static_cast<size_t>(c)];
    ASSERT_EQ(got[static_cast<size_t>(c)].size(),
              static_cast<size_t>(kPerClient));
    for (int i = 0; i < kPerClient; ++i) {
      EXPECT_EQ(got[static_cast<size_t>(c)][static_cast<size_t>(i)],
                oracle[static_cast<size_t>(c * kPerClient + i)])
          << "client " << c << " graph " << i;
    }
  }

  daemon.Stop();
  daemon.Wait();
}

TEST(ServerTcpTest, BatchedServingIsBitIdenticalToSequential) {
  // One worker: a slow incompatible request occupies it while compatible
  // sample requests pile up in the queue, so the worker drains them as
  // one batch — whose responses must equal the sequential oracle.
  server::ServerOptions options = TestServerOptions();
  options.worker_threads = 1;
  options.max_queue = 64;
  auto started = server::Server::Start(options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  server::Server& daemon = *started.value();

  {
    server::Request load;
    load.op = server::RequestOp::kLoad;
    load.id = 1;
    load.tenant = "alice";
    load.name = "m";
    load.artifact = ArtifactFile(5);
    ASSERT_TRUE(daemon.Handle(load).status.ok());
  }

  auto blocker = server::Client::Connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(blocker.ok());
  server::Request heavy;
  heavy.op = server::RequestOp::kSample;
  heavy.id = 50;
  heavy.tenant = "alice";
  heavy.name = "m";
  heavy.seed = 1;
  heavy.count = 8;  // keeps the single worker busy while the batch forms
  ASSERT_TRUE(blocker.value().Send(heavy).ok());

  constexpr int kRequests = 5;
  auto pipelined = server::Client::Connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(pipelined.ok());
  for (int i = 0; i < kRequests; ++i) {
    server::Request request;
    request.op = server::RequestOp::kSample;
    request.id = static_cast<uint64_t>(i) + 200;
    request.tenant = "alice";
    request.name = "m";
    request.seed = 4242;
    request.sequence = static_cast<uint64_t>(i);
    request.count = 1;
    ASSERT_TRUE(pipelined.value().Send(request).ok());
  }

  // Batching may answer out of request order: collect by id.
  std::map<uint64_t, uint64_t> checksum_by_id;
  for (int i = 0; i < kRequests; ++i) {
    auto response = pipelined.value().ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response.value().status.ok())
        << response.value().status.ToString();
    ASSERT_EQ(response.value().graphs.size(), 1u);
    checksum_by_id[response.value().id] =
        response.value().graphs[0].checksum;
  }
  ASSERT_TRUE(blocker.value().ReadResponse().ok());

  const std::vector<uint64_t> oracle =
      OracleChecksums(5, 4242, 0, kRequests);
  for (int i = 0; i < kRequests; ++i) {
    const auto it = checksum_by_id.find(static_cast<uint64_t>(i) + 200);
    ASSERT_NE(it, checksum_by_id.end()) << "missing response " << i;
    EXPECT_EQ(it->second, oracle[static_cast<size_t>(i)]) << "sequence " << i;
  }

  daemon.Stop();
  daemon.Wait();
}

TEST(ServerTcpTest, FullQueueShedsLoadWithTypedRejection) {
  server::ServerOptions options = TestServerOptions();
  options.worker_threads = 1;
  options.max_queue = 1;
  options.batching = false;
  auto started = server::Server::Start(options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  server::Server& daemon = *started.value();

  {
    server::Request load;
    load.op = server::RequestOp::kLoad;
    load.id = 1;
    load.tenant = "alice";
    load.name = "m";
    load.artifact = ArtifactFile(5);
    ASSERT_TRUE(daemon.Handle(load).status.ok());
  }

  auto client = server::Client::Connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(client.ok());
  // One heavy request occupies the worker, then a burst of pipelined
  // requests overruns the one-slot queue: the overflow must come back as
  // immediate typed RESOURCE_EXHAUSTED, not be buffered.
  constexpr int kBurst = 16;
  for (int i = 0; i < 1 + kBurst; ++i) {
    server::Request request;
    request.op = server::RequestOp::kSample;
    request.id = static_cast<uint64_t>(i) + 1;
    request.tenant = "alice";
    request.name = "m";
    request.seed = 7;
    request.sequence = static_cast<uint64_t>(i) * 4;
    request.count = i == 0 ? 4 : 1;
    ASSERT_TRUE(client.value().Send(request).ok());
  }
  int ok_count = 0;
  int exhausted = 0;
  for (int i = 0; i < 1 + kBurst; ++i) {
    auto response = client.value().ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response.value().status.ok()) {
      ++ok_count;
    } else {
      ASSERT_EQ(response.value().status.code(),
                util::StatusCode::kResourceExhausted)
          << response.value().status.ToString();
      ++exhausted;
    }
  }
  EXPECT_EQ(ok_count + exhausted, 1 + kBurst);
  EXPECT_GE(exhausted, 1) << "burst never overran the one-slot queue";
  EXPECT_GE(ok_count, 1);
  EXPECT_EQ(daemon.Stats().rejected_queue_full,
            static_cast<uint64_t>(exhausted));

  daemon.Stop();
  daemon.Wait();
}

TEST(ServerTcpTest, ShutdownOpStopsTheDaemonCleanly) {
  auto started = server::Server::Start(TestServerOptions());
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  server::Server& daemon = *started.value();
  const int port = daemon.port();

  auto client = server::Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  server::Request shutdown;
  shutdown.op = server::RequestOp::kShutdown;
  shutdown.id = 7;
  auto response = client.value().Call(shutdown);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response.value().status.ok());
  daemon.Wait();  // returns: the op really stopped the daemon

  // Malformed line on a fresh daemon: typed error, no crash, still serves.
  auto again = server::Server::Start(TestServerOptions());
  ASSERT_TRUE(again.ok());
  auto probe = server::Client::Connect("127.0.0.1", again.value()->port());
  ASSERT_TRUE(probe.ok());
  server::Request stats;
  stats.op = server::RequestOp::kStats;
  stats.id = 1;
  ASSERT_TRUE(probe.value().Call(stats).ok());
  again.value()->Stop();
  again.value()->Wait();
}

// ------------------------------------------- timeouts and the registry --

TEST(ProtocolTest, LoadRoundTripsDatasetAndNeedsExactlyOneSource) {
  server::Request request;
  request.op = server::RequestOp::kLoad;
  request.id = 3;
  request.tenant = "alice";
  request.name = "m";
  request.dataset = "lastfm";
  auto back = server::ParseRequest(server::SerializeRequest(request));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().dataset, "lastfm");
  EXPECT_TRUE(back.value().artifact.empty());

  // A load naming both sources, or neither, is a typed usage error.
  const char* bad[] = {
      "{\"op\":\"load\",\"id\":1,\"name\":\"m\",\"artifact\":\"a.json\","
      "\"dataset\":\"lastfm\"}",
      "{\"op\":\"load\",\"id\":1,\"name\":\"m\"}",
  };
  for (const char* line : bad) {
    auto parsed = server::ParseRequest(line);
    ASSERT_FALSE(parsed.ok()) << line;
    EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument)
        << line;
  }
}

/// A raw TCP socket the timeout tests drive byte-by-byte (Client always
/// writes complete lines, which is exactly what these tests must not do).
int RawConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  AGMDP_CHECK_MSG(fd >= 0, "socket() failed");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  AGMDP_CHECK_MSG(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "connect() failed");
  return fd;
}

/// Reads until EOF and returns everything the server sent.
std::string DrainSocket(int fd) {
  std::string all;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    all.append(buf, static_cast<size_t>(n));
  }
  return all;
}

TEST(ServerTcpTest, SlowLorisClientIsReapedWithADeadline) {
  server::ServerOptions options = TestServerOptions();
  options.read_timeout_ms = 200;
  options.idle_timeout_ms = 0;  // isolate the read deadline
  auto started = server::Server::Start(options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  server::Server& daemon = *started.value();

  // Start a request line and then stall forever — the slow-loris shape.
  const int fd = RawConnect(daemon.port());
  const char* partial = "{\"op\":\"stats\",";
  ASSERT_GT(::send(fd, partial, std::strlen(partial), MSG_NOSIGNAL), 0);
  const std::string answer = DrainSocket(fd);  // returns on server close
  ::close(fd);

  // The connection was closed with a typed DEADLINE_EXCEEDED response,
  // not silently, and the reap is visible in the stats.
  EXPECT_NE(answer.find("DeadlineExceeded"), std::string::npos) << answer;
  EXPECT_EQ(daemon.Stats().reaped_deadline, 1u);
  EXPECT_EQ(daemon.Stats().reaped_idle, 0u);

  // A well-behaved client on the same daemon is unaffected.
  auto client = server::Client::Connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(client.ok());
  server::Request stats;
  stats.op = server::RequestOp::kStats;
  stats.id = 1;
  EXPECT_TRUE(client.value().Call(stats).ok());

  daemon.Stop();
  daemon.Wait();
}

TEST(ServerTcpTest, IdleConnectionIsReaped) {
  server::ServerOptions options = TestServerOptions();
  options.read_timeout_ms = 0;
  options.idle_timeout_ms = 200;
  auto started = server::Server::Start(options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  server::Server& daemon = *started.value();

  const int fd = RawConnect(daemon.port());  // connect, then say nothing
  const std::string answer = DrainSocket(fd);
  ::close(fd);
  EXPECT_NE(answer.find("DeadlineExceeded"), std::string::npos) << answer;
  EXPECT_EQ(daemon.Stats().reaped_idle, 1u);

  daemon.Stop();
  daemon.Wait();
}

std::string RegistryTempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "server_registry_" + name;
  std::remove(path.c_str());
  return path;
}

TEST(ServerTest, RegistryResolvedLoadMatchesTheFileOracle) {
  const std::string registry_path = RegistryTempPath("resolve");
  {
    // Register the release offline, the way an operator would.
    auto reg =
        registry::ArtifactRegistry::Open(registry_path, {});
    ASSERT_TRUE(reg.ok()) << reg.status().ToString();
    ASSERT_TRUE(reg.value()->Put("petster", "m", FittedArtifact(5)).ok());
  }
  server::ServerOptions options = TestServerOptions();
  options.registry_path = registry_path;
  auto started = server::Server::Start(options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  server::Server& daemon = *started.value();

  // Loading by (dataset, name) needs no artifact file anywhere near the
  // server, and serving from it is bitwise the engine oracle.
  server::Request load;
  load.op = server::RequestOp::kLoad;
  load.id = 1;
  load.tenant = "alice";
  load.name = "m";
  load.dataset = "petster";
  ASSERT_TRUE(daemon.Handle(load).status.ok());

  server::Request sample;
  sample.op = server::RequestOp::kSample;
  sample.id = 2;
  sample.tenant = "alice";
  sample.name = "m";
  sample.seed = 91;
  sample.count = 2;
  const server::Response response = daemon.Handle(sample);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  const std::vector<uint64_t> oracle = OracleChecksums(5, 91, 0, 2);
  ASSERT_EQ(response.graphs.size(), 2u);
  EXPECT_EQ(response.graphs[0].checksum, oracle[0]);
  EXPECT_EQ(response.graphs[1].checksum, oracle[1]);

  // An unregistered name is NotFound; on a daemon with no registry the
  // same request is a typed precondition failure.
  load.id = 3;
  load.name = "ghost";
  load.dataset = "petster";
  EXPECT_EQ(daemon.Handle(load).status.code(),
            util::StatusCode::kNotFound);
  daemon.Stop();
  daemon.Wait();
  std::remove(registry_path.c_str());

  auto bare = server::Server::Start(TestServerOptions());
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare.value()->Handle(load).status.code(),
            util::StatusCode::kFailedPrecondition);
  bare.value()->Stop();
  bare.value()->Wait();
}

TEST(ServerTest, RestartedDaemonStillEnforcesTenantBudgets) {
  const std::string registry_path = RegistryTempPath("restart");
  const double eps = FittedArtifact(5).epsilon_spent;
  server::ServerOptions options = TestServerOptions();
  options.registry_path = registry_path;
  options.default_tenant_budget = 1.5 * eps;

  auto load = [](server::Server& daemon, const std::string& name,
                 uint64_t seed) {
    server::Request request;
    request.op = server::RequestOp::kLoad;
    request.id = 1;
    request.tenant = "alice";
    request.name = name;
    request.artifact = ArtifactFile(seed);
    return daemon.Handle(request).status;
  };

  {
    auto first = server::Server::Start(options);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    ASSERT_TRUE(load(*first.value(), "r1", 5).ok());
    EXPECT_NEAR(first.value()->ledger().Spent("alice"), eps, 1e-9);
    first.value()->Stop();
    first.value()->Wait();
  }

  // A fresh process with a memory-only ledger would let alice pay for r2
  // again from zero. The registry-backed one must not.
  auto second = server::Server::Start(options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_NEAR(second.value()->ledger().Spent("alice"), eps, 1e-9)
      << "durable charge lost across restart";
  const util::Status overdraw = load(*second.value(), "r2", 11);
  ASSERT_FALSE(overdraw.ok());
  EXPECT_EQ(overdraw.code(), util::StatusCode::kResourceExhausted)
      << overdraw.ToString();
  // The release she already paid for stays free, even under a new name.
  EXPECT_TRUE(load(*second.value(), "r1-again", 5).ok());
  EXPECT_NEAR(second.value()->ledger().Spent("alice"), eps, 1e-9);
  second.value()->Stop();
  second.value()->Wait();
  std::remove(registry_path.c_str());
}

TEST(ServerTcpTest, DrainFlushesQueuedResponsesAndCheckpoints) {
  const std::string registry_path = RegistryTempPath("drain");
  server::ServerOptions options = TestServerOptions();
  options.registry_path = registry_path;
  auto started = server::Server::Start(options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<server::Server> owned = std::move(started).value();
  server::Server& daemon = *owned;

  auto client = server::Client::Connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(client.ok());
  server::Request load;
  load.op = server::RequestOp::kLoad;
  load.id = 1;
  load.tenant = "alice";
  load.name = "m";
  load.artifact = ArtifactFile(5);
  ASSERT_TRUE(client.value().Call(load).ok());

  // Issue a sample from a second thread, then drain: in-flight work must
  // finish and its response must flush over the half-closed connection.
  server::Request sample;
  sample.op = server::RequestOp::kSample;
  sample.id = 2;
  sample.tenant = "alice";
  sample.name = "m";
  sample.seed = 5;
  util::Status transport = util::Status::Internal("not run");
  util::Status answer = util::Status::Internal("not run");
  std::thread caller([&] {
    auto response = client.value().Call(sample);
    transport = response.status();
    if (response.ok()) answer = response.value().status;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  daemon.Drain();
  caller.join();
  ASSERT_TRUE(transport.ok()) << transport.ToString();
  EXPECT_TRUE(answer.ok()) << answer.ToString();
  daemon.Wait();
  owned.reset();  // releases the registry's flock

  // Wait() checkpointed the registry: reopening replays exactly one
  // checkpoint record carrying alice's charge.
  auto reg = registry::ArtifactRegistry::Open(registry_path, {});
  ASSERT_TRUE(reg.ok()) << reg.status().ToString();
  EXPECT_EQ(reg.value()->Stats().recovered_records, 1u);
  ASSERT_EQ(reg.value()->TenantCharges().size(), 1u);
  EXPECT_EQ(reg.value()->TenantCharges()[0].tenant, "alice");
  std::remove(registry_path.c_str());
}

}  // namespace
}  // namespace agmdp

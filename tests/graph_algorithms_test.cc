#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/graph/clustering.h"
#include "src/graph/components.h"
#include "src/graph/degree.h"
#include "src/graph/triangle_count.h"
#include "src/models/erdos_renyi.h"
#include "src/util/rng.h"

namespace agmdp::graph {
namespace {

Graph Triangle() {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  return g;
}

Graph CompleteGraph(NodeId n) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.AddEdge(u, v);
  }
  return g;
}

// -------------------------------------------------------------- Triangles --

TEST(TriangleCountTest, EmptyAndTinyGraphs) {
  EXPECT_EQ(CountTriangles(Graph(0)), 0u);
  EXPECT_EQ(CountTriangles(Graph(5)), 0u);
  EXPECT_EQ(CountTriangles(Triangle()), 1u);
}

TEST(TriangleCountTest, CompleteGraphHasBinomialTriangles) {
  for (NodeId n : {4u, 6u, 9u}) {
    const uint64_t expected =
        static_cast<uint64_t>(n) * (n - 1) * (n - 2) / 6;
    EXPECT_EQ(CountTriangles(CompleteGraph(n)), expected) << "K_" << n;
  }
}

TEST(TriangleCountTest, BipartiteGraphHasNone) {
  Graph g(6);  // K_{3,3}
  for (NodeId u = 0; u < 3; ++u) {
    for (NodeId v = 3; v < 6; ++v) g.AddEdge(u, v);
  }
  EXPECT_EQ(CountTriangles(g), 0u);
}

// Property sweep: the fast counter must agree with brute force on random
// graphs across densities.
class TriangleAgreementTest : public ::testing::TestWithParam<double> {};

TEST_P(TriangleAgreementTest, FastMatchesBruteForce) {
  util::Rng rng(1234 + static_cast<uint64_t>(GetParam() * 100));
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = models::ErdosRenyiGnp(40, GetParam(), rng);
    EXPECT_EQ(CountTriangles(g), CountTrianglesBrute(g));
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, TriangleAgreementTest,
                         ::testing::Values(0.05, 0.1, 0.2, 0.4, 0.7));

TEST(WedgeCountTest, StarAndTriangle) {
  Graph star(5);
  for (NodeId v = 1; v < 5; ++v) star.AddEdge(0, v);
  EXPECT_EQ(CountWedges(star), 6u);  // C(4,2)
  EXPECT_EQ(CountWedges(Triangle()), 3u);
}

TEST(PerNodeTrianglesTest, MatchesTotal) {
  util::Rng rng(99);
  Graph g = models::ErdosRenyiGnp(50, 0.2, rng);
  std::vector<uint64_t> per_node = PerNodeTriangles(g);
  uint64_t sum = std::accumulate(per_node.begin(), per_node.end(),
                                 uint64_t{0});
  EXPECT_EQ(sum, 3 * CountTriangles(g));  // each triangle has 3 corners
}

TEST(MaxCommonNeighborTest, KnownValues) {
  // Two nodes sharing 3 common neighbors.
  Graph g(5);
  for (NodeId w = 2; w < 5; ++w) {
    g.AddEdge(0, w);
    g.AddEdge(1, w);
  }
  auto result = MaxCommonNeighborCount(g, 1'000'000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 3u);
}

TEST(MaxCommonNeighborTest, RespectsWorkBudget) {
  Graph g = CompleteGraph(30);
  EXPECT_FALSE(MaxCommonNeighborCount(g, 10).ok());
  auto full = MaxCommonNeighborCount(g, 10'000'000);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value(), 28u);  // K_30: every pair shares n-2 neighbors
}

TEST(MaxCommonNeighborTest, UpperBoundsEveryEdgeEffect) {
  // Removing any edge changes the triangle count by its common-neighbor
  // count, so amax must bound the per-edge triangle deltas (the ladder's
  // local sensitivity argument).
  util::Rng rng(7);
  Graph g = models::ErdosRenyiGnp(40, 0.25, rng);
  auto amax = MaxCommonNeighborCount(g, 10'000'000);
  ASSERT_TRUE(amax.ok());
  const uint64_t before = CountTriangles(g);
  std::vector<Edge> edges = g.CanonicalEdges();
  for (size_t i = 0; i < std::min<size_t>(edges.size(), 30); ++i) {
    Graph h = g;
    h.RemoveEdge(edges[i].u, edges[i].v);
    const uint64_t after = CountTriangles(h);
    EXPECT_LE(before - after, amax.value());
  }
}

// ------------------------------------------------------------- Clustering --

TEST(ClusteringTest, TriangleIsFullyClustered) {
  Graph g = Triangle();
  std::vector<double> local = LocalClusteringCoefficients(g);
  for (double c : local) EXPECT_DOUBLE_EQ(c, 1.0);
  EXPECT_DOUBLE_EQ(AverageLocalClustering(g), 1.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 1.0);
}

TEST(ClusteringTest, StarHasZeroClustering) {
  Graph g(5);
  for (NodeId v = 1; v < 5; ++v) g.AddEdge(0, v);
  EXPECT_DOUBLE_EQ(AverageLocalClustering(g), 0.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 0.0);
}

TEST(ClusteringTest, PaperFormulaOnMixedGraph) {
  // Triangle 0-1-2 plus pendant 3 attached to 0.
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  std::vector<double> local = LocalClusteringCoefficients(g);
  EXPECT_DOUBLE_EQ(local[0], 1.0 / 3.0);  // d=3, one triangle
  EXPECT_DOUBLE_EQ(local[1], 1.0);
  EXPECT_DOUBLE_EQ(local[3], 0.0);        // degree 1
  // Global: 3 * 1 triangle / (3 + C(3,2)) wedges = 3 / 5... wedges: node0
  // C(3,2)=3, node1 C(2,2)=1, node2 C(2,2)=1 -> 5 wedges.
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 3.0 / 5.0);
}

TEST(ClusteringTest, GlobalVsLocalEmphasis) {
  // The paper keeps both statistics because they weight nodes differently;
  // verify they actually differ on a hub-heavy graph.
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);  // triangle among {0,1,2}
  g.AddEdge(0, 3);
  g.AddEdge(0, 4);
  g.AddEdge(0, 5);  // hub 0
  EXPECT_NE(AverageLocalClustering(g), GlobalClusteringCoefficient(g));
}

// ------------------------------------------------------------- Components --

TEST(ComponentsTest, SingleComponent) {
  Graph g = Triangle();
  uint32_t count = 0;
  ConnectedComponents(g, &count);
  EXPECT_EQ(count, 1u);
  EXPECT_TRUE(IsConnected(g));
}

TEST(ComponentsTest, CountsIsolatedNodes) {
  Graph g(5);
  g.AddEdge(0, 1);
  uint32_t count = 0;
  std::vector<uint32_t> label = ConnectedComponents(g, &count);
  EXPECT_EQ(count, 4u);  // {0,1}, {2}, {3}, {4}
  EXPECT_EQ(label[0], label[1]);
  EXPECT_FALSE(IsConnected(g));
}

TEST(ComponentsTest, LargestComponentExtraction) {
  Graph g(7);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);  // component of 4
  g.AddEdge(4, 5);  // component of 2
  std::vector<NodeId> largest = LargestComponent(g);
  EXPECT_EQ(largest, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(ComponentsTest, InducedSubgraphRelabels) {
  Graph g(6);
  g.AddEdge(1, 3);
  g.AddEdge(3, 5);
  g.AddEdge(1, 5);
  g.AddEdge(0, 1);  // outside the induced set
  Graph sub = InducedSubgraph(g, {1, 3, 5});
  EXPECT_EQ(sub.num_nodes(), 3u);
  EXPECT_EQ(sub.num_edges(), 3u);
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_TRUE(sub.HasEdge(1, 2));
  EXPECT_TRUE(sub.HasEdge(0, 2));
}

TEST(ComponentsTest, InducedAttributedSubgraphCarriesAttributes) {
  AttributedGraph g(4, 2);
  g.structure().AddEdge(0, 2);
  ASSERT_TRUE(g.SetAttributes({1, 0, 3, 2}).ok());
  AttributedGraph sub = InducedSubgraph(g, {2, 0});
  EXPECT_EQ(sub.attribute(0), 3u);  // node 2's config
  EXPECT_EQ(sub.attribute(1), 1u);  // node 0's config
  EXPECT_TRUE(sub.structure().HasEdge(0, 1));
}

// ----------------------------------------------------------------- Degree --

TEST(DegreeTest, SequencesAndHistogram) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  EXPECT_EQ(DegreeSequence(g), (std::vector<uint32_t>{3, 1, 1, 1}));
  EXPECT_EQ(SortedDegreeSequence(g), (std::vector<uint32_t>{1, 1, 1, 3}));
  EXPECT_EQ(DegreeHistogram(g), (std::vector<uint64_t>{0, 3, 0, 1}));
  EXPECT_DOUBLE_EQ(AverageDegree(g), 1.5);
}

TEST(DegreeTest, HandlesEdgelessGraph) {
  Graph g(3);
  EXPECT_EQ(DegreeHistogram(g), (std::vector<uint64_t>{3}));
  EXPECT_DOUBLE_EQ(AverageDegree(g), 0.0);
}

}  // namespace
}  // namespace agmdp::graph

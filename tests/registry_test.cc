// Crash-safety suite for the durable artifact registry (ctest label:
// fault — the set the ASan CI fault step runs).
//
// The invariant under test is the one differential privacy depends on:
// recovered spend is never lower than any spend acknowledged to a caller.
// The suite drives it three ways:
//   * torn tails — the journal truncated at every record boundary and at
//     several mid-record cuts must recover to a valid prefix state whose
//     spend dominates everything acknowledged within the surviving bytes;
//   * injected IO faults — failed/torn appends wound the registry (reads
//     OK, mutations refused) and leave a recoverable file behind;
//   * a crash matrix — a forked child _exits inside every journaled fault
//     point mid-mutation; the reopened registry must still enforce the
//     dataset cap and hold every acknowledged charge.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "src/agm/agm_sampler.h"
#include "src/datasets/datasets.h"
#include "src/pipeline/release_artifact.h"
#include "src/registry/artifact_registry.h"
#include "src/util/check.h"
#include "src/util/checksum.h"
#include "src/util/fault_injector.h"

namespace agmdp::registry {
namespace {

constexpr double kTol = 1e-9;

/// A small but valid fitted-parameter set, learned once (exact, free).
const agm::AgmParams& BaseParams() {
  static const agm::AgmParams* params = [] {
    auto g = datasets::GenerateDataset(datasets::DatasetId::kLastFm,
                                       /*scale=*/0.05, /*seed=*/7);
    AGMDP_CHECK_MSG(g.ok(), g.status().ToString().c_str());
    return new agm::AgmParams(agm::LearnAgmParams(g.value()));
  }();
  return *params;
}

/// Distinct epsilons give distinct config fingerprints AND distinct
/// release keys (epsilon_spent is part of the canonical JSON).
pipeline::ReleaseArtifact TestArtifact(double epsilon) {
  pipeline::PipelineConfig config;
  config.epsilon = epsilon;
  config.model = "fcl";
  pipeline::ReleaseArtifact artifact =
      pipeline::MakeReleaseArtifact(BaseParams(), config);
  artifact.epsilon_budget = epsilon;
  artifact.epsilon_spent = epsilon;
  artifact.ledger.emplace_back("fit", epsilon);
  return artifact;
}

/// Same config fingerprint as TestArtifact(epsilon) but a different
/// release key — "the same config was refit and drew different noise".
pipeline::ReleaseArtifact RefitArtifact(double epsilon) {
  pipeline::ReleaseArtifact artifact = TestArtifact(epsilon);
  AGMDP_CHECK_MSG(!artifact.params.degree_sequence.empty(),
                  "test params need a degree sequence");
  artifact.params.degree_sequence[0] += 1;
  return artifact;
}

RegistryOptions Capped(double cap) {
  RegistryOptions options;
  options.default_dataset_cap = cap;
  return options;
}

class RegistryTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    const std::string path = ::testing::TempDir() + "registry_test_" + name;
    paths_.push_back(path);
    paths_.push_back(path + ".tmp");
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
    return path;
  }

  void TearDown() override {
    util::FaultInjector::Global().Reset();
    for (const std::string& path : paths_) std::remove(path.c_str());
  }

  static std::string ReadAll(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    EXPECT_TRUE(f.is_open()) << path;
    return std::string(std::istreambuf_iterator<char>(f), {});
  }

  static void WriteAll(const std::string& path, const std::string& bytes) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(f.is_open()) << path;
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  static uint64_t FileBytes(const std::string& path) {
    struct stat st{};
    EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
    return static_cast<uint64_t>(st.st_size);
  }

  std::vector<std::string> paths_;
};

TEST_F(RegistryTest, RoundTripAndReopen) {
  const std::string path = TempPath("roundtrip");
  const pipeline::ReleaseArtifact a = TestArtifact(0.69);
  {
    auto reg = ArtifactRegistry::Open(path, Capped(2.0));
    ASSERT_TRUE(reg.ok()) << reg.status().ToString();
    ASSERT_TRUE(reg.value()->Put("lastfm", "m", a).ok());
    auto resolved = reg.value()->Resolve("lastfm", "m");
    ASSERT_TRUE(resolved.ok());
    EXPECT_EQ(pipeline::ReleaseArtifactToJson(resolved.value()),
              pipeline::ReleaseArtifactToJson(a));
    EXPECT_NEAR(reg.value()->Spent("lastfm"), 0.69, kTol);
    EXPECT_NEAR(reg.value()->Cap("lastfm"), 2.0, kTol);
  }
  auto reopened = ArtifactRegistry::Open(path, Capped(2.0));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_NEAR(reopened.value()->Spent("lastfm"), 0.69, kTol);
  auto resolved = reopened.value()->Resolve("lastfm", "m");
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_EQ(pipeline::ReleaseArtifactToJson(resolved.value()),
            pipeline::ReleaseArtifactToJson(a));
  const RegistryStats stats = reopened.value()->Stats();
  EXPECT_EQ(stats.recovered_records, 2u);  // charge + artifact
  EXPECT_EQ(stats.discarded_tail_bytes, 0u);
  EXPECT_EQ(stats.artifacts, 1u);
}

TEST_F(RegistryTest, IdempotentPutAndCollisions) {
  const std::string path = TempPath("idempotent");
  auto reg = ArtifactRegistry::Open(path, Capped(1.0));
  ASSERT_TRUE(reg.ok());
  const pipeline::ReleaseArtifact a = TestArtifact(0.69);
  ASSERT_TRUE(reg.value()->Put("lastfm", "m", a).ok());
  const uint64_t bytes_after_first = reg.value()->Stats().journal_bytes;

  // Re-putting the identical artifact is OK and journals nothing: with a
  // 1.0 cap a second 0.69 charge would be refused, so this also proves no
  // double charge.
  ASSERT_TRUE(reg.value()->Put("lastfm", "m", a).ok());
  EXPECT_NEAR(reg.value()->Spent("lastfm"), 0.69, kTol);
  EXPECT_EQ(reg.value()->Stats().journal_bytes, bytes_after_first);

  // A different release under the same name is refused.
  auto st = reg.value()->Put("lastfm", "m", TestArtifact(0.1));
  EXPECT_EQ(st.code(), util::StatusCode::kFailedPrecondition)
      << st.ToString();

  // A refit of an already-released config (same fingerprint, new key) is
  // refused even under a fresh name: it would burn budget for noise.
  st = reg.value()->Put("lastfm", "m2", RefitArtifact(0.69));
  EXPECT_EQ(st.code(), util::StatusCode::kFailedPrecondition)
      << st.ToString();

  // The same artifact may serve two datasets independently.
  EXPECT_TRUE(reg.value()->Put("petster", "m", a).ok());
  EXPECT_NEAR(reg.value()->Spent("petster"), 0.69, kTol);
}

TEST_F(RegistryTest, CapEnforcement) {
  const std::string path = TempPath("cap");
  auto reg = ArtifactRegistry::Open(path, Capped(1.0));
  ASSERT_TRUE(reg.ok());
  ASSERT_TRUE(reg.value()->Put("lastfm", "a", TestArtifact(0.69)).ok());
  const uint64_t bytes_before = reg.value()->Stats().journal_bytes;

  auto st = reg.value()->Put("lastfm", "b", TestArtifact(0.5));
  EXPECT_EQ(st.code(), util::StatusCode::kResourceExhausted)
      << st.ToString();
  // A refused charge journals nothing and changes nothing.
  EXPECT_EQ(reg.value()->Stats().journal_bytes, bytes_before);
  EXPECT_NEAR(reg.value()->Spent("lastfm"), 0.69, kTol);
  EXPECT_FALSE(reg.value()->Resolve("lastfm", "b").ok());

  // A charge that exactly lands on the cap is allowed (tolerance covers
  // the float sum), and per-dataset overrides beat the default cap.
  RegistryOptions options = Capped(1.0);
  options.dataset_caps.emplace_back("petster", 0.5);
  const std::string path2 = TempPath("cap_override");
  auto reg2 = ArtifactRegistry::Open(path2, options);
  ASSERT_TRUE(reg2.ok());
  EXPECT_EQ(
      reg2.value()->Put("petster", "a", TestArtifact(0.69)).code(),
      util::StatusCode::kResourceExhausted);
  EXPECT_TRUE(reg2.value()->Put("petster", "b", TestArtifact(0.5)).ok());
}

TEST_F(RegistryTest, GcKeepsChargeAndReputIsFree) {
  const std::string path = TempPath("gc");
  auto reg = ArtifactRegistry::Open(path, Capped(1.0));
  ASSERT_TRUE(reg.ok());
  const pipeline::ReleaseArtifact a = TestArtifact(0.69);
  ASSERT_TRUE(reg.value()->Put("lastfm", "m", a).ok());
  ASSERT_TRUE(reg.value()->Gc("lastfm", "m").ok());

  // The artifact is gone but the privacy loss is not refundable.
  EXPECT_EQ(reg.value()->Resolve("lastfm", "m").status().code(),
            util::StatusCode::kNotFound);
  EXPECT_NEAR(reg.value()->Spent("lastfm"), 0.69, kTol);
  EXPECT_EQ(reg.value()->Gc("lastfm", "m").code(),
            util::StatusCode::kNotFound);

  // Re-releasing the identical artifact costs nothing (it is the same
  // release) — and that survives a reopen.
  ASSERT_TRUE(reg.value()->Put("lastfm", "m", a).ok());
  EXPECT_NEAR(reg.value()->Spent("lastfm"), 0.69, kTol);
  reg = util::Status::Internal("closed");
  auto reopened = ArtifactRegistry::Open(path, Capped(1.0));
  ASSERT_TRUE(reopened.ok());
  EXPECT_NEAR(reopened.value()->Spent("lastfm"), 0.69, kTol);
  EXPECT_TRUE(reopened.value()->Resolve("lastfm", "m").ok());
}

TEST_F(RegistryTest, TenantChargesPersist) {
  const std::string path = TempPath("tenant");
  {
    auto reg = ArtifactRegistry::Open(path, RegistryOptions{});
    ASSERT_TRUE(reg.ok());
    ASSERT_TRUE(reg.value()->ChargeTenant("alice", 7, 0.5).ok());
    ASSERT_TRUE(reg.value()->ChargeTenant("alice", 7, 0.5).ok());  // idem
    ASSERT_TRUE(reg.value()->ChargeTenant("bob", 7, 0.5).ok());
    EXPECT_EQ(reg.value()->TenantCharges().size(), 2u);
  }
  auto reopened = ArtifactRegistry::Open(path, RegistryOptions{});
  ASSERT_TRUE(reopened.ok());
  const std::vector<TenantChargeRow> charges =
      reopened.value()->TenantCharges();
  ASSERT_EQ(charges.size(), 2u);
  EXPECT_EQ(charges[0].tenant, "alice");
  EXPECT_EQ(charges[0].release_key, 7u);
  EXPECT_NEAR(charges[0].epsilon, 0.5, kTol);
  EXPECT_EQ(charges[1].tenant, "bob");
}

TEST_F(RegistryTest, CheckpointCompactsAndIsDeterministic) {
  const std::string path_a = TempPath("ckpt_a");
  const std::string path_b = TempPath("ckpt_b");
  for (const std::string& path : {path_a, path_b}) {
    auto reg = ArtifactRegistry::Open(path, Capped(5.0));
    ASSERT_TRUE(reg.ok());
    ASSERT_TRUE(reg.value()->Put("lastfm", "a", TestArtifact(0.3)).ok());
    ASSERT_TRUE(reg.value()->Put("lastfm", "b", TestArtifact(0.5)).ok());
    ASSERT_TRUE(reg.value()->Put("petster", "a", TestArtifact(0.3)).ok());
    ASSERT_TRUE(reg.value()->ChargeTenant("alice", 1, 0.3).ok());
    ASSERT_TRUE(reg.value()->Gc("lastfm", "a").ok());
    const uint64_t before = reg.value()->Stats().journal_bytes;
    ASSERT_TRUE(reg.value()->Checkpoint().ok());
    EXPECT_LT(reg.value()->Stats().journal_bytes, before);
    EXPECT_EQ(reg.value()->Stats().checkpoints, 1u);
    // The registry stays fully usable across the checkpoint fd swap.
    ASSERT_TRUE(reg.value()->Put("lastfm", "c", TestArtifact(0.7)).ok());
  }
  // Same history, byte-identical files — the bench determinism contract.
  EXPECT_EQ(ReadAll(path_a), ReadAll(path_b));

  auto reopened = ArtifactRegistry::Open(path_a, Capped(5.0));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_NEAR(reopened.value()->Spent("lastfm"), 1.5, kTol);
  EXPECT_NEAR(reopened.value()->Spent("petster"), 0.3, kTol);
  EXPECT_EQ(reopened.value()->Resolve("lastfm", "a").status().code(),
            util::StatusCode::kNotFound);
  EXPECT_TRUE(reopened.value()->Resolve("lastfm", "b").ok());
  EXPECT_TRUE(reopened.value()->Resolve("lastfm", "c").ok());
  EXPECT_EQ(reopened.value()->TenantCharges().size(), 1u);
}

// The heart of the durability story: cut the journal at every frame
// boundary and at several mid-record offsets. Every cut must recover to a
// valid registry, and the recovered spend must dominate every state that
// was acknowledged within the surviving bytes.
TEST_F(RegistryTest, TornTailAtEveryBoundary) {
  const std::string path = TempPath("torn_src");
  // (journal size after the mutation, spent after the mutation) — the
  // acknowledged states a crashed writer's clients could have observed.
  std::vector<std::pair<uint64_t, double>> acknowledged;
  {
    auto reg = ArtifactRegistry::Open(path, Capped(5.0));
    ASSERT_TRUE(reg.ok());
    auto ack = [&] {
      acknowledged.emplace_back(reg.value()->Stats().journal_bytes,
                                reg.value()->Spent("lastfm"));
    };
    ASSERT_TRUE(reg.value()->Put("lastfm", "a", TestArtifact(0.3)).ok());
    ack();
    ASSERT_TRUE(reg.value()->ChargeTenant("alice", 11, 0.3).ok());
    ack();
    ASSERT_TRUE(reg.value()->Put("lastfm", "b", TestArtifact(0.5)).ok());
    ack();
    ASSERT_TRUE(reg.value()->Gc("lastfm", "a").ok());
    ack();
    ASSERT_TRUE(reg.value()->Put("lastfm", "c", TestArtifact(0.7)).ok());
    ack();
  }
  const std::string bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 16u);

  // Parse the frame boundaries (16-byte header, then [len][crc][payload]).
  std::vector<uint64_t> boundaries = {16};
  uint64_t offset = 16;
  while (offset + 8 <= bytes.size()) {
    const auto* b =
        reinterpret_cast<const unsigned char*>(bytes.data() + offset);
    const uint32_t len = static_cast<uint32_t>(b[0]) |
                         (static_cast<uint32_t>(b[1]) << 8) |
                         (static_cast<uint32_t>(b[2]) << 16) |
                         (static_cast<uint32_t>(b[3]) << 24);
    offset += 8 + len;
    boundaries.push_back(offset);
  }
  ASSERT_EQ(offset, bytes.size()) << "journal must end on a frame boundary";
  ASSERT_GE(boundaries.size(), 8u);  // 5 mutations journal >= 7 records

  std::vector<uint64_t> cuts;
  for (size_t i = 0; i + 1 < boundaries.size(); ++i) {
    const uint64_t begin = boundaries[i];
    const uint64_t next = boundaries[i + 1];
    // The clean boundary, a cut inside the frame header, a cut right after
    // it, and a cut mid-payload.
    cuts.push_back(begin);
    cuts.push_back(begin + 3);
    cuts.push_back(begin + 8);
    cuts.push_back(begin + (next - begin) / 2);
  }
  const std::string torn = TempPath("torn_cut");
  for (const uint64_t cut : cuts) {
    ASSERT_LE(cut, bytes.size());
    WriteAll(torn, bytes.substr(0, cut));
    auto reg = ArtifactRegistry::Open(torn, Capped(5.0));
    ASSERT_TRUE(reg.ok()) << "cut at byte " << cut << ": "
                          << reg.status().ToString();
    double floor_spent = 0.0;
    for (const auto& [size, spent] : acknowledged) {
      if (size <= cut) floor_spent = std::max(floor_spent, spent);
    }
    EXPECT_GE(reg.value()->Spent("lastfm") + kTol, floor_spent)
        << "cut at byte " << cut << " under-counted acknowledged spend";
    // The truncated file was repaired in place: a new mutation appends
    // cleanly and the next recovery sees no tail damage.
    ASSERT_TRUE(reg.value()->Put("pokec", "fresh", TestArtifact(0.1)).ok())
        << "cut at byte " << cut;
    reg = util::Status::Internal("closed");
    auto again = ArtifactRegistry::Open(torn, Capped(5.0));
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ(again.value()->Stats().discarded_tail_bytes, 0u)
        << "cut at byte " << cut;
    EXPECT_TRUE(again.value()->Resolve("pokec", "fresh").ok());
  }
}

TEST_F(RegistryTest, MidJournalCorruptionIsNotATornTail) {
  const std::string path = TempPath("midrot");
  {
    auto reg = ArtifactRegistry::Open(path, Capped(5.0));
    ASSERT_TRUE(reg.ok());
    ASSERT_TRUE(reg.value()->Put("lastfm", "a", TestArtifact(0.3)).ok());
    ASSERT_TRUE(reg.value()->Put("lastfm", "b", TestArtifact(0.5)).ok());
  }
  std::string bytes = ReadAll(path);
  // Flip one payload byte of the FIRST record. Truncating here would drop
  // the durable records behind it, so Open must refuse instead.
  bytes[30] = static_cast<char>(bytes[30] ^ 0x40);
  WriteAll(path, bytes);
  auto reg = ArtifactRegistry::Open(path, Capped(5.0));
  ASSERT_FALSE(reg.ok());
  EXPECT_EQ(reg.status().code(), util::StatusCode::kCorruption)
      << reg.status().ToString();
}

TEST_F(RegistryTest, HeaderDamageYieldsTypedErrors) {
  const std::string path = TempPath("header");
  {
    auto reg = ArtifactRegistry::Open(path, RegistryOptions{});
    ASSERT_TRUE(reg.ok());
    ASSERT_TRUE(reg.value()->ChargeTenant("alice", 1, 0.1).ok());
  }
  const std::string good = ReadAll(path);

  std::string bad = good;
  bad[0] = 'X';
  WriteAll(path, bad);
  EXPECT_EQ(ArtifactRegistry::Open(path, RegistryOptions{}).status().code(),
            util::StatusCode::kCorruption);

  // Bumping the version byte without fixing the CRC is a checksum error;
  // with a recomputed CRC it is a version error.
  bad = good;
  bad[8] = static_cast<char>(bad[8] + 1);
  WriteAll(path, bad);
  EXPECT_EQ(ArtifactRegistry::Open(path, RegistryOptions{}).status().code(),
            util::StatusCode::kChecksumMismatch);

  const uint32_t crc = util::Crc32c(bad.data(), 12);
  bad[12] = static_cast<char>(crc & 0xff);
  bad[13] = static_cast<char>((crc >> 8) & 0xff);
  bad[14] = static_cast<char>((crc >> 16) & 0xff);
  bad[15] = static_cast<char>((crc >> 24) & 0xff);
  WriteAll(path, bad);
  EXPECT_EQ(ArtifactRegistry::Open(path, RegistryOptions{}).status().code(),
            util::StatusCode::kVersionMismatch);

  // A sub-header fragment (crash during creation) restarts cleanly.
  WriteAll(path, good.substr(0, 9));
  auto reg = ArtifactRegistry::Open(path, RegistryOptions{});
  ASSERT_TRUE(reg.ok()) << reg.status().ToString();
  EXPECT_EQ(reg.value()->Stats().discarded_tail_bytes, 9u);
}

TEST_F(RegistryTest, SecondOpenIsRefusedByTheLock) {
  const std::string path = TempPath("flock");
  auto first = ArtifactRegistry::Open(path, RegistryOptions{});
  ASSERT_TRUE(first.ok());
  auto second = ArtifactRegistry::Open(path, RegistryOptions{});
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(),
            util::StatusCode::kFailedPrecondition)
      << second.status().ToString();
  // Releasing the first holder frees the file.
  first = util::Status::Internal("closed");
  EXPECT_TRUE(ArtifactRegistry::Open(path, RegistryOptions{}).ok());
}

TEST_F(RegistryTest, JournalFaultWoundsButStaysReadable) {
  const std::string path = TempPath("wounded");
  auto reg = ArtifactRegistry::Open(path, Capped(5.0));
  ASSERT_TRUE(reg.ok());
  ASSERT_TRUE(reg.value()->Put("lastfm", "a", TestArtifact(0.3)).ok());

  ASSERT_TRUE(util::FaultInjector::Global()
                  .Arm("registry.charge.write", 1, util::FaultKind::kError)
                  .ok());
  auto st = reg.value()->Put("lastfm", "b", TestArtifact(0.5));
  EXPECT_EQ(st.code(), util::StatusCode::kIoError) << st.ToString();
  util::FaultInjector::Global().Reset();

  // Wounded: reads fine, every further mutation refused even though the
  // injector is disarmed — after a failed append the tail is untrusted.
  EXPECT_TRUE(reg.value()->Stats().wounded);
  EXPECT_TRUE(reg.value()->Resolve("lastfm", "a").ok());
  EXPECT_EQ(reg.value()->Put("lastfm", "c", TestArtifact(0.1)).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(reg.value()->ChargeTenant("alice", 1, 0.1).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(reg.value()->Checkpoint().code(),
            util::StatusCode::kFailedPrecondition);

  // Reopening recovers: the failed append never reached the file.
  reg = util::Status::Internal("closed");
  auto reopened = ArtifactRegistry::Open(path, Capped(5.0));
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE(reopened.value()->Stats().wounded);
  EXPECT_NEAR(reopened.value()->Spent("lastfm"), 0.3, kTol);
  EXPECT_TRUE(reopened.value()->Put("lastfm", "c", TestArtifact(0.1)).ok());
}

TEST_F(RegistryTest, TornAppendLeavesARecoverableFile) {
  const std::string path = TempPath("torn_append");
  auto reg = ArtifactRegistry::Open(path, Capped(5.0));
  ASSERT_TRUE(reg.ok());
  const pipeline::ReleaseArtifact b = TestArtifact(0.5);

  // Tear the artifact-commit append: the charge before it is durable, the
  // half-written commit frame is a torn tail for the next recovery.
  ASSERT_TRUE(
      util::FaultInjector::Global()
          .Arm("registry.commit.write", 1, util::FaultKind::kTornWrite)
          .ok());
  auto st = reg.value()->Put("lastfm", "b", b);
  EXPECT_EQ(st.code(), util::StatusCode::kIoError) << st.ToString();
  util::FaultInjector::Global().Reset();
  EXPECT_TRUE(reg.value()->Stats().wounded);
  reg = util::Status::Internal("closed");

  auto reopened = ArtifactRegistry::Open(path, Capped(5.0));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // Over-counted, exactly as designed: the charge survived, the artifact
  // did not — and re-putting the same artifact is free, so nothing is
  // permanently lost.
  EXPECT_GT(reopened.value()->Stats().discarded_tail_bytes, 0u);
  EXPECT_NEAR(reopened.value()->Spent("lastfm"), 0.5, kTol);
  EXPECT_EQ(reopened.value()->Resolve("lastfm", "b").status().code(),
            util::StatusCode::kNotFound);
  ASSERT_TRUE(reopened.value()->Put("lastfm", "b", b).ok());
  EXPECT_NEAR(reopened.value()->Spent("lastfm"), 0.5, kTol);
  EXPECT_TRUE(reopened.value()->Resolve("lastfm", "b").ok());
}

TEST_F(RegistryTest, CheckpointFaultBeforeRenameDoesNotWound) {
  const std::string path = TempPath("ckpt_fault");
  auto reg = ArtifactRegistry::Open(path, Capped(5.0));
  ASSERT_TRUE(reg.ok());
  ASSERT_TRUE(reg.value()->Put("lastfm", "a", TestArtifact(0.3)).ok());

  for (const char* point :
       {"registry.checkpoint.write", "registry.checkpoint.fsync",
        "registry.checkpoint.rename"}) {
    ASSERT_TRUE(util::FaultInjector::Global()
                    .Arm(point, 1, util::FaultKind::kError)
                    .ok());
    auto st = reg.value()->Checkpoint();
    EXPECT_EQ(st.code(), util::StatusCode::kIoError)
        << point << ": " << st.ToString();
    util::FaultInjector::Global().Reset();
    // A failed checkpoint never touched the live journal: not wounded,
    // still fully mutable.
    EXPECT_FALSE(reg.value()->Stats().wounded) << point;
  }
  ASSERT_TRUE(reg.value()->Put("lastfm", "b", TestArtifact(0.5)).ok());
  ASSERT_TRUE(reg.value()->Checkpoint().ok());
  EXPECT_NEAR(reg.value()->Spent("lastfm"), 0.8, kTol);
}

// The crash matrix: a forked child _exits inside every journaled fault
// point while mutating; the parent reopens the file and checks the
// acceptance invariant — the cap is still enforced and no acknowledged
// charge is lost.
TEST_F(RegistryTest, CrashAtEveryFaultPointNeverUndercounts) {
  const pipeline::ReleaseArtifact a = TestArtifact(0.69);
  const pipeline::ReleaseArtifact b = TestArtifact(0.3);
  const uint64_t key_b = pipeline::ReleaseArtifactReleaseKey(b);

  for (const char* point : kRegistryFaultPoints) {
    const std::string path = TempPath(std::string("crash_") + point);
    const std::string ack_put = path + ".ack_put";
    const std::string ack_tenant = path + ".ack_tenant";
    paths_.push_back(ack_put);
    paths_.push_back(ack_tenant);
    {
      auto reg = ArtifactRegistry::Open(path, Capped(1.0));
      ASSERT_TRUE(reg.ok()) << reg.status().ToString();
      ASSERT_TRUE(reg.value()->Put("lastfm", "a", a).ok());
    }

    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      // In the child: arm the crash, run a full mutation sequence, and
      // record which acknowledgements clients would have seen. _exit
      // everywhere — no gtest teardown in the child.
      if (!util::FaultInjector::Global()
               .Arm(point, 1, util::FaultKind::kExit)
               .ok()) {
        ::_exit(3);
      }
      auto reg = ArtifactRegistry::Open(path, Capped(1.0));
      if (!reg.ok()) ::_exit(4);
      if (reg.value()->Put("lastfm", "b", b).ok()) {
        ::close(::open(ack_put.c_str(), O_CREAT | O_WRONLY, 0644));
      }
      if (reg.value()->ChargeTenant("alice", key_b, 0.3).ok()) {
        ::close(::open(ack_tenant.c_str(), O_CREAT | O_WRONLY, 0644));
      }
      (void)reg.value()->Gc("lastfm", "b");
      (void)reg.value()->Checkpoint();
      ::_exit(0);  // the armed point was never reached — a test bug
    }

    int wstatus = 0;
    ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
    ASSERT_TRUE(WIFEXITED(wstatus)) << point;
    ASSERT_EQ(WEXITSTATUS(wstatus), util::FaultInjector::kExitCode)
        << point << ": the child must die inside the armed fault point";

    auto reg = ArtifactRegistry::Open(path, Capped(1.0));
    ASSERT_TRUE(reg.ok()) << point << ": " << reg.status().ToString();
    // Never below what was acknowledged before the crash.
    double floor_spent = 0.69;
    if (::access(ack_put.c_str(), F_OK) == 0) floor_spent += 0.3;
    EXPECT_GE(reg.value()->Spent("lastfm") + kTol, floor_spent) << point;
    if (::access(ack_tenant.c_str(), F_OK) == 0) {
      bool found = false;
      for (const TenantChargeRow& row : reg.value()->TenantCharges()) {
        found |= row.tenant == "alice" && row.release_key == key_b;
      }
      EXPECT_TRUE(found)
          << point << ": acknowledged tenant charge lost by the crash";
    }
    // Re-putting b is free whether or not its charge survived…
    ASSERT_TRUE(reg.value()->Put("lastfm", "b", b).ok()) << point;
    EXPECT_NEAR(reg.value()->Spent("lastfm"), 0.99, kTol) << point;
    // …and the lifetime cap still holds.
    EXPECT_EQ(reg.value()->Put("lastfm", "c", TestArtifact(0.5)).code(),
              util::StatusCode::kResourceExhausted)
        << point;
  }
}

}  // namespace
}  // namespace agmdp::registry

// util::FaultInjector mechanics plus the fault points threaded through the
// graph container writers and the serving socket path (ctest label:
// fault). The serving case is the full robustness loop: an injected send
// failure drops one response on the floor, and the client's
// jittered-backoff retry — safe because every protocol op is idempotent —
// turns it into a success on the next connection.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/datasets/datasets.h"
#include "src/graph/graph_container.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/server.h"
#include "src/util/check.h"
#include "src/util/fault_injector.h"

namespace agmdp {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { util::FaultInjector::Global().Reset(); }
};

TEST_F(FaultInjectionTest, FiresOnTheNthHitExactlyOnce) {
  util::FaultInjector& injector = util::FaultInjector::Global();
  ASSERT_TRUE(injector.Arm("p", 2, util::FaultKind::kError).ok());
  EXPECT_TRUE(util::FaultInjector::Armed());

  EXPECT_FALSE(injector.Poll("p").fire);  // hit 1
  const util::FaultAction second = injector.Poll("p");
  EXPECT_TRUE(second.fire);  // hit 2 — the armed one
  EXPECT_EQ(second.kind, util::FaultKind::kError);
  EXPECT_FALSE(injector.Poll("p").fire);  // spent
  EXPECT_EQ(injector.Hits("p"), 3u);
  EXPECT_FALSE(injector.Poll("unarmed").fire);

  injector.Reset();
  EXPECT_FALSE(util::FaultInjector::Armed());
  EXPECT_EQ(injector.Hits("p"), 0u);
  // Disarmed, the inline gate short-circuits without recording hits.
  EXPECT_FALSE(util::PollFault("p").fire);
  EXPECT_EQ(injector.Hits("p"), 0u);
}

TEST_F(FaultInjectionTest, ArmRejectsBadInputs) {
  util::FaultInjector& injector = util::FaultInjector::Global();
  EXPECT_FALSE(injector.Arm("", 1, util::FaultKind::kError).ok());
  EXPECT_FALSE(injector.Arm("p", 0, util::FaultKind::kError).ok());
}

TEST_F(FaultInjectionTest, SpecParsing) {
  util::FaultInjector& injector = util::FaultInjector::Global();
  ASSERT_TRUE(injector.ArmFromSpec("a=1,b=2:torn;c=3:error").ok());
  EXPECT_TRUE(injector.Poll("a").fire);
  EXPECT_FALSE(injector.Poll("b").fire);
  const util::FaultAction torn = injector.Poll("b");
  EXPECT_TRUE(torn.fire);
  EXPECT_EQ(torn.kind, util::FaultKind::kTornWrite);
  injector.Reset();

  EXPECT_TRUE(injector.ArmFromSpec("").ok());
  EXPECT_FALSE(injector.ArmFromSpec("no-equals").ok());
  EXPECT_FALSE(injector.ArmFromSpec("p=").ok());
  EXPECT_FALSE(injector.ArmFromSpec("p=abc").ok());
  EXPECT_FALSE(injector.ArmFromSpec("p=0").ok());
  EXPECT_FALSE(injector.ArmFromSpec("p=1:sideways").ok());
  EXPECT_FALSE(injector.ArmFromSpec("=1").ok());
}

TEST_F(FaultInjectionTest, CheckFaultNamesThePoint) {
  util::FaultInjector& injector = util::FaultInjector::Global();
  ASSERT_TRUE(injector.Arm("x.y", 1, util::FaultKind::kError).ok());
  const util::Status st = util::CheckFault("x.y");
  EXPECT_EQ(st.code(), util::StatusCode::kIoError);
  EXPECT_NE(st.message().find("x.y"), std::string::npos) << st.ToString();
  EXPECT_TRUE(util::CheckFault("x.y").ok());
}

TEST_F(FaultInjectionTest, ContainerWriteFaultsSurfaceAsIoErrors) {
  auto g = datasets::GenerateDataset(datasets::DatasetId::kLastFm,
                                     /*scale=*/0.05, /*seed=*/7);
  ASSERT_TRUE(g.ok());
  const std::string path = ::testing::TempDir() + "fault_container.agmbin";

  for (const char* point : {"container.create", "container.sync"}) {
    ASSERT_TRUE(util::FaultInjector::Global()
                    .Arm(point, 1, util::FaultKind::kError)
                    .ok());
    const util::Status st = graph::WriteBinaryGraph(g.value(), path, {});
    EXPECT_EQ(st.code(), util::StatusCode::kIoError)
        << point << ": " << st.ToString();
    util::FaultInjector::Global().Reset();
  }
  // Disarmed, the same write succeeds.
  EXPECT_TRUE(graph::WriteBinaryGraph(g.value(), path, {}).ok());
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, DroppedResponseIsAbsorbedByClientRetry) {
  server::ServerOptions options;
  options.worker_threads = 1;
  options.default_tenant_budget = 10.0;
  auto started = server::Server::Start(options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  server::Server& daemon = *started.value();

  server::Request request;
  request.op = server::RequestOp::kStats;
  request.id = 1;
  request.tenant = "alice";

  // The injected send failure shuts the connection with the response
  // undelivered; a single-attempt client sees a transport error...
  ASSERT_TRUE(util::FaultInjector::Global()
                  .Arm("server.send", 1, util::FaultKind::kError)
                  .ok());
  server::RetryPolicy no_retry;
  no_retry.max_attempts = 1;
  auto failed = server::CallWithRetry("127.0.0.1", daemon.port(), request,
                                      {}, no_retry);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), util::StatusCode::kUnavailable)
      << failed.status().ToString();

  // ...and a retrying client absorbs it: the point fires once, the second
  // attempt's fresh connection gets a clean answer.
  ASSERT_TRUE(util::FaultInjector::Global()
                  .Arm("server.send", 1, util::FaultKind::kError)
                  .ok());
  server::RetryPolicy retry;
  retry.max_attempts = 3;
  retry.initial_backoff_ms = 1;
  auto response = server::CallWithRetry("127.0.0.1", daemon.port(), request,
                                        {}, retry);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response.value().status.ok())
      << response.value().status.ToString();
  util::FaultInjector::Global().Reset();

  daemon.Stop();
  daemon.Wait();
}

}  // namespace
}  // namespace agmdp

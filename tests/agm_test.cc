#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/agm/agm_dp.h"
#include "src/agm/agm_sampler.h"
#include "src/agm/theta_f.h"
#include "src/agm/theta_x.h"
#include "src/datasets/homophily.h"
#include "src/graph/triangle_count.h"
#include "src/models/erdos_renyi.h"
#include "src/stats/metrics.h"
#include "src/util/rng.h"

namespace agmdp::agm {
namespace {

// A small attributed graph with known parameters: 4 nodes, w=1.
graph::AttributedGraph TinyGraph() {
  graph::AttributedGraph g(4, 1);
  g.structure().AddEdge(0, 1);
  g.structure().AddEdge(1, 2);
  g.structure().AddEdge(2, 3);
  // attrs: 0 -> 0, 1 -> 1, 2 -> 1, 3 -> 0
  EXPECT_TRUE(g.SetAttributes({0, 1, 1, 0}).ok());
  return g;
}

// A homophilous random attributed graph for statistical tests.
graph::AttributedGraph RandomAttributed(graph::NodeId n, double p, int w,
                                        uint64_t seed) {
  util::Rng rng(seed);
  graph::AttributedGraph g(models::ErdosRenyiGnp(n, p, rng), w);
  std::vector<double> theta_x(graph::NumNodeConfigs(w),
                              1.0 / graph::NumNodeConfigs(w));
  datasets::HomophilyOptions options;
  options.target_same_fraction = 0.6;
  EXPECT_TRUE(
      datasets::AssignHomophilousAttributes(&g, theta_x, options, rng).ok());
  return g;
}

// ----------------------------------------------------------------- ThetaX --

TEST(ThetaXTest, ExactCountsAndDistribution) {
  graph::AttributedGraph g = TinyGraph();
  std::vector<double> counts = ComputeAttributeCounts(g);
  EXPECT_DOUBLE_EQ(counts[0], 2.0);
  EXPECT_DOUBLE_EQ(counts[1], 2.0);
  std::vector<double> theta = ComputeThetaX(g);
  EXPECT_DOUBLE_EQ(theta[0], 0.5);
  EXPECT_DOUBLE_EQ(theta[1], 0.5);
}

TEST(ThetaXTest, DpVersionIsDistribution) {
  util::Rng rng(1);
  graph::AttributedGraph g = RandomAttributed(100, 0.05, 2, 7);
  std::vector<double> theta = LearnAttributesDp(g, 0.5, rng);
  ASSERT_EQ(theta.size(), 4u);
  double sum = std::accumulate(theta.begin(), theta.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (double p : theta) EXPECT_GE(p, 0.0);
}

TEST(ThetaXTest, DpConvergesToExactAtLargeEpsilon) {
  util::Rng rng(2);
  graph::AttributedGraph g = RandomAttributed(500, 0.02, 2, 8);
  std::vector<double> exact = ComputeThetaX(g);
  std::vector<double> noisy = LearnAttributesDp(g, 1000.0, rng);
  EXPECT_LT(stats::MeanAbsoluteError(noisy, exact), 0.001);
}

TEST(ThetaXTest, DpErrorShrinksWithEpsilon) {
  graph::AttributedGraph g = RandomAttributed(300, 0.03, 2, 9);
  std::vector<double> exact = ComputeThetaX(g);
  auto mean_error = [&](double eps, uint64_t seed) {
    util::Rng rng(seed);
    double total = 0.0;
    for (int i = 0; i < 50; ++i) {
      total += stats::MeanAbsoluteError(LearnAttributesDp(g, eps, rng), exact);
    }
    return total / 50;
  };
  EXPECT_LT(mean_error(1.0, 3), mean_error(0.01, 4));
}

TEST(SampleAttributesTest, MatchesMarginal) {
  util::Rng rng(5);
  std::vector<double> theta = {0.7, 0.1, 0.1, 0.1};
  auto attrs = SampleAttributes(theta, 20000, rng);
  ASSERT_TRUE(attrs.ok());
  std::vector<int> counts(4, 0);
  for (auto a : attrs.value()) ++counts[a];
  EXPECT_NEAR(counts[0] / 20000.0, 0.7, 0.02);
  EXPECT_NEAR(counts[2] / 20000.0, 0.1, 0.01);
}

TEST(SampleAttributesTest, FailsOnDegenerateTheta) {
  util::Rng rng(6);
  EXPECT_FALSE(SampleAttributes({0.0, 0.0}, 10, rng).ok());
}

// ----------------------------------------------------------------- ThetaF --

TEST(ThetaFTest, ExactCountsOnTinyGraph) {
  graph::AttributedGraph g = TinyGraph();
  // Edges: (0,1): configs {0,1}; (1,2): {1,1}; (2,3): {1,0}.
  // w=1 edge configs: {0,0} -> 0, {0,1} -> 1, {1,1} -> 2.
  std::vector<double> counts = ComputeConnectionCounts(g);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_DOUBLE_EQ(counts[0], 0.0);
  EXPECT_DOUBLE_EQ(counts[1], 2.0);
  EXPECT_DOUBLE_EQ(counts[2], 1.0);
  std::vector<double> theta = ComputeThetaF(g);
  EXPECT_DOUBLE_EQ(theta[1], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(theta[2], 1.0 / 3.0);
}

TEST(ThetaFTest, EdgelessGraphGivesUniform) {
  graph::AttributedGraph g(5, 1);
  std::vector<double> theta = ComputeThetaF(g);
  for (double p : theta) EXPECT_DOUBLE_EQ(p, 1.0 / 3.0);
}

class ThetaFDpMethodsTest : public ::testing::TestWithParam<int> {
 protected:
  std::vector<double> Learn(const graph::AttributedGraph& g, double eps,
                            util::Rng& rng) {
    switch (GetParam()) {
      case 0:
        return LearnCorrelationsDp(g, eps, /*k=*/0, rng);
      case 1:
        return LearnCorrelationsSmooth(g, eps, 1e-6, rng);
      case 2:
        return LearnCorrelationsSampleAggregate(g, eps, 25, rng);
      default:
        return LearnCorrelationsNaive(g, eps, rng);
    }
  }
};

TEST_P(ThetaFDpMethodsTest, ProducesValidDistribution) {
  util::Rng rng(10);
  graph::AttributedGraph g = RandomAttributed(200, 0.05, 2, 11);
  std::vector<double> theta = Learn(g, 0.5, rng);
  ASSERT_EQ(theta.size(), 10u);  // C(5,2) for w=2
  double sum = std::accumulate(theta.begin(), theta.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (double p : theta) EXPECT_GE(p, 0.0);
}

TEST_P(ThetaFDpMethodsTest, ErrorShrinksWithEpsilon) {
  graph::AttributedGraph g = RandomAttributed(400, 0.03, 2, 12);
  std::vector<double> exact = ComputeThetaF(g);
  auto mean_error = [&](double eps, uint64_t seed) {
    util::Rng rng(seed);
    double total = 0.0;
    for (int i = 0; i < 30; ++i) {
      total += stats::MeanAbsoluteError(Learn(g, eps, rng), exact);
    }
    return total / 30;
  };
  EXPECT_LE(mean_error(2.0, 13), mean_error(0.02, 14) + 1e-3);
}

std::string ThetaFMethodName(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"EdgeTruncation", "Smooth", "SampleAggregate",
                                 "Naive"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllMethods, ThetaFDpMethodsTest,
                         ::testing::Values(0, 1, 2, 3), ThetaFMethodName);

TEST(ThetaFComparisonTest, TruncationBeatsNaiveBaseline) {
  // Figure 5's qualitative claim at moderate epsilon on a small graph.
  graph::AttributedGraph g = RandomAttributed(300, 0.04, 2, 15);
  std::vector<double> exact = ComputeThetaF(g);
  util::Rng rng(16);
  double err_trunc = 0.0, err_naive = 0.0;
  for (int i = 0; i < 40; ++i) {
    err_trunc += stats::MeanAbsoluteError(
        LearnCorrelationsDp(g, 0.3, 0, rng), exact);
    err_naive += stats::MeanAbsoluteError(
        LearnCorrelationsNaive(g, 0.3, rng), exact);
  }
  EXPECT_LT(err_trunc, err_naive);
}

TEST(ThetaFTest, NodeDpVariantIsValidDistribution) {
  util::Rng rng(17);
  graph::AttributedGraph g = RandomAttributed(200, 0.05, 2, 18);
  std::vector<double> theta = LearnCorrelationsNodeDp(g, 0.7, 0.01, 0, rng);
  double sum = std::accumulate(theta.begin(), theta.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// ------------------------------------------------- Acceptance probabilities --

TEST(AcceptanceTest, UniformWhenObservedMatchesTarget) {
  std::vector<double> target = {0.5, 0.3, 0.2};
  std::vector<double> acceptance =
      ComputeAcceptanceProbabilities(target, target, {}, 1e-3);
  for (double a : acceptance) EXPECT_NEAR(a, 1.0, 1e-9);
}

TEST(AcceptanceTest, UnderrepresentedConfigGetsHighestAcceptance) {
  std::vector<double> target = {0.6, 0.2, 0.2};
  std::vector<double> observed = {0.2, 0.4, 0.4};
  std::vector<double> acceptance =
      ComputeAcceptanceProbabilities(target, observed, {}, 1e-3);
  EXPECT_DOUBLE_EQ(acceptance[0], 1.0);  // ratio 3 is the sup
  EXPECT_NEAR(acceptance[1], 0.5 / 3.0, 1e-9);
}

TEST(AcceptanceTest, CarriesOldAcceptanceForward) {
  std::vector<double> target = {0.5, 0.5};
  std::vector<double> observed = {0.5, 0.5};
  std::vector<double> a_old = {1.0, 0.5};
  std::vector<double> acceptance =
      ComputeAcceptanceProbabilities(target, observed, a_old, 1e-3);
  EXPECT_DOUBLE_EQ(acceptance[0], 1.0);
  EXPECT_DOUBLE_EQ(acceptance[1], 0.5);
}

TEST(AcceptanceTest, ZeroObservedWithDemandGetsTopRatio) {
  std::vector<double> target = {0.5, 0.5};
  std::vector<double> observed = {1.0, 0.0};
  std::vector<double> acceptance =
      ComputeAcceptanceProbabilities(target, observed, {}, 1e-3);
  EXPECT_DOUBLE_EQ(acceptance[1], 1.0);  // missing config maxed out
}

TEST(AcceptanceTest, DeadConfigStaysDead) {
  std::vector<double> target = {1.0, 0.0};
  std::vector<double> observed = {0.5, 0.5};
  std::vector<double> acceptance =
      ComputeAcceptanceProbabilities(target, observed, {}, 1e-3);
  EXPECT_DOUBLE_EQ(acceptance[1], 0.0);  // no demand, no floor
}

// -------------------------------------------------------------- AGM sampler --

TEST(AgmSamplerTest, LearnParamsExact) {
  graph::AttributedGraph g = TinyGraph();
  AgmParams params = LearnAgmParams(g);
  EXPECT_EQ(params.w, 1);
  EXPECT_EQ(params.degree_sequence, (std::vector<uint32_t>{1, 2, 2, 1}));
  EXPECT_EQ(params.target_triangles, 0u);
  EXPECT_DOUBLE_EQ(params.theta_x[0], 0.5);
}

TEST(AgmSamplerTest, ValidatesDimensions) {
  util::Rng rng(20);
  AgmParams params;
  params.w = 2;
  params.theta_x = {1.0};  // wrong size for w=2
  params.theta_f = std::vector<double>(10, 0.1);
  params.degree_sequence = {1, 1};
  EXPECT_FALSE(SampleAgmGraph(params, AgmSampleOptions{}, rng).ok());
}

TEST(AgmSamplerTest, AcceptanceIterationsImproveCorrelations) {
  // The accept/reject loop is what pulls Θ'F toward the target; compare the
  // filtered pipeline against the structural model alone (0 iterations).
  graph::AttributedGraph g = RandomAttributed(400, 0.03, 2, 21);
  AgmParams params = LearnAgmParams(g);
  AgmSampleOptions no_filter;
  no_filter.model = StructuralModelKind::kFcl;
  no_filter.acceptance_iterations = 0;
  AgmSampleOptions filtered = no_filter;
  filtered.acceptance_iterations = 5;

  double err_plain = 0.0, err_filtered = 0.0;
  for (int trial = 0; trial < 5; ++trial) {
    util::Rng rng(22 + trial);
    auto a = SampleAgmGraph(params, no_filter, rng);
    auto b = SampleAgmGraph(params, filtered, rng);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(b.value().num_nodes(), 400u);
    EXPECT_GT(b.value().num_edges(), 0u);
    err_plain += stats::HellingerDistance(ComputeThetaF(a.value()),
                                          params.theta_f);
    err_filtered += stats::HellingerDistance(ComputeThetaF(b.value()),
                                             params.theta_f);
  }
  EXPECT_LT(err_filtered, err_plain);
}

TEST(AgmSamplerTest, TriCycLePipelineApproachesTriangleTarget) {
  graph::AttributedGraph g = RandomAttributed(200, 0.06, 2, 23);
  AgmParams params = LearnAgmParams(g);
  AgmSampleOptions options;
  options.model = StructuralModelKind::kTriCycLe;
  options.acceptance_iterations = 2;
  util::Rng rng(24);
  auto synthetic = SampleAgmGraph(params, options, rng);
  ASSERT_TRUE(synthetic.ok());
  const uint64_t achieved =
      graph::CountTriangles(synthetic.value().structure());
  EXPECT_GT(achieved, params.target_triangles / 3);
}

// ------------------------------------------------------------------ AGM-DP --

TEST(AgmDpTest, ValidatesOptions) {
  util::Rng rng(25);
  graph::AttributedGraph g = RandomAttributed(50, 0.1, 2, 26);
  AgmDpOptions options;
  options.epsilon = 0.0;
  EXPECT_FALSE(SynthesizeAgmDp(g, options, rng).ok());

  options.epsilon = 1.0;
  options.split.theta_x = 2.0;  // exceeds epsilon
  options.split.theta_f = 0.1;
  options.split.degree_seq = 0.1;
  options.split.triangles = 0.1;
  EXPECT_FALSE(SynthesizeAgmDp(g, options, rng).ok());
}

TEST(AgmDpTest, LedgerSumsToBudget) {
  util::Rng rng(27);
  graph::AttributedGraph g = RandomAttributed(150, 0.05, 2, 28);
  AgmDpOptions options;
  options.epsilon = 0.8;
  options.sample.acceptance_iterations = 1;
  auto result = SynthesizeAgmDp(g, options, rng);
  ASSERT_TRUE(result.ok());
  double spent = 0.0;
  for (const auto& [label, eps] : result.value().budget_ledger) spent += eps;
  EXPECT_NEAR(spent, 0.8, 1e-9);
  EXPECT_EQ(result.value().budget_ledger.size(), 4u);  // TriCycLe: 4 params
}

TEST(AgmDpTest, FclLedgerHasThreeSpends) {
  util::Rng rng(29);
  graph::AttributedGraph g = RandomAttributed(150, 0.05, 2, 30);
  AgmDpOptions options;
  options.epsilon = 0.8;
  options.model = StructuralModelKind::kFcl;
  options.sample.acceptance_iterations = 1;
  auto result = SynthesizeAgmDp(g, options, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().budget_ledger.size(), 3u);
  double degree_share = 0.0;
  for (const auto& [label, eps] : result.value().budget_ledger) {
    if (label == "degree_sequence") degree_share = eps;
  }
  EXPECT_DOUBLE_EQ(degree_share, 0.4);  // half the budget
}

TEST(AgmDpTest, OutputPreservesNodeCountAndW) {
  util::Rng rng(31);
  graph::AttributedGraph g = RandomAttributed(120, 0.06, 2, 32);
  AgmDpOptions options;
  options.epsilon = 1.0;
  options.sample.acceptance_iterations = 1;
  auto result = SynthesizeAgmDp(g, options, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().graph.num_nodes(), 120u);
  EXPECT_EQ(result.value().graph.num_attributes(), 2);
}

TEST(AgmDpTest, DeterministicGivenSeed) {
  graph::AttributedGraph g = RandomAttributed(100, 0.06, 2, 33);
  AgmDpOptions options;
  options.epsilon = 0.5;
  options.sample.acceptance_iterations = 1;
  util::Rng rng1(99), rng2(99);
  auto r1 = SynthesizeAgmDp(g, options, rng1);
  auto r2 = SynthesizeAgmDp(g, options, rng2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().graph.structure().CanonicalEdges(),
            r2.value().graph.structure().CanonicalEdges());
  EXPECT_EQ(r1.value().graph.attributes(), r2.value().graph.attributes());
}

TEST(AgmDpTest, NonPrivateBaselineRuns) {
  util::Rng rng(34);
  graph::AttributedGraph g = RandomAttributed(100, 0.06, 2, 35);
  AgmSampleOptions options;
  options.model = StructuralModelKind::kFcl;
  auto result = SynthesizeAgmNonPrivate(g, options, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_nodes(), 100u);
}

TEST(AgmDpTest, AllThetaFMethodsRunEndToEnd) {
  graph::AttributedGraph g = RandomAttributed(100, 0.06, 2, 36);
  for (ThetaFMethod method :
       {ThetaFMethod::kEdgeTruncation, ThetaFMethod::kSmoothSensitivity,
        ThetaFMethod::kSampleAggregate, ThetaFMethod::kNaiveLaplace}) {
    util::Rng rng(37);
    AgmDpOptions options;
    options.epsilon = 1.0;
    options.theta_f_method = method;
    options.sample.acceptance_iterations = 1;
    auto result = SynthesizeAgmDp(g, options, rng);
    EXPECT_TRUE(result.ok()) << "method " << static_cast<int>(method);
  }
}

}  // namespace
}  // namespace agmdp::agm

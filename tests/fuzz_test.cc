// Randomized differential tests: every fast graph algorithm is checked
// against a brute-force reference on random graphs across seeds and
// densities, and the dynamic Graph structure is fuzzed against a simple
// edge-set model.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/graph/clustering.h"
#include "src/graph/components.h"
#include "src/graph/degree.h"
#include "src/graph/paths.h"
#include "src/graph/subgraph_counts.h"
#include "src/graph/triangle_count.h"
#include "src/models/erdos_renyi.h"
#include "src/util/rng.h"

namespace agmdp::graph {
namespace {

// -------------------------------------------------- Graph structure fuzz --

TEST(GraphFuzzTest, MatchesSetModelUnderRandomMutations) {
  util::Rng rng(1);
  const NodeId n = 25;
  Graph g(n);
  std::set<std::pair<NodeId, NodeId>> model;

  for (int step = 0; step < 20000; ++step) {
    auto u = static_cast<NodeId>(rng.UniformIndex(n));
    auto v = static_cast<NodeId>(rng.UniformIndex(n));
    auto key = std::minmax(u, v);
    if (rng.Bernoulli(0.6)) {
      const bool added = g.AddEdge(u, v);
      const bool model_added = u != v && model.insert(key).second;
      ASSERT_EQ(added, model_added) << "step " << step;
    } else {
      const bool removed = g.RemoveEdge(u, v);
      const bool model_removed = model.erase(key) > 0;
      ASSERT_EQ(removed, model_removed) << "step " << step;
    }
  }

  // Final state must agree exactly.
  ASSERT_EQ(g.num_edges(), model.size());
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      ASSERT_EQ(g.HasEdge(u, v), model.count({u, v}) > 0);
    }
  }
  std::vector<Edge> edges = g.CanonicalEdges();
  ASSERT_EQ(edges.size(), model.size());
  auto it = model.begin();
  for (const Edge& e : edges) {
    ASSERT_EQ(e.u, it->first);
    ASSERT_EQ(e.v, it->second);
    ++it;
  }
}

TEST(GraphFuzzTest, DegreesConsistentWithAdjacency) {
  util::Rng rng(2);
  Graph g = models::ErdosRenyiGnp(60, 0.15, rng);
  for (int step = 0; step < 3000; ++step) {
    auto u = static_cast<NodeId>(rng.UniformIndex(60));
    auto v = static_cast<NodeId>(rng.UniformIndex(60));
    if (rng.Bernoulli(0.5)) {
      g.AddEdge(u, v);
    } else {
      g.RemoveEdge(u, v);
    }
  }
  uint64_t degree_sum = 0;
  for (NodeId v = 0; v < 60; ++v) {
    EXPECT_EQ(g.Degree(v), g.Neighbors(v).size());
    for (NodeId w : g.Neighbors(v)) EXPECT_TRUE(g.HasEdge(v, w));
    degree_sum += g.Degree(v);
  }
  EXPECT_EQ(degree_sum, 2 * g.num_edges());
}

// ------------------------------------------- Differential algorithm tests --

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Graph RandomGraph(util::Rng& rng) {
    const NodeId n = 20 + rng.UniformIndex(25);
    const double p = 0.02 + rng.UniformDouble() * 0.4;
    return models::ErdosRenyiGnp(static_cast<NodeId>(n), p, rng);
  }
};

TEST_P(DifferentialTest, TriangleCountMatchesBrute) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = RandomGraph(rng);
    EXPECT_EQ(CountTriangles(g), CountTrianglesBrute(g));
  }
}

TEST_P(DifferentialTest, CommonNeighborsMatchBrute) {
  util::Rng rng(GetParam() + 1000);
  Graph g = RandomGraph(rng);
  const NodeId n = g.num_nodes();
  for (int trial = 0; trial < 200; ++trial) {
    auto u = static_cast<NodeId>(rng.UniformIndex(n));
    auto v = static_cast<NodeId>(rng.UniformIndex(n));
    if (u == v) continue;
    uint32_t brute = 0;
    for (NodeId w = 0; w < n; ++w) {
      brute += w != u && w != v && g.HasEdge(u, w) && g.HasEdge(v, w);
    }
    EXPECT_EQ(g.CommonNeighborCount(u, v), brute);
  }
}

TEST_P(DifferentialTest, LocalClusteringMatchesDefinition) {
  util::Rng rng(GetParam() + 2000);
  Graph g = RandomGraph(rng);
  std::vector<double> fast = LocalClusteringCoefficients(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& nbrs = g.Neighbors(v);
    const uint64_t d = nbrs.size();
    double expected = 0.0;
    if (d >= 2) {
      uint64_t links = 0;
      for (size_t i = 0; i < nbrs.size(); ++i) {
        for (size_t j = i + 1; j < nbrs.size(); ++j) {
          links += g.HasEdge(nbrs[i], nbrs[j]);
        }
      }
      expected = 2.0 * static_cast<double>(links) /
                 (static_cast<double>(d) * static_cast<double>(d - 1));
    }
    EXPECT_NEAR(fast[v], expected, 1e-12);
  }
}

TEST_P(DifferentialTest, MaxCommonNeighborMatchesBrute) {
  util::Rng rng(GetParam() + 3000);
  Graph g = RandomGraph(rng);
  uint32_t brute = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
      brute = std::max(brute, g.CommonNeighborCount(u, v));
    }
  }
  auto fast = MaxCommonNeighborCount(g, 1u << 30);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast.value(), brute);
}

TEST_P(DifferentialTest, ComponentsMatchUnionFind) {
  util::Rng rng(GetParam() + 4000);
  Graph g = RandomGraph(rng);
  const NodeId n = g.num_nodes();
  // Reference: union-find.
  std::vector<NodeId> parent(n);
  for (NodeId v = 0; v < n; ++v) parent[v] = v;
  std::function<NodeId(NodeId)> find = [&](NodeId x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  g.ForEachEdge([&](NodeId u, NodeId v) { parent[find(u)] = find(v); });

  uint32_t count = 0;
  std::vector<uint32_t> label = ConnectedComponents(g, &count);
  std::set<NodeId> roots;
  for (NodeId v = 0; v < n; ++v) roots.insert(find(v));
  EXPECT_EQ(count, roots.size());
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      EXPECT_EQ(label[u] == label[v], find(u) == find(v));
    }
  }
}

TEST_P(DifferentialTest, BfsMatchesFloydWarshallOnSmallGraphs) {
  util::Rng rng(GetParam() + 5000);
  const NodeId n = 18;
  Graph g = models::ErdosRenyiGnp(n, 0.15, rng);
  constexpr uint32_t kInf = 1u << 30;
  std::vector<std::vector<uint32_t>> dist(n, std::vector<uint32_t>(n, kInf));
  for (NodeId v = 0; v < n; ++v) dist[v][v] = 0;
  g.ForEachEdge([&](NodeId u, NodeId v) { dist[u][v] = dist[v][u] = 1; });
  for (NodeId k = 0; k < n; ++k) {
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = 0; j < n; ++j) {
        dist[i][j] = std::min(dist[i][j], dist[i][k] + dist[k][j]);
      }
    }
  }
  for (NodeId s = 0; s < n; ++s) {
    std::vector<uint32_t> bfs = BfsDistances(g, s);
    for (NodeId t = 0; t < n; ++t) {
      if (dist[s][t] >= kInf) {
        EXPECT_EQ(bfs[t], std::numeric_limits<uint32_t>::max());
      } else {
        EXPECT_EQ(bfs[t], dist[s][t]);
      }
    }
  }
}

TEST_P(DifferentialTest, KStarsMatchDirectBinomialSum) {
  util::Rng rng(GetParam() + 6000);
  Graph g = RandomGraph(rng);
  for (uint32_t k = 1; k <= 4; ++k) {
    uint64_t direct = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      direct += BinomialOrSaturate(g.Degree(v), k);
    }
    EXPECT_EQ(CountKStars(g, k), direct);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace agmdp::graph

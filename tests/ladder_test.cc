#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "src/dp/ladder_mechanism.h"
#include "src/graph/triangle_count.h"
#include "src/models/erdos_renyi.h"
#include "src/util/rng.h"

namespace agmdp::dp {
namespace {

graph::Graph CompleteGraph(graph::NodeId n) {
  graph::Graph g(n);
  for (graph::NodeId u = 0; u < n; ++u) {
    for (graph::NodeId v = u + 1; v < n; ++v) g.AddEdge(u, v);
  }
  return g;
}

TEST(LadderMechanismTest, RejectsBadEpsilon) {
  util::Rng rng(1);
  graph::Graph g(10);
  EXPECT_FALSE(DpTriangleCount(g, 0.0, rng).ok());
  EXPECT_FALSE(DpTriangleCount(g, -1.0, rng).ok());
}

TEST(LadderMechanismTest, TinyGraphsReturnZero) {
  util::Rng rng(2);
  for (graph::NodeId n : {0u, 1u, 2u}) {
    auto r = DpTriangleCount(graph::Graph(n), 1.0, rng);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 0);
  }
}

TEST(LadderMechanismTest, OutputAlwaysInFeasibleRange) {
  util::Rng rng(3);
  graph::Graph g = models::ErdosRenyiGnp(30, 0.3, rng);
  const int64_t max_triangles = 30LL * 29 * 28 / 6;
  for (double eps : {0.01, 0.1, 1.0}) {
    for (int i = 0; i < 200; ++i) {
      auto r = DpTriangleCount(g, eps, rng);
      ASSERT_TRUE(r.ok());
      EXPECT_GE(r.value(), 0);
      EXPECT_LE(r.value(), max_triangles);
    }
  }
}

TEST(LadderMechanismTest, ConcentratesAtLargeEpsilon) {
  util::Rng rng(4);
  graph::Graph g = models::ErdosRenyiGnp(60, 0.2, rng);
  const auto truth = static_cast<int64_t>(graph::CountTriangles(g));
  int exact = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    auto r = DpTriangleCount(g, 50.0, rng);
    ASSERT_TRUE(r.ok());
    exact += r.value() == truth;
  }
  // At eps = 50 the center rung carries nearly all mass.
  EXPECT_GT(exact, trials / 2);
}

TEST(LadderMechanismTest, ErrorShrinksWithEpsilon) {
  util::Rng rng(5);
  graph::Graph g = models::ErdosRenyiGnp(80, 0.15, rng);
  const auto truth = static_cast<double>(graph::CountTriangles(g));
  auto mean_abs_error = [&](double eps) {
    double sum = 0.0;
    const int trials = 150;
    for (int i = 0; i < trials; ++i) {
      auto r = DpTriangleCount(g, eps, rng);
      sum += std::fabs(static_cast<double>(r.value()) - truth);
    }
    return sum / trials;
  };
  EXPECT_LT(mean_abs_error(2.0), mean_abs_error(0.05));
}

TEST(LadderMechanismTest, ExactBaseUsedForSmallGraphs) {
  util::Rng rng(6);
  graph::Graph g = models::ErdosRenyiGnp(40, 0.2, rng);
  LadderDiagnostics diag;
  auto r = DpTriangleCount(g, 1.0, rng, LadderOptions{}, &diag);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(diag.used_exact_base);
  auto amax = graph::MaxCommonNeighborCount(g, 1u << 30);
  ASSERT_TRUE(amax.ok());
  EXPECT_EQ(diag.ladder_base, amax.value());
}

TEST(LadderMechanismTest, DegreeBoundFallbackKicksIn) {
  util::Rng rng(7);
  graph::Graph g = models::ErdosRenyiGnp(40, 0.2, rng);
  LadderOptions options;
  options.max_exact_work = 1;  // force the fallback
  LadderDiagnostics diag;
  auto r = DpTriangleCount(g, 1.0, rng, options, &diag);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(diag.used_exact_base);
  // The degree bound dominates the exact base.
  auto amax = graph::MaxCommonNeighborCount(g, 1u << 30);
  EXPECT_GE(diag.ladder_base, amax.value());
}

TEST(LadderMechanismTest, ForcedDegreeBoundStillAccurate) {
  util::Rng rng(8);
  graph::Graph g = models::ErdosRenyiGnp(100, 0.1, rng);
  const auto truth = static_cast<double>(graph::CountTriangles(g));
  LadderOptions options;
  options.force_degree_bound = true;
  double sum = 0.0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    auto r = DpTriangleCount(g, 1.0, rng, options);
    sum += static_cast<double>(r.value());
  }
  // Wider rungs, but the estimate remains centered on the truth.
  EXPECT_NEAR(sum / trials, truth, truth * 0.5 + 50.0);
}

TEST(LadderMechanismTest, LadderBaseOnCompleteGraphIsNMinusTwo) {
  util::Rng rng(9);
  graph::Graph g = CompleteGraph(12);
  LadderDiagnostics diag;
  auto r = DpTriangleCount(g, 1.0, rng, LadderOptions{}, &diag);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(diag.ladder_base, 10u);  // n - 2
}

TEST(LadderMechanismTest, UnbiasedishAtModerateEpsilon) {
  // The rung construction is symmetric around the true count, so the mean
  // over many draws should sit near the truth (clamping at zero introduces
  // slight upward bias only for tiny counts).
  util::Rng rng(10);
  graph::Graph g = models::ErdosRenyiGnp(70, 0.2, rng);
  const auto truth = static_cast<double>(graph::CountTriangles(g));
  double sum = 0.0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(DpTriangleCount(g, 1.0, rng).value());
  }
  EXPECT_NEAR(sum / trials, truth, truth * 0.15 + 20.0);
}

}  // namespace
}  // namespace agmdp::dp

// Edge-case tests for graph_io parsing: malformed input files must come
// back as Status errors (never crash the process or silently mis-parse).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/graph/graph_io.h"

namespace agmdp::graph {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  // Writes `body` to a fresh file under the test temp dir, returns its path.
  std::string WriteFile(const std::string& name, const std::string& body) {
    const std::string path =
        ::testing::TempDir() + "graph_io_test_" + name;
    std::ofstream out(path, std::ios::trunc);
    out << body;
    out.close();
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& path : paths_) std::remove(path.c_str());
  }

  std::vector<std::string> paths_;
};

TEST_F(GraphIoTest, MissingFileIsIoError) {
  auto r = ReadEdgeList("/nonexistent/never/graph.edges");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kIoError);
}

TEST_F(GraphIoTest, EmptyFileIsError) {
  auto r = ReadEdgeList(WriteFile("empty.edges", ""));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("header"), std::string::npos);
}

TEST_F(GraphIoTest, CommentOnlyFileIsError) {
  auto r = ReadEdgeList(WriteFile("comments.edges", "# nothing\n# here\n"));
  ASSERT_FALSE(r.ok());
}

TEST_F(GraphIoTest, BadHeaderIsError) {
  EXPECT_FALSE(ReadEdgeList(WriteFile("hdr1.edges", "m 5\n0 1\n")).ok());
  EXPECT_FALSE(ReadEdgeList(WriteFile("hdr2.edges", "n five\n")).ok());
}

TEST_F(GraphIoTest, NodeCountOverflowIsError) {
  auto r = ReadEdgeList(WriteFile("huge.edges", "n 99999999999\n"));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("overflow"), std::string::npos);
}

TEST_F(GraphIoTest, SelfLoopIsError) {
  auto r = ReadEdgeList(WriteFile("loop.edges", "n 3\n0 1\n2 2\n"));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("self-loop"), std::string::npos);
}

TEST_F(GraphIoTest, DuplicateEdgeIsError) {
  for (const char* body : {"n 3\n0 1\n0 1\n", "n 3\n0 1\n1 0\n"}) {
    auto r = ReadEdgeList(WriteFile("dup.edges", body));
    ASSERT_FALSE(r.ok()) << body;
    EXPECT_NE(r.status().message().find("duplicate"), std::string::npos);
  }
}

TEST_F(GraphIoTest, OutOfRangeNodeIdIsError) {
  auto r = ReadEdgeList(WriteFile("range.edges", "n 3\n0 3\n"));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("out of range"), std::string::npos);
}

TEST_F(GraphIoTest, MalformedEdgeLineIsError) {
  EXPECT_FALSE(ReadEdgeList(WriteFile("bad1.edges", "n 3\n0\n")).ok());
  EXPECT_FALSE(ReadEdgeList(WriteFile("bad2.edges", "n 3\nzero one\n")).ok());
}

TEST_F(GraphIoTest, ValidEdgeListRoundTrips) {
  auto r = ReadEdgeList(WriteFile("ok.edges", "# ok\nn 4\n0 1\n1 2\n2 3\n"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_nodes(), 4u);
  EXPECT_EQ(r.value().num_edges(), 3u);
  EXPECT_TRUE(r.value().HasEdge(1, 2));
}

TEST_F(GraphIoTest, EveryParseErrorCarriesTheLineNumber) {
  // Body line errors.
  auto bad_edge = ReadEdgeList(WriteFile("ln1.edges", "n 3\n0 1\nbogus\n"));
  ASSERT_FALSE(bad_edge.ok());
  EXPECT_NE(bad_edge.status().message().find(":3"), std::string::npos)
      << bad_edge.status().ToString();
  // Header errors name their line too (comments still count lines).
  auto bad_header = ReadEdgeList(WriteFile("ln2.edges", "# c\nm 5\n"));
  ASSERT_FALSE(bad_header.ok());
  EXPECT_NE(bad_header.status().message().find(":2"), std::string::npos)
      << bad_header.status().ToString();
  auto overflow = ReadEdgeList(WriteFile("ln3.edges", "n 99999999999\n"));
  ASSERT_FALSE(overflow.ok());
  EXPECT_NE(overflow.status().message().find(":1"), std::string::npos)
      << overflow.status().ToString();
}

TEST_F(GraphIoTest, NegativeNumbersAreParseErrorsNotWrapped) {
  // A leading '-' must be a parse failure; stream extraction used to wrap
  // it to a huge unsigned value and report a misleading range error.
  auto r = ReadEdgeList(WriteFile("neg.edges", "n 3\n-1 2\n"));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("bad edge"), std::string::npos)
      << r.status().ToString();
}

// ------------------------------------------------- attributed graphs --

TEST_F(GraphIoTest, AttributedGraphRejectsMalformedAttributeFiles) {
  const std::string prefix = ::testing::TempDir() + "graph_io_test_attr";
  {
    std::ofstream out(prefix + ".edges", std::ios::trunc);
    out << "n 2\n0 1\n";
  }
  paths_.push_back(prefix + ".edges");
  paths_.push_back(prefix + ".attrs");

  auto write_attrs = [&](const std::string& body) {
    std::ofstream out(prefix + ".attrs", std::ios::trunc);
    out << body;
  };

  write_attrs("");  // empty attribute file
  EXPECT_FALSE(ReadAttributedGraph(prefix).ok());

  write_attrs("x 2 w 1\n");  // bad header tags
  EXPECT_FALSE(ReadAttributedGraph(prefix).ok());

  write_attrs("n 3 w 1\n");  // node count mismatch vs .edges
  EXPECT_FALSE(ReadAttributedGraph(prefix).ok());

  // Out-of-range attribute dimension used to abort the process inside the
  // AttributedGraph constructor; it must be a Status error.
  write_attrs("n 2 w 50\n0 0\n1 0\n");
  {
    auto r = ReadAttributedGraph(prefix);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("attribute count"),
              std::string::npos);
  }
  write_attrs("n 2 w -1\n");
  EXPECT_FALSE(ReadAttributedGraph(prefix).ok());

  write_attrs("n 2 w 1\n0 2\n");  // config out of range for w=1
  EXPECT_FALSE(ReadAttributedGraph(prefix).ok());

  write_attrs("n 2 w 1\n5 0\n");  // node id out of range
  EXPECT_FALSE(ReadAttributedGraph(prefix).ok());

  write_attrs("n 2 w 1\nzero 0\n");  // malformed attribute line
  EXPECT_FALSE(ReadAttributedGraph(prefix).ok());

  // Attribute-side errors carry path:line positions as well.
  write_attrs("n 2 w 1\n# comment\n0 2\n");
  {
    auto r = ReadAttributedGraph(prefix);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find(":3"), std::string::npos)
        << r.status().ToString();
  }
  write_attrs("x 2 w 1\n");
  {
    auto r = ReadAttributedGraph(prefix);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find(":1"), std::string::npos)
        << r.status().ToString();
  }

  write_attrs("n 2 w 1\n0 1\n1 0\n");  // valid
  auto ok = ReadAttributedGraph(prefix);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().attribute(0), 1u);
  EXPECT_EQ(ok.value().attribute(1), 0u);
}

TEST_F(GraphIoTest, WriteReadRoundTripStaysCanonical) {
  AttributedGraph g(4, 2);
  g.structure().AddEdge(2, 0);
  g.structure().AddEdge(1, 3);
  g.set_attribute(0, 3);
  g.set_attribute(2, 1);
  const std::string prefix = ::testing::TempDir() + "graph_io_test_rt";
  paths_.push_back(prefix + ".edges");
  paths_.push_back(prefix + ".attrs");
  ASSERT_TRUE(WriteAttributedGraph(g, prefix).ok());
  auto back = ReadAttributedGraph(prefix);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().attributes(), g.attributes());
  EXPECT_EQ(back.value().structure().CanonicalEdges(),
            g.structure().CanonicalEdges());
}

}  // namespace
}  // namespace agmdp::graph

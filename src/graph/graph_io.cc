#include "src/graph/graph_io.h"

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>

namespace agmdp::graph {

namespace {

util::Status OpenForRead(const std::string& path, std::ifstream* in) {
  in->open(path);
  if (!in->is_open()) {
    return util::Status::IoError("cannot open for reading: " + path);
  }
  return util::Status::OK();
}

util::Status OpenForWrite(const std::string& path, std::ofstream* out) {
  out->open(path, std::ios::trunc);
  if (!out->is_open()) {
    return util::Status::IoError("cannot open for writing: " + path);
  }
  return util::Status::OK();
}

}  // namespace

util::Status WriteEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out;
  if (auto st = OpenForWrite(path, &out); !st.ok()) return st;
  out << "n " << g.num_nodes() << "\n";
  for (const Edge& e : g.CanonicalEdges()) {
    out << e.u << " " << e.v << "\n";
  }
  out.flush();
  if (!out.good()) return util::Status::IoError("write failed: " + path);
  return util::Status::OK();
}

util::Result<Graph> ReadEdgeList(const std::string& path) {
  std::ifstream in;
  if (auto st = OpenForRead(path, &in); !st.ok()) return st;
  std::string line;
  Graph g;
  bool have_header = false;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    if (!have_header) {
      std::string tag;
      uint64_t n = 0;
      if (!(ss >> tag >> n) || tag != "n") {
        return util::Status::IoError("bad edge-list header in " + path);
      }
      if (n > std::numeric_limits<NodeId>::max()) {
        return util::Status::IoError("node count overflows NodeId in " +
                                     path);
      }
      g = Graph(static_cast<NodeId>(n));
      have_header = true;
      continue;
    }
    uint64_t u = 0, v = 0;
    if (!(ss >> u >> v)) {
      return util::Status::IoError("bad edge at " + path + ":" +
                                   std::to_string(line_no));
    }
    if (u == v) {
      return util::Status::IoError("self-loop at " + path + ":" +
                                   std::to_string(line_no));
    }
    if (u >= g.num_nodes() || v >= g.num_nodes()) {
      return util::Status::IoError("edge out of range at " + path + ":" +
                                   std::to_string(line_no));
    }
    if (!g.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v))) {
      return util::Status::IoError("duplicate edge at " + path + ":" +
                                   std::to_string(line_no));
    }
  }
  if (!have_header) {
    return util::Status::IoError("missing edge-list header in " + path);
  }
  return g;
}

util::Status WriteAttributedGraph(const AttributedGraph& g,
                                  const std::string& path_prefix) {
  if (auto st = WriteEdgeList(g.structure(), path_prefix + ".edges");
      !st.ok()) {
    return st;
  }
  std::ofstream out;
  if (auto st = OpenForWrite(path_prefix + ".attrs", &out); !st.ok()) {
    return st;
  }
  out << "n " << g.num_nodes() << " w " << g.num_attributes() << "\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out << v << " " << g.attribute(v) << "\n";
  }
  out.flush();
  if (!out.good()) {
    return util::Status::IoError("write failed: " + path_prefix + ".attrs");
  }
  return util::Status::OK();
}

util::Status WriteGraphMl(const AttributedGraph& g, const std::string& path) {
  std::ofstream out;
  if (auto st = OpenForWrite(path, &out); !st.ok()) return st;
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n";
  for (int a = 0; a < g.num_attributes(); ++a) {
    out << "  <key id=\"a" << a << "\" for=\"node\" attr.name=\"attr" << a
        << "\" attr.type=\"int\"/>\n";
  }
  out << "  <graph id=\"G\" edgedefault=\"undirected\">\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out << "    <node id=\"n" << v << "\">";
    for (int a = 0; a < g.num_attributes(); ++a) {
      out << "<data key=\"a" << a << "\">" << ((g.attribute(v) >> a) & 1u)
          << "</data>";
    }
    out << "</node>\n";
  }
  uint64_t edge_id = 0;
  for (const Edge& e : g.structure().CanonicalEdges()) {
    out << "    <edge id=\"e" << edge_id++ << "\" source=\"n" << e.u
        << "\" target=\"n" << e.v << "\"/>\n";
  }
  out << "  </graph>\n</graphml>\n";
  out.flush();
  if (!out.good()) return util::Status::IoError("write failed: " + path);
  return util::Status::OK();
}

util::Result<AttributedGraph> ReadAttributedGraph(
    const std::string& path_prefix) {
  auto edges = ReadEdgeList(path_prefix + ".edges");
  if (!edges.ok()) return edges.status();

  std::ifstream in;
  if (auto st = OpenForRead(path_prefix + ".attrs", &in); !st.ok()) return st;
  std::string line;
  if (!std::getline(in, line)) {
    return util::Status::IoError("empty attribute file");
  }
  std::istringstream header(line);
  std::string tag_n, tag_w;
  uint64_t n = 0;
  int w = 0;
  if (!(header >> tag_n >> n >> tag_w >> w) || tag_n != "n" || tag_w != "w") {
    return util::Status::IoError("bad attribute header: " + path_prefix);
  }
  if (n != edges.value().num_nodes()) {
    return util::Status::IoError("attribute/edge node count mismatch");
  }
  // Validate before constructing: the AttributedGraph constructor (and
  // NumNodeConfigs below) treat an out-of-range w as a fatal invariant
  // violation, but for file input it must surface as a Status error.
  if (w < 0 || w > 20) {
    return util::Status::IoError("attribute count out of range [0, 20]: " +
                                 std::to_string(w));
  }
  AttributedGraph g(std::move(edges).value(), w);
  const AttrConfig limit = NumNodeConfigs(w);
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    uint64_t v = 0, config = 0;
    if (!(ss >> v >> config) || v >= n || config >= limit) {
      return util::Status::IoError("bad attribute line: " + line);
    }
    g.set_attribute(static_cast<NodeId>(v), static_cast<AttrConfig>(config));
  }
  return g;
}

}  // namespace agmdp::graph

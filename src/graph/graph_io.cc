#include "src/graph/graph_io.h"

#include <cstdint>
#include <fstream>
#include <limits>

namespace agmdp::graph {

namespace textio {

namespace {

// Advances past spaces, tabs and stray '\r' (CRLF input).
void SkipBlanks(const char** p) {
  while (**p == ' ' || **p == '\t' || **p == '\r') ++(*p);
}

// Parses a non-negative decimal into *out. Leaves *p on the first
// non-digit character. Fails on no digits or uint64 overflow.
bool ParseUint(const char** p, uint64_t* out) {
  SkipBlanks(p);
  const char* s = *p;
  if (*s < '0' || *s > '9') return false;
  uint64_t value = 0;
  for (; *s >= '0' && *s <= '9'; ++s) {
    const uint64_t digit = static_cast<uint64_t>(*s - '0');
    if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  *p = s;
  *out = value;
  return true;
}

// Matches the literal header tag `tag` followed by a blank (so "nx" does
// not match tag 'n').
bool ParseTag(const char** p, char tag) {
  SkipBlanks(p);
  if (**p != tag) return false;
  const char next = (*p)[1];
  if (next != ' ' && next != '\t') return false;
  *p += 1;
  return true;
}

}  // namespace

bool IsSkippableLine(const std::string& line) {
  const char* p = line.c_str();
  SkipBlanks(&p);
  return *p == '\0' || *p == '#';
}

bool ParseTwoUints(const std::string& line, uint64_t* a, uint64_t* b) {
  const char* p = line.c_str();
  return ParseUint(&p, a) && ParseUint(&p, b);
}

bool ParseEdgeHeader(const std::string& line, uint64_t* n) {
  const char* p = line.c_str();
  return ParseTag(&p, 'n') && ParseUint(&p, n);
}

bool ParseAttrHeader(const std::string& line, uint64_t* n, uint64_t* w) {
  const char* p = line.c_str();
  return ParseTag(&p, 'n') && ParseUint(&p, n) && ParseTag(&p, 'w') &&
         ParseUint(&p, w);
}

}  // namespace textio

namespace {

util::Status OpenForRead(const std::string& path, std::ifstream* in) {
  in->open(path);
  if (!in->is_open()) {
    return util::Status::IoError("cannot open for reading: " + path);
  }
  return util::Status::OK();
}

util::Status OpenForWrite(const std::string& path, std::ofstream* out) {
  out->open(path, std::ios::trunc);
  if (!out->is_open()) {
    return util::Status::IoError("cannot open for writing: " + path);
  }
  return util::Status::OK();
}

// Every parse error carries the exact input position.
std::string At(const std::string& path, uint64_t line_no) {
  return " at " + path + ":" + std::to_string(line_no);
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace

util::Result<TextGraphPaths> ResolveTextGraphPaths(const std::string& path) {
  TextGraphPaths out;
  const std::string kExt = ".edges";
  if (path.size() > kExt.size() &&
      path.compare(path.size() - kExt.size(), kExt.size(), kExt) == 0) {
    out.edges = path;
    out.attrs = path.substr(0, path.size() - kExt.size()) + ".attrs";
  } else if (FileExists(path + kExt)) {
    out.edges = path + kExt;
    out.attrs = path + ".attrs";
  } else {
    out.edges = path;
    out.attrs = path + ".attrs";
  }
  if (!FileExists(out.edges)) {
    return util::Status::NotFound("no text graph at " + path + " (looked for " +
                                  out.edges + ")");
  }
  out.has_attrs = FileExists(out.attrs);
  return out;
}

util::Status WriteEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out;
  if (auto st = OpenForWrite(path, &out); !st.ok()) return st;
  out << "n " << g.num_nodes() << "\n";
  for (const Edge& e : g.CanonicalEdges()) {
    out << e.u << " " << e.v << "\n";
  }
  out.flush();
  if (!out.good()) return util::Status::IoError("write failed: " + path);
  return util::Status::OK();
}

util::Result<Graph> ReadEdgeList(const std::string& path) {
  std::ifstream in;
  if (auto st = OpenForRead(path, &in); !st.ok()) return st;
  // One line buffer reused across the whole file; the cursor parsers in
  // textio read it in place (no per-line stream or string allocation).
  std::string line;
  Graph g;
  bool have_header = false;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (textio::IsSkippableLine(line)) continue;
    if (!have_header) {
      uint64_t n = 0;
      if (!textio::ParseEdgeHeader(line, &n)) {
        return util::Status::IoError("bad edge-list header" + At(path, line_no));
      }
      if (n > std::numeric_limits<NodeId>::max()) {
        return util::Status::IoError("node count overflows NodeId" +
                                     At(path, line_no));
      }
      g = Graph(static_cast<NodeId>(n));
      have_header = true;
      continue;
    }
    uint64_t u = 0, v = 0;
    if (!textio::ParseTwoUints(line, &u, &v)) {
      return util::Status::IoError("bad edge" + At(path, line_no));
    }
    if (u == v) {
      return util::Status::IoError("self-loop" + At(path, line_no));
    }
    if (u >= g.num_nodes() || v >= g.num_nodes()) {
      return util::Status::IoError("edge out of range" + At(path, line_no));
    }
    if (!g.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v))) {
      return util::Status::IoError("duplicate edge" + At(path, line_no));
    }
  }
  if (!have_header) {
    return util::Status::IoError("missing edge-list header in " + path);
  }
  return g;
}

util::Status WriteAttributedGraph(const AttributedGraph& g,
                                  const std::string& path_prefix) {
  if (auto st = WriteEdgeList(g.structure(), path_prefix + ".edges");
      !st.ok()) {
    return st;
  }
  std::ofstream out;
  if (auto st = OpenForWrite(path_prefix + ".attrs", &out); !st.ok()) {
    return st;
  }
  out << "n " << g.num_nodes() << " w " << g.num_attributes() << "\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out << v << " " << g.attribute(v) << "\n";
  }
  out.flush();
  if (!out.good()) {
    return util::Status::IoError("write failed: " + path_prefix + ".attrs");
  }
  return util::Status::OK();
}

util::Status WriteGraphMl(const AttributedGraph& g, const std::string& path) {
  std::ofstream out;
  if (auto st = OpenForWrite(path, &out); !st.ok()) return st;
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n";
  for (int a = 0; a < g.num_attributes(); ++a) {
    out << "  <key id=\"a" << a << "\" for=\"node\" attr.name=\"attr" << a
        << "\" attr.type=\"int\"/>\n";
  }
  out << "  <graph id=\"G\" edgedefault=\"undirected\">\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out << "    <node id=\"n" << v << "\">";
    for (int a = 0; a < g.num_attributes(); ++a) {
      out << "<data key=\"a" << a << "\">" << ((g.attribute(v) >> a) & 1u)
          << "</data>";
    }
    out << "</node>\n";
  }
  uint64_t edge_id = 0;
  for (const Edge& e : g.structure().CanonicalEdges()) {
    out << "    <edge id=\"e" << edge_id++ << "\" source=\"n" << e.u
        << "\" target=\"n" << e.v << "\"/>\n";
  }
  out << "  </graph>\n</graphml>\n";
  out.flush();
  if (!out.good()) return util::Status::IoError("write failed: " + path);
  return util::Status::OK();
}

util::Result<AttributedGraph> ReadAttributedGraph(
    const std::string& path_prefix) {
  TextGraphPaths paths;
  paths.edges = path_prefix + ".edges";
  paths.attrs = path_prefix + ".attrs";
  paths.has_attrs = true;  // historical contract: the .attrs file is required
  return ReadAttributedGraphFiles(paths);
}

util::Result<AttributedGraph> ReadAttributedGraphFiles(
    const TextGraphPaths& paths) {
  auto edges = ReadEdgeList(paths.edges);
  if (!edges.ok()) return edges.status();
  if (!paths.has_attrs) {
    return AttributedGraph(std::move(edges).value(), 0);
  }

  const std::string& path = paths.attrs;
  std::ifstream in;
  if (auto st = OpenForRead(path, &in); !st.ok()) return st;
  std::string line;
  uint64_t line_no = 0;
  uint64_t n = 0, w = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (textio::IsSkippableLine(line)) continue;
    if (!textio::ParseAttrHeader(line, &n, &w)) {
      return util::Status::IoError("bad attribute header" + At(path, line_no));
    }
    have_header = true;
    break;
  }
  if (!have_header) {
    return util::Status::IoError("empty attribute file: " + path);
  }
  if (n != edges.value().num_nodes()) {
    return util::Status::IoError("attribute/edge node count mismatch" +
                                 At(path, line_no));
  }
  // Validate before constructing: the AttributedGraph constructor (and
  // NumNodeConfigs below) treat an out-of-range w as a fatal invariant
  // violation, but for file input it must surface as a Status error.
  if (w > 20) {
    return util::Status::IoError("attribute count out of range [0, 20]: " +
                                 std::to_string(w) + At(path, line_no));
  }
  AttributedGraph g(std::move(edges).value(), static_cast<int>(w));
  const AttrConfig limit = NumNodeConfigs(static_cast<int>(w));
  while (std::getline(in, line)) {
    ++line_no;
    if (textio::IsSkippableLine(line)) continue;
    uint64_t v = 0, config = 0;
    if (!textio::ParseTwoUints(line, &v, &config)) {
      return util::Status::IoError("bad attribute line" + At(path, line_no));
    }
    if (v >= n) {
      return util::Status::IoError("attribute node id out of range" +
                                   At(path, line_no));
    }
    if (config >= limit) {
      return util::Status::IoError("attribute config out of range" +
                                   At(path, line_no));
    }
    g.set_attribute(static_cast<NodeId>(v), static_cast<AttrConfig>(config));
  }
  return g;
}

}  // namespace agmdp::graph

// Plain-text persistence for (attributed) graphs.
//
// Edge-list format:
//   # comment lines are ignored
//   n <num_nodes>
//   <u> <v>          one line per edge
//
// Attribute format (one file per graph):
//   n <num_nodes> w <num_attributes>
//   <node_id> <config>   config is the bit-packed attribute vector
#pragma once

#include <string>

#include "src/graph/attributed_graph.h"
#include "src/graph/graph.h"
#include "src/util/status.h"

namespace agmdp::graph {

util::Status WriteEdgeList(const Graph& g, const std::string& path);
util::Result<Graph> ReadEdgeList(const std::string& path);

/// Writes <path>.edges and <path>.attrs.
util::Status WriteAttributedGraph(const AttributedGraph& g,
                                  const std::string& path_prefix);
util::Result<AttributedGraph> ReadAttributedGraph(
    const std::string& path_prefix);

/// Exports to GraphML (one <data> key per binary attribute) for external
/// tools — Gephi, NetworkX, igraph all ingest this directly.
util::Status WriteGraphMl(const AttributedGraph& g, const std::string& path);

}  // namespace agmdp::graph

// Plain-text persistence for (attributed) graphs.
//
// Edge-list format:
//   # comment lines are ignored
//   n <num_nodes>
//   <u> <v>          one line per edge
//
// Attribute format (one file per graph):
//   n <num_nodes> w <num_attributes>
//   <node_id> <config>   config is the bit-packed attribute vector
//
// DEPRECATION NOTE: these readers are the *text backend* behind the
// unified ingestion entry point graph::GraphSource::Open
// (src/graph/graph_source.h), which auto-detects text vs the binary
// container (src/graph/graph_container.h) by magic bytes. New call sites
// should open graphs through GraphSource and write them through
// graph::WriteGraph; ReadEdgeList/ReadAttributedGraph remain available as
// a thin compatibility shim for one release.
#pragma once

#include <cstdint>
#include <string>

#include "src/graph/attributed_graph.h"
#include "src/graph/graph.h"
#include "src/util/status.h"

namespace agmdp::graph {

util::Status WriteEdgeList(const Graph& g, const std::string& path);
util::Result<Graph> ReadEdgeList(const std::string& path);

/// Writes <path>.edges and <path>.attrs.
util::Status WriteAttributedGraph(const AttributedGraph& g,
                                  const std::string& path_prefix);
util::Result<AttributedGraph> ReadAttributedGraph(
    const std::string& path_prefix);

/// Exports to GraphML (one <data> key per binary attribute) for external
/// tools — Gephi, NetworkX, igraph all ingest this directly.
util::Status WriteGraphMl(const AttributedGraph& g, const std::string& path);

/// Resolved locations of a text graph on disk.
struct TextGraphPaths {
  std::string edges;
  std::string attrs;
  bool has_attrs = false;
};

/// Resolves a user-supplied text-graph path: a `<prefix>` (with
/// `<prefix>.edges` next to it), the `.edges` file itself, or a bare
/// edge-list file; `<prefix>.attrs` rides along when present (a missing
/// attribute file means w = 0). NotFound when no edge file exists.
util::Result<TextGraphPaths> ResolveTextGraphPaths(const std::string& path);

/// Reads a text graph from already-resolved file paths. When
/// `paths.has_attrs` is false the result has zero attributes (all
/// configs 0). ReadAttributedGraph is this with the `<prefix>.edges` /
/// `<prefix>.attrs` convention (and the attribute file required).
util::Result<AttributedGraph> ReadAttributedGraphFiles(
    const TextGraphPaths& paths);

/// Allocation-free line parsing shared by the text readers above and the
/// streaming text→binary converter (graph_container.cc). All parsers skip
/// leading blanks, accept only non-negative decimals (a leading '-' is a
/// parse failure, not a wrapped huge value) and tolerate trailing content
/// after the parsed fields, matching the historical istream behavior.
namespace textio {

/// True for lines the text formats ignore: blank (possibly just "\r") or
/// starting with '#'.
bool IsSkippableLine(const std::string& line);

/// Parses "<u> <v>" from an edge or attribute body line.
bool ParseTwoUints(const std::string& line, uint64_t* a, uint64_t* b);

/// Parses the edge-list header "n <count>".
bool ParseEdgeHeader(const std::string& line, uint64_t* n);

/// Parses the attribute header "n <count> w <width>".
bool ParseAttrHeader(const std::string& line, uint64_t* n, uint64_t* w);

}  // namespace textio

}  // namespace agmdp::graph

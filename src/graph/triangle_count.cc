#include "src/graph/triangle_count.h"

#include <algorithm>
#include <numeric>

#include "src/util/check.h"

namespace agmdp::graph {

namespace {

// Degree-based rank: nodes ordered by (degree, id); edges are directed from
// lower rank to higher rank, so each triangle is found exactly once at its
// lowest-rank corner.
std::vector<uint32_t> DegreeRanks(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&g](NodeId a, NodeId b) {
    uint32_t da = g.Degree(a), db = g.Degree(b);
    return da != db ? da < db : a < b;
  });
  std::vector<uint32_t> rank(n);
  for (NodeId i = 0; i < n; ++i) rank[order[i]] = i;
  return rank;
}

}  // namespace

uint64_t CountTriangles(const Graph& g) {
  const NodeId n = g.num_nodes();
  if (n == 0) return 0;
  std::vector<uint32_t> rank = DegreeRanks(g);

  // Forward adjacency: only neighbors of higher rank.
  std::vector<std::vector<NodeId>> forward(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (rank[u] < rank[v]) forward[u].push_back(v);
    }
  }

  uint64_t triangles = 0;
  std::vector<uint8_t> mark(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : forward[u]) mark[v] = 1;
    for (NodeId v : forward[u]) {
      for (NodeId w : forward[v]) {
        if (mark[w]) ++triangles;
      }
    }
    for (NodeId v : forward[u]) mark[v] = 0;
  }
  return triangles;
}

uint64_t CountTrianglesBrute(const Graph& g) {
  const NodeId n = g.num_nodes();
  uint64_t triangles = 0;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (!g.HasEdge(a, b)) continue;
      for (NodeId c = b + 1; c < n; ++c) {
        if (g.HasEdge(a, c) && g.HasEdge(b, c)) ++triangles;
      }
    }
  }
  return triangles;
}

uint64_t CountWedges(const Graph& g) {
  uint64_t wedges = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    uint64_t d = g.Degree(v);
    wedges += d * (d - 1) / 2;
  }
  return wedges;
}

std::vector<uint64_t> PerNodeTriangles(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<uint64_t> counts(n, 0);
  // Edge iterator: each edge's common-neighbor count is the number of
  // triangles through that edge; a triangle has three edges and each of its
  // corners sits on two of them, so crediting both endpoints of every edge
  // counts each corner exactly twice.
  g.ForEachEdge([&](NodeId u, NodeId v) {
    uint32_t t = g.CommonNeighborCount(u, v);
    counts[u] += t;
    counts[v] += t;
  });
  for (auto& c : counts) {
    AGMDP_CHECK(c % 2 == 0);
    c /= 2;
  }
  return counts;
}

util::Result<uint32_t> MaxCommonNeighborCount(const Graph& g,
                                              uint64_t max_work) {
  const NodeId n = g.num_nodes();
  // Work is sum over nodes of degree^2 (each node, via its neighbors'
  // adjacency lists, touches that many two-hop endpoints).
  uint64_t work = 0;
  for (NodeId v = 0; v < n; ++v) {
    uint64_t d = g.Degree(v);
    work += d * d;
    if (work > max_work) {
      return util::Status::FailedPrecondition(
          "MaxCommonNeighborCount: wedge work exceeds max_work budget");
    }
  }

  std::vector<uint32_t> counter(n, 0);
  std::vector<NodeId> touched;
  uint32_t best = 0;
  for (NodeId u = 0; u < n; ++u) {
    touched.clear();
    for (NodeId w : g.Neighbors(u)) {
      for (NodeId x : g.Neighbors(w)) {
        if (x <= u) continue;  // each unordered pair handled once (u < x)
        if (counter[x]++ == 0) touched.push_back(x);
      }
    }
    for (NodeId x : touched) {
      best = std::max(best, counter[x]);
      counter[x] = 0;
    }
  }
  return best;
}

}  // namespace agmdp::graph

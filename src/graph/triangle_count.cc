#include "src/graph/triangle_count.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "src/util/check.h"
#include "src/util/parallel.h"

namespace agmdp::graph {

namespace {

// Degree-based rank: nodes ordered by (degree, id); edges are directed from
// lower rank to higher rank, so each triangle is found exactly once at its
// lowest-rank corner. Shared by both representations.
template <typename AnyGraph>
std::vector<uint32_t> DegreeRanks(const AnyGraph& g) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&g](NodeId a, NodeId b) {
    uint32_t da = g.Degree(a), db = g.Degree(b);
    return da != db ? da < db : a < b;
  });
  std::vector<uint32_t> rank(n);
  for (NodeId i = 0; i < n; ++i) rank[order[i]] = i;
  return rank;
}

// Wedge count from degrees only — shared by both representations.
template <typename AnyGraph>
uint64_t CountWedgesImpl(const AnyGraph& g) {
  uint64_t wedges = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    uint64_t d = g.Degree(v);
    wedges += d * (d - 1) / 2;
  }
  return wedges;
}

// Rank-directed adjacency of the snapshot in CSR form: neighbors of higher
// rank only, so each triangle has exactly one node that sees its other two
// corners here.
struct ForwardCsr {
  std::vector<uint64_t> offsets;
  std::vector<NodeId> neighbors;
};

ForwardCsr BuildForward(const CsrGraph& g, const std::vector<uint32_t>& rank) {
  const NodeId n = g.num_nodes();
  ForwardCsr fwd;
  fwd.offsets.resize(static_cast<size_t>(n) + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    uint64_t count = 0;
    for (NodeId v : g.Neighbors(u)) {
      if (rank[u] < rank[v]) ++count;
    }
    fwd.offsets[u + 1] = fwd.offsets[u] + count;
  }
  fwd.neighbors.resize(fwd.offsets[n]);
  for (NodeId u = 0; u < n; ++u) {
    NodeId* out = fwd.neighbors.data() + fwd.offsets[u];
    for (NodeId v : g.Neighbors(u)) {
      if (rank[u] < rank[v]) *out++ = v;
    }
  }
  return fwd;
}

}  // namespace

uint64_t CountTriangles(const Graph& g) {
  const NodeId n = g.num_nodes();
  if (n == 0) return 0;
  std::vector<uint32_t> rank = DegreeRanks(g);

  // Forward adjacency: only neighbors of higher rank.
  std::vector<std::vector<NodeId>> forward(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (rank[u] < rank[v]) forward[u].push_back(v);
    }
  }

  uint64_t triangles = 0;
  std::vector<uint8_t> mark(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : forward[u]) mark[v] = 1;
    for (NodeId v : forward[u]) {
      for (NodeId w : forward[v]) {
        if (mark[w]) ++triangles;
      }
    }
    for (NodeId v : forward[u]) mark[v] = 0;
  }
  return triangles;
}

uint64_t CountTriangles(const CsrGraph& g, int threads) {
  const NodeId n = g.num_nodes();
  if (n == 0) return 0;
  const std::vector<uint32_t> rank = DegreeRanks(g);
  const ForwardCsr fwd = BuildForward(g, rank);

  // Workers own contiguous node ranges; the triangle total is an integer,
  // so the atomic accumulation is exact and partition-independent.
  std::atomic<uint64_t> triangles{0};
  util::ParallelNodeRanges(n, threads, [&](uint64_t begin, uint64_t end) {
    std::vector<uint8_t> mark(n, 0);
    uint64_t local = 0;
    for (uint64_t u = begin; u < end; ++u) {
      const NodeId* first = fwd.neighbors.data() + fwd.offsets[u];
      const NodeId* last = fwd.neighbors.data() + fwd.offsets[u + 1];
      for (const NodeId* v = first; v != last; ++v) mark[*v] = 1;
      for (const NodeId* v = first; v != last; ++v) {
        const NodeId* wf = fwd.neighbors.data() + fwd.offsets[*v];
        const NodeId* wl = fwd.neighbors.data() + fwd.offsets[*v + 1];
        for (const NodeId* w = wf; w != wl; ++w) {
          if (mark[*w]) ++local;
        }
      }
      for (const NodeId* v = first; v != last; ++v) mark[*v] = 0;
    }
    triangles.fetch_add(local, std::memory_order_relaxed);
  });
  return triangles.load();
}

uint64_t CountTrianglesBrute(const Graph& g) {
  const NodeId n = g.num_nodes();
  uint64_t triangles = 0;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (!g.HasEdge(a, b)) continue;
      for (NodeId c = b + 1; c < n; ++c) {
        if (g.HasEdge(a, c) && g.HasEdge(b, c)) ++triangles;
      }
    }
  }
  return triangles;
}

uint64_t CountWedges(const Graph& g) { return CountWedgesImpl(g); }

uint64_t CountWedges(const CsrGraph& g) { return CountWedgesImpl(g); }

std::vector<uint64_t> PerNodeTriangles(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<uint64_t> counts(n, 0);
  // Edge iterator: each edge's common-neighbor count is the number of
  // triangles through that edge; a triangle has three edges and each of its
  // corners sits on two of them, so crediting both endpoints of every edge
  // counts each corner exactly twice.
  g.ForEachEdge([&](NodeId u, NodeId v) {
    uint32_t t = g.CommonNeighborCount(u, v);
    counts[u] += t;
    counts[v] += t;
  });
  for (auto& c : counts) {
    AGMDP_CHECK(c % 2 == 0);
    c /= 2;
  }
  return counts;
}

std::vector<uint64_t> PerNodeTriangles(const CsrGraph& g, int threads) {
  const NodeId n = g.num_nodes();
  std::vector<uint64_t> counts(n, 0);
  if (n == 0) return counts;

  // Forward edge positions: node u's canonical edges {u, v} with v > u are
  // the tail of its sorted neighbor range; fwd_offsets[u] is the global
  // index of the first one.
  std::vector<uint64_t> fwd_offsets(static_cast<size_t>(n) + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    const NeighborRange range = g.Neighbors(u);
    const uint64_t forward = static_cast<uint64_t>(
        range.end() - std::upper_bound(range.begin(), range.end(), u));
    fwd_offsets[u + 1] = fwd_offsets[u] + forward;
  }

  // Phase 1 (parallel): merge-join common-neighbor count of every canonical
  // edge — the number of triangles through that edge — into a slot owned by
  // its position.
  std::vector<uint32_t> edge_triangles(fwd_offsets[n]);
  util::ParallelNodeRanges(n, threads, [&](uint64_t begin, uint64_t end) {
    for (uint64_t u = begin; u < end; ++u) {
      const NodeId node = static_cast<NodeId>(u);
      const NeighborRange range = g.Neighbors(node);
      const NodeId* v = std::upper_bound(range.begin(), range.end(), node);
      uint64_t slot = fwd_offsets[u];
      for (; v != range.end(); ++v) {
        edge_triangles[slot++] = g.CommonNeighborCount(node, *v);
      }
    }
  });

  // Phase 2 (sequential, integer): credit both endpoints of every edge —
  // each corner of a triangle sits on two of its edges, so every node is
  // credited exactly twice per triangle.
  for (NodeId u = 0; u < n; ++u) {
    const NeighborRange range = g.Neighbors(u);
    const NodeId* v = std::upper_bound(range.begin(), range.end(), u);
    uint64_t slot = fwd_offsets[u];
    for (; v != range.end(); ++v) {
      const uint32_t t = edge_triangles[slot++];
      counts[u] += t;
      counts[*v] += t;
    }
  }
  for (auto& c : counts) {
    AGMDP_CHECK(c % 2 == 0);
    c /= 2;
  }
  return counts;
}

util::Result<uint32_t> MaxCommonNeighborCount(const Graph& g,
                                              uint64_t max_work) {
  const NodeId n = g.num_nodes();
  // Work is sum over nodes of degree^2 (each node, via its neighbors'
  // adjacency lists, touches that many two-hop endpoints).
  uint64_t work = 0;
  for (NodeId v = 0; v < n; ++v) {
    uint64_t d = g.Degree(v);
    work += d * d;
    if (work > max_work) {
      return util::Status::FailedPrecondition(
          "MaxCommonNeighborCount: wedge work exceeds max_work budget");
    }
  }

  std::vector<uint32_t> counter(n, 0);
  std::vector<NodeId> touched;
  uint32_t best = 0;
  for (NodeId u = 0; u < n; ++u) {
    touched.clear();
    for (NodeId w : g.Neighbors(u)) {
      for (NodeId x : g.Neighbors(w)) {
        if (x <= u) continue;  // each unordered pair handled once (u < x)
        if (counter[x]++ == 0) touched.push_back(x);
      }
    }
    for (NodeId x : touched) {
      best = std::max(best, counter[x]);
      counter[x] = 0;
    }
  }
  return best;
}

}  // namespace agmdp::graph

#include "src/graph/graph_source.h"

#include <cstring>
#include <utility>

#include "src/graph/graph_container.h"
#include "src/graph/graph_io.h"

namespace agmdp::graph {

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

util::Result<GraphSource> GraphSource::Open(const std::string& path) {
  GraphSource source;
  source.path_ = path;
  if (IsBinaryGraphFile(path)) {
    auto snapshot = OpenBinarySnapshot(path);
    if (!snapshot.ok()) return snapshot.status();
    source.format_ = Format::kBinary;
    source.snapshot_ = std::move(snapshot).value();
    return source;
  }
  auto resolved = ResolveTextGraphPaths(path);
  if (!resolved.ok()) return resolved.status();
  auto parsed = ReadAttributedGraphFiles(resolved.value());
  if (!parsed.ok()) return parsed.status();
  source.format_ = Format::kText;
  source.snapshot_ = AttributedCsrGraph::FromGraph(parsed.value());
  return source;
}

AttributedGraph GraphSource::Materialize() const {
  return MaterializeSnapshot(snapshot_);
}

util::Status WriteGraph(const AttributedGraph& g, const std::string& path) {
  if (EndsWith(path, kBinaryGraphExtension)) {
    return WriteBinaryGraph(g, path);
  }
  return WriteAttributedGraph(g, path);
}

std::string NumberedGraphPath(const std::string& path, uint64_t index) {
  const std::string suffix = "_" + std::to_string(index);
  if (EndsWith(path, kBinaryGraphExtension)) {
    const size_t stem = path.size() - std::strlen(kBinaryGraphExtension);
    return path.substr(0, stem) + suffix + kBinaryGraphExtension;
  }
  return path + suffix;
}

}  // namespace agmdp::graph

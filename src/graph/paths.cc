#include "src/graph/paths.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/util/check.h"

namespace agmdp::graph {

namespace {

constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max();

// Works for both representations: Graph's Neighbors returns a vector,
// CsrGraph's a contiguous range — both iterate with a range-for. BFS depths
// are independent of the neighbor visit order, so the two instantiations
// return identical distance vectors.
template <typename AnyGraph>
std::vector<uint32_t> BfsDistancesImpl(const AnyGraph& g, NodeId source) {
  AGMDP_CHECK(source < g.num_nodes());
  std::vector<uint32_t> dist(g.num_nodes(), kUnreachable);
  std::vector<NodeId> frontier = {source};
  dist[source] = 0;
  uint32_t depth = 0;
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (NodeId u : frontier) {
      for (NodeId v : g.Neighbors(u)) {
        if (dist[v] == kUnreachable) {
          dist[v] = depth;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

template <typename AnyGraph>
PathStats EstimatePathStatsImpl(const AnyGraph& g, uint32_t sample_sources,
                                util::Rng& rng) {
  PathStats stats;
  const NodeId n = g.num_nodes();
  if (n == 0) return stats;

  std::vector<NodeId> sources;
  if (sample_sources >= n) {
    sources.resize(n);
    std::iota(sources.begin(), sources.end(), 0);
  } else {
    sources.reserve(sample_sources);
    for (uint32_t i = 0; i < sample_sources; ++i) {
      sources.push_back(static_cast<NodeId>(rng.UniformIndex(n)));
    }
  }

  double sum = 0.0;
  uint64_t count = 0;
  std::vector<uint64_t> depth_histogram;
  for (NodeId s : sources) {
    for (uint32_t d : BfsDistancesImpl(g, s)) {
      if (d == kUnreachable || d == 0) continue;
      sum += d;
      ++count;
      if (d >= depth_histogram.size()) depth_histogram.resize(d + 1, 0);
      ++depth_histogram[d];
      stats.diameter_lower_bound = std::max(stats.diameter_lower_bound, d);
    }
  }
  if (count == 0) return stats;
  stats.avg_path_length = sum / static_cast<double>(count);

  // Effective diameter: smallest depth covering >= 90% of reachable pairs,
  // with linear interpolation inside the final bucket.
  const double target = 0.9 * static_cast<double>(count);
  double covered = 0.0;
  for (uint32_t d = 1; d < depth_histogram.size(); ++d) {
    const double next_covered = covered + static_cast<double>(depth_histogram[d]);
    if (next_covered >= target) {
      const double inside =
          depth_histogram[d] == 0
              ? 0.0
              : (target - covered) / static_cast<double>(depth_histogram[d]);
      stats.effective_diameter = static_cast<double>(d - 1) + inside;
      break;
    }
    covered = next_covered;
  }
  return stats;
}

}  // namespace

std::vector<uint32_t> BfsDistances(const Graph& g, NodeId source) {
  return BfsDistancesImpl(g, source);
}

std::vector<uint32_t> BfsDistances(const CsrGraph& g, NodeId source) {
  return BfsDistancesImpl(g, source);
}

uint32_t Eccentricity(const Graph& g, NodeId source) {
  uint32_t ecc = 0;
  for (uint32_t d : BfsDistances(g, source)) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

PathStats EstimatePathStats(const Graph& g, uint32_t sample_sources,
                            util::Rng& rng) {
  return EstimatePathStatsImpl(g, sample_sources, rng);
}

PathStats EstimatePathStats(const CsrGraph& g, uint32_t sample_sources,
                            util::Rng& rng) {
  return EstimatePathStatsImpl(g, sample_sources, rng);
}

}  // namespace agmdp::graph

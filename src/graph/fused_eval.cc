#include "src/graph/fused_eval.h"

#include <algorithm>
#include <utility>

#include "src/graph/attribute_encoding.h"
#include "src/graph/fused_eval_impl.h"
#include "src/util/parallel.h"

namespace agmdp::graph {

namespace internal {

namespace {

// Forward orientation by the (degree, id) total order — the same order the
// standalone triangle kernels rank by, built here by direct comparison so
// no O(n log n) rank sort is needed. Counting and filling both touch only
// slots their node range owns.
ForwardAdjacency BuildDegreeOrderedForward(const CsrGraph& g, int threads) {
  const NodeId n = g.num_nodes();
  ForwardAdjacency fwd;
  fwd.offsets.assign(static_cast<size_t>(n) + 1, 0);
  const auto forward_of = [&g](NodeId u, NodeId v) {
    const uint32_t du = g.Degree(u), dv = g.Degree(v);
    return du != dv ? du < dv : u < v;
  };
  util::ParallelNodeRanges(n, threads, [&](uint64_t begin, uint64_t end) {
    for (uint64_t ui = begin; ui < end; ++ui) {
      const auto u = static_cast<NodeId>(ui);
      uint64_t count = 0;
      for (NodeId v : g.Neighbors(u)) {
        if (forward_of(u, v)) ++count;
      }
      fwd.offsets[ui + 1] = count;
    }
  });
  for (NodeId u = 0; u < n; ++u) fwd.offsets[u + 1] += fwd.offsets[u];
  fwd.neighbors.resize(fwd.offsets[n]);
  util::ParallelNodeRanges(n, threads, [&](uint64_t begin, uint64_t end) {
    for (uint64_t ui = begin; ui < end; ++ui) {
      const auto u = static_cast<NodeId>(ui);
      NodeId* out = fwd.neighbors.data() + fwd.offsets[ui];
      for (NodeId v : g.Neighbors(u)) {
        if (forward_of(u, v)) *out++ = v;
      }
    }
  });
  return fwd;
}

// Sweep B: per-node triangle counts, dispatched between the scalar and
// AVX2 instantiations of the one shared body. Per-worker count arrays
// merge by integer addition, so any partition yields the same counts.
std::vector<uint64_t> FusedPerNodeTriangles(const CsrGraph& g, int threads,
                                            util::SimdIsa isa) {
  const NodeId n = g.num_nodes();
  std::vector<uint64_t> counts(n, 0);
  if (n == 0) return counts;
  const ForwardAdjacency fwd = BuildDegreeOrderedForward(g, threads);
  const auto kernel = util::ResolveSimdIsa(isa) == util::SimdIsa::kAvx2
                          ? &TriangleCreditRangeAvx2
                          : &TriangleCreditRange<ScalarArch>;
  struct Local {
    std::vector<uint32_t> marks;
    std::vector<uint64_t> counts;
  };
  util::ParallelTally(
      n, threads,
      [n] {
        Local local;
        local.marks.assign((static_cast<size_t>(n) + 31) / 32, 0);
        local.counts.assign(n, 0);
        return local;
      },
      [&](Local& local, uint64_t begin, uint64_t end) {
        kernel(fwd, begin, end, local.marks.data(), local.counts.data());
      },
      [&](const Local& local) {
        for (NodeId v = 0; v < n; ++v) counts[v] += local.counts[v];
      });
  return counts;
}

// Sweep A: one pass over the canonical (u < v) edges collecting every
// edge-level tally and the degree-assortativity partials. Integer tallies
// merge order-free; the double partials land in slots owned by their
// source node and reduce in node order afterwards — the exact chain of
// the standalone assortativity kernel.
struct SweepAResult {
  std::vector<uint64_t> degree_histogram;
  std::vector<uint64_t> mixing_counts;
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> joint_degree_counts;
  double sum_xy = 0.0;
  double sum_x = 0.0;
  double sum_x2 = 0.0;
};

SweepAResult SweepA(const CsrGraph& g, const AttrConfig* attrs, uint32_t k,
                    const FusedOptions& opts) {
  const NodeId n = g.num_nodes();
  SweepAResult result;
  result.degree_histogram.assign(static_cast<size_t>(g.MaxDegree()) + 1, 0);
  // k == 0 means the structure-only overload: no mixing tallies at all.
  result.mixing_counts.assign(static_cast<size_t>(k) * k, 0);
  std::vector<double> pxy(n), px(n), px2(n);

  struct Local {
    std::vector<uint64_t> hist;
    std::vector<uint64_t> mixing;
    std::map<std::pair<uint32_t, uint32_t>, uint64_t> joint;
  };
  util::ParallelTally(
      n, opts.threads,
      [&] {
        Local local;
        local.hist.assign(result.degree_histogram.size(), 0);
        local.mixing.assign(result.mixing_counts.size(), 0);
        return local;
      },
      [&](Local& local, uint64_t begin, uint64_t end) {
        for (uint64_t ui = begin; ui < end; ++ui) {
          const auto u = static_cast<NodeId>(ui);
          const uint32_t du_int = g.Degree(u);
          ++local.hist[du_int];
          const double du = du_int;
          double a = 0.0, b = 0.0, c = 0.0;
          const NeighborRange range = g.Neighbors(u);
          for (const NodeId* v =
                   std::upper_bound(range.begin(), range.end(), u);
               v != range.end(); ++v) {
            const uint32_t dv_int = g.Degree(*v);
            const double dv = dv_int;
            a += 2.0 * du * dv;
            b += du + dv;
            c += du * du + dv * dv;
            if (k != 0) {
              const AttrConfig x = attrs[u], y = attrs[*v];
              ++local.mixing[static_cast<size_t>(x) * k + y];
              ++local.mixing[static_cast<size_t>(y) * k + x];
            }
            if (opts.joint_degree) {
              ++local.joint[{std::min(du_int, dv_int),
                             std::max(du_int, dv_int)}];
            }
          }
          pxy[ui] = a;
          px[ui] = b;
          px2[ui] = c;
        }
      },
      [&](const Local& local) {
        for (size_t i = 0; i < local.hist.size(); ++i) {
          result.degree_histogram[i] += local.hist[i];
        }
        for (size_t i = 0; i < local.mixing.size(); ++i) {
          result.mixing_counts[i] += local.mixing[i];
        }
        for (const auto& [key, count] : local.joint) {
          result.joint_degree_counts[key] += count;
        }
      });
  for (NodeId u = 0; u < n; ++u) {
    result.sum_xy += pxy[u];
    result.sum_x += px[u];
    result.sum_x2 += px2[u];
  }
  return result;
}

// The attribute families are pure functions of the ordered-endpoint mixing
// tallies: every ordered count is doubled relative to the per-edge count
// (off-diagonal pairs appear once per direction, diagonal cells get two
// increments per edge), so halving recovers the exact edge tallies.

std::vector<uint64_t> HomophilyCountsFromMixing(
    const std::vector<uint64_t>& mixing, uint32_t k, int num_attributes) {
  std::vector<uint64_t> counts(static_cast<size_t>(num_attributes), 0);
  for (int a = 0; a < num_attributes; ++a) {
    uint64_t ordered = 0;
    for (uint32_t x = 0; x < k; ++x) {
      for (uint32_t y = 0; y < k; ++y) {
        if ((~(x ^ y) >> a) & 1u) {
          ordered += mixing[static_cast<size_t>(x) * k + y];
        }
      }
    }
    counts[static_cast<size_t>(a)] = ordered / 2;
  }
  return counts;
}

std::vector<uint64_t> ConnectionCountsFromMixing(
    const std::vector<uint64_t>& mixing, uint32_t k, int num_attributes) {
  std::vector<uint64_t> counts(NumEdgeConfigs(num_attributes), 0);
  for (uint32_t a = 0; a < k; ++a) {
    counts[EncodeEdgeConfig(a, a, num_attributes)] =
        mixing[static_cast<size_t>(a) * k + a] / 2;
    for (uint32_t b = a + 1; b < k; ++b) {
      counts[EncodeEdgeConfig(a, b, num_attributes)] =
          mixing[static_cast<size_t>(a) * k + b];
    }
  }
  return counts;
}

// num_attributes < 0 selects the structure-only variant; an attributed
// graph always produces its mixing-derived families, even when empty (the
// attribute data pointer may legitimately be null for n == 0, so it is NOT
// the discriminator).
FusedStats FusedEvaluateImpl(const CsrGraph& g, const AttrConfig* attrs,
                             int num_attributes, const FusedOptions& opts) {
  FusedStats stats;
  stats.num_nodes = g.num_nodes();
  stats.num_edges = g.num_edges();
  const uint32_t k = num_attributes >= 0 ? NumNodeConfigs(num_attributes) : 0;

  SweepAResult sweep_a = SweepA(g, attrs, k, opts);
  stats.degree_histogram = std::move(sweep_a.degree_histogram);
  stats.assort_sum_xy = sweep_a.sum_xy;
  stats.assort_sum_x = sweep_a.sum_x;
  stats.assort_sum_x2 = sweep_a.sum_x2;
  stats.joint_degree_counts = std::move(sweep_a.joint_degree_counts);

  if (num_attributes >= 0) {
    stats.num_configs = k;
    stats.homophily_counts =
        HomophilyCountsFromMixing(sweep_a.mixing_counts, k, num_attributes);
    stats.connection_counts =
        ConnectionCountsFromMixing(sweep_a.mixing_counts, k, num_attributes);
    stats.mixing_counts = std::move(sweep_a.mixing_counts);
  }

  if (opts.triangles) {
    stats.clustering = ClusteringStatsFromTriangles(
        g, FusedPerNodeTriangles(g, opts.threads, opts.isa));
    if (opts.degree_wise_clustering) {
      stats.degree_wise_clustering = DegreeWiseClusteringFromCoefficients(
          g, stats.clustering.local_coefficients);
    }
  }
  return stats;
}

}  // namespace

}  // namespace internal

FusedStats FusedEvaluate(const CsrGraph& g, const FusedOptions& opts) {
  return internal::FusedEvaluateImpl(g, nullptr, -1, opts);
}

FusedStats FusedEvaluate(const AttributedCsrGraph& g,
                         const FusedOptions& opts) {
  return internal::FusedEvaluateImpl(g.structure, g.attributes_data(),
                                     g.num_attributes, opts);
}

}  // namespace agmdp::graph

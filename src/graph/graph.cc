#include "src/graph/graph.h"

#include <algorithm>

#include "src/util/check.h"

namespace agmdp::graph {

Graph::Graph(NodeId num_nodes) : adj_(num_nodes) {}

bool Graph::AddEdge(NodeId u, NodeId v) {
  if (u == v || u >= num_nodes() || v >= num_nodes()) return false;
  if (!edge_set_.Insert(PackEdge(u, v))) return false;
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++num_edges_;
  return true;
}

bool Graph::RemoveEdge(NodeId u, NodeId v) {
  if (u == v || u >= num_nodes() || v >= num_nodes()) return false;
  if (!edge_set_.Erase(PackEdge(u, v))) return false;
  auto drop = [](std::vector<NodeId>& list, NodeId x) {
    auto it = std::find(list.begin(), list.end(), x);
    AGMDP_CHECK(it != list.end());
    *it = list.back();
    list.pop_back();
  };
  drop(adj_[u], v);
  drop(adj_[v], u);
  --num_edges_;
  return true;
}

uint32_t Graph::CommonNeighborCount(NodeId u, NodeId v) const {
  const std::vector<NodeId>& smaller =
      adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const NodeId other = adj_[u].size() <= adj_[v].size() ? v : u;
  uint32_t count = 0;
  for (NodeId w : smaller) {
    if (w != other && HasEdge(w, other)) ++count;
  }
  return count;
}

uint32_t Graph::MaxDegree() const {
  uint32_t max_degree = 0;
  for (const auto& list : adj_) {
    max_degree = std::max(max_degree, static_cast<uint32_t>(list.size()));
  }
  return max_degree;
}

std::vector<Edge> Graph::CanonicalEdges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  ForEachEdge([&edges](NodeId u, NodeId v) { edges.emplace_back(u, v); });
  std::sort(edges.begin(), edges.end());
  return edges;
}

void Graph::ClearEdges() {
  for (auto& list : adj_) list.clear();
  edge_set_.Clear();
  num_edges_ = 0;
}

}  // namespace agmdp::graph

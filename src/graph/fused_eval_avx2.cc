// AVX2 arm of the fused triangle sweep — the only src/graph TU compiled
// with -mavx2 (see CMakeLists.txt). It instantiates the SAME
// TriangleCreditRange template as the scalar arm; only the
// mark-membership primitive differs: eight candidate corners are tested
// per step with a gather of their bitmap words. All operations are
// integer, so the credited counts are bitwise-identical to the scalar arm.
#include "src/graph/fused_eval_impl.h"

#ifdef AGMDP_HAVE_AVX2
#include <immintrin.h>
#endif

namespace agmdp::graph::internal {

#ifdef AGMDP_HAVE_AVX2

namespace {

struct Avx2Arch {
  template <typename Visit>
  static uint64_t CountMarked(const uint32_t* marks, const NodeId* ws,
                              size_t count, Visit&& visit) {
    uint64_t hits = 0;
    size_t i = 0;
    const __m256i thirty_one = _mm256_set1_epi32(31);
    const __m256i one = _mm256_set1_epi32(1);
    for (; i + 8 <= count; i += 8) {
      const __m256i ids =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ws + i));
      const __m256i words = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(marks), _mm256_srli_epi32(ids, 5), 4);
      const __m256i bits = _mm256_and_si256(
          _mm256_srlv_epi32(words, _mm256_and_si256(ids, thirty_one)), one);
      // Lane = 1 exactly when the corner is marked; iterate the set lanes
      // of the compressed mask (triangle hits are sparse).
      int mask =
          _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(bits, one)));
      hits += static_cast<unsigned>(__builtin_popcount(mask));
      while (mask != 0) {
        const int lane = __builtin_ctz(mask);
        visit(ws[i + lane]);
        mask &= mask - 1;
      }
    }
    for (; i < count; ++i) {
      const NodeId w = ws[i];
      if ((marks[w >> 5] >> (w & 31u)) & 1u) {
        ++hits;
        visit(w);
      }
    }
    return hits;
  }
};

}  // namespace

void TriangleCreditRangeAvx2(const ForwardAdjacency& fwd, uint64_t begin,
                             uint64_t end, uint32_t* marks,
                             uint64_t* counts) {
  TriangleCreditRange<Avx2Arch>(fwd, begin, end, marks, counts);
}

#else

void TriangleCreditRangeAvx2(const ForwardAdjacency& fwd, uint64_t begin,
                             uint64_t end, uint32_t* marks,
                             uint64_t* counts) {
  TriangleCreditRange<ScalarArch>(fwd, begin, end, marks, counts);
}

#endif  // AGMDP_HAVE_AVX2

}  // namespace agmdp::graph::internal

#include "src/graph/clustering.h"

#include "src/graph/triangle_count.h"

namespace agmdp::graph {

std::vector<double> LocalClusteringCoefficients(const Graph& g) {
  std::vector<uint64_t> triangles = PerNodeTriangles(g);
  std::vector<double> coeffs(g.num_nodes(), 0.0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    uint64_t d = g.Degree(v);
    if (d >= 2) {
      coeffs[v] = 2.0 * static_cast<double>(triangles[v]) /
                  (static_cast<double>(d) * static_cast<double>(d - 1));
    }
  }
  return coeffs;
}

double AverageLocalClustering(const Graph& g) {
  if (g.num_nodes() == 0) return 0.0;
  std::vector<double> coeffs = LocalClusteringCoefficients(g);
  double sum = 0.0;
  for (double c : coeffs) sum += c;
  return sum / static_cast<double>(coeffs.size());
}

double GlobalClusteringCoefficient(const Graph& g) {
  uint64_t wedges = CountWedges(g);
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(g)) /
         static_cast<double>(wedges);
}

std::vector<double> DegreeWiseClustering(const Graph& g) {
  std::vector<double> coeffs = LocalClusteringCoefficients(g);
  std::vector<double> sum(g.MaxDegree() + 1, 0.0);
  std::vector<uint64_t> count(g.MaxDegree() + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    sum[g.Degree(v)] += coeffs[v];
    ++count[g.Degree(v)];
  }
  for (size_t d = 0; d < sum.size(); ++d) {
    if (count[d] > 0) sum[d] /= static_cast<double>(count[d]);
  }
  return sum;
}

}  // namespace agmdp::graph

#include "src/graph/clustering.h"

#include <utility>

#include "src/graph/triangle_count.h"

namespace agmdp::graph {

namespace {

// Shared formula bodies: the Graph and CsrGraph entry points must stay
// bitwise-identical (DESIGN.md snapshot contract), so each formula exists
// exactly once, templated over the representation.

template <typename AnyGraph>
std::vector<double> CoefficientsFromTriangles(
    const AnyGraph& g, const std::vector<uint64_t>& triangles) {
  std::vector<double> coeffs(g.num_nodes(), 0.0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    uint64_t d = g.Degree(v);
    if (d >= 2) {
      coeffs[v] = 2.0 * static_cast<double>(triangles[v]) /
                  (static_cast<double>(d) * static_cast<double>(d - 1));
    }
  }
  return coeffs;
}

double MeanCoefficient(const std::vector<double>& coeffs) {
  if (coeffs.empty()) return 0.0;
  double sum = 0.0;
  for (double c : coeffs) sum += c;
  return sum / static_cast<double>(coeffs.size());
}

double GlobalFromCounts(uint64_t triangles, uint64_t wedges) {
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(triangles) / static_cast<double>(wedges);
}

template <typename AnyGraph>
std::vector<double> DegreeWiseFromCoefficients(
    const AnyGraph& g, const std::vector<double>& coeffs) {
  std::vector<double> sum(g.MaxDegree() + 1, 0.0);
  std::vector<uint64_t> count(g.MaxDegree() + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    sum[g.Degree(v)] += coeffs[v];
    ++count[g.Degree(v)];
  }
  for (size_t d = 0; d < sum.size(); ++d) {
    if (count[d] > 0) sum[d] /= static_cast<double>(count[d]);
  }
  return sum;
}

}  // namespace

std::vector<double> LocalClusteringCoefficients(const Graph& g) {
  return CoefficientsFromTriangles(g, PerNodeTriangles(g));
}

std::vector<double> LocalClusteringCoefficients(const CsrGraph& g,
                                                int threads) {
  return CoefficientsFromTriangles(g, PerNodeTriangles(g, threads));
}

double AverageLocalClustering(const Graph& g) {
  return MeanCoefficient(LocalClusteringCoefficients(g));
}

double AverageLocalClustering(const CsrGraph& g, int threads) {
  return MeanCoefficient(LocalClusteringCoefficients(g, threads));
}

double GlobalClusteringCoefficient(const Graph& g) {
  return GlobalFromCounts(CountTriangles(g), CountWedges(g));
}

double GlobalClusteringCoefficient(const CsrGraph& g, int threads) {
  return GlobalFromCounts(CountTriangles(g, threads), CountWedges(g));
}

std::vector<double> DegreeWiseClustering(const Graph& g) {
  return DegreeWiseFromCoefficients(g, LocalClusteringCoefficients(g));
}

std::vector<double> DegreeWiseClustering(const CsrGraph& g, int threads) {
  return DegreeWiseFromCoefficients(g,
                                    LocalClusteringCoefficients(g, threads));
}

ClusteringStats ComputeClusteringStats(const CsrGraph& g, int threads) {
  return ClusteringStatsFromTriangles(g, PerNodeTriangles(g, threads));
}

ClusteringStats ClusteringStatsFromTriangles(
    const CsrGraph& g, std::vector<uint64_t> per_node_triangles) {
  ClusteringStats stats;
  stats.per_node_triangles = std::move(per_node_triangles);
  stats.local_coefficients =
      CoefficientsFromTriangles(g, stats.per_node_triangles);
  uint64_t corner_sum = 0;
  for (uint64_t t : stats.per_node_triangles) corner_sum += t;
  stats.triangles = corner_sum / 3;  // each triangle has three corners
  stats.wedges = CountWedges(g);
  stats.avg_local_clustering = MeanCoefficient(stats.local_coefficients);
  stats.global_clustering = GlobalFromCounts(stats.triangles, stats.wedges);
  return stats;
}

std::vector<double> DegreeWiseClusteringFromCoefficients(
    const CsrGraph& g, const std::vector<double>& coeffs) {
  return DegreeWiseFromCoefficients(g, coeffs);
}

}  // namespace agmdp::graph

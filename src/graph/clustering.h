// Clustering coefficient statistics (Section 5.1 of the paper).
//
// The CsrGraph overloads run the triangle phase on `threads` workers (<= 0
// selects hardware concurrency). Every per-node coefficient is a pure
// function of integer triangle and degree counts, and the averages reduce
// sequentially in node order — so the results are bitwise-identical to the
// Graph path at every thread count.
#pragma once

#include <vector>

#include "src/graph/csr.h"
#include "src/graph/graph.h"

namespace agmdp::graph {

/// Local clustering coefficient per node: C_i = 2 t_i / (d_i (d_i - 1)),
/// where t_i is the number of triangles through node i. Nodes of degree < 2
/// get C_i = 0 (the usual convention, also what CCDF plots assume).
std::vector<double> LocalClusteringCoefficients(const Graph& g);
std::vector<double> LocalClusteringCoefficients(const CsrGraph& g,
                                                int threads = 1);

/// Average of the local clustering coefficients, C̄ = (1/n) Σ C_i.
double AverageLocalClustering(const Graph& g);
double AverageLocalClustering(const CsrGraph& g, int threads = 1);

/// Global clustering coefficient (transitivity): C = 3 n∆ / n_W. Returns 0
/// for wedge-free graphs.
double GlobalClusteringCoefficient(const Graph& g);
double GlobalClusteringCoefficient(const CsrGraph& g, int threads = 1);

/// Degree-wise clustering profile c_d: the mean local clustering
/// coefficient over nodes of degree d, indexed by degree (length
/// MaxDegree + 1; degrees with no nodes get 0). This is the statistic the
/// BTER model is parameterized by (Section 3.3 discusses why that makes
/// BTER hard to release under DP).
std::vector<double> DegreeWiseClustering(const Graph& g);
std::vector<double> DegreeWiseClustering(const CsrGraph& g, int threads = 1);

/// \brief The whole triangle-derived statistic family from ONE run of the
/// per-node triangle kernel (the dominant analytics cost): the total is
/// the exact integer identity sum(per-node)/3, so every field matches the
/// standalone kernels bit-for-bit. The eval layer and Summarize use this
/// instead of paying for the triangle kernel once per statistic.
struct ClusteringStats {
  std::vector<uint64_t> per_node_triangles;
  std::vector<double> local_coefficients;
  uint64_t triangles = 0;  // sum(per_node_triangles) / 3
  uint64_t wedges = 0;
  double avg_local_clustering = 0.0;  // C̄, 0 for empty graphs
  double global_clustering = 0.0;  // 3 n∆ / n_W, 0 for wedge-free graphs
};

ClusteringStats ComputeClusteringStats(const CsrGraph& g, int threads = 1);

/// Derives the full ClusteringStats bundle from already-computed per-node
/// triangle counts — the ONE formula tail shared by ComputeClusteringStats
/// and the fused kernel (fused_eval.h), so the two paths cannot drift.
ClusteringStats ClusteringStatsFromTriangles(
    const CsrGraph& g, std::vector<uint64_t> per_node_triangles);

/// The c_d profile from already-computed local coefficients (same shared
/// formula as DegreeWiseClustering, exported for the fused kernel).
std::vector<double> DegreeWiseClusteringFromCoefficients(
    const CsrGraph& g, const std::vector<double>& coeffs);

}  // namespace agmdp::graph

// Clustering coefficient statistics (Section 5.1 of the paper).
#pragma once

#include <vector>

#include "src/graph/graph.h"

namespace agmdp::graph {

/// Local clustering coefficient per node: C_i = 2 t_i / (d_i (d_i - 1)),
/// where t_i is the number of triangles through node i. Nodes of degree < 2
/// get C_i = 0 (the usual convention, also what CCDF plots assume).
std::vector<double> LocalClusteringCoefficients(const Graph& g);

/// Average of the local clustering coefficients, C̄ = (1/n) Σ C_i.
double AverageLocalClustering(const Graph& g);

/// Global clustering coefficient (transitivity): C = 3 n∆ / n_W. Returns 0
/// for wedge-free graphs.
double GlobalClusteringCoefficient(const Graph& g);

/// Degree-wise clustering profile c_d: the mean local clustering
/// coefficient over nodes of degree d, indexed by degree (length
/// MaxDegree + 1; degrees with no nodes get 0). This is the statistic the
/// BTER model is parameterized by (Section 3.3 discusses why that makes
/// BTER hard to release under DP).
std::vector<double> DegreeWiseClustering(const Graph& g);

}  // namespace agmdp::graph

// Degree sequences, histograms and summary statistics.
//
// Each function has a CsrGraph overload that returns exactly the same
// values (the snapshot caches the degree array, so those are plain reads).
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/csr.h"
#include "src/graph/graph.h"

namespace agmdp::graph {

/// Degree of every node, indexed by node id.
std::vector<uint32_t> DegreeSequence(const Graph& g);
std::vector<uint32_t> DegreeSequence(const CsrGraph& g);

/// Degree sequence sorted ascending (the paper's S, sorted for constrained
/// inference).
std::vector<uint32_t> SortedDegreeSequence(const Graph& g);
std::vector<uint32_t> SortedDegreeSequence(const CsrGraph& g);

/// Histogram over degree values: hist[d] = number of nodes with degree d,
/// length MaxDegree + 1 (length 1 for edgeless graphs).
std::vector<uint64_t> DegreeHistogram(const Graph& g);
std::vector<uint64_t> DegreeHistogram(const CsrGraph& g);

/// Average degree 2m/n (0 for empty graphs).
double AverageDegree(const Graph& g);
double AverageDegree(const CsrGraph& g);

}  // namespace agmdp::graph

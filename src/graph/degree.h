// Degree sequences, histograms and summary statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace agmdp::graph {

/// Degree of every node, indexed by node id.
std::vector<uint32_t> DegreeSequence(const Graph& g);

/// Degree sequence sorted ascending (the paper's S, sorted for constrained
/// inference).
std::vector<uint32_t> SortedDegreeSequence(const Graph& g);

/// Histogram over degree values: hist[d] = number of nodes with degree d,
/// length MaxDegree + 1 (length 1 for edgeless graphs).
std::vector<uint64_t> DegreeHistogram(const Graph& g);

/// Average degree 2m/n (0 for empty graphs).
double AverageDegree(const Graph& g);

}  // namespace agmdp::graph

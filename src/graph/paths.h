// Shortest-path statistics (BFS-based). Average path length and effective
// diameter are standard structural-fidelity checks for synthetic social
// graphs; the extended-stats bench uses them to stress AGM-DP beyond the
// statistics its models explicitly target.
// The CsrGraph overloads are drop-in: BFS depths do not depend on the
// neighbor visit order, so distances — and every statistic derived from
// them — are identical to the Graph path (given the same rng sequence).
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/csr.h"
#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace agmdp::graph {

/// BFS distances from `source` (unreachable nodes get UINT32_MAX).
std::vector<uint32_t> BfsDistances(const Graph& g, NodeId source);
std::vector<uint32_t> BfsDistances(const CsrGraph& g, NodeId source);

/// Longest shortest path from `source` to any reachable node.
uint32_t Eccentricity(const Graph& g, NodeId source);

struct PathStats {
  /// Mean finite pairwise distance over the sampled sources.
  double avg_path_length = 0.0;
  /// Max distance observed from any sampled source (lower bound on the
  /// diameter; exact when all nodes are sampled).
  uint32_t diameter_lower_bound = 0;
  /// 90th-percentile distance ("effective diameter").
  double effective_diameter = 0.0;
};

/// Estimates path statistics by running BFS from `sample_sources` uniformly
/// random sources (all nodes when sample_sources >= n; deterministic given
/// rng). Unreachable pairs are excluded from the averages.
PathStats EstimatePathStats(const Graph& g, uint32_t sample_sources,
                            util::Rng& rng);
PathStats EstimatePathStats(const CsrGraph& g, uint32_t sample_sources,
                            util::Rng& rng);

}  // namespace agmdp::graph

// Connected components, largest-component extraction, induced subgraphs.
//
// Used for dataset preprocessing (the paper keeps only the main connected
// component), for TriCycLe's orphan post-processing, and for the
// sample-and-aggregate ΘF estimator (node-partition induced subgraphs).
#pragma once

#include <vector>

#include "src/graph/attributed_graph.h"
#include "src/graph/graph.h"

namespace agmdp::graph {

/// Component label per node (labels are 0-based, contiguous). Sets
/// *num_components if non-null.
std::vector<uint32_t> ConnectedComponents(const Graph& g,
                                          uint32_t* num_components);

/// True iff the graph has exactly one connected component (vacuously true
/// for the empty graph).
bool IsConnected(const Graph& g);

/// Node ids of the largest connected component, ascending.
std::vector<NodeId> LargestComponent(const Graph& g);

/// Subgraph induced by `nodes` (ids relabeled to 0..k-1 in the given order).
Graph InducedSubgraph(const Graph& g, const std::vector<NodeId>& nodes);

/// Attributed version: structure and attribute vectors restricted to `nodes`.
AttributedGraph InducedSubgraph(const AttributedGraph& g,
                                const std::vector<NodeId>& nodes);

}  // namespace agmdp::graph

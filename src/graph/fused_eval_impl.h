// Internal shared body of the fused triangle sweep (sweep B of
// fused_eval.h). Both dispatch arms instantiate TriangleCreditRange from
// this ONE template — the scalar TU with ScalarArch, the -mavx2 TU with
// its Avx2Arch — so the counting logic cannot drift between arms; an Arch
// only supplies CountMarked, the innermost "which of these candidate
// corners are marked" primitive. Everything here is integer arithmetic,
// hence bitwise-identical across arms and thread counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace agmdp::graph::internal {

/// Adjacency restricted to neighbors later in the (degree, id) total
/// order, in CSR form: each triangle has exactly one corner from which the
/// other two are both forward, and forward lists have size O(sqrt(m)) on
/// the heavy nodes.
struct ForwardAdjacency {
  std::vector<uint64_t> offsets;  // length n + 1
  std::vector<NodeId> neighbors;
};

/// Scalar arm of the mark-membership primitive. `marks` is a bitmap over
/// node ids (32-bit words; bit w&31 of word w>>5). Calls visit(w) for, and
/// counts, every marked id in ws[0..count).
struct ScalarArch {
  template <typename Visit>
  static uint64_t CountMarked(const uint32_t* marks, const NodeId* ws,
                              size_t count, Visit&& visit) {
    uint64_t hits = 0;
    for (size_t i = 0; i < count; ++i) {
      const NodeId w = ws[i];
      if ((marks[w >> 5] >> (w & 31u)) & 1u) {
        ++hits;
        visit(w);
      }
    }
    return hits;
  }
};

/// Credits every triangle whose lowest-(degree,id) corner lies in
/// [begin, end) to all three of its corners in `counts`. `marks` is a
/// zeroed bitmap of at least (n + 31) / 32 words, returned zeroed.
template <typename Arch>
void TriangleCreditRange(const ForwardAdjacency& fwd, uint64_t begin,
                         uint64_t end, uint32_t* marks, uint64_t* counts) {
  const NodeId* nbrs = fwd.neighbors.data();
  for (uint64_t u = begin; u < end; ++u) {
    const NodeId* first = nbrs + fwd.offsets[u];
    const NodeId* last = nbrs + fwd.offsets[u + 1];
    if (first == last) continue;
    for (const NodeId* v = first; v != last; ++v) {
      marks[*v >> 5] |= 1u << (*v & 31u);
    }
    // A marked member w of fwd(v) closes the triangle {u, v, w}; credit
    // all three corners right here so no second pass is needed.
    uint64_t through_u = 0;
    for (const NodeId* v = first; v != last; ++v) {
      const uint64_t hits =
          Arch::CountMarked(marks, nbrs + fwd.offsets[*v],
                            fwd.offsets[*v + 1] - fwd.offsets[*v],
                            [&](NodeId w) { ++counts[w]; });
      counts[*v] += hits;
      through_u += hits;
    }
    counts[u] += through_u;
    for (const NodeId* v = first; v != last; ++v) {
      marks[*v >> 5] &= ~(1u << (*v & 31u));
    }
  }
}

/// AVX2 instantiation of TriangleCreditRange, compiled in the -mavx2 TU
/// (falls back to the scalar instantiation when the arm is compiled out;
/// dispatch never selects it then).
void TriangleCreditRangeAvx2(const ForwardAdjacency& fwd, uint64_t begin,
                             uint64_t end, uint32_t* marks, uint64_t* counts);

}  // namespace agmdp::graph::internal

// Fused analytics kernel over CSR snapshots (DESIGN.md "Fused evaluation
// kernel") — the hot read path behind EvaluateRelease / ProfileReference /
// Summarize and the Figure 2/3 series.
//
// The per-metric kernels each make their own pass over the neighbor
// arrays; an evaluation touches the edge list five to six times and sorts
// the degree sequence on top. FusedEvaluate produces every per-node
// partial those passes compute in just two sweeps:
//
//   Sweep A (one pass over the canonical edges, parallel node ranges):
//     degree histogram, degree-assortativity per-node partials, the k x k
//     ordered-endpoint attribute mixing tallies, and (optionally) the
//     joint-degree tallies. Connection counts Q_F, per-attribute homophily
//     tallies and Newman's attribute assortativity are all pure functions
//     of the mixing tallies, so they cost no extra edge pass.
//   Sweep B (optional, triangle family): per-node triangle counts via the
//     mark-based forward-orientation kernel, from which the whole
//     clustering family derives through the same shared formulas the
//     standalone kernels use.
//
// The innermost sweep-B loop is SIMD-dispatched (util/simd.h): the AVX2
// arm gathers mark words for eight candidate corners at a time. Both arms
// instantiate ONE templated body (fused_eval_impl.h), and only integer
// operations are vectorized, so every field below is bitwise-identical
// across scalar/AVX2 dispatch and across 1/2/4 threads:
//   * integer tallies merge order-free;
//   * double accumulations follow the PR-3 per-source-node-partial fixed
//     summation order (partials over ascending forward neighbors, reduced
//     in node order) — identical to the legacy per-metric kernels, which
//     tests keep alive as the cross-check oracle.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/graph/clustering.h"
#include "src/graph/csr.h"
#include "src/util/simd.h"

namespace agmdp::graph {

struct FusedOptions {
  /// Worker count for both sweeps (<= 0 selects hardware concurrency).
  int threads = 1;
  /// Dispatch arm for the vectorized inner loops; kAuto picks the best
  /// supported arm (tests pin each arm explicitly).
  util::SimdIsa isa = util::SimdIsa::kAuto;
  /// Run sweep B (per-node triangles + clustering family). The dominant
  /// cost; profiles that only need edge-level statistics turn it off.
  bool triangles = true;
  /// Also derive the degree-wise clustering profile c_d (needs triangles).
  bool degree_wise_clustering = false;
  /// Also tally the joint degree distribution (dK-2 support map).
  bool joint_degree = false;
};

/// \brief Every statistic family of one evaluation pass, fused.
///
/// Integer tallies are exact; derived doubles follow the same formula and
/// summation chains as the standalone kernels (see file comment), so each
/// field equals its per-metric counterpart bit-for-bit.
struct FusedStats {
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;

  /// hist[d] = number of nodes of degree d, length MaxDegree + 1
  /// (== graph::DegreeHistogram).
  std::vector<uint64_t> degree_histogram;

  /// Degree-assortativity partial sums over the 2m ordered endpoint pairs,
  /// reduced in node order from per-source-node partials
  /// (stats::DegreeAssortativityFromSums turns them into Newman's r).
  double assort_sum_xy = 0.0;
  double assort_sum_x = 0.0;
  double assort_sum_x2 = 0.0;

  /// Triangle family (FusedOptions::triangles); matches
  /// graph::ComputeClusteringStats field for field.
  ClusteringStats clustering;

  /// c_d profile (FusedOptions::degree_wise_clustering), ==
  /// graph::DegreeWiseClustering.
  std::vector<double> degree_wise_clustering;

  /// Attributed overload only: k = 2^w and the k x k row-major tallies
  /// over ordered edge endpoints (each edge counted once per direction).
  uint32_t num_configs = 0;
  std::vector<uint64_t> mixing_counts;
  /// Per attribute bit: number of edges whose endpoints agree on it
  /// (length w; derived from the mixing tallies).
  std::vector<uint64_t> homophily_counts;
  /// Connection counts Q_F over unordered config pairs, indexed by
  /// graph::EncodeEdgeConfig (derived from the mixing tallies; ==
  /// agm::ComputeConnectionCounts as exact integers).
  std::vector<uint64_t> connection_counts;

  /// Joint-degree tallies per unordered degree pair
  /// (FusedOptions::joint_degree); counts, not mass.
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> joint_degree_counts;
};

/// Structure-only fusion: attribute fields stay empty.
FusedStats FusedEvaluate(const CsrGraph& g, const FusedOptions& opts = {});

/// Full fusion including the mixing-derived attribute families.
FusedStats FusedEvaluate(const AttributedCsrGraph& g,
                         const FusedOptions& opts = {});

}  // namespace agmdp::graph

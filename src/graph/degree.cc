#include "src/graph/degree.h"

#include <algorithm>

namespace agmdp::graph {

namespace {

// Shared formula bodies, templated over the representation so the Graph
// and CsrGraph entry points cannot drift apart.

template <typename AnyGraph>
std::vector<uint64_t> DegreeHistogramImpl(const AnyGraph& g) {
  std::vector<uint64_t> hist(g.MaxDegree() + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++hist[g.Degree(v)];
  return hist;
}

template <typename AnyGraph>
double AverageDegreeImpl(const AnyGraph& g) {
  if (g.num_nodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(g.num_edges()) /
         static_cast<double>(g.num_nodes());
}

}  // namespace

std::vector<uint32_t> DegreeSequence(const Graph& g) {
  std::vector<uint32_t> degrees(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) degrees[v] = g.Degree(v);
  return degrees;
}

std::vector<uint32_t> DegreeSequence(const CsrGraph& g) {
  return g.degrees();
}

std::vector<uint32_t> SortedDegreeSequence(const Graph& g) {
  std::vector<uint32_t> degrees = DegreeSequence(g);
  std::sort(degrees.begin(), degrees.end());
  return degrees;
}

std::vector<uint32_t> SortedDegreeSequence(const CsrGraph& g) {
  std::vector<uint32_t> degrees = g.degrees();
  std::sort(degrees.begin(), degrees.end());
  return degrees;
}

std::vector<uint64_t> DegreeHistogram(const Graph& g) {
  return DegreeHistogramImpl(g);
}

std::vector<uint64_t> DegreeHistogram(const CsrGraph& g) {
  return DegreeHistogramImpl(g);
}

double AverageDegree(const Graph& g) { return AverageDegreeImpl(g); }

double AverageDegree(const CsrGraph& g) { return AverageDegreeImpl(g); }

}  // namespace agmdp::graph

#include "src/graph/degree.h"

#include <algorithm>

namespace agmdp::graph {

std::vector<uint32_t> DegreeSequence(const Graph& g) {
  std::vector<uint32_t> degrees(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) degrees[v] = g.Degree(v);
  return degrees;
}

std::vector<uint32_t> SortedDegreeSequence(const Graph& g) {
  std::vector<uint32_t> degrees = DegreeSequence(g);
  std::sort(degrees.begin(), degrees.end());
  return degrees;
}

std::vector<uint64_t> DegreeHistogram(const Graph& g) {
  std::vector<uint64_t> hist(g.MaxDegree() + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++hist[g.Degree(v)];
  return hist;
}

double AverageDegree(const Graph& g) {
  if (g.num_nodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(g.num_edges()) /
         static_cast<double>(g.num_nodes());
}

}  // namespace agmdp::graph

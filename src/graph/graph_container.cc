#include "src/graph/graph_container.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "src/graph/graph_io.h"
#include "src/util/checksum.h"
#include "src/util/fault_injector.h"
#include "src/util/mmap_file.h"

namespace agmdp::graph {

namespace {

struct SectionDesc {
  uint64_t offset = 0;
  uint64_t bytes = 0;

  bool operator==(const SectionDesc& o) const {
    return offset == o.offset && bytes == o.bytes;
  }
};
static_assert(sizeof(SectionDesc) == 16);

// On-disk header, page 0. Field order is the file format — every member
// is naturally aligned so the struct has no padding and can be memcpy'd
// to/from the mapping. header_crc covers the preceding 124 bytes.
struct BinaryGraphHeader {
  char magic[8];
  uint32_t version;
  uint32_t endian_tag;
  uint32_t page_size;
  uint32_t num_attributes;
  uint64_t num_nodes;
  uint64_t num_edges;
  uint64_t file_bytes;
  SectionDesc offsets;
  SectionDesc neighbors;
  SectionDesc attributes;
  SectionDesc page_table;
  uint64_t num_data_pages;
  uint32_t table_crc;
  uint32_t header_crc;
};
static_assert(sizeof(BinaryGraphHeader) == 128);
constexpr size_t kHeaderBytes = sizeof(BinaryGraphHeader);
constexpr size_t kHeaderCrcOffset = offsetof(BinaryGraphHeader, header_crc);
static_assert(kHeaderCrcOffset == 124);

bool ValidPageSize(uint32_t page_size) {
  return page_size >= 4096 && (page_size & (page_size - 1)) == 0;
}

uint64_t AlignUp(uint64_t x, uint64_t align) {
  return (x + align - 1) / align * align;
}

// Derives the full section table from the graph shape. Both the writers
// and the open-time structural check use this single function, so a
// header whose sections disagree with its own (n, m, w, page_size) is
// detected as corruption.
BinaryGraphHeader MakeHeader(uint64_t num_nodes, uint64_t num_edges,
                             uint32_t num_attributes, uint32_t page_size) {
  BinaryGraphHeader h{};
  std::memcpy(h.magic, kBinaryGraphMagic, sizeof(h.magic));
  h.version = kBinaryGraphVersion;
  h.endian_tag = kBinaryGraphEndianTag;
  h.page_size = page_size;
  h.num_attributes = num_attributes;
  h.num_nodes = num_nodes;
  h.num_edges = num_edges;
  h.offsets = {page_size, (num_nodes + 1) * sizeof(uint64_t)};
  h.neighbors = {AlignUp(h.offsets.offset + h.offsets.bytes, page_size),
                 2 * num_edges * sizeof(NodeId)};
  h.attributes = {AlignUp(h.neighbors.offset + h.neighbors.bytes, page_size),
                  num_nodes * sizeof(AttrConfig)};
  const uint64_t data_end =
      AlignUp(h.attributes.offset + h.attributes.bytes, page_size);
  h.num_data_pages = (data_end - page_size) / page_size;
  h.page_table = {data_end, h.num_data_pages * sizeof(uint32_t)};
  h.file_bytes = data_end + h.page_table.bytes;
  return h;
}

// Fills the page-checksum table, its CRC and the header (with its CRC)
// into a writable mapping. Last step of both writers and of
// RecomputeBinaryGraphChecksums.
void FinalizeChecksums(uint8_t* data, BinaryGraphHeader* h) {
  uint32_t* table = reinterpret_cast<uint32_t*>(data + h->page_table.offset);
  for (uint64_t p = 0; p < h->num_data_pages; ++p) {
    const uint8_t* page = data + h->page_size + p * h->page_size;
    table[p] = util::Crc32c(page, h->page_size);
  }
  h->table_crc = util::Crc32c(table, h->page_table.bytes);
  h->header_crc = 0;
  std::memcpy(data, h, kHeaderBytes);
  h->header_crc = util::Crc32c(data, kHeaderCrcOffset);
  std::memcpy(data, h, kHeaderBytes);
}

// Parses and verifies the header. Ordered so each failure mode yields
// its distinct typed code; `check_crc` is false only for the repair path.
util::Status VerifyAndParseHeader(const uint8_t* data, uint64_t size,
                                  const std::string& path,
                                  BinaryGraphHeader* h, bool check_crc) {
  if (size < kHeaderBytes) {
    return util::Status::Corruption(
        "truncated container (only " + std::to_string(size) +
        " bytes, header needs " + std::to_string(kHeaderBytes) + "): " + path);
  }
  std::memcpy(h, data, kHeaderBytes);
  if (std::memcmp(h->magic, kBinaryGraphMagic, sizeof(h->magic)) != 0) {
    return util::Status::Corruption(
        "not a binary graph container (bad magic): " + path);
  }
  if (h->version != kBinaryGraphVersion) {
    return util::Status::VersionMismatch(
        "unsupported container version " + std::to_string(h->version) +
        " (this build reads version " + std::to_string(kBinaryGraphVersion) +
        "; re-convert with `agmdp convert`): " + path);
  }
  if (h->endian_tag != kBinaryGraphEndianTag) {
    return util::Status::VersionMismatch(
        "container byte order does not match this machine: " + path);
  }
  if (check_crc && util::Crc32c(data, kHeaderCrcOffset) != h->header_crc) {
    return util::Status::ChecksumMismatch("header checksum mismatch: " + path);
  }
  if (!ValidPageSize(h->page_size)) {
    return util::Status::Corruption(
        "invalid page size " + std::to_string(h->page_size) + ": " + path);
  }
  if (h->num_nodes > std::numeric_limits<NodeId>::max()) {
    return util::Status::Corruption("node count overflows NodeId: " + path);
  }
  if (h->num_attributes > 20) {
    return util::Status::Corruption(
        "attribute count out of range [0, 20]: " + path);
  }
  // The section table must be exactly what the shape dictates.
  const BinaryGraphHeader expect = MakeHeader(
      h->num_nodes, h->num_edges, h->num_attributes, h->page_size);
  if (!(h->offsets == expect.offsets) || !(h->neighbors == expect.neighbors) ||
      !(h->attributes == expect.attributes) ||
      !(h->page_table == expect.page_table) ||
      h->num_data_pages != expect.num_data_pages ||
      h->file_bytes != expect.file_bytes) {
    return util::Status::Corruption(
        "section table inconsistent with graph shape: " + path);
  }
  if (size < h->file_bytes) {
    return util::Status::Corruption(
        "truncated container (header expects " +
        std::to_string(h->file_bytes) + " bytes, file has " +
        std::to_string(size) + "): " + path);
  }
  if (size > h->file_bytes) {
    return util::Status::Corruption(
        "trailing bytes after container end: " + path);
  }
  return util::Status::OK();
}

util::Status VerifyPageChecksums(const uint8_t* data,
                                 const BinaryGraphHeader& h,
                                 const std::string& path) {
  const uint32_t* table =
      reinterpret_cast<const uint32_t*>(data + h.page_table.offset);
  if (util::Crc32c(table, h.page_table.bytes) != h.table_crc) {
    return util::Status::ChecksumMismatch(
        "page-checksum table mismatch: " + path);
  }
  for (uint64_t p = 0; p < h.num_data_pages; ++p) {
    const uint64_t offset = h.page_size + p * h.page_size;
    if (util::Crc32c(data + offset, h.page_size) != table[p]) {
      return util::Status::ChecksumMismatch(
          "checksum mismatch in data page " + std::to_string(p) +
          " (file offset " + std::to_string(offset) + "): " + path);
    }
  }
  return util::Status::OK();
}

// CSR invariant sweep over the mapped arrays — defends against a file
// whose checksums are self-consistent but whose content is not a valid
// simple graph (e.g. written by a buggy tool, or re-checksummed after
// tampering).
util::Status ValidateSemantics(const BinaryGraphHeader& h,
                               const uint64_t* offsets,
                               const NodeId* neighbors,
                               const AttrConfig* attrs,
                               const std::string& path) {
  const NodeId n = static_cast<NodeId>(h.num_nodes);
  if (offsets[0] != 0) {
    return util::Status::Corruption("offsets[0] != 0: " + path);
  }
  if (offsets[n] != 2 * h.num_edges) {
    return util::Status::Corruption(
        "offsets[n] disagrees with edge count: " + path);
  }
  for (NodeId v = 0; v < n; ++v) {
    if (offsets[v + 1] < offsets[v]) {
      return util::Status::Corruption("non-monotone offsets at node " +
                                      std::to_string(v) + ": " + path);
    }
    if (offsets[v + 1] - offsets[v] >
        std::numeric_limits<uint32_t>::max()) {
      return util::Status::Corruption("degree overflow at node " +
                                      std::to_string(v) + ": " + path);
    }
    NodeId prev = 0;
    bool first = true;
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const NodeId u = neighbors[i];
      if (u >= n) {
        return util::Status::Corruption("neighbor out of range at node " +
                                        std::to_string(v) + ": " + path);
      }
      if (u == v) {
        return util::Status::Corruption(
            "self-loop at node " + std::to_string(v) + ": " + path);
      }
      if (!first && u <= prev) {
        return util::Status::Corruption(
            "unsorted or duplicate neighbor range at node " +
            std::to_string(v) + ": " + path);
      }
      prev = u;
      first = false;
    }
  }
  const AttrConfig limit = NumNodeConfigs(static_cast<int>(h.num_attributes));
  for (NodeId v = 0; v < n; ++v) {
    if (attrs[v] >= limit) {
      return util::Status::Corruption("attribute config out of range at node " +
                                      std::to_string(v) + ": " + path);
    }
  }
  return util::Status::OK();
}

std::string At(const std::string& path, uint64_t line_no) {
  return " at " + path + ":" + std::to_string(line_no);
}

// Reads the "n <count> w <width>" attribute header; *line_no advances to
// the header's line. Validation errors match the text-loader idiom.
util::Status ReadAttrHeader(std::ifstream& in, const std::string& path,
                            uint64_t expected_nodes, uint64_t* line_no,
                            uint64_t* w) {
  std::string line;
  uint64_t n = 0;
  while (std::getline(in, line)) {
    ++*line_no;
    if (textio::IsSkippableLine(line)) continue;
    if (!textio::ParseAttrHeader(line, &n, w)) {
      return util::Status::IoError("bad attribute header" + At(path, *line_no));
    }
    if (n != expected_nodes) {
      return util::Status::IoError("attribute/edge node count mismatch" +
                                   At(path, *line_no));
    }
    if (*w > 20) {
      return util::Status::IoError("attribute count out of range [0, 20]: " +
                                   std::to_string(*w) + At(path, *line_no));
    }
    return util::Status::OK();
  }
  return util::Status::IoError("empty attribute file: " + path);
}

// Error-path helper: finds the line of the `which`-th occurrence (1-based)
// of the undirected edge {a, b} so duplicate reports can cite the exact
// offending line. Returns 0 when not found (file changed underneath us).
uint64_t FindEdgeOccurrenceLine(const std::string& path, uint64_t a,
                                uint64_t b, int which) {
  std::ifstream in(path);
  std::string line;
  uint64_t line_no = 0;
  bool have_header = false;
  int seen = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (textio::IsSkippableLine(line)) continue;
    if (!have_header) {
      have_header = true;
      continue;
    }
    uint64_t u = 0, v = 0;
    if (!textio::ParseTwoUints(line, &u, &v)) continue;
    if ((u == a && v == b) || (u == b && v == a)) {
      if (++seen == which) return line_no;
    }
  }
  return 0;
}

}  // namespace

bool IsBinaryGraphFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[sizeof(kBinaryGraphMagic)];
  if (!in.read(magic, sizeof(magic))) return false;
  return std::memcmp(magic, kBinaryGraphMagic, sizeof(magic)) == 0;
}

util::Status WriteBinaryGraph(const AttributedGraph& g,
                              const std::string& path,
                              const BinaryGraphOptions& options) {
  if (!ValidPageSize(options.page_size)) {
    return util::Status::InvalidArgument(
        "page size must be a power of two >= 4096, got " +
        std::to_string(options.page_size));
  }
  const NodeId n = g.num_nodes();
  BinaryGraphHeader h =
      MakeHeader(n, g.num_edges(),
                 static_cast<uint32_t>(g.num_attributes()), options.page_size);
  if (auto st = util::CheckFault("container.create"); !st.ok()) return st;
  auto mapped = util::MappedFile::CreateReadWrite(path, h.file_bytes);
  if (!mapped.ok()) return mapped.status();
  util::MappedFile file = std::move(mapped).value();
  uint8_t* data = file.mutable_data();

  uint64_t* offsets = reinterpret_cast<uint64_t*>(data + h.offsets.offset);
  NodeId* neighbors = reinterpret_cast<NodeId*>(data + h.neighbors.offset);
  AttrConfig* attrs = reinterpret_cast<AttrConfig*>(data + h.attributes.offset);

  offsets[0] = 0;
  for (NodeId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + g.structure().Degree(v);
  }
  // Neighbor ranges are copied and sorted *inside the mapping*: the file
  // itself is the scratch space, so writing never costs O(m) heap.
  for (NodeId v = 0; v < n; ++v) {
    const std::vector<NodeId>& adj = g.structure().Neighbors(v);
    NodeId* out = neighbors + offsets[v];
    std::copy(adj.begin(), adj.end(), out);
    std::sort(out, out + adj.size());
  }
  if (n > 0) {
    std::memcpy(attrs, g.attributes().data(), h.attributes.bytes);
  }
  FinalizeChecksums(data, &h);
  if (auto st = util::CheckFault("container.sync"); !st.ok()) return st;
  return file.Sync();
}

util::Result<BinaryGraphInfo> ConvertTextToBinary(
    const std::string& text_path, const std::string& bin_path,
    const ConvertOptions& options) {
  if (!ValidPageSize(options.binary.page_size)) {
    return util::Status::InvalidArgument(
        "page size must be a power of two >= 4096, got " +
        std::to_string(options.binary.page_size));
  }
  auto resolved = ResolveTextGraphPaths(text_path);
  if (!resolved.ok()) return resolved.status();
  const TextGraphPaths& paths = resolved.value();

  // Pass 1: count degrees (the only O(n) heap state) and validate every
  // edge line, so pass 2 can stream endpoints straight into the mapping.
  std::ifstream in(paths.edges);
  if (!in.is_open()) {
    return util::Status::IoError("cannot open for reading: " + paths.edges);
  }
  std::string line;
  uint64_t line_no = 0;
  uint64_t n = 0;
  bool have_header = false;
  std::vector<uint32_t> degrees;
  uint64_t num_edges = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (textio::IsSkippableLine(line)) continue;
    if (!have_header) {
      if (!textio::ParseEdgeHeader(line, &n)) {
        return util::Status::IoError("bad edge-list header" +
                                     At(paths.edges, line_no));
      }
      if (n > std::numeric_limits<NodeId>::max()) {
        return util::Status::IoError("node count overflows NodeId" +
                                     At(paths.edges, line_no));
      }
      degrees.assign(n, 0);
      have_header = true;
      continue;
    }
    uint64_t u = 0, v = 0;
    if (!textio::ParseTwoUints(line, &u, &v)) {
      return util::Status::IoError("bad edge" + At(paths.edges, line_no));
    }
    if (u == v) {
      return util::Status::IoError("self-loop" + At(paths.edges, line_no));
    }
    if (u >= n || v >= n) {
      return util::Status::IoError("edge out of range" +
                                   At(paths.edges, line_no));
    }
    if (degrees[u] == std::numeric_limits<uint32_t>::max() ||
        degrees[v] == std::numeric_limits<uint32_t>::max()) {
      return util::Status::IoError("degree overflow" + At(paths.edges, line_no));
    }
    ++degrees[u];
    ++degrees[v];
    ++num_edges;
  }
  if (!have_header) {
    return util::Status::IoError("missing edge-list header in " + paths.edges);
  }
  in.close();

  uint64_t w = 0;
  std::ifstream attrs_in;
  uint64_t attrs_line_no = 0;
  if (paths.has_attrs) {
    attrs_in.open(paths.attrs);
    if (!attrs_in.is_open()) {
      return util::Status::IoError("cannot open for reading: " + paths.attrs);
    }
    if (auto st = ReadAttrHeader(attrs_in, paths.attrs, n, &attrs_line_no, &w);
        !st.ok()) {
      return st;
    }
  }

  BinaryGraphHeader h = MakeHeader(n, num_edges, static_cast<uint32_t>(w),
                                   options.binary.page_size);
  if (auto st = util::CheckFault("container.create"); !st.ok()) return st;
  auto mapped = util::MappedFile::CreateReadWrite(bin_path, h.file_bytes);
  if (!mapped.ok()) return mapped.status();
  util::MappedFile file = std::move(mapped).value();
  uint8_t* data = file.mutable_data();
  uint64_t* offsets = reinterpret_cast<uint64_t*>(data + h.offsets.offset);
  NodeId* neighbors = reinterpret_cast<NodeId*>(data + h.neighbors.offset);
  AttrConfig* attrs = reinterpret_cast<AttrConfig*>(data + h.attributes.offset);

  offsets[0] = 0;
  for (uint64_t v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + degrees[v];
  }
  degrees.clear();
  degrees.shrink_to_fit();

  // Pass 2: place both endpoints of each edge through a per-node write
  // cursor, directly into the mapped neighbors section.
  std::vector<uint64_t> cursor(offsets, offsets + n);
  in.open(paths.edges);
  if (!in.is_open()) {
    return util::Status::IoError("cannot open for reading: " + paths.edges);
  }
  line_no = 0;
  have_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (textio::IsSkippableLine(line)) continue;
    if (!have_header) {
      have_header = true;
      continue;
    }
    uint64_t u = 0, v = 0;
    if (!textio::ParseTwoUints(line, &u, &v) || u >= n || v >= n || u == v ||
        cursor[u] >= offsets[u + 1] || cursor[v] >= offsets[v + 1]) {
      return util::Status::IoError("edge file changed during conversion" +
                                   At(paths.edges, line_no));
    }
    neighbors[cursor[u]++] = static_cast<NodeId>(v);
    neighbors[cursor[v]++] = static_cast<NodeId>(u);
  }
  for (uint64_t v = 0; v < n; ++v) {
    if (cursor[v] != offsets[v + 1]) {
      return util::Status::IoError("edge file changed during conversion: " +
                                   paths.edges);
    }
  }
  cursor.clear();
  cursor.shrink_to_fit();

  // Sort each range in place in the mapping; a duplicate edge shows up as
  // adjacent equal endpoints.
  for (uint64_t v = 0; v < n; ++v) {
    NodeId* first = neighbors + offsets[v];
    NodeId* last = neighbors + offsets[v + 1];
    std::sort(first, last);
    const NodeId* dup = std::adjacent_find(first, last);
    if (dup != last) {
      const uint64_t dup_line =
          FindEdgeOccurrenceLine(paths.edges, v, *dup, 2);
      return util::Status::IoError(
          "duplicate edge" +
          (dup_line > 0 ? At(paths.edges, dup_line)
                        : (" between " + std::to_string(v) + " and " +
                           std::to_string(*dup) + " in " + paths.edges)));
    }
  }

  // Attribute pass: stream configs into the mapped section (ftruncate
  // zero-fill already matches the w = 0 / missing-file default).
  if (paths.has_attrs) {
    const AttrConfig limit = NumNodeConfigs(static_cast<int>(w));
    while (std::getline(attrs_in, line)) {
      ++attrs_line_no;
      if (textio::IsSkippableLine(line)) continue;
      uint64_t v = 0, config = 0;
      if (!textio::ParseTwoUints(line, &v, &config)) {
        return util::Status::IoError("bad attribute line" +
                                     At(paths.attrs, attrs_line_no));
      }
      if (v >= n) {
        return util::Status::IoError("attribute node id out of range" +
                                     At(paths.attrs, attrs_line_no));
      }
      if (config >= limit) {
        return util::Status::IoError("attribute config out of range" +
                                     At(paths.attrs, attrs_line_no));
      }
      attrs[v] = static_cast<AttrConfig>(config);
    }
  }

  FinalizeChecksums(data, &h);
  if (auto st = util::CheckFault("container.sync"); !st.ok()) return st;
  if (auto st = file.Sync(); !st.ok()) return st;

  BinaryGraphInfo info;
  info.format_version = h.version;
  info.page_size = h.page_size;
  info.num_nodes = h.num_nodes;
  info.num_edges = h.num_edges;
  info.num_attributes = h.num_attributes;
  info.num_data_pages = h.num_data_pages;
  info.file_bytes = h.file_bytes;
  info.checksums_ok = true;
  return info;
}

util::Result<AttributedCsrGraph> OpenBinarySnapshot(const std::string& path,
                                                    const OpenOptions& options) {
  auto mapped = util::MappedFile::OpenReadOnly(path);
  if (!mapped.ok()) return mapped.status();
  auto file =
      std::make_shared<util::MappedFile>(std::move(mapped).value());
  const uint8_t* data = file->data();
  BinaryGraphHeader h;
  if (auto st = VerifyAndParseHeader(data, file->size(), path, &h,
                                     /*check_crc=*/true);
      !st.ok()) {
    return st;
  }
  if (options.verify_checksums) {
    if (auto st = VerifyPageChecksums(data, h, path); !st.ok()) return st;
  }
  const uint64_t* offsets =
      reinterpret_cast<const uint64_t*>(data + h.offsets.offset);
  const NodeId* neighbors =
      reinterpret_cast<const NodeId*>(data + h.neighbors.offset);
  const AttrConfig* attrs =
      reinterpret_cast<const AttrConfig*>(data + h.attributes.offset);
  if (options.validate) {
    if (auto st = ValidateSemantics(h, offsets, neighbors, attrs, path);
        !st.ok()) {
      return st;
    }
  }
  CsrGraph structure =
      CsrGraph::FromExternal(offsets, neighbors, static_cast<NodeId>(h.num_nodes),
                             h.num_edges, file);
  return AttributedCsrGraph::FromExternal(
      std::move(structure), attrs, static_cast<int>(h.num_attributes), file);
}

util::Result<BinaryGraphInfo> ReadBinaryGraphInfo(const std::string& path) {
  auto mapped = util::MappedFile::OpenReadOnly(path);
  if (!mapped.ok()) return mapped.status();
  const util::MappedFile file = std::move(mapped).value();
  BinaryGraphHeader h;
  if (auto st = VerifyAndParseHeader(file.data(), file.size(), path, &h,
                                     /*check_crc=*/true);
      !st.ok()) {
    return st;
  }
  BinaryGraphInfo info;
  info.format_version = h.version;
  info.page_size = h.page_size;
  info.num_nodes = h.num_nodes;
  info.num_edges = h.num_edges;
  info.num_attributes = h.num_attributes;
  info.num_data_pages = h.num_data_pages;
  info.file_bytes = h.file_bytes;
  const util::Status sweep = VerifyPageChecksums(file.data(), h, path);
  info.checksums_ok = sweep.ok();
  if (!sweep.ok()) info.checksum_error = sweep.ToString();
  return info;
}

util::Status RecomputeBinaryGraphChecksums(const std::string& path) {
  auto mapped = util::MappedFile::OpenReadWrite(path);
  if (!mapped.ok()) return mapped.status();
  util::MappedFile file = std::move(mapped).value();
  BinaryGraphHeader h;
  // Structural checks still apply (the layout must be trustworthy before
  // we write through it), but stale CRCs are exactly what we're fixing.
  if (auto st = VerifyAndParseHeader(file.data(), file.size(), path, &h,
                                     /*check_crc=*/false);
      !st.ok()) {
    return st;
  }
  FinalizeChecksums(file.mutable_data(), &h);
  return file.Sync();
}

AttributedGraph MaterializeSnapshot(const AttributedCsrGraph& snapshot) {
  Graph g(snapshot.num_nodes());
  snapshot.structure.ForEachEdge([&](NodeId u, NodeId v) { g.AddEdge(u, v); });
  AttributedGraph out(std::move(g), snapshot.num_attributes);
  for (NodeId v = 0; v < snapshot.num_nodes(); ++v) {
    out.set_attribute(v, snapshot.attribute(v));
  }
  return out;
}

}  // namespace agmdp::graph

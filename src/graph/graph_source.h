// GraphSource — the one entry point for graph ingestion.
//
// Every consumer (CLI, sweep engine, server, bench, examples) used to
// call the text readers directly; adding the binary container would have
// forked every call site into a format switch. GraphSource centralizes
// that: Open(path) sniffs the first bytes and loads either
//
//   * a binary container (.agmbin) — zero-copy: the snapshot's CSR
//     arrays alias the checksum-verified mmap, or
//   * a text graph — `<prefix>`, `<prefix>.edges` or a bare edge-list
//     file, with `<prefix>.attrs` optional (missing means w = 0) —
//     parsed once into an owned snapshot.
//
// Consumers that only *analyze* use snapshot() (works identically for
// both formats); consumers that must mutate or re-serialize call
// Materialize() for a mutable AttributedGraph copy.
//
// The write-side counterpart WriteGraph(g, path) routes on the file
// extension: `.agmbin` writes the container, anything else writes the
// text pair — so "produce binary output" is a file-name choice, not an
// API choice, for generate/sample/synthesize.
#pragma once

#include <string>

#include "src/graph/attributed_graph.h"
#include "src/graph/csr.h"
#include "src/util/status.h"

namespace agmdp::graph {

class GraphSource {
 public:
  enum class Format { kText, kBinary };

  /// Opens a graph from disk, auto-detecting the format by magic bytes.
  /// Binary containers are checksum-verified and validated; text inputs
  /// are parsed with line-numbered errors. NotFound when nothing usable
  /// exists at `path`.
  static util::Result<GraphSource> Open(const std::string& path);

  Format format() const { return format_; }
  const std::string& path() const { return path_; }

  /// The immutable snapshot every analytics kernel consumes. For binary
  /// sources this aliases the mapping (no copy); for text sources it owns
  /// the parsed arrays.
  const AttributedCsrGraph& snapshot() const { return snapshot_; }

  /// A mutable adjacency-list copy (adjacency rebuilt in ascending
  /// neighbor order for binary sources). O(n + m) time and heap.
  AttributedGraph Materialize() const;

 private:
  GraphSource() = default;

  Format format_ = Format::kText;
  std::string path_;
  AttributedCsrGraph snapshot_;
};

/// Unified graph writer: `path` ending in ".agmbin" writes the binary
/// container, anything else writes the `<path>.edges` / `<path>.attrs`
/// text pair.
util::Status WriteGraph(const AttributedGraph& g, const std::string& path);

/// Derives the i-th output path of a multi-sample batch, keeping the
/// format routing intact: "syn" -> "syn_3", but "syn.agmbin" ->
/// "syn_3.agmbin" (the index lands *before* the extension so every
/// sample stays a binary container).
std::string NumberedGraphPath(const std::string& path, uint64_t index);

}  // namespace agmdp::graph

// k-star counting. A k-star is a center node with k chosen neighbors, so a
// node of degree d contributes C(d, k) stars. Together with triangles these
// are the standard subgraph statistics of the DP graph-analysis literature
// (the Ladder framework of Zhang et al. covers both); the DP estimator
// lives in dp/ladder_mechanism.h.
#pragma once

#include <cstdint>

#include "src/graph/graph.h"

namespace agmdp::graph {

/// Binomial coefficient C(n, k) saturating at UINT64_MAX (no overflow UB).
uint64_t BinomialOrSaturate(uint64_t n, uint64_t k);

/// Number of k-stars: sum over nodes of C(degree, k). Requires k >= 1.
/// (k = 2 equals the wedge count.)
uint64_t CountKStars(const Graph& g, uint32_t k);

}  // namespace agmdp::graph

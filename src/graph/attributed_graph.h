// Attributed graph G = (N, E, X): an undirected simple graph plus a
// bit-packed binary attribute vector per node (Section 2.1 of the paper).
#pragma once

#include <vector>

#include "src/graph/attribute_encoding.h"
#include "src/graph/graph.h"
#include "src/util/status.h"

namespace agmdp::graph {

/// \brief Graph with w binary attributes per node.
class AttributedGraph {
 public:
  AttributedGraph() : num_attributes_(0) {}

  /// Creates a graph with `num_nodes` nodes, all attribute vectors zero.
  AttributedGraph(NodeId num_nodes, int num_attributes);

  /// Wraps an existing structure; attribute vectors start at zero.
  AttributedGraph(Graph graph, int num_attributes);

  const Graph& structure() const { return graph_; }
  Graph& structure() { return graph_; }

  int num_attributes() const { return num_attributes_; }
  NodeId num_nodes() const { return graph_.num_nodes(); }
  uint64_t num_edges() const { return graph_.num_edges(); }

  AttrConfig attribute(NodeId v) const { return attrs_[v]; }
  void set_attribute(NodeId v, AttrConfig value);

  const std::vector<AttrConfig>& attributes() const { return attrs_; }

  /// Replaces all attribute vectors. Returns InvalidArgument on size or
  /// range mismatch.
  util::Status SetAttributes(std::vector<AttrConfig> attrs);

 private:
  Graph graph_;
  std::vector<AttrConfig> attrs_;
  int num_attributes_;
};

}  // namespace agmdp::graph

// Dynamic undirected simple graph.
//
// The representation is tuned for the workloads in this library:
//   * neighbor lists as vectors       -> O(1) uniform-random neighbor
//     sampling (TriCycLe's friend-of-a-friend proposals),
//   * a flat packed-edge hash set     -> O(1) HasEdge with no per-bucket
//     allocation or pointer chase (util::FlatEdgeSet; the sampler hot path
//     calls this once per proposal), and
//   * swap-erase removal              -> O(degree) edge deletion, cheap at
//     social-network average degrees.
//
// The node set is fixed at construction (the paper treats n as public);
// self-loops and parallel edges are rejected, matching the paper's "simple
// graph" setting.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/util/flat_edge_set.h"
#include "src/util/status.h"

namespace agmdp::graph {

using NodeId = uint32_t;

/// An undirected edge; normalized so that u <= v.
struct Edge {
  NodeId u;
  NodeId v;

  Edge() : u(0), v(0) {}
  Edge(NodeId a, NodeId b) : u(a < b ? a : b), v(a < b ? b : a) {}

  bool operator==(const Edge& o) const { return u == o.u && v == o.v; }
  bool operator<(const Edge& o) const {
    return u != o.u ? u < o.u : v < o.v;
  }
};

/// Packs an edge into a single 64-bit key (u in high bits).
inline uint64_t PackEdge(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

/// Edge capacity of a simple graph over n nodes: n * (n - 1) / 2,
/// overflow-free for any 32-bit n.
inline uint64_t MaxPossibleEdges(NodeId num_nodes) {
  const uint64_t n = num_nodes;
  if (n < 2) return 0;
  return (n % 2 == 0) ? (n / 2) * (n - 1) : n * ((n - 1) / 2);
}

/// \brief Undirected simple graph over nodes {0, ..., n-1}.
class Graph {
 public:
  Graph() = default;

  /// Creates an empty graph with `num_nodes` isolated nodes.
  explicit Graph(NodeId num_nodes);

  NodeId num_nodes() const { return static_cast<NodeId>(adj_.size()); }
  uint64_t num_edges() const { return num_edges_; }

  /// Adds edge {u, v}. Returns false (and leaves the graph unchanged) if the
  /// edge is a self-loop, already present, or an endpoint is out of range.
  bool AddEdge(NodeId u, NodeId v);

  /// Removes edge {u, v}. Returns false if the edge is not present.
  bool RemoveEdge(NodeId u, NodeId v);

  bool HasEdge(NodeId u, NodeId v) const {
    if (u == v || u >= num_nodes() || v >= num_nodes()) return false;
    return edge_set_.Contains(PackEdge(u, v));
  }

  uint32_t Degree(NodeId v) const {
    return static_cast<uint32_t>(adj_[v].size());
  }

  /// Neighbor list of v (unordered; stable between mutations).
  const std::vector<NodeId>& Neighbors(NodeId v) const { return adj_[v]; }

  /// Number of common neighbors of u and v, i.e. |Γ(u) ∩ Γ(v)|. This equals
  /// the number of triangles the edge {u, v} participates in (or would
  /// create).
  uint32_t CommonNeighborCount(NodeId u, NodeId v) const;

  /// Maximum degree over all nodes (0 for an empty graph).
  uint32_t MaxDegree() const;

  /// All edges in canonical (lexicographically sorted) order. Definition 2's
  /// truncation operator and deterministic iteration rely on this order.
  std::vector<Edge> CanonicalEdges() const;

  /// Invokes fn(u, v) once per edge with u < v, in adjacency order (not
  /// canonical order) — cheaper than CanonicalEdges when order is irrelevant.
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    for (NodeId u = 0; u < num_nodes(); ++u) {
      for (NodeId v : adj_[u]) {
        if (u < v) fn(u, v);
      }
    }
  }

  /// Removes all edges, keeping the node set.
  void ClearEdges();

  /// Pre-sizes the edge-set hash table for `expected_edges` insertions.
  /// The hint is clamped to the maximum possible simple-graph edge count,
  /// so callers may pass raw (even absurd) target knobs.
  void ReserveEdges(uint64_t expected_edges) {
    edge_set_.Reserve(static_cast<size_t>(
        std::min(expected_edges, MaxPossibleEdges(num_nodes()))));
  }

 private:
  std::vector<std::vector<NodeId>> adj_;
  util::FlatEdgeSet edge_set_;
  uint64_t num_edges_ = 0;
};

}  // namespace agmdp::graph

#include "src/graph/subgraph_counts.h"

#include <limits>

#include "src/util/check.h"

namespace agmdp::graph {

uint64_t BinomialOrSaturate(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  uint64_t result = 1;
  for (uint64_t i = 1; i <= k; ++i) {
    // result *= (n - k + i) / i, with overflow saturation.
    const uint64_t numerator = n - k + i;
    if (result > kMax / numerator) return kMax;
    result = result * numerator / i;
  }
  return result;
}

uint64_t CountKStars(const Graph& g, uint32_t k) {
  AGMDP_CHECK(k >= 1);
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  uint64_t total = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const uint64_t stars = BinomialOrSaturate(g.Degree(v), k);
    if (total > kMax - stars) return kMax;
    total += stars;
  }
  return total;
}

}  // namespace agmdp::graph

#include "src/graph/attribute_encoding.h"

namespace agmdp::graph {

std::pair<AttrConfig, AttrConfig> DecodeEdgeConfig(uint32_t index, int w) {
  const uint32_t k = NumNodeConfigs(w);
  AGMDP_CHECK(index < NumEdgeConfigs(w));
  // Row a covers k - a indices; walk rows until the index falls inside.
  // |Y^F_w| is at most ~500k for w <= 10, and decode is only used in tests
  // and table formatting, so the linear walk is fine.
  uint32_t a = 0;
  uint32_t remaining = index;
  while (remaining >= k - a) {
    remaining -= k - a;
    ++a;
  }
  return {a, a + remaining};
}

}  // namespace agmdp::graph

// Encoders f_w and F_w from the paper (Section 2.2).
//
// A node's w binary attributes are bit-packed into an AttrConfig; f_w is then
// the identity on {0, ..., 2^w - 1} (= the set Y_w). F_w maps the unordered
// pair of endpoint configurations of an edge to a triangular index in
// {0, ..., C(2^w + 1, 2) - 1} (= the set Y^F_w).
#pragma once

#include <cstdint>
#include <utility>

#include "src/util/check.h"

namespace agmdp::graph {

/// Bit-packed vector of w binary node attributes; bit j is attribute j.
using AttrConfig = uint32_t;

/// Number of node attribute configurations |Y_w| = 2^w. Requires 0<=w<=20
/// (beyond that the count tables would not fit in memory anyway).
inline uint32_t NumNodeConfigs(int w) {
  AGMDP_CHECK(w >= 0 && w <= 20);
  return 1u << w;
}

/// Number of edge attribute configurations |Y^F_w| = C(2^w + 1, 2), i.e. the
/// number of unordered pairs (with repetition) of node configurations.
inline uint32_t NumEdgeConfigs(int w) {
  uint64_t k = NumNodeConfigs(w);
  return static_cast<uint32_t>(k * (k + 1) / 2);
}

/// F_w: maps the unordered pair {a, b} to a triangular index. For a <= b the
/// index is a*K - a*(a-1)/2 + (b-a) where K = 2^w; symmetric in (a, b).
inline uint32_t EncodeEdgeConfig(AttrConfig a, AttrConfig b, int w) {
  const uint64_t k = NumNodeConfigs(w);
  AGMDP_CHECK(a < k && b < k);
  if (a > b) std::swap(a, b);
  const uint64_t ua = a;
  return static_cast<uint32_t>(ua * k - ua * (ua - 1) / 2 + (b - a));
}

/// Inverse of EncodeEdgeConfig; returns (a, b) with a <= b.
std::pair<AttrConfig, AttrConfig> DecodeEdgeConfig(uint32_t index, int w);

}  // namespace agmdp::graph

// Triangle and wedge counting.
//
// CountTriangles is the degree-ordered edge-iterator ("forward") algorithm,
// O(m^{3/2}); CountTrianglesBrute is the O(n^3) reference used in tests.
// MaxCommonNeighborCount supports the Ladder mechanism (dp/ladder_mechanism):
// the local sensitivity of the triangle count at an edge {u, v} is
// |Γ(u) ∩ Γ(v)|, so its maximum over all node pairs is the graph's local
// sensitivity.
// The CsrGraph overloads are the parallel snapshot kernels: forward
// adjacency ordered by (degree, id) rank for the triangle total, and
// merge-joins on sorted neighbor ranges (instead of hash probes) for the
// per-edge common-neighbor counts behind PerNodeTriangles. All counts are
// integers, so any static work partition reduces to the same result —
// bitwise-identical to the Graph path at every thread count (threads <= 0
// selects hardware concurrency).
#pragma once

#include <cstdint>

#include "src/graph/csr.h"
#include "src/graph/graph.h"
#include "src/util/status.h"

namespace agmdp::graph {

/// Exact triangle count n∆.
uint64_t CountTriangles(const Graph& g);
uint64_t CountTriangles(const CsrGraph& g, int threads = 1);

/// O(n^3) reference implementation (tests only; keep graphs tiny).
uint64_t CountTrianglesBrute(const Graph& g);

/// Number of wedges (paths of length two), n_W = sum_v C(d_v, 2).
uint64_t CountWedges(const Graph& g);
uint64_t CountWedges(const CsrGraph& g);

/// Per-node triangle participation counts (each triangle contributes one to
/// each of its three corners).
std::vector<uint64_t> PerNodeTriangles(const Graph& g);
std::vector<uint64_t> PerNodeTriangles(const CsrGraph& g, int threads = 1);

/// Exact max_{u != v} |Γ(u) ∩ Γ(v)| over all node pairs (only pairs at
/// distance <= 2 can have a nonzero count, so the scan enumerates wedges).
/// Returns FailedPrecondition if the wedge work exceeds `max_work` (callers
/// then fall back to the degree bound; see dp/ladder_mechanism.h).
util::Result<uint32_t> MaxCommonNeighborCount(const Graph& g,
                                              uint64_t max_work);

}  // namespace agmdp::graph

#include "src/graph/attributed_graph.h"

#include <utility>

#include "src/util/check.h"

namespace agmdp::graph {

AttributedGraph::AttributedGraph(NodeId num_nodes, int num_attributes)
    : graph_(num_nodes), attrs_(num_nodes, 0), num_attributes_(num_attributes) {
  AGMDP_CHECK(num_attributes >= 0 && num_attributes <= 20);
}

AttributedGraph::AttributedGraph(Graph graph, int num_attributes)
    : graph_(std::move(graph)),
      attrs_(graph_.num_nodes(), 0),
      num_attributes_(num_attributes) {
  AGMDP_CHECK(num_attributes >= 0 && num_attributes <= 20);
}

void AttributedGraph::set_attribute(NodeId v, AttrConfig value) {
  AGMDP_CHECK(v < graph_.num_nodes());
  AGMDP_CHECK(value < NumNodeConfigs(num_attributes_));
  attrs_[v] = value;
}

util::Status AttributedGraph::SetAttributes(std::vector<AttrConfig> attrs) {
  if (attrs.size() != graph_.num_nodes()) {
    return util::Status::InvalidArgument(
        "attribute vector count does not match node count");
  }
  const AttrConfig limit = NumNodeConfigs(num_attributes_);
  for (AttrConfig a : attrs) {
    if (a >= limit) {
      return util::Status::InvalidArgument(
          "attribute configuration out of range for w attributes");
    }
  }
  attrs_ = std::move(attrs);
  return util::Status::OK();
}

}  // namespace agmdp::graph

// Immutable CSR (compressed sparse row) snapshot of a Graph.
//
// The mutable adjacency-list Graph is tuned for TriCycLe's edge churn
// (O(1) random neighbor sampling, hash-set edge oracle, swap-erase
// removal); every utility metric, however, is computed on an *immutable*
// released graph, where pointer-chasing vectors and hash probes dominate
// the cost of full-scale sweeps. CsrGraph trades all mutability for two
// contiguous arrays — offsets and sorted neighbor ranges — giving
// cache-friendly sequential scans, O(log d) HasEdge via binary search, and
// merge-join set intersections on sorted ranges instead of hash probes.
//
// The arrays are *views*: a snapshot either owns them (FromGraph copies
// out of the adjacency lists) or borrows them from external storage
// (FromExternal — the mmap-backed binary graph container,
// graph/graph_container.h, points the views straight into the mapped
// file and parks the mapping in a shared_ptr owner). Every kernel reads
// through the same two pointers either way, so analytics on an mmap
// snapshot are bitwise-identical to the in-RAM path by construction.
//
// Usage contract: build one snapshot per released graph
// (CsrGraph::FromGraph or GraphSource::Open), hand it to every analytics
// kernel, and keep the mutable Graph only for generation. The snapshot is
// a value type; copying copies owned arrays and shares external backing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/graph/attributed_graph.h"
#include "src/graph/graph.h"

namespace agmdp::graph {

/// Contiguous, ascending-sorted neighbor range of one node.
struct NeighborRange {
  const NodeId* first = nullptr;
  const NodeId* last = nullptr;

  const NodeId* begin() const { return first; }
  const NodeId* end() const { return last; }
  size_t size() const { return static_cast<size_t>(last - first); }
  bool empty() const { return first == last; }
};

/// \brief Immutable CSR snapshot of an undirected simple graph.
class CsrGraph {
 public:
  CsrGraph() = default;
  CsrGraph(const CsrGraph& other);
  CsrGraph& operator=(const CsrGraph& other);
  CsrGraph(CsrGraph&&) noexcept = default;
  CsrGraph& operator=(CsrGraph&&) noexcept = default;

  /// Builds an owning snapshot: one pass over the adjacency lists plus a
  /// sort of each neighbor range (ascending by node id).
  static CsrGraph FromGraph(const Graph& g);

  /// Wraps externally owned arrays without copying: `offsets` has
  /// num_nodes + 1 entries, `neighbors` has 2 * num_edges, and `owner`
  /// keeps the backing storage (e.g. a util::MappedFile) alive for the
  /// lifetime of every copy of the snapshot. The caller is responsible
  /// for the CSR invariants (monotone offsets, sorted simple-graph
  /// ranges) — the binary container reader validates them before calling.
  /// Degrees and the max degree are derived here (owned, O(n) RAM).
  static CsrGraph FromExternal(const uint64_t* offsets,
                               const NodeId* neighbors, NodeId num_nodes,
                               uint64_t num_edges,
                               std::shared_ptr<const void> owner);

  NodeId num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return num_edges_; }

  uint32_t Degree(NodeId v) const { return degrees_[v]; }
  /// Precomputed degree array, indexed by node id.
  const std::vector<uint32_t>& degrees() const { return degrees_; }
  uint32_t MaxDegree() const { return max_degree_; }

  /// Sorted neighbor range of v.
  NeighborRange Neighbors(NodeId v) const {
    return {neighbors_ + offsets_[v], neighbors_ + offsets_[v + 1]};
  }

  /// O(log d) membership test: binary search in the smaller endpoint's
  /// sorted neighbor range. Same domain semantics as Graph::HasEdge
  /// (self-loops and out-of-range endpoints are absent).
  bool HasEdge(NodeId u, NodeId v) const;

  /// |Γ(u) ∩ Γ(v)| via a merge-join of the two sorted ranges — the number
  /// of triangles through the edge {u, v}. Agrees exactly with
  /// Graph::CommonNeighborCount.
  uint32_t CommonNeighborCount(NodeId u, NodeId v) const;

  /// True when the snapshot reads external (e.g. memory-mapped) storage.
  bool is_external() const { return external_owner_ != nullptr; }

  /// Invokes fn(u, v) once per edge with u < v, in canonical
  /// (lexicographically sorted) order — CSR neighbor ranges are sorted, so
  /// the forward scan *is* the canonical order.
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    const NodeId n = num_nodes();
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v : Neighbors(u)) {
        if (v > u) fn(u, v);
      }
    }
  }

 private:
  /// Derives degrees_/max_degree_ from the offset view and points the
  /// views at whichever storage this snapshot carries.
  void FinishFromViews();

  // Views every accessor reads through (owned or external storage).
  const uint64_t* offsets_ = nullptr;  // n + 1 range bounds into neighbors
  const NodeId* neighbors_ = nullptr;  // 2m endpoints, sorted within a node

  // Owned backing (FromGraph) — empty for external snapshots.
  std::vector<uint64_t> owned_offsets_;
  std::vector<NodeId> owned_neighbors_;
  // External backing (FromExternal) — shared across copies.
  std::shared_ptr<const void> external_owner_;

  std::vector<uint32_t> degrees_;  // offsets_[v+1] - offsets_[v], cached
  NodeId num_nodes_ = 0;
  uint32_t max_degree_ = 0;
  uint64_t num_edges_ = 0;
};

/// \brief Immutable attributed snapshot: CSR structure plus the node
/// attribute vector — owned (copied out of the AttributedGraph) or a view
/// into the same external storage as the structure.
struct AttributedCsrGraph {
  static AttributedCsrGraph FromGraph(const AttributedGraph& g);
  /// External-attributes counterpart of CsrGraph::FromExternal: `attrs`
  /// has structure.num_nodes() entries inside storage kept alive by
  /// `owner`.
  static AttributedCsrGraph FromExternal(CsrGraph structure,
                                         const AttrConfig* attrs,
                                         int num_attributes,
                                         std::shared_ptr<const void> owner);

  AttributedCsrGraph() = default;
  AttributedCsrGraph(const AttributedCsrGraph& other);
  AttributedCsrGraph& operator=(const AttributedCsrGraph& other);
  AttributedCsrGraph(AttributedCsrGraph&&) noexcept = default;
  AttributedCsrGraph& operator=(AttributedCsrGraph&&) noexcept = default;

  CsrGraph structure;
  int num_attributes = 0;

  NodeId num_nodes() const { return structure.num_nodes(); }
  uint64_t num_edges() const { return structure.num_edges(); }
  AttrConfig attribute(NodeId v) const { return attributes_[v]; }
  /// Contiguous attribute array (num_nodes() entries; may be null for an
  /// empty graph).
  const AttrConfig* attributes_data() const { return attributes_; }

 private:
  const AttrConfig* attributes_ = nullptr;
  std::vector<AttrConfig> owned_attributes_;
  std::shared_ptr<const void> external_owner_;
};

}  // namespace agmdp::graph

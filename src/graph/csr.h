// Immutable CSR (compressed sparse row) snapshot of a Graph.
//
// The mutable adjacency-list Graph is tuned for TriCycLe's edge churn
// (O(1) random neighbor sampling, hash-set edge oracle, swap-erase
// removal); every utility metric, however, is computed on an *immutable*
// released graph, where pointer-chasing vectors and hash probes dominate
// the cost of full-scale sweeps. CsrGraph trades all mutability for two
// contiguous arrays — offsets and sorted neighbor ranges — giving
// cache-friendly sequential scans, O(log d) HasEdge via binary search, and
// merge-join set intersections on sorted ranges instead of hash probes.
//
// Usage contract: build one snapshot per released graph
// (CsrGraph::FromGraph), hand it to every analytics kernel, and keep the
// mutable Graph only for generation. The snapshot is a value type; copying
// copies the arrays.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/graph/attributed_graph.h"
#include "src/graph/graph.h"

namespace agmdp::graph {

/// Contiguous, ascending-sorted neighbor range of one node.
struct NeighborRange {
  const NodeId* first = nullptr;
  const NodeId* last = nullptr;

  const NodeId* begin() const { return first; }
  const NodeId* end() const { return last; }
  size_t size() const { return static_cast<size_t>(last - first); }
  bool empty() const { return first == last; }
};

/// \brief Immutable CSR snapshot of an undirected simple graph.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds the snapshot: one pass over the adjacency lists plus a sort of
  /// each neighbor range (ascending by node id).
  static CsrGraph FromGraph(const Graph& g);

  NodeId num_nodes() const {
    return offsets_.empty() ? 0 : static_cast<NodeId>(offsets_.size() - 1);
  }
  uint64_t num_edges() const { return num_edges_; }

  uint32_t Degree(NodeId v) const { return degrees_[v]; }
  /// Precomputed degree array, indexed by node id.
  const std::vector<uint32_t>& degrees() const { return degrees_; }
  uint32_t MaxDegree() const { return max_degree_; }

  /// Sorted neighbor range of v.
  NeighborRange Neighbors(NodeId v) const {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  /// O(log d) membership test: binary search in the smaller endpoint's
  /// sorted neighbor range. Same domain semantics as Graph::HasEdge
  /// (self-loops and out-of-range endpoints are absent).
  bool HasEdge(NodeId u, NodeId v) const;

  /// |Γ(u) ∩ Γ(v)| via a merge-join of the two sorted ranges — the number
  /// of triangles through the edge {u, v}. Agrees exactly with
  /// Graph::CommonNeighborCount.
  uint32_t CommonNeighborCount(NodeId u, NodeId v) const;

  /// Invokes fn(u, v) once per edge with u < v, in canonical
  /// (lexicographically sorted) order — CSR neighbor ranges are sorted, so
  /// the forward scan *is* the canonical order.
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    const NodeId n = num_nodes();
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v : Neighbors(u)) {
        if (v > u) fn(u, v);
      }
    }
  }

 private:
  std::vector<uint64_t> offsets_;   // n + 1 range bounds into neighbors_
  std::vector<NodeId> neighbors_;   // 2m endpoints, sorted within a node
  std::vector<uint32_t> degrees_;   // offsets_[v+1] - offsets_[v], cached
  uint32_t max_degree_ = 0;
  uint64_t num_edges_ = 0;
};

/// \brief Immutable attributed snapshot: CSR structure plus the node
/// attribute vector (already contiguous in AttributedGraph; copied so the
/// snapshot owns everything it reads).
struct AttributedCsrGraph {
  static AttributedCsrGraph FromGraph(const AttributedGraph& g);

  CsrGraph structure;
  std::vector<AttrConfig> attributes;
  int num_attributes = 0;

  NodeId num_nodes() const { return structure.num_nodes(); }
  uint64_t num_edges() const { return structure.num_edges(); }
  AttrConfig attribute(NodeId v) const { return attributes[v]; }
};

}  // namespace agmdp::graph

#include "src/graph/components.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/check.h"

namespace agmdp::graph {

std::vector<uint32_t> ConnectedComponents(const Graph& g,
                                          uint32_t* num_components) {
  const NodeId n = g.num_nodes();
  constexpr uint32_t kUnvisited = 0xffffffffu;
  std::vector<uint32_t> label(n, kUnvisited);
  std::vector<NodeId> stack;
  uint32_t next_label = 0;
  for (NodeId start = 0; start < n; ++start) {
    if (label[start] != kUnvisited) continue;
    label[start] = next_label;
    stack.push_back(start);
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : g.Neighbors(u)) {
        if (label[v] == kUnvisited) {
          label[v] = next_label;
          stack.push_back(v);
        }
      }
    }
    ++next_label;
  }
  if (num_components != nullptr) *num_components = next_label;
  return label;
}

bool IsConnected(const Graph& g) {
  uint32_t count = 0;
  ConnectedComponents(g, &count);
  return count <= 1;
}

std::vector<NodeId> LargestComponent(const Graph& g) {
  uint32_t count = 0;
  std::vector<uint32_t> label = ConnectedComponents(g, &count);
  if (count == 0) return {};
  std::vector<uint64_t> sizes(count, 0);
  for (uint32_t l : label) ++sizes[l];
  uint32_t best =
      static_cast<uint32_t>(std::max_element(sizes.begin(), sizes.end()) -
                            sizes.begin());
  std::vector<NodeId> nodes;
  nodes.reserve(sizes[best]);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (label[v] == best) nodes.push_back(v);
  }
  return nodes;
}

Graph InducedSubgraph(const Graph& g, const std::vector<NodeId>& nodes) {
  std::unordered_map<NodeId, NodeId> remap;
  remap.reserve(nodes.size());
  for (NodeId i = 0; i < nodes.size(); ++i) {
    AGMDP_CHECK(nodes[i] < g.num_nodes());
    bool inserted = remap.emplace(nodes[i], i).second;
    AGMDP_CHECK_MSG(inserted, "InducedSubgraph: duplicate node id");
  }
  Graph sub(static_cast<NodeId>(nodes.size()));
  for (NodeId i = 0; i < nodes.size(); ++i) {
    for (NodeId v : g.Neighbors(nodes[i])) {
      auto it = remap.find(v);
      if (it != remap.end() && i < it->second) sub.AddEdge(i, it->second);
    }
  }
  return sub;
}

AttributedGraph InducedSubgraph(const AttributedGraph& g,
                                const std::vector<NodeId>& nodes) {
  AttributedGraph sub(InducedSubgraph(g.structure(), nodes),
                      g.num_attributes());
  for (NodeId i = 0; i < nodes.size(); ++i) {
    sub.set_attribute(i, g.attribute(nodes[i]));
  }
  return sub;
}

}  // namespace agmdp::graph

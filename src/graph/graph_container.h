// Single-file, paged, checksummed binary graph container (".agmbin").
//
// Motivation: the text edge-list loader re-parses and re-canonicalizes an
// entire graph on every open — minutes for the full-scale datasets the
// sweep harness replays dozens of times. The container stores the CSR
// arrays the analytics kernels actually read, so opening a graph is one
// mmap plus a checksum sweep, and the resulting AttributedCsrGraph points
// straight into the mapping (no parse, no copy, bitwise-identical
// analytics to the in-RAM FromGraph path).
//
// File layout (little-endian, all sections page-aligned):
//
//   page 0      BinaryGraphHeader (128 bytes) + zero padding
//   offsets     uint64[num_nodes + 1]   CSR range bounds
//   neighbors   uint32[2 * num_edges]   sorted endpoints per node
//   attributes  uint32[num_nodes]       bit-packed configs (present even
//                                       when num_attributes == 0, so the
//                                       mmap view matches FromGraph's
//                                       zero-filled vector bitwise)
//   page table  uint32[num_data_pages]  CRC32C per data page
//
// The "data region" is every page from the end of page 0 through the
// (page-padded) end of the attributes section; each data page carries a
// CRC32C in the trailing table, the table carries its own CRC, and the
// header carries a CRC over its first 124 bytes. Verification at open is
// ordered so each failure mode maps to a distinct typed Status:
//   bad magic / truncation / bogus bounds  -> Corruption
//   unknown version or byte order          -> VersionMismatch
//   any CRC failure                        -> ChecksumMismatch
//
// Version policy: kBinaryGraphVersion bumps on any layout change; readers
// accept exactly the current version (re-convert with `agmdp convert`).
// The version check deliberately precedes the header CRC so a file from a
// newer tool reports VersionMismatch, not ChecksumMismatch.
#pragma once

#include <cstdint>
#include <string>

#include "src/graph/attributed_graph.h"
#include "src/graph/csr.h"
#include "src/util/status.h"

namespace agmdp::graph {

/// First 8 bytes of every container file.
inline constexpr char kBinaryGraphMagic[8] = {'A', 'G', 'M', 'D',
                                              'P', 'B', 'I', 'N'};
/// Current (and only accepted) format version.
inline constexpr uint32_t kBinaryGraphVersion = 1;
/// Endianness tag stored in the header; a byte-swapped file reads back
/// the reversed constant and is rejected as VersionMismatch.
inline constexpr uint32_t kBinaryGraphEndianTag = 0x01020304u;
/// Canonical file extension; graph::WriteGraph routes on it.
inline constexpr char kBinaryGraphExtension[] = ".agmbin";

struct BinaryGraphOptions {
  /// Power of two, >= 4096. 64 KiB keeps the per-page table tiny (~64 KiB
  /// of table per 1 GiB of data) while bounding the blast radius of a
  /// checksum failure report.
  uint32_t page_size = 64 * 1024;
};

struct OpenOptions {
  /// Verify the per-page CRC table before trusting the mapping.
  bool verify_checksums = true;
  /// Re-check the CSR invariants (monotone offsets, sorted simple-graph
  /// ranges, attribute configs in range) — catches a semantically bogus
  /// file whose checksums are internally consistent.
  bool validate = true;
};

/// Header/summary facts about a container file (`agmdp info`).
struct BinaryGraphInfo {
  uint32_t format_version = 0;
  uint32_t page_size = 0;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint32_t num_attributes = 0;
  uint64_t num_data_pages = 0;
  uint64_t file_bytes = 0;
  /// Result of the full checksum sweep (ReadBinaryGraphInfo always runs
  /// it; a failure is reported here rather than as an error Status so
  /// `agmdp info` can still print the header of a damaged file).
  bool checksums_ok = false;
  std::string checksum_error;
};

/// True when `path` starts with the container magic (cheap sniff; false
/// for unreadable or short files).
bool IsBinaryGraphFile(const std::string& path);

/// Serializes an in-RAM attributed graph into a container file.
/// Byte-for-byte identical to converting the equivalent text pair.
util::Status WriteBinaryGraph(const AttributedGraph& g,
                              const std::string& path,
                              const BinaryGraphOptions& options = {});

struct ConvertOptions {
  BinaryGraphOptions binary;
};

/// Streaming text -> binary conversion. `text_path` names either a
/// `<prefix>` (with `<prefix>.edges` / optional `<prefix>.attrs`) or the
/// `.edges` file itself; a missing attribute file converts as w = 0.
/// Peak heap is O(num_nodes) — degree counts plus a write cursor — never
/// O(num_edges): neighbor endpoints stream straight into the read-write
/// mapping of the output file and are sorted in place there.
util::Result<BinaryGraphInfo> ConvertTextToBinary(
    const std::string& text_path, const std::string& bin_path,
    const ConvertOptions& options = {});

/// Maps a container file and wraps it as an AttributedCsrGraph whose
/// arrays alias the mapping (the returned snapshot and all copies keep
/// the mapping alive). Analytics over the result are bitwise-identical
/// to AttributedCsrGraph::FromGraph on the same graph.
util::Result<AttributedCsrGraph> OpenBinarySnapshot(
    const std::string& path, const OpenOptions& options = {});

/// Reads header facts and runs the checksum sweep without building a
/// snapshot. Errors only when the header itself is unusable (bad magic,
/// version, header CRC, truncated); data-page damage is reported via
/// `checksums_ok` / `checksum_error`.
util::Result<BinaryGraphInfo> ReadBinaryGraphInfo(const std::string& path);

/// Recomputes and rewrites every checksum (pages, table, header) in
/// place. Repair tool for a deliberately patched file; also how tests
/// prove the semantic validation pass fires independently of the CRCs.
util::Status RecomputeBinaryGraphChecksums(const std::string& path);

/// Rebuilds a mutable AttributedGraph from any snapshot (adjacency
/// inserted in ascending neighbor order) — the materialization path for
/// consumers that need to mutate or re-serialize as text.
AttributedGraph MaterializeSnapshot(const AttributedCsrGraph& snapshot);

}  // namespace agmdp::graph

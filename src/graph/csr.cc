#include "src/graph/csr.h"

#include <algorithm>

namespace agmdp::graph {

CsrGraph CsrGraph::FromGraph(const Graph& g) {
  const NodeId n = g.num_nodes();
  CsrGraph csr;
  csr.num_edges_ = g.num_edges();
  csr.offsets_.resize(static_cast<size_t>(n) + 1, 0);
  csr.degrees_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    const uint32_t d = g.Degree(v);
    csr.degrees_[v] = d;
    csr.offsets_[v + 1] = csr.offsets_[v] + d;
    csr.max_degree_ = std::max(csr.max_degree_, d);
  }
  csr.neighbors_.resize(csr.offsets_[n]);
  for (NodeId v = 0; v < n; ++v) {
    const std::vector<NodeId>& adj = g.Neighbors(v);
    NodeId* out = csr.neighbors_.data() + csr.offsets_[v];
    std::copy(adj.begin(), adj.end(), out);
    std::sort(out, out + adj.size());
  }
  return csr;
}

bool CsrGraph::HasEdge(NodeId u, NodeId v) const {
  if (u == v || u >= num_nodes() || v >= num_nodes()) return false;
  if (Degree(u) > Degree(v)) std::swap(u, v);
  const NeighborRange range = Neighbors(u);
  return std::binary_search(range.begin(), range.end(), v);
}

uint32_t CsrGraph::CommonNeighborCount(NodeId u, NodeId v) const {
  const NeighborRange a = Neighbors(u);
  const NeighborRange b = Neighbors(v);
  const NodeId* i = a.begin();
  const NodeId* j = b.begin();
  uint32_t count = 0;
  // Neither range contains u or v (simple graph), so the intersection is
  // exactly the common-neighbor set.
  while (i != a.end() && j != b.end()) {
    if (*i < *j) {
      ++i;
    } else if (*j < *i) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

AttributedCsrGraph AttributedCsrGraph::FromGraph(const AttributedGraph& g) {
  AttributedCsrGraph snapshot;
  snapshot.structure = CsrGraph::FromGraph(g.structure());
  snapshot.attributes = g.attributes();
  snapshot.num_attributes = g.num_attributes();
  return snapshot;
}

}  // namespace agmdp::graph

#include "src/graph/csr.h"

#include <algorithm>
#include <utility>

namespace agmdp::graph {

void CsrGraph::FinishFromViews() {
  if (!owned_offsets_.empty()) {
    offsets_ = owned_offsets_.data();
    neighbors_ = owned_neighbors_.data();
  }
  const NodeId n = num_nodes_;
  degrees_.resize(n);
  max_degree_ = 0;
  for (NodeId v = 0; v < n; ++v) {
    const uint32_t d = static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
    degrees_[v] = d;
    max_degree_ = std::max(max_degree_, d);
  }
}

CsrGraph::CsrGraph(const CsrGraph& other)
    : owned_offsets_(other.owned_offsets_),
      owned_neighbors_(other.owned_neighbors_),
      external_owner_(other.external_owner_),
      degrees_(other.degrees_),
      num_nodes_(other.num_nodes_),
      max_degree_(other.max_degree_),
      num_edges_(other.num_edges_) {
  // Owned snapshots must re-point at *this* copy's vectors; external
  // snapshots share the mapping, so the source's pointers stay valid.
  offsets_ = owned_offsets_.empty() ? other.offsets_ : owned_offsets_.data();
  neighbors_ =
      owned_neighbors_.empty() ? other.neighbors_ : owned_neighbors_.data();
}

CsrGraph& CsrGraph::operator=(const CsrGraph& other) {
  if (this != &other) *this = CsrGraph(other);
  return *this;
}

CsrGraph CsrGraph::FromGraph(const Graph& g) {
  const NodeId n = g.num_nodes();
  CsrGraph csr;
  csr.num_nodes_ = n;
  csr.num_edges_ = g.num_edges();
  csr.owned_offsets_.resize(static_cast<size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    csr.owned_offsets_[v + 1] = csr.owned_offsets_[v] + g.Degree(v);
  }
  csr.owned_neighbors_.resize(csr.owned_offsets_[n]);
  for (NodeId v = 0; v < n; ++v) {
    const std::vector<NodeId>& adj = g.Neighbors(v);
    NodeId* out = csr.owned_neighbors_.data() + csr.owned_offsets_[v];
    std::copy(adj.begin(), adj.end(), out);
    std::sort(out, out + adj.size());
  }
  csr.FinishFromViews();
  return csr;
}

CsrGraph CsrGraph::FromExternal(const uint64_t* offsets,
                                const NodeId* neighbors, NodeId num_nodes,
                                uint64_t num_edges,
                                std::shared_ptr<const void> owner) {
  CsrGraph csr;
  csr.offsets_ = offsets;
  csr.neighbors_ = neighbors;
  csr.num_nodes_ = num_nodes;
  csr.num_edges_ = num_edges;
  csr.external_owner_ = std::move(owner);
  csr.FinishFromViews();
  return csr;
}

bool CsrGraph::HasEdge(NodeId u, NodeId v) const {
  if (u == v || u >= num_nodes() || v >= num_nodes()) return false;
  if (Degree(u) > Degree(v)) std::swap(u, v);
  const NeighborRange range = Neighbors(u);
  return std::binary_search(range.begin(), range.end(), v);
}

uint32_t CsrGraph::CommonNeighborCount(NodeId u, NodeId v) const {
  const NeighborRange a = Neighbors(u);
  const NeighborRange b = Neighbors(v);
  const NodeId* i = a.begin();
  const NodeId* j = b.begin();
  uint32_t count = 0;
  // Neither range contains u or v (simple graph), so the intersection is
  // exactly the common-neighbor set.
  while (i != a.end() && j != b.end()) {
    if (*i < *j) {
      ++i;
    } else if (*j < *i) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

AttributedCsrGraph::AttributedCsrGraph(const AttributedCsrGraph& other)
    : structure(other.structure),
      num_attributes(other.num_attributes),
      owned_attributes_(other.owned_attributes_),
      external_owner_(other.external_owner_) {
  attributes_ = owned_attributes_.empty() ? other.attributes_
                                          : owned_attributes_.data();
}

AttributedCsrGraph& AttributedCsrGraph::operator=(
    const AttributedCsrGraph& other) {
  if (this != &other) *this = AttributedCsrGraph(other);
  return *this;
}

AttributedCsrGraph AttributedCsrGraph::FromGraph(const AttributedGraph& g) {
  AttributedCsrGraph snapshot;
  snapshot.structure = CsrGraph::FromGraph(g.structure());
  snapshot.owned_attributes_ = g.attributes();
  snapshot.attributes_ = snapshot.owned_attributes_.data();
  snapshot.num_attributes = g.num_attributes();
  return snapshot;
}

AttributedCsrGraph AttributedCsrGraph::FromExternal(
    CsrGraph structure, const AttrConfig* attrs, int num_attributes,
    std::shared_ptr<const void> owner) {
  AttributedCsrGraph snapshot;
  snapshot.structure = std::move(structure);
  snapshot.attributes_ = attrs;
  snapshot.num_attributes = num_attributes;
  snapshot.external_owner_ = std::move(owner);
  return snapshot;
}

}  // namespace agmdp::graph

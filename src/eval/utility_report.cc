#include "src/eval/utility_report.h"

#include <algorithm>
#include <cmath>

#include "src/agm/theta_f.h"
#include "src/graph/clustering.h"
#include "src/graph/csr.h"
#include "src/graph/degree.h"
#include "src/graph/fused_eval.h"
#include "src/graph/paths.h"
#include "src/graph/triangle_count.h"
#include "src/stats/assortativity.h"
#include "src/stats/ccdf.h"
#include "src/stats/metrics.h"

namespace agmdp::eval {

namespace {

// Shared body for both representations (graph::DegreeSequence has matching
// overloads), so the two CCDF paths cannot drift apart.
template <typename AnyGraph>
std::vector<double> DegreesAsDoubles(const AnyGraph& g) {
  std::vector<double> out;
  out.reserve(g.num_nodes());
  for (uint32_t d : graph::DegreeSequence(g)) {
    out.push_back(static_cast<double>(d));
  }
  return out;
}

// Serves only the frozen *Legacy reference path; the production path reads
// the mean off graph::ClusteringStats (same chain, same values).
double MeanOf(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

// The ascending expansion of a degree histogram IS the sorted degree
// sequence, recovered without the O(n log n) sort.
std::vector<uint32_t> SortedDegreesFromHistogram(
    const std::vector<uint64_t>& hist) {
  std::vector<uint32_t> sorted;
  uint64_t total = 0;
  for (uint64_t c : hist) total += c;
  sorted.reserve(total);
  for (size_t d = 0; d < hist.size(); ++d) {
    sorted.insert(sorted.end(), hist[d], static_cast<uint32_t>(d));
  }
  return sorted;
}

std::vector<double> SortedCopy(const std::vector<double>& values) {
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

std::vector<std::pair<std::string, double>> UtilityReport::Flatten() const {
  std::vector<std::pair<std::string, double>> flat = {
      {"theta_f_mae", errors.theta_f_mae},
      {"theta_f_hellinger", errors.theta_f_hellinger},
      {"degree_ks", errors.degree_ks},
      {"degree_hellinger", errors.degree_hellinger},
      {"degree_kl", degree_kl},
      {"degree_ccdf_distance", degree_ccdf_distance},
      {"clustering_ccdf_distance", clustering_ccdf_distance},
      {"triangles_re", errors.triangles_re},
      {"avg_clustering_re", errors.avg_clustering_re},
      {"global_clustering_re", errors.global_clustering_re},
      {"edges_re", errors.edges_re},
      {"degree_assortativity_delta", degree_assortativity_delta},
      {"attribute_assortativity_delta", attribute_assortativity_delta},
  };
  double abs_sum = 0.0;
  for (size_t a = 0; a < homophily_delta.size(); ++a) {
    flat.emplace_back("homophily_delta_a" + std::to_string(a),
                      homophily_delta[a]);
    abs_sum += std::fabs(homophily_delta[a]);
  }
  flat.emplace_back("homophily_delta_mean_abs",
                    homophily_delta.empty()
                        ? 0.0
                        : abs_sum / static_cast<double>(
                                        homophily_delta.size()));
  return flat;
}

ReferenceProfile ProfileReference(const graph::AttributedGraph& original,
                                  int analytics_threads) {
  return ProfileReference(graph::AttributedCsrGraph::FromGraph(original),
                          analytics_threads);
}

ReferenceProfile ProfileReference(const graph::AttributedCsrGraph& original,
                                  int analytics_threads) {
  ReferenceProfile ref;
  graph::FusedOptions opts;
  opts.threads = analytics_threads;
  graph::FusedStats fused = graph::FusedEvaluate(original, opts);
  ref.theta_f = agm::ThetaFFromConnectionCounts(fused.connection_counts,
                                                fused.num_edges);
  ref.sorted_degrees = SortedDegreesFromHistogram(fused.degree_histogram);
  ref.degree_distribution = stats::DegreeDistributionFromHistogram(
      fused.degree_histogram, fused.num_nodes);
  ref.local_clustering = std::move(fused.clustering.local_coefficients);
  ref.sorted_local_clustering = SortedCopy(ref.local_clustering);
  ref.avg_clustering = fused.clustering.avg_local_clustering;
  ref.global_clustering = fused.clustering.global_clustering;
  ref.triangles = static_cast<double>(fused.clustering.triangles);
  ref.edges = static_cast<double>(fused.num_edges);
  ref.degree_assortativity = stats::DegreeAssortativityFromSums(
      fused.assort_sum_xy, fused.assort_sum_x, fused.assort_sum_x2,
      fused.num_edges);
  ref.attribute_assortativity = stats::AttributeAssortativityFromMixingCounts(
      fused.mixing_counts, fused.num_configs, fused.num_edges);
  ref.homophily = stats::PerAttributeHomophilyFromCounts(
      fused.homophily_counts, fused.num_edges);
  ref.degree_histogram = std::move(fused.degree_histogram);
  return ref;
}

ReferenceProfile ProfileReferenceLegacy(
    const graph::AttributedGraph& original) {
  ReferenceProfile ref;
  const graph::Graph& g = original.structure();
  ref.theta_f = agm::ComputeThetaF(original);
  ref.sorted_degrees = graph::SortedDegreeSequence(g);
  ref.degree_distribution = stats::DegreeDistribution(g);
  ref.local_clustering = graph::LocalClusteringCoefficients(g);
  ref.avg_clustering = MeanOf(ref.local_clustering);
  ref.global_clustering = graph::GlobalClusteringCoefficient(g);
  ref.triangles = static_cast<double>(graph::CountTriangles(g));
  ref.edges = static_cast<double>(g.num_edges());
  ref.degree_assortativity = stats::DegreeAssortativity(g);
  ref.attribute_assortativity = stats::AttributeAssortativity(original);
  ref.homophily = stats::PerAttributeHomophily(original);
  ref.degree_histogram = graph::DegreeHistogram(g);
  ref.sorted_local_clustering = SortedCopy(ref.local_clustering);
  return ref;
}

UtilityReport EvaluateRelease(const ReferenceProfile& original,
                              const graph::AttributedGraph& released,
                              int analytics_threads) {
  return EvaluateRelease(original,
                         graph::AttributedCsrGraph::FromGraph(released),
                         analytics_threads);
}

UtilityReport EvaluateRelease(const ReferenceProfile& original,
                              const graph::AttributedCsrGraph& released,
                              int analytics_threads) {
  UtilityReport report;
  graph::FusedOptions opts;
  opts.threads = analytics_threads;
  const graph::FusedStats fused = graph::FusedEvaluate(released, opts);

  const ThetaFError theta = CompareThetaF(
      agm::ThetaFFromConnectionCounts(fused.connection_counts,
                                      fused.num_edges),
      original.theta_f);
  report.errors.theta_f_mae = theta.mae;
  report.errors.theta_f_hellinger = theta.hellinger;

  report.errors.degree_ks = stats::KsStatisticFromHistograms(
      fused.degree_histogram, original.degree_histogram);
  const std::vector<double> dist1 = stats::DegreeDistributionFromHistogram(
      fused.degree_histogram, fused.num_nodes);
  report.errors.degree_hellinger =
      stats::HellingerDistance(dist1, original.degree_distribution);
  report.degree_kl = stats::KlDivergence(original.degree_distribution, dist1);
  // sup |F1-F2| over degrees == sup |CCDF1-CCDF2|: reuse the KS statistic.
  report.degree_ccdf_distance = report.errors.degree_ks;

  // The reference side is presorted in the profile; only the released
  // side's coefficients need one sort.
  report.clustering_ccdf_distance = stats::KsDistanceSorted(
      original.sorted_local_clustering,
      SortedCopy(fused.clustering.local_coefficients));
  report.errors.avg_clustering_re = stats::RelativeError(
      fused.clustering.avg_local_clustering, original.avg_clustering);
  report.errors.global_clustering_re = stats::RelativeError(
      fused.clustering.global_clustering, original.global_clustering);

  report.errors.triangles_re = stats::RelativeError(
      static_cast<double>(fused.clustering.triangles), original.triangles);
  report.errors.edges_re = stats::RelativeError(
      static_cast<double>(fused.num_edges), original.edges);

  report.degree_assortativity_delta =
      stats::DegreeAssortativityFromSums(fused.assort_sum_xy,
                                         fused.assort_sum_x,
                                         fused.assort_sum_x2,
                                         fused.num_edges) -
      original.degree_assortativity;
  report.attribute_assortativity_delta =
      stats::AttributeAssortativityFromMixingCounts(
          fused.mixing_counts, fused.num_configs, fused.num_edges) -
      original.attribute_assortativity;

  const std::vector<double> h1 = stats::PerAttributeHomophilyFromCounts(
      fused.homophily_counts, fused.num_edges);
  const size_t w = std::min(original.homophily.size(), h1.size());
  report.homophily_delta.resize(w);
  for (size_t a = 0; a < w; ++a) {
    report.homophily_delta[a] = h1[a] - original.homophily[a];
  }
  return report;
}

UtilityReport EvaluateReleaseMultipassCsr(
    const ReferenceProfile& original, const graph::AttributedCsrGraph& released,
    int analytics_threads) {
  UtilityReport report;
  const graph::CsrGraph& g1 = released.structure;

  const ThetaFError theta = CompareThetaF(
      agm::ComputeThetaF(released, analytics_threads), original.theta_f);
  report.errors.theta_f_mae = theta.mae;
  report.errors.theta_f_hellinger = theta.hellinger;

  report.errors.degree_ks = stats::KsStatistic(
      graph::SortedDegreeSequence(g1), original.sorted_degrees);
  const std::vector<double> dist1 = stats::DegreeDistribution(g1);
  report.errors.degree_hellinger =
      stats::HellingerDistance(dist1, original.degree_distribution);
  report.degree_kl =
      stats::KlDivergence(original.degree_distribution, dist1);
  // sup |F1-F2| over degrees == sup |CCDF1-CCDF2|: reuse the KS statistic.
  report.degree_ccdf_distance = report.errors.degree_ks;

  // One run of the per-node triangle kernel yields the whole clustering
  // family plus the exact triangle total (sum / 3).
  const graph::ClusteringStats clustering =
      graph::ComputeClusteringStats(g1, analytics_threads);
  const std::vector<double>& cc1 = clustering.local_coefficients;
  report.clustering_ccdf_distance =
      stats::KsDistance(original.local_clustering, cc1);
  report.errors.avg_clustering_re = stats::RelativeError(
      clustering.avg_local_clustering, original.avg_clustering);
  report.errors.global_clustering_re = stats::RelativeError(
      clustering.global_clustering, original.global_clustering);

  report.errors.triangles_re = stats::RelativeError(
      static_cast<double>(clustering.triangles), original.triangles);
  report.errors.edges_re = stats::RelativeError(
      static_cast<double>(g1.num_edges()), original.edges);

  report.degree_assortativity_delta =
      stats::DegreeAssortativity(g1, analytics_threads) -
      original.degree_assortativity;
  report.attribute_assortativity_delta =
      stats::AttributeAssortativity(released, analytics_threads) -
      original.attribute_assortativity;

  const std::vector<double> h1 =
      stats::PerAttributeHomophily(released, analytics_threads);
  const size_t w = std::min(original.homophily.size(), h1.size());
  report.homophily_delta.resize(w);
  for (size_t a = 0; a < w; ++a) {
    report.homophily_delta[a] = h1[a] - original.homophily[a];
  }
  return report;
}

UtilityReport EvaluateReleaseLegacy(const ReferenceProfile& original,
                                    const graph::AttributedGraph& released) {
  UtilityReport report;
  const graph::Graph& g1 = released.structure();

  const ThetaFError theta =
      CompareThetaF(agm::ComputeThetaF(released), original.theta_f);
  report.errors.theta_f_mae = theta.mae;
  report.errors.theta_f_hellinger = theta.hellinger;

  report.errors.degree_ks = stats::KsStatistic(
      graph::SortedDegreeSequence(g1), original.sorted_degrees);
  const std::vector<double> dist1 = stats::DegreeDistribution(g1);
  report.errors.degree_hellinger =
      stats::HellingerDistance(dist1, original.degree_distribution);
  report.degree_kl =
      stats::KlDivergence(original.degree_distribution, dist1);
  // sup |F1-F2| over degrees == sup |CCDF1-CCDF2|: reuse the KS statistic.
  report.degree_ccdf_distance = report.errors.degree_ks;

  const std::vector<double> cc1 = graph::LocalClusteringCoefficients(g1);
  report.clustering_ccdf_distance =
      stats::KsDistance(original.local_clustering, cc1);
  report.errors.avg_clustering_re =
      stats::RelativeError(MeanOf(cc1), original.avg_clustering);
  report.errors.global_clustering_re = stats::RelativeError(
      graph::GlobalClusteringCoefficient(g1), original.global_clustering);

  report.errors.triangles_re = stats::RelativeError(
      static_cast<double>(graph::CountTriangles(g1)), original.triangles);
  report.errors.edges_re = stats::RelativeError(
      static_cast<double>(g1.num_edges()), original.edges);

  report.degree_assortativity_delta =
      stats::DegreeAssortativity(g1) - original.degree_assortativity;
  report.attribute_assortativity_delta =
      stats::AttributeAssortativity(released) -
      original.attribute_assortativity;

  const std::vector<double> h1 = stats::PerAttributeHomophily(released);
  const size_t w = std::min(original.homophily.size(), h1.size());
  report.homophily_delta.resize(w);
  for (size_t a = 0; a < w; ++a) {
    report.homophily_delta[a] = h1[a] - original.homophily[a];
  }
  return report;
}

UtilityReport EvaluateRelease(const graph::AttributedGraph& original,
                              const graph::AttributedGraph& released) {
  return EvaluateRelease(ProfileReference(original), released);
}

ThetaFError CompareThetaF(std::vector<double> estimate,
                          std::vector<double> exact) {
  const size_t len = std::max(estimate.size(), exact.size());
  estimate.resize(len, 0.0);
  exact.resize(len, 0.0);
  ThetaFError e;
  e.mae = stats::MeanAbsoluteError(estimate, exact);
  e.hellinger = stats::HellingerDistance(estimate, exact);
  return e;
}

StructuralProfile ProfileGraph(const graph::AttributedGraph& g,
                               uint32_t path_samples, util::Rng& rng,
                               int analytics_threads) {
  return ProfileGraph(graph::AttributedCsrGraph::FromGraph(g), path_samples,
                      rng, analytics_threads);
}

StructuralProfile ProfileGraph(const graph::AttributedCsrGraph& g,
                               uint32_t path_samples, util::Rng& rng,
                               int analytics_threads) {
  StructuralProfile profile;
  if (path_samples > 0) {
    const graph::PathStats paths =
        graph::EstimatePathStats(g.structure, path_samples, rng);
    profile.avg_path_length = paths.avg_path_length;
    profile.effective_diameter = paths.effective_diameter;
    profile.diameter_lower_bound = paths.diameter_lower_bound;
  }
  // One fused edge sweep covers all three families; the triangle sweep is
  // skipped since no clustering statistic is reported here.
  graph::FusedOptions opts;
  opts.threads = analytics_threads;
  opts.triangles = false;
  const graph::FusedStats fused = graph::FusedEvaluate(g, opts);
  profile.degree_assortativity = stats::DegreeAssortativityFromSums(
      fused.assort_sum_xy, fused.assort_sum_x, fused.assort_sum_x2,
      fused.num_edges);
  profile.attribute_assortativity =
      stats::AttributeAssortativityFromMixingCounts(
          fused.mixing_counts, fused.num_configs, fused.num_edges);
  profile.homophily = stats::PerAttributeHomophilyFromCounts(
      fused.homophily_counts, fused.num_edges);
  return profile;
}

std::vector<std::pair<double, double>> DegreeCcdfSeries(const graph::Graph& g,
                                                        size_t max_points) {
  return stats::DownsampleCcdf(stats::Ccdf(DegreesAsDoubles(g)), max_points);
}

std::vector<std::pair<double, double>> DegreeCcdfSeries(
    const graph::CsrGraph& g, size_t max_points) {
  // Histogram-based construction: same series, no value expansion or sort.
  return stats::DownsampleCcdf(
      stats::CcdfFromHistogram(graph::DegreeHistogram(g)), max_points);
}

std::vector<std::pair<double, double>> ClusteringCcdfSeries(
    const graph::Graph& g, size_t max_points) {
  return stats::DownsampleCcdf(
      stats::Ccdf(graph::LocalClusteringCoefficients(g)), max_points);
}

std::vector<std::pair<double, double>> ClusteringCcdfSeries(
    const graph::CsrGraph& g, size_t max_points, int analytics_threads) {
  graph::FusedOptions opts;
  opts.threads = analytics_threads;
  return stats::DownsampleCcdf(
      stats::Ccdf(std::move(
          graph::FusedEvaluate(g, opts).clustering.local_coefficients)),
      max_points);
}

}  // namespace agmdp::eval

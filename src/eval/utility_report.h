// Utility evaluation of a released (synthetic) graph against the sensitive
// original — the metric suite behind the paper's Tables 2-5 and Figures
// 1-5, computed in one place so that every bench, the sweep engine and the
// CLI report identical numbers.
//
// The metric families:
//   * degree distribution   — KS / Hellinger (Tables 2-5), plus KL
//                             divergence and the sup-distance between the
//                             degree CCDF curves (Figure 2);
//   * clustering            — relative errors of C̄ / C (Tables 2-5) and
//                             the sup-distance between the local-clustering
//                             CCDF curves (Figure 3);
//   * triangle count        — relative error of n∆;
//   * attribute correlation — ΘF MAE / Hellinger (Figures 1/5);
//   * assortativity &       — deltas of Newman's degree / attribute
//     homophily               assortativity and of the per-attribute
//                             same-value edge fractions (released − original).
//
// Everything is a pure function of the two graphs; all heavy lifting is
// delegated to src/stats and src/graph primitives.
//
// The production path runs on immutable CsrGraph snapshots through the
// fused evaluation kernel (graph/fused_eval.h): every per-node partial is
// collected in two sweeps over the neighbor arrays (SIMD-dispatched,
// sharded over `analytics_threads` workers; <= 0 selects hardware
// concurrency) and the metric families derive from those partials through
// the same formula tails the standalone kernels use — so results are
// bitwise-identical at any thread count and on either dispatch arm. The
// EvaluateReleaseMultipassCsr and *Legacy variants keep the per-metric CSR
// and adjacency-list paths alive as cross-check oracles for tests and the
// perf bench — all three agree exactly, metric for metric.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/attributed_graph.h"
#include "src/graph/csr.h"
#include "src/stats/summary.h"
#include "src/util/rng.h"

namespace agmdp::eval {

/// \brief The full metric suite for one released graph vs the original.
struct UtilityReport {
  /// The Tables 2-5 error columns (ΘF MAE/Hellinger, degree KS/Hellinger,
  /// triangle/clustering/edge relative errors), reused verbatim.
  stats::UtilityErrors errors;

  /// KL(degree distribution of original || released), floored (metrics.h).
  double degree_kl = 0.0;
  /// Sup-distance between the two degree CCDF curves. Numerically equal to
  /// `errors.degree_ks` (sup |F1-F2| = sup |CCDF1-CCDF2|); kept as its own
  /// schema field so sweep artifacts name the Figure-2 statistic directly.
  double degree_ccdf_distance = 0.0;
  /// Sup-distance between the two local-clustering-coefficient CCDFs.
  double clustering_ccdf_distance = 0.0;
  /// Newman degree assortativity, released − original.
  double degree_assortativity_delta = 0.0;
  /// Newman attribute assortativity, released − original.
  double attribute_assortativity_delta = 0.0;
  /// Per attribute bit: same-value edge fraction, released − original.
  std::vector<double> homophily_delta;

  /// Stable flat view for aggregation and serialization: (metric name,
  /// value) in a fixed documented order (see DESIGN.md; per-attribute
  /// homophily deltas appear as "homophily_delta_a<j>" followed by their
  /// mean absolute value as "homophily_delta_mean_abs").
  std::vector<std::pair<std::string, double>> Flatten() const;
};

/// \brief Precomputed original-side statistics.
///
/// Profiling the sensitive input is the expensive half of every
/// evaluation (triangle counting, clustering coefficients, ΘF); the sweep
/// engine evaluates models × epsilons × repeats releases against the same
/// original, so it profiles each input once and reuses the profile for
/// every cell.
struct ReferenceProfile {
  std::vector<double> theta_f;
  std::vector<uint32_t> sorted_degrees;
  std::vector<double> degree_distribution;
  std::vector<double> local_clustering;
  double avg_clustering = 0.0;
  double global_clustering = 0.0;
  double triangles = 0.0;
  double edges = 0.0;
  double degree_assortativity = 0.0;
  double attribute_assortativity = 0.0;
  /// Per attribute bit: same-value edge fraction.
  std::vector<double> homophily;

  // Hoisted evaluation scratch: both fields are pure functions of the
  // vectors above, precomputed once here so EvaluateRelease neither
  // re-sorts the reference side per repeat nor expands a degree sequence
  // to take a KS statistic. Every profiler fills them.

  /// hist[d] = number of original nodes of degree d (MaxDegree + 1 bins);
  /// the degree KS statistic runs directly on histograms.
  std::vector<uint64_t> degree_histogram;
  /// local_clustering sorted ascending, ready for KsDistanceSorted.
  std::vector<double> sorted_local_clustering;
};

/// Profiles the original once for repeated evaluation. The AttributedGraph
/// entry point snapshots the graph and delegates to the CSR overload.
ReferenceProfile ProfileReference(const graph::AttributedGraph& original,
                                  int analytics_threads = 1);
ReferenceProfile ProfileReference(const graph::AttributedCsrGraph& original,
                                  int analytics_threads = 1);

/// Adjacency-list reference implementation (tests / perf bench only):
/// identical output, computed with the mutable-Graph kernels.
ReferenceProfile ProfileReferenceLegacy(const graph::AttributedGraph& original);

/// Computes the full metric suite against a precomputed original profile.
/// The AttributedGraph entry point builds one snapshot of the released
/// graph and reuses it across all metrics.
UtilityReport EvaluateRelease(const ReferenceProfile& original,
                              const graph::AttributedGraph& released,
                              int analytics_threads = 1);
UtilityReport EvaluateRelease(const ReferenceProfile& original,
                              const graph::AttributedCsrGraph& released,
                              int analytics_threads = 1);

/// Adjacency-list reference implementation (tests / perf bench only):
/// bitwise-identical UtilityReport, computed with the mutable-Graph
/// kernels.
UtilityReport EvaluateReleaseLegacy(const ReferenceProfile& original,
                                    const graph::AttributedGraph& released);

/// The pre-fusion CSR implementation — one kernel pass per metric family
/// over the snapshot (tests / perf bench only). Bitwise-identical to
/// EvaluateRelease; bench_perf times the fused path against it for the
/// fused_eval_speedup gate.
UtilityReport EvaluateReleaseMultipassCsr(
    const ReferenceProfile& original,
    const graph::AttributedCsrGraph& released, int analytics_threads = 1);

/// One-shot convenience: ProfileReference(original) + the overload above.
/// The released graph may have a different attribute dimension than the
/// original (homophily deltas are then over the common prefix of bits).
UtilityReport EvaluateRelease(const graph::AttributedGraph& original,
                              const graph::AttributedGraph& released);

/// \brief Error of one ΘF estimate against the exact correlation vector
/// (the y-axes of Figures 1 and 5).
struct ThetaFError {
  double mae = 0.0;
  double hellinger = 0.0;
};

/// Compares a (learned or baseline) ΘF vector against the exact one.
/// Mismatched lengths (graphs of different attribute dimension) are
/// zero-padded to a common length.
ThetaFError CompareThetaF(std::vector<double> estimate,
                          std::vector<double> exact);

/// \brief Absolute held-out statistics of one graph (bench_extended_stats):
/// the statistics AGM-DP never directly optimizes.
struct StructuralProfile {
  double avg_path_length = 0.0;
  double effective_diameter = 0.0;
  /// Max BFS distance observed from the sampled sources (lower bound on
  /// the diameter; exact when every node is sampled).
  uint32_t diameter_lower_bound = 0;
  double degree_assortativity = 0.0;
  double attribute_assortativity = 0.0;
  /// Per attribute bit: fraction of edges whose endpoints agree on it.
  std::vector<double> homophily;
};

/// Profiles `g`. Path statistics are estimated from `path_samples` BFS
/// sources (0 skips them, leaving the path fields at 0 and `rng` untouched).
/// The AttributedGraph entry point snapshots `g` and delegates.
StructuralProfile ProfileGraph(const graph::AttributedGraph& g,
                               uint32_t path_samples, util::Rng& rng,
                               int analytics_threads = 1);
StructuralProfile ProfileGraph(const graph::AttributedCsrGraph& g,
                               uint32_t path_samples, util::Rng& rng,
                               int analytics_threads = 1);

/// Degree CCDF of a graph, downsampled to at most `max_points` (Figure 2).
std::vector<std::pair<double, double>> DegreeCcdfSeries(const graph::Graph& g,
                                                        size_t max_points);
std::vector<std::pair<double, double>> DegreeCcdfSeries(
    const graph::CsrGraph& g, size_t max_points);

/// Local-clustering-coefficient CCDF, downsampled likewise (Figure 3).
std::vector<std::pair<double, double>> ClusteringCcdfSeries(
    const graph::Graph& g, size_t max_points);
std::vector<std::pair<double, double>> ClusteringCcdfSeries(
    const graph::CsrGraph& g, size_t max_points, int analytics_threads = 1);

}  // namespace agmdp::eval

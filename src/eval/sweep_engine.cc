#include "src/eval/sweep_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "src/datasets/datasets.h"
#include "src/graph/csr.h"
#include "src/mechanisms/release_mechanism.h"
#include "src/graph/graph_source.h"
#include "src/pipeline/release_engine.h"
#include "src/pipeline/release_pipeline.h"
#include "src/util/json.h"
#include "src/util/rng.h"

namespace agmdp::eval {

namespace {

using Clock = std::chrono::steady_clock;

util::Status ValidateSpec(const std::vector<SweepInput>& inputs,
                          const SweepSpec& spec) {
  if (inputs.empty()) {
    return util::Status::InvalidArgument("sweep needs at least one input");
  }
  if (spec.mechanisms.empty()) {
    return util::Status::InvalidArgument(
        "sweep needs at least one mechanism");
  }
  for (const std::string& mechanism : spec.mechanisms) {
    if (mechanisms::FindMechanism(mechanism) == nullptr) {
      return util::Status::InvalidArgument(
          "unknown mechanism '" + mechanism +
          "'; registered: " + mechanisms::MechanismNameList());
    }
  }
  if (spec.models.empty()) {
    return util::Status::InvalidArgument("sweep needs at least one model");
  }
  for (const std::string& model : spec.models) {
    if (pipeline::FindStructuralModel(model) == nullptr) {
      return util::Status::InvalidArgument(
          "unknown model '" + model +
          "'; registered: " + pipeline::StructuralModelNameList());
    }
  }
  if (spec.epsilons.empty()) {
    return util::Status::InvalidArgument("sweep needs at least one epsilon");
  }
  for (double eps : spec.epsilons) {
    if (!(eps > 0.0)) {
      return util::Status::InvalidArgument("epsilon must be positive");
    }
  }
  if (spec.repeats < 1) {
    return util::Status::InvalidArgument("repeats must be >= 1");
  }
  return util::Status::OK();
}

// Fit-once / sample-many cell: one fully accounted fit, repeats served by
// a ReleaseEngine over the resulting artifact. Every draw is a pure
// function of (spec, cell_index), so the contract of RunCell holds.
void RunCellReuseFit(const SweepInput& input,
                     const ReferenceProfile& reference, const SweepSpec& spec,
                     const pipeline::PipelineConfig& config,
                     uint64_t cell_index, SweepCell* cell) {
  const Clock::time_point start = Clock::now();
  util::Rng rng = util::Rng::Substream(
      spec.seed, cell_index * static_cast<uint64_t>(spec.repeats));
  auto artifact = pipeline::FitReleaseArtifact(input.graph, config, rng);
  if (!artifact.ok()) {
    cell->error = artifact.status().ToString();
    return;
  }
  const double spent = artifact.value().epsilon_spent;

  pipeline::EngineOptions engine_options;
  engine_options.threads = spec.sampler_threads;
  // No calibration warm start: every repeat runs the paper's cold
  // acceptance loop at the spec's iteration count, so reuse_fit changes
  // only the fitting protocol, not the sampling one — cells stay
  // comparable against the default refit grid.
  engine_options.calibrate = false;
  engine_options.sample = config.sample;
  auto engine = pipeline::ReleaseEngine::Create(std::move(artifact).value(),
                                                engine_options);
  if (!engine.ok()) {
    cell->error = engine.status().ToString();
    return;
  }

  // The request family is keyed off the cell's fit stream, so it is a pure
  // function of the spec and disjoint from other cells' draws.
  pipeline::SampleRequest base;
  base.seed = rng.Next();
  auto graphs = engine.value()->SampleMany(spec.repeats, base);
  // Stop the clock before evaluation, mirroring the default path (which
  // times RunPrivateRelease only) so seconds_mean stays comparable
  // between the two modes.
  const double cell_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (!graphs.ok()) {
    cell->error = graphs.status().ToString();
    return;
  }

  ReportAccumulator accumulator;
  for (const graph::AttributedGraph& g : graphs.value()) {
    accumulator.Add(EvaluateRelease(reference,
                                    graph::AttributedCsrGraph::FromGraph(g),
                                    spec.analytics_threads));
  }
  cell->metrics = accumulator.Stats();
  cell->fits = 1;
  cell->epsilon_spent = spent;
  cell->seconds_mean = cell_seconds / spec.repeats;
}

// Runs all repeats of one cell sequentially (ascending repeat index, so the
// aggregation order — and therefore the floating-point result — does not
// depend on scheduling). The original-side statistics arrive precomputed in
// `reference` — they are shared by every cell of the same input.
void RunCell(const SweepInput& input, const ReferenceProfile& reference,
             const SweepSpec& spec, uint64_t cell_index, SweepCell* cell) {
  pipeline::PipelineConfig config;
  config.epsilon = cell->epsilon;
  config.mechanism = cell->mechanism;
  // Non-AGM mechanisms ignore the structural model; the config keeps its
  // default there so Validate's registry check passes.
  if (cell->mechanism == "agm") config.model = cell->model;
  config.split = spec.split;
  config.sample.threads = spec.sampler_threads;
  config.sample.acceptance_iterations = spec.acceptance_iterations;

  if (spec.reuse_fit) {
    RunCellReuseFit(input, reference, spec, config, cell_index, cell);
    return;
  }

  ReportAccumulator accumulator;
  double seconds_sum = 0.0;
  double spent_sum = 0.0;
  for (int r = 0; r < spec.repeats; ++r) {
    util::Rng rng = util::Rng::Substream(
        spec.seed, cell_index * static_cast<uint64_t>(spec.repeats) +
                       static_cast<uint64_t>(r));
    const Clock::time_point start = Clock::now();
    auto result = pipeline::RunPrivateRelease(input.graph, config, rng);
    seconds_sum +=
        std::chrono::duration<double>(Clock::now() - start).count();
    if (!result.ok()) {
      cell->error = result.status().ToString();
      cell->metrics.clear();
      return;
    }
    spent_sum += result.value().epsilon_spent;
    // One immutable snapshot per release, reused across every metric.
    accumulator.Add(EvaluateRelease(
        reference, graph::AttributedCsrGraph::FromGraph(result.value().graph),
        spec.analytics_threads));
  }
  cell->metrics = accumulator.Stats();
  cell->fits = spec.repeats;
  cell->epsilon_spent = spent_sum / spec.repeats;
  cell->seconds_mean = seconds_sum / spec.repeats;
}

}  // namespace

util::Result<SweepResult> RunSweep(const std::vector<SweepInput>& inputs,
                                   const SweepSpec& spec) {
  if (auto st = ValidateSpec(inputs, spec); !st.ok()) return st;
  const Clock::time_point start = Clock::now();

  SweepResult result;
  result.spec = spec;
  for (const SweepInput& input : inputs) {
    result.input_names.push_back(input.name);
  }

  // Profile each input once; every cell of that input reuses the profile
  // (the original-side statistics are the expensive half of evaluation).
  // Inputs that arrive with a caller-precomputed profile are not
  // re-profiled.
  std::vector<ReferenceProfile> owned_references;
  owned_references.reserve(inputs.size());
  std::vector<const ReferenceProfile*> references;
  references.reserve(inputs.size());
  for (const SweepInput& input : inputs) {
    if (input.reference != nullptr) {
      references.push_back(input.reference.get());
    } else {
      owned_references.push_back(
          ProfileReference(input.graph, spec.analytics_threads));
      references.push_back(&owned_references.back());
    }
  }

  // Lay out the grid (datasets, mechanisms × models, epsilons) up front;
  // cell index == position in this vector, which fixes the RNG substream
  // family and the output order independent of scheduling. The "agm"
  // mechanism expands over spec.models; other mechanisms have no
  // structural-model axis and contribute one row. The default AGM-only
  // spec therefore lays out exactly the pre-mechanism grid, substream
  // indices included.
  std::vector<const SweepInput*> cell_inputs;
  std::vector<const ReferenceProfile*> cell_references;
  for (size_t i = 0; i < inputs.size(); ++i) {
    for (const std::string& mechanism : spec.mechanisms) {
      const std::vector<std::string> rows =
          mechanism == "agm" ? spec.models
                             : std::vector<std::string>{mechanism};
      for (const std::string& model : rows) {
        for (double eps : spec.epsilons) {
          SweepCell cell;
          cell.dataset = inputs[i].name;
          cell.mechanism = mechanism;
          cell.model = model;
          cell.epsilon = eps;
          cell.repeats = spec.repeats;
          result.cells.push_back(std::move(cell));
          cell_inputs.push_back(&inputs[i]);
          cell_references.push_back(references[i]);
        }
      }
    }
  }

  unsigned workers = spec.threads > 0
                         ? static_cast<unsigned>(spec.threads)
                         : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min<unsigned>(
      workers, static_cast<unsigned>(result.cells.size()));

  if (workers <= 1) {
    for (size_t c = 0; c < result.cells.size(); ++c) {
      RunCell(*cell_inputs[c], *cell_references[c], spec, c,
              &result.cells[c]);
    }
  } else {
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) {
      pool.emplace_back([&] {
        for (size_t c = next.fetch_add(1); c < result.cells.size();
             c = next.fetch_add(1)) {
          RunCell(*cell_inputs[c], *cell_references[c], spec, c,
                  &result.cells[c]);
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
  }

  result.total_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

util::Result<SweepResult> RunSweepOnDatasets(const SweepSpec& spec) {
  if (spec.datasets.empty()) {
    return util::Status::InvalidArgument("sweep needs at least one dataset");
  }
  std::vector<SweepInput> inputs;
  for (const std::string& name : spec.datasets) {
    bool found = false;
    for (datasets::DatasetId id : datasets::AllDatasets()) {
      if (datasets::PaperSpec(id).name != name) continue;
      auto g = datasets::GenerateDataset(id, spec.dataset_scale, spec.seed);
      if (!g.ok()) return g.status();
      inputs.push_back(SweepInput{name, std::move(g).value(), nullptr});
      found = true;
      break;
    }
    if (!found) {
      // Not a registry name: treat it as a path (text prefix or binary
      // container) via the unified GraphSource front door, so sweeps can
      // run directly against on-disk graphs.
      auto source = graph::GraphSource::Open(name);
      if (!source.ok()) {
        if (source.status().code() == util::StatusCode::kNotFound) {
          return util::Status::InvalidArgument(
              "unknown dataset: " + name +
              " (not a registry name, and no graph file at that path)");
        }
        return source.status();
      }
      inputs.push_back(
          SweepInput{name, source.value().Materialize(), nullptr});
      found = true;
    }
  }
  return RunSweep(inputs, spec);
}

namespace {

/// The shared ranking composite: the mean of the four headline utility
/// distances, lower is better. Metrics are looked up by Flatten() name so
/// every mechanism is scored on exactly the same yardstick.
constexpr const char* kUtilityScoreMetrics[] = {
    "degree_ks", "degree_hellinger", "clustering_ccdf_distance",
    "theta_f_hellinger"};

struct MechanismRank {
  std::string mechanism;
  int cells = 0;
  double utility_score = 0.0;
};

std::vector<MechanismRank> RankMechanisms(const SweepResult& result) {
  std::vector<MechanismRank> ranks;
  for (const std::string& mechanism : result.spec.mechanisms) {
    MechanismRank rank;
    rank.mechanism = mechanism;
    double score_sum = 0.0;
    for (const SweepCell& cell : result.cells) {
      if (cell.mechanism != mechanism || !cell.error.empty()) continue;
      double cell_sum = 0.0;
      int found = 0;
      for (const char* name : kUtilityScoreMetrics) {
        for (const MetricStats& metric : cell.metrics) {
          if (metric.name == name) {
            cell_sum += metric.mean;
            ++found;
            break;
          }
        }
      }
      if (found == 0) continue;
      score_sum += cell_sum / found;
      ++rank.cells;
    }
    if (rank.cells > 0) rank.utility_score = score_sum / rank.cells;
    ranks.push_back(std::move(rank));
  }
  // Best (lowest composite) first; mechanisms with no scored cells sink to
  // the bottom. Name breaks ties so the order is a pure function of the
  // result.
  std::sort(ranks.begin(), ranks.end(),
            [](const MechanismRank& a, const MechanismRank& b) {
              if ((a.cells > 0) != (b.cells > 0)) return a.cells > 0;
              if (a.utility_score != b.utility_score) {
                return a.utility_score < b.utility_score;
              }
              return a.mechanism < b.mechanism;
            });
  return ranks;
}

}  // namespace

std::string SweepResultToJson(const SweepResult& result,
                              bool include_timing) {
  util::JsonWriter json;
  json.BeginObject();
  json.Key("schema").Value("agmdp.sweep.v4");
  json.Key("seed").Value(result.spec.seed);
  json.Key("repeats").Value(result.spec.repeats);
  json.Key("dataset_scale").Value(result.spec.dataset_scale);
  json.Key("sampler_threads").Value(result.spec.sampler_threads);
  json.Key("acceptance_iterations").Value(result.spec.acceptance_iterations);
  json.Key("analytics_threads").Value(result.spec.analytics_threads);
  json.Key("reuse_fit").Value(result.spec.reuse_fit);
  json.Key("datasets").BeginArray();
  for (const std::string& name : result.input_names) json.Value(name);
  json.EndArray();
  json.Key("mechanisms").BeginArray();
  for (const std::string& mechanism : result.spec.mechanisms) {
    json.Value(mechanism);
  }
  json.EndArray();
  json.Key("models").BeginArray();
  for (const std::string& model : result.spec.models) json.Value(model);
  json.EndArray();
  json.Key("epsilons").BeginArray();
  for (double eps : result.spec.epsilons) json.Value(eps);
  json.EndArray();
  if (include_timing) {
    json.Key("total_seconds").Value(result.total_seconds);
  }
  json.Key("cells").BeginArray();
  for (const SweepCell& cell : result.cells) {
    json.BeginObject();
    json.Key("dataset").Value(cell.dataset);
    json.Key("mechanism").Value(cell.mechanism);
    json.Key("model").Value(cell.model);
    json.Key("epsilon").Value(cell.epsilon);
    json.Key("repeats").Value(cell.repeats);
    if (!cell.error.empty()) {
      json.Key("error").Value(cell.error);
      json.EndObject();
      continue;
    }
    json.Key("epsilon_spent").Value(cell.epsilon_spent);
    json.Key("fits").Value(cell.fits);
    if (include_timing) {
      json.Key("seconds_mean").Value(cell.seconds_mean);
    }
    json.Key("metrics").BeginObject();
    for (const MetricStats& metric : cell.metrics) {
      json.Key(metric.name).BeginObject();
      json.Key("mean").Value(metric.mean);
      json.Key("stddev").Value(metric.stddev);
      json.EndObject();
    }
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.Key("mechanism_summary").BeginArray();
  for (const MechanismRank& rank : RankMechanisms(result)) {
    json.BeginObject();
    json.Key("mechanism").Value(rank.mechanism);
    json.Key("cells").Value(rank.cells);
    json.Key("utility_score").Value(rank.utility_score);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.Finish();
}

}  // namespace agmdp::eval

#include "src/eval/aggregate.h"

#include <cmath>

#include "src/util/check.h"

namespace agmdp::eval {

void ReportAccumulator::Add(const UtilityReport& report) {
  const std::vector<std::pair<std::string, double>> flat = report.Flatten();
  if (count_ == 0) {
    cells_.reserve(flat.size());
    for (const auto& [name, value] : flat) {
      (void)value;
      cells_.push_back(Cell{name, 0.0, 0.0});
    }
  }
  AGMDP_CHECK_MSG(flat.size() == cells_.size(),
                  "reports with mismatched metric sets in one accumulator");
  ++count_;
  for (size_t i = 0; i < flat.size(); ++i) {
    AGMDP_CHECK(flat[i].first == cells_[i].name);
    const double delta = flat[i].second - cells_[i].mean;
    cells_[i].mean += delta / count_;
    cells_[i].m2 += delta * (flat[i].second - cells_[i].mean);
  }
}

std::vector<MetricStats> ReportAccumulator::Stats() const {
  std::vector<MetricStats> out;
  out.reserve(cells_.size());
  for (const Cell& cell : cells_) {
    MetricStats s;
    s.name = cell.name;
    s.mean = cell.mean;
    s.stddev = count_ > 1 ? std::sqrt(cell.m2 / (count_ - 1)) : 0.0;
    out.push_back(std::move(s));
  }
  return out;
}

double ReportAccumulator::Mean(const std::string& name) const {
  for (const Cell& cell : cells_) {
    if (cell.name == name) return cell.mean;
  }
  return 0.0;
}

double MetricMean(const std::vector<MetricStats>& stats,
                  const std::string& name) {
  for (const MetricStats& s : stats) {
    if (s.name == name) return s.mean;
  }
  return 0.0;
}

}  // namespace agmdp::eval

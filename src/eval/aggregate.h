// Mean / standard deviation aggregation of UtilityReports over repeated
// trials — the per-cell statistics of the sweep engine, also usable
// directly by benches that average a handful of releases.
#pragma once

#include <string>
#include <vector>

#include "src/eval/utility_report.h"

namespace agmdp::eval {

/// Aggregated statistics of one metric over the repeats of a cell.
struct MetricStats {
  std::string name;
  double mean = 0.0;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than two
  /// repeats.
  double stddev = 0.0;
};

/// \brief Accumulates flattened UtilityReports (Welford's online algorithm,
/// numerically stable for long repeat runs).
///
/// All reports added to one accumulator must flatten to the same metric
/// list (guaranteed when they compare graphs of equal attribute dimension).
class ReportAccumulator {
 public:
  void Add(const UtilityReport& report);

  int count() const { return count_; }

  /// Per-metric mean/stddev, in Flatten() order. Empty before the first Add.
  std::vector<MetricStats> Stats() const;

  /// Mean of one metric by name (0 if absent) — convenience for table rows.
  double Mean(const std::string& name) const;

 private:
  struct Cell {
    std::string name;
    double mean = 0.0;
    double m2 = 0.0;  // sum of squared deviations from the running mean
  };

  int count_ = 0;
  std::vector<Cell> cells_;
};

/// Mean of the named metric in `stats` (0 if absent).
double MetricMean(const std::vector<MetricStats>& stats,
                  const std::string& name);

}  // namespace agmdp::eval

// Multi-scenario sweep engine: runs the private release pipeline over a
// (dataset × mechanism × model × epsilon) grid with repeated trials per
// cell, evaluates every release with EvaluateRelease, and aggregates
// per-cell mean/stddev for every metric — the machinery behind the paper's
// Tables 2-5 / Figures 1-5 experiment grids and the `agmdp sweep`
// subcommand. The mechanism axis expands to spec.models for "agm" and to
// a single cell per epsilon for every other registered release mechanism,
// so competing publication schemes rank on the same metrics in one grid.
//
// Determinism contract: cell (index c, repeat r) draws exclusively from
// util::Rng::Substream(spec.seed, c * spec.repeats + r), a pure function of
// the spec — so results are bitwise-identical regardless of how cells are
// scheduled onto worker threads, and SweepResultToJson(..., false) is
// byte-identical across runs with the same spec and inputs. With
// `reuse_fit` the cell's single fit draws from Substream(spec.seed,
// c * spec.repeats) and the repeats are served by a
// pipeline::ReleaseEngine from a request family keyed off that stream —
// still a pure function of the spec, at any worker count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/dp/privacy_budget.h"
#include "src/eval/aggregate.h"
#include "src/graph/attributed_graph.h"
#include "src/pipeline/pipeline_config.h"
#include "src/util/status.h"

namespace agmdp::eval {

/// \brief One scenario grid: the cross product of datasets, models and
/// epsilons, with `repeats` fully accounted releases per cell.
struct SweepSpec {
  /// Dataset stand-ins to generate (names from datasets::PaperSpec). Used
  /// by RunSweepOnDatasets; RunSweep takes explicit inputs instead.
  std::vector<std::string> datasets;
  /// Node-count scale for the generated stand-ins (1.0 = paper size).
  double dataset_scale = 0.1;

  /// Release mechanisms by registry name (mechanisms::FindMechanism). The
  /// "agm" entry expands over `models`; every other mechanism contributes
  /// one cell per (dataset, epsilon). The default grid is AGM-only, which
  /// reproduces the pre-mechanism sweep exactly (same cells, same
  /// substream indices).
  std::vector<std::string> mechanisms = {"agm"};
  /// Structural models by registry name (consulted for "agm" cells only).
  std::vector<std::string> models = {"fcl", "tricycle"};
  /// Global epsilon per release.
  std::vector<double> epsilons = {0.6931471805599453};
  /// Releases per cell (>= 1).
  int repeats = 3;

  /// Base seed of the per-cell substream family (and of dataset generation).
  uint64_t seed = 1;
  /// Worker threads across cells; 0 = hardware concurrency.
  int threads = 1;

  /// Per-release sampler settings (forwarded to PipelineConfig).
  int sampler_threads = 1;
  int acceptance_iterations = 2;
  /// Fit-once / sample-many cells: fit the cell's parameters once (one
  /// budget spend per cell) and draw the repeats from a
  /// pipeline::ReleaseEngine over the resulting artifact. The default
  /// refits per repeat — the paper's protocol, where every repeat is an
  /// independent fully-accounted release. With reuse_fit the repeats share
  /// one fit's noise draw, so per-cell stddevs reflect sampler variance
  /// only; in exchange each cell costs one fit and spends epsilon once.
  bool reuse_fit = false;
  /// Worker threads inside the CsrGraph analytics kernels when profiling
  /// inputs and evaluating releases (<= 0 = hardware concurrency). Results
  /// are bitwise-identical at any value.
  int analytics_threads = 1;
  /// Optional custom budget split; zero-total selects the model default.
  dp::BudgetSplit split;
};

/// A named evaluation input.
struct SweepInput {
  std::string name;
  graph::AttributedGraph graph;
  /// Optional precomputed profile of `graph` (callers that already
  /// profiled the original — e.g. the table harness — pass it here);
  /// RunSweep profiles the graph itself when absent.
  std::shared_ptr<const ReferenceProfile> reference;
};

/// \brief Aggregated result of one (dataset, mechanism, model, epsilon)
/// cell.
struct SweepCell {
  std::string dataset;
  /// Release mechanism the cell ran under ("agm", "community_dp", ...).
  std::string mechanism;
  /// Structural model for "agm" cells; equals `mechanism` otherwise.
  std::string model;
  double epsilon = 0.0;
  int repeats = 0;
  /// Mean/stddev per metric, in UtilityReport::Flatten() order. Empty when
  /// the cell failed.
  std::vector<MetricStats> metrics;
  /// Mean total epsilon actually spent per fit (equals epsilon under
  /// default splits). With reuse_fit the cell performs exactly one fit, so
  /// this is that fit's spend.
  double epsilon_spent = 0.0;
  /// Number of parameter fits (budget spends) the cell performed:
  /// `repeats` by default, exactly 1 with reuse_fit.
  int fits = 0;
  /// Mean wall-clock seconds per release (a timing field).
  double seconds_mean = 0.0;
  /// Non-empty when the release pipeline failed for this cell; metrics are
  /// then empty and the remaining repeats were skipped.
  std::string error;
};

struct SweepResult {
  /// The spec the sweep ran under (inputs recorded by name).
  SweepSpec spec;
  std::vector<std::string> input_names;
  /// Cells in grid order: datasets outermost, then mechanisms (each "agm"
  /// entry expanding over models), then epsilons.
  std::vector<SweepCell> cells;
  /// Wall-clock of the whole sweep (a timing field).
  double total_seconds = 0.0;
};

/// Runs the sweep over explicit inputs. Fails fast on an invalid spec
/// (empty grid axes, repeats < 1, unknown model, non-positive epsilon);
/// per-cell pipeline failures are recorded in the cell, not fatal.
util::Result<SweepResult> RunSweep(const std::vector<SweepInput>& inputs,
                                   const SweepSpec& spec);

/// Generates the stand-in datasets named in `spec.datasets` (at
/// `spec.dataset_scale`, seeded from `spec.seed`) and runs the sweep over
/// them. Fails on an unknown dataset name.
util::Result<SweepResult> RunSweepOnDatasets(const SweepSpec& spec);

/// Serializes a sweep result as the BENCH_sweep.json document (schema
/// "agmdp.sweep.v4"; see DESIGN.md). Includes a "mechanism_summary"
/// ranking: per mechanism, the mean composite utility score (mean of
/// degree_ks, degree_hellinger, clustering_ccdf_distance and
/// theta_f_hellinger cell means; lower is better) over its successful
/// cells, sorted best first. With `include_timing` false the timing fields
/// (total_seconds, per-cell seconds_mean) are omitted and the document is
/// byte-identical across runs with the same spec and inputs.
std::string SweepResultToJson(const SweepResult& result,
                              bool include_timing = true);

}  // namespace agmdp::eval

// The serializable private release: fitted AGM parameters plus the
// accountant ledger and provenance metadata, as one JSON document.
//
// Per the paper's Theorem 2 the fitted parameters *are* the release — once
// learned under the DP budget they can be stored, shipped, and resampled
// arbitrarily often at zero additional privacy cost. The artifact is the
// unit of exchange of the serving layer: `agmdp fit` writes one,
// `agmdp sample` / pipeline::ReleaseEngine consume it, and the embedded
// ledger keeps the release auditable after the fitting process is gone.
//
// The format is versioned JSON (schema "agmdp.release-artifact",
// kReleaseArtifactSchemaVersion): doubles are serialized with 17
// significant digits so a round trip is bit-exact, and the two uint64
// fields (config fingerprint, triangle target) travel as decimal strings
// because JSON numbers lose integers above 2^53. Readers reject unknown
// schema versions, dimension mismatches, and non-finite or negative
// parameter values (agm::ValidateAgmParams) instead of propagating garbage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/agm/agm_sampler.h"
#include "src/mechanisms/mechanism_tags.h"
#include "src/pipeline/pipeline_config.h"
#include "src/util/status.h"

namespace agmdp::pipeline {

/// Bump when the JSON layout changes incompatibly; readers reject any
/// other version.
inline constexpr int kReleaseArtifactSchemaVersion = 1;

/// \brief Mechanism-specific fitted state for the non-AGM publication
/// schemes. Empty (all vectors empty, scalars zero) for "agm" artifacts —
/// the AGM release lives entirely in `params`.
///
/// community_dp: `node_blocks[v]` is the (private) community of node v,
/// `block_edges` holds the noised edge count of every unordered block pair
/// in row-major upper-triangular order (size B(B+1)/2), and `block_attr`
/// holds per-block attribute-config histograms (size B * 2^w).
///
/// kanon_baseline: `node_blocks[v]` is node v's anonymity group,
/// `block_attr` the t-closeness-blended per-group attribute distribution,
/// and the anonymized degrees travel in `params.degree_sequence`.
struct MechanismPayload {
  uint32_t num_blocks = 0;
  std::vector<uint32_t> node_blocks;
  std::vector<double> block_edges;
  std::vector<double> block_attr;
  /// kanon_baseline knobs, recorded for the "equivalent protection" ledger.
  uint32_t k_anonymity = 0;
  double t_closeness = 0.0;

  bool Empty() const {
    return num_blocks == 0 && node_blocks.empty() && block_edges.empty() &&
           block_attr.empty() && k_anonymity == 0 && t_closeness == 0.0;
  }
};

/// \brief A stored private release: parameters + ledger + provenance.
struct ReleaseArtifact {
  int schema_version = kReleaseArtifactSchemaVersion;
  /// Release mechanism by registry tag (mechanisms::KnownMechanismTags).
  /// Validated at every read boundary; unknown tags are a typed
  /// InvalidArgument, never silently served.
  std::string mechanism = "agm";
  /// Structural model by registry name; resolved when an engine is built.
  /// Non-AGM mechanisms carry their mechanism tag here (they do not use
  /// the structural-model registry).
  std::string model;
  /// Mechanism-specific fitted state; empty for "agm".
  MechanismPayload payload;
  /// PipelineConfig::Fingerprint() of the configuration that produced the
  /// fit (provenance only — consumers never re-derive settings from it).
  uint64_t config_fingerprint = 0;
  /// Budget the fit ran under and what it actually spent; both zero for
  /// non-private artifacts (the exact-parameter baselines).
  double epsilon_budget = 0.0;
  double epsilon_spent = 0.0;
  /// The accountant ledger of the fit, in spend order.
  BudgetLedger ledger;
  /// The fitted parameters — the release itself.
  agm::AgmParams params;
  /// Sampler defaults baked at fit time (a consumer may override them per
  /// request; these are the settings the producer validated).
  int acceptance_iterations = 3;
  double acceptance_tolerance = 0.01;
  double min_acceptance = 1e-3;
};

/// Packages a fit result for serving/storage under `config`'s settings.
ReleaseArtifact MakeReleaseArtifact(const FitResult& fit,
                                    const PipelineConfig& config);

/// Packages bare parameters (no ledger — the non-private baselines and the
/// legacy SampleRelease path).
ReleaseArtifact MakeReleaseArtifact(const agm::AgmParams& params,
                                    const PipelineConfig& config);

/// Structural validation: supported schema version, named model, valid
/// parameters, sane knobs and ledger entries. Run by the reader and by
/// ReleaseEngine::Create.
util::Status ValidateReleaseArtifact(const ReleaseArtifact& artifact);

/// Deterministic JSON serialization (byte-identical for equal artifacts).
std::string ReleaseArtifactToJson(const ReleaseArtifact& artifact);

/// Parses and validates an artifact document. Rejects unknown schema
/// versions with a message naming both versions.
util::Result<ReleaseArtifact> ReleaseArtifactFromJson(const std::string& json);

util::Status WriteReleaseArtifact(const ReleaseArtifact& artifact,
                                  const std::string& path);
util::Result<ReleaseArtifact> ReadReleaseArtifact(const std::string& path);

/// Resident-memory estimate of the artifact's parameters — the sizing hook
/// the serving layer's byte-budgeted engine cache charges admissions by
/// (together with ReleaseEngine::ApproxBytes, which adds the serving
/// state on top).
uint64_t EstimateArtifactBytes(const ReleaseArtifact& artifact);

/// Identity of the *release* (not just the config): a stable FNV-1a hash
/// of the canonical JSON serialization. The server's per-tenant epsilon
/// ledger charges each tenant once per release key, so re-loading or
/// re-sampling the same stored release never double-charges while a
/// different fit — even under the same config fingerprint — does.
uint64_t ReleaseArtifactReleaseKey(const ReleaseArtifact& artifact);

}  // namespace agmdp::pipeline

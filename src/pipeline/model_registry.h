// Structural-model registry: the set of models the release pipeline can
// plug into the AGM sampling loop, keyed by name.
//
// The two paper models (FCL, TriCycLe) are "builtin": the AGM sampler has
// dedicated fast paths for them (the sharded parallel Chung-Lu sampler and
// the sequential rewiring chain). Every other entry supplies an
// agm::StructuralGenerator that builds an edge set from the private
// parameters (degree sequence, optionally a triangle target) and the
// attribute-acceptance filter — adding a scenario is one registry entry,
// with budget accounting and CLI/bench wiring inherited for free.
#pragma once

#include <string>
#include <vector>

#include "src/agm/agm_sampler.h"

namespace agmdp::pipeline {

struct StructuralModelSpec {
  std::string name;
  std::string description;
  /// Whether ΘM includes a DP triangle-count target for this model (and
  /// therefore whether the default budget split reserves a share for it).
  bool needs_triangles = false;
  /// True for the sampler's builtin fast paths (fcl / tricycle).
  bool builtin = false;
  /// Valid when `builtin`.
  agm::StructuralModelKind kind = agm::StructuralModelKind::kFcl;
  /// Valid when not `builtin`.
  agm::StructuralGenerator generator;
};

/// Returns the spec registered under `name`, or nullptr if unknown.
const StructuralModelSpec* FindStructuralModel(const std::string& name);

/// All registered model names, in registry order.
std::vector<std::string> StructuralModelNames();

/// Comma-separated registry names (for usage/error messages).
std::string StructuralModelNameList();

}  // namespace agmdp::pipeline

#include "src/pipeline/release_engine.h"

#include <algorithm>
#include <utility>

#include "src/mechanisms/release_mechanism.h"
#include "src/pipeline/model_registry.h"

namespace agmdp::pipeline {

namespace {

/// Base seed of the calibration substream family. The calibration draw is
/// a pure function of (this constant, the artifact fingerprint), so two
/// engines built from the same artifact calibrate identically — at any
/// pool size, on any machine.
constexpr uint64_t kCalibrationSeed = 0xa6dca11b7a7e5eedULL;

/// More workers than sampler shards can never be scheduled at once.
constexpr int kMaxPoolWorkers = agm::kSamplerProposalShards;

}  // namespace

util::Result<std::unique_ptr<ReleaseEngine>> ReleaseEngine::Create(
    ReleaseArtifact artifact, const EngineOptions& options) {
  if (auto st = ValidateReleaseArtifact(artifact); !st.ok()) return st;
  if (options.default_refine_iterations < 0) {
    return util::Status::InvalidArgument(
        "release engine: default_refine_iterations must be >= 0");
  }

  // Non-AGM mechanisms: resolve the sampling handle from the mechanism
  // registry and skip the structural-model / calibration machinery —
  // their artifacts fully describe the sampling distribution, and the
  // Substream request keying in Sample/SampleMany supplies determinism.
  if (artifact.mechanism != "agm") {
    const mechanisms::MechanismSpec* mech =
        mechanisms::FindMechanism(artifact.mechanism);
    if (mech == nullptr || !mech->make_sampler) {
      return util::Status::InvalidArgument(
          "release engine: mechanism '" + artifact.mechanism +
          "' has no registered sampler (registered: " +
          mechanisms::MechanismNameList() + ")");
    }
    auto sampler = mech->make_sampler(artifact);
    if (!sampler.ok()) return sampler.status();
    std::unique_ptr<ReleaseEngine> engine(
        new ReleaseEngine(std::move(artifact), options,
                          agm::AgmSampleOptions{}, /*pool_workers=*/1));
    engine->sampler_ = std::move(sampler).value();
    return engine;
  }

  const StructuralModelSpec* spec = FindStructuralModel(artifact.model);
  if (spec == nullptr) {
    return util::Status::InvalidArgument(
        "release engine: artifact model '" + artifact.model +
        "' is not registered (registered: " + StructuralModelNameList() +
        ")");
  }

  // Resolve the sampler options once: caller knobs, then the artifact's
  // baked acceptance settings, then the registry's model binding.
  agm::AgmSampleOptions base = options.sample;
  base.acceptance_iterations = artifact.acceptance_iterations;
  base.acceptance_tolerance = artifact.acceptance_tolerance;
  base.min_acceptance = artifact.min_acceptance;
  base.pool = nullptr;
  base.initial_acceptance = nullptr;
  base.final_acceptance = nullptr;
  if (spec->builtin) {
    base.model = spec->kind;
    base.generator = nullptr;
  } else {
    base.generator = spec->generator;
  }

  const int pool_workers =
      std::min(util::ResolveThreadCount(options.threads), kMaxPoolWorkers);
  std::unique_ptr<ReleaseEngine> engine(new ReleaseEngine(
      std::move(artifact), options, std::move(base), pool_workers));

  if (options.calibrate && engine->base_options_.acceptance_iterations > 0) {
    agm::AgmSampleOptions calibration = engine->base_options_;
    calibration.pool = &engine->pool_;
    calibration.final_acceptance = &engine->calibrated_acceptance_;
    util::Rng rng = util::Rng::Substream(
        kCalibrationSeed, engine->artifact_.config_fingerprint);
    auto sample =
        agm::SampleAgmGraph(engine->artifact_.params, calibration, rng);
    if (!sample.ok()) return sample.status();
  }
  return engine;
}

ReleaseEngine::ReleaseEngine(ReleaseArtifact artifact,
                             const EngineOptions& options,
                             agm::AgmSampleOptions base_options,
                             int pool_workers)
    : artifact_(std::move(artifact)),
      options_(options),
      base_options_(std::move(base_options)),
      pool_(pool_workers) {}

uint64_t ReleaseEngine::ApproxBytes() const {
  // Per-worker overhead approximates a parked thread: kernel stack plus
  // pool bookkeeping. Deliberately round — the cache budget is a resource
  // guardrail, not an allocator audit.
  constexpr uint64_t kPerWorkerBytes = 64 * 1024;
  if (sampler_ != nullptr) {
    return EstimateArtifactBytes(artifact_) + sampler_->ApproxBytes() +
           sizeof(ReleaseEngine);
  }
  return EstimateArtifactBytes(artifact_) +
         calibrated_acceptance_.size() * sizeof(double) +
         static_cast<uint64_t>(pool_.num_workers()) * kPerWorkerBytes +
         sizeof(ReleaseEngine);
}

agm::AgmSampleOptions ReleaseEngine::RequestOptions(
    int refine_iterations) const {
  agm::AgmSampleOptions resolved = base_options_;
  if (calibrated()) {
    resolved.initial_acceptance = &calibrated_acceptance_;
    resolved.acceptance_iterations =
        refine_iterations >= 0 ? refine_iterations
                               : options_.default_refine_iterations;
  }
  return resolved;
}

util::Result<graph::AttributedGraph> ReleaseEngine::Sample(
    const SampleRequest& request) const {
  if (sampler_ != nullptr) {
    // Same request keying as the AGM path; the sampler is immutable, so
    // concurrent requests need no coordination.
    util::Rng rng = util::Rng::Substream(request.seed, request.sequence);
    return sampler_->Sample(rng);
  }
  agm::AgmSampleOptions resolved = RequestOptions(request.refine_iterations);
  util::Rng rng = util::Rng::Substream(request.seed, request.sequence);
  if (request.threads <= 1) {
    // Inline sequential sampling: no shared state, so concurrent requests
    // proceed in parallel without coordination.
    resolved.threads = 1;
    return agm::SampleAgmGraph(artifact_.params, resolved, rng);
  }
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  resolved.pool = &pool_;
  return agm::SampleAgmGraph(artifact_.params, resolved, rng);
}

util::Result<std::vector<graph::AttributedGraph>> ReleaseEngine::SampleMany(
    int n, const SampleRequest& base) const {
  if (n < 0) {
    return util::Status::InvalidArgument(
        "release engine: SampleMany needs n >= 0");
  }
  if (sampler_ != nullptr) {
    // Each task is exactly Sample({seed, sequence + i}); per-sample cost
    // is one block-model draw, so a sequential loop already saturates the
    // request path and stays trivially bitwise-stable at any pool size.
    std::vector<graph::AttributedGraph> graphs;
    graphs.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      util::Rng rng = util::Rng::Substream(
          base.seed, base.sequence + static_cast<uint64_t>(i));
      auto sample = sampler_->Sample(rng);
      if (!sample.ok()) return sample.status();
      graphs.push_back(std::move(sample).value());
    }
    return graphs;
  }
  if (n == 1) {
    // A single request gains nothing from cross-sample fan-out; hand it
    // the whole pool for intra-sample parallelism instead. The pool never
    // affects bits, so the result is identical either way.
    agm::AgmSampleOptions resolved = RequestOptions(base.refine_iterations);
    util::Rng rng = util::Rng::Substream(base.seed, base.sequence);
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    resolved.pool = &pool_;
    auto sample = agm::SampleAgmGraph(artifact_.params, resolved, rng);
    if (!sample.ok()) return sample.status();
    std::vector<graph::AttributedGraph> graphs;
    graphs.push_back(std::move(sample).value());
    return graphs;
  }
  std::vector<graph::AttributedGraph> graphs(static_cast<size_t>(n));
  std::vector<util::Status> statuses(static_cast<size_t>(n));
  {
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    pool_.Run(n, [&](int i) {
      // Task i is exactly Sample({seed, sequence + i, refine, threads: 1})
      // — a pure function of the request, so scheduling cannot change it.
      agm::AgmSampleOptions resolved =
          RequestOptions(base.refine_iterations);
      resolved.threads = 1;
      util::Rng rng = util::Rng::Substream(
          base.seed, base.sequence + static_cast<uint64_t>(i));
      auto sample = agm::SampleAgmGraph(artifact_.params, resolved, rng);
      if (sample.ok()) {
        graphs[static_cast<size_t>(i)] = std::move(sample).value();
      } else {
        statuses[static_cast<size_t>(i)] = sample.status();
      }
    });
  }
  for (const util::Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return graphs;
}

util::Result<graph::AttributedGraph> ReleaseEngine::SampleFromStream(
    util::Rng& rng) const {
  if (sampler_ != nullptr) return sampler_->Sample(rng);
  agm::AgmSampleOptions resolved = RequestOptions(/*refine_iterations=*/-1);
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  resolved.pool = &pool_;
  return agm::SampleAgmGraph(artifact_.params, resolved, rng);
}

}  // namespace agmdp::pipeline

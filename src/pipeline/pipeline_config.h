// Configuration and result types for the unified private-release pipeline.
//
// A PipelineConfig describes one release end to end: the global epsilon and
// its split, the structural model (by registry name), the ΘF estimator, and
// the sampler settings. A ReleaseResult carries everything an auditor or a
// benchmark needs afterwards: the synthetic graph, the learned parameters,
// the PrivacyAccountant ledger (whose spends sum to the global epsilon),
// and per-stage wall-clock timings.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/agm/agm_dp.h"
#include "src/dp/privacy_budget.h"
#include "src/graph/attributed_graph.h"
#include "src/util/status.h"

namespace agmdp::pipeline {

struct PipelineConfig {
  /// Global privacy budget for the release.
  double epsilon = 0.6931471805599453;  // ln 2, the paper's headline setting
  /// Stage split; a zero-total split selects the model's default (even
  /// four-way when the model learns a triangle target, S-heavy three-way
  /// otherwise — Section 5 of the paper).
  dp::BudgetSplit split;
  /// Release mechanism by tag (mechanisms::KnownMechanismTags): "agm" is
  /// the paper's pipeline; "community_dp" and "kanon_baseline" are the
  /// competing publication schemes in src/mechanisms/.
  std::string mechanism = "agm";
  /// Structural model by registry name (model_registry.h): "tricycle",
  /// "fcl", "bter", "holme_kim", "erdos_renyi". Only consulted by the
  /// "agm" mechanism.
  std::string model = "tricycle";
  /// kanon_baseline: anonymity group size; 0 selects max(2, round(2/eps)),
  /// the "equivalent protection" heuristic.
  uint32_t k_anonymity = 0;
  /// kanon_baseline: t-closeness bound on the per-group attribute
  /// distribution's total-variation distance from the global one.
  double t_closeness = 0.2;
  /// community_dp: number of partition blocks; 0 selects
  /// max(2, min(64, round(sqrt(n)/8))).
  uint32_t community_blocks = 0;
  agm::ThetaFMethod theta_f_method = agm::ThetaFMethod::kEdgeTruncation;
  /// Truncation parameter for ΘF; 0 selects the paper's n^(1/3) heuristic.
  uint32_t truncation_k = 0;
  /// delta for the smooth-sensitivity ΘF variant.
  double smooth_delta = 1e-6;
  /// Group size for sample-and-aggregate; 0 selects sqrt(n).
  uint32_t sa_group_size = 0;
  dp::LadderOptions ladder;
  /// Sampler options (acceptance iterations, threads, model-specific
  /// knobs). `sample.model` and `sample.generator` are overridden by the
  /// registry resolution of `model`.
  agm::AgmSampleOptions sample;

  /// Full structural validation, performed before any budget is spent:
  /// the model must be registered, epsilon finite and positive, the budget
  /// split affordable (non-negative shares whose total is zero — model
  /// default — or at most epsilon), and the sampler/estimator knobs in
  /// range. Every pipeline entry point calls this first, so a bad config
  /// fails with a typed InvalidArgument instead of partway through a fit.
  util::Status Validate() const;

  /// Stable FNV-1a fingerprint of the fit-relevant fields (model, epsilon,
  /// split, ΘF estimator knobs, ladder and acceptance settings). Recorded
  /// in ReleaseArtifact so a consumer can tell which configuration produced
  /// a stored release. Sampler thread counts are excluded: they never
  /// change the output.
  uint64_t Fingerprint() const;
};

/// Shared range checks for the sampler acceptance knobs — one definition
/// for the fit-side PipelineConfig::Validate() and the serving-side
/// artifact boundary (ValidateReleaseArtifact), so the two cannot drift.
util::Status ValidateAcceptanceKnobs(int acceptance_iterations,
                                     double acceptance_tolerance,
                                     double min_acceptance);

/// One accountant entry: (stage label, epsilon spent), in spend order.
using BudgetLedger = std::vector<std::pair<std::string, double>>;

/// Result of the fit half alone (parameters are the release: they can be
/// stored and re-sampled arbitrarily often at no further privacy cost).
struct FitResult {
  agm::AgmParams params;
  BudgetLedger ledger;
  double epsilon_budget = 0.0;
  double epsilon_spent = 0.0;
  std::vector<agm::StageSeconds> stage_seconds;
};

/// Result of a full private release.
struct ReleaseResult {
  graph::AttributedGraph graph;
  agm::AgmParams params;
  /// PrivacyAccountant ledger; spends sum to `epsilon_spent`, which equals
  /// the configured epsilon under the model-default splits.
  BudgetLedger ledger;
  double epsilon_budget = 0.0;
  double epsilon_spent = 0.0;
  /// Wall clock per stage: theta_x, theta_f, degree_sequence,
  /// [triangles,] sample.
  std::vector<agm::StageSeconds> stage_seconds;
  double total_seconds = 0.0;
  /// Registry name of the structural model that produced the graph.
  std::string model;
};

}  // namespace agmdp::pipeline

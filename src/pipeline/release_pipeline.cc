#include "src/pipeline/release_pipeline.h"

#include <chrono>
#include <utility>

namespace agmdp::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

util::Result<const StructuralModelSpec*> ResolveModel(
    const PipelineConfig& config) {
  const StructuralModelSpec* spec = FindStructuralModel(config.model);
  if (spec == nullptr) {
    return util::Status::InvalidArgument(
        "pipeline: unknown structural model '" + config.model +
        "' (registered: " + StructuralModelNameList() + ")");
  }
  return spec;
}

// Maps the pipeline config onto the AGM learner's options. Models that
// learn a triangle target follow TriCycLe's budget semantics (even four-way
// default split), the rest follow FCL's (S-heavy three-way).
agm::AgmDpOptions MakeLearnOptions(const PipelineConfig& config,
                                   const StructuralModelSpec& spec) {
  agm::AgmDpOptions options;
  options.epsilon = config.epsilon;
  options.model = spec.needs_triangles ? agm::StructuralModelKind::kTriCycLe
                                       : agm::StructuralModelKind::kFcl;
  options.theta_f_method = config.theta_f_method;
  options.truncation_k = config.truncation_k;
  options.smooth_delta = config.smooth_delta;
  options.sa_group_size = config.sa_group_size;
  options.split = config.split;
  options.ladder = config.ladder;
  return options;
}

agm::AgmSampleOptions MakeSampleOptions(const PipelineConfig& config,
                                        const StructuralModelSpec& spec) {
  agm::AgmSampleOptions options = config.sample;
  if (spec.builtin) {
    options.model = spec.kind;
    options.generator = nullptr;
  } else {
    options.generator = spec.generator;
  }
  return options;
}

// The fit half, with the model already resolved (shared by
// FitPrivateParams and RunPrivateRelease so the registry is consulted and
// the config validated in exactly one place).
util::Result<FitResult> FitWithSpec(const graph::AttributedGraph& input,
                                    const PipelineConfig& config,
                                    const StructuralModelSpec& spec,
                                    util::Rng& rng) {
  if (config.epsilon <= 0.0) {
    return util::Status::InvalidArgument(
        "pipeline: epsilon must be positive");
  }

  dp::PrivacyAccountant accountant(config.epsilon);
  std::vector<agm::StageSeconds> timings;
  auto params = agm::LearnAgmParamsDp(input, MakeLearnOptions(config, spec),
                                      accountant, rng, &timings);
  if (!params.ok()) return params.status();

  FitResult result;
  result.params = std::move(params).value();
  result.ledger = accountant.ledger();
  result.epsilon_budget = accountant.total();
  result.epsilon_spent = accountant.spent();
  result.stage_seconds = std::move(timings);
  return result;
}

}  // namespace

util::Result<FitResult> FitPrivateParams(const graph::AttributedGraph& input,
                                         const PipelineConfig& config,
                                         util::Rng& rng) {
  auto spec = ResolveModel(config);
  if (!spec.ok()) return spec.status();
  return FitWithSpec(input, config, *spec.value(), rng);
}

util::Result<graph::AttributedGraph> SampleRelease(
    const agm::AgmParams& params, const PipelineConfig& config,
    util::Rng& rng) {
  auto spec = ResolveModel(config);
  if (!spec.ok()) return spec.status();
  return agm::SampleAgmGraph(params, MakeSampleOptions(config, *spec.value()),
                             rng);
}

util::Result<ReleaseResult> RunPrivateRelease(
    const graph::AttributedGraph& input, const PipelineConfig& config,
    util::Rng& rng) {
  const Clock::time_point start = Clock::now();
  auto spec = ResolveModel(config);
  if (!spec.ok()) return spec.status();
  auto fit = FitWithSpec(input, config, *spec.value(), rng);
  if (!fit.ok()) return fit.status();

  const Clock::time_point sample_start = Clock::now();
  auto synthetic = agm::SampleAgmGraph(
      fit.value().params, MakeSampleOptions(config, *spec.value()), rng);
  if (!synthetic.ok()) return synthetic.status();

  ReleaseResult result{std::move(synthetic).value(),
                       std::move(fit.value().params),
                       std::move(fit.value().ledger),
                       fit.value().epsilon_budget,
                       fit.value().epsilon_spent,
                       std::move(fit.value().stage_seconds),
                       0.0,
                       config.model};
  result.stage_seconds.push_back({"sample", SecondsSince(sample_start)});
  result.total_seconds = SecondsSince(start);
  return result;
}

}  // namespace agmdp::pipeline

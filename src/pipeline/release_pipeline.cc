#include "src/pipeline/release_pipeline.h"

#include <chrono>
#include <memory>
#include <utility>

#include "src/mechanisms/release_mechanism.h"
#include "src/pipeline/release_engine.h"

namespace agmdp::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Maps the pipeline config onto the AGM learner's options. Models that
// learn a triangle target follow TriCycLe's budget semantics (even four-way
// default split), the rest follow FCL's (S-heavy three-way).
agm::AgmDpOptions MakeLearnOptions(const PipelineConfig& config,
                                   const StructuralModelSpec& spec) {
  agm::AgmDpOptions options;
  options.epsilon = config.epsilon;
  options.model = spec.needs_triangles ? agm::StructuralModelKind::kTriCycLe
                                       : agm::StructuralModelKind::kFcl;
  options.theta_f_method = config.theta_f_method;
  options.truncation_k = config.truncation_k;
  options.smooth_delta = config.smooth_delta;
  options.sa_group_size = config.sa_group_size;
  options.split = config.split;
  options.ladder = config.ladder;
  return options;
}

// An uncalibrated single-use engine reproducing the legacy free-function
// sampling semantics exactly: cold acceptance loop, config sample knobs,
// pool sized by config.sample.threads.
util::Result<std::unique_ptr<ReleaseEngine>> MakeOneShotEngine(
    const agm::AgmParams& params, const PipelineConfig& config) {
  EngineOptions options;
  options.threads = config.sample.threads;
  options.calibrate = false;
  options.sample = config.sample;
  return ReleaseEngine::Create(MakeReleaseArtifact(params, config), options);
}

// The fit half, with the config already validated (shared by
// FitPrivateParams and RunPrivateRelease so validation happens in exactly
// one place, before any budget is spent).
util::Result<FitResult> FitValidated(const graph::AttributedGraph& input,
                                     const PipelineConfig& config,
                                     util::Rng& rng) {
  const StructuralModelSpec* spec = FindStructuralModel(config.model);

  dp::PrivacyAccountant accountant(config.epsilon);
  std::vector<agm::StageSeconds> timings;
  auto params = agm::LearnAgmParamsDp(input, MakeLearnOptions(config, *spec),
                                      accountant, rng, &timings);
  if (!params.ok()) return params.status();

  FitResult result;
  result.params = std::move(params).value();
  result.ledger = accountant.ledger();
  result.epsilon_budget = accountant.total();
  result.epsilon_spent = accountant.spent();
  result.stage_seconds = std::move(timings);
  return result;
}

}  // namespace

util::Result<FitResult> FitPrivateParams(const graph::AttributedGraph& input,
                                         const PipelineConfig& config,
                                         util::Rng& rng) {
  if (auto st = config.Validate(); !st.ok()) return st;
  return FitValidated(input, config, rng);
}

util::Result<ReleaseArtifact> FitReleaseArtifact(
    const graph::AttributedGraph& input, const PipelineConfig& config,
    util::Rng& rng) {
  // Mechanism dispatch: non-AGM schemes fit through their registry entry
  // (each charging its own accountant); the AGM path below is byte-for-byte
  // the pre-registry pipeline, so existing artifacts and golden checksums
  // are untouched.
  if (config.mechanism != "agm") {
    if (auto st = config.Validate(); !st.ok()) return st;
    const mechanisms::MechanismSpec* mech =
        mechanisms::FindMechanism(config.mechanism);
    if (mech == nullptr || !mech->fit) {
      return util::Status::InvalidArgument(
          "release pipeline: mechanism '" + config.mechanism +
          "' has no registered fit (registered: " +
          mechanisms::MechanismNameList() + ")");
    }
    return mech->fit(input, config, rng);
  }
  auto fit = FitPrivateParams(input, config, rng);
  if (!fit.ok()) return fit.status();
  return MakeReleaseArtifact(fit.value(), config);
}

util::Result<graph::AttributedGraph> SampleRelease(
    const agm::AgmParams& params, const PipelineConfig& config,
    util::Rng& rng) {
  // Sampling spends no budget, so fit-side fields (epsilon, split,
  // estimator knobs) are deliberately not validated here; engine creation
  // checks everything sampling actually reads (model resolution,
  // acceptance knobs, parameter sanity).
  auto engine = MakeOneShotEngine(params, config);
  if (!engine.ok()) return engine.status();
  return engine.value()->SampleFromStream(rng);
}

util::Result<ReleaseResult> RunPrivateRelease(
    const graph::AttributedGraph& input, const PipelineConfig& config,
    util::Rng& rng) {
  const Clock::time_point start = Clock::now();
  if (auto st = config.Validate(); !st.ok()) return st;

  // Non-AGM mechanisms: fit through the registry, serve one sample from
  // the stream via an uncalibrated engine, and report the artifact's
  // ledger (empty with zero spend for syntactic baselines).
  if (config.mechanism != "agm") {
    auto artifact = FitReleaseArtifact(input, config, rng);
    if (!artifact.ok()) return artifact.status();
    const double fit_seconds = SecondsSince(start);

    const Clock::time_point sample_start = Clock::now();
    EngineOptions engine_options;
    engine_options.calibrate = false;
    auto engine =
        ReleaseEngine::Create(std::move(artifact).value(), engine_options);
    if (!engine.ok()) return engine.status();
    auto synthetic = engine.value()->SampleFromStream(rng);
    if (!synthetic.ok()) return synthetic.status();

    const ReleaseArtifact& fitted = engine.value()->artifact();
    ReleaseResult result{std::move(synthetic).value(),
                         fitted.params,
                         fitted.ledger,
                         fitted.epsilon_budget,
                         fitted.epsilon_spent,
                         {},
                         0.0,
                         config.mechanism};
    result.stage_seconds.push_back({"fit", fit_seconds});
    result.stage_seconds.push_back({"sample", SecondsSince(sample_start)});
    result.total_seconds = SecondsSince(start);
    return result;
  }

  auto fit = FitValidated(input, config, rng);
  if (!fit.ok()) return fit.status();

  const Clock::time_point sample_start = Clock::now();
  auto engine = MakeOneShotEngine(fit.value().params, config);
  if (!engine.ok()) return engine.status();
  auto synthetic = engine.value()->SampleFromStream(rng);
  if (!synthetic.ok()) return synthetic.status();

  ReleaseResult result{std::move(synthetic).value(),
                       std::move(fit.value().params),
                       std::move(fit.value().ledger),
                       fit.value().epsilon_budget,
                       fit.value().epsilon_spent,
                       std::move(fit.value().stage_seconds),
                       0.0,
                       config.model};
  result.stage_seconds.push_back({"sample", SecondsSince(sample_start)});
  result.total_seconds = SecondsSince(start);
  return result;
}

}  // namespace agmdp::pipeline

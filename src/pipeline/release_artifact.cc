#include "src/pipeline/release_artifact.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/agm/params_io.h"
#include "src/util/json.h"

namespace agmdp::pipeline {

namespace {

constexpr char kSchemaName[] = "agmdp.release-artifact";

util::Status Invalid(const std::string& what) {
  return util::Status::InvalidArgument("release artifact: " + what);
}

util::Status CheckSchemaVersion(int version) {
  if (version != kReleaseArtifactSchemaVersion) {
    return Invalid("schema version " + std::to_string(version) +
                   " is not supported (this build reads version " +
                   std::to_string(kReleaseArtifactSchemaVersion) + ")");
  }
  return util::Status::OK();
}

// ------------------------------------------------- typed JSON field access

util::Result<const util::JsonValue*> Require(const util::JsonValue& object,
                                             const std::string& key) {
  const util::JsonValue* field = object.Find(key);
  if (field == nullptr) return Invalid("missing field '" + key + "'");
  return field;
}

util::Result<double> RequireNumber(const util::JsonValue& object,
                                   const std::string& key) {
  auto field = Require(object, key);
  if (!field.ok()) return field.status();
  if (!field.value()->is_number()) {
    return Invalid("field '" + key + "' must be a number");
  }
  return field.value()->number_value();
}

util::Result<std::string> RequireString(const util::JsonValue& object,
                                        const std::string& key) {
  auto field = Require(object, key);
  if (!field.ok()) return field.status();
  if (!field.value()->is_string()) {
    return Invalid("field '" + key + "' must be a string");
  }
  return field.value()->string_value();
}

util::Result<int> RequireInt(const util::JsonValue& object,
                             const std::string& key) {
  auto number = RequireNumber(object, key);
  if (!number.ok()) return number.status();
  const double value = number.value();
  if (value != std::floor(value) || std::fabs(value) > 1e9) {
    return Invalid("field '" + key + "' must be a small integer");
  }
  return static_cast<int>(value);
}

// uint64 values travel as decimal strings: JSON numbers are doubles and
// lose integers above 2^53.
util::Result<uint64_t> RequireUint64String(const util::JsonValue& object,
                                           const std::string& key) {
  auto text = RequireString(object, key);
  if (!text.ok()) return text.status();
  const std::string& s = text.value();
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    return Invalid("field '" + key + "' must be a decimal uint64 string");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') {
    return Invalid("field '" + key + "' overflows uint64");
  }
  return static_cast<uint64_t>(value);
}

}  // namespace

ReleaseArtifact MakeReleaseArtifact(const FitResult& fit,
                                    const PipelineConfig& config) {
  ReleaseArtifact artifact = MakeReleaseArtifact(fit.params, config);
  artifact.ledger = fit.ledger;
  artifact.epsilon_budget = fit.epsilon_budget;
  artifact.epsilon_spent = fit.epsilon_spent;
  return artifact;
}

ReleaseArtifact MakeReleaseArtifact(const agm::AgmParams& params,
                                    const PipelineConfig& config) {
  ReleaseArtifact artifact;
  artifact.mechanism = config.mechanism;
  artifact.model = config.model;
  artifact.config_fingerprint = config.Fingerprint();
  artifact.params = params;
  artifact.acceptance_iterations = config.sample.acceptance_iterations;
  artifact.acceptance_tolerance = config.sample.acceptance_tolerance;
  artifact.min_acceptance = config.sample.min_acceptance;
  return artifact;
}

namespace {

// Shape/value checks of the community_dp payload: a private partition of n
// nodes into num_blocks communities, a noised count per unordered block
// pair, and a per-block attribute-config histogram each alias-samplable
// (non-negative, finite, positive row sum).
util::Status ValidateCommunityPayload(const ReleaseArtifact& artifact) {
  const MechanismPayload& p = artifact.payload;
  const size_t n = p.node_blocks.size();
  const size_t blocks = p.num_blocks;
  if (blocks == 0 || n == 0) {
    return Invalid("community_dp payload needs num_blocks >= 1 and a "
                   "non-empty node partition");
  }
  for (uint32_t block : p.node_blocks) {
    if (block >= blocks) {
      return Invalid("community_dp node_blocks entry out of range");
    }
  }
  if (p.block_edges.size() != blocks * (blocks + 1) / 2) {
    return Invalid("community_dp block_edges must have one entry per "
                   "unordered block pair");
  }
  for (double count : p.block_edges) {
    if (!std::isfinite(count) || count < 0.0) {
      return Invalid("community_dp block_edges must be finite and "
                     "non-negative");
    }
  }
  if (artifact.params.w < 0 || artifact.params.w > 20) {
    return Invalid("community_dp payload needs 0 <= w <= 20");
  }
  const size_t configs = size_t{1} << artifact.params.w;
  if (p.block_attr.size() != blocks * configs) {
    return Invalid("community_dp block_attr must be num_blocks * 2^w");
  }
  for (size_t b = 0; b < blocks; ++b) {
    double row_sum = 0.0;
    for (size_t y = 0; y < configs; ++y) {
      const double mass = p.block_attr[b * configs + y];
      if (!std::isfinite(mass) || mass < 0.0) {
        return Invalid("community_dp block_attr must be finite and "
                       "non-negative");
      }
      row_sum += mass;
    }
    if (row_sum <= 0.0) {
      return Invalid("community_dp block_attr row " + std::to_string(b) +
                     " has no mass");
    }
  }
  return util::Status::OK();
}

// kanon_baseline is syntactic: it must assert *zero* epsilon spend (the
// "equivalent protection" ledger is epsilon-free) and a well-formed
// grouping of the anonymized degree sequence.
util::Status ValidateKanonPayload(const ReleaseArtifact& artifact) {
  const MechanismPayload& p = artifact.payload;
  if (!artifact.ledger.empty() || artifact.epsilon_budget != 0.0 ||
      artifact.epsilon_spent != 0.0) {
    return Invalid("kanon_baseline artifacts must carry zero epsilon spend "
                   "and an empty ledger");
  }
  if (p.k_anonymity < 2) {
    return Invalid("kanon_baseline needs k_anonymity >= 2");
  }
  if (!std::isfinite(p.t_closeness) || p.t_closeness < 0.0 ||
      p.t_closeness > 1.0) {
    return Invalid("kanon_baseline needs t_closeness in [0, 1]");
  }
  const size_t n = artifact.params.degree_sequence.size();
  if (n == 0 || p.node_blocks.size() != n) {
    return Invalid("kanon_baseline payload needs one anonymity group per "
                   "degree-sequence entry");
  }
  if (p.num_blocks == 0) {
    return Invalid("kanon_baseline payload needs num_blocks >= 1");
  }
  for (uint32_t block : p.node_blocks) {
    if (block >= p.num_blocks) {
      return Invalid("kanon_baseline node_blocks entry out of range");
    }
  }
  if (artifact.params.w < 0 || artifact.params.w > 20) {
    return Invalid("kanon_baseline payload needs 0 <= w <= 20");
  }
  const size_t configs = size_t{1} << artifact.params.w;
  if (p.block_attr.size() != size_t{p.num_blocks} * configs) {
    return Invalid("kanon_baseline block_attr must be num_blocks * 2^w");
  }
  for (size_t b = 0; b < p.num_blocks; ++b) {
    double row_sum = 0.0;
    for (size_t y = 0; y < configs; ++y) {
      const double mass = p.block_attr[b * configs + y];
      if (!std::isfinite(mass) || mass < 0.0) {
        return Invalid("kanon_baseline block_attr must be finite and "
                       "non-negative");
      }
      row_sum += mass;
    }
    if (row_sum <= 0.0) {
      return Invalid("kanon_baseline block_attr row " + std::to_string(b) +
                     " has no mass");
    }
  }
  for (uint32_t d : artifact.params.degree_sequence) {
    if (d >= n) {
      return Invalid("kanon_baseline anonymized degree exceeds n - 1");
    }
  }
  return util::Status::OK();
}

}  // namespace

util::Status ValidateReleaseArtifact(const ReleaseArtifact& artifact) {
  if (auto st = CheckSchemaVersion(artifact.schema_version); !st.ok()) {
    return st;
  }
  // The mechanism tag gates everything downstream (engine construction,
  // registry rows, sweep cells), so an unknown tag is rejected here — at
  // every read boundary — with the set of tags this build can serve.
  if (!mechanisms::IsKnownMechanismTag(artifact.mechanism)) {
    return Invalid("unknown mechanism '" + artifact.mechanism +
                   "' (this build serves: " +
                   mechanisms::KnownMechanismTagList() + ")");
  }
  if (artifact.model.empty()) return Invalid("empty model name");
  if (!std::isfinite(artifact.epsilon_budget) ||
      artifact.epsilon_budget < 0.0 ||
      !std::isfinite(artifact.epsilon_spent) || artifact.epsilon_spent < 0.0) {
    return Invalid("epsilon budget/spent must be finite and non-negative");
  }
  double ledger_sum = 0.0;
  for (const auto& [stage, epsilon] : artifact.ledger) {
    if (stage.empty() || !std::isfinite(epsilon) || epsilon <= 0.0) {
      return Invalid("ledger entries need a stage name and positive epsilon");
    }
    ledger_sum += epsilon;
  }
  // The privacy-accounting fields are what an auditor reads, so they must
  // be mutually consistent: the ledger's spends are the spend, and nothing
  // can spend beyond the budget. (Tolerance covers re-summation order;
  // values themselves round-trip bit-exactly.)
  const double tolerance = 1e-9 * std::max(1.0, artifact.epsilon_budget);
  if (std::fabs(ledger_sum - artifact.epsilon_spent) > tolerance) {
    return Invalid("ledger sums to " + std::to_string(ledger_sum) +
                   " but epsilon_spent claims " +
                   std::to_string(artifact.epsilon_spent));
  }
  if (artifact.epsilon_spent > artifact.epsilon_budget + tolerance) {
    return Invalid("epsilon_spent exceeds epsilon_budget");
  }
  if (auto st = ValidateAcceptanceKnobs(artifact.acceptance_iterations,
                                        artifact.acceptance_tolerance,
                                        artifact.min_acceptance);
      !st.ok()) {
    return st;
  }
  if (artifact.mechanism == "agm") {
    if (!artifact.payload.Empty()) {
      return Invalid("agm artifacts must not carry a mechanism payload");
    }
    return agm::ValidateAgmParams(artifact.params);
  }
  if (artifact.mechanism == "community_dp") {
    return ValidateCommunityPayload(artifact);
  }
  return ValidateKanonPayload(artifact);
}

std::string ReleaseArtifactToJson(const ReleaseArtifact& artifact) {
  util::JsonWriter json;
  json.BeginObject();
  json.Key("schema").Value(kSchemaName);
  json.Key("schema_version").Value(artifact.schema_version);
  json.Key("model").Value(artifact.model);
  json.Key("mechanism").Value(artifact.mechanism);
  json.Key("config_fingerprint")
      .Value(std::to_string(artifact.config_fingerprint));
  json.Key("epsilon_budget").ValueExact(artifact.epsilon_budget);
  json.Key("epsilon_spent").ValueExact(artifact.epsilon_spent);
  json.Key("ledger").BeginArray();
  for (const auto& [stage, epsilon] : artifact.ledger) {
    json.BeginObject();
    json.Key("stage").Value(stage);
    json.Key("epsilon").ValueExact(epsilon);
    json.EndObject();
  }
  json.EndArray();
  json.Key("sample_defaults").BeginObject();
  json.Key("acceptance_iterations").Value(artifact.acceptance_iterations);
  json.Key("acceptance_tolerance").ValueExact(artifact.acceptance_tolerance);
  json.Key("min_acceptance").ValueExact(artifact.min_acceptance);
  json.EndObject();
  json.Key("params").BeginObject();
  json.Key("w").Value(artifact.params.w);
  json.Key("theta_x").BeginArray();
  for (double p : artifact.params.theta_x) json.ValueExact(p);
  json.EndArray();
  json.Key("theta_f").BeginArray();
  for (double p : artifact.params.theta_f) json.ValueExact(p);
  json.EndArray();
  json.Key("degree_sequence").BeginArray();
  for (uint32_t d : artifact.params.degree_sequence) {
    json.Value(static_cast<uint64_t>(d));
  }
  json.EndArray();
  json.Key("target_triangles")
      .Value(std::to_string(artifact.params.target_triangles));
  json.EndObject();
  // The mechanism payload is written only for non-AGM mechanisms: AGM
  // artifacts keep the exact PR-5 layout plus the "mechanism" tag above.
  if (artifact.mechanism != "agm") {
    const MechanismPayload& payload = artifact.payload;
    json.Key("mechanism_payload").BeginObject();
    json.Key("num_blocks").Value(static_cast<uint64_t>(payload.num_blocks));
    json.Key("node_blocks").BeginArray();
    for (uint32_t block : payload.node_blocks) {
      json.Value(static_cast<uint64_t>(block));
    }
    json.EndArray();
    json.Key("block_edges").BeginArray();
    for (double count : payload.block_edges) json.ValueExact(count);
    json.EndArray();
    json.Key("block_attr").BeginArray();
    for (double mass : payload.block_attr) json.ValueExact(mass);
    json.EndArray();
    json.Key("k_anonymity").Value(static_cast<uint64_t>(payload.k_anonymity));
    json.Key("t_closeness").ValueExact(payload.t_closeness);
    json.EndObject();
  }
  json.EndObject();
  return json.Finish();
}

util::Result<ReleaseArtifact> ReleaseArtifactFromJson(
    const std::string& json) {
  auto parsed = util::JsonValue::Parse(json);
  if (!parsed.ok()) return parsed.status();
  const util::JsonValue& root = parsed.value();
  if (!root.is_object()) return Invalid("top-level value must be an object");

  auto schema = RequireString(root, "schema");
  if (!schema.ok()) return schema.status();
  if (schema.value() != kSchemaName) {
    return Invalid("schema '" + schema.value() + "' is not '" + kSchemaName +
                   "'");
  }

  ReleaseArtifact artifact;
  auto version = RequireInt(root, "schema_version");
  if (!version.ok()) return version.status();
  artifact.schema_version = version.value();
  // Reject a bumped version before touching any other field: a future
  // layout may have renamed them all.
  if (auto st = CheckSchemaVersion(artifact.schema_version); !st.ok()) {
    return st;
  }

  auto model = RequireString(root, "model");
  if (!model.ok()) return model.status();
  artifact.model = model.value();

  // Pre-mechanism artifacts (written before the tag existed) are AGM by
  // construction; a present tag must be a string, and ValidateReleaseArtifact
  // below rejects values this build does not serve.
  if (root.Find("mechanism") != nullptr) {
    auto mechanism = RequireString(root, "mechanism");
    if (!mechanism.ok()) return mechanism.status();
    artifact.mechanism = mechanism.value();
  }

  auto fingerprint = RequireUint64String(root, "config_fingerprint");
  if (!fingerprint.ok()) return fingerprint.status();
  artifact.config_fingerprint = fingerprint.value();

  auto budget = RequireNumber(root, "epsilon_budget");
  if (!budget.ok()) return budget.status();
  artifact.epsilon_budget = budget.value();
  auto spent = RequireNumber(root, "epsilon_spent");
  if (!spent.ok()) return spent.status();
  artifact.epsilon_spent = spent.value();

  auto ledger = Require(root, "ledger");
  if (!ledger.ok()) return ledger.status();
  if (!ledger.value()->is_array()) return Invalid("'ledger' must be an array");
  for (const util::JsonValue& entry : ledger.value()->array_items()) {
    if (!entry.is_object()) return Invalid("ledger entries must be objects");
    auto stage = RequireString(entry, "stage");
    if (!stage.ok()) return stage.status();
    auto epsilon = RequireNumber(entry, "epsilon");
    if (!epsilon.ok()) return epsilon.status();
    artifact.ledger.emplace_back(stage.value(), epsilon.value());
  }

  auto defaults = Require(root, "sample_defaults");
  if (!defaults.ok()) return defaults.status();
  auto iterations = RequireInt(*defaults.value(), "acceptance_iterations");
  if (!iterations.ok()) return iterations.status();
  artifact.acceptance_iterations = iterations.value();
  auto tolerance = RequireNumber(*defaults.value(), "acceptance_tolerance");
  if (!tolerance.ok()) return tolerance.status();
  artifact.acceptance_tolerance = tolerance.value();
  auto min_acceptance = RequireNumber(*defaults.value(), "min_acceptance");
  if (!min_acceptance.ok()) return min_acceptance.status();
  artifact.min_acceptance = min_acceptance.value();

  auto params = Require(root, "params");
  if (!params.ok()) return params.status();
  const util::JsonValue& p = *params.value();
  if (!p.is_object()) return Invalid("'params' must be an object");
  auto w = RequireInt(p, "w");
  if (!w.ok()) return w.status();
  artifact.params.w = w.value();

  auto read_theta = [&p](const std::string& key,
                         std::vector<double>* out) -> util::Status {
    auto field = Require(p, key);
    if (!field.ok()) return field.status();
    if (!field.value()->is_array()) {
      return Invalid("'" + key + "' must be an array");
    }
    out->reserve(field.value()->array_items().size());
    for (const util::JsonValue& item : field.value()->array_items()) {
      if (!item.is_number()) {
        return Invalid("'" + key + "' entries must be numbers");
      }
      out->push_back(item.number_value());
    }
    return util::Status::OK();
  };
  if (auto st = read_theta("theta_x", &artifact.params.theta_x); !st.ok()) {
    return st;
  }
  if (auto st = read_theta("theta_f", &artifact.params.theta_f); !st.ok()) {
    return st;
  }

  auto degrees = Require(p, "degree_sequence");
  if (!degrees.ok()) return degrees.status();
  if (!degrees.value()->is_array()) {
    return Invalid("'degree_sequence' must be an array");
  }
  artifact.params.degree_sequence.reserve(
      degrees.value()->array_items().size());
  for (const util::JsonValue& item : degrees.value()->array_items()) {
    const double value = item.is_number() ? item.number_value() : -1.0;
    if (value < 0.0 || value > 4294967295.0 || value != std::floor(value)) {
      return Invalid("'degree_sequence' entries must be uint32 integers");
    }
    artifact.params.degree_sequence.push_back(static_cast<uint32_t>(value));
  }

  auto triangles = RequireUint64String(p, "target_triangles");
  if (!triangles.ok()) return triangles.status();
  artifact.params.target_triangles = triangles.value();

  const util::JsonValue* payload = root.Find("mechanism_payload");
  if (artifact.mechanism != "agm") {
    if (payload == nullptr || !payload->is_object()) {
      return Invalid("'mechanism_payload' must be an object for mechanism '" +
                     artifact.mechanism + "'");
    }
    auto read_doubles = [payload](const std::string& key,
                                  std::vector<double>* out) -> util::Status {
      auto field = Require(*payload, key);
      if (!field.ok()) return field.status();
      if (!field.value()->is_array()) {
        return Invalid("'" + key + "' must be an array");
      }
      out->reserve(field.value()->array_items().size());
      for (const util::JsonValue& item : field.value()->array_items()) {
        if (!item.is_number()) {
          return Invalid("'" + key + "' entries must be numbers");
        }
        out->push_back(item.number_value());
      }
      return util::Status::OK();
    };
    auto read_uint32 = [payload](const std::string& key)
        -> util::Result<uint32_t> {
      auto number = RequireNumber(*payload, key);
      if (!number.ok()) return number.status();
      const double value = number.value();
      if (value < 0.0 || value > 4294967295.0 || value != std::floor(value)) {
        return Invalid("'" + key + "' must be a uint32 integer");
      }
      return static_cast<uint32_t>(value);
    };
    auto num_blocks = read_uint32("num_blocks");
    if (!num_blocks.ok()) return num_blocks.status();
    artifact.payload.num_blocks = num_blocks.value();
    auto blocks_field = Require(*payload, "node_blocks");
    if (!blocks_field.ok()) return blocks_field.status();
    if (!blocks_field.value()->is_array()) {
      return Invalid("'node_blocks' must be an array");
    }
    artifact.payload.node_blocks.reserve(
        blocks_field.value()->array_items().size());
    for (const util::JsonValue& item : blocks_field.value()->array_items()) {
      const double value = item.is_number() ? item.number_value() : -1.0;
      if (value < 0.0 || value > 4294967295.0 || value != std::floor(value)) {
        return Invalid("'node_blocks' entries must be uint32 integers");
      }
      artifact.payload.node_blocks.push_back(static_cast<uint32_t>(value));
    }
    if (auto st = read_doubles("block_edges", &artifact.payload.block_edges);
        !st.ok()) {
      return st;
    }
    if (auto st = read_doubles("block_attr", &artifact.payload.block_attr);
        !st.ok()) {
      return st;
    }
    auto k_anonymity = read_uint32("k_anonymity");
    if (!k_anonymity.ok()) return k_anonymity.status();
    artifact.payload.k_anonymity = k_anonymity.value();
    auto t_closeness = RequireNumber(*payload, "t_closeness");
    if (!t_closeness.ok()) return t_closeness.status();
    artifact.payload.t_closeness = t_closeness.value();
  } else if (payload != nullptr) {
    return Invalid("agm artifacts must not carry a mechanism payload");
  }

  if (auto st = ValidateReleaseArtifact(artifact); !st.ok()) return st;
  return artifact;
}

util::Status WriteReleaseArtifact(const ReleaseArtifact& artifact,
                                  const std::string& path) {
  if (auto st = ValidateReleaseArtifact(artifact); !st.ok()) return st;
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return util::Status::IoError("cannot open for writing: " + path);
  }
  const std::string body = ReleaseArtifactToJson(artifact);
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  out.flush();
  if (!out.good()) return util::Status::IoError("write failed: " + path);
  return util::Status::OK();
}

util::Result<ReleaseArtifact> ReadReleaseArtifact(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return util::Status::IoError("cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return util::Status::IoError("read failed: " + path);
  return ReleaseArtifactFromJson(buffer.str());
}

uint64_t EstimateArtifactBytes(const ReleaseArtifact& artifact) {
  // Dominated by the parameter vectors (degree_sequence is length n); the
  // strings and scalar fields are noise next to them at any real scale.
  uint64_t bytes = sizeof(ReleaseArtifact);
  bytes += artifact.params.theta_x.size() * sizeof(double);
  bytes += artifact.params.theta_f.size() * sizeof(double);
  bytes += artifact.params.degree_sequence.size() * sizeof(uint32_t);
  bytes += artifact.payload.node_blocks.size() * sizeof(uint32_t);
  bytes += artifact.payload.block_edges.size() * sizeof(double);
  bytes += artifact.payload.block_attr.size() * sizeof(double);
  bytes += artifact.model.size() + artifact.mechanism.size();
  for (const auto& [label, eps] : artifact.ledger) {
    (void)eps;
    bytes += label.size() + sizeof(std::pair<std::string, double>);
  }
  return bytes;
}

uint64_t ReleaseArtifactReleaseKey(const ReleaseArtifact& artifact) {
  // FNV-1a over the canonical JSON serialization: two artifacts are the
  // same *release* exactly when every fitted value matches bit for bit.
  // (config_fingerprint alone cannot tell releases apart — two fits of the
  // same config from different data or seeds share it.)
  const std::string body = ReleaseArtifactToJson(artifact);
  uint64_t h = 1469598103934665603ULL;
  for (char c : body) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace agmdp::pipeline

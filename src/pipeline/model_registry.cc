#include "src/pipeline/model_registry.h"

#include <algorithm>
#include <cmath>

#include "src/graph/degree.h"
#include "src/models/bter.h"
#include "src/models/chung_lu.h"
#include "src/models/erdos_renyi.h"
#include "src/models/holme_kim.h"

namespace agmdp::pipeline {

namespace {

uint64_t TargetEdgeCount(const agm::AgmParams& params) {
  uint64_t total_degree = 0;
  for (uint32_t d : params.degree_sequence) total_degree += d;
  return total_degree / 2;
}

// Wedge count implied by the private degree sequence (the denominator of
// the global clustering coefficient 3 n∆ / W).
double WedgeCount(const agm::AgmParams& params) {
  double wedges = 0.0;
  for (uint32_t d : params.degree_sequence) {
    wedges += 0.5 * static_cast<double>(d) * (d > 0 ? d - 1.0 : 0.0);
  }
  return wedges;
}

double ImpliedClustering(const agm::AgmParams& params) {
  const double wedges = WedgeCount(params);
  if (wedges <= 0.0) return 0.0;
  const double c =
      3.0 * static_cast<double>(params.target_triangles) / wedges;
  return std::clamp(c, 0.0, 1.0);
}

// Models without a native filter hook get the AGM acceptance filter applied
// as a thinning pass over their edges, then the lost mass is topped back up
// with degree-proportional filtered proposals, preserving the edge count
// (DESIGN.md, pipeline deviations).
graph::Graph ApplyFilterWithTopUp(graph::Graph base,
                                  const models::EdgeFilter& filter,
                                  util::Rng& rng) {
  if (!filter) return base;
  const uint64_t target = base.num_edges();
  graph::Graph g(base.num_nodes());
  base.ForEachEdge([&](graph::NodeId u, graph::NodeId v) {
    if (models::AcceptEdge(filter, u, v, rng)) g.AddEdge(u, v);
  });
  if (g.num_edges() >= target) return g;

  auto sampler =
      models::BuildPiSampler(graph::DegreeSequence(base), /*exclude_degree_one=*/false);
  if (!sampler.ok()) return g;
  uint64_t budget = 200 * (target - g.num_edges());
  while (g.num_edges() < target && budget > 0) {
    --budget;
    const auto u = static_cast<graph::NodeId>(sampler.value().Sample(rng));
    const auto v = static_cast<graph::NodeId>(sampler.value().Sample(rng));
    if (u == v || g.HasEdge(u, v)) continue;
    if (!models::AcceptEdge(filter, u, v, rng)) continue;
    g.AddEdge(u, v);
  }
  return g;
}

util::Result<graph::Graph> GenerateErdosRenyi(const agm::AgmParams& params,
                                              const models::EdgeFilter& filter,
                                              util::Rng& rng) {
  const auto n = static_cast<graph::NodeId>(params.degree_sequence.size());
  graph::Graph base = models::ErdosRenyiGnm(n, TargetEdgeCount(params), rng);
  return ApplyFilterWithTopUp(std::move(base), filter, rng);
}

util::Result<graph::Graph> GenerateHolmeKim(const agm::AgmParams& params,
                                            const models::EdgeFilter& filter,
                                            util::Rng& rng) {
  const auto n = static_cast<graph::NodeId>(params.degree_sequence.size());
  models::HolmeKimOptions options;
  options.edges_per_node =
      std::max(1.0, static_cast<double>(TargetEdgeCount(params)) /
                        std::max<graph::NodeId>(n, 1));
  options.triad_probability = std::clamp(ImpliedClustering(params), 0.01, 0.99);
  auto base = models::HolmeKim(n, options, rng);
  if (!base.ok()) return base.status();
  return ApplyFilterWithTopUp(std::move(base).value(), filter, rng);
}

util::Result<graph::Graph> GenerateBterFromParams(
    const agm::AgmParams& params, const models::EdgeFilter& filter,
    util::Rng& rng) {
  models::BterParams bter;
  bter.degrees = params.degree_sequence;
  const uint32_t max_degree =
      params.degree_sequence.empty()
          ? 0
          : *std::max_element(params.degree_sequence.begin(),
                              params.degree_sequence.end());
  // Degree-independent clustering profile matching the private triangle
  // target; BTER's native degree-wise profile has too high a sensitivity to
  // learn under DP (Section 3.3), so the pipeline drives BTER from the two
  // quantities that *are* learned privately.
  bter.clustering_by_degree.assign(max_degree + 1, ImpliedClustering(params));
  auto base = models::GenerateBter(bter, rng);
  if (!base.ok()) return base.status();
  return ApplyFilterWithTopUp(std::move(base).value(), filter, rng);
}

std::vector<StructuralModelSpec> BuildRegistry() {
  std::vector<StructuralModelSpec> registry;

  StructuralModelSpec tricycle;
  tricycle.name = "tricycle";
  tricycle.description =
      "TriCycLe rewiring model (paper's pick; triangle-preserving)";
  tricycle.needs_triangles = true;
  tricycle.builtin = true;
  tricycle.kind = agm::StructuralModelKind::kTriCycLe;
  registry.push_back(std::move(tricycle));

  StructuralModelSpec fcl;
  fcl.name = "fcl";
  fcl.description = "bias-corrected Fast Chung-Lu (degree sequence only)";
  fcl.builtin = true;
  fcl.kind = agm::StructuralModelKind::kFcl;
  registry.push_back(std::move(fcl));

  StructuralModelSpec bter;
  bter.name = "bter";
  bter.description =
      "BTER driven by the private degree sequence and triangle target";
  bter.needs_triangles = true;
  bter.generator = GenerateBterFromParams;
  registry.push_back(std::move(bter));

  StructuralModelSpec holme_kim;
  holme_kim.name = "holme_kim";
  holme_kim.description =
      "Holme-Kim powerlaw-cluster growth calibrated to the private targets";
  holme_kim.needs_triangles = true;
  holme_kim.generator = GenerateHolmeKim;
  registry.push_back(std::move(holme_kim));

  StructuralModelSpec er;
  er.name = "erdos_renyi";
  er.description = "Erdos-Renyi G(n, m) baseline (structure-free null model)";
  er.generator = GenerateErdosRenyi;
  registry.push_back(std::move(er));

  return registry;
}

const std::vector<StructuralModelSpec>& Registry() {
  static const std::vector<StructuralModelSpec>* registry =
      new std::vector<StructuralModelSpec>(BuildRegistry());
  return *registry;
}

}  // namespace

const StructuralModelSpec* FindStructuralModel(const std::string& name) {
  for (const StructuralModelSpec& spec : Registry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<std::string> StructuralModelNames() {
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const StructuralModelSpec& spec : Registry()) {
    names.push_back(spec.name);
  }
  return names;
}

std::string StructuralModelNameList() {
  std::string joined;
  for (const StructuralModelSpec& spec : Registry()) {
    if (!joined.empty()) joined += ", ";
    joined += spec.name;
  }
  return joined;
}

}  // namespace agmdp::pipeline

// The serving half of the release pipeline: a handle built once from a
// ReleaseArtifact that samples synthetic graphs on demand.
//
// Fit once / sample many (Theorem 2): the artifact's parameters were
// learned under the accountant, so every sample the engine serves is pure
// post-processing at zero additional privacy cost. The engine amortizes
// everything that does not depend on the individual sample:
//
//   * one persistent util::WorkerPool for the sampler hot path (no thread
//     spawn per request);
//   * optionally, one calibration run at construction whose converged
//     acceptance vector A warm-starts every request — steady-state serving
//     then generates the structure once through the calibrated filter
//     instead of iterating the full cold acceptance loop per sample.
//
// Determinism / threading contract: Sample(request) is thread-safe and
// draws exclusively from util::Rng::Substream(request.seed,
// request.sequence) — a pure function of the request and the artifact — so
// any interleaving of concurrent requests is bitwise-identical to issuing
// them sequentially. SampleMany fans a contiguous block of sequence numbers
// out over the engine pool and returns the graphs in sequence order; its
// output is bitwise-identical at any pool size, and equal to a sequential
// Sample loop over the same requests.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "src/graph/attributed_graph.h"
#include "src/pipeline/release_artifact.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::mechanisms {
class ArtifactSampler;
}  // namespace agmdp::mechanisms

namespace agmdp::pipeline {

struct EngineOptions {
  /// Serving pool workers (0 = hardware concurrency, capped at the sampler
  /// shard count). The pool size never affects sampled bits.
  int threads = 0;
  /// Run one calibration sample at construction (full acceptance loop,
  /// from the fixed calibration substream) and warm-start every request
  /// with its converged acceptance vector. Disable to reproduce the
  /// paper's cold per-sample loop exactly (the legacy free functions do).
  bool calibrate = true;
  /// Acceptance refinements per request once calibrated (requests may
  /// override). 0 = trust the calibrated vector: the loop had converged,
  /// so steady-state serving is one filtered generation per sample.
  int default_refine_iterations = 0;
  /// Model-specific sampler knobs (FCL/TriCycLe options etc.). The model /
  /// generator / acceptance settings inside are overridden by the registry
  /// resolution of the artifact's model and the artifact's baked defaults.
  agm::AgmSampleOptions sample;
};

/// \brief One deterministic serving request.
struct SampleRequest {
  /// Substream family; the request draws from Substream(seed, sequence).
  uint64_t seed = 1;
  uint64_t sequence = 0;
  /// Acceptance refinements for this request; -1 = engine default. Ignored
  /// (full cold loop) when the engine is not calibrated.
  int refine_iterations = -1;
  /// Intra-sample sampler workers: 1 (default) runs inline on the calling
  /// thread — fully concurrent with other requests; > 1 borrows the
  /// engine pool (requests then serialize on it). Never changes the bits.
  int threads = 1;
};

/// \brief A fit-once / sample-many serving handle over a ReleaseArtifact.
///
/// The engine serves every registered release mechanism behind one
/// interface: "agm" artifacts take the dedicated calibrated path below,
/// any other tag resolves a mechanisms::ArtifactSampler from the mechanism
/// registry and delegates to it under the same Substream(seed, sequence)
/// request keying — so the cache, the daemon, and the CLI never branch on
/// the mechanism themselves.
class ReleaseEngine {
 public:
  /// Validates the artifact (schema version, mechanism tag, registry
  /// model, parameter sanity), spawns the persistent pool, and runs the
  /// calibration sample when requested (AGM only; other mechanisms have
  /// no acceptance loop to calibrate).
  static util::Result<std::unique_ptr<ReleaseEngine>> Create(
      ReleaseArtifact artifact, const EngineOptions& options = {});

  ReleaseEngine(const ReleaseEngine&) = delete;
  ReleaseEngine& operator=(const ReleaseEngine&) = delete;

  const ReleaseArtifact& artifact() const { return artifact_; }

  /// Approximate resident bytes of this serving handle: the artifact's
  /// parameter vectors plus the calibrated acceptance vector and a fixed
  /// per-pool-worker overhead (thread stack + bookkeeping). The sizing
  /// hook the server's byte-budgeted engine cache charges admissions by;
  /// an estimate, not an audit — stable for a given artifact and pool
  /// size, which is what budget arithmetic needs.
  uint64_t ApproxBytes() const;

  /// Whether requests are served from a calibrated acceptance vector.
  bool calibrated() const { return !calibrated_acceptance_.empty(); }
  const std::vector<double>& calibrated_acceptance() const {
    return calibrated_acceptance_;
  }

  /// Serves one request. Thread-safe; see the determinism contract above.
  util::Result<graph::AttributedGraph> Sample(
      const SampleRequest& request) const;

  /// Serves requests (seed, sequence), ..., (seed, sequence + n - 1) over
  /// the engine pool and returns the graphs in sequence order. Equal to a
  /// sequential Sample loop, at any pool size. A batch of one skips the
  /// fan-out and gives the single request the whole pool for intra-sample
  /// parallelism (same bits either way).
  util::Result<std::vector<graph::AttributedGraph>> SampleMany(
      int n, const SampleRequest& base = {}) const;

  /// Samples consuming the caller's master stream instead of a request
  /// substream — the contract of the legacy pipeline::SampleRelease, which
  /// wraps this. Thread-safe, but concurrent callers serialize on the
  /// engine pool.
  util::Result<graph::AttributedGraph> SampleFromStream(util::Rng& rng) const;

 private:
  ReleaseEngine(ReleaseArtifact artifact, const EngineOptions& options,
                agm::AgmSampleOptions base_options, int pool_workers);

  /// The resolved sampler options for one request (warm start + refinement
  /// count applied when calibrated).
  agm::AgmSampleOptions RequestOptions(int refine_iterations) const;

  const ReleaseArtifact artifact_;
  const EngineOptions options_;
  /// Registry-resolved sampler options (model kind / generator bound,
  /// artifact acceptance defaults applied).
  agm::AgmSampleOptions base_options_;
  /// Converged acceptance vector of the calibration sample; empty when the
  /// engine is not calibrated.
  std::vector<double> calibrated_acceptance_;
  /// Mechanism-registry sampling handle; null for "agm" artifacts (which
  /// use the sampler path below). When set, every Sample* method
  /// delegates to it.
  std::shared_ptr<const mechanisms::ArtifactSampler> sampler_;
  /// The persistent serving pool. WorkerPool::Run is not reentrant, so
  /// every use holds pool_mutex_; requests with threads <= 1 never touch
  /// it and run fully concurrently.
  mutable std::mutex pool_mutex_;
  mutable util::WorkerPool pool_;
};

}  // namespace agmdp::pipeline

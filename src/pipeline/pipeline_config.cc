#include "src/pipeline/pipeline_config.h"

#include <cmath>
#include <cstring>

#include "src/mechanisms/mechanism_tags.h"
#include "src/pipeline/model_registry.h"

namespace agmdp::pipeline {

namespace {

util::Status Invalid(const std::string& what) {
  return util::Status::InvalidArgument("pipeline config: " + what);
}

// FNV-1a over a stream of 64-bit words; doubles contribute their exact bit
// pattern, so the fingerprint is stable across platforms that share IEEE
// doubles (everything we build on).
class Fnv1a {
 public:
  void Mix(uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (x >> (8 * i)) & 0xffu;
      hash_ *= 1099511628211ULL;
    }
  }
  void Mix(double value) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value), "double is not 64-bit");
    std::memcpy(&bits, &value, sizeof(bits));
    Mix(bits);
  }
  void Mix(const std::string& s) {
    for (char c : s) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 1099511628211ULL;
    }
    Mix(static_cast<uint64_t>(s.size()));
  }
  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 1469598103934665603ULL;
};

}  // namespace

util::Status ValidateAcceptanceKnobs(int acceptance_iterations,
                                     double acceptance_tolerance,
                                     double min_acceptance) {
  // The upper bound is far beyond any useful setting (the paper's loop
  // converges in a few iterations) but keeps a tampered artifact from
  // hanging ReleaseEngine::Create in a ~1e9-iteration calibration loop —
  // each iteration regenerates the full synthetic graph.
  if (acceptance_iterations < 0 || acceptance_iterations > 1000) {
    return Invalid("acceptance_iterations must be in [0, 1000]");
  }
  if (!std::isfinite(acceptance_tolerance) || acceptance_tolerance < 0.0) {
    return Invalid("acceptance_tolerance must be >= 0");
  }
  if (!std::isfinite(min_acceptance) || min_acceptance < 0.0 ||
      min_acceptance > 1.0) {
    return Invalid("min_acceptance must be in [0, 1]");
  }
  return util::Status::OK();
}

util::Status PipelineConfig::Validate() const {
  if (!mechanisms::IsKnownMechanismTag(mechanism)) {
    return Invalid("unknown mechanism '" + mechanism + "' (registered: " +
                   mechanisms::KnownMechanismTagList() + ")");
  }
  if (!std::isfinite(t_closeness) || t_closeness < 0.0 || t_closeness > 1.0) {
    return Invalid("t_closeness must be in [0, 1]");
  }
  if (k_anonymity == 1) {
    return Invalid("k_anonymity must be 0 (auto) or >= 2");
  }
  const StructuralModelSpec* spec = FindStructuralModel(model);
  if (spec == nullptr) {
    return Invalid("unknown structural model '" + model +
                   "' (registered: " + StructuralModelNameList() + ")");
  }
  if (!std::isfinite(epsilon) || epsilon <= 0.0) {
    return Invalid("epsilon must be a positive finite number");
  }
  const double shares[] = {split.theta_x, split.theta_f, split.degree_seq,
                           split.triangles};
  for (double share : shares) {
    if (!std::isfinite(share) || share < 0.0) {
      return Invalid("budget-split shares must be finite and non-negative");
    }
  }
  const double split_total = split.total();
  if (split_total > 0.0) {
    if (split_total > epsilon + 1e-9) {
      return Invalid("budget split totals " + std::to_string(split_total) +
                     " which exceeds epsilon " + std::to_string(epsilon));
    }
    // A custom split must fund every stage this model actually spends —
    // otherwise the fit would abort at the zero-share stage after the
    // earlier stages already consumed their budget, violating the
    // fail-before-any-spend contract.
    if (split.theta_x <= 0.0 || split.theta_f <= 0.0 ||
        split.degree_seq <= 0.0) {
      return Invalid("custom budget split leaves a learned stage with a "
                     "zero share");
    }
    if (spec->needs_triangles && split.triangles <= 0.0) {
      return Invalid("model '" + model +
                     "' learns a triangle target but the custom split "
                     "gives triangles a zero share");
    }
  }
  if (!std::isfinite(smooth_delta) || smooth_delta <= 0.0) {
    return Invalid("smooth_delta must be a positive finite number");
  }
  return ValidateAcceptanceKnobs(sample.acceptance_iterations,
                                 sample.acceptance_tolerance,
                                 sample.min_acceptance);
}

uint64_t PipelineConfig::Fingerprint() const {
  Fnv1a fnv;
  fnv.Mix(model);
  fnv.Mix(epsilon);
  fnv.Mix(split.theta_x);
  fnv.Mix(split.theta_f);
  fnv.Mix(split.degree_seq);
  fnv.Mix(split.triangles);
  fnv.Mix(static_cast<uint64_t>(theta_f_method));
  fnv.Mix(static_cast<uint64_t>(truncation_k));
  fnv.Mix(smooth_delta);
  fnv.Mix(static_cast<uint64_t>(sa_group_size));
  fnv.Mix(ladder.max_exact_work);
  fnv.Mix(static_cast<uint64_t>(ladder.force_degree_bound));
  fnv.Mix(static_cast<uint64_t>(sample.acceptance_iterations));
  fnv.Mix(sample.acceptance_tolerance);
  fnv.Mix(sample.min_acceptance);
  // Guarded so every pre-mechanism AGM fingerprint is unchanged: the
  // calibration substream is keyed on the fingerprint, and re-keying it
  // would silently shift the serving bits of every stored AGM release.
  if (mechanism != "agm") {
    fnv.Mix(std::string("mechanism"));
    fnv.Mix(mechanism);
    fnv.Mix(static_cast<uint64_t>(k_anonymity));
    fnv.Mix(t_closeness);
    fnv.Mix(static_cast<uint64_t>(community_blocks));
  }
  return fnv.hash();
}

}  // namespace agmdp::pipeline

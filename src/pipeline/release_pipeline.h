// The unified private-release pipeline: fit → sample with one
// PrivacyAccountant threaded through every DP stage.
//
// This is the single entry point the CLI, the examples, and the benches
// route through. The contract:
//
//   * Budget accounting — every epsilon spend of the release is recorded in
//     one accountant; the returned ledger's spends sum to the configured
//     global epsilon under the model-default splits (sequential
//     composition, Theorem 2), so auditing the ledger audits the release.
//   * Post-processing — only FitPrivateParams / the fit half of
//     RunPrivateRelease reads the sensitive input; sampling is pure
//     post-processing and can be repeated at no additional privacy cost.
//   * Determinism — for a fixed config and Rng seed the synthetic graph is
//     bitwise-identical at any `sample.threads` setting (see
//     agm_sampler.h and DESIGN.md).
#pragma once

#include "src/pipeline/model_registry.h"
#include "src/pipeline/pipeline_config.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::pipeline {

/// Learns the private AGM parameters (the only step that touches the
/// sensitive input) and returns them with the accountant ledger and stage
/// timings. Fails on an unknown model name, non-positive epsilon, or a
/// split exceeding the budget.
util::Result<FitResult> FitPrivateParams(const graph::AttributedGraph& input,
                                         const PipelineConfig& config,
                                         util::Rng& rng);

/// Samples a synthetic graph from already-learned parameters under
/// `config`'s model and sampler settings. Pure post-processing.
util::Result<graph::AttributedGraph> SampleRelease(
    const agm::AgmParams& params, const PipelineConfig& config,
    util::Rng& rng);

/// The end-to-end private release: fit + sample under one accountant, with
/// per-stage wall-clock metrics in the result.
util::Result<ReleaseResult> RunPrivateRelease(
    const graph::AttributedGraph& input, const PipelineConfig& config,
    util::Rng& rng);

}  // namespace agmdp::pipeline

// The unified private-release pipeline: fit → sample with one
// PrivacyAccountant threaded through every DP stage.
//
// This is the single entry point the CLI, the examples, and the benches
// route through. The contract:
//
//   * Budget accounting — every epsilon spend of the release is recorded in
//     one accountant; the returned ledger's spends sum to the configured
//     global epsilon under the model-default splits (sequential
//     composition, Theorem 2), so auditing the ledger audits the release.
//   * Post-processing — only FitPrivateParams / the fit half of
//     RunPrivateRelease reads the sensitive input; sampling is pure
//     post-processing and can be repeated at no additional privacy cost.
//   * Determinism — for a fixed config and Rng seed the synthetic graph is
//     bitwise-identical at any `sample.threads` setting (see
//     agm_sampler.h and DESIGN.md).
//
// These free functions are thin wrappers over the handle-based serving
// layer (release_artifact.h / release_engine.h): FitReleaseArtifact
// packages a fit for storage, and the sampling halves below construct an
// uncalibrated ReleaseEngine per call so one-shot and serving paths share
// one code path. Long-lived consumers should hold a ReleaseEngine instead
// of looping over these — see DESIGN.md "Serving layer".
#pragma once

#include "src/pipeline/model_registry.h"
#include "src/pipeline/pipeline_config.h"
#include "src/pipeline/release_artifact.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::pipeline {

/// Learns the private AGM parameters (the only step that touches the
/// sensitive input) and returns them with the accountant ledger and stage
/// timings. Fails on an invalid config (PipelineConfig::Validate) before
/// any budget is spent.
util::Result<FitResult> FitPrivateParams(const graph::AttributedGraph& input,
                                         const PipelineConfig& config,
                                         util::Rng& rng);

/// Fit + packaging: the artifact a ReleaseEngine (or `agmdp sample`)
/// consumes, carrying the parameters, the full ledger, and the config
/// fingerprint.
util::Result<ReleaseArtifact> FitReleaseArtifact(
    const graph::AttributedGraph& input, const PipelineConfig& config,
    util::Rng& rng);

/// Samples a synthetic graph from already-learned parameters under
/// `config`'s model and sampler settings. Pure post-processing.
util::Result<graph::AttributedGraph> SampleRelease(
    const agm::AgmParams& params, const PipelineConfig& config,
    util::Rng& rng);

/// The end-to-end private release: fit + sample under one accountant, with
/// per-stage wall-clock metrics in the result.
util::Result<ReleaseResult> RunPrivateRelease(
    const graph::AttributedGraph& input, const PipelineConfig& config,
    util::Rng& rng);

}  // namespace agmdp::pipeline

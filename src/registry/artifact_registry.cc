#include "src/registry/artifact_registry.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <tuple>

#include "src/util/checksum.h"
#include "src/util/fault_injector.h"
#include "src/util/json.h"

namespace agmdp::registry {
namespace {

// File layout: an 8-byte magic, a u32 format version, and a u32 CRC32C of
// the first 12 bytes; then zero or more frames of
// [u32 payload_len][u32 CRC32C(payload)][payload]. All integers little
// endian, encoded explicitly so the file is byte-portable.
constexpr char kMagic[8] = {'A', 'G', 'M', 'D', 'P', 'R', 'E', 'G'};
constexpr size_t kHeaderBytes = 16;
constexpr size_t kFrameHeaderBytes = 8;
// Sanity cap on one record; a frame length above this is treated as a torn
// tail, not a real record.
constexpr uint64_t kMaxRecordBytes = uint64_t{1} << 30;

// Spend comparisons tolerate the rounding of summed doubles, scaled to the
// cap so large budgets do not get a stricter relative test.
bool OverCap(double spent, double epsilon, double cap) {
  return spent + epsilon > cap + 1e-9 * std::max(1.0, cap);
}

void PutU32LE(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t ReadU32LE(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

std::string EncodeHeader() {
  std::string header(kMagic, sizeof(kMagic));
  PutU32LE(header, kRegistryFormatVersion);
  PutU32LE(header, util::Crc32c(header.data(), header.size()));
  return header;
}

std::string EntryKey(const std::string& dataset, const std::string& name) {
  return dataset + '\n' + name;
}

std::string FingerprintKey(const std::string& dataset, uint64_t fingerprint) {
  return dataset + '\n' + std::to_string(fingerprint);
}

util::Status ValidateIdentifier(const char* what, const std::string& value) {
  if (value.empty()) {
    return util::Status::InvalidArgument(std::string(what) +
                                         " must be non-empty");
  }
  if (value.find('\n') != std::string::npos) {
    return util::Status::InvalidArgument(std::string(what) +
                                         " must not contain newlines");
  }
  return util::Status::OK();
}

util::Status WriteAll(int fd, const char* data, size_t size, uint64_t offset) {
  while (size > 0) {
    const ssize_t n = ::pwrite(fd, data, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::IoError(std::string("pwrite: ") +
                                   std::strerror(errno));
    }
    data += n;
    size -= static_cast<size_t>(n);
    offset += static_cast<uint64_t>(n);
  }
  return util::Status::OK();
}

util::Result<std::string> ReadWholeFile(int fd, uint64_t size) {
  std::string bytes(size, '\0');
  uint64_t offset = 0;
  while (offset < size) {
    const ssize_t n = ::pread(fd, bytes.data() + offset, size - offset,
                              static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::IoError(std::string("pread: ") +
                                   std::strerror(errno));
    }
    if (n == 0) break;
    offset += static_cast<uint64_t>(n);
  }
  bytes.resize(offset);
  return bytes;
}

util::Status SyncDirectoryOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(),
                        O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return util::Status::IoError("open directory '" + dir +
                                 "': " + std::strerror(errno));
  }
  util::Status st;
  if (::fsync(fd) != 0) {
    st = util::Status::IoError("fsync directory '" + dir +
                               "': " + std::strerror(errno));
  }
  ::close(fd);
  return st;
}

// ---- record field helpers (mirrors the release-artifact reader idiom) ----

util::Result<std::string> RequireString(const util::JsonValue& object,
                                        const std::string& key) {
  const util::JsonValue* field = object.Find(key);
  if (field == nullptr || !field->is_string()) {
    return util::Status::Corruption("registry record field '" + key +
                                    "' missing or not a string");
  }
  return field->string_value();
}

util::Result<double> RequireNumber(const util::JsonValue& object,
                                   const std::string& key) {
  const util::JsonValue* field = object.Find(key);
  if (field == nullptr || !field->is_number()) {
    return util::Status::Corruption("registry record field '" + key +
                                    "' missing or not a number");
  }
  return field->number_value();
}

// uint64 values travel as decimal strings: JSON numbers are doubles and
// lose integers above 2^53.
util::Result<uint64_t> RequireUint64String(const util::JsonValue& object,
                                           const std::string& key) {
  auto text = RequireString(object, key);
  if (!text.ok()) return text.status();
  const std::string& s = text.value();
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    return util::Status::Corruption("registry record field '" + key +
                                    "' is not a decimal uint64 string");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') {
    return util::Status::Corruption("registry record field '" + key +
                                    "' overflows uint64");
  }
  return static_cast<uint64_t>(value);
}

}  // namespace

ArtifactRegistry::ArtifactRegistry(std::string path, RegistryOptions options)
    : path_(std::move(path)), options_(std::move(options)) {}

ArtifactRegistry::~ArtifactRegistry() {
  if (fd_ >= 0) ::close(fd_);
}

util::Result<std::unique_ptr<ArtifactRegistry>> ArtifactRegistry::Open(
    const std::string& path, const RegistryOptions& options) {
  if (path.empty()) {
    return util::Status::InvalidArgument("registry path must be non-empty");
  }
  for (const auto& [dataset, cap] : options.dataset_caps) {
    if (auto st = ValidateIdentifier("dataset", dataset); !st.ok()) return st;
    if (!(cap >= 0.0)) {
      return util::Status::InvalidArgument("dataset cap for '" + dataset +
                                           "' must be >= 0");
    }
  }
  std::unique_ptr<ArtifactRegistry> registry(
      new ArtifactRegistry(path, options));
  std::lock_guard<std::mutex> lock(registry->mu_);
  if (auto st = registry->OpenFileLocked(); !st.ok()) return st;
  if (auto st = registry->RecoverLocked(); !st.ok()) return st;
  return registry;
}

util::Status ArtifactRegistry::OpenFileLocked() {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return util::Status::IoError("open registry '" + path_ +
                                 "': " + std::strerror(errno));
  }
  if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    if (err == EWOULDBLOCK) {
      return util::Status::FailedPrecondition(
          "registry '" + path_ + "' is locked by another process");
    }
    return util::Status::IoError("flock registry '" + path_ +
                                 "': " + std::strerror(err));
  }
  return util::Status::OK();
}

util::Status ArtifactRegistry::RecoverLocked() {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    return util::Status::IoError(std::string("fstat: ") +
                                 std::strerror(errno));
  }
  const auto size = static_cast<uint64_t>(st.st_size);

  if (size < kHeaderBytes) {
    // Either a fresh file or a crash during creation — no record can have
    // been acknowledged without a complete header, so starting over cannot
    // lose accounted spend.
    counters_.discarded_tail_bytes = size;
    if (::ftruncate(fd_, 0) != 0) {
      return util::Status::IoError(std::string("ftruncate: ") +
                                   std::strerror(errno));
    }
    const std::string header = EncodeHeader();
    if (auto ws = WriteAll(fd_, header.data(), header.size(), 0); !ws.ok()) {
      return ws;
    }
    if (options_.fsync && ::fsync(fd_) != 0) {
      return util::Status::IoError(std::string("fsync: ") +
                                   std::strerror(errno));
    }
    if (auto ds = SyncDirectoryOf(path_); options_.fsync && !ds.ok()) {
      return ds;
    }
    file_bytes_ = kHeaderBytes;
    counters_.journal_bytes = file_bytes_;
    return util::Status::OK();
  }

  auto bytes = ReadWholeFile(fd_, size);
  if (!bytes.ok()) return bytes.status();
  const std::string& data = bytes.value();
  if (data.size() != size) {
    return util::Status::IoError("short read of registry '" + path_ + "'");
  }

  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return util::Status::Corruption("registry '" + path_ +
                                    "' has a bad magic; not a registry file");
  }
  const uint32_t version = ReadU32LE(data.data() + 8);
  const uint32_t header_crc = ReadU32LE(data.data() + 12);
  if (header_crc != util::Crc32c(data.data(), 12)) {
    return util::Status::ChecksumMismatch("registry '" + path_ +
                                          "' header checksum mismatch");
  }
  if (version != kRegistryFormatVersion) {
    return util::Status::VersionMismatch(
        "registry '" + path_ + "' is format version " +
        std::to_string(version) + ", this build reads version " +
        std::to_string(kRegistryFormatVersion));
  }

  // Replay frames. The first frame that cannot be a complete, checksummed
  // record is a torn tail from an interrupted append: everything after the
  // last valid record is discarded. A frame whose checksum verifies but
  // whose payload is semantically invalid is genuine corruption — fsync'd
  // bytes do not spontaneously turn into valid CRC frames.
  uint64_t offset = kHeaderBytes;
  while (offset < size) {
    if (size - offset < kFrameHeaderBytes) break;
    const uint32_t payload_len = ReadU32LE(data.data() + offset);
    const uint32_t payload_crc = ReadU32LE(data.data() + offset + 4);
    if (payload_len == 0 || payload_len > kMaxRecordBytes) break;
    if (size - offset - kFrameHeaderBytes < payload_len) break;
    const char* payload = data.data() + offset + kFrameHeaderBytes;
    if (util::Crc32c(payload, payload_len) != payload_crc) break;
    if (auto st = ApplyRecordLocked(std::string(payload, payload_len));
        !st.ok()) {
      return st;
    }
    offset += kFrameHeaderBytes + payload_len;
    ++counters_.recovered_records;
  }

  if (offset < size) {
    // A torn append damages only the *end* of the journal. If any complete
    // checksummed frame exists beyond the bad bytes, the damage is in the
    // middle — bit rot, not a crash — and truncating would silently drop
    // durable records (possibly accounted spend). That must fail loudly.
    // The scan is byte-wise but only runs on the already-damaged path, and
    // a random 8-byte window matching its own CRC32C is a 2^-32 accident.
    for (uint64_t probe = offset + 1;
         probe + kFrameHeaderBytes <= size; ++probe) {
      const uint32_t len = ReadU32LE(data.data() + probe);
      const uint32_t crc = ReadU32LE(data.data() + probe + 4);
      if (len == 0 || len > kMaxRecordBytes) continue;
      if (size - probe - kFrameHeaderBytes < len) continue;
      if (util::Crc32c(data.data() + probe + kFrameHeaderBytes, len) != crc) {
        continue;
      }
      return util::Status::Corruption(
          "registry '" + path_ + "' record at offset " +
          std::to_string(offset) +
          " is damaged but a valid record follows at offset " +
          std::to_string(probe) +
          " — mid-journal corruption, not a torn tail; refusing to "
          "truncate away durable records");
    }
    counters_.discarded_tail_bytes = size - offset;
    if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
      return util::Status::IoError(std::string("ftruncate torn tail: ") +
                                   std::strerror(errno));
    }
    if (options_.fsync && ::fsync(fd_) != 0) {
      return util::Status::IoError(std::string("fsync: ") +
                                   std::strerror(errno));
    }
  }
  file_bytes_ = offset;
  counters_.journal_bytes = file_bytes_;
  return util::Status::OK();
}

util::Status ArtifactRegistry::ApplyRecordLocked(const std::string& payload) {
  util::JsonLimits limits;
  limits.max_bytes = payload.size();
  auto parsed = util::JsonValue::Parse(payload, limits);
  if (!parsed.ok()) {
    return util::Status::Corruption("registry record is not valid JSON: " +
                                    parsed.status().message());
  }
  const util::JsonValue& record = parsed.value();
  if (!record.is_object()) {
    return util::Status::Corruption("registry record is not a JSON object");
  }
  auto type = RequireString(record, "type");
  if (!type.ok()) return type.status();

  auto apply_charge = [this](const std::string& dataset, uint64_t key,
                             double epsilon) {
    DatasetState& state = dataset_state_[dataset];
    if (state.charges.emplace(key, epsilon).second) state.spent += epsilon;
  };
  auto append_history = [this](const std::string& dataset,
                               const std::string& name, const Entry& entry) {
    HistoryRow row;
    row.dataset = dataset;
    row.name = name;
    row.mechanism = entry.artifact.mechanism;
    row.model = entry.artifact.model;
    row.release_key = entry.release_key;
    row.config_fingerprint = entry.artifact.config_fingerprint;
    row.epsilon = entry.artifact.epsilon_spent;
    history_.push_back(std::move(row));
  };
  auto apply_artifact = [this, &append_history](
                            const std::string& dataset,
                            const std::string& name,
                            const std::string& artifact_json,
                            bool record_history) -> util::Status {
    auto artifact = pipeline::ReleaseArtifactFromJson(artifact_json);
    if (!artifact.ok()) {
      return util::Status::Corruption(
          "registry artifact record for '" + dataset + "/" + name +
          "' does not parse: " + artifact.status().message());
    }
    Entry entry;
    entry.artifact = std::move(artifact).value();
    entry.artifact_json = artifact_json;
    entry.release_key = pipeline::ReleaseArtifactReleaseKey(entry.artifact);
    fingerprints_[FingerprintKey(dataset,
                                 entry.artifact.config_fingerprint)] =
        entry.release_key;
    if (record_history) append_history(dataset, name, entry);
    entries_[EntryKey(dataset, name)] = std::move(entry);
    return util::Status::OK();
  };

  const std::string& kind = type.value();
  if (kind == "charge") {
    auto dataset = RequireString(record, "dataset");
    auto key = RequireUint64String(record, "release_key");
    auto epsilon = RequireNumber(record, "epsilon");
    if (!dataset.ok()) return dataset.status();
    if (!key.ok()) return key.status();
    if (!epsilon.ok()) return epsilon.status();
    apply_charge(dataset.value(), key.value(), epsilon.value());
    return util::Status::OK();
  }
  if (kind == "artifact") {
    auto dataset = RequireString(record, "dataset");
    auto name = RequireString(record, "name");
    auto artifact_json = RequireString(record, "artifact_json");
    if (!dataset.ok()) return dataset.status();
    if (!name.ok()) return name.status();
    if (!artifact_json.ok()) return artifact_json.status();
    return apply_artifact(dataset.value(), name.value(),
                          artifact_json.value(), /*record_history=*/true);
  }
  if (kind == "gc") {
    auto dataset = RequireString(record, "dataset");
    auto name = RequireString(record, "name");
    if (!dataset.ok()) return dataset.status();
    if (!name.ok()) return name.status();
    auto it = entries_.find(EntryKey(dataset.value(), name.value()));
    if (it != entries_.end()) {
      for (auto h = history_.rbegin(); h != history_.rend(); ++h) {
        if (h->live && h->dataset == dataset.value() &&
            h->name == name.value() &&
            h->release_key == it->second.release_key) {
          h->live = false;
          break;
        }
      }
      fingerprints_.erase(FingerprintKey(
          dataset.value(), it->second.artifact.config_fingerprint));
      entries_.erase(it);
    }
    return util::Status::OK();
  }
  if (kind == "tenant_charge") {
    auto tenant = RequireString(record, "tenant");
    auto key = RequireUint64String(record, "release_key");
    auto epsilon = RequireNumber(record, "epsilon");
    if (!tenant.ok()) return tenant.status();
    if (!key.ok()) return key.status();
    if (!epsilon.ok()) return epsilon.status();
    tenant_charges_[tenant.value()].emplace(key.value(), epsilon.value());
    return util::Status::OK();
  }
  if (kind == "checkpoint") {
    entries_.clear();
    fingerprints_.clear();
    dataset_state_.clear();
    tenant_charges_.clear();
    history_.clear();
    const util::JsonValue* datasets = record.Find("datasets");
    const util::JsonValue* artifacts = record.Find("artifacts");
    const util::JsonValue* tenants = record.Find("tenants");
    if (datasets == nullptr || !datasets->is_array() || artifacts == nullptr ||
        !artifacts->is_array() || tenants == nullptr || !tenants->is_array()) {
      return util::Status::Corruption(
          "registry checkpoint record is missing its sections");
    }
    for (const util::JsonValue& row : datasets->array_items()) {
      auto dataset = RequireString(row, "dataset");
      if (!dataset.ok()) return dataset.status();
      const util::JsonValue* charges = row.Find("charges");
      if (charges == nullptr || !charges->is_array()) {
        return util::Status::Corruption(
            "registry checkpoint dataset row has no charges array");
      }
      for (const util::JsonValue& charge : charges->array_items()) {
        auto key = RequireUint64String(charge, "release_key");
        auto epsilon = RequireNumber(charge, "epsilon");
        if (!key.ok()) return key.status();
        if (!epsilon.ok()) return epsilon.status();
        apply_charge(dataset.value(), key.value(), epsilon.value());
      }
    }
    for (const util::JsonValue& row : artifacts->array_items()) {
      auto dataset = RequireString(row, "dataset");
      auto name = RequireString(row, "name");
      auto artifact_json = RequireString(row, "artifact_json");
      if (!dataset.ok()) return dataset.status();
      if (!name.ok()) return name.status();
      if (!artifact_json.ok()) return artifact_json.status();
      if (auto st = apply_artifact(dataset.value(), name.value(),
                                   artifact_json.value(),
                                   /*record_history=*/false);
          !st.ok()) {
        return st;
      }
    }
    for (const util::JsonValue& row : tenants->array_items()) {
      auto tenant = RequireString(row, "tenant");
      if (!tenant.ok()) return tenant.status();
      const util::JsonValue* charges = row.Find("charges");
      if (charges == nullptr || !charges->is_array()) {
        return util::Status::Corruption(
            "registry checkpoint tenant row has no charges array");
      }
      for (const util::JsonValue& charge : charges->array_items()) {
        auto key = RequireUint64String(charge, "release_key");
        auto epsilon = RequireNumber(charge, "epsilon");
        if (!key.ok()) return key.status();
        if (!epsilon.ok()) return epsilon.status();
        tenant_charges_[tenant.value()].emplace(key.value(), epsilon.value());
      }
    }
    const util::JsonValue* history = record.Find("history");
    if (history != nullptr) {
      if (!history->is_array()) {
        return util::Status::Corruption(
            "registry checkpoint history section is not an array");
      }
      for (const util::JsonValue& row_json : history->array_items()) {
        auto dataset = RequireString(row_json, "dataset");
        auto name = RequireString(row_json, "name");
        auto mechanism = RequireString(row_json, "mechanism");
        auto model = RequireString(row_json, "model");
        auto key = RequireUint64String(row_json, "release_key");
        auto fingerprint =
            RequireUint64String(row_json, "config_fingerprint");
        auto epsilon = RequireNumber(row_json, "epsilon");
        if (!dataset.ok()) return dataset.status();
        if (!name.ok()) return name.status();
        if (!mechanism.ok()) return mechanism.status();
        if (!model.ok()) return model.status();
        if (!key.ok()) return key.status();
        if (!fingerprint.ok()) return fingerprint.status();
        if (!epsilon.ok()) return epsilon.status();
        const util::JsonValue* live = row_json.Find("live");
        if (live == nullptr || !live->is_bool()) {
          return util::Status::Corruption(
              "registry checkpoint history row field 'live' missing or not "
              "a bool");
        }
        HistoryRow row;
        row.dataset = std::move(dataset).value();
        row.name = std::move(name).value();
        row.mechanism = std::move(mechanism).value();
        row.model = std::move(model).value();
        row.release_key = key.value();
        row.config_fingerprint = fingerprint.value();
        row.epsilon = epsilon.value();
        row.live = live->bool_value();
        history_.push_back(std::move(row));
      }
    } else {
      // Checkpoint written before the history section existed: the
      // superseded lineage is gone, so rebuild the best available history —
      // every currently-resolvable release, live, in sorted key order.
      std::vector<const std::string*> keys;
      keys.reserve(entries_.size());
      for (const auto& [key, entry] : entries_) keys.push_back(&key);
      std::sort(keys.begin(), keys.end(),
                [](const std::string* a, const std::string* b) {
                  return *a < *b;
                });
      for (const std::string* key : keys) {
        const Entry& entry = entries_.at(*key);
        const size_t sep = key->find('\n');
        append_history(key->substr(0, sep), key->substr(sep + 1), entry);
      }
    }
    return util::Status::OK();
  }
  return util::Status::Corruption("registry record has unknown type '" +
                                  kind + "'");
}

void ArtifactRegistry::WoundLocked(const char* why) {
  if (!wounded_) {
    std::fprintf(stderr,
                 "registry '%s' wounded (%s): mutations disabled until "
                 "reopen\n",
                 path_.c_str(), why);
  }
  wounded_ = true;
  counters_.wounded = true;
}

util::Status ArtifactRegistry::MutableCheckLocked() const {
  if (fd_ < 0) {
    return util::Status::FailedPrecondition("registry is not open");
  }
  if (wounded_) {
    return util::Status::FailedPrecondition(
        "registry '" + path_ +
        "' is wounded after a journal IO failure; reopen to recover");
  }
  return util::Status::OK();
}

util::Status ArtifactRegistry::AppendRecordLocked(const std::string& payload,
                                                  const char* point_prefix) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32LE(frame, static_cast<uint32_t>(payload.size()));
  PutU32LE(frame, util::Crc32c(payload.data(), payload.size()));
  frame.append(payload);

  const std::string write_point = std::string(point_prefix) + ".write";
  const std::string fsync_point = std::string(point_prefix) + ".fsync";

  if (util::FaultAction fault = util::PollFault(write_point.c_str());
      fault.fire) {
    if (fault.kind == util::FaultKind::kTornWrite) {
      // Leave exactly what a power loss mid-append would: a prefix of the
      // frame, including a frame header whose length promises bytes that
      // never arrived.
      const size_t torn = frame.size() / 2;
      (void)WriteAll(fd_, frame.data(), torn, file_bytes_);
      if (options_.fsync) (void)::fsync(fd_);
    }
    WoundLocked(write_point.c_str());
    return util::Status::IoError("injected fault at '" + write_point + "'");
  }
  if (auto st = WriteAll(fd_, frame.data(), frame.size(), file_bytes_);
      !st.ok()) {
    WoundLocked("append write failed");
    return st;
  }
  if (util::FaultAction fault = util::PollFault(fsync_point.c_str());
      fault.fire) {
    WoundLocked(fsync_point.c_str());
    return util::Status::IoError("injected fault at '" + fsync_point + "'");
  }
  if (options_.fsync) {
    if (::fsync(fd_) != 0) {
      WoundLocked("append fsync failed");
      return util::Status::IoError(std::string("fsync: ") +
                                   std::strerror(errno));
    }
    ++counters_.fsyncs;
  }
  file_bytes_ += frame.size();
  counters_.journal_bytes = file_bytes_;
  ++counters_.appends;
  return util::Status::OK();
}

util::Status ArtifactRegistry::Put(const std::string& dataset,
                                   const std::string& name,
                                   const pipeline::ReleaseArtifact& artifact) {
  if (auto st = ValidateIdentifier("dataset", dataset); !st.ok()) return st;
  if (auto st = ValidateIdentifier("name", name); !st.ok()) return st;
  if (auto st = pipeline::ValidateReleaseArtifact(artifact); !st.ok()) {
    return st;
  }
  const std::string artifact_json = pipeline::ReleaseArtifactToJson(artifact);
  const uint64_t release_key = pipeline::ReleaseArtifactReleaseKey(artifact);
  const double epsilon = artifact.epsilon_spent;

  std::lock_guard<std::mutex> lock(mu_);
  if (auto st = MutableCheckLocked(); !st.ok()) return st;

  if (auto it = entries_.find(EntryKey(dataset, name));
      it != entries_.end()) {
    if (it->second.release_key == release_key) return util::Status::OK();
    return util::Status::FailedPrecondition(
        "registry name '" + dataset + "/" + name +
        "' is bound to a different release; gc it first or pick a new name");
  }
  if (auto it = fingerprints_.find(
          FingerprintKey(dataset, artifact.config_fingerprint));
      it != fingerprints_.end() && it->second != release_key) {
    return util::Status::FailedPrecondition(
        "dataset '" + dataset + "' already holds a different release fitted "
        "under config fingerprint " +
        std::to_string(artifact.config_fingerprint) +
        " — refitting the same config burns budget without a new name");
  }

  auto ds = dataset_state_.find(dataset);
  const bool already_charged =
      ds != dataset_state_.end() && ds->second.charges.count(release_key) > 0;
  if (!already_charged) {
    const double cap = CapLocked(dataset);
    const double spent = ds == dataset_state_.end() ? 0.0 : ds->second.spent;
    if (cap > 0.0 && OverCap(spent, epsilon, cap)) {
      return util::Status::ResourceExhausted(
          "dataset '" + dataset + "' lifetime epsilon cap exhausted: spent " +
          std::to_string(spent) + " + " + std::to_string(epsilon) + " > cap " +
          std::to_string(cap));
    }
    // Charge first, commit second: if we crash between the two appends the
    // recovered registry holds the spend with no resolvable artifact —
    // over-counting is safe, under-counting would break the DP guarantee.
    util::JsonWriter charge;
    charge.BeginObject();
    charge.Key("type").Value("charge");
    charge.Key("dataset").Value(dataset);
    charge.Key("name").Value(name);
    charge.Key("release_key").Value(std::to_string(release_key));
    charge.Key("epsilon").ValueExact(epsilon);
    charge.EndObject();
    if (auto st = AppendRecordLocked(charge.Finish(), "registry.charge");
        !st.ok()) {
      return st;
    }
    DatasetState& state = dataset_state_[dataset];
    state.charges.emplace(release_key, epsilon);
    state.spent += epsilon;
  }

  util::JsonWriter commit;
  commit.BeginObject();
  commit.Key("type").Value("artifact");
  commit.Key("dataset").Value(dataset);
  commit.Key("name").Value(name);
  commit.Key("artifact_json").Value(artifact_json);
  commit.EndObject();
  if (auto st = AppendRecordLocked(commit.Finish(), "registry.commit");
      !st.ok()) {
    return st;
  }

  Entry entry;
  entry.artifact = artifact;
  entry.artifact_json = artifact_json;
  entry.release_key = release_key;
  fingerprints_[FingerprintKey(dataset, artifact.config_fingerprint)] =
      release_key;
  entries_[EntryKey(dataset, name)] = std::move(entry);
  HistoryRow history_row;
  history_row.dataset = dataset;
  history_row.name = name;
  history_row.mechanism = artifact.mechanism;
  history_row.model = artifact.model;
  history_row.release_key = release_key;
  history_row.config_fingerprint = artifact.config_fingerprint;
  history_row.epsilon = epsilon;
  history_.push_back(std::move(history_row));
  return util::Status::OK();
}

util::Result<pipeline::ReleaseArtifact> ArtifactRegistry::Resolve(
    const std::string& dataset, const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(EntryKey(dataset, name));
  if (it == entries_.end()) {
    return util::Status::NotFound("registry has no release '" + dataset +
                                  "/" + name + "'");
  }
  return it->second.artifact;
}

util::Status ArtifactRegistry::Gc(const std::string& dataset,
                                  const std::string& name) {
  if (auto st = ValidateIdentifier("dataset", dataset); !st.ok()) return st;
  if (auto st = ValidateIdentifier("name", name); !st.ok()) return st;
  std::lock_guard<std::mutex> lock(mu_);
  if (auto st = MutableCheckLocked(); !st.ok()) return st;
  auto it = entries_.find(EntryKey(dataset, name));
  if (it == entries_.end()) {
    return util::Status::NotFound("registry has no release '" + dataset +
                                  "/" + name + "'");
  }
  util::JsonWriter record;
  record.BeginObject();
  record.Key("type").Value("gc");
  record.Key("dataset").Value(dataset);
  record.Key("name").Value(name);
  record.EndObject();
  if (auto st = AppendRecordLocked(record.Finish(), "registry.gc"); !st.ok()) {
    return st;
  }
  for (auto h = history_.rbegin(); h != history_.rend(); ++h) {
    if (h->live && h->dataset == dataset && h->name == name &&
        h->release_key == it->second.release_key) {
      h->live = false;
      break;
    }
  }
  fingerprints_.erase(
      FingerprintKey(dataset, it->second.artifact.config_fingerprint));
  entries_.erase(it);
  return util::Status::OK();
}

util::Status ArtifactRegistry::ChargeTenant(const std::string& tenant,
                                            uint64_t release_key,
                                            double epsilon) {
  if (auto st = ValidateIdentifier("tenant", tenant); !st.ok()) return st;
  if (!(epsilon >= 0.0)) {
    return util::Status::InvalidArgument("tenant charge must be >= 0");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (auto st = MutableCheckLocked(); !st.ok()) return st;
  auto& charges = tenant_charges_[tenant];
  if (charges.count(release_key) > 0) return util::Status::OK();
  util::JsonWriter record;
  record.BeginObject();
  record.Key("type").Value("tenant_charge");
  record.Key("tenant").Value(tenant);
  record.Key("release_key").Value(std::to_string(release_key));
  record.Key("epsilon").ValueExact(epsilon);
  record.EndObject();
  if (auto st = AppendRecordLocked(record.Finish(), "registry.tenant");
      !st.ok()) {
    return st;
  }
  charges.emplace(release_key, epsilon);
  return util::Status::OK();
}

std::string ArtifactRegistry::EncodeCheckpointLocked() const {
  // Sort every section so the checkpoint bytes are a deterministic function
  // of the logical state (the unordered_map iteration order is not).
  std::vector<std::string> dataset_names;
  dataset_names.reserve(dataset_state_.size());
  for (const auto& [dataset, state] : dataset_state_) {
    dataset_names.push_back(dataset);
  }
  std::sort(dataset_names.begin(), dataset_names.end());

  std::vector<const std::string*> entry_keys;
  entry_keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) entry_keys.push_back(&key);
  std::sort(entry_keys.begin(), entry_keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });

  std::vector<std::string> tenant_names;
  tenant_names.reserve(tenant_charges_.size());
  for (const auto& [tenant, charges] : tenant_charges_) {
    tenant_names.push_back(tenant);
  }
  std::sort(tenant_names.begin(), tenant_names.end());

  auto sorted_charges =
      [](const std::unordered_map<uint64_t, double>& charges) {
        std::vector<std::pair<uint64_t, double>> rows(charges.begin(),
                                                      charges.end());
        std::sort(rows.begin(), rows.end());
        return rows;
      };

  util::JsonWriter json;
  json.BeginObject();
  json.Key("type").Value("checkpoint");
  json.Key("datasets").BeginArray();
  for (const std::string& dataset : dataset_names) {
    const DatasetState& state = dataset_state_.at(dataset);
    json.BeginObject();
    json.Key("dataset").Value(dataset);
    json.Key("charges").BeginArray();
    for (const auto& [key, epsilon] : sorted_charges(state.charges)) {
      json.BeginObject();
      json.Key("release_key").Value(std::to_string(key));
      json.Key("epsilon").ValueExact(epsilon);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.Key("artifacts").BeginArray();
  for (const std::string* key : entry_keys) {
    const Entry& entry = entries_.at(*key);
    const size_t sep = key->find('\n');
    json.BeginObject();
    json.Key("dataset").Value(key->substr(0, sep));
    json.Key("name").Value(key->substr(sep + 1));
    json.Key("artifact_json").Value(entry.artifact_json);
    json.EndObject();
  }
  json.EndArray();
  json.Key("tenants").BeginArray();
  for (const std::string& tenant : tenant_names) {
    json.BeginObject();
    json.Key("tenant").Value(tenant);
    json.Key("charges").BeginArray();
    for (const auto& [key, epsilon] :
         sorted_charges(tenant_charges_.at(tenant))) {
      json.BeginObject();
      json.Key("release_key").Value(std::to_string(key));
      json.Key("epsilon").ValueExact(epsilon);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  // History travels in bind order (already deterministic — it was built by
  // deterministic journal replay), so superseded lineage survives
  // compaction.
  json.Key("history").BeginArray();
  for (const HistoryRow& row : history_) {
    json.BeginObject();
    json.Key("dataset").Value(row.dataset);
    json.Key("name").Value(row.name);
    json.Key("mechanism").Value(row.mechanism);
    json.Key("model").Value(row.model);
    json.Key("release_key").Value(std::to_string(row.release_key));
    json.Key("config_fingerprint")
        .Value(std::to_string(row.config_fingerprint));
    json.Key("epsilon").ValueExact(row.epsilon);
    json.Key("live").Value(row.live);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.Finish();
}

util::Status ArtifactRegistry::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto st = MutableCheckLocked(); !st.ok()) return st;

  const std::string payload = EncodeCheckpointLocked();
  std::string bytes = EncodeHeader();
  PutU32LE(bytes, static_cast<uint32_t>(payload.size()));
  PutU32LE(bytes, util::Crc32c(payload.data(), payload.size()));
  bytes.append(payload);

  // A failure before the rename leaves the live journal untouched: clean up
  // the tmp file and stay healthy. After the rename the live file has
  // changed under us, so any later failure wounds the registry.
  const std::string tmp = path_ + ".tmp";
  const int tmp_fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmp_fd < 0) {
    return util::Status::IoError("open '" + tmp +
                                 "': " + std::strerror(errno));
  }
  auto fail_before_rename = [&](util::Status st) {
    ::close(tmp_fd);
    ::unlink(tmp.c_str());
    return st;
  };
  if (util::FaultAction fault = util::PollFault("registry.checkpoint.write");
      fault.fire) {
    if (fault.kind == util::FaultKind::kTornWrite) {
      (void)WriteAll(tmp_fd, bytes.data(), bytes.size() / 2, 0);
    }
    return fail_before_rename(util::Status::IoError(
        "injected fault at 'registry.checkpoint.write'"));
  }
  if (auto st = WriteAll(tmp_fd, bytes.data(), bytes.size(), 0); !st.ok()) {
    return fail_before_rename(std::move(st));
  }
  if (util::FaultAction fault = util::PollFault("registry.checkpoint.fsync");
      fault.fire) {
    return fail_before_rename(util::Status::IoError(
        "injected fault at 'registry.checkpoint.fsync'"));
  }
  if (options_.fsync && ::fsync(tmp_fd) != 0) {
    return fail_before_rename(util::Status::IoError(
        std::string("fsync '") + tmp + "': " + std::strerror(errno)));
  }
  ::close(tmp_fd);

  if (util::FaultAction fault = util::PollFault("registry.checkpoint.rename");
      fault.fire) {
    ::unlink(tmp.c_str());
    return util::Status::IoError(
        "injected fault at 'registry.checkpoint.rename'");
  }
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    const util::Status st = util::Status::IoError(
        "rename '" + tmp + "' over '" + path_ + "': " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return st;
  }
  if (auto st = SyncDirectoryOf(path_); options_.fsync && !st.ok()) {
    WoundLocked("checkpoint directory fsync failed");
    return st;
  }

  // The old fd points at the replaced inode; move the handle (and the
  // exclusive flock) to the new file.
  const int new_fd = ::open(path_.c_str(), O_RDWR | O_CLOEXEC);
  if (new_fd < 0) {
    WoundLocked("reopen after checkpoint failed");
    return util::Status::IoError("reopen '" + path_ +
                                 "': " + std::strerror(errno));
  }
  if (::flock(new_fd, LOCK_EX | LOCK_NB) != 0) {
    const util::Status st = util::Status::IoError(
        "flock after checkpoint '" + path_ + "': " + std::strerror(errno));
    ::close(new_fd);
    WoundLocked("flock after checkpoint failed");
    return st;
  }
  ::close(fd_);
  fd_ = new_fd;
  file_bytes_ = bytes.size();
  counters_.journal_bytes = file_bytes_;
  ++counters_.checkpoints;
  if (options_.fsync) ++counters_.fsyncs;
  return util::Status::OK();
}

double ArtifactRegistry::CapLocked(const std::string& dataset) const {
  for (const auto& [name, cap] : options_.dataset_caps) {
    if (name == dataset) return cap;
  }
  return options_.default_dataset_cap > 0.0 ? options_.default_dataset_cap
                                            : 0.0;
}

double ArtifactRegistry::Spent(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dataset_state_.find(dataset);
  return it == dataset_state_.end() ? 0.0 : it->second.spent;
}

double ArtifactRegistry::Cap(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(mu_);
  return CapLocked(dataset);
}

std::vector<ArtifactRow> ArtifactRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ArtifactRow> rows;
  rows.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    const size_t sep = key.find('\n');
    ArtifactRow row;
    row.dataset = key.substr(0, sep);
    row.name = key.substr(sep + 1);
    row.mechanism = entry.artifact.mechanism;
    row.model = entry.artifact.model;
    row.release_key = entry.release_key;
    row.config_fingerprint = entry.artifact.config_fingerprint;
    row.epsilon = entry.artifact.epsilon_spent;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const ArtifactRow& a, const ArtifactRow& b) {
              return std::tie(a.dataset, a.name) < std::tie(b.dataset, b.name);
            });
  return rows;
}

std::vector<HistoryRow> ArtifactRegistry::History() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

std::vector<DatasetRow> ArtifactRegistry::Datasets() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DatasetRow> rows;
  rows.reserve(dataset_state_.size());
  for (const auto& [dataset, state] : dataset_state_) {
    DatasetRow row;
    row.dataset = dataset;
    row.spent = state.spent;
    row.cap = CapLocked(dataset);
    rows.push_back(std::move(row));
  }
  for (const auto& [key, entry] : entries_) {
    const std::string dataset = key.substr(0, key.find('\n'));
    for (DatasetRow& row : rows) {
      if (row.dataset == dataset) {
        ++row.artifacts;
        break;
      }
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const DatasetRow& a, const DatasetRow& b) {
              return a.dataset < b.dataset;
            });
  return rows;
}

std::vector<TenantChargeRow> ArtifactRegistry::TenantCharges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantChargeRow> rows;
  for (const auto& [tenant, charges] : tenant_charges_) {
    for (const auto& [key, epsilon] : charges) {
      rows.push_back(TenantChargeRow{tenant, key, epsilon});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const TenantChargeRow& a, const TenantChargeRow& b) {
              return std::tie(a.tenant, a.release_key) <
                     std::tie(b.tenant, b.release_key);
            });
  return rows;
}

RegistryStats ArtifactRegistry::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistryStats stats = counters_;
  stats.artifacts = entries_.size();
  stats.datasets = dataset_state_.size();
  stats.tenant_charges = 0;
  for (const auto& [tenant, charges] : tenant_charges_) {
    stats.tenant_charges += charges.size();
  }
  stats.wounded = wounded_;
  stats.journal_bytes = file_bytes_;
  return stats;
}

}  // namespace agmdp::registry

// Crash-safe artifact registry: the durable source of truth for what was
// released and what it cost.
//
// A differential-privacy guarantee is a statement about *everything ever
// published* from a dataset, so the spend accounting has to outlive any
// process. The registry is a single file: a 16-byte checksummed header
// followed by an append-only journal of CRC32C-framed JSON records. Every
// mutation is journaled and fsynced before it takes effect in memory, and
// the epsilon charge for a release is journaled *before* the record that
// makes the artifact resolvable — so on any crash, recovery can under-count
// releases but never under-count spend. Recovery replays the journal,
// treats the first unparseable frame as a torn tail (truncates it away),
// and surfaces genuine damage earlier in the file as typed Corruption /
// ChecksumMismatch / VersionMismatch errors.
//
// Checkpoint() compacts the journal RocksDB-style: the full state is
// written to `path.tmp` as one checkpoint record, fsynced, renamed over the
// live file, and the directory fsynced — atomic on POSIX, and every step is
// a named fault point (see kRegistryFaultPoints) so the crash matrix is
// testable. A journal IO failure wounds the registry: it stays readable but
// refuses further mutations, because after a failed append the file's tail
// state is unknown.
//
// Concurrency: one exclusive flock per file (a second Open fails with a
// typed FailedPrecondition), one mutex inside the process.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/pipeline/release_artifact.h"
#include "src/util/status.h"

namespace agmdp::registry {

/// Bump when the journal layout changes incompatibly.
inline constexpr uint32_t kRegistryFormatVersion = 1;

/// Every journaled IO step, by fault-point name — the crash matrix the
/// recovery tests iterate (util::FaultInjector fires these).
inline constexpr const char* kRegistryFaultPoints[] = {
    "registry.charge.write",     "registry.charge.fsync",
    "registry.commit.write",     "registry.commit.fsync",
    "registry.tenant.write",     "registry.tenant.fsync",
    "registry.gc.write",         "registry.gc.fsync",
    "registry.checkpoint.write", "registry.checkpoint.fsync",
    "registry.checkpoint.rename",
};

struct RegistryOptions {
  /// Lifetime epsilon cap applied to datasets without an explicit entry in
  /// `dataset_caps`; <= 0 means uncapped.
  double default_dataset_cap = 0.0;
  /// Per-dataset cap overrides as (dataset, cap) pairs.
  std::vector<std::pair<std::string, double>> dataset_caps;
  /// Disable only in tests that measure pure journaling overhead; with
  /// fsync off a crash can lose acknowledged records.
  bool fsync = true;
};

/// One resolvable release, as listed by List().
struct ArtifactRow {
  std::string dataset;
  std::string name;
  std::string mechanism;
  std::string model;
  uint64_t release_key = 0;
  uint64_t config_fingerprint = 0;
  double epsilon = 0.0;
};

/// One release ever bound to a (dataset, name), in bind order — the
/// per-config fingerprint history behind `agmdp registry list`. Gc marks a
/// row superseded instead of dropping it: the release happened, and its
/// fingerprint/epsilon lineage stays auditable after the bytes are gone.
struct HistoryRow {
  std::string dataset;
  std::string name;
  std::string mechanism;
  std::string model;
  uint64_t release_key = 0;
  uint64_t config_fingerprint = 0;
  double epsilon = 0.0;
  /// False once the binding was gc'd (superseded).
  bool live = true;
};

/// Per-dataset budget posture.
struct DatasetRow {
  std::string dataset;
  double spent = 0.0;
  /// 0 = uncapped.
  double cap = 0.0;
  /// Currently resolvable artifacts (gc'd releases stay charged).
  uint64_t artifacts = 0;
};

/// One durable tenant charge, replayed into the server's TenantLedger.
struct TenantChargeRow {
  std::string tenant;
  uint64_t release_key = 0;
  double epsilon = 0.0;
};

struct RegistryStats {
  uint64_t artifacts = 0;
  uint64_t datasets = 0;
  uint64_t tenant_charges = 0;
  /// Journal records replayed at Open (0 for a fresh file).
  uint64_t recovered_records = 0;
  /// Bytes discarded from a torn tail at Open.
  uint64_t discarded_tail_bytes = 0;
  /// Records appended + fsyncs issued since Open.
  uint64_t appends = 0;
  uint64_t fsyncs = 0;
  uint64_t checkpoints = 0;
  /// Current journal size in bytes.
  uint64_t journal_bytes = 0;
  /// True after a journal IO failure: reads still work, mutations refuse.
  bool wounded = false;
};

/// \brief Single-file durable registry of releases and epsilon charges.
///
/// Thread-safe; all methods may be called concurrently.
class ArtifactRegistry {
 public:
  /// Opens (creating if absent) and recovers the registry at `path`.
  static util::Result<std::unique_ptr<ArtifactRegistry>> Open(
      const std::string& path, const RegistryOptions& options);

  ~ArtifactRegistry();

  ArtifactRegistry(const ArtifactRegistry&) = delete;
  ArtifactRegistry& operator=(const ArtifactRegistry&) = delete;

  /// Registers `artifact` under (dataset, name), charging its epsilon_spent
  /// against the dataset cap. Idempotent per release key: re-putting the
  /// identical artifact is OK and charges nothing. A different artifact
  /// under an existing name, or a different release under an existing
  /// config fingerprint, is FailedPrecondition; an over-cap charge is
  /// ResourceExhausted (and nothing is journaled).
  util::Status Put(const std::string& dataset, const std::string& name,
                   const pipeline::ReleaseArtifact& artifact);

  /// Looks up the artifact registered under (dataset, name).
  util::Result<pipeline::ReleaseArtifact> Resolve(
      const std::string& dataset, const std::string& name) const;

  /// Drops (dataset, name) from the resolvable set. The epsilon charge
  /// REMAINS — the release happened; deleting the bytes does not refund the
  /// privacy loss. Re-putting the same artifact later is free.
  util::Status Gc(const std::string& dataset, const std::string& name);

  /// Durably records a tenant-ledger charge (idempotent per (tenant,
  /// release_key)). The server journals here before acknowledging a load.
  util::Status ChargeTenant(const std::string& tenant, uint64_t release_key,
                            double epsilon);

  /// Compacts the journal into a single checkpoint record via
  /// write-tmp + fsync + rename + fsync-dir.
  util::Status Checkpoint();

  /// Lifetime epsilon spent against / cap for `dataset` (cap 0 = uncapped).
  double Spent(const std::string& dataset) const;
  double Cap(const std::string& dataset) const;

  std::vector<ArtifactRow> List() const;
  /// Every release ever bound, in bind order, gc'd (superseded) rows
  /// included. Survives checkpoints and recovery.
  std::vector<HistoryRow> History() const;
  std::vector<DatasetRow> Datasets() const;
  std::vector<TenantChargeRow> TenantCharges() const;
  RegistryStats Stats() const;

  const std::string& path() const { return path_; }

 private:
  ArtifactRegistry(std::string path, RegistryOptions options);

  struct Entry {
    pipeline::ReleaseArtifact artifact;
    std::string artifact_json;
    uint64_t release_key = 0;
  };
  struct DatasetState {
    /// release_key -> epsilon, the idempotence record behind `spent`.
    std::unordered_map<uint64_t, double> charges;
    double spent = 0.0;
  };

  util::Status OpenFileLocked();
  util::Status RecoverLocked();
  util::Status ApplyRecordLocked(const std::string& payload);
  util::Status AppendRecordLocked(const std::string& payload,
                                  const char* point_prefix);
  std::string EncodeCheckpointLocked() const;
  util::Status MutableCheckLocked() const;
  double CapLocked(const std::string& dataset) const;
  void WoundLocked(const char* why);

  const std::string path_;
  const RegistryOptions options_;

  mutable std::mutex mu_;
  int fd_ = -1;
  uint64_t file_bytes_ = 0;
  bool wounded_ = false;

  /// (dataset, name) -> entry; key is dataset + '\n' + name.
  std::unordered_map<std::string, Entry> entries_;
  /// (dataset, fingerprint) -> release_key, the collision index.
  std::unordered_map<std::string, uint64_t> fingerprints_;
  std::unordered_map<std::string, DatasetState> dataset_state_;
  /// Bind-order release history (superseded rows included); rebuilt on
  /// replay and carried through checkpoints.
  std::vector<HistoryRow> history_;
  /// tenant -> release_key -> epsilon.
  std::unordered_map<std::string, std::unordered_map<uint64_t, double>>
      tenant_charges_;

  RegistryStats counters_;
};

}  // namespace agmdp::registry

#include "src/dp/ladder_mechanism.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/graph/subgraph_counts.h"
#include "src/graph/triangle_count.h"
#include "src/util/check.h"

namespace agmdp::dp {

namespace {

// Top two degrees (0 if absent).
std::pair<uint32_t, uint32_t> TopTwoDegrees(const graph::Graph& g) {
  uint32_t first = 0, second = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    uint32_t d = g.Degree(v);
    if (d >= first) {
      second = first;
      first = d;
    } else if (d > second) {
      second = d;
    }
  }
  return {first, second};
}

// Second-largest degree. A valid upper bound on the max common-neighbor
// count: |Γ(u) ∩ Γ(v)| <= min(d_u, d_v), and the min over any pair is at
// most the second-largest degree.
uint32_t SecondLargestDegree(const graph::Graph& g) {
  return TopTwoDegrees(g).second;
}

// C(n, k) in floating point via lgamma (k-star ladders overflow integers).
double BinomialDouble(double n, double k) {
  if (k < 0.0 || k > n) return 0.0;
  if (k == 0.0 || k == n) return 1.0;
  return std::exp(std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
                  std::lgamma(n - k + 1.0));
}

}  // namespace

util::Result<int64_t> DpTriangleCount(const graph::Graph& g, double epsilon,
                                      util::Rng& rng,
                                      const LadderOptions& options,
                                      LadderDiagnostics* diagnostics) {
  if (epsilon <= 0.0) {
    return util::Status::InvalidArgument("DpTriangleCount: epsilon <= 0");
  }
  const graph::NodeId n = g.num_nodes();
  if (n < 3) return int64_t{0};  // no triangles possible; data-independent

  const int64_t true_count = static_cast<int64_t>(graph::CountTriangles(g));
  const uint32_t cap = n - 2;  // a pair has at most n - 2 common neighbors

  uint32_t base = 0;
  bool exact = false;
  if (!options.force_degree_bound) {
    auto exact_base = graph::MaxCommonNeighborCount(g, options.max_exact_work);
    if (exact_base.ok()) {
      base = exact_base.value();
      exact = true;
    }
  }
  if (!exact) base = std::min(SecondLargestDegree(g), cap);
  base = std::min(base, cap);
  if (diagnostics != nullptr) {
    diagnostics->ladder_base = base;
    diagnostics->used_exact_base = exact;
  }

  // Ladder: I_t = min(base + t, cap). Rung t >= 1 has 2 * I_{t-1} values and
  // weight 2 * I_{t-1} * q^t with q = e^{-eps/2}; rung 0 has weight 1.
  const double q = std::exp(-epsilon / 2.0);
  const uint64_t t_sat = cap > base ? cap - base : 0;  // I_t = cap for t>=t_sat

  // Finite rungs t = 1 .. t_sat (whose width I_{t-1} is still below cap),
  // then a closed-form geometric tail of width-cap rungs.
  std::vector<double> rung_weight;  // rung_weight[t] for t = 0..t_sat
  rung_weight.reserve(t_sat + 1);
  rung_weight.push_back(1.0);  // rung 0
  double q_pow = 1.0;
  double finite_total = 1.0;
  for (uint64_t t = 1; t <= t_sat; ++t) {
    q_pow *= q;
    const double width = 2.0 * static_cast<double>(base + (t - 1));
    const double w = width * q_pow;
    rung_weight.push_back(w);
    finite_total += w;
    if (w < 1e-300 && t > 1) {
      // Deeper rungs (and the tail) carry no representable mass.
      break;
    }
  }
  const uint64_t computed = rung_weight.size() - 1;  // deepest finite rung
  double tail_total = 0.0;
  if (computed == t_sat) {
    // q^(t_sat + 1) * 2 * cap / (1 - q), the mass of all width-cap rungs.
    tail_total = q_pow * q * 2.0 * static_cast<double>(cap) / (1.0 - q);
  }

  // Sample a rung.
  double u = rng.UniformDouble() * (finite_total + tail_total);
  uint64_t rung = 0;
  bool in_tail = true;
  for (uint64_t t = 0; t < rung_weight.size(); ++t) {
    if (u < rung_weight[t]) {
      rung = t;
      in_tail = false;
      break;
    }
    u -= rung_weight[t];
  }
  if (in_tail) {
    // Geometric over width-cap rungs beyond t_sat.
    rung = t_sat + 1 + rng.Geometric(1.0 - q);
  }

  int64_t result = true_count;
  if (rung > 0) {
    // Cumulative ladder height below this rung: sum_{s < rung-1} I_s.
    const uint64_t steps_below = rung - 1;
    const uint64_t linear_steps = std::min(steps_below, t_sat);
    // sum_{s=0}^{linear_steps-1} (base + s), plus cap for saturated steps.
    double cum = static_cast<double>(base) * linear_steps +
                 static_cast<double>(linear_steps) * (linear_steps - 1) / 2.0 +
                 static_cast<double>(steps_below - linear_steps) *
                     static_cast<double>(cap);
    const uint64_t width =
        std::min<uint64_t>(base + (rung - 1), cap);  // I_{rung-1}
    AGMDP_CHECK(width > 0);
    const uint64_t offset = rng.UniformIndex(2 * width);
    const int64_t magnitude =
        static_cast<int64_t>(cum) + static_cast<int64_t>(offset / 2) + 1;
    result = offset % 2 == 0 ? true_count + magnitude : true_count - magnitude;
  }

  // Post-processing: clamp into the feasible range [0, C(n, 3)].
  const long double max_triangles = static_cast<long double>(n) * (n - 1) *
                                    (n - 2) / 6.0L;
  if (result < 0) result = 0;
  if (static_cast<long double>(result) > max_triangles) {
    result = static_cast<int64_t>(max_triangles);
  }
  return result;
}

util::Result<double> DpKStarCount(const graph::Graph& g, uint32_t k,
                                  double epsilon, util::Rng& rng) {
  if (epsilon <= 0.0) {
    return util::Status::InvalidArgument("DpKStarCount: epsilon <= 0");
  }
  if (k < 2) {
    return util::Status::InvalidArgument("DpKStarCount: k must be >= 2");
  }
  const graph::NodeId n = g.num_nodes();
  if (n <= k) return 0.0;  // no k-stars possible; data-independent

  const double true_count =
      static_cast<double>(graph::CountKStars(g, k));
  const auto [d1, d2] = TopTwoDegrees(g);

  // Ladder width at step t: one edit at distance t can touch two nodes whose
  // degrees have each grown by at most t (capped at n - 1).
  const double dmax_cap = static_cast<double>(n - 1);
  auto width = [&](uint64_t t) {
    const double a = std::min(static_cast<double>(d1) + t, dmax_cap);
    const double b = std::min(static_cast<double>(d2) + t, dmax_cap);
    return BinomialDouble(a, k - 1) + BinomialDouble(b, k - 1);
  };
  const uint64_t t_sat = d2 < n - 1 ? (n - 1) - d2 : 0;

  const double q = std::exp(-epsilon / 2.0);
  std::vector<double> rung_weight = {1.0};
  std::vector<double> cum_width = {0.0};  // sum of widths below rung t
  double q_pow = 1.0;
  double finite_total = 1.0;
  for (uint64_t t = 1; t <= t_sat; ++t) {
    q_pow *= q;
    const double w_width = width(t - 1);
    const double w = 2.0 * w_width * q_pow;
    cum_width.push_back(cum_width.back() + w_width);
    rung_weight.push_back(w);
    finite_total += w;
    if (w < 1e-280 && t > 1 && q_pow < 1e-280) break;
  }
  const uint64_t computed = rung_weight.size() - 1;
  double tail_total = 0.0;
  if (computed == t_sat) {
    tail_total = q_pow * q * 2.0 * width(t_sat) / (1.0 - q);
  }

  double u = rng.UniformDouble() * (finite_total + tail_total);
  uint64_t rung = 0;
  bool in_tail = true;
  for (uint64_t t = 0; t < rung_weight.size(); ++t) {
    if (u < rung_weight[t]) {
      rung = t;
      in_tail = false;
      break;
    }
    u -= rung_weight[t];
  }
  if (in_tail) rung = t_sat + 1 + rng.Geometric(1.0 - q);

  double result = true_count;
  if (rung > 0) {
    const uint64_t steps_below = rung - 1;
    double cum;
    if (steps_below < cum_width.size()) {
      cum = cum_width[steps_below];
    } else {
      cum = cum_width.back() +
            static_cast<double>(steps_below - (cum_width.size() - 1)) *
                width(t_sat);
    }
    const double w_width = width(rung - 1);
    // Continuous offset within the rung (documented approximation: at the
    // magnitudes k-star ladders reach, integer granularity is immaterial).
    const double offset = cum + rng.UniformDouble() * w_width;
    result = rng.Bernoulli(0.5) ? true_count + offset : true_count - offset;
  }

  const double max_stars =
      static_cast<double>(n) * BinomialDouble(dmax_cap, k);
  return std::clamp(result, 0.0, max_stars);
}

}  // namespace agmdp::dp

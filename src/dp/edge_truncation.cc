#include "src/dp/edge_truncation.h"

#include <cmath>
#include <vector>

#include "src/util/check.h"

namespace agmdp::dp {

graph::Graph TruncateEdges(const graph::Graph& g, uint32_t k) {
  AGMDP_CHECK_MSG(k >= 1, "truncation parameter must be >= 1");
  // Degrees evolve as edges are deleted; an edge survives iff both endpoint
  // degrees are <= k at the moment it is processed. Equivalently, build up
  // the surviving graph while tracking how many edges remain to be decided.
  std::vector<uint32_t> degree(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) degree[v] = g.Degree(v);

  graph::Graph out(g.num_nodes());
  for (const graph::Edge& e : g.CanonicalEdges()) {
    if (degree[e.u] > k || degree[e.v] > k) {
      // Delete: the endpoints' current degrees drop.
      --degree[e.u];
      --degree[e.v];
    } else {
      out.AddEdge(e.u, e.v);
    }
  }
  return out;
}

graph::AttributedGraph TruncateEdges(const graph::AttributedGraph& g,
                                     uint32_t k) {
  graph::AttributedGraph out(TruncateEdges(g.structure(), k),
                             g.num_attributes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    out.set_attribute(v, g.attribute(v));
  }
  return out;
}

uint32_t HeuristicTruncationK(graph::NodeId n) {
  uint32_t k = static_cast<uint32_t>(
      std::llround(std::cbrt(static_cast<double>(n))));
  return k < 2 ? 2 : k;
}

}  // namespace agmdp::dp

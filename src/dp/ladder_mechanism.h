// Ladder mechanism for differentially private triangle counts
// (Zhang et al., SIGMOD 2015; used by Algorithm 6, line 9 of the paper).
//
// The local sensitivity of the triangle count at an edge {u, v} is
// |Γ(u) ∩ Γ(v)|, so the graph's local sensitivity is
// a_max = max over node pairs of the common-neighbor count, and a valid
// "ladder" (an upper bound on the local sensitivity at edit distance t that
// is monotone in t and compatible across neighboring graphs) is
//     I_t(G) = min(base(G) + t, n - 2),
// where base(G) is either the exact a_max (each edge edit changes any a_uv by
// at most one) or, when exact wedge enumeration exceeds a work budget, the
// second-largest degree (a_uv <= min(d_u, d_v), and one edit moves the
// second-largest degree by at most one).
//
// The mechanism centers a "ladder" of rungs on the true count M: rung 0 is
// {M}; rung t >= 1 holds the 2 * I_{t-1} integers at distance
// (sum_{s<t-1} I_s, sum_{s<t} I_s] from M on either side. A rung is sampled
// with probability proportional to size * exp(-eps * t / 2) (exponential
// mechanism with quality -t, sensitivity 1 — pure eps-DP), then a value
// uniform within the rung. The geometric tail after the ladder saturates at
// n - 2 is sampled in closed form.
#pragma once

#include <cstdint>

#include "src/graph/graph.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::dp {

struct LadderOptions {
  /// Wedge-work budget for the exact a_max scan; beyond it the degree bound
  /// is used instead (see DESIGN.md substitution #6).
  uint64_t max_exact_work = 200'000'000;
  /// Forces the degree-based ladder base (for ablation benchmarks).
  bool force_degree_bound = false;
};

struct LadderDiagnostics {
  uint32_t ladder_base = 0;   // I_0
  bool used_exact_base = false;
};

/// eps-DP estimate of the triangle count. The result is clamped to
/// [0, C(n,3)]. `diagnostics`, if non-null, reports which ladder base was
/// used. Fails on non-positive epsilon.
util::Result<int64_t> DpTriangleCount(const graph::Graph& g, double epsilon,
                                      util::Rng& rng,
                                      const LadderOptions& options = {},
                                      LadderDiagnostics* diagnostics = nullptr);

/// eps-DP estimate of the k-star count (k >= 2), also via the Ladder
/// framework. One edge edit changes the count by C(d_u, k-1) + C(d_v, k-1),
/// so the ladder is I_t = C(min(d1+t, n-1), k-1) + C(min(d2+t, n-1), k-1)
/// with d1, d2 the two largest degrees. Returns a double: k-star counts
/// overflow 64-bit integers on large graphs, and at that magnitude the
/// rung offsets are sampled continuously (documented approximation).
util::Result<double> DpKStarCount(const graph::Graph& g, uint32_t k,
                                  double epsilon, util::Rng& rng);

}  // namespace agmdp::dp

#include "src/dp/laplace_mechanism.h"

#include <algorithm>

#include "src/util/check.h"

namespace agmdp::dp {

double LaplaceMechanism(double value, double sensitivity, double epsilon,
                        util::Rng& rng) {
  AGMDP_CHECK(sensitivity > 0.0);
  AGMDP_CHECK(epsilon > 0.0);
  return value + rng.Laplace(sensitivity / epsilon);
}

std::vector<double> NoisyCounts(const std::vector<double>& counts,
                                double sensitivity, double epsilon,
                                util::Rng& rng) {
  std::vector<double> noisy(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    noisy[i] = LaplaceMechanism(counts[i], sensitivity, epsilon, rng);
  }
  return noisy;
}

std::vector<double> ClampAndNormalize(std::vector<double> values, double lo,
                                      double hi) {
  AGMDP_CHECK(lo <= hi);
  double sum = 0.0;
  for (double& v : values) {
    v = std::clamp(v, lo, hi);
    sum += v;
  }
  if (sum <= 0.0) {
    if (values.empty()) return values;
    std::fill(values.begin(), values.end(),
              1.0 / static_cast<double>(values.size()));
    return values;
  }
  for (double& v : values) v /= sum;
  return values;
}

}  // namespace agmdp::dp

#include "src/dp/geometric_mechanism.h"

#include <cmath>

#include "src/util/check.h"

namespace agmdp::dp {

int64_t TwoSidedGeometricNoise(double epsilon, double sensitivity,
                               util::Rng& rng) {
  AGMDP_CHECK(epsilon > 0.0);
  AGMDP_CHECK(sensitivity > 0.0);
  const double alpha = std::exp(-epsilon / sensitivity);
  // |noise| ~ mixture: 0 w.p. (1-alpha)/(1+alpha); otherwise
  // 1 + Geometric(1 - alpha), with a uniform sign.
  const double p_zero = (1.0 - alpha) / (1.0 + alpha);
  if (rng.Bernoulli(p_zero)) return 0;
  const auto magnitude =
      static_cast<int64_t>(1 + rng.Geometric(1.0 - alpha));
  return rng.Bernoulli(0.5) ? magnitude : -magnitude;
}

int64_t GeometricMechanism(int64_t value, double sensitivity, double epsilon,
                           util::Rng& rng) {
  return value + TwoSidedGeometricNoise(epsilon, sensitivity, rng);
}

}  // namespace agmdp::dp

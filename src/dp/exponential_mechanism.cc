#include "src/dp/exponential_mechanism.h"

#include <cmath>

namespace agmdp::dp {

util::Result<size_t> ExponentialMechanism(const std::vector<double>& scores,
                                          double sensitivity, double epsilon,
                                          util::Rng& rng) {
  if (scores.empty()) {
    return util::Status::InvalidArgument(
        "ExponentialMechanism: empty candidate set");
  }
  if (sensitivity <= 0.0 || epsilon <= 0.0) {
    return util::Status::InvalidArgument(
        "ExponentialMechanism: sensitivity and epsilon must be positive");
  }
  // Gumbel-max: argmax_i (eps * s_i / (2 * sens) + Gumbel(0,1)) is distributed
  // as the exponential mechanism over the s_i.
  const double factor = epsilon / (2.0 * sensitivity);
  size_t best_index = 0;
  double best_value = -1.0 / 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    double u = rng.UniformDouble();
    if (u <= 0.0) u = 0x1.0p-53;
    const double gumbel = -std::log(-std::log(u));
    const double value = factor * scores[i] + gumbel;
    if (value > best_value) {
      best_value = value;
      best_index = i;
    }
  }
  return best_index;
}

}  // namespace agmdp::dp

// Privacy budget accounting via sequential composition (Section 2.3).
//
// AGM-DP splits a global epsilon among the parameter-learning steps; the
// accountant enforces that the spends never exceed the total and records a
// ledger so that tests (and callers) can audit exactly where budget went.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace agmdp::dp {

/// \brief Tracks epsilon spends under sequential composition.
class PrivacyAccountant {
 public:
  /// Total budget must be positive.
  explicit PrivacyAccountant(double total_epsilon);

  /// Records a spend of `epsilon` attributed to `label`. Fails with
  /// FailedPrecondition if the spend would exceed the total budget (within a
  /// small numerical tolerance) and with InvalidArgument for non-positive
  /// epsilon.
  util::Status Spend(double epsilon, std::string label);

  double total() const { return total_; }
  double spent() const { return spent_; }
  double remaining() const { return total_ - spent_; }

  /// (label, epsilon) pairs in spend order.
  const std::vector<std::pair<std::string, double>>& ledger() const {
    return ledger_;
  }

 private:
  double total_;
  double spent_ = 0.0;
  std::vector<std::pair<std::string, double>> ledger_;
};

/// How AGM-DP divides the global budget among its parameters (Section 5):
/// TriCycLe uses four equal shares (ΘX, ΘF, S, n∆); FCL has no triangle
/// count, so S gets half and ΘX/ΘF a quarter each.
struct BudgetSplit {
  double theta_x = 0.0;
  double theta_f = 0.0;
  double degree_seq = 0.0;
  double triangles = 0.0;

  double total() const {
    return theta_x + theta_f + degree_seq + triangles;
  }

  /// Even four-way split used with TriCycLe.
  static BudgetSplit EvenFourWay(double epsilon);
  /// Split used with FCL: S = eps/2, ΘX = ΘF = eps/4, triangles = 0.
  static BudgetSplit FclThreeWay(double epsilon);
};

}  // namespace agmdp::dp

#include "src/dp/constrained_inference.h"

#include <algorithm>
#include <cmath>

namespace agmdp::dp {

std::vector<double> IsotonicRegressionL2(const std::vector<double>& values) {
  // Pool-adjacent-violators with block merging. Each block stores the mean
  // of the pooled prefix values and its width.
  struct Block {
    double mean;
    uint64_t width;
  };
  std::vector<Block> blocks;
  blocks.reserve(values.size());
  for (double v : values) {
    Block current{v, 1};
    while (!blocks.empty() && blocks.back().mean >= current.mean) {
      const Block& prev = blocks.back();
      const double total_width =
          static_cast<double>(prev.width + current.width);
      current.mean = (prev.mean * static_cast<double>(prev.width) +
                      current.mean * static_cast<double>(current.width)) /
                     total_width;
      current.width += prev.width;
      blocks.pop_back();
    }
    blocks.push_back(current);
  }
  std::vector<double> out;
  out.reserve(values.size());
  for (const Block& b : blocks) {
    out.insert(out.end(), b.width, b.mean);
  }
  return out;
}

std::vector<uint32_t> DpDegreeSequence(const std::vector<uint32_t>& degrees,
                                       double epsilon, util::Rng& rng) {
  const size_t n = degrees.size();
  std::vector<double> sorted(n);
  for (size_t i = 0; i < n; ++i) sorted[i] = degrees[i];
  std::sort(sorted.begin(), sorted.end());

  for (double& d : sorted) d += rng.Laplace(2.0 / epsilon);

  std::vector<double> fitted = IsotonicRegressionL2(sorted);

  std::vector<uint32_t> out(n);
  const double max_degree = n == 0 ? 0.0 : static_cast<double>(n - 1);
  for (size_t i = 0; i < n; ++i) {
    double d = std::clamp(std::round(fitted[i]), 0.0, max_degree);
    out[i] = static_cast<uint32_t>(d);
  }
  return out;
}

}  // namespace agmdp::dp

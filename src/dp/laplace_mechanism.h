// The Laplace mechanism and the clamp-and-normalize post-processing used by
// the paper's count-based estimators (Algorithms 4 and 5).
#pragma once

#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::dp {

/// Adds Laplace(sensitivity / epsilon) noise to a single value.
double LaplaceMechanism(double value, double sensitivity, double epsilon,
                        util::Rng& rng);

/// Adds independent Laplace(sensitivity / epsilon) noise to each count.
std::vector<double> NoisyCounts(const std::vector<double>& counts,
                                double sensitivity, double epsilon,
                                util::Rng& rng);

/// Clamps each value to [lo, hi] then normalizes to a probability
/// distribution. If everything clamps to zero the result is uniform (the
/// least-informative valid distribution — the paper does not hit this case
/// but production code must terminate sensibly). This is pure
/// post-processing and consumes no budget.
std::vector<double> ClampAndNormalize(std::vector<double> values, double lo,
                                      double hi);

}  // namespace agmdp::dp

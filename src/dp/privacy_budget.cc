#include "src/dp/privacy_budget.h"

#include "src/util/check.h"

namespace agmdp::dp {

namespace {
constexpr double kBudgetTolerance = 1e-9;
}  // namespace

PrivacyAccountant::PrivacyAccountant(double total_epsilon)
    : total_(total_epsilon) {
  AGMDP_CHECK_MSG(total_epsilon > 0.0, "privacy budget must be positive");
}

util::Status PrivacyAccountant::Spend(double epsilon, std::string label) {
  if (epsilon <= 0.0) {
    return util::Status::InvalidArgument("epsilon spend must be positive");
  }
  if (spent_ + epsilon > total_ + kBudgetTolerance) {
    return util::Status::FailedPrecondition(
        "privacy budget exhausted: spending " + std::to_string(epsilon) +
        " for '" + label + "' exceeds remaining " +
        std::to_string(remaining()));
  }
  spent_ += epsilon;
  ledger_.emplace_back(std::move(label), epsilon);
  return util::Status::OK();
}

BudgetSplit BudgetSplit::EvenFourWay(double epsilon) {
  BudgetSplit split;
  split.theta_x = epsilon / 4.0;
  split.theta_f = epsilon / 4.0;
  split.degree_seq = epsilon / 4.0;
  split.triangles = epsilon / 4.0;
  return split;
}

BudgetSplit BudgetSplit::FclThreeWay(double epsilon) {
  BudgetSplit split;
  split.theta_x = epsilon / 4.0;
  split.theta_f = epsilon / 4.0;
  split.degree_seq = epsilon / 2.0;
  split.triangles = 0.0;
  return split;
}

}  // namespace agmdp::dp

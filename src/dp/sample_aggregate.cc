#include "src/dp/sample_aggregate.h"

#include <numeric>

namespace agmdp::dp {

util::Result<std::vector<std::vector<graph::NodeId>>> RandomNodePartition(
    graph::NodeId n, uint32_t group_size, util::Rng& rng) {
  if (group_size < 1 || group_size > n) {
    return util::Status::InvalidArgument(
        "RandomNodePartition: group_size must be in [1, n]");
  }
  std::vector<graph::NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);

  const uint32_t num_groups = n / group_size;  // >= 1 by the check above
  std::vector<std::vector<graph::NodeId>> groups(num_groups);
  for (graph::NodeId i = 0; i < n; ++i) {
    uint32_t group = i / group_size;
    if (group >= num_groups) group = num_groups - 1;  // remainder
    groups[group].push_back(order[i]);
  }
  return groups;
}

util::Result<std::vector<double>> AverageVectors(
    const std::vector<std::vector<double>>& vectors) {
  if (vectors.empty()) {
    return util::Status::InvalidArgument("AverageVectors: no vectors");
  }
  const size_t dim = vectors.front().size();
  std::vector<double> mean(dim, 0.0);
  for (const auto& v : vectors) {
    if (v.size() != dim) {
      return util::Status::InvalidArgument("AverageVectors: ragged sizes");
    }
    for (size_t i = 0; i < dim; ++i) mean[i] += v[i];
  }
  for (double& x : mean) x /= static_cast<double>(vectors.size());
  return mean;
}

}  // namespace agmdp::dp

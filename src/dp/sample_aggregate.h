// Sample-and-aggregate over induced node subgraphs (Appendix B.2).
//
// The nodes are randomly partitioned into t = n / group_size disjoint groups;
// working on the induced subgraphs guarantees that changing one node (its
// attributes) touches exactly one subgraph, so averaging the per-subgraph
// probability vectors has global sensitivity 2 / t.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::dp {

/// Randomly partitions {0..n-1} into groups of `group_size` (the final group
/// absorbs the remainder, so every node is assigned). Returns the groups.
/// Fails if group_size < 1 or group_size > n.
util::Result<std::vector<std::vector<graph::NodeId>>> RandomNodePartition(
    graph::NodeId n, uint32_t group_size, util::Rng& rng);

/// Component-wise mean of equally sized probability vectors. Fails on empty
/// input or ragged sizes.
util::Result<std::vector<double>> AverageVectors(
    const std::vector<std::vector<double>>& vectors);

}  // namespace agmdp::dp

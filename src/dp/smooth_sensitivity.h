// Smooth sensitivity calculus for the Q_F connection-count queries
// (Appendix B.1 of the paper), plus the (eps, delta) noise calibration.
//
// Local sensitivity of Q_F is 2 * dmax (Lemma 3); at edit distance t it is
// min(2 dmax + 2t, 2n - 2) (Proposition 4), and the beta-smooth bound is the
// max over t of e^{-t beta} LS_t (Corollary 5). Adding
// Laplace(2 S / epsilon) noise satisfies (epsilon, delta)-DP with
// beta = epsilon / (2 ln(1 / delta)).
#pragma once

#include <cstdint>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace agmdp::dp {

/// beta = epsilon / (2 ln(1/delta)); requires 0 < delta < 1, epsilon > 0.
double SmoothSensitivityBeta(double epsilon, double delta);

/// Beta-smooth sensitivity of Q_F at a graph with maximum degree dmax and n
/// nodes: max_{t >= 0} e^{-t beta} min(2 dmax + 2t, 2n - 2) (Corollary 5,
/// including the 2n - 2 cap).
double SmoothSensitivityQF(uint32_t dmax, graph::NodeId n, double beta);

/// Scale of the Laplace noise for an (epsilon, delta)-DP release of Q_F via
/// smooth sensitivity: 2 * S / epsilon.
double SmoothLaplaceScaleQF(const graph::Graph& g, double epsilon,
                            double delta);

/// Reconstruction of the paper's Section-7 preliminary node-DP experiment:
/// smooth-sensitivity noise scale for Q_F computed over the k-truncated
/// graph under *node* adjacency. The paper gives no formula; we use the
/// conservative distance-t bound LS_t = min(2(dmax + 2k) + 2kt, 2n - 2)
/// (attribute flip costs 2k on the truncated graph; one node's edge rewiring
/// perturbs at most ~2(dmax + k) surviving edges including truncation
/// cascades, and each further edit step adds at most 2k). Documented as a
/// substitution in DESIGN.md.
double NodeDpSmoothLaplaceScaleQF(uint32_t dmax, uint32_t k, graph::NodeId n,
                                  double epsilon, double delta);

}  // namespace agmdp::dp

// Constrained inference for DP degree sequences (Hay et al., ICDM 2009;
// Appendix C.3.1 of the paper).
//
// The degree sequence is sorted ascending (the node-to-degree mapping is
// irrelevant to the models), independent Laplace(2 / eps) noise is added
// (GS = 2: one edge change moves exactly two degrees by one), and the
// ordering constraint is restored by L2-projection onto non-decreasing
// sequences — classic isotonic regression, solved in linear time by
// pool-adjacent-violators (PAVA). Projection is post-processing, so it is
// free of privacy cost and cancels most of the noise on the flat low-degree
// prefix of social-network degree sequences.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace agmdp::dp {

/// L2 isotonic regression: the non-decreasing sequence closest to `values`
/// in Euclidean distance (pool-adjacent-violators, O(n)).
std::vector<double> IsotonicRegressionL2(const std::vector<double>& values);

/// End-to-end DP degree sequence (Algorithm 6, lines 3-8): sort ascending,
/// add Laplace(2/epsilon), run constrained inference, round and clamp each
/// degree to {0, ..., n-1}. Returns the non-decreasing private sequence.
std::vector<uint32_t> DpDegreeSequence(const std::vector<uint32_t>& degrees,
                                       double epsilon, util::Rng& rng);

}  // namespace agmdp::dp

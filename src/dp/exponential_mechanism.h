// The exponential mechanism (McSherry & Talwar) over a finite candidate set.
//
// Samples index i with probability proportional to
// exp(epsilon * score[i] / (2 * sensitivity)). Implemented with the
// Gumbel-max trick for numerical stability (equivalent distribution, no
// overflow for large score ranges).
#pragma once

#include <cstddef>
#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::dp {

/// Returns the sampled candidate index. `sensitivity` is the global
/// sensitivity of the score function. Fails on empty scores or non-positive
/// epsilon/sensitivity.
util::Result<size_t> ExponentialMechanism(const std::vector<double>& scores,
                                          double sensitivity, double epsilon,
                                          util::Rng& rng);

}  // namespace agmdp::dp

// Two-sided geometric ("discrete Laplace") mechanism: the integer-valued
// analogue of the Laplace mechanism. For integer counts it satisfies pure
// eps-DP with P[noise = z] proportional to alpha^{|z|},
// alpha = exp(-eps / sensitivity), and never produces fractional counts —
// convenient for count queries whose downstream consumers want integers.
#pragma once

#include <cstdint>

#include "src/util/rng.h"

namespace agmdp::dp {

/// Samples two-sided geometric noise for the given eps/sensitivity.
int64_t TwoSidedGeometricNoise(double epsilon, double sensitivity,
                               util::Rng& rng);

/// value + noise (eps-DP for integer queries with the given L1 sensitivity).
int64_t GeometricMechanism(int64_t value, double sensitivity, double epsilon,
                           util::Rng& rng);

}  // namespace agmdp::dp

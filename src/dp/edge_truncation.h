// Edge truncation operator µ(G, k) — Definition 2 of the paper (after
// Blocki et al.).
//
// Fix the canonical (lexicographic) edge order; iterate the edges in order
// and delete an edge iff, at processing time, either endpoint's *current*
// degree exceeds k (deletions take effect immediately, matching the proof of
// Proposition 1). The result is a k-bounded graph, and computing the edge
// count queries Q_F on it has global sensitivity 2k (Proposition 1).
#pragma once

#include <cstdint>

#include "src/graph/attributed_graph.h"
#include "src/graph/graph.h"

namespace agmdp::dp {

/// Returns µ(G, k). Requires k >= 1.
graph::Graph TruncateEdges(const graph::Graph& g, uint32_t k);

/// Attributed variant; attribute vectors are untouched (truncation only
/// looks at degrees).
graph::AttributedGraph TruncateEdges(const graph::AttributedGraph& g,
                                     uint32_t k);

/// The paper's data-independent heuristic k = n^(1/3) (Section 3.1), at
/// least 2 (k = 1 would make the 2k sensitivity argument of Proposition 1
/// degenerate and deletes nearly everything anyway).
uint32_t HeuristicTruncationK(graph::NodeId n);

}  // namespace agmdp::dp

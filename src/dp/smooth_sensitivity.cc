#include "src/dp/smooth_sensitivity.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace agmdp::dp {

namespace {

// max over integer t >= 0 of e^{-t beta} * min(base + slope * t, cap).
// The unconstrained maximizer of e^{-t beta} (base + slope t) is
// t* = 1/beta - base/slope; past the cap the expression decays, so the
// optimum is at one of: t = 0, floor(t*), ceil(t*), or the saturation point.
double SmoothMaxLinearCapped(double base, double slope, double cap,
                             double beta) {
  AGMDP_CHECK(beta > 0.0);
  AGMDP_CHECK(slope > 0.0);
  auto value = [&](double t) {
    return std::exp(-t * beta) * std::min(base + slope * t, cap);
  };
  double best = value(0.0);
  const double t_star = 1.0 / beta - base / slope;
  if (t_star > 0.0) {
    best = std::max(best, value(std::floor(t_star)));
    best = std::max(best, value(std::ceil(t_star)));
  }
  const double t_sat = (cap - base) / slope;
  if (t_sat > 0.0) {
    best = std::max(best, value(std::ceil(t_sat)));
  }
  return best;
}

}  // namespace

double SmoothSensitivityBeta(double epsilon, double delta) {
  AGMDP_CHECK(epsilon > 0.0);
  AGMDP_CHECK(delta > 0.0 && delta < 1.0);
  return epsilon / (2.0 * std::log(1.0 / delta));
}

double SmoothSensitivityQF(uint32_t dmax, graph::NodeId n, double beta) {
  AGMDP_CHECK(n >= 2);
  const double cap = 2.0 * static_cast<double>(n) - 2.0;
  return SmoothMaxLinearCapped(2.0 * static_cast<double>(dmax), 2.0, cap,
                               beta);
}

double SmoothLaplaceScaleQF(const graph::Graph& g, double epsilon,
                            double delta) {
  const double beta = SmoothSensitivityBeta(epsilon, delta);
  const double smooth = SmoothSensitivityQF(g.MaxDegree(), g.num_nodes(), beta);
  return 2.0 * smooth / epsilon;
}

double NodeDpSmoothLaplaceScaleQF(uint32_t dmax, uint32_t k, graph::NodeId n,
                                  double epsilon, double delta) {
  const double beta = SmoothSensitivityBeta(epsilon, delta);
  const double cap = 2.0 * static_cast<double>(n) - 2.0;
  const double base = 2.0 * (static_cast<double>(dmax) + 2.0 * k);
  const double slope = 2.0 * static_cast<double>(k);
  const double smooth = SmoothMaxLinearCapped(base, slope, cap, beta);
  return 2.0 * smooth / epsilon;
}

}  // namespace agmdp::dp

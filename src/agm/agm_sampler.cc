#include "src/agm/agm_sampler.h"

#include <algorithm>
#include <cmath>

#include "src/agm/theta_f.h"
#include "src/agm/theta_x.h"
#include "src/graph/degree.h"
#include "src/graph/triangle_count.h"
#include "src/util/check.h"

namespace agmdp::agm {

AgmParams LearnAgmParams(const graph::AttributedGraph& g) {
  AgmParams params;
  params.w = g.num_attributes();
  params.theta_x = ComputeThetaX(g);
  params.theta_f = ComputeThetaF(g);
  params.degree_sequence = graph::DegreeSequence(g.structure());
  params.target_triangles = graph::CountTriangles(g.structure());
  return params;
}

std::vector<double> ComputeAcceptanceProbabilities(
    const std::vector<double>& theta_f_target,
    const std::vector<double>& theta_f_observed,
    const std::vector<double>& a_old, double min_acceptance) {
  AGMDP_CHECK(theta_f_target.size() == theta_f_observed.size());
  const size_t dim = theta_f_target.size();
  constexpr double kTiny = 1e-12;

  // R(y) = target / observed, carrying the previous acceptance forward
  // (Algorithm 3 lines 11-14). Configurations the current graph never
  // produced but the target wants get the largest finite ratio (the paper
  // is silent on 0-denominators; see DESIGN.md deviations).
  std::vector<double> ratio(dim, 0.0);
  double max_finite = 0.0;
  for (size_t y = 0; y < dim; ++y) {
    if (theta_f_observed[y] > kTiny) {
      ratio[y] = theta_f_target[y] / theta_f_observed[y];
      if (!a_old.empty()) ratio[y] *= a_old[y];
      max_finite = std::max(max_finite, ratio[y]);
    }
  }
  const double missing_ratio = max_finite > 0.0 ? max_finite : 1.0;
  for (size_t y = 0; y < dim; ++y) {
    if (theta_f_observed[y] <= kTiny) {
      ratio[y] = theta_f_target[y] > kTiny ? missing_ratio : 0.0;
    }
  }

  // A(y) = R(y) / sup R (line 16), floored for configurations with demand.
  double sup = *std::max_element(ratio.begin(), ratio.end());
  if (sup <= 0.0) return std::vector<double>(dim, 1.0);
  std::vector<double> acceptance(dim);
  for (size_t y = 0; y < dim; ++y) {
    acceptance[y] = ratio[y] / sup;
    if (theta_f_target[y] > kTiny) {
      acceptance[y] = std::max(acceptance[y], min_acceptance);
    }
  }
  return acceptance;
}

namespace {

// Generates the edge set for the current acceptance vector (empty = none).
util::Result<graph::Graph> GenerateStructure(
    const AgmParams& params, const AgmSampleOptions& options,
    const std::vector<graph::AttrConfig>& attrs,
    const std::vector<double>& acceptance, util::Rng& rng) {
  models::EdgeFilter filter;
  if (!acceptance.empty()) {
    const int w = params.w;
    filter = [&attrs, &acceptance, w](graph::NodeId u, graph::NodeId v,
                                      util::Rng& r) {
      const uint32_t y = graph::EncodeEdgeConfig(attrs[u], attrs[v], w);
      return r.Bernoulli(acceptance[y]);
    };
  }

  if (options.model == StructuralModelKind::kFcl) {
    models::ChungLuOptions fcl = options.fcl;
    fcl.filter = filter;
    return models::FastChungLu(params.degree_sequence, rng, fcl);
  }
  models::TriCycLeOptions tri = options.tricycle;
  tri.filter = filter;
  auto result = models::GenerateTriCycLe(params.degree_sequence,
                                         params.target_triangles, rng, tri);
  if (!result.ok()) return result.status();
  return std::move(result).value().graph;
}

}  // namespace

util::Result<graph::AttributedGraph> SampleAgmGraph(
    const AgmParams& params, const AgmSampleOptions& options,
    util::Rng& rng) {
  if (params.degree_sequence.empty()) {
    return util::Status::InvalidArgument("SampleAgmGraph: empty degree sequence");
  }
  if (params.theta_f.size() != graph::NumEdgeConfigs(params.w) ||
      params.theta_x.size() != graph::NumNodeConfigs(params.w)) {
    return util::Status::InvalidArgument(
        "SampleAgmGraph: parameter dimensions do not match w");
  }
  const auto n = static_cast<graph::NodeId>(params.degree_sequence.size());

  // Line 6: fresh attribute vectors X̃ ~ ΘX.
  auto attrs = SampleAttributes(params.theta_x, n, rng);
  if (!attrs.ok()) return attrs.status();

  // Line 7: temporary edge set, no acceptance filtering yet.
  auto structure = GenerateStructure(params, options, attrs.value(), {}, rng);
  if (!structure.ok()) return structure.status();

  graph::AttributedGraph synthetic(std::move(structure).value(), params.w);
  AGMDP_CHECK_OK(synthetic.SetAttributes(attrs.value()));

  // Lines 9-18: iterate acceptance probabilities to convergence.
  std::vector<double> a_old;
  for (int iter = 0; iter < options.acceptance_iterations; ++iter) {
    const std::vector<double> observed = ComputeThetaF(synthetic);
    std::vector<double> acceptance = ComputeAcceptanceProbabilities(
        params.theta_f, observed, a_old, options.min_acceptance);

    double delta = 0.0;
    if (!a_old.empty()) {
      for (size_t y = 0; y < acceptance.size(); ++y) {
        delta = std::max(delta, std::fabs(acceptance[y] - a_old[y]));
      }
    }

    auto refreshed =
        GenerateStructure(params, options, attrs.value(), acceptance, rng);
    if (!refreshed.ok()) return refreshed.status();
    synthetic = graph::AttributedGraph(std::move(refreshed).value(), params.w);
    AGMDP_CHECK_OK(synthetic.SetAttributes(attrs.value()));

    a_old = std::move(acceptance);
    if (iter > 0 && delta < options.acceptance_tolerance) break;
  }
  return synthetic;
}

}  // namespace agmdp::agm

#include "src/agm/agm_sampler.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <unordered_set>

#include "src/agm/theta_f.h"
#include "src/agm/theta_x.h"
#include "src/dp/laplace_mechanism.h"
#include "src/graph/degree.h"
#include "src/graph/triangle_count.h"
#include "src/util/alias_sampler.h"
#include "src/util/check.h"

namespace agmdp::agm {

AgmParams LearnAgmParams(const graph::AttributedGraph& g) {
  AgmParams params;
  params.w = g.num_attributes();
  params.theta_x = ComputeThetaX(g);
  params.theta_f = ComputeThetaF(g);
  params.degree_sequence = graph::DegreeSequence(g.structure());
  params.target_triangles = graph::CountTriangles(g.structure());
  return params;
}

std::vector<double> ComputeAcceptanceProbabilities(
    const std::vector<double>& theta_f_target,
    const std::vector<double>& theta_f_observed,
    const std::vector<double>& a_old, double min_acceptance) {
  AGMDP_CHECK(theta_f_target.size() == theta_f_observed.size());
  const size_t dim = theta_f_target.size();
  constexpr double kTiny = 1e-12;

  // R(y) = target / observed, carrying the previous acceptance forward
  // (Algorithm 3 lines 11-14). Configurations the current graph never
  // produced but the target wants get the largest finite ratio (the paper
  // is silent on 0-denominators; see DESIGN.md deviations).
  std::vector<double> ratio(dim, 0.0);
  double max_finite = 0.0;
  for (size_t y = 0; y < dim; ++y) {
    if (theta_f_observed[y] > kTiny) {
      ratio[y] = theta_f_target[y] / theta_f_observed[y];
      if (!a_old.empty()) ratio[y] *= a_old[y];
      max_finite = std::max(max_finite, ratio[y]);
    }
  }
  const double missing_ratio = max_finite > 0.0 ? max_finite : 1.0;
  for (size_t y = 0; y < dim; ++y) {
    if (theta_f_observed[y] <= kTiny) {
      ratio[y] = theta_f_target[y] > kTiny ? missing_ratio : 0.0;
    }
  }

  // A(y) = R(y) / sup R (line 16), floored for configurations with demand.
  double sup = *std::max_element(ratio.begin(), ratio.end());
  if (sup <= 0.0) return std::vector<double>(dim, 1.0);
  std::vector<double> acceptance(dim);
  for (size_t y = 0; y < dim; ++y) {
    acceptance[y] = ratio[y] / sup;
    if (theta_f_target[y] > kTiny) {
      acceptance[y] = std::max(acceptance[y], min_acceptance);
    }
  }
  return acceptance;
}

namespace {

// The fixed shard count of the parallel hot path. Work is always split into
// this many shards — never into `threads` shards — so the per-shard random
// sub-streams, and therefore the merged output, do not depend on how many
// workers happen to execute them.
constexpr int kProposalShards = 64;

int ResolveThreads(int threads) {
  if (threads > 0) return std::min(threads, 64);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min(hw, 64u));
}

// Runs fn(0..num_tasks-1) on up to `threads` workers pulling tasks from a
// shared counter. Task order within a worker is arbitrary; callers must
// make each task independent and merge results in task order themselves.
void ParallelFor(int num_tasks, int threads,
                 const std::function<void(int)>& fn) {
  threads = std::min(threads, num_tasks);
  if (threads <= 1) {
    for (int i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= num_tasks) return;
        fn(i);
      }
    });
  }
  for (auto& worker : pool) worker.join();
}

// One sharded proposal pass of the parallel Fast Chung-Lu sampler. Shard s
// draws exclusively from util::Rng::Substream(seed_base, stream_offset + s)
// and collects its accepted edges locally (deduplicating, like the
// sequential sampler, only among *accepted* edges, so a filter-rejected
// pair can be re-proposed); the shards are then merged in shard order with
// cross-shard duplicates dropped. Every quantity here is a function of
// (seed_base, stream_offset) alone — thread count only changes which worker
// runs which shard.
util::Result<graph::Graph> ShardedProposalPass(
    const std::vector<double>& weights, uint64_t target_edges,
    uint64_t max_proposals_per_edge, const models::EdgeFilter& filter,
    int threads, uint64_t seed_base, uint64_t stream_offset,
    std::vector<graph::Edge>* insertion_order) {
  const auto n = static_cast<graph::NodeId>(weights.size());
  if (insertion_order != nullptr) insertion_order->clear();
  if (target_edges == 0) return graph::Graph(n);
  auto sampler = util::AliasSampler::Build(weights);
  if (!sampler.ok()) return sampler.status();

  // Over-provision each shard a little beyond target/shards: cross-shard
  // duplicates only surface at merge time, and the surplus lets the merge
  // still reach the target. (Falling short is permitted — FCL's contract —
  // but the slack makes it rare.)
  const uint64_t base_quota = (target_edges + kProposalShards - 1) /
                              static_cast<uint64_t>(kProposalShards);
  const uint64_t quota = base_quota + base_quota / 4 + 2;

  std::vector<std::vector<graph::Edge>> accepted(kProposalShards);
  ParallelFor(kProposalShards, threads, [&](int s) {
    util::Rng rng =
        util::Rng::Substream(seed_base, stream_offset + static_cast<uint64_t>(s));
    std::unordered_set<uint64_t> seen;
    std::vector<graph::Edge>& edges = accepted[s];
    edges.reserve(quota);
    const uint64_t budget = max_proposals_per_edge * quota;
    uint64_t proposals = 0;
    while (edges.size() < quota && proposals < budget) {
      ++proposals;
      const auto u = static_cast<graph::NodeId>(sampler.value().Sample(rng));
      const auto v = static_cast<graph::NodeId>(sampler.value().Sample(rng));
      if (u == v || seen.count(graph::PackEdge(u, v)) > 0) continue;
      if (!models::AcceptEdge(filter, u, v, rng)) continue;
      seen.insert(graph::PackEdge(u, v));
      edges.emplace_back(u, v);
    }
  });

  graph::Graph g(n);
  for (const auto& shard : accepted) {
    for (const graph::Edge& e : shard) {
      if (g.num_edges() >= target_edges) return g;
      if (g.AddEdge(e.u, e.v) && insertion_order != nullptr) {
        insertion_order->push_back(e);
      }
    }
  }
  return g;
}

// Parallel counterpart of models::FastChungLu, including the cFCL hub
// calibration pass (same reweighting rule; the pilot graph it reads is the
// deterministic shard merge, so the calibration is reproducible too). The
// second pass uses the next block of sub-streams.
util::Result<graph::Graph> ShardedFastChungLu(
    const std::vector<uint32_t>& degrees, const models::ChungLuOptions& options,
    int threads, uint64_t seed_base) {
  if (degrees.empty()) {
    return util::Status::InvalidArgument("FastChungLu: empty degree sequence");
  }
  uint64_t total_degree = 0;
  for (uint32_t d : degrees) total_degree += d;
  const uint64_t target =
      options.target_edges > 0 ? options.target_edges : total_degree / 2;
  if (target == 0) {
    return graph::Graph(static_cast<graph::NodeId>(degrees.size()));
  }

  std::vector<double> weights(degrees.begin(), degrees.end());
  auto first = ShardedProposalPass(
      weights, target, options.max_proposals_per_edge, options.filter,
      threads, seed_base, /*stream_offset=*/0, options.insertion_order);
  if (!first.ok() || !options.bias_correction) return first;

  const graph::Graph& pilot = first.value();
  const double avg_degree =
      static_cast<double>(total_degree) / static_cast<double>(degrees.size());
  const double hub_threshold = std::max(10.0, 3.0 * avg_degree);
  bool any_adjusted = false;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double desired = degrees[i];
    if (weights[i] <= 0.0 || desired <= hub_threshold) continue;
    const double realized = std::max(
        1.0, static_cast<double>(pilot.Degree(static_cast<graph::NodeId>(i))));
    const double ratio = std::clamp(desired / realized, 1.0, 4.0);
    if (ratio > 1.0 + 1e-9) any_adjusted = true;
    weights[i] *= ratio;
  }
  if (!any_adjusted) return first;
  // The calibrated pass re-clears insertion_order, so the caller sees only
  // the returned graph's edges, in merge order.
  return ShardedProposalPass(weights, target, options.max_proposals_per_edge,
                             options.filter, threads, seed_base,
                             /*stream_offset=*/kProposalShards,
                             options.insertion_order);
}

// Generates the edge set for the current acceptance vector (empty = none).
util::Result<graph::Graph> GenerateStructure(
    const AgmParams& params, const AgmSampleOptions& options,
    const std::vector<graph::AttrConfig>& attrs,
    const std::vector<double>& acceptance, util::Rng& rng) {
  models::EdgeFilter filter;
  if (!acceptance.empty()) {
    const int w = params.w;
    filter = [&attrs, &acceptance, w](graph::NodeId u, graph::NodeId v,
                                      util::Rng& r) {
      const uint32_t y = graph::EncodeEdgeConfig(attrs[u], attrs[v], w);
      return r.Bernoulli(acceptance[y]);
    };
  }

  if (options.generator) return options.generator(params, filter, rng);

  if (options.model == StructuralModelKind::kFcl) {
    models::ChungLuOptions fcl = options.fcl;
    fcl.filter = filter;
    // One master draw keys the whole sharded pass, so the master stream
    // advances identically at any thread count.
    const uint64_t seed_base = rng.Next();
    return ShardedFastChungLu(params.degree_sequence, fcl,
                              ResolveThreads(options.threads), seed_base);
  }
  // TriCycLe's oldest-edge rewiring chain is inherently sequential (every
  // swap depends on the full edge-age state); it stays on the master stream.
  models::TriCycLeOptions tri = options.tricycle;
  tri.filter = filter;
  auto result = models::GenerateTriCycLe(params.degree_sequence,
                                         params.target_triangles, rng, tri);
  if (!result.ok()) return result.status();
  return std::move(result).value().graph;
}

}  // namespace

std::vector<double> MeasureThetaF(const graph::AttributedGraph& g,
                                  int threads) {
  const int w = g.num_attributes();
  const uint64_t n = g.num_nodes();
  const uint32_t dim = graph::NumEdgeConfigs(w);
  const int workers = static_cast<int>(std::min<uint64_t>(
      static_cast<uint64_t>(ResolveThreads(threads)), std::max<uint64_t>(n, 1)));

  // Per-worker exact counts over a node-range partition. The counts are
  // integers (< 2^53), so their sum — and hence the result — is identical
  // at any worker count.
  std::vector<std::vector<double>> partial(
      workers, std::vector<double>(dim, 0.0));
  ParallelFor(workers, workers, [&](int t) {
    const auto lo = static_cast<graph::NodeId>(n * t / workers);
    const auto hi = static_cast<graph::NodeId>(n * (t + 1) / workers);
    std::vector<double>& counts = partial[t];
    for (graph::NodeId u = lo; u < hi; ++u) {
      for (graph::NodeId v : g.structure().Neighbors(u)) {
        if (u < v) {
          counts[graph::EncodeEdgeConfig(g.attribute(u), g.attribute(v), w)] +=
              1.0;
        }
      }
    }
  });
  std::vector<double> counts(dim, 0.0);
  for (const auto& p : partial) {
    for (uint32_t y = 0; y < dim; ++y) counts[y] += p[y];
  }
  // Same normalization as ComputeThetaF (uniform when edgeless).
  return dp::ClampAndNormalize(std::move(counts), 0.0,
                               static_cast<double>(g.num_edges() + 1));
}

util::Result<graph::AttributedGraph> SampleAgmGraph(
    const AgmParams& params, const AgmSampleOptions& options,
    util::Rng& rng) {
  if (params.degree_sequence.empty()) {
    return util::Status::InvalidArgument("SampleAgmGraph: empty degree sequence");
  }
  if (params.theta_f.size() != graph::NumEdgeConfigs(params.w) ||
      params.theta_x.size() != graph::NumNodeConfigs(params.w)) {
    return util::Status::InvalidArgument(
        "SampleAgmGraph: parameter dimensions do not match w");
  }
  const auto n = static_cast<graph::NodeId>(params.degree_sequence.size());

  // Line 6: fresh attribute vectors X̃ ~ ΘX.
  auto attrs = SampleAttributes(params.theta_x, n, rng);
  if (!attrs.ok()) return attrs.status();

  // Line 7: temporary edge set, no acceptance filtering yet.
  auto structure = GenerateStructure(params, options, attrs.value(), {}, rng);
  if (!structure.ok()) return structure.status();

  graph::AttributedGraph synthetic(std::move(structure).value(), params.w);
  AGMDP_CHECK_OK(synthetic.SetAttributes(attrs.value()));

  // Lines 9-18: iterate acceptance probabilities to convergence.
  std::vector<double> a_old;
  for (int iter = 0; iter < options.acceptance_iterations; ++iter) {
    const std::vector<double> observed =
        MeasureThetaF(synthetic, options.threads);
    std::vector<double> acceptance = ComputeAcceptanceProbabilities(
        params.theta_f, observed, a_old, options.min_acceptance);

    double delta = 0.0;
    if (!a_old.empty()) {
      for (size_t y = 0; y < acceptance.size(); ++y) {
        delta = std::max(delta, std::fabs(acceptance[y] - a_old[y]));
      }
    }

    auto refreshed =
        GenerateStructure(params, options, attrs.value(), acceptance, rng);
    if (!refreshed.ok()) return refreshed.status();
    synthetic = graph::AttributedGraph(std::move(refreshed).value(), params.w);
    AGMDP_CHECK_OK(synthetic.SetAttributes(attrs.value()));

    a_old = std::move(acceptance);
    if (iter > 0 && delta < options.acceptance_tolerance) break;
  }
  return synthetic;
}

}  // namespace agmdp::agm

#include "src/agm/agm_sampler.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "src/agm/theta_f.h"
#include "src/agm/theta_x.h"
#include "src/dp/laplace_mechanism.h"
#include "src/graph/degree.h"
#include "src/graph/triangle_count.h"
#include "src/util/alias_sampler.h"
#include "src/util/check.h"
#include "src/util/flat_edge_set.h"
#include "src/util/math_util.h"
#include "src/util/parallel.h"

namespace agmdp::agm {

AgmParams LearnAgmParams(const graph::AttributedGraph& g) {
  AgmParams params;
  params.w = g.num_attributes();
  params.theta_x = ComputeThetaX(g);
  params.theta_f = ComputeThetaF(g);
  params.degree_sequence = graph::DegreeSequence(g.structure());
  params.target_triangles = graph::CountTriangles(g.structure());
  return params;
}

std::vector<double> ComputeAcceptanceProbabilities(
    const std::vector<double>& theta_f_target,
    const std::vector<double>& theta_f_observed,
    const std::vector<double>& a_old, double min_acceptance) {
  AGMDP_CHECK(theta_f_target.size() == theta_f_observed.size());
  const size_t dim = theta_f_target.size();
  constexpr double kTiny = 1e-12;

  // R(y) = target / observed, carrying the previous acceptance forward
  // (Algorithm 3 lines 11-14). Configurations the current graph never
  // produced but the target wants get the largest finite ratio (the paper
  // is silent on 0-denominators; see DESIGN.md deviations).
  std::vector<double> ratio(dim, 0.0);
  double max_finite = 0.0;
  for (size_t y = 0; y < dim; ++y) {
    if (theta_f_observed[y] > kTiny) {
      ratio[y] = theta_f_target[y] / theta_f_observed[y];
      if (!a_old.empty()) ratio[y] *= a_old[y];
      max_finite = std::max(max_finite, ratio[y]);
    }
  }
  const double missing_ratio = max_finite > 0.0 ? max_finite : 1.0;
  for (size_t y = 0; y < dim; ++y) {
    if (theta_f_observed[y] <= kTiny) {
      ratio[y] = theta_f_target[y] > kTiny ? missing_ratio : 0.0;
    }
  }

  // A(y) = R(y) / sup R (line 16), floored for configurations with demand.
  double sup = *std::max_element(ratio.begin(), ratio.end());
  if (sup <= 0.0) return std::vector<double>(dim, 1.0);
  std::vector<double> acceptance(dim);
  for (size_t y = 0; y < dim; ++y) {
    acceptance[y] = ratio[y] / sup;
    if (theta_f_target[y] > kTiny) {
      acceptance[y] = std::max(acceptance[y], min_acceptance);
    }
  }
  return acceptance;
}

namespace {

// The fixed shard count of the parallel hot path (kSamplerProposalShards,
// agm_sampler.h). Work is always split into this many shards — never into
// `threads` shards — so the per-shard random sub-streams, and therefore the
// merged output, do not depend on how many workers happen to execute them.
constexpr int kProposalShards = kSamplerProposalShards;

// Worker count for the sampler's persistent pool: the hardware concurrency
// (or the explicit request), never more than the shard count.
int SamplerWorkers(int threads) {
  return std::min(util::ResolveThreadCount(threads), kProposalShards);
}

// The per-sample invariants of the sharded FCL path, built once per
// SampleAgmGraph call and reused across every acceptance iteration: the pi
// weights, the alias table over them, and the edge target. Only the cFCL
// calibration pass (whose weights depend on the pilot graph of the current
// iteration) still builds a fresh alias table.
struct FclPlan {
  std::vector<double> weights;
  std::optional<util::AliasSampler> sampler;  // engaged iff target > 0
  uint64_t target = 0;
  uint64_t total_degree = 0;
};

util::Result<FclPlan> BuildFclPlan(const std::vector<uint32_t>& degrees,
                                   const models::ChungLuOptions& options) {
  if (degrees.empty()) {
    return util::Status::InvalidArgument("FastChungLu: empty degree sequence");
  }
  FclPlan plan;
  for (uint32_t d : degrees) plan.total_degree += d;
  plan.target = options.target_edges > 0 ? options.target_edges
                                         : plan.total_degree / 2;
  if (plan.target == 0) return plan;  // empty result; no pi table needed
  plan.weights.assign(degrees.begin(), degrees.end());
  auto sampler = util::AliasSampler::Build(plan.weights);
  if (!sampler.ok()) return sampler.status();
  plan.sampler = std::move(sampler).value();
  return plan;
}

// One sharded proposal pass of the parallel Fast Chung-Lu sampler. Shard s
// draws exclusively from util::Rng::Substream(seed_base, stream_offset + s)
// and collects its accepted edges locally (deduplicating, like the
// sequential sampler, only among *accepted* edges, so a filter-rejected
// pair can be re-proposed); the shards are then merged in shard order with
// cross-shard duplicates dropped. Every quantity here is a function of
// (seed_base, stream_offset) alone — the pool only changes which worker
// runs which shard.
graph::Graph ShardedProposalPass(const util::AliasSampler& sampler,
                                 graph::NodeId n, uint64_t target_edges,
                                 uint64_t max_proposals_per_edge,
                                 const models::EdgeFilter& filter,
                                 util::WorkerPool& pool, uint64_t seed_base,
                                 uint64_t stream_offset,
                                 std::vector<graph::Edge>* insertion_order) {
  if (insertion_order != nullptr) insertion_order->clear();
  // A simple graph over n nodes cannot hold more edges than this; clamping
  // the caller's raw target bounds every quota- and reservation-derived
  // allocation below.
  target_edges = std::min(target_edges, graph::MaxPossibleEdges(n));
  if (target_edges == 0) return graph::Graph(n);

  // Over-provision each shard a little beyond target/shards: cross-shard
  // duplicates only surface at merge time, and the surplus lets the merge
  // still reach the target. (Falling short is permitted — FCL's contract —
  // but the slack makes it rare.)
  const uint64_t base_quota = (target_edges + kProposalShards - 1) /
                              static_cast<uint64_t>(kProposalShards);
  const uint64_t quota = base_quota + base_quota / 4 + 2;
  // Saturate: max_proposals_per_edge is a caller knob, and a wrapped
  // product can silently collapse the budget to ~0 proposals.
  const uint64_t budget = util::SaturatingMul(max_proposals_per_edge, quota);
  const bool filtered = filter.active();

  std::vector<std::vector<graph::Edge>> accepted(kProposalShards);
  pool.Run(kProposalShards, [&](int s) {
    util::Rng rng = util::Rng::Substream(
        seed_base, stream_offset + static_cast<uint64_t>(s));
    util::FlatEdgeSet seen(quota);
    std::vector<graph::Edge>& edges = accepted[s];
    edges.reserve(quota);
    uint64_t proposals = 0;
    while (edges.size() < quota && proposals < budget) {
      ++proposals;
      const auto u = static_cast<graph::NodeId>(sampler.Sample(rng));
      const auto v = static_cast<graph::NodeId>(sampler.Sample(rng));
      if (u == v || seen.Contains(graph::PackEdge(u, v))) continue;
      if (filtered && !filter.Accept(u, v, rng)) continue;
      seen.Insert(graph::PackEdge(u, v));
      edges.emplace_back(u, v);
    }
  });

  graph::Graph g(n);
  g.ReserveEdges(target_edges);
  for (const auto& shard : accepted) {
    for (const graph::Edge& e : shard) {
      if (g.num_edges() >= target_edges) return g;
      if (g.AddEdge(e.u, e.v) && insertion_order != nullptr) {
        insertion_order->push_back(e);
      }
    }
  }
  return g;
}

// Parallel counterpart of models::FastChungLu, including the cFCL hub
// calibration pass (same reweighting rule; the pilot graph it reads is the
// deterministic shard merge, so the calibration is reproducible too). The
// second pass uses the next block of sub-streams. The first pass reuses the
// plan's prebuilt alias table; only the calibrated pass, whose weights
// depend on the pilot, builds a fresh one.
util::Result<graph::Graph> ShardedFastChungLu(
    const std::vector<uint32_t>& degrees, const FclPlan& plan,
    const models::ChungLuOptions& options, util::WorkerPool& pool,
    uint64_t seed_base) {
  const auto n = static_cast<graph::NodeId>(degrees.size());
  if (plan.target == 0) {
    if (options.insertion_order != nullptr) options.insertion_order->clear();
    return graph::Graph(n);
  }

  graph::Graph first = ShardedProposalPass(
      *plan.sampler, n, plan.target, options.max_proposals_per_edge,
      options.filter, pool, seed_base, /*stream_offset=*/0,
      options.insertion_order);
  if (!options.bias_correction) return first;

  const double avg_degree = static_cast<double>(plan.total_degree) /
                            static_cast<double>(degrees.size());
  const double hub_threshold = std::max(10.0, 3.0 * avg_degree);
  std::vector<double> weights = plan.weights;
  bool any_adjusted = false;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double desired = degrees[i];
    if (weights[i] <= 0.0 || desired <= hub_threshold) continue;
    const double realized = std::max(
        1.0, static_cast<double>(first.Degree(static_cast<graph::NodeId>(i))));
    const double ratio = std::clamp(desired / realized, 1.0, 4.0);
    if (ratio > 1.0 + 1e-9) any_adjusted = true;
    weights[i] *= ratio;
  }
  if (!any_adjusted) return first;

  auto calibrated = util::AliasSampler::Build(weights);
  if (!calibrated.ok()) return calibrated.status();
  // The calibrated pass re-clears insertion_order, so the caller sees only
  // the returned graph's edges, in merge order.
  return ShardedProposalPass(calibrated.value(), n, plan.target,
                             options.max_proposals_per_edge, options.filter,
                             pool, seed_base,
                             /*stream_offset=*/kProposalShards,
                             options.insertion_order);
}

// Θ'F counted over the pool's workers (node-range partition; exact integer
// counts, so the result is identical at any worker count).
std::vector<double> MeasureThetaFWithPool(const graph::AttributedGraph& g,
                                          util::WorkerPool& pool) {
  const int w = g.num_attributes();
  const uint64_t n = g.num_nodes();
  const uint32_t dim = graph::NumEdgeConfigs(w);
  const int workers = static_cast<int>(std::min<uint64_t>(
      static_cast<uint64_t>(pool.num_workers()), std::max<uint64_t>(n, 1)));

  std::vector<std::vector<double>> partial(
      workers, std::vector<double>(dim, 0.0));
  pool.Run(workers, [&](int t) {
    const auto lo = static_cast<graph::NodeId>(n * t / workers);
    const auto hi = static_cast<graph::NodeId>(n * (t + 1) / workers);
    std::vector<double>& counts = partial[t];
    for (graph::NodeId u = lo; u < hi; ++u) {
      for (graph::NodeId v : g.structure().Neighbors(u)) {
        if (u < v) {
          counts[graph::EncodeEdgeConfig(g.attribute(u), g.attribute(v), w)] +=
              1.0;
        }
      }
    }
  });
  std::vector<double> counts(dim, 0.0);
  for (const auto& p : partial) {
    for (uint32_t y = 0; y < dim; ++y) counts[y] += p[y];
  }
  // Same normalization as ComputeThetaF (uniform when edgeless).
  return dp::ClampAndNormalize(std::move(counts), 0.0,
                               static_cast<double>(g.num_edges() + 1));
}

// Generates the edge set for the current acceptance vector (empty = none).
// `fcl_plan` is the hoisted per-sample FCL state (null on the TriCycLe and
// registry-generator paths, which do not use it).
util::Result<graph::Graph> GenerateStructure(
    const AgmParams& params, const AgmSampleOptions& options,
    const std::vector<graph::AttrConfig>& attrs,
    const std::vector<double>& acceptance, const FclPlan* fcl_plan,
    util::WorkerPool& pool, util::Rng& rng) {
  models::EdgeFilter filter;
  if (!acceptance.empty()) {
    // Dense acceptance table: attribute lookups and the triangular
    // edge-config encoding are precomputed once per iteration, so the inner
    // proposal loops pay two array loads per decision.
    filter = models::EdgeFilter::FromAcceptanceTable(attrs, acceptance,
                                                     params.w);
  }

  if (options.generator) return options.generator(params, filter, rng);

  if (options.model == StructuralModelKind::kFcl) {
    AGMDP_CHECK(fcl_plan != nullptr);
    models::ChungLuOptions fcl = options.fcl;
    fcl.filter = filter;
    // One master draw keys the whole sharded pass, so the master stream
    // advances identically at any thread count.
    const uint64_t seed_base = rng.Next();
    return ShardedFastChungLu(params.degree_sequence, *fcl_plan, fcl, pool,
                              seed_base);
  }
  // TriCycLe's oldest-edge rewiring chain is inherently sequential (every
  // swap depends on the full edge-age state); it stays on the master stream.
  models::TriCycLeOptions tri = options.tricycle;
  tri.filter = filter;
  auto result = models::GenerateTriCycLe(params.degree_sequence,
                                         params.target_triangles, rng, tri);
  if (!result.ok()) return result.status();
  return std::move(result).value().graph;
}

}  // namespace

std::vector<double> MeasureThetaF(const graph::AttributedGraph& g,
                                  int threads) {
  util::WorkerPool pool(SamplerWorkers(threads));
  return MeasureThetaFWithPool(g, pool);
}

util::Result<graph::AttributedGraph> SampleAgmGraph(
    const AgmParams& params, const AgmSampleOptions& options,
    util::Rng& rng) {
  if (params.degree_sequence.empty()) {
    return util::Status::InvalidArgument("SampleAgmGraph: empty degree sequence");
  }
  if (params.theta_f.size() != graph::NumEdgeConfigs(params.w) ||
      params.theta_x.size() != graph::NumNodeConfigs(params.w)) {
    return util::Status::InvalidArgument(
        "SampleAgmGraph: parameter dimensions do not match w");
  }
  const auto n = static_cast<graph::NodeId>(params.degree_sequence.size());
  const std::vector<double>* warm = options.initial_acceptance;
  if (warm != nullptr && warm->size() != graph::NumEdgeConfigs(params.w)) {
    return util::Status::InvalidArgument(
        "SampleAgmGraph: initial_acceptance dimension does not match w");
  }

  // The pool and the FCL invariants (pi weights + alias table) live for the
  // whole sample: one thread spawn and one alias build per sample, not one
  // per acceptance iteration. A caller-provided pool (the serving layer's
  // persistent one) removes even the per-sample spawn.
  std::optional<util::WorkerPool> owned_pool;
  util::WorkerPool* pool_ptr = options.pool;
  if (pool_ptr == nullptr) {
    owned_pool.emplace(SamplerWorkers(options.threads));
    pool_ptr = &*owned_pool;
  }
  util::WorkerPool& pool = *pool_ptr;
  std::optional<FclPlan> plan_storage;
  const FclPlan* fcl_plan = nullptr;
  if (!options.generator && options.model == StructuralModelKind::kFcl) {
    auto plan = BuildFclPlan(params.degree_sequence, options.fcl);
    if (!plan.ok()) return plan.status();
    plan_storage = std::move(plan).value();
    fcl_plan = &*plan_storage;
  }

  // Line 6: fresh attribute vectors X̃ ~ ΘX.
  auto attrs = SampleAttributes(params.theta_x, n, rng);
  if (!attrs.ok()) return attrs.status();

  // Line 7: temporary edge set. The cold start generates it unfiltered;
  // a warm start (serving layer) filters it by the calibrated acceptance
  // vector straight away. (kNoAcceptance keeps the ternary from copying
  // the warm vector — a mixed-category ternary materializes a prvalue.)
  static const std::vector<double> kNoAcceptance;
  auto structure =
      GenerateStructure(params, options, attrs.value(),
                        warm != nullptr ? *warm : kNoAcceptance,
                        fcl_plan, pool, rng);
  if (!structure.ok()) return structure.status();

  graph::AttributedGraph synthetic(std::move(structure).value(), params.w);
  AGMDP_CHECK_OK(synthetic.SetAttributes(attrs.value()));

  // Lines 9-18: iterate acceptance probabilities to convergence (starting
  // from the warm-start vector when one was supplied).
  std::vector<double> a_old =
      warm != nullptr ? *warm : std::vector<double>{};
  for (int iter = 0; iter < options.acceptance_iterations; ++iter) {
    const std::vector<double> observed =
        MeasureThetaFWithPool(synthetic, pool);
    std::vector<double> acceptance = ComputeAcceptanceProbabilities(
        params.theta_f, observed, a_old, options.min_acceptance);

    double delta = 0.0;
    if (!a_old.empty()) {
      for (size_t y = 0; y < acceptance.size(); ++y) {
        delta = std::max(delta, std::fabs(acceptance[y] - a_old[y]));
      }
    }

    auto refreshed = GenerateStructure(params, options, attrs.value(),
                                       acceptance, fcl_plan, pool, rng);
    if (!refreshed.ok()) return refreshed.status();
    synthetic = graph::AttributedGraph(std::move(refreshed).value(), params.w);
    AGMDP_CHECK_OK(synthetic.SetAttributes(attrs.value()));

    a_old = std::move(acceptance);
    if (iter > 0 && delta < options.acceptance_tolerance) break;
  }
  if (options.final_acceptance != nullptr) {
    *options.final_acceptance = a_old;
  }
  return synthetic;
}

}  // namespace agmdp::agm

// Node attribute distribution ΘX (Section 3.2 / Algorithm 5).
#pragma once

#include <vector>

#include "src/graph/attributed_graph.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::agm {

/// Exact counts per attribute configuration (the queries Q_X), length 2^w.
std::vector<double> ComputeAttributeCounts(const graph::AttributedGraph& g);

/// Exact ΘX: fraction of nodes per configuration.
std::vector<double> ComputeThetaX(const graph::AttributedGraph& g);

/// Algorithm 5 (LearnAttributesDP): counts + Laplace(2 / epsilon), clamp to
/// [0, n], normalize. Global sensitivity 2 (changing one node's attributes
/// moves one count down and one up; edges are irrelevant). Satisfies
/// epsilon-DP (Theorem 8).
std::vector<double> LearnAttributesDp(const graph::AttributedGraph& g,
                                      double epsilon, util::Rng& rng);

/// Samples n attribute configurations i.i.d. from theta_x (the X̃ step of
/// Algorithm 3, line 6).
util::Result<std::vector<graph::AttrConfig>> SampleAttributes(
    const std::vector<double>& theta_x, graph::NodeId n, util::Rng& rng);

}  // namespace agmdp::agm

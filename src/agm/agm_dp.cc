#include "src/agm/agm_dp.h"

#include <chrono>
#include <cmath>

#include "src/agm/theta_f.h"
#include "src/agm/theta_x.h"
#include "src/dp/constrained_inference.h"
#include "src/dp/edge_truncation.h"
#include "src/graph/degree.h"
#include "src/util/check.h"

namespace agmdp::agm {

namespace {

// Runs `stage_fn`, recording its wall-clock cost under `stage` when the
// caller asked for timings.
template <typename Fn>
auto TimedStage(const char* stage, std::vector<StageSeconds>* timings,
                Fn&& stage_fn) {
  if (timings == nullptr) return stage_fn();
  const auto start = std::chrono::steady_clock::now();
  auto result = stage_fn();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  timings->push_back({stage, elapsed.count()});
  return result;
}

}  // namespace

util::Result<AgmParams> LearnAgmParamsDp(const graph::AttributedGraph& input,
                                         const AgmDpOptions& options,
                                         dp::PrivacyAccountant& accountant,
                                         util::Rng& rng,
                                         std::vector<StageSeconds>* timings) {
  if (options.epsilon <= 0.0) {
    return util::Status::InvalidArgument("AGM-DP: epsilon must be positive");
  }
  if (input.num_nodes() < 2) {
    return util::Status::InvalidArgument("AGM-DP: graph too small");
  }
  const bool tricycle = options.model == StructuralModelKind::kTriCycLe;

  dp::BudgetSplit split = options.split;
  if (split.total() <= 0.0) {
    split = tricycle ? dp::BudgetSplit::EvenFourWay(options.epsilon)
                     : dp::BudgetSplit::FclThreeWay(options.epsilon);
  }
  if (split.total() > options.epsilon + 1e-9) {
    return util::Status::InvalidArgument(
        "AGM-DP: budget split exceeds global epsilon");
  }

  AgmParams params;
  params.w = input.num_attributes();

  // Line 3: Θ̃X (Algorithm 5).
  if (auto st = accountant.Spend(split.theta_x, "theta_x"); !st.ok()) return st;
  params.theta_x = TimedStage("theta_x", timings, [&] {
    return LearnAttributesDp(input, split.theta_x, rng);
  });

  // Line 5: Θ̃F.
  if (auto st = accountant.Spend(split.theta_f, "theta_f"); !st.ok()) return st;
  params.theta_f = TimedStage("theta_f", timings, [&] {
    switch (options.theta_f_method) {
      case ThetaFMethod::kEdgeTruncation:
        return LearnCorrelationsDp(input, split.theta_f, options.truncation_k,
                                   rng);
      case ThetaFMethod::kSmoothSensitivity:
        return LearnCorrelationsSmooth(input, split.theta_f,
                                       options.smooth_delta, rng);
      case ThetaFMethod::kSampleAggregate: {
        uint32_t group = options.sa_group_size;
        if (group == 0) {
          group = static_cast<uint32_t>(
              std::lround(std::sqrt(static_cast<double>(input.num_nodes()))));
          if (group < 2) group = 2;
        }
        return LearnCorrelationsSampleAggregate(input, split.theta_f, group,
                                                rng);
      }
      case ThetaFMethod::kNaiveLaplace:
        return LearnCorrelationsNaive(input, split.theta_f, rng);
    }
    AGMDP_CHECK(false);
    return std::vector<double>();
  });

  // Line 4: Θ̃M = {S̄, ñ∆} (Algorithm 6). Constrained inference and the
  // rounding are post-processing on the noisy sequence.
  if (auto st = accountant.Spend(split.degree_seq, "degree_sequence");
      !st.ok()) {
    return st;
  }
  params.degree_sequence = TimedStage("degree_sequence", timings, [&] {
    return dp::DpDegreeSequence(graph::DegreeSequence(input.structure()),
                                split.degree_seq, rng);
  });

  if (tricycle) {
    if (auto st = accountant.Spend(split.triangles, "triangles"); !st.ok()) {
      return st;
    }
    auto triangles = TimedStage("triangles", timings, [&] {
      return dp::DpTriangleCount(input.structure(), split.triangles, rng,
                                 options.ladder);
    });
    if (!triangles.ok()) return triangles.status();
    params.target_triangles =
        static_cast<uint64_t>(std::max<int64_t>(0, triangles.value()));
  }
  return params;
}

util::Result<AgmDpResult> SynthesizeAgmDp(const graph::AttributedGraph& input,
                                          const AgmDpOptions& options,
                                          util::Rng& rng) {
  if (options.epsilon <= 0.0) {
    return util::Status::InvalidArgument("AGM-DP: epsilon must be positive");
  }
  dp::PrivacyAccountant accountant(options.epsilon);
  auto params = LearnAgmParamsDp(input, options, accountant, rng);
  if (!params.ok()) return params.status();

  // Lines 6-18: sampling is pure post-processing of the learned parameters.
  AgmSampleOptions sample = options.sample;
  sample.model = options.model;
  auto synthetic = SampleAgmGraph(params.value(), sample, rng);
  if (!synthetic.ok()) return synthetic.status();

  AgmDpResult result{std::move(synthetic).value(), std::move(params).value(),
                     accountant.ledger()};
  return result;
}

util::Result<graph::AttributedGraph> SynthesizeAgmNonPrivate(
    const graph::AttributedGraph& input, const AgmSampleOptions& options,
    util::Rng& rng) {
  return SampleAgmGraph(LearnAgmParams(input), options, rng);
}

}  // namespace agmdp::agm

#include "src/agm/agm_dp.h"

#include <cmath>

#include "src/agm/theta_f.h"
#include "src/agm/theta_x.h"
#include "src/dp/constrained_inference.h"
#include "src/dp/edge_truncation.h"
#include "src/graph/degree.h"
#include "src/util/check.h"

namespace agmdp::agm {

util::Result<AgmDpResult> SynthesizeAgmDp(const graph::AttributedGraph& input,
                                          const AgmDpOptions& options,
                                          util::Rng& rng) {
  if (options.epsilon <= 0.0) {
    return util::Status::InvalidArgument("AGM-DP: epsilon must be positive");
  }
  if (input.num_nodes() < 2) {
    return util::Status::InvalidArgument("AGM-DP: graph too small");
  }
  const bool tricycle = options.model == StructuralModelKind::kTriCycLe;

  dp::BudgetSplit split = options.split;
  if (split.total() <= 0.0) {
    split = tricycle ? dp::BudgetSplit::EvenFourWay(options.epsilon)
                     : dp::BudgetSplit::FclThreeWay(options.epsilon);
  }
  if (split.total() > options.epsilon + 1e-9) {
    return util::Status::InvalidArgument(
        "AGM-DP: budget split exceeds global epsilon");
  }

  dp::PrivacyAccountant accountant(options.epsilon);
  AgmParams params;
  params.w = input.num_attributes();

  // Line 3: Θ̃X (Algorithm 5).
  if (auto st = accountant.Spend(split.theta_x, "theta_x"); !st.ok()) return st;
  params.theta_x = LearnAttributesDp(input, split.theta_x, rng);

  // Line 5: Θ̃F.
  if (auto st = accountant.Spend(split.theta_f, "theta_f"); !st.ok()) return st;
  switch (options.theta_f_method) {
    case ThetaFMethod::kEdgeTruncation:
      params.theta_f = LearnCorrelationsDp(input, split.theta_f,
                                           options.truncation_k, rng);
      break;
    case ThetaFMethod::kSmoothSensitivity:
      params.theta_f = LearnCorrelationsSmooth(input, split.theta_f,
                                               options.smooth_delta, rng);
      break;
    case ThetaFMethod::kSampleAggregate: {
      uint32_t group = options.sa_group_size;
      if (group == 0) {
        group = static_cast<uint32_t>(
            std::lround(std::sqrt(static_cast<double>(input.num_nodes()))));
        if (group < 2) group = 2;
      }
      params.theta_f = LearnCorrelationsSampleAggregate(input, split.theta_f,
                                                        group, rng);
      break;
    }
    case ThetaFMethod::kNaiveLaplace:
      params.theta_f = LearnCorrelationsNaive(input, split.theta_f, rng);
      break;
  }

  // Line 4: Θ̃M = {S̄, ñ∆} (Algorithm 6). Constrained inference and the
  // rounding are post-processing on the noisy sequence.
  if (auto st = accountant.Spend(split.degree_seq, "degree_sequence");
      !st.ok()) {
    return st;
  }
  params.degree_sequence = dp::DpDegreeSequence(
      graph::DegreeSequence(input.structure()), split.degree_seq, rng);

  if (tricycle) {
    if (auto st = accountant.Spend(split.triangles, "triangles"); !st.ok()) {
      return st;
    }
    auto triangles = dp::DpTriangleCount(input.structure(), split.triangles,
                                         rng, options.ladder);
    if (!triangles.ok()) return triangles.status();
    params.target_triangles =
        static_cast<uint64_t>(std::max<int64_t>(0, triangles.value()));
  }

  // Lines 6-18: sampling is pure post-processing of the learned parameters.
  AgmSampleOptions sample = options.sample;
  sample.model = options.model;
  auto synthetic = SampleAgmGraph(params, sample, rng);
  if (!synthetic.ok()) return synthetic.status();

  AgmDpResult result{std::move(synthetic).value(), std::move(params),
                     accountant.ledger()};
  return result;
}

util::Result<graph::AttributedGraph> SynthesizeAgmNonPrivate(
    const graph::AttributedGraph& input, const AgmSampleOptions& options,
    util::Rng& rng) {
  return SampleAgmGraph(LearnAgmParams(input), options, rng);
}

}  // namespace agmdp::agm

#include "src/agm/theta_f.h"

#include "src/dp/edge_truncation.h"
#include "src/dp/laplace_mechanism.h"
#include "src/dp/sample_aggregate.h"
#include "src/dp/smooth_sensitivity.h"
#include "src/graph/components.h"
#include "src/util/check.h"
#include "src/util/parallel.h"

namespace agmdp::agm {

std::vector<double> ComputeConnectionCounts(const graph::AttributedGraph& g) {
  const int w = g.num_attributes();
  std::vector<double> counts(graph::NumEdgeConfigs(w), 0.0);
  g.structure().ForEachEdge([&](graph::NodeId u, graph::NodeId v) {
    counts[graph::EncodeEdgeConfig(g.attribute(u), g.attribute(v), w)] += 1.0;
  });
  return counts;
}

std::vector<double> ComputeConnectionCounts(const graph::AttributedCsrGraph& g,
                                            int threads) {
  const int w = g.num_attributes;
  std::vector<uint64_t> tally(graph::NumEdgeConfigs(w), 0);
  util::ParallelTally(
      g.num_nodes(), threads,
      [&] { return std::vector<uint64_t>(tally.size(), 0); },
      [&](std::vector<uint64_t>& local, uint64_t begin, uint64_t end) {
        for (uint64_t ui = begin; ui < end; ++ui) {
          const auto u = static_cast<graph::NodeId>(ui);
          for (graph::NodeId v : g.structure.Neighbors(u)) {
            if (v <= u) continue;
            ++local[graph::EncodeEdgeConfig(g.attribute(u), g.attribute(v),
                                            w)];
          }
        }
      },
      [&](const std::vector<uint64_t>& local) {
        for (size_t i = 0; i < tally.size(); ++i) tally[i] += local[i];
      });
  // The Graph path accumulates +1.0 per edge — exact, so casting the
  // integer tallies reproduces it bit-for-bit.
  std::vector<double> counts(tally.size());
  for (size_t i = 0; i < tally.size(); ++i) {
    counts[i] = static_cast<double>(tally[i]);
  }
  return counts;
}

std::vector<double> ComputeThetaF(const graph::AttributedGraph& g) {
  std::vector<double> counts = ComputeConnectionCounts(g);
  // Edgeless graphs normalize to uniform inside ClampAndNormalize.
  return dp::ClampAndNormalize(std::move(counts), 0.0,
                               static_cast<double>(g.num_edges() + 1));
}

std::vector<double> ComputeThetaF(const graph::AttributedCsrGraph& g,
                                  int threads) {
  std::vector<double> counts = ComputeConnectionCounts(g, threads);
  return dp::ClampAndNormalize(std::move(counts), 0.0,
                               static_cast<double>(g.num_edges() + 1));
}

std::vector<double> ThetaFFromConnectionCounts(
    const std::vector<uint64_t>& counts, uint64_t num_edges) {
  std::vector<double> as_doubles(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    as_doubles[i] = static_cast<double>(counts[i]);
  }
  return dp::ClampAndNormalize(std::move(as_doubles), 0.0,
                               static_cast<double>(num_edges + 1));
}

std::vector<double> LearnCorrelationsDp(const graph::AttributedGraph& g,
                                        double epsilon, uint32_t k,
                                        util::Rng& rng) {
  AGMDP_CHECK(epsilon > 0.0);
  if (k == 0) k = dp::HeuristicTruncationK(g.num_nodes());
  const graph::AttributedGraph truncated = dp::TruncateEdges(g, k);
  std::vector<double> counts = ComputeConnectionCounts(truncated);
  std::vector<double> noisy =
      dp::NoisyCounts(counts, /*sensitivity=*/2.0 * k, epsilon, rng);
  return dp::ClampAndNormalize(std::move(noisy), 0.0,
                               static_cast<double>(g.num_nodes()));
}

std::vector<double> LearnCorrelationsSmooth(const graph::AttributedGraph& g,
                                            double epsilon, double delta,
                                            util::Rng& rng) {
  AGMDP_CHECK(epsilon > 0.0);
  std::vector<double> counts = ComputeConnectionCounts(g);
  // Lap(2 S / eps) == Laplace mechanism with sensitivity 2 S.
  const double scale = dp::SmoothLaplaceScaleQF(g.structure(), epsilon, delta);
  std::vector<double> noisy(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    noisy[i] = counts[i] + rng.Laplace(scale);
  }
  return dp::ClampAndNormalize(std::move(noisy), 0.0,
                               static_cast<double>(g.num_nodes()));
}

std::vector<double> LearnCorrelationsSampleAggregate(
    const graph::AttributedGraph& g, double epsilon, uint32_t group_size,
    util::Rng& rng) {
  AGMDP_CHECK(epsilon > 0.0);
  const graph::NodeId n = g.num_nodes();
  auto partition = dp::RandomNodePartition(n, group_size, rng);
  AGMDP_CHECK_MSG(partition.ok(), "invalid sample-and-aggregate group size");

  std::vector<std::vector<double>> per_group;
  per_group.reserve(partition.value().size());
  for (const auto& group : partition.value()) {
    graph::AttributedGraph sub = graph::InducedSubgraph(g, group);
    per_group.push_back(ComputeThetaF(sub));  // uniform if edgeless
  }
  auto mean = dp::AverageVectors(per_group);
  AGMDP_CHECK(mean.ok());

  const double t = static_cast<double>(per_group.size());
  std::vector<double> noisy =
      dp::NoisyCounts(mean.value(), /*sensitivity=*/2.0 / t, epsilon, rng);
  return dp::ClampAndNormalize(std::move(noisy), 0.0, 1.0);
}

std::vector<double> LearnCorrelationsNaive(const graph::AttributedGraph& g,
                                           double epsilon, util::Rng& rng) {
  AGMDP_CHECK(epsilon > 0.0);
  std::vector<double> counts = ComputeConnectionCounts(g);
  const double sensitivity = 2.0 * static_cast<double>(g.num_nodes()) - 2.0;
  std::vector<double> noisy = dp::NoisyCounts(counts, sensitivity, epsilon,
                                              rng);
  return dp::ClampAndNormalize(std::move(noisy), 0.0,
                               static_cast<double>(g.num_nodes()));
}

std::vector<double> LearnCorrelationsNodeDp(const graph::AttributedGraph& g,
                                            double epsilon, double delta,
                                            uint32_t k, util::Rng& rng) {
  AGMDP_CHECK(epsilon > 0.0);
  if (k == 0) k = dp::HeuristicTruncationK(g.num_nodes());
  const graph::AttributedGraph truncated = dp::TruncateEdges(g, k);
  std::vector<double> counts = ComputeConnectionCounts(truncated);
  const double scale = dp::NodeDpSmoothLaplaceScaleQF(
      g.structure().MaxDegree(), k, g.num_nodes(), epsilon, delta);
  std::vector<double> noisy(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    noisy[i] = counts[i] + rng.Laplace(scale);
  }
  return dp::ClampAndNormalize(std::move(noisy), 0.0,
                               static_cast<double>(g.num_nodes()));
}

}  // namespace agmdp::agm

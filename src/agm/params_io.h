// Persistence for learned AGM parameters.
//
// The private parameters are the *release*: once learned under a DP budget
// they can be stored and arbitrarily many synthetic graphs sampled later
// without touching the sensitive input again (post-processing invariance).
// The format is a versioned plain-text file.
#pragma once

#include <string>

#include "src/agm/agm_sampler.h"
#include "src/util/status.h"

namespace agmdp::agm {

util::Status WriteAgmParams(const AgmParams& params, const std::string& path);
util::Result<AgmParams> ReadAgmParams(const std::string& path);

}  // namespace agmdp::agm

// Persistence for learned AGM parameters.
//
// The private parameters are the *release*: once learned under a DP budget
// they can be stored and arbitrarily many synthetic graphs sampled later
// without touching the sensitive input again (post-processing invariance).
// The format is a versioned plain-text file.
#pragma once

#include <string>

#include "src/agm/agm_sampler.h"
#include "src/util/status.h"

namespace agmdp::agm {

/// Structural validation of a parameter set: w in [0, 16] (beyond that the
/// triangular edge-config count overflows uint32), theta dimensions
/// consistent with w, every theta entry finite and non-negative. Shared by
/// the params reader/writer, the release-artifact codec, and
/// pipeline::ReleaseEngine, so garbage parameters are rejected at every
/// boundary instead of propagating into the sampler.
util::Status ValidateAgmParams(const AgmParams& params);

util::Status WriteAgmParams(const AgmParams& params, const std::string& path);
util::Result<AgmParams> ReadAgmParams(const std::string& path);

}  // namespace agmdp::agm

#include "src/agm/theta_x.h"

#include "src/dp/laplace_mechanism.h"
#include "src/util/alias_sampler.h"

namespace agmdp::agm {

std::vector<double> ComputeAttributeCounts(const graph::AttributedGraph& g) {
  std::vector<double> counts(graph::NumNodeConfigs(g.num_attributes()), 0.0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    counts[g.attribute(v)] += 1.0;
  }
  return counts;
}

std::vector<double> ComputeThetaX(const graph::AttributedGraph& g) {
  std::vector<double> counts = ComputeAttributeCounts(g);
  return dp::ClampAndNormalize(std::move(counts), 0.0,
                               static_cast<double>(g.num_nodes()));
}

std::vector<double> LearnAttributesDp(const graph::AttributedGraph& g,
                                      double epsilon, util::Rng& rng) {
  std::vector<double> counts = ComputeAttributeCounts(g);
  std::vector<double> noisy =
      dp::NoisyCounts(counts, /*sensitivity=*/2.0, epsilon, rng);
  return dp::ClampAndNormalize(std::move(noisy), 0.0,
                               static_cast<double>(g.num_nodes()));
}

util::Result<std::vector<graph::AttrConfig>> SampleAttributes(
    const std::vector<double>& theta_x, graph::NodeId n, util::Rng& rng) {
  auto sampler = util::AliasSampler::Build(theta_x);
  if (!sampler.ok()) return sampler.status();
  std::vector<graph::AttrConfig> attrs(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    attrs[v] = static_cast<graph::AttrConfig>(sampler.value().Sample(rng));
  }
  return attrs;
}

}  // namespace agmdp::agm

// The AGM accept/reject sampling loop (Section 2.2 and Algorithm 3 lines
// 6-18), shared by the non-private and differentially private pipelines.
//
// Given parameters (ΘX, ΘF, structural parameters), the sampler draws
// attribute vectors i.i.d. from ΘX, generates a temporary edge set from the
// structural model, measures the attribute correlations Θ'F it produced,
// and derives per-configuration acceptance probabilities
//     A(y) = R(y) / sup R,   R(y) = ΘF(y) / Θ'F(y)  (optionally × A_old),
// which are then pushed *into* the structural model's own sampling loop as
// an edge filter (the paper's modification that makes rewiring models like
// TriCycLe compatible with AGM). The loop iterates until A converges.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/graph/attributed_graph.h"
#include "src/models/chung_lu.h"
#include "src/models/edge_filter.h"
#include "src/models/tricycle.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::util {
class WorkerPool;
}  // namespace agmdp::util

namespace agmdp::agm {

/// Which structural model M the AGM pipeline plugs in.
enum class StructuralModelKind { kFcl, kTriCycLe };

/// The fixed shard count of the sampler's parallel hot path (work is always
/// split into this many shards, never into `threads` shards — the
/// determinism contract). Exported so pool-owning callers
/// (pipeline::ReleaseEngine) can cap their worker counts at the number of
/// shards that can ever run at once.
inline constexpr int kSamplerProposalShards = 64;

/// The three AGM parameter sets (plus w); ΘM is the degree sequence and —
/// for TriCycLe — the triangle count.
struct AgmParams {
  int w = 0;
  std::vector<double> theta_x;            // |Y_w|
  std::vector<double> theta_f;            // |Y^F_w|
  std::vector<uint32_t> degree_sequence;  // length n
  uint64_t target_triangles = 0;          // used by TriCycLe only
};

/// Exact (non-private) parameter estimation — the AGM-FCL / AGM-TriCL
/// baselines of Tables 2-5.
AgmParams LearnAgmParams(const graph::AttributedGraph& g);

/// Pluggable structural-model hook: given the (private) AGM parameters and
/// the attribute-acceptance filter, generate an edge set. Used by the
/// pipeline's model registry to plug models beyond the two builtins into
/// the AGM loop without this layer knowing about them.
using StructuralGenerator = std::function<util::Result<graph::Graph>(
    const AgmParams& params, const models::EdgeFilter& filter,
    util::Rng& rng)>;

struct AgmSampleOptions {
  StructuralModelKind model = StructuralModelKind::kTriCycLe;
  /// Overrides `model` when set (registry-provided structural models).
  StructuralGenerator generator;
  /// Worker threads for the sampler hot path (sharded FCL edge proposals
  /// and Θ'F measurement). 0 = hardware concurrency. SampleAgmGraph spawns
  /// one persistent util::WorkerPool per call and reuses it across every
  /// acceptance iteration. The output graph is bitwise-identical for a
  /// given seed at any thread count: the work is split into a fixed number
  /// of shards with deterministic per-shard sub-streams
  /// (util::Rng::Substream), and shard results are merged in shard order —
  /// threads only change the schedule, never the stream.
  int threads = 1;
  /// Acceptance-probability refinement iterations ("A tended to converge
  /// after just a few iterations", Section 4).
  int acceptance_iterations = 3;
  /// Early-exit when max |A - A_old| drops below this.
  double acceptance_tolerance = 0.01;
  /// Floor for acceptance probabilities of configurations with positive
  /// target mass (prevents live-locking the proposal loops; deviation
  /// documented in DESIGN.md).
  double min_acceptance = 1e-3;
  /// Borrowed worker pool for the sampler hot path. When null (the
  /// default) SampleAgmGraph spawns its own pool per call; the serving
  /// layer (pipeline::ReleaseEngine) passes its persistent pool instead so
  /// repeated sampling pays zero thread-spawn cost. The pool never affects
  /// output (see the determinism notes on `threads`), and `threads` is
  /// ignored when a pool is supplied.
  util::WorkerPool* pool = nullptr;
  /// Warm-start acceptance vector A (size NumEdgeConfigs(w)). When set, the
  /// first structural generation is already filtered by it and the
  /// refinement loop starts from it as A_old — the serving layer passes the
  /// acceptance vector a calibration sample converged to, so steady-state
  /// samples skip the cold iterations. Null reproduces the paper's cold
  /// start (unfiltered first generation).
  const std::vector<double>* initial_acceptance = nullptr;
  /// When non-null, receives the final acceptance vector of this sample —
  /// what a warm start of the next sample should pass as
  /// `initial_acceptance`. With zero iterations this is the warm-start
  /// vector passed straight through (so chained warm starts keep their
  /// calibration); it is empty only on a cold start where no iteration
  /// ran.
  std::vector<double>* final_acceptance = nullptr;
  models::TriCycLeOptions tricycle;
  models::ChungLuOptions fcl;
};

/// Runs the sampling loop and returns the synthetic attributed graph.
util::Result<graph::AttributedGraph> SampleAgmGraph(
    const AgmParams& params, const AgmSampleOptions& options, util::Rng& rng);

/// Builds the acceptance vector A from target ΘF, observed Θ'F and the
/// previous A (pass empty for none). Exposed for unit testing.
std::vector<double> ComputeAcceptanceProbabilities(
    const std::vector<double>& theta_f_target,
    const std::vector<double>& theta_f_observed,
    const std::vector<double>& a_old, double min_acceptance);

/// Θ'F measured over `threads` workers (node-range partition; exact integer
/// counts, so the result is identical at any thread count). Equals
/// ComputeThetaF(g) and is exposed so benches can time the parallel path.
std::vector<double> MeasureThetaF(const graph::AttributedGraph& g,
                                  int threads);

}  // namespace agmdp::agm

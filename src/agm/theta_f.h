// Attribute-edge correlation distribution ΘF (Section 3.1, Appendix B/C).
//
// ΘF(y) is the fraction of edges whose endpoint-attribute pair encodes to y.
// Four differentially private estimators are provided:
//   * LearnCorrelationsDp       — edge truncation, Algorithm 4 (the paper's
//                                 choice; pure eps-DP, GS = 2k).
//   * LearnCorrelationsSmooth   — smooth sensitivity, Appendix B.1
//                                 ((eps, delta)-DP).
//   * LearnCorrelationsSampleAggregate — Appendix B.2 (pure eps-DP).
//   * LearnCorrelationsNaive    — Laplace with the raw GS = 2n - 2 (the
//                                 baseline of Figure 5).
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/attributed_graph.h"
#include "src/graph/csr.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::agm {

/// Exact connection counts Q_F over the edges of g, length C(2^w + 1, 2).
/// The snapshot overload tallies on `threads` workers (<= 0 selects
/// hardware concurrency); counts are integers, so it agrees exactly with
/// the Graph path at any thread count.
std::vector<double> ComputeConnectionCounts(const graph::AttributedGraph& g);
std::vector<double> ComputeConnectionCounts(const graph::AttributedCsrGraph& g,
                                            int threads = 1);

/// Exact ΘF (normalized Q_F); uniform when the graph has no edges.
std::vector<double> ComputeThetaF(const graph::AttributedGraph& g);
std::vector<double> ComputeThetaF(const graph::AttributedCsrGraph& g,
                                  int threads = 1);

/// Exact ΘF from already-tallied integer connection counts (the fused
/// evaluation path, graph/fused_eval.h): the cast integers match the
/// Graph path's +1.0-per-edge accumulation exactly, so the result is
/// bitwise-identical to ComputeThetaF on the same graph.
std::vector<double> ThetaFFromConnectionCounts(
    const std::vector<uint64_t>& counts, uint64_t num_edges);

/// Algorithm 4 (LearnCorrelationsDP): truncate to a k-bounded graph
/// (Definition 2), compute Q_F, add Laplace(2k / epsilon) (Proposition 1:
/// GS = 2k), clamp to [0, n], normalize. Satisfies epsilon-DP (Theorem 7).
/// k = 0 selects the paper's heuristic n^(1/3).
std::vector<double> LearnCorrelationsDp(const graph::AttributedGraph& g,
                                        double epsilon, uint32_t k,
                                        util::Rng& rng);

/// Appendix B.1: Q_F on the raw graph + Laplace(2 S / epsilon) where S is
/// the beta-smooth sensitivity (Corollary 5), beta = eps / (2 ln(1/delta)).
/// Satisfies (epsilon, delta)-DP.
std::vector<double> LearnCorrelationsSmooth(const graph::AttributedGraph& g,
                                            double epsilon, double delta,
                                            util::Rng& rng);

/// Appendix B.2: random node partition into groups of `group_size`, exact
/// ΘF on each induced subgraph (uniform for edgeless groups), average, add
/// Laplace((2 / t) / epsilon) with t the number of groups, clamp to [0, 1],
/// normalize. Satisfies epsilon-DP.
std::vector<double> LearnCorrelationsSampleAggregate(
    const graph::AttributedGraph& g, double epsilon, uint32_t group_size,
    util::Rng& rng);

/// Figure 5 baseline: Laplace with global sensitivity 2n - 2 on the raw
/// counts, clamp, normalize.
std::vector<double> LearnCorrelationsNaive(const graph::AttributedGraph& g,
                                           double epsilon, util::Rng& rng);

/// Section 7 preliminary experiment: edge truncation followed by Laplace
/// noise calibrated to a node-adjacency smooth-sensitivity bound
/// ((epsilon, delta)-DP; reconstruction — see smooth_sensitivity.h).
std::vector<double> LearnCorrelationsNodeDp(const graph::AttributedGraph& g,
                                            double epsilon, double delta,
                                            uint32_t k, util::Rng& rng);

}  // namespace agmdp::agm

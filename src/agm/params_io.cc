#include "src/agm/params_io.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "src/graph/attribute_encoding.h"

namespace agmdp::agm {

namespace {
constexpr char kMagic[] = "agmdp-params";
constexpr int kVersion = 1;

util::Status BadTheta(const char* which, size_t index, double value) {
  std::ostringstream message;
  message << which << "[" << index << "] = " << value
          << " is not a finite non-negative probability mass";
  return util::Status::InvalidArgument(message.str());
}

// Reads a non-negative integer field into `out`, rejecting the wrapped
// values istream extraction would otherwise accept for "-1".
bool ReadCount(std::istream& in, uint64_t limit, uint64_t* out) {
  int64_t raw = 0;
  if (!(in >> raw) || raw < 0 || static_cast<uint64_t>(raw) > limit) {
    return false;
  }
  *out = static_cast<uint64_t>(raw);
  return true;
}

// Fills `out` with `count` stream-extracted doubles. push_back (not a
// resize) on purpose: allocation grows only as values actually arrive, so
// a corrupt count over a truncated file fails at the first missing value
// instead of reserving gigabytes up front.
bool ReadDoubles(std::istream& in, uint64_t count, std::vector<double>* out) {
  out->clear();
  for (uint64_t i = 0; i < count; ++i) {
    double value = 0.0;
    if (!(in >> value)) return false;
    out->push_back(value);
  }
  return true;
}
}  // namespace

util::Status ValidateAgmParams(const AgmParams& params) {
  // w is capped at 16: beyond that the triangular edge-config count
  // C(2^w + 1, 2) overflows NumEdgeConfigs's uint32 range, so a dimension
  // check against the truncated value would wave through short theta_f
  // vectors that the sampler then indexes out of bounds.
  if (params.w < 0 || params.w > 16) {
    return util::Status::InvalidArgument(
        "params: w must be in [0, 16], got " + std::to_string(params.w));
  }
  if (params.theta_x.size() != graph::NumNodeConfigs(params.w) ||
      params.theta_f.size() != graph::NumEdgeConfigs(params.w)) {
    return util::Status::InvalidArgument(
        "params: theta dimensions inconsistent with w=" +
        std::to_string(params.w));
  }
  for (size_t y = 0; y < params.theta_x.size(); ++y) {
    const double p = params.theta_x[y];
    if (!std::isfinite(p) || p < 0.0) return BadTheta("theta_x", y, p);
  }
  for (size_t y = 0; y < params.theta_f.size(); ++y) {
    const double p = params.theta_f[y];
    if (!std::isfinite(p) || p < 0.0) return BadTheta("theta_f", y, p);
  }
  if (params.degree_sequence.empty()) {
    return util::Status::InvalidArgument("params: empty degree sequence");
  }
  return util::Status::OK();
}

util::Status WriteAgmParams(const AgmParams& params,
                            const std::string& path) {
  if (auto st = ValidateAgmParams(params); !st.ok()) return st;
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return util::Status::IoError("cannot open for writing: " + path);
  }
  out.precision(17);
  out << kMagic << " v" << kVersion << "\n";
  out << "w " << params.w << "\n";
  out << "theta_x " << params.theta_x.size();
  for (double p : params.theta_x) out << " " << p;
  out << "\n";
  out << "theta_f " << params.theta_f.size();
  for (double p : params.theta_f) out << " " << p;
  out << "\n";
  out << "degrees " << params.degree_sequence.size();
  for (uint32_t d : params.degree_sequence) out << " " << d;
  out << "\n";
  out << "triangles " << params.target_triangles << "\n";
  out.flush();
  if (!out.good()) return util::Status::IoError("write failed: " + path);
  return util::Status::OK();
}

util::Result<AgmParams> ReadAgmParams(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return util::Status::IoError("cannot open for reading: " + path);
  }
  std::string magic, version;
  if (!(in >> magic >> version) || magic != kMagic || version != "v1") {
    return util::Status::IoError("bad params header in " + path);
  }
  AgmParams params;
  std::string tag;
  uint64_t count = 0;

  if (!(in >> tag >> params.w) || tag != "w" || params.w < 0 ||
      params.w > 16) {
    return util::Status::IoError("bad w field in " + path);
  }

  // Counts are bounded by what *this* w's parameter set can hold (w was
  // just parsed, so the exact dimensions are known), and the vectors grow
  // only as values actually arrive — a corrupted length cannot drive a
  // huge allocation. Values are validated below before the params escape
  // this function.
  constexpr uint64_t kMaxDegreeCount = uint64_t{1} << 31;

  if (!(in >> tag) || tag != "theta_x" ||
      !ReadCount(in, graph::NumNodeConfigs(params.w), &count) ||
      !ReadDoubles(in, count, &params.theta_x)) {
    return util::Status::IoError("bad or truncated theta_x in " + path);
  }

  if (!(in >> tag) || tag != "theta_f" ||
      !ReadCount(in, graph::NumEdgeConfigs(params.w), &count) ||
      !ReadDoubles(in, count, &params.theta_f)) {
    return util::Status::IoError("bad or truncated theta_f in " + path);
  }

  if (!(in >> tag) || tag != "degrees" ||
      !ReadCount(in, kMaxDegreeCount, &count)) {
    return util::Status::IoError("bad degrees field in " + path);
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t degree = 0;
    if (!ReadCount(in, 0xffffffffu, &degree)) {
      return util::Status::IoError("bad or truncated degrees in " + path);
    }
    params.degree_sequence.push_back(static_cast<uint32_t>(degree));
  }

  if (!(in >> tag) || tag != "triangles" ||
      !ReadCount(in, ~uint64_t{0} >> 1, &params.target_triangles)) {
    return util::Status::IoError("bad triangles field in " + path);
  }

  if (auto st = ValidateAgmParams(params); !st.ok()) return st;
  return params;
}

}  // namespace agmdp::agm

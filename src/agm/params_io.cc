#include "src/agm/params_io.h"

#include <fstream>
#include <sstream>

#include "src/graph/attribute_encoding.h"

namespace agmdp::agm {

namespace {
constexpr char kMagic[] = "agmdp-params";
constexpr int kVersion = 1;
}  // namespace

util::Status WriteAgmParams(const AgmParams& params,
                            const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return util::Status::IoError("cannot open for writing: " + path);
  }
  out.precision(17);
  out << kMagic << " v" << kVersion << "\n";
  out << "w " << params.w << "\n";
  out << "theta_x " << params.theta_x.size();
  for (double p : params.theta_x) out << " " << p;
  out << "\n";
  out << "theta_f " << params.theta_f.size();
  for (double p : params.theta_f) out << " " << p;
  out << "\n";
  out << "degrees " << params.degree_sequence.size();
  for (uint32_t d : params.degree_sequence) out << " " << d;
  out << "\n";
  out << "triangles " << params.target_triangles << "\n";
  out.flush();
  if (!out.good()) return util::Status::IoError("write failed: " + path);
  return util::Status::OK();
}

util::Result<AgmParams> ReadAgmParams(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return util::Status::IoError("cannot open for reading: " + path);
  }
  std::string magic, version;
  if (!(in >> magic >> version) || magic != kMagic || version != "v1") {
    return util::Status::IoError("bad params header in " + path);
  }
  AgmParams params;
  std::string tag;
  size_t count = 0;

  if (!(in >> tag >> params.w) || tag != "w" || params.w < 0 ||
      params.w > 20) {
    return util::Status::IoError("bad w field in " + path);
  }

  if (!(in >> tag >> count) || tag != "theta_x") {
    return util::Status::IoError("bad theta_x field in " + path);
  }
  params.theta_x.resize(count);
  for (double& p : params.theta_x) {
    if (!(in >> p)) return util::Status::IoError("truncated theta_x");
  }

  if (!(in >> tag >> count) || tag != "theta_f") {
    return util::Status::IoError("bad theta_f field in " + path);
  }
  params.theta_f.resize(count);
  for (double& p : params.theta_f) {
    if (!(in >> p)) return util::Status::IoError("truncated theta_f");
  }

  if (!(in >> tag >> count) || tag != "degrees") {
    return util::Status::IoError("bad degrees field in " + path);
  }
  params.degree_sequence.resize(count);
  for (uint32_t& d : params.degree_sequence) {
    if (!(in >> d)) return util::Status::IoError("truncated degrees");
  }

  if (!(in >> tag >> params.target_triangles) || tag != "triangles") {
    return util::Status::IoError("bad triangles field in " + path);
  }

  if (params.theta_x.size() != graph::NumNodeConfigs(params.w) ||
      params.theta_f.size() != graph::NumEdgeConfigs(params.w)) {
    return util::Status::IoError("parameter dimensions inconsistent with w");
  }
  return params;
}

}  // namespace agmdp::agm

// AGM-DP — the end-to-end differentially private synthesis workflow
// (Algorithm 3, Theorem 2).
//
// The global privacy budget is split among the parameter learners (Section
// 5: even four-way for TriCycLe; S gets half for FCL), each parameter is
// learned once under its share, and after that the raw input graph is never
// touched again — the synthetic graph is pure post-processing, so the whole
// pipeline satisfies eps-DP by sequential composition.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/agm/agm_sampler.h"
#include "src/dp/ladder_mechanism.h"
#include "src/dp/privacy_budget.h"
#include "src/graph/attributed_graph.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::agm {

/// Which ΘF estimator AGM-DP uses (Figure 5 compares them; edge truncation
/// is the paper's pick).
enum class ThetaFMethod {
  kEdgeTruncation,
  kSmoothSensitivity,
  kSampleAggregate,
  kNaiveLaplace,
};

struct AgmDpOptions {
  double epsilon = 1.0;
  StructuralModelKind model = StructuralModelKind::kTriCycLe;
  ThetaFMethod theta_f_method = ThetaFMethod::kEdgeTruncation;
  /// Truncation parameter for ΘF; 0 selects the paper's n^(1/3) heuristic.
  uint32_t truncation_k = 0;
  /// delta for the smooth-sensitivity ΘF variant.
  double smooth_delta = 1e-6;
  /// Group size for sample-and-aggregate; 0 selects sqrt(n).
  uint32_t sa_group_size = 0;
  /// Budget split; a zero-total split selects the model's default.
  dp::BudgetSplit split;
  dp::LadderOptions ladder;
  AgmSampleOptions sample;
};

struct AgmDpResult {
  graph::AttributedGraph graph;
  /// The private parameters the graph was sampled from.
  AgmParams params;
  /// (label, epsilon) spends, summing to <= options.epsilon.
  std::vector<std::pair<std::string, double>> budget_ledger;
};

/// Wall-clock seconds spent in one named stage of the workflow.
struct StageSeconds {
  std::string stage;
  double seconds = 0.0;
};

/// The parameter-learning half of Algorithm 3 (lines 3-5): learns
/// (Θ̃X, Θ̃F, Θ̃M) under the split budget, recording every spend against the
/// caller's accountant — this is the only function that touches the
/// sensitive input, so auditing `accountant.ledger()` audits the entire
/// release. Appends per-stage wall-clock timings to `timings` when non-null.
/// Fails on invalid options or if a spend would overdraw the accountant.
util::Result<AgmParams> LearnAgmParamsDp(const graph::AttributedGraph& input,
                                         const AgmDpOptions& options,
                                         dp::PrivacyAccountant& accountant,
                                         util::Rng& rng,
                                         std::vector<StageSeconds>* timings =
                                             nullptr);

/// Runs Algorithm 3. Fails on invalid options (non-positive epsilon,
/// missing attributes, inconsistent split). Equivalent to LearnAgmParamsDp
/// on a fresh accountant followed by SampleAgmGraph.
util::Result<AgmDpResult> SynthesizeAgmDp(const graph::AttributedGraph& input,
                                          const AgmDpOptions& options,
                                          util::Rng& rng);

/// Convenience: the non-private AGM baselines (AGM-FCL / AGM-TriCL) via the
/// same sampling machinery.
util::Result<graph::AttributedGraph> SynthesizeAgmNonPrivate(
    const graph::AttributedGraph& input, const AgmSampleOptions& options,
    util::Rng& rng);

}  // namespace agmdp::agm

#include "src/mechanisms/release_mechanism.h"

#include "src/mechanisms/community_dp.h"
#include "src/mechanisms/kanon_baseline.h"
#include "src/pipeline/release_pipeline.h"

namespace agmdp::mechanisms {

namespace {

std::vector<MechanismSpec> BuildRegistry() {
  std::vector<MechanismSpec> specs;

  {
    MechanismSpec spec;
    spec.name = "agm";
    spec.description =
        "the paper's AGM pipeline: DP theta_x/theta_f/degree-sequence fit, "
        "structural-model sampling (edge-DP; node-DP theta_f variants via "
        "theta_f_method)";
    spec.privacy_model = PrivacyModel::kEdgeDp;
    spec.builtin_agm = true;
    // Identical to the pre-registry FitReleaseArtifact path: fit under the
    // accountant, package with the config fingerprint. Serving stays on
    // ReleaseEngine's dedicated calibrated path (no make_sampler).
    spec.fit = [](const graph::AttributedGraph& input,
                  const pipeline::PipelineConfig& config, util::Rng& rng) {
      auto fit = pipeline::FitPrivateParams(input, config, rng);
      if (!fit.ok()) return util::Result<pipeline::ReleaseArtifact>(
          fit.status());
      return util::Result<pipeline::ReleaseArtifact>(
          pipeline::MakeReleaseArtifact(fit.value(), config));
    };
    specs.push_back(std::move(spec));
  }

  {
    MechanismSpec spec;
    spec.name = "community_dp";
    spec.description =
        "community-preserving DP release: exponential-mechanism partition, "
        "geometric-noised per-block edge/attribute model (edge-DP)";
    spec.privacy_model = PrivacyModel::kEdgeDp;
    spec.fit = FitCommunityDp;
    spec.make_sampler = MakeCommunitySampler;
    specs.push_back(std::move(spec));
  }

  {
    MechanismSpec spec;
    spec.name = "kanon_baseline";
    spec.description =
        "degree k-anonymization with t-closeness on attributes: syntactic "
        "protection, zero epsilon spend";
    spec.privacy_model = PrivacyModel::kSyntactic;
    spec.fit = FitKanonBaseline;
    spec.make_sampler = MakeKanonSampler;
    specs.push_back(std::move(spec));
  }

  return specs;
}

const std::vector<MechanismSpec>& Registry() {
  static const std::vector<MechanismSpec>* registry =
      new std::vector<MechanismSpec>(BuildRegistry());
  return *registry;
}

}  // namespace

const MechanismSpec* FindMechanism(const std::string& name) {
  for (const MechanismSpec& spec : Registry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<std::string> MechanismNames() {
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const MechanismSpec& spec : Registry()) names.push_back(spec.name);
  return names;
}

std::string MechanismNameList() {
  std::string out;
  for (const MechanismSpec& spec : Registry()) {
    if (!out.empty()) out += ", ";
    out += spec.name;
  }
  return out;
}

}  // namespace agmdp::mechanisms

// The pluggable release-mechanism registry: competing private-graph
// publication schemes behind one artifact/accounting contract.
//
// A ReleaseMechanism is (name, privacy model, Fit, MakeSampler):
//
//   * Fit reads the sensitive input exactly once and returns a
//     mechanism-tagged pipeline::ReleaseArtifact. DP mechanisms charge
//     every stage through one dp::PrivacyAccountant, so the artifact's
//     ledger sums to the global epsilon; syntactic mechanisms
//     (kanon_baseline) carry a zero-spend ledger.
//   * MakeSampler turns a validated artifact into an ArtifactSampler —
//     the serving handle pipeline::ReleaseEngine delegates to for non-AGM
//     mechanisms. Sampling is pure post-processing (Theorem 2): repeatable
//     at zero additional privacy cost.
//
// Determinism contract: ArtifactSampler::Sample draws exclusively from the
// caller's Rng and shared immutable state, so ReleaseEngine's request
// keying (Substream(seed, sequence)) makes every mechanism's output
// bitwise-identical at any thread count, exactly like the AGM path.
//
// The registry mirrors pipeline's structural-model registry: a static
// spec table, FindMechanism by tag, and name listings for error messages.
// To add a scheme: implement Fit/MakeSampler, add the tag to
// mechanism_tags.h, append a spec in release_mechanism.cc, and extend the
// per-mechanism branch of pipeline::ValidateReleaseArtifact.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/attributed_graph.h"
#include "src/mechanisms/mechanism_tags.h"
#include "src/pipeline/pipeline_config.h"
#include "src/pipeline/release_artifact.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace agmdp::mechanisms {

/// \brief Serving handle of a fitted non-AGM artifact: draws one synthetic
/// graph per call from the caller's stream. Implementations are immutable
/// after construction, so const Sample calls are thread-safe.
class ArtifactSampler {
 public:
  virtual ~ArtifactSampler() = default;

  /// Draws one synthetic graph. All randomness comes from `rng`; equal
  /// streams give bitwise-equal graphs.
  virtual util::Result<graph::AttributedGraph> Sample(util::Rng& rng) const = 0;

  /// Resident-byte estimate for the engine cache (see
  /// ReleaseEngine::ApproxBytes).
  virtual uint64_t ApproxBytes() const = 0;
};

/// \brief One registered release mechanism.
struct MechanismSpec {
  std::string name;
  std::string description;
  PrivacyModel privacy_model = PrivacyModel::kEdgeDp;
  /// The AGM pipeline keeps its dedicated serving path inside
  /// ReleaseEngine (calibration, structural-model registry); its spec has
  /// no make_sampler.
  bool builtin_agm = false;
  std::function<util::Result<pipeline::ReleaseArtifact>(
      const graph::AttributedGraph& input,
      const pipeline::PipelineConfig& config, util::Rng& rng)>
      fit;
  std::function<util::Result<std::shared_ptr<const ArtifactSampler>>(
      const pipeline::ReleaseArtifact& artifact)>
      make_sampler;
};

/// Looks a mechanism up by tag; nullptr when unregistered.
const MechanismSpec* FindMechanism(const std::string& name);

/// Registered tags, in registration order.
std::vector<std::string> MechanismNames();

/// "agm, community_dp, kanon_baseline" — for error messages.
std::string MechanismNameList();

}  // namespace agmdp::mechanisms

// kanon_baseline: a non-DP degree-k-anonymity / t-closeness baseline in
// the style of kt-safety (arXiv:2210.17479), slotted into the sweep grid
// so the DP mechanisms can be ranked against syntactic protection at
// "equivalent" strength.
//
// Fit (no accountant — the ledger is epsilon-free and must assert zero
// spend at validation):
//
//   1. Degree k-anonymization: nodes sorted by degree (descending, stable
//      by index) are grouped k at a time (the last group absorbs the
//      remainder); every member publishes its group's median degree, so
//      each published degree is shared by >= k nodes. k defaults to
//      max(2, round(2 / epsilon)) — the "equivalent protection" heuristic
//      that makes the baseline comparable across the epsilon axis of a
//      sweep (stronger DP <-> larger k).
//   2. t-closeness on attributes: each group's attribute-configuration
//      distribution q is blended toward the global distribution p just
//      enough that TV(q', p) <= t: q' = p + lambda (q - p) with
//      lambda = min(1, t / TV(q, p)).
//
// Sampling draws attributes from the group distributions and the
// structure from models::FastChungLu over the anonymized degree sequence.
#pragma once

#include <memory>

#include "src/mechanisms/release_mechanism.h"

namespace agmdp::mechanisms {

util::Result<pipeline::ReleaseArtifact> FitKanonBaseline(
    const graph::AttributedGraph& input, const pipeline::PipelineConfig& config,
    util::Rng& rng);

util::Result<std::shared_ptr<const ArtifactSampler>> MakeKanonSampler(
    const pipeline::ReleaseArtifact& artifact);

}  // namespace agmdp::mechanisms
